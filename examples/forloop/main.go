// The §8.1 enhancement: counted FOR loops are lifted into cursor loops over
// recursive CTEs and then aggified like any other cursor loop. This example
// transforms a compound-interest FOR loop and verifies the results match.
//
// Run with: go run ./examples/forloop
package main

import (
	"fmt"
	"log"

	"aggify"
)

const futureValue = `
create function futureValue(@principal float, @ratePct float, @years int) returns float as
begin
  declare @v float = @principal;
  declare @y int;
  for (@y = 1; @y <= @years; @y = @y + 1)
  begin
    set @v = @v * (1 + @ratePct / 100);
    if @v > 1000000 break;
  end
  return @v;
end`

func main() {
	db := aggify.Open()
	if err := db.Exec(futureValue); err != nil {
		log.Fatal(err)
	}

	before, err := db.Call("futureValue", aggify.Float(10_000), aggify.Float(7), aggify.Int(30))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original FOR loop:   futureValue(10000, 7%%, 30y) = %.2f\n", before.Float())

	res, err := db.AggifyFunction("futureValue", aggify.TransformOptions{LiftForLoops: true})
	if err != nil {
		log.Fatal(err)
	}
	if res.LoopsTransformed != 1 {
		log.Fatalf("expected the FOR loop to be lifted and aggified; skipped: %v", res.Skipped)
	}
	fmt.Println("\nThe FOR loop became a cursor over a recursive CTE, then an aggregate:")
	fmt.Println(res.RewrittenSource)

	after, err := db.Call("futureValue", aggify.Float(10_000), aggify.Float(7), aggify.Int(30))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggified:            futureValue(10000, 7%%, 30y) = %.2f\n", after.Float())

	for _, years := range []int64{0, 1, 10, 200} {
		a, err := db.Call("futureValue", aggify.Float(10_000), aggify.Float(7), aggify.Int(years))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  years=%-4d -> %.2f\n", years, a.Float())
	}
	if d := before.Float() - after.Float(); d > 1e-9 || d < -1e-9 {
		log.Fatalf("results differ: %v vs %v", before, after)
	}
	fmt.Println("results identical ✓ (BREAK handled via the done-flag protocol)")
}
