// Quickstart: the paper's running example, end to end.
//
// It loads a small TPC-H database, registers the Figure 1 UDF (a cursor
// loop computing the minimum-cost supplier of a part), runs Aggify to
// generate the Figure 5 custom aggregate and the Figure 7 rewritten UDF,
// and shows that the results match while the cursor worktable traffic
// disappears.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"aggify"
	"aggify/internal/tpch"
)

const minCostSupp = `
create function getLowerBound(@pkey int) returns int as
begin
  return 0;
end
GO
create function minCostSupp(@pkey int, @lb int = -1) returns char(25) as
begin
  declare @pCost decimal(15,2);
  declare @sName char(25);
  declare @minCost decimal(15,2) = 100000;
  declare @suppName char(25);
  if (@lb = -1)
    set @lb = getLowerBound(@pkey);
  declare c1 cursor for
    select ps_supplycost, s_name from partsupp, supplier
    where ps_partkey = @pkey and ps_suppkey = s_suppkey;
  open c1;
  fetch next from c1 into @pCost, @sName;
  while @@fetch_status = 0
  begin
    if (@pCost < @minCost and @pCost >= @lb)
    begin
      set @minCost = @pCost;
      set @suppName = @sName;
    end
    fetch next from c1 into @pCost, @sName;
  end
  close c1;
  deallocate c1;
  return @suppName;
end`

func main() {
	db := aggify.Open()
	if err := tpch.Load(db.Engine(), 0.005); err != nil {
		log.Fatal(err)
	}
	if err := db.Exec(minCostSupp); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== 1. The original cursor-loop UDF (paper Figure 1) ===")
	parts := 200
	timeIt := func(label string) time.Duration {
		start := time.Now()
		rows, err := db.Query(fmt.Sprintf(
			"select p_partkey, minCostSupp(p_partkey) from part where p_partkey <= %d", parts))
		if err != nil {
			log.Fatal(err)
		}
		d := time.Since(start)
		fmt.Printf("%s: %d parts in %v (sample: part %v -> %v)\n",
			label, len(rows.Data), d.Round(time.Microsecond),
			rows.Data[0][0].Display(), rows.Data[0][1].Display())
		return d
	}
	before := db.Session().Stats.Snapshot()
	origTime := timeIt("original")
	origStats := db.Session().Stats.Snapshot().Sub(before)
	fmt.Printf("worktable rows materialized by the cursor: %d\n\n", origStats.WorktableWrites)

	fmt.Println("=== 2. Aggify: generate the custom aggregate (Figure 5) and rewrite (Figure 7) ===")
	res, err := db.AggifyFunction("minCostSupp", aggify.TransformOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.AggregateSources[0])
	fmt.Println(res.RewrittenSource)
	d := res.Details[0]
	fmt.Printf("V_F = %v   P_accum = %v   V_init = %v   V_term = %v\n\n",
		d.Fields, d.Params, d.VInit, d.VTerm)

	fmt.Println("=== 3. The same query now runs the pipelined aggregate ===")
	before = db.Session().Stats.Snapshot()
	aggTime := timeIt("aggified")
	aggStats := db.Session().Stats.Snapshot().Sub(before)
	fmt.Printf("worktable rows materialized: %d (was %d)\n",
		aggStats.WorktableWrites, origStats.WorktableWrites)
	fmt.Printf("logical reads: %d (was %d)\n", aggStats.TotalReads(), origStats.TotalReads())
	if aggTime > 0 {
		fmt.Printf("speedup: %.1fx\n\n", float64(origTime)/float64(aggTime))
	}

	fmt.Println("=== 4. Aggify+ (§8.2): Froid-inline the loop-free UDF and decorrelate ===")
	inlined, _, err := db.InlineFunction(fmt.Sprintf(
		"select p_partkey, minCostSupp(p_partkey) from part where p_partkey <= %d", parts))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := db.Explain(inlined)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("physical plan after decorrelation:")
	fmt.Println(plan)
	start := time.Now()
	rows, err := db.Query(inlined)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggify+ ran %d parts in %v\n", len(rows.Data), time.Since(start).Round(time.Microsecond))
}
