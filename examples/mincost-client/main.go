// The paper's Experiment 2 (Figure 10(b)): a remote client application
// computing the minimum-cost supplier for a range of parts. The original
// program pulls every part's supplier offers over the network and folds
// them locally; the Aggify version lets a generated custom aggregate reduce
// each part inside the DBMS.
//
// The program runs each mode twice: over the in-process connection (the
// virtual network meter prices the exact protocol frames) and against a
// live aggifyd served on loopback TCP (the meter counts real socket
// bytes), showing the two measurements agree.
//
// Run with: go run ./examples/mincost-client
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"aggify"
	"aggify/internal/tpch"
)

func main() {
	db := aggify.Open()
	if err := tpch.Load(db.Engine(), 0.005); err != nil {
		log.Fatal(err)
	}
	// Transform the server-side UDF once: Aggify replaces its cursor loop
	// with a generated custom aggregate.
	if err := db.Exec(minCostSuppSrc); err != nil {
		log.Fatal(err)
	}
	if _, err := db.AggifyFunction("minCostSupp", aggify.TransformOptions{}); err != nil {
		log.Fatal(err)
	}

	// Serve the same database as a real aggifyd on loopback TCP.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := db.NewServer()
	go srv.Serve(lis)
	addr := lis.Addr().String()
	fmt.Printf("aggifyd serving on %s\n\n", addr)

	for _, n := range []int64{50, 500} {
		fmt.Printf("--- %d parts ---\n", n)
		runOriginal(connect(db, addr, false), "virtual", n)
		runOriginal(connect(db, addr, true), "tcp    ", n)
		runAggified(connect(db, addr, false), "virtual", n)
		runAggified(connect(db, addr, true), "tcp    ", n)
		fmt.Println()
	}
	srv.Close()
}

// connect opens either the in-process metered connection or a real socket
// to the loopback server.
func connect(db *aggify.DB, addr string, overTCP bool) *aggify.Conn {
	if !overTCP {
		return db.Connect(aggify.LAN)
	}
	conn, err := aggify.Dial(addr, aggify.LAN)
	if err != nil {
		log.Fatal(err)
	}
	return conn
}

// runOriginal is the client-side loop: one offers query per part.
func runOriginal(conn *aggify.Conn, transport string, n int64) {
	parts, err := conn.Prepare("select p_partkey from part where p_partkey <= ?")
	if err != nil {
		log.Fatal(err)
	}
	offers, err := conn.Prepare(`select ps_supplycost, s_name from partsupp, supplier
	                             where ps_partkey = ? and ps_suppkey = s_suppkey`)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	prs, err := parts.Query(aggify.Int(n))
	if err != nil {
		log.Fatal(err)
	}
	cheapest := map[int64]string{}
	for prs.Next() {
		pkey := prs.Int64("p_partkey")
		ors, err := offers.Query(aggify.Int(pkey))
		if err != nil {
			log.Fatal(err)
		}
		best, bestName := 1e18, ""
		for ors.Next() {
			if c := ors.Float64("ps_supplycost"); c < best {
				best, bestName = c, ors.String("s_name")
			}
		}
		ors.Close()
		cheapest[pkey] = bestName
	}
	prs.Close()
	report("original", transport, len(cheapest), conn, time.Since(start))
	conn.Close()
}

// runAggified runs one query over the transformed UDF: the generated
// aggregate reduces each part's offers inside the DBMS.
func runAggified(conn *aggify.Conn, transport string, n int64) {
	stmt, err := conn.Prepare("select p_partkey, minCostSupp(p_partkey) as supp from part where p_partkey <= ?")
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	rs, err := stmt.Query(aggify.Int(n))
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	for rs.Next() {
		_ = rs.String("supp")
		count++
	}
	rs.Close()
	report("aggified", transport, count, conn, time.Since(start))
	conn.Close()
}

func report(mode, transport string, parts int, conn *aggify.Conn, compute time.Duration) {
	elapsed := compute + conn.NetworkTime()
	m := conn.Meter()
	fmt.Printf("%s %s: %4d parts, %7d bytes to client (%.0f B/part), %5d round trips, %v\n",
		mode, transport, parts, m.BytesToClient, float64(m.BytesToClient)/float64(parts),
		m.RoundTrips, elapsed.Round(time.Microsecond))
}

const minCostSuppSrc = `
create function minCostSupp(@pkey int) returns char(25) as
begin
  declare @pCost decimal(15,2);
  declare @sName char(25);
  declare @minCost decimal(15,2) = 100000;
  declare @suppName char(25);
  declare c1 cursor for
    select ps_supplycost, s_name from partsupp, supplier
    where ps_partkey = @pkey and ps_suppkey = s_suppkey;
  open c1;
  fetch next from c1 into @pCost, @sName;
  while @@fetch_status = 0
  begin
    if @pCost < @minCost
    begin
      set @minCost = @pCost;
      set @suppName = @sName;
    end
    fetch next from c1 into @pCost, @sName;
  end
  close c1;
  deallocate c1;
  return @suppName;
end`
