// The paper's Experiment 2 (Figure 10(b)): a remote client application
// computing the minimum-cost supplier for a range of parts. The original
// program pulls every part's supplier offers over the network and folds
// them locally; the Aggify version lets a generated custom aggregate reduce
// each part inside the DBMS.
//
// Run with: go run ./examples/mincost-client
package main

import (
	"fmt"
	"log"
	"time"

	"aggify"
	"aggify/internal/tpch"
)

func main() {
	db := aggify.Open()
	if err := tpch.Load(db.Engine(), 0.005); err != nil {
		log.Fatal(err)
	}

	for _, n := range []int64{50, 500} {
		fmt.Printf("--- %d parts ---\n", n)
		runOriginal(db, n)
		runAggified(db, n)
		fmt.Println()
	}
}

// runOriginal is the client-side loop: one offers query per part.
func runOriginal(db *aggify.DB, n int64) {
	conn := db.Connect(aggify.LAN)
	parts, err := conn.Prepare("select p_partkey from part where p_partkey <= ?")
	if err != nil {
		log.Fatal(err)
	}
	offers, err := conn.Prepare(`select ps_supplycost, s_name from partsupp, supplier
	                             where ps_partkey = ? and ps_suppkey = s_suppkey`)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	prs, err := parts.Query(aggify.Int(n))
	if err != nil {
		log.Fatal(err)
	}
	cheapest := map[int64]string{}
	for prs.Next() {
		pkey := prs.Int64("p_partkey")
		ors, err := offers.Query(aggify.Int(pkey))
		if err != nil {
			log.Fatal(err)
		}
		best, bestName := 1e18, ""
		for ors.Next() {
			if c := ors.Float64("ps_supplycost"); c < best {
				best, bestName = c, ors.String("s_name")
			}
		}
		ors.Close()
		cheapest[pkey] = bestName
	}
	prs.Close()
	elapsed := time.Since(start) + conn.NetworkTime()
	m := conn.Meter()
	fmt.Printf("original: %4d parts, %6d bytes to client (%.0f B/part), %4d round trips, %v\n",
		len(cheapest), m.BytesToClient, float64(m.BytesToClient)/float64(len(cheapest)),
		m.RoundTrips, elapsed.Round(time.Microsecond))
}

// runAggified registers the generated aggregate once (via the Aggify
// pipeline on the server) and runs one query.
func runAggified(db *aggify.DB, n int64) {
	// Transform the server-side UDF on first use.
	if _, ok := db.Engine().Function("mincostsupp"); !ok {
		if err := db.Exec(minCostSuppSrc); err != nil {
			log.Fatal(err)
		}
		if _, err := db.AggifyFunction("minCostSupp", aggify.TransformOptions{}); err != nil {
			log.Fatal(err)
		}
	}
	conn := db.Connect(aggify.LAN)
	stmt, err := conn.Prepare("select p_partkey, minCostSupp(p_partkey) as supp from part where p_partkey <= ?")
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	rs, err := stmt.Query(aggify.Int(n))
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	for rs.Next() {
		_ = rs.String("supp")
		count++
	}
	rs.Close()
	elapsed := time.Since(start) + conn.NetworkTime()
	m := conn.Meter()
	fmt.Printf("aggified: %4d parts, %6d bytes to client (%.0f B/part), %4d round trips, %v\n",
		count, m.BytesToClient, float64(m.BytesToClient)/float64(count),
		m.RoundTrips, elapsed.Round(time.Microsecond))
}

const minCostSuppSrc = `
create function minCostSupp(@pkey int) returns char(25) as
begin
  declare @pCost decimal(15,2);
  declare @sName char(25);
  declare @minCost decimal(15,2) = 100000;
  declare @suppName char(25);
  declare c1 cursor for
    select ps_supplycost, s_name from partsupp, supplier
    where ps_partkey = @pkey and ps_suppkey = s_suppkey;
  open c1;
  fetch next from c1 into @pCost, @sName;
  while @@fetch_status = 0
  begin
    if @pCost < @minCost
    begin
      set @minCost = @pCost;
      set @suppName = @sName;
    end
    fetch next from c1 into @pCost, @sName;
  end
  close c1;
  deallocate c1;
  return @suppName;
end`
