// The paper's §2.2 client-program example (Figures 2, 6, and 8): a Java-
// style application computes cumulative time-weighted return on investment
// by iterating a remote query's ResultSet. Aggify moves the loop into the
// DBMS as a custom aggregate: the client ships one CREATE AGGREGATE and one
// query, and receives a single row instead of one per month.
//
// Run with: go run ./examples/roi
package main

import (
	"fmt"
	"log"
	"time"

	"aggify"
)

func main() {
	db := aggify.Open()
	if err := db.Exec(`
create table monthly_investments (investor_id int, start_date date, roi float);
create index idx_inv on monthly_investments(investor_id);
`); err != nil {
		log.Fatal(err)
	}
	// 36 months of returns for investor 7, a handful for others.
	for m := 0; m < 36; m++ {
		roi := 0.01 * float64(m%7) / 3
		if m%5 == 0 {
			roi = -0.01
		}
		if err := db.Exec(fmt.Sprintf(
			"insert into monthly_investments values (7, date '2020-01-01' + %d, %g), (8, date '2020-01-01' + %d, 0.002);",
			m*30, roi, m*30)); err != nil {
			log.Fatal(err)
		}
	}

	// ---- Original: the Figure 2 loop, verbatim in Go against the
	// ResultSet-style client API. ----
	conn := db.Connect(aggify.LAN)
	stmt, err := conn.Prepare(`select roi from monthly_investments
	                           where investor_id = ? and start_date >= ? order by start_date`)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	rs, err := stmt.Query(aggify.Int(7), aggify.Date("2020-01-01"))
	if err != nil {
		log.Fatal(err)
	}
	cumulativeROI := 1.0
	for rs.Next() {
		monthlyROI := rs.Float64("roi")
		cumulativeROI = cumulativeROI * (monthlyROI + 1)
	}
	cumulativeROI = cumulativeROI - 1
	rs.Close()
	origElapsed := time.Since(start) + conn.NetworkTime()
	origMeter := conn.Meter()
	fmt.Printf("original:  cumulative ROI = %.6f\n", cumulativeROI)
	fmt.Printf("           rows transferred=%d, bytes to client=%d, round trips=%d, time=%v\n\n",
		origMeter.RowsTransferred, origMeter.BytesToClient, origMeter.RoundTrips, origElapsed.Round(time.Microsecond))

	// ---- Aggify: register the Figure 6 aggregate once, then run the
	// Figure 8 rewritten program. ----
	setup := db.Connect(aggify.LAN)
	if err := setup.Exec(`
create aggregate CumulativeROIAgg(@monthlyROI float, @p_cum float) returns float as
begin
  fields (@cum float, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      set @cum = @p_cum;
      set @isInitialized = true;
    end
    set @cum = @cum * (@monthlyROI + 1);
  end
  terminate begin return @cum; end
end`); err != nil {
		log.Fatal(err)
	}

	conn2 := db.Connect(aggify.LAN)
	stmt2, err := conn2.Prepare(`select CumulativeROIAgg(q.roi, 1.0)
	                             from (select roi from monthly_investments
	                                   where investor_id = ? and start_date >= ?
	                                   order by start_date) q
	                             option (order enforced)`)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	row, err := stmt2.QueryRow(aggify.Int(7), aggify.Date("2020-01-01"))
	if err != nil {
		log.Fatal(err)
	}
	aggROI := row[0].Float() - 1
	aggElapsed := time.Since(start) + conn2.NetworkTime()
	aggMeter := conn2.Meter()
	fmt.Printf("aggified:  cumulative ROI = %.6f\n", aggROI)
	fmt.Printf("           rows transferred=%d, bytes to client=%d, round trips=%d, time=%v\n\n",
		aggMeter.RowsTransferred, aggMeter.BytesToClient, aggMeter.RoundTrips, aggElapsed.Round(time.Microsecond))

	fmt.Printf("data-movement reduction: %.1fx (the paper's §10.6 measurement)\n",
		float64(origMeter.BytesToClient)/float64(aggMeter.BytesToClient))
	if diff := cumulativeROI - aggROI; diff < 1e-12 && diff > -1e-12 {
		fmt.Println("results identical ✓")
	} else {
		log.Fatalf("results differ: %v vs %v", cumulativeROI, aggROI)
	}
}
