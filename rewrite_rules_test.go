package aggify_test

import (
	"strings"
	"testing"

	"aggify"
	"aggify/internal/plan"
)

// rewriteHeader returns the EXPLAIN `rewrites:` header for sql under the
// given rule mask (empty string when the pass left the query untouched),
// plus the query's result rows rendered one per line.
func rewriteHeader(t *testing.T, db *aggify.DB, disabled plan.RuleSet, sql string) (string, []string) {
	t.Helper()
	sess := db.Session()
	old := sess.Opts.DisableRules
	sess.Opts.DisableRules = disabled
	defer func() { sess.Opts.DisableRules = old }()

	out := runExplainDB(t, db, "EXPLAIN "+sql)
	header := ""
	if first, _, ok := strings.Cut(out, "\n"); ok && strings.HasPrefix(first, "rewrites:") {
		header = first
	}
	return header, queryRows(t, db, sql)
}

func queryRows(t *testing.T, db *aggify.DB, sql string) []string {
	t.Helper()
	rows, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	out := make([]string, len(rows.Data))
	for i, r := range rows.Data {
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.String()
		}
		out[i] = strings.Join(cells, "|")
	}
	return out
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRewriteRuleToggles exercises each logical rewrite rule individually:
// a query known to fire the rule must report it in the EXPLAIN `rewrites:`
// header, disabling just that rule's bit must silence it, and the results
// must be identical either way.
func TestRewriteRuleToggles(t *testing.T) {
	db := newDemoDB(t)
	cases := []struct {
		rule string
		bit  plan.RuleSet
		sql  string
	}{
		{"fold_const", plan.RuleFoldConst,
			"select s_name from supplier where 1 = 1 and s_suppkey >= 10 order by s_name"},
		{"push_filter", plan.RulePushFilter,
			"select q.ps_suppkey from (select ps_partkey, ps_suppkey from partsupp) q where q.ps_partkey = 1 order by ps_suppkey"},
		{"push_filter_decor", plan.RulePushFilterDecor,
			"select q.k, q.s from (select ps_partkey as k, sum(ps_supplycost) as s from partsupp group by ps_partkey) q where q.k = 1"},
		{"prune_project", plan.RulePruneProject,
			"select q.ps_partkey from (select ps_partkey, ps_suppkey, ps_supplycost from partsupp) q order by ps_partkey"},
		{"drop_sort", plan.RuleDropSort,
			"select q.s_name from (select top 5 s_name from supplier order by s_name) q order by s_name"},
	}
	for _, c := range cases {
		// The rule name followed by '(' distinguishes push_filter from
		// push_filter_decor in the header.
		marker := c.rule + "("
		on, onRows := rewriteHeader(t, db, 0, c.sql)
		if !strings.Contains(on, marker) {
			t.Errorf("%s: rule did not fire, header %q\nquery: %s", c.rule, on, c.sql)
			continue
		}
		off, offRows := rewriteHeader(t, db, c.bit, c.sql)
		if strings.Contains(off, marker) {
			t.Errorf("%s: fired while disabled, header %q", c.rule, off)
		}
		if !sameRows(onRows, offRows) {
			t.Errorf("%s: rule changed results\n on: %v\noff: %v\nquery: %s", c.rule, onRows, offRows, c.sql)
		}
	}
}

// TestRewriteAllDisabled: RuleAll must silence the whole pass — no header
// on any query that otherwise rewrites.
func TestRewriteAllDisabled(t *testing.T) {
	db := newDemoDB(t)
	sql := "select q.ps_suppkey from (select ps_partkey, ps_suppkey, ps_supplycost from partsupp) q where q.ps_partkey = 1 and 1 = 1 order by ps_suppkey"
	on, onRows := rewriteHeader(t, db, 0, sql)
	if on == "" {
		t.Fatalf("expected rewrites on the control query")
	}
	off, offRows := rewriteHeader(t, db, plan.RuleAll, sql)
	if off != "" {
		t.Fatalf("RuleAll still rewrote: %q", off)
	}
	if !sameRows(onRows, offRows) {
		t.Fatalf("disabled pass changed results\n on: %v\noff: %v", onRows, offRows)
	}
}

// TestDisableDecorrelationDisablesDecorRules: the Aggify+ ablation switch
// must also turn off rewrite rules that assume decorrelated shapes —
// push_filter_decor must not fire even though its DisableRules bit is clear.
func TestDisableDecorrelationDisablesDecorRules(t *testing.T) {
	db := newDemoDB(t)
	sql := "select q.k, q.s from (select ps_partkey as k, sum(ps_supplycost) as s from partsupp group by ps_partkey) q where q.k = 1"

	on, onRows := rewriteHeader(t, db, 0, sql)
	if !strings.Contains(on, "push_filter_decor(") {
		t.Fatalf("control query must fire push_filter_decor, header %q", on)
	}

	sess := db.Session()
	sess.Opts.DisableDecorrelation = true
	defer func() { sess.Opts.DisableDecorrelation = false }()
	off, offRows := rewriteHeader(t, db, 0, sql)
	if strings.Contains(off, "push_filter_decor(") {
		t.Fatalf("push_filter_decor fired under DisableDecorrelation, header %q", off)
	}
	if !sameRows(onRows, offRows) {
		t.Fatalf("ablation changed results\n on: %v\noff: %v", onRows, offRows)
	}
}

// TestDecorrelateEdgeCases pins planner behaviour on shapes where apply
// decorrelation and the rewrite pass interact: a correlated scalar subquery
// inside a would-be pushdown predicate, a correlated apply under TOP, and
// correlation reaching through two derived-table levels. Each query runs
// under four configurations (default, no decorrelation, no rewrite rules,
// neither) which must all agree.
func TestDecorrelateEdgeCases(t *testing.T) {
	db := newDemoDB(t)
	cases := []struct {
		name, sql string
		want      []string
	}{
		{"correlated subquery in pushdown predicate",
			`select q.k from (select ps_partkey as k from partsupp) q
			 where (select count(*) from partsupp p2 where p2.ps_partkey = q.k) > 1
			 order by k`,
			[]string{"1", "1"}},
		{"apply under top",
			`select top 2 ps_partkey, (select s_name from supplier where s_suppkey = ps_suppkey) as nm
			 from partsupp order by ps_partkey, nm`,
			nil}, // cross-config agreement only: char() padding is config-independent
		{"correlation through two derived levels",
			`select s_suppkey, (select min(x.c) from (select y.c from
			   (select ps_supplycost as c, ps_suppkey as sk from partsupp) y
			   where y.sk = s_suppkey) x) as m
			 from supplier order by s_suppkey`,
			[]string{"10|5", "11|3.5"}},
	}
	sess := db.Session()
	for _, c := range cases {
		// A predicate containing a subquery must never be pushed into a
		// derived table (the subquery's correlation scope would change).
		if c.name == "correlated subquery in pushdown predicate" {
			header, _ := rewriteHeader(t, db, 0, c.sql)
			if strings.Contains(header, "push_filter(") || strings.Contains(header, "push_filter_decor(") {
				t.Errorf("%s: predicate with subquery was pushed, header %q", c.name, header)
			}
		}
		var base []string
		for _, cfg := range []struct {
			name    string
			noDecor bool
			rules   plan.RuleSet
		}{
			{"default", false, 0},
			{"no-decorrelate", true, 0},
			{"no-rules", false, plan.RuleAll},
			{"neither", true, plan.RuleAll},
		} {
			sess.Opts.DisableDecorrelation = cfg.noDecor
			sess.Opts.DisableRules = cfg.rules
			got := queryRows(t, db, c.sql)
			sess.Opts.DisableDecorrelation = false
			sess.Opts.DisableRules = 0
			if base == nil {
				base = got
				if c.want != nil && !sameRows(got, c.want) {
					t.Errorf("%s: wrong rows %v, want %v", c.name, got, c.want)
				}
				if c.want == nil && len(got) == 0 {
					t.Errorf("%s: no rows", c.name)
				}
				continue
			}
			if !sameRows(base, got) {
				t.Errorf("%s (%s): rows diverged\n got: %v\nbase: %v", c.name, cfg.name, got, base)
			}
		}
	}
}
