// Package aggify is the public facade of the Aggify reproduction — an
// implementation of "Aggify: Lifting the Curse of Cursor Loops using Custom
// Aggregates" (SIGMOD 2020) together with the database substrate it needs:
// a T-SQL-like engine with cursors, UDFs, stored procedures, and custom
// aggregates.
//
// The three core operations are:
//
//   - Open an in-memory database and run dialect scripts (DDL, DML,
//     queries, CREATE FUNCTION/PROCEDURE/AGGREGATE).
//   - Transform: run Aggify on a UDF or stored procedure, replacing its
//     cursor loops with queries over generated custom aggregates.
//   - Connect: open a metered client connection (the JDBC-style API of the
//     paper's client-program experiments).
//
// See the examples/ directory for runnable walkthroughs of the paper's
// Figures 1–8.
package aggify

import (
	"fmt"
	"strings"

	"aggify/internal/ast"
	"aggify/internal/client"
	"aggify/internal/core"
	"aggify/internal/engine"
	"aggify/internal/exec"
	"aggify/internal/froid"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/server"
	"aggify/internal/sqltypes"
	"aggify/internal/wire"
)

// Value is a SQL runtime value.
type Value = sqltypes.Value

// Convenience constructors re-exported from the value package.
var (
	// Null is the SQL NULL value.
	Null = sqltypes.Null
	// Int builds an INT value.
	Int = sqltypes.NewInt
	// Float builds a FLOAT value.
	Float = sqltypes.NewFloat
	// Str builds a string value.
	Str = sqltypes.NewString
	// Bool builds a BIT value.
	Bool = sqltypes.NewBool
	// Date parses a 'YYYY-MM-DD' date value (panics on malformed input).
	Date = sqltypes.MustDate
)

// NetworkProfile configures the simulated client/server network.
type NetworkProfile = wire.Profile

// LAN is the default network profile (0.5 ms RTT, 1 Gb/s).
var LAN = wire.LAN

// Conn is a metered client connection (Prepare / Query / ResultSet).
type Conn = client.Conn

// Server is an aggifyd TCP server: the engine behind the binary wire
// protocol, one session per connection.
type Server = server.Server

// ErrServerClosed is returned by Server.Serve after a Shutdown.
var ErrServerClosed = server.ErrServerClosed

// Dial opens a client connection to a running aggifyd server. The driver
// API is identical to Connect; the meter counts real socket bytes.
func Dial(addr string, profile NetworkProfile) (*Conn, error) {
	return client.Dial(addr, profile)
}

// DB is an embedded database instance.
type DB struct {
	eng  *engine.Engine
	sess *engine.Session
}

// Open creates an empty in-memory database.
func Open() *DB {
	eng := engine.New()
	interp.Install(eng)
	return &DB{eng: eng, sess: eng.NewSession()}
}

// Engine exposes the underlying engine (for advanced integration and the
// internal benchmark harness).
func (db *DB) Engine() *engine.Engine { return db.eng }

// Session exposes the DB's default session (statistics, planner options).
func (db *DB) Session() *engine.Session { return db.sess }

// SetMaxDOP sets the default degree of parallelism for the DB's session and
// every session created afterwards (server connections included). n > 1
// allows parallel aggregation plans with up to n workers; 1 forces serial
// execution. Equivalent to the SET MAXDOP statement on a single session.
func (db *DB) SetMaxDOP(n int) {
	db.eng.DefaultMaxDOP = n
	db.sess.SetMaxDOP(n)
}

// Exec parses and executes a script: DDL, DML, control flow, CREATE
// FUNCTION / PROCEDURE / AGGREGATE.
func (db *DB) Exec(src string) error {
	stmts, spans, err := parser.ParseSpans(src)
	if err != nil {
		return err
	}
	_, err = interp.RunScriptSpans(db.sess, src, stmts, spans)
	return err
}

// Rows is a fully-materialized query result.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// Query runs a single SELECT and returns all rows.
func (db *DB) Query(sql string) (*Rows, error) {
	stmts, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("aggify: Query expects a single statement")
	}
	switch st := stmts[0].(type) {
	case *ast.QueryStmt:
		rec := db.sess.BeginStmt(sql)
		cols, rows, err := db.sess.Query(st.Query, db.sess.Ctx(nil, nil))
		db.sess.EndStmt(rec, err)
		if err != nil {
			return nil, err
		}
		return &Rows{Columns: cols, Data: rows}, nil
	case *ast.ExplainStmt:
		lines, err := db.sess.ExplainQuery(st.Query, st.Analyze, db.sess.Ctx(nil, nil))
		if err != nil {
			return nil, err
		}
		data := make([][]Value, len(lines))
		for i, l := range lines {
			data[i] = []Value{sqltypes.NewString(l)}
		}
		return &Rows{Columns: []string{"plan"}, Data: data}, nil
	case *ast.TraceProcStmt:
		res, err := interp.RunScript(db.sess, stmts)
		if err != nil {
			return nil, err
		}
		if len(res) != 1 {
			return nil, fmt.Errorf("aggify: TRACE PROCEDURE produced %d result sets", len(res))
		}
		return &Rows{Columns: res[0].Columns, Data: res[0].Rows}, nil
	default:
		return nil, fmt.Errorf("aggify: Query expects a SELECT (use Exec for scripts)")
	}
}

// ProcedureProfile is the structured result of profiling one procedure
// invocation (see ProfileProcedure).
type ProcedureProfile = interp.ProcedureProfile

// ProfileProcedure runs a registered stored procedure with the interpreter's
// procedural profiler enabled and returns per-statement and per-cursor-loop
// attribution: iteration counts, rows fetched, wall time inside the loop
// body, and whether the Aggify analysis deems each loop rewritable. The
// procedure really executes, exactly like CallProc. The same report is
// available in the dialect as TRACE PROCEDURE name [args] and in sqlsh as
// \profile.
func (db *DB) ProfileProcedure(proc string, args ...Value) (*ProcedureProfile, error) {
	return interp.ProfileProcedure(db.sess, proc, args...)
}

// QueryScalar runs a SELECT expected to produce one value.
func (db *DB) QueryScalar(sql string) (Value, error) {
	rows, err := db.Query(sql)
	if err != nil {
		return Null, err
	}
	if len(rows.Data) != 1 || len(rows.Data[0]) != 1 {
		return Null, fmt.Errorf("aggify: scalar query returned %d rows", len(rows.Data))
	}
	return rows.Data[0][0], nil
}

// Call invokes a registered scalar UDF.
func (db *DB) Call(fn string, args ...Value) (Value, error) {
	return interp.CallFunctionByName(db.sess, fn, args...)
}

// CallProc invokes a registered stored procedure.
func (db *DB) CallProc(proc string, args ...Value) error {
	return interp.CallProcedureByName(db.sess, proc, args...)
}

// Connect opens a metered client connection to this database (its own
// server session), as the paper's remote application programs do.
func (db *DB) Connect(profile NetworkProfile) *Conn {
	return client.Connect(db.eng, profile)
}

// NewServer returns an aggifyd TCP server over this database. Use
// Serve/ListenAndServe to accept connections and Shutdown to drain.
func (db *DB) NewServer() *Server {
	return server.New(db.eng)
}

// RegisterAggregate registers a native-Go custom aggregate implementing
// the Init/Accumulate/Terminate(/Merge) contract of §3.1.
//
// The constructor is called once per group; the returned object's methods
// implement the contract. Mergeable aggregates (non-nil Merge) are eligible
// for parallel aggregation.
func (db *DB) RegisterAggregate(name string, orderSensitive bool, constructor func() Aggregator) error {
	return db.eng.RegisterAggregateSpec(&exec.AggSpec{
		Name:           strings.ToLower(name),
		OrderSensitive: orderSensitive,
		Mergeable:      false,
		New: func() exec.Aggregator {
			return &nativeAgg{impl: constructor()}
		},
	})
}

// Aggregator is the public custom-aggregate contract (§3.1).
type Aggregator interface {
	// Init resets the aggregate state (called once per group).
	Init()
	// Accumulate folds one input tuple into the state.
	Accumulate(args []Value) error
	// Terminate returns the final value.
	Terminate() (Value, error)
}

// nativeAgg adapts the public contract to the executor's internal one.
type nativeAgg struct {
	impl Aggregator
}

func (a *nativeAgg) Reset() { a.impl.Init() }
func (a *nativeAgg) Step(_ *exec.Ctx, args []Value) error {
	return a.impl.Accumulate(args)
}
func (a *nativeAgg) Result(*exec.Ctx) (Value, error) { return a.impl.Terminate() }
func (a *nativeAgg) Merge(exec.Aggregator) error {
	return fmt.Errorf("aggify: native aggregates registered via RegisterAggregate do not merge")
}

// ----- The Aggify transformation -----

// TransformOptions configure the transformation.
type TransformOptions struct {
	// LiftForLoops enables §8.1: counted FOR loops are lifted through
	// recursive CTEs and then aggified.
	LiftForLoops bool
	// KeepDeadDeclarations disables the §6.2 dead-declaration cleanup.
	KeepDeadDeclarations bool
}

func (o TransformOptions) core() core.Options {
	return core.Options{LiftForLoops: o.LiftForLoops, KeepDeadDeclarations: o.KeepDeadDeclarations}
}

// TransformResult reports one module's transformation.
type TransformResult struct {
	// Name is the transformed function/procedure.
	Name string
	// RewrittenSource is the loop-free module definition.
	RewrittenSource string
	// AggregateSources holds the generated CREATE AGGREGATE definitions
	// (innermost loops first).
	AggregateSources []string
	// LoopsTransformed counts the cursor loops replaced.
	LoopsTransformed int
	// Skipped lists loops that failed the §4.2 applicability check.
	Skipped []string
	// Details exposes the per-loop variable sets (V_F, P_accum, V_init,
	// V_term) for inspection.
	Details []*core.LoopResult
}

// TransformSource runs Aggify on every CREATE FUNCTION / CREATE PROCEDURE
// in the given source, without touching any database. It returns one result
// per module (modules without cursor loops come back unchanged with
// LoopsTransformed == 0).
func TransformSource(src string, opts TransformOptions) ([]*TransformResult, error) {
	stmts, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	var out []*TransformResult
	for _, s := range stmts {
		switch def := s.(type) {
		case *ast.CreateFunction:
			rewritten, res, err := core.TransformFunction(def, opts.core())
			if err != nil {
				return nil, err
			}
			out = append(out, buildResult(def.Name, rewritten, res))
		case *ast.CreateProcedure:
			rewritten, res, err := core.TransformProcedure(def, opts.core())
			if err != nil {
				return nil, err
			}
			out = append(out, buildResult(def.Name, rewritten, res))
		}
	}
	return out, nil
}

func buildResult(name string, rewritten ast.Stmt, res *core.Result) *TransformResult {
	tr := &TransformResult{
		Name:             name,
		RewrittenSource:  ast.Format(rewritten),
		LoopsTransformed: len(res.Loops),
		Details:          res.Loops,
	}
	for _, agg := range res.Aggregates() {
		tr.AggregateSources = append(tr.AggregateSources, ast.Format(agg))
	}
	for _, skip := range res.Skipped {
		tr.Skipped = append(tr.Skipped, skip.Error())
	}
	return tr
}

// AggifyFunction transforms a registered UDF in place: the generated
// aggregates are registered and the function definition is replaced by the
// loop-free rewrite, so subsequent calls run the aggified version.
func (db *DB) AggifyFunction(name string, opts TransformOptions) (*TransformResult, error) {
	def, ok := db.eng.Function(name)
	if !ok {
		return nil, fmt.Errorf("aggify: unknown function %s", name)
	}
	rewritten, res, err := core.TransformFunction(def, opts.core())
	if err != nil {
		return nil, err
	}
	for _, lr := range res.Loops {
		if err := db.eng.RegisterAggregate(lr.Aggregate, lr.OrderSensitive); err != nil {
			return nil, err
		}
	}
	if err := db.eng.RegisterFunction(rewritten); err != nil {
		return nil, err
	}
	db.eng.InvalidatePlans()
	return buildResult(name, rewritten, res), nil
}

// AggifyProcedure is AggifyFunction for stored procedures.
func (db *DB) AggifyProcedure(name string, opts TransformOptions) (*TransformResult, error) {
	def, ok := db.eng.Procedure(name)
	if !ok {
		return nil, fmt.Errorf("aggify: unknown procedure %s", name)
	}
	rewritten, res, err := core.TransformProcedure(def, opts.core())
	if err != nil {
		return nil, err
	}
	for _, lr := range res.Loops {
		if err := db.eng.RegisterAggregate(lr.Aggregate, lr.OrderSensitive); err != nil {
			return nil, err
		}
	}
	if err := db.eng.RegisterProcedure(rewritten); err != nil {
		return nil, err
	}
	db.eng.InvalidatePlans()
	return buildResult(name, rewritten, res), nil
}

// InlineFunction Froid-inlines a (loop-free) registered UDF into a query
// string, returning the rewritten query source — the §8.2 "Aggify+"
// pipeline's second step. Functions that are not inlinable are left as
// calls.
func (db *DB) InlineFunction(query string) (string, []string, error) {
	stmts, err := parser.Parse(query)
	if err != nil {
		return "", nil, err
	}
	qs, ok := stmts[0].(*ast.QueryStmt)
	if !ok || len(stmts) != 1 {
		return "", nil, fmt.Errorf("aggify: InlineFunction expects a single SELECT")
	}
	inlined, names, err := froid.InlineInSelect(qs.Query, func(name string) (*ast.CreateFunction, bool) {
		return db.eng.Function(name)
	})
	if err != nil {
		return "", nil, err
	}
	return inlined.String(), names, nil
}

// Explain returns the physical plan chosen for a query.
func (db *DB) Explain(sql string) (string, error) {
	stmts, err := parser.Parse(sql)
	if err != nil {
		return "", err
	}
	qs, ok := stmts[0].(*ast.QueryStmt)
	if !ok || len(stmts) != 1 {
		return "", fmt.Errorf("aggify: Explain expects a single SELECT")
	}
	p, err := db.sess.PlanQuery(qs.Query, nil)
	if err != nil {
		return "", err
	}
	return p.Explain.String(), nil
}
