package aggify_test

import (
	"math"
	"strings"
	"testing"

	"aggify"
)

func newDemoDB(t *testing.T) *aggify.DB {
	t.Helper()
	db := aggify.Open()
	if err := db.Exec(`
create table partsupp (ps_partkey int, ps_suppkey int, ps_supplycost decimal(15,2));
create index idx_ps on partsupp(ps_partkey);
create table supplier (s_suppkey int, s_name char(25));
create index pk_s on supplier(s_suppkey);
insert into supplier values (10, 'acme'), (11, 'bolts inc');
insert into partsupp values (1, 10, 5.0), (1, 11, 3.5), (2, 10, 7.0);
GO
create function minCostSupp(@pkey int) returns char(25) as
begin
  declare @pCost decimal(15,2);
  declare @sName char(25);
  declare @minCost decimal(15,2) = 100000;
  declare @suppName char(25);
  declare c cursor for
    select ps_supplycost, s_name from partsupp, supplier
    where ps_partkey = @pkey and ps_suppkey = s_suppkey;
  open c;
  fetch next from c into @pCost, @sName;
  while @@fetch_status = 0
  begin
    if @pCost < @minCost
    begin
      set @minCost = @pCost;
      set @suppName = @sName;
    end
    fetch next from c into @pCost, @sName;
  end
  close c;
  deallocate c;
  return @suppName;
end`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFacadeQueryAndCall(t *testing.T) {
	db := newDemoDB(t)
	v, err := db.Call("minCostSupp", aggify.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(v.Str()) != "bolts inc" {
		t.Fatalf("minCostSupp(1) = %q", v.Str())
	}
	rows, err := db.Query("select count(*) from partsupp")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Int() != 3 {
		t.Fatalf("count = %v", rows.Data)
	}
	if _, err := db.QueryScalar("select 6 * 7"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAggifyInPlace(t *testing.T) {
	db := newDemoDB(t)
	before, err := db.Call("minCostSupp", aggify.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.AggifyFunction("minCostSupp", aggify.TransformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LoopsTransformed != 1 {
		t.Fatalf("loops = %d (skipped %v)", res.LoopsTransformed, res.Skipped)
	}
	if len(res.AggregateSources) != 1 || !strings.Contains(res.AggregateSources[0], "CREATE AGGREGATE") {
		t.Fatalf("aggregate sources = %v", res.AggregateSources)
	}
	if strings.Contains(strings.ToUpper(res.RewrittenSource), "CURSOR") {
		t.Fatalf("rewritten source still has a cursor:\n%s", res.RewrittenSource)
	}
	after, err := db.Call("minCostSupp", aggify.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if before.Str() != after.Str() {
		t.Fatalf("results differ: %q vs %q", before.Str(), after.Str())
	}
}

func TestFacadeTransformSource(t *testing.T) {
	src := `
create function f(@n int) returns int as
begin
  declare @v int;
  declare @s int = 0;
  declare c cursor for select v from t where k = @n;
  open c;
  fetch next from c into @v;
  while @@fetch_status = 0
  begin
    set @s = @s + @v;
    fetch next from c into @v;
  end
  close c;
  deallocate c;
  return @s;
end`
	results, err := aggify.TransformSource(src, aggify.TransformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].LoopsTransformed != 1 {
		t.Fatalf("results = %+v", results)
	}
	d := results[0].Details[0]
	if len(d.Params) == 0 || len(d.VTerm) != 1 {
		t.Fatalf("details = %+v", d)
	}
}

func TestFacadeNativeAggregate(t *testing.T) {
	db := newDemoDB(t)
	if err := db.RegisterAggregate("geomean", false, func() aggify.Aggregator {
		return &geoMeanAgg{}
	}); err != nil {
		t.Fatal(err)
	}
	v, err := db.QueryScalar("select geomean(ps_supplycost) from partsupp where ps_partkey = 1")
	if err != nil {
		t.Fatal(err)
	}
	want := 4.183300132670378 // sqrt(5.0 * 3.5)
	if d := v.Float() - want; d > 1e-9 || d < -1e-9 {
		t.Fatalf("geomean = %v, want %v", v, want)
	}
}

type geoMeanAgg struct {
	product float64
	n       int
}

func (g *geoMeanAgg) Init() { g.product, g.n = 1, 0 }
func (g *geoMeanAgg) Accumulate(args []aggify.Value) error {
	f, _ := args[0].AsFloat()
	g.product *= f
	g.n++
	return nil
}
func (g *geoMeanAgg) Terminate() (aggify.Value, error) {
	if g.n == 0 {
		return aggify.Null, nil
	}
	return aggify.Float(math.Pow(g.product, 1/float64(g.n))), nil
}

func TestFacadeInlineAndExplain(t *testing.T) {
	db := newDemoDB(t)
	if _, err := db.AggifyFunction("minCostSupp", aggify.TransformOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("create table part (p_partkey int); insert into part values (1), (2);"); err != nil {
		t.Fatal(err)
	}
	inlined, names, err := db.InlineFunction("select p_partkey, minCostSupp(p_partkey) from part")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("inlined %v", names)
	}
	plan, err := db.Explain(inlined)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "HashJoin") {
		t.Fatalf("expected decorrelated plan:\n%s", plan)
	}
	rows, err := db.Query(inlined)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestFacadeClientConnection(t *testing.T) {
	db := newDemoDB(t)
	conn := db.Connect(aggify.LAN)
	stmt, err := conn.Prepare("select ps_supplycost from partsupp where ps_partkey = ?")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := stmt.Query(aggify.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rs.Next() {
		n++
	}
	if n != 2 {
		t.Fatalf("rows = %d", n)
	}
	if conn.Meter().RowsTransferred != 2 {
		t.Fatalf("meter = %+v", conn.Meter())
	}
}

func TestFacadeErrors(t *testing.T) {
	db := aggify.Open()
	if err := db.Exec("not valid sql"); err == nil {
		t.Fatal("bad script should error")
	}
	if _, err := db.Query("insert into t values (1)"); err == nil {
		t.Fatal("Query of non-SELECT should error")
	}
	if _, err := db.AggifyFunction("missing", aggify.TransformOptions{}); err == nil {
		t.Fatal("missing function should error")
	}
}
