module aggify

go 1.22
