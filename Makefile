GO ?= go

.PHONY: all build test race vet fmt ci bench bench-gate

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem ./...
	./scripts/bench_regress.sh

bench-gate:
	./scripts/bench_regress.sh

ci: fmt vet build race
