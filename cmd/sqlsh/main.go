// Command sqlsh is a batch/interactive shell for the engine's dialect.
//
// Usage:
//
//	sqlsh                 # interactive (reads statements, GO executes)
//	sqlsh script.sql...   # execute files in order, then exit
//	echo "select 1" | sqlsh
//
// Meta commands (interactive mode):
//
//	\q            quit
//	\explain SQL  print the physical plan for a query
//	\stats        print the session's I/O statistics
//	\aggify NAME  transform the named function/procedure in place
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"aggify"
)

func main() {
	db := aggify.Open()
	if len(os.Args) > 1 {
		for _, path := range os.Args[1:] {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			if err := runBatch(db, string(data)); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				os.Exit(1)
			}
		}
		return
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var batch strings.Builder
	interactive := isTerminalish()
	if interactive {
		fmt.Println("aggify sqlsh — end a batch with GO, \\q to quit")
		fmt.Print("> ")
	}
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "\\q":
			return
		case strings.HasPrefix(trimmed, "\\explain "):
			plan, err := db.Explain(strings.TrimPrefix(trimmed, "\\explain "))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
			} else {
				fmt.Print(plan)
			}
		case trimmed == "\\stats":
			s := db.Session().Stats.Snapshot()
			fmt.Printf("logical reads=%d worktable writes=%d worktable reads=%d rows emitted=%d index seeks=%d\n",
				s.LogicalReads, s.WorktableWrites, s.WorktableReads, s.RowsEmitted, s.IndexSeeks)
		case strings.HasPrefix(trimmed, "\\aggify "):
			name := strings.TrimSpace(strings.TrimPrefix(trimmed, "\\aggify "))
			res, err := db.AggifyFunction(name, aggify.TransformOptions{})
			if err != nil {
				res, err = db.AggifyProcedure(name, aggify.TransformOptions{})
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
			} else {
				fmt.Printf("transformed %d loop(s); %d skipped\n", res.LoopsTransformed, len(res.Skipped))
				for _, agg := range res.AggregateSources {
					fmt.Println(agg)
				}
				fmt.Println(res.RewrittenSource)
			}
		case strings.EqualFold(trimmed, "go"):
			if err := runBatch(db, batch.String()); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			batch.Reset()
		default:
			batch.WriteString(line)
			batch.WriteByte('\n')
		}
		if interactive {
			fmt.Print("> ")
		}
	}
	if strings.TrimSpace(batch.String()) != "" {
		if err := runBatch(db, batch.String()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// runBatch executes a script; standalone SELECTs print their result sets.
func runBatch(db *aggify.DB, src string) error {
	if strings.TrimSpace(src) == "" {
		return nil
	}
	// Try as a single query first so results print nicely.
	if rows, err := db.Query(src); err == nil {
		printRows(rows)
		return nil
	}
	return db.Exec(src)
}

func printRows(rows *aggify.Rows) {
	fmt.Println(strings.Join(rows.Columns, "\t"))
	for _, r := range rows.Data {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.Display()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("(%d rows)\n", len(rows.Data))
}

func isTerminalish() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlsh:", err)
	os.Exit(1)
}
