// Command sqlsh is a batch/interactive shell for the engine's dialect,
// either embedded (default) or against a running aggifyd server.
//
// Usage:
//
//	sqlsh                        # interactive, embedded engine
//	sqlsh script.sql...          # execute files in order, then exit
//	echo "select 1" | sqlsh
//	sqlsh -connect 127.0.0.1:5433 [script.sql...]   # over TCP
//
// Meta commands (interactive mode):
//
//	\q            quit
//	\explain SQL  print the physical plan for a query (shorthand for the
//	              EXPLAIN statement, which also works inside batches;
//	              EXPLAIN ANALYZE executes and annotates with runtime stats)
//	\stats        print I/O statistics (embedded) or wire traffic plus
//	              server query metrics (remote)
//	\profile P [args]  run procedure P with the procedural profiler and
//	              print per-statement and per-cursor-loop attribution
//	              (shorthand for TRACE PROCEDURE, which also works inside
//	              batches and over -connect)
//	\aggify NAME  transform the named function/procedure in place (embedded only)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"aggify"
)

// shell abstracts over the embedded engine and a remote aggifyd connection.
type shell struct {
	db   *aggify.DB   // embedded mode
	conn *aggify.Conn // remote mode
}

func main() {
	connect := flag.String("connect", "", "address of a running aggifyd (empty = embedded engine)")
	flag.Parse()

	var sh shell
	if *connect != "" {
		conn, err := aggify.Dial(*connect, aggify.LAN)
		if err != nil {
			fatal(err)
		}
		defer conn.Close()
		sh.conn = conn
	} else {
		sh.db = aggify.Open()
	}

	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			if err := sh.runBatch(string(data)); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				os.Exit(1)
			}
		}
		return
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var batch strings.Builder
	interactive := isTerminalish()
	if interactive {
		fmt.Println("aggify sqlsh — end a batch with GO, \\q to quit")
		fmt.Print("> ")
	}
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "\\q":
			return
		case strings.HasPrefix(trimmed, "\\explain "):
			sh.explain(strings.TrimPrefix(trimmed, "\\explain "))
		case trimmed == "\\stats":
			sh.stats()
		case strings.HasPrefix(trimmed, "\\profile "):
			sh.profile(strings.TrimSpace(strings.TrimPrefix(trimmed, "\\profile ")))
		case strings.HasPrefix(trimmed, "\\aggify "):
			sh.aggifyModule(strings.TrimSpace(strings.TrimPrefix(trimmed, "\\aggify ")))
		case strings.EqualFold(trimmed, "go"):
			if err := sh.runBatch(batch.String()); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			batch.Reset()
		default:
			batch.WriteString(line)
			batch.WriteByte('\n')
		}
		if interactive {
			fmt.Print("> ")
		}
	}
	if strings.TrimSpace(batch.String()) != "" {
		if err := sh.runBatch(batch.String()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// runBatch executes a script; standalone SELECTs print their result sets.
func (sh *shell) runBatch(src string) error {
	if strings.TrimSpace(src) == "" {
		return nil
	}
	if sh.conn != nil {
		res, err := sh.conn.ExecResults(src)
		if err != nil {
			return err
		}
		for _, p := range res.Prints {
			fmt.Println(p)
		}
		for _, set := range res.Sets {
			printRows(&aggify.Rows{Columns: set.Columns, Data: set.Rows})
		}
		return nil
	}
	// Try as a single query first so results print nicely.
	if rows, err := sh.db.Query(src); err == nil {
		printRows(rows)
		return nil
	}
	return sh.db.Exec(src)
}

// explain routes \explain through the dialect's EXPLAIN statement, so it
// works identically embedded and over -connect (and accepts a leading
// "analyze" for EXPLAIN ANALYZE).
func (sh *shell) explain(sql string) {
	if err := sh.runBatch("EXPLAIN " + sql); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// profile routes \profile through the dialect's TRACE PROCEDURE statement,
// so it works identically embedded and over -connect.
func (sh *shell) profile(procAndArgs string) {
	if err := sh.runBatch("TRACE PROCEDURE " + procAndArgs); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func (sh *shell) stats() {
	if sh.conn != nil {
		m := sh.conn.Meter()
		fmt.Printf("bytes to server=%d bytes to client=%d round trips=%d rows transferred=%d\n",
			m.BytesToServer, m.BytesToClient, m.RoundTrips, m.RowsTransferred)
		st, err := sh.conn.ServerMetrics()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		fmt.Printf("server: conns=%d requests=%d execs=%d queries=%d fetches=%d cursors opened=%d open=%d\n",
			st.Connections, st.Requests, st.Execs, st.Queries, st.Fetches, st.CursorsOpened, st.OpenCursors)
		fmt.Printf("server: bytes in=%d out=%d latency p50=%dµs p99=%dµs slow=%d\n",
			st.BytesIn, st.BytesOut, st.P50Micros, st.P99Micros, st.SlowCount)
		for _, sq := range st.Slow {
			if sq.Fingerprint != 0 {
				fmt.Printf("server: slow %dµs x%d fp=%016x %s\n", sq.Micros, sq.Count, sq.Fingerprint, sq.Summary)
			} else {
				fmt.Printf("server: slow %dµs x%d %s\n", sq.Micros, sq.Count, sq.Summary)
			}
		}
		return
	}
	s := sh.db.Session().Stats.Snapshot()
	fmt.Printf("logical reads=%d worktable writes=%d worktable reads=%d rows emitted=%d index seeks=%d\n",
		s.LogicalReads, s.WorktableWrites, s.WorktableReads, s.RowsEmitted, s.IndexSeeks)
}

func (sh *shell) aggifyModule(name string) {
	if sh.conn != nil {
		fmt.Fprintln(os.Stderr, "\\aggify is not supported over -connect (transform with aggify.TransformSource and send the SQL)")
		return
	}
	res, err := sh.db.AggifyFunction(name, aggify.TransformOptions{})
	if err != nil {
		res, err = sh.db.AggifyProcedure(name, aggify.TransformOptions{})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("transformed %d loop(s); %d skipped\n", res.LoopsTransformed, len(res.Skipped))
	for _, agg := range res.AggregateSources {
		fmt.Println(agg)
	}
	fmt.Println(res.RewrittenSource)
}

func printRows(rows *aggify.Rows) {
	fmt.Println(strings.Join(rows.Columns, "\t"))
	for _, r := range rows.Data {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.Display()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("(%d rows)\n", len(rows.Data))
}

func isTerminalish() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlsh:", err)
	os.Exit(1)
}
