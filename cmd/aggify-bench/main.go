// Command aggify-bench regenerates the paper's evaluation tables and
// figures (§10): Table 1 (applicability), Figure 9(a) and Table 2 (TPC-H
// cursor-loop workload), Figure 9(b) (RUBiS client programs), Figure 9(c)
// (customer workloads L1–L8), Figures 10(a)–10(c) and Figure 11
// (scalability and data-movement sweeps).
//
// Usage:
//
//	aggify-bench -exp all
//	aggify-bench -exp fig9a -sf 0.05 -timeout 1m
//	aggify-bench -exp fig10b -sweep 20,200,2000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"aggify/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig9a, table2, fig9b, fig9c, fig10a, fig10b, fig10c, fig11, all")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor (paper: 10)")
	scale := flag.Float64("scale", 1.0, "RUBiS / customer-workload scale")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-run budget; expiry reported as the paper's ⊘")
	reps := flag.Int("reps", 3, "repetitions per point (best is reported; warm cache)")
	rtt := flag.Duration("rtt", 500*time.Microsecond, "simulated client/server round-trip time")
	bandwidth := flag.Int64("bandwidth", 125_000_000, "simulated bandwidth in bytes/sec (default 1 Gb/s; try 1250000 for a 10 Mb/s WAN)")
	sweepFlag := flag.String("sweep", "", "comma-separated iteration counts for fig10a/fig10b/fig10c/fig11")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.SF = *sf
	cfg.Scale = *scale
	cfg.Timeout = *timeout
	cfg.Reps = *reps
	cfg.Profile.RTT = *rtt
	cfg.Profile.Bandwidth = *bandwidth

	var sweep []int
	if *sweepFlag != "" {
		for _, part := range strings.Split(*sweepFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -sweep value %q", part))
			}
			sweep = append(sweep, n)
		}
	}

	experiments := map[string]func() (*bench.Table, error){
		"table1": bench.Table1,
		"fig9a":  func() (*bench.Table, error) { return bench.Fig9a(cfg) },
		"table2": func() (*bench.Table, error) { return bench.Table2(cfg) },
		"fig9b":  func() (*bench.Table, error) { return bench.Fig9b(cfg) },
		"fig9c":  func() (*bench.Table, error) { return bench.Fig9c(cfg) },
		"fig10a": func() (*bench.Table, error) { return bench.Fig10a(cfg, sweep) },
		"fig10b": func() (*bench.Table, error) { return bench.Fig10b(cfg, sweep) },
		"fig10c": func() (*bench.Table, error) { return bench.Fig10c(cfg, sweep) },
		"fig11":  func() (*bench.Table, error) { return bench.Fig11(cfg, sweep) },
	}
	order := []string{"table1", "fig9a", "table2", "fig9b", "fig9c", "fig10a", "fig10b", "fig10c", "fig11"}

	run := func(name string) {
		fn, ok := experiments[name]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (want one of %s, or all)", name, strings.Join(order, ", ")))
		}
		start := time.Now()
		t, err := fn()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println(t.Render())
		fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	for _, name := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(name))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aggify-bench:", err)
	os.Exit(1)
}
