// Command applicability runs the paper's §10.2 analysis (Table 1): it
// scans the embedded application corpus (or user-supplied .sql files),
// counts while loops and cursor loops, and reports how many cursor loops
// Aggify can transform — by running the transformation.
//
// Usage:
//
//	applicability              # scan the embedded corpus (Table 1)
//	applicability file.sql...  # scan your own procedure sources
package main

import (
	"fmt"
	"os"

	"aggify"
	"aggify/internal/ast"
	"aggify/internal/parser"
	"aggify/internal/workloads/applicability"
)

func main() {
	if len(os.Args) > 1 {
		scanFiles(os.Args[1:])
		return
	}
	reports, err := applicability.ScanAll()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-12s %8s %8s %14s %12s\n", "Workload", "files", "whiles", "cursor loops", "Aggify-able")
	for _, r := range reports {
		fmt.Printf("%-12s %8d %8d %7d (%4.1f%%) %12d\n",
			r.App, r.Files, r.WhileLoops, r.CursorLoops, r.CursorShare(), r.Aggifiable)
		for reason, n := range r.Reasons {
			fmt.Printf("    %dx %s\n", n, reason)
		}
	}
	fmt.Println("\npaper (Table 1): RUBiS 16/14 (87.5%)/14 — RUBBoS 41/14 (34.1%)/14 — Adempiere 127/109 (85.8%)/>80")
}

func scanFiles(paths []string) {
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		stmts, err := parser.Parse(string(data))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		whiles, cursors := 0, 0
		for _, s := range stmts {
			ast.WalkStmt(s, func(st ast.Stmt) bool {
				if w, ok := st.(*ast.WhileStmt); ok {
					whiles++
					if ast.VarsInExpr(w.Cond)[ast.FetchStatusVar] {
						cursors++
					}
				}
				return true
			})
		}
		results, err := aggify.TransformSource(string(data), aggify.TransformOptions{})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		able := 0
		var reasons []string
		for _, r := range results {
			able += r.LoopsTransformed
			reasons = append(reasons, r.Skipped...)
		}
		fmt.Printf("%s: %d while loop(s), %d cursor loop(s), %d Aggify-able\n", path, whiles, cursors, able)
		for _, r := range reasons {
			fmt.Printf("    skipped: %s\n", r)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "applicability:", err)
	os.Exit(1)
}
