// Command applicability runs the paper's §10.2 analysis (Table 1) and the
// compile-first coverage meter: it scans the embedded application corpus
// (or user-supplied .sql files), counts while loops and cursor loops,
// reports how many cursor loops Aggify can transform — by running the
// transformation, under both the paper's baseline preconditions and the
// widened rewrites — and how much of each module body the routine
// compiler runs natively.
//
// Usage:
//
//	applicability              # scan the embedded corpus (Table 1 + coverage)
//	applicability -check       # compare against the committed APPLICABILITY.json
//	applicability -update      # ratify the current numbers into APPLICABILITY.json
//	applicability file.sql...  # scan your own procedure sources
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"aggify"
	"aggify/internal/ast"
	"aggify/internal/parser"
	"aggify/internal/workloads/applicability"
)

func main() {
	check := flag.Bool("check", false, "fail unless the scan matches the committed snapshot (coverage may only go up, and gains must be ratified with -update)")
	update := flag.Bool("update", false, "write the current scan to the snapshot file")
	snapshot := flag.String("snapshot", "APPLICABILITY.json", "snapshot file for -check / -update")
	flag.Parse()

	if args := flag.Args(); len(args) > 0 {
		scanFiles(args)
		return
	}
	reports, err := applicability.ScanAll()
	if err != nil {
		fatal(err)
	}
	switch {
	case *update:
		if err := writeSnapshot(*snapshot, reports); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *snapshot)
	case *check:
		if err := checkSnapshot(*snapshot, reports); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: coverage ratified\n", *snapshot)
	default:
		printTable(reports)
	}
}

func printTable(reports []*applicability.Report) {
	fmt.Printf("%-12s %8s %8s %14s %12s %9s\n", "Workload", "files", "whiles", "cursor loops", "Aggify-able", "widened")
	for _, r := range reports {
		fmt.Printf("%-12s %8d %8d %7d (%4.1f%%) %12d %9d\n",
			r.App, r.Files, r.WhileLoops, r.CursorLoops, r.CursorShare(), r.Aggifiable, r.WidenedAggifiable)
		for reason, n := range r.Reasons {
			fmt.Printf("    %dx %s\n", n, reason)
		}
	}
	fmt.Println("\npaper (Table 1): RUBiS 16/14 (87.5%)/14 — RUBBoS 41/14 (34.1%)/14 — Adempiere 127/109 (85.8%)/>80")

	fmt.Printf("\n%-12s %8s %8s %8s %8s %14s\n", "Workload", "modules", "full", "partial", "interp", "stmts compiled")
	for _, r := range reports {
		fmt.Printf("%-12s %8d %8d %8d %8d %7d/%d (%4.1f%%)\n",
			r.App, r.Modules, r.FullyCompiled, r.PartiallyCompiled, r.InterpretedOnly,
			r.CompiledStmts, r.TotalStmts, r.CompiledShare())
		codes := make([]string, 0, len(r.ReasonCodes))
		for code := range r.ReasonCodes {
			codes = append(codes, code)
		}
		sort.Slice(codes, func(i, j int) bool {
			if r.ReasonCodes[codes[i]] != r.ReasonCodes[codes[j]] {
				return r.ReasonCodes[codes[i]] > r.ReasonCodes[codes[j]]
			}
			return codes[i] < codes[j]
		})
		for _, code := range codes {
			if n := r.ReasonCodes[code]; n > 0 {
				fmt.Printf("    remaining %s: %d\n", code, n)
			}
		}
	}
}

// marshalReports renders the snapshot deterministically.
func marshalReports(reports []*applicability.Report) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reports); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeSnapshot(path string, reports []*applicability.Report) error {
	data, err := marshalReports(reports)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// checkSnapshot enforces the coverage ratchet: the committed snapshot is
// a floor. A scan below it fails as a regression; a scan above it fails
// too, asking for an explicit -update so the improvement is committed.
func checkSnapshot(path string, current []*applicability.Report) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading snapshot (run with -update to create it): %w", err)
	}
	var committed []*applicability.Report
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	byApp := map[string]*applicability.Report{}
	for _, r := range committed {
		byApp[r.App] = r
	}
	for _, cur := range current {
		was, ok := byApp[cur.App]
		if !ok {
			return fmt.Errorf("%s: app %s missing from snapshot; run -update to ratify", path, cur.App)
		}
		type floor struct {
			name     string
			was, now int
		}
		for _, f := range []floor{
			{"aggifiable", was.Aggifiable, cur.Aggifiable},
			{"widened_aggifiable", was.WidenedAggifiable, cur.WidenedAggifiable},
			{"fully_compiled", was.FullyCompiled, cur.FullyCompiled},
			{"compiled_stmts", was.CompiledStmts, cur.CompiledStmts},
		} {
			if f.now < f.was {
				return fmt.Errorf("%s: %s coverage regressed: %s %d -> %d", cur.App, path, f.name, f.was, f.now)
			}
		}
	}
	curData, err := marshalReports(current)
	if err != nil {
		return err
	}
	if !bytes.Equal(bytes.TrimSpace(curData), bytes.TrimSpace(data)) {
		return fmt.Errorf("%s is stale (coverage changed without regressing); run -update to ratify the new numbers", path)
	}
	return nil
}

func scanFiles(paths []string) {
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		stmts, err := parser.Parse(string(data))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		whiles, cursors := 0, 0
		for _, s := range stmts {
			ast.WalkStmt(s, func(st ast.Stmt) bool {
				if w, ok := st.(*ast.WhileStmt); ok {
					whiles++
					if ast.VarsInExpr(w.Cond)[ast.FetchStatusVar] {
						cursors++
					}
				}
				return true
			})
		}
		results, err := aggify.TransformSource(string(data), aggify.TransformOptions{})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		able := 0
		var reasons []string
		for _, r := range results {
			able += r.LoopsTransformed
			reasons = append(reasons, r.Skipped...)
		}
		fmt.Printf("%s: %d while loop(s), %d cursor loop(s), %d Aggify-able\n", path, whiles, cursors, able)
		for _, r := range reasons {
			fmt.Printf("    skipped: %s\n", r)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "applicability:", err)
	os.Exit(1)
}
