// Command aggify runs the Aggify transformation on dialect source files:
// it reads CREATE FUNCTION / CREATE PROCEDURE definitions, replaces their
// cursor loops with queries over generated custom aggregates, and prints
// the CREATE AGGREGATE definitions followed by the rewritten modules.
//
// Usage:
//
//	aggify [-for-loops] [-keep-dead] [-sets] file.sql...
//	cat file.sql | aggify
//
// Flags:
//
//	-for-loops   also lift counted FOR loops through recursive CTEs (§8.1)
//	-keep-dead   keep declarations the rewrite made dead (§6.2 cleanup off)
//	-sets        print the per-loop variable sets (V_Δ, V_fetch, V_F,
//	             P_accum, V_init, V_term) the analysis derived
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"aggify"
)

func main() {
	forLoops := flag.Bool("for-loops", false, "lift counted FOR loops through recursive CTEs (§8.1)")
	keepDead := flag.Bool("keep-dead", false, "keep dead declarations")
	showSets := flag.Bool("sets", false, "print the per-loop variable sets")
	flag.Parse()

	opts := aggify.TransformOptions{LiftForLoops: *forLoops, KeepDeadDeclarations: *keepDead}

	var sources []namedSource
	if flag.NArg() == 0 {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		sources = append(sources, namedSource{"<stdin>", string(data)})
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		sources = append(sources, namedSource{path, string(data)})
	}

	exitCode := 0
	for _, src := range sources {
		results, err := aggify.TransformSource(src.src, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", src.name, err)
			exitCode = 1
			continue
		}
		for _, res := range results {
			fmt.Printf("-- %s: module %s — %d cursor loop(s) transformed\n", src.name, res.Name, res.LoopsTransformed)
			for _, reason := range res.Skipped {
				fmt.Printf("--   skipped: %s\n", reason)
			}
			if *showSets {
				for _, d := range res.Details {
					fmt.Printf("--   loop over cursor %s:\n", d.Cursor)
					fmt.Printf("--     V_delta  = %s\n", strings.Join(d.VDelta, ", "))
					fmt.Printf("--     V_fetch  = %s\n", strings.Join(d.VFetch, ", "))
					fmt.Printf("--     V_F      = %s\n", strings.Join(d.Fields, ", "))
					fmt.Printf("--     P_accum  = %s\n", strings.Join(d.Params, ", "))
					fmt.Printf("--     V_init   = %s\n", strings.Join(d.VInit, ", "))
					fmt.Printf("--     V_term   = %s\n", strings.Join(d.VTerm, ", "))
				}
			}
			for _, agg := range res.AggregateSources {
				fmt.Println(agg)
				fmt.Println("GO")
			}
			fmt.Println(res.RewrittenSource)
			fmt.Println("GO")
		}
	}
	os.Exit(exitCode)
}

type namedSource struct {
	name string
	src  string
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aggify:", err)
	os.Exit(1)
}
