// Command aggifyd runs the database as a network server: a concurrent TCP
// daemon speaking the length-prefixed binary protocol in internal/wire
// (see docs/PROTOCOL.md). Clients connect with the socket driver
// (aggify.Dial, sqlsh --connect) and get one engine session per
// connection, prepared statements, and server-side cursors fetched in
// batches — the real client/server boundary behind the paper's Figure 8
// data-movement experiments.
//
// Usage:
//
//	aggifyd [-addr host:port] [-tpch SF] [-slow-query D] [script.sql ...]
//
// Any script files are executed against the engine before the server
// starts accepting (schema, data, UDFs, aggregates). -tpch loads the TPC-H
// tables at the given scale factor. SIGINT/SIGTERM drain gracefully:
// in-flight requests finish, then connections close.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aggify"
	"aggify/internal/tpch"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "listen address")
	tpchSF := flag.Float64("tpch", 0, "load TPC-H tables at this scale factor (0 = off)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	slow := flag.Duration("slow-query", 0, "log requests at least this slow into the server metrics (0 = off)")
	flag.Parse()

	db := aggify.Open()
	if *tpchSF > 0 {
		log.Printf("aggifyd: loading TPC-H sf=%g", *tpchSF)
		if err := tpch.Load(db.Engine(), *tpchSF); err != nil {
			log.Fatalf("aggifyd: tpch: %v", err)
		}
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("aggifyd: %v", err)
		}
		if err := db.Exec(string(src)); err != nil {
			log.Fatalf("aggifyd: %s: %v", path, err)
		}
		log.Printf("aggifyd: executed %s", path)
	}

	srv := db.NewServer()
	srv.ErrorLog = log.New(os.Stderr, "", log.LstdFlags)
	srv.SlowThreshold = *slow
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("aggifyd: %v", err)
	}
	log.Printf("aggifyd: listening on %s", lis.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	select {
	case s := <-sig:
		log.Printf("aggifyd: %v — draining (up to %v)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("aggifyd: forced shutdown: %v", err)
			os.Exit(1)
		}
		log.Printf("aggifyd: drained cleanly")
	case err := <-done:
		if err != nil && !errors.Is(err, aggify.ErrServerClosed) {
			log.Fatalf("aggifyd: %v", err)
		}
	}
}
