// Command aggifyd runs the database as a network server: a concurrent TCP
// daemon speaking the length-prefixed binary protocol in internal/wire
// (see docs/PROTOCOL.md). Clients connect with the socket driver
// (aggify.Dial, sqlsh --connect) and get one engine session per
// connection, prepared statements, and server-side cursors fetched in
// batches — the real client/server boundary behind the paper's Figure 8
// data-movement experiments.
//
// Usage:
//
//	aggifyd [-addr host:port] [-data-dir DIR] [-wal-sync always|group|off]
//	        [-tpch SF] [-slow-query D]
//	        [-http host:port] [-trace-sample F] [-trace-out FILE]
//	        [-log-format text|json] [script.sql ...]
//
// Any script files are executed against the engine before the server
// starts accepting (schema, data, UDFs, aggregates). -tpch loads the TPC-H
// tables at the given scale factor. -data-dir makes the database durable:
// committed transactions are written ahead to DIR/wal.log and startup
// replays checkpoint + log back to the last committed epoch; without it
// the engine runs the same MVCC protocol purely in memory. SIGINT/SIGTERM
// drain gracefully: new statements are rejected, in-flight requests
// finish, the WAL is flushed and a final checkpoint written, then
// connections close.
//
// Observability (see docs/OBSERVABILITY.md): -http starts a debug listener
// serving /healthz, /metrics (Prometheus text), /traces (recent traces),
// and /debug/pprof/*. -trace-sample controls what fraction of untraced
// requests root server-local traces; requests carrying a client trace
// context always join. -trace-out appends every completed span as one JSON
// line. -log-format=json renders the daemon's own log lines as JSON.
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"aggify"
	"aggify/internal/tpch"
	"aggify/internal/trace"
	"aggify/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "listen address")
	dataDir := flag.String("data-dir", "", "directory for the write-ahead log and checkpoints (empty = in-memory, no persistence)")
	walSync := flag.String("wal-sync", "group", "WAL durability mode: always (fsync per commit), group (one fsync amortized over concurrent commits), off (no fsync)")
	tpchSF := flag.Float64("tpch", 0, "load TPC-H tables at this scale factor (0 = off)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	slow := flag.Duration("slow-query", 0, "log requests at least this slow into the server metrics (0 = off)")
	httpAddr := flag.String("http", "", "debug HTTP listen address serving /healthz /metrics /traces /debug/pprof (empty = off)")
	traceSample := flag.Float64("trace-sample", 0, "fraction of untraced requests that root server-local traces, in [0,1]")
	traceOut := flag.String("trace-out", "", "append completed trace spans as JSON lines to this file")
	logFormat := flag.String("log-format", "text", "log line format: text or json")
	maxdop := flag.Int("maxdop", 1, "default degree of parallelism for new sessions (1 = serial; sessions override with SET MAXDOP)")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	switch *logFormat {
	case "text":
	case "json":
		logger = log.New(jsonLines{w: os.Stderr}, "", 0)
	default:
		log.Fatalf("aggifyd: unknown -log-format %q (want text or json)", *logFormat)
	}

	db := aggify.Open()
	if *maxdop < 1 {
		log.Fatalf("aggifyd: -maxdop must be >= 1, got %d", *maxdop)
	}
	eng := db.Engine()
	eng.DefaultMaxDOP = *maxdop
	if *dataDir != "" {
		mode, err := wal.ParseSyncMode(*walSync)
		if err != nil {
			logger.Fatalf("aggifyd: %v", err)
		}
		start := time.Now()
		if err := eng.OpenData(*dataDir, mode); err != nil {
			logger.Fatalf("aggifyd: -data-dir: %v", err)
		}
		logger.Printf("aggifyd: recovered %d tables at epoch %d from %s (wal-sync=%s) in %v",
			len(eng.Tables()), eng.TxnMgr.Epoch(), *dataDir, mode, time.Since(start).Round(time.Millisecond))
	}
	if *tpchSF > 0 {
		if _, exists := eng.Table("lineitem"); exists {
			logger.Printf("aggifyd: tpch tables already present (recovered); skipping load")
		} else {
			logger.Printf("aggifyd: loading TPC-H sf=%g", *tpchSF)
			if err := tpch.Load(eng, *tpchSF); err != nil {
				logger.Fatalf("aggifyd: tpch: %v", err)
			}
		}
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			logger.Fatalf("aggifyd: %v", err)
		}
		if err := db.Exec(string(src)); err != nil {
			logger.Fatalf("aggifyd: %s: %v", path, err)
		}
		logger.Printf("aggifyd: executed %s", path)
	}

	cfg := trace.Config{Sample: *traceSample}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Fatalf("aggifyd: -trace-out: %v", err)
		}
		defer f.Close()
		cfg.Out = f
	}
	tracer := trace.New(cfg)

	srv := db.NewServer()
	srv.ErrorLog = logger
	srv.SlowThreshold = *slow
	srv.Tracer = tracer
	if *dataDir != "" {
		// Between "no new statements admitted" and "connections closed",
		// flush the WAL and write a final checkpoint while quiescent.
		srv.OnDrain = func() {
			if err := eng.Checkpoint(); err != nil {
				logger.Printf("aggifyd: drain checkpoint: %v", err)
			} else {
				logger.Printf("aggifyd: drain checkpoint written at epoch %d", eng.TxnMgr.Epoch())
			}
		}
	}

	// Background vacuum: reclaim superseded row versions older than the
	// oldest live snapshot. Sessions also vacuum inline after commits; the
	// ticker covers idle periods with long-lived garbage.
	vacStop := make(chan struct{})
	go func() {
		t := time.NewTicker(5 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				eng.Vacuum()
			case <-vacStop:
				return
			}
		}
	}()
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("aggifyd: %v", err)
	}
	logger.Printf("aggifyd: listening on %s", lis.Addr())

	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			logger.Fatalf("aggifyd: -http: %v", err)
		}
		defer hl.Close()
		logger.Printf("aggifyd: debug http on %s", hl.Addr())
		go func() {
			if err := srv.ServeDebug(hl); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Printf("aggifyd: debug http: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	select {
	case s := <-sig:
		logger.Printf("aggifyd: %v — draining (up to %v)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		err := srv.Shutdown(ctx)
		close(vacStop)
		if cerr := eng.CloseData(); cerr != nil {
			logger.Printf("aggifyd: close data: %v", cerr)
		}
		if err != nil {
			logger.Printf("aggifyd: forced shutdown: %v", err)
			os.Exit(1)
		}
		logger.Printf("aggifyd: drained cleanly")
	case err := <-done:
		close(vacStop)
		if cerr := eng.CloseData(); cerr != nil {
			logger.Printf("aggifyd: close data: %v", cerr)
		}
		if err != nil && !errors.Is(err, aggify.ErrServerClosed) {
			logger.Fatalf("aggifyd: %v", err)
		}
	}
}

// jsonLines renders each log line the standard logger emits as one JSON
// object: {"ts":"<RFC3339Nano>","msg":"..."}.
type jsonLines struct {
	w io.Writer
}

func (j jsonLines) Write(p []byte) (int, error) {
	buf := make([]byte, 0, len(p)+48)
	buf = append(buf, `{"ts":`...)
	buf = strconv.AppendQuote(buf, time.Now().Format(time.RFC3339Nano))
	buf = append(buf, `,"msg":`...)
	buf = strconv.AppendQuote(buf, strings.TrimRight(string(p), "\n"))
	buf = append(buf, '}', '\n')
	if _, err := j.w.Write(buf); err != nil {
		return 0, err
	}
	return len(p), nil
}
