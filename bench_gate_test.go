// Gate benchmarks: the short, stable subset of the suite that the CI
// bench-regression gate runs (scripts/bench_regress.sh). Every benchmark
// here is selected by the ^BenchmarkGate regex and must stay cheap — the
// gate runs them with -count=3 and compares the best run against the
// committed BENCH_7.json snapshot (BENCH_4.json through BENCH_6.json are the
// retired earlier baselines).
package aggify_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aggify"
	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/plan"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
	"aggify/internal/wal"
)

// gateRows clears the planner's parallel row threshold by a wide margin so
// the serial-vs-parallel cells measure real aggregation work.
const gateRows = 120_000

var (
	gateOnce sync.Once
	gateEng  *engine.Engine
	gateErr  error
)

// gateEnv lazily builds a shared engine with one large table; benchmarks in
// a package run sequentially, so the shared instance is safe.
func gateEnv(b *testing.B) *engine.Engine {
	b.Helper()
	gateOnce.Do(func() {
		db := aggify.Open()
		if gateErr = db.Exec("create table gate (k int, v int)"); gateErr != nil {
			return
		}
		tab, ok := db.Engine().Table("gate")
		if !ok {
			gateErr = fmt.Errorf("gate table missing after create")
			return
		}
		for i := int64(0); i < gateRows; i++ {
			if gateErr = tab.Insert(nil, []sqltypes.Value{sqltypes.NewInt(i % 97), sqltypes.NewInt(i % 1001)}); gateErr != nil {
				return
			}
		}
		// gatep duplicates the distribution with an ordered index on k, so
		// the pushdown benchmark's pushed predicate can become an index seek
		// and the range-seek benchmark can stream k's ordered range.
		if gateErr = db.Exec("create table gatep (k int, v int); create index idx_gatep on gatep(k) using ordered"); gateErr != nil {
			return
		}
		ptab, ok := db.Engine().Table("gatep")
		if !ok {
			gateErr = fmt.Errorf("gatep table missing after create")
			return
		}
		for i := int64(0); i < gateRows; i++ {
			if gateErr = ptab.Insert(nil, []sqltypes.Value{sqltypes.NewInt(i % 97), sqltypes.NewInt(i % 1001)}); gateErr != nil {
				return
			}
		}
		gateEng = db.Engine()
	})
	if gateErr != nil {
		b.Fatal(gateErr)
	}
	return gateEng
}

// BenchmarkGateParallelAgg is the serial/parallel pair behind the gate's
// speedup ratio: the same grouped aggregation at MAXDOP 1 and 4. The gate
// records parallel_speedup = serial ns/op ÷ parallel ns/op and requires
// ≥ 2× when the host has at least 4 CPUs.
func BenchmarkGateParallelAgg(b *testing.B) {
	eng := gateEnv(b)
	q := parser.MustParse("select k, count(*), sum(v), min(v), max(v) from gate group by k")[0].(*ast.QueryStmt).Query
	for _, workers := range []int{1, 4} {
		name := "serial"
		if workers > 1 {
			name = fmt.Sprintf("maxdop=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			sess := eng.NewSession()
			sess.Opts.Parallelism = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sess.Query(q, sess.Ctx(nil, nil)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(gateRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkGateBatch is the vectorized-vs-row pair behind the gate's batch
// speedup ratio: the same grouped aggregation as the parallel pair, serial
// on both sides, with the batch path on and off — so the ratio isolates
// vectorized execution from parallelism. The gate records
// batch_speedup = row ns/op ÷ batch ns/op and requires ≥ 1.5×.
func BenchmarkGateBatch(b *testing.B) {
	eng := gateEnv(b)
	q := parser.MustParse("select k, count(*), sum(v), min(v), max(v) from gate group by k")[0].(*ast.QueryStmt).Query
	for _, disable := range []bool{false, true} {
		name := "batch"
		if disable {
			name = "row"
		}
		b.Run(name, func(b *testing.B) {
			sess := eng.NewSession()
			sess.Opts.DisableBatch = disable
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sess.Query(q, sess.Ctx(nil, nil)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(gateRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkGatePushdown measures the predicate-pushdown rewrite: a selective
// filter above an Aggify-style derived table over the large table, with the
// rewrite pass on and off. Pushed, the predicate reaches the base scan and
// becomes an index seek inside the derived table; unpushed, the derived
// table materializes all rows first. The gate records
// pushdown_speedup = norewrite ns/op ÷ rewrite ns/op and requires ≥ 1.5×.
func BenchmarkGatePushdown(b *testing.B) {
	eng := gateEnv(b)
	q := parser.MustParse("select sum(q.v) from (select k, v from gatep) q where q.k = 7")[0].(*ast.QueryStmt).Query
	for _, rewrite := range []bool{true, false} {
		name := "rewrite"
		if !rewrite {
			name = "norewrite"
		}
		b.Run(name, func(b *testing.B) {
			sess := eng.NewSession()
			if !rewrite {
				sess.Opts.DisableRules = plan.RuleAll
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sess.Query(q, sess.Ctx(nil, nil)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(gateRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkGateRangeSeek measures the ordered-index range seek the
// choose_access_path rule picks for a selective range predicate, against the
// same query with the rule disabled (full scan + filter). The gate records
// rangeseek_speedup = fullscan ns/op ÷ rangeseek ns/op and requires ≥ 5× —
// the seek touches ~7% of gatep, so it has to dodge most of the scan.
func BenchmarkGateRangeSeek(b *testing.B) {
	eng := gateEnv(b)
	q := parser.MustParse("select sum(v) from gatep where k >= 90")[0].(*ast.QueryStmt).Query
	for _, seek := range []bool{true, false} {
		name := "rangeseek"
		if !seek {
			name = "fullscan"
		}
		b.Run(name, func(b *testing.B) {
			sess := eng.NewSession()
			if !seek {
				sess.Opts.DisableRules = plan.RuleChooseAccessPath
			}
			// Fail fast if the cell is not measuring what it claims.
			p, err := sess.PlanQuery(q, nil)
			if err != nil {
				b.Fatal(err)
			}
			if got := p.Explain.Contains("RangeSeek("); got != seek {
				b.Fatalf("cell %s: RangeSeek in plan = %v\n%s", name, got, p.Explain)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sess.Query(q, sess.Ctx(nil, nil)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(gateRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkGatePlanCache measures the fingerprint-keyed plan cache. The
// replay cell re-parses the same SQL text every iteration — each arrival is
// a new AST, so only the text-keyed (L2) cache can serve it — and reports
// the warm hit rate, which the gate requires ≥ 99%. The lookup cell measures
// a warm AST-identity (L1) hit and must stay allocation-free.
func BenchmarkGatePlanCache(b *testing.B) {
	eng := gateEnv(b)
	const sql = "select k, sum(v) from gatep where k >= 90 group by k"
	b.Run("replay", func(b *testing.B) {
		sess := eng.NewSession()
		// Warm the text cache so the measured window is all-warm.
		if _, err := sess.PlanQuery(parser.MustParse(sql)[0].(*ast.QueryStmt).Query, nil); err != nil {
			b.Fatal(err)
		}
		hits0, misses0 := sess.PlanCacheHits(), sess.PlanCacheMisses()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := parser.MustParse(sql)[0].(*ast.QueryStmt).Query
			if _, err := sess.PlanQuery(q, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		hits := sess.PlanCacheHits() - hits0
		misses := sess.PlanCacheMisses() - misses0
		if hits+misses > 0 {
			b.ReportMetric(100*float64(hits)/float64(hits+misses), "hit%")
		}
	})
	b.Run("lookup", func(b *testing.B) {
		sess := eng.NewSession()
		q := parser.MustParse(sql)[0].(*ast.QueryStmt).Query
		if _, err := sess.PlanQuery(q, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.PlanQuery(q, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGateTCPLoopback measures one prepared-statement round trip over a
// real loopback socket — the wire protocol + cursor machinery, no query
// weight.
func BenchmarkGateTCPLoopback(b *testing.B) {
	db := aggify.Open()
	if err := db.Exec("create table nums (n int); insert into nums values (1),(2),(3);"); err != nil {
		b.Fatal(err)
	}
	srv := db.NewServer()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Error(err)
		}
		<-done
	}()
	conn, err := aggify.Dial(lis.Addr().String(), aggify.LAN)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	stmt, err := conn.Prepare("select n from nums where n >= ?")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.QueryRow(aggify.Int(3)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGateWALCommit measures the durable commit path: single-row
// auto-commit inserts through the write-ahead log. The group cell runs
// concurrent committers so group commit can amortize one fsync over many
// transactions; the off cell isolates the logging overhead itself (append +
// encode, no fsync), which is the stable number the 25% gate really guards.
func BenchmarkGateWALCommit(b *testing.B) {
	for _, tc := range []struct {
		name     string
		mode     wal.SyncMode
		parallel bool
	}{
		{"group", wal.SyncGroup, true},
		{"off", wal.SyncOff, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			eng := engine.New()
			if err := eng.OpenData(b.TempDir(), tc.mode); err != nil {
				b.Fatal(err)
			}
			defer eng.CloseData()
			if _, err := eng.CreateTable("w", storage.NewSchema(
				storage.Col("k", sqltypes.Int), storage.Col("v", sqltypes.Int))); err != nil {
				b.Fatal(err)
			}
			tab, _ := eng.Table("w")
			var seq int64
			b.ResetTimer()
			if tc.parallel {
				var n atomic.Int64
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						i := n.Add(1)
						if err := tab.Insert(nil, []sqltypes.Value{sqltypes.NewInt(i), sqltypes.NewInt(i)}); err != nil {
							b.Fatal(err)
						}
					}
				})
			} else {
				for i := 0; i < b.N; i++ {
					seq++
					if err := tab.Insert(nil, []sqltypes.Value{sqltypes.NewInt(seq), sqltypes.NewInt(seq)}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkGateProcCompile is the compile-first routine pipeline's
// before/after: the same arithmetic-heavy WHILE-loop module run through the
// slot-compiled closure pipeline (the default EXEC path) and through the
// tree-walking interpreter. The gate records
// proc_compile_speedup = interpreted ns/op ÷ compiled ns/op and requires
// ≥ 1.5×; the results themselves must be byte-identical.
func BenchmarkGateProcCompile(b *testing.B) {
	db := aggify.Open()
	if err := db.Exec(`
create function hashLoop(@n int) returns int as
begin
  declare @i int = 0;
  declare @acc int = 7;
  while @i < @n
  begin
    set @acc = (@acc * 31 + @i) % 1000003;
    if @acc % 5 = 0 set @acc = @acc + 3;
    set @i = @i + 1;
  end
  return @acc;
end`); err != nil {
		b.Fatal(err)
	}
	sess := db.Engine().NewSession()
	arg := sqltypes.NewInt(2000)
	compiled, err := interp.CallFunctionByName(sess, "hashLoop", arg)
	if err != nil {
		b.Fatal(err)
	}
	interpreted, err := interp.CallFunctionInterpreted(sess, "hashLoop", arg)
	if err != nil {
		b.Fatal(err)
	}
	if compiled.String() != interpreted.String() {
		b.Fatalf("compiled = %s, interpreted = %s", compiled, interpreted)
	}
	for _, tc := range []struct {
		name string
		call func() (sqltypes.Value, error)
	}{
		{"compiled", func() (sqltypes.Value, error) { return interp.CallFunctionByName(sess, "hashLoop", arg) }},
		{"interpreted", func() (sqltypes.Value, error) { return interp.CallFunctionInterpreted(sess, "hashLoop", arg) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tc.call(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGateAggify is the headline before/after: the same UDF as a cursor
// loop and after the Aggify rewrite.
func BenchmarkGateAggify(b *testing.B) {
	src := `
create table vals (v int);
GO
create function sumAll() returns float as
begin
  declare @v int;
  declare @s float = 0;
  declare c cursor for select v from vals;
  open c;
  fetch next from c into @v;
  while @@fetch_status = 0
  begin
    set @s = @s + @v * 2;
    fetch next from c into @v;
  end
  close c;
  deallocate c;
  return @s;
end`
	build := func(aggified bool) *aggify.DB {
		db := aggify.Open()
		if err := db.Exec(src); err != nil {
			b.Fatal(err)
		}
		var ins strings.Builder
		ins.WriteString("insert into vals values (0)")
		for i := 1; i < 500; i++ {
			fmt.Fprintf(&ins, ", (%d)", i)
		}
		for j := 0; j < 20; j++ {
			if err := db.Exec(ins.String()); err != nil {
				b.Fatal(err)
			}
		}
		if aggified {
			if _, err := db.AggifyFunction("sumAll", aggify.TransformOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	for _, aggified := range []bool{false, true} {
		name := "cursor"
		if aggified {
			name = "aggified"
		}
		db := build(aggified)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Call("sumAll"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
