package storage

import "sync/atomic"

// Stats accumulates logical I/O counters, mirroring the measurements the
// paper reports in Table 2 (logical reads) and §10.4 (worktable activity).
// All counters are safe for concurrent use (parallel aggregation workers
// share the session's Stats).
type Stats struct {
	// LogicalReads counts rows read from persistent base tables and indexes.
	LogicalReads atomic.Int64
	// WorktableWrites counts rows materialized into cursor worktables.
	WorktableWrites atomic.Int64
	// WorktableReads counts rows fetched back out of cursor worktables.
	WorktableReads atomic.Int64
	// WorktableBytes counts bytes encoded into worktables.
	WorktableBytes atomic.Int64
	// RowsEmitted counts rows returned to query consumers.
	RowsEmitted atomic.Int64
	// IndexSeeks counts index-seek operations.
	IndexSeeks atomic.Int64
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.LogicalReads.Store(0)
	s.WorktableWrites.Store(0)
	s.WorktableReads.Store(0)
	s.WorktableBytes.Store(0)
	s.RowsEmitted.Store(0)
	s.IndexSeeks.Store(0)
}

// AddSnapshot folds a snapshot delta into the counters. Parallel workers
// accumulate into a worker-local Stats and flush the total here once at
// exit, keeping each worker's before/after deltas serially consistent.
func (s *Stats) AddSnapshot(d Snapshot) {
	s.LogicalReads.Add(d.LogicalReads)
	s.WorktableWrites.Add(d.WorktableWrites)
	s.WorktableReads.Add(d.WorktableReads)
	s.WorktableBytes.Add(d.WorktableBytes)
	s.RowsEmitted.Add(d.RowsEmitted)
	s.IndexSeeks.Add(d.IndexSeeks)
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	LogicalReads    int64
	WorktableWrites int64
	WorktableReads  int64
	WorktableBytes  int64
	RowsEmitted     int64
	IndexSeeks      int64
}

// Snapshot returns a copy of the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		LogicalReads:    s.LogicalReads.Load(),
		WorktableWrites: s.WorktableWrites.Load(),
		WorktableReads:  s.WorktableReads.Load(),
		WorktableBytes:  s.WorktableBytes.Load(),
		RowsEmitted:     s.RowsEmitted.Load(),
		IndexSeeks:      s.IndexSeeks.Load(),
	}
}

// Add returns the counter-wise sum s + t.
func (s Snapshot) Add(t Snapshot) Snapshot {
	return Snapshot{
		LogicalReads:    s.LogicalReads + t.LogicalReads,
		WorktableWrites: s.WorktableWrites + t.WorktableWrites,
		WorktableReads:  s.WorktableReads + t.WorktableReads,
		WorktableBytes:  s.WorktableBytes + t.WorktableBytes,
		RowsEmitted:     s.RowsEmitted + t.RowsEmitted,
		IndexSeeks:      s.IndexSeeks + t.IndexSeeks,
	}
}

// Sub returns the delta s - t, counter-wise.
func (s Snapshot) Sub(t Snapshot) Snapshot {
	return Snapshot{
		LogicalReads:    s.LogicalReads - t.LogicalReads,
		WorktableWrites: s.WorktableWrites - t.WorktableWrites,
		WorktableReads:  s.WorktableReads - t.WorktableReads,
		WorktableBytes:  s.WorktableBytes - t.WorktableBytes,
		RowsEmitted:     s.RowsEmitted - t.RowsEmitted,
		IndexSeeks:      s.IndexSeeks - t.IndexSeeks,
	}
}

// TotalReads returns base-table plus worktable logical reads — the quantity
// the paper's Table 2 reports.
func (s Snapshot) TotalReads() int64 { return s.LogicalReads + s.WorktableReads }
