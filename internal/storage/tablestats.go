package storage

import (
	"sort"

	"aggify/internal/sqltypes"
)

// Table statistics: the committed live row count plus per-column distinct
// estimates, kept honest across every mutation path.
//
// The pre-MVCC implementation effectively sampled at insert only:
// RowCount was the slot count, so deletes and truncates never shrank it,
// and nothing invalidated distinct estimates after an update. Now every
// committed Insert/Update/Delete/Truncate — including replayed WAL
// mutations — bumps the table's statsVersion; cached statistics are
// recomputed on the next read whenever the version moved.
//
// Distinct counts are exact over value hashes (a 64-bit collision is
// indistinguishable from a duplicate, which is far below the estimate's
// useful precision) and computed from the latest committed state.

// HistogramBuckets is the equi-depth bucket count per histogram.
const HistogramBuckets = 32

// histogramSampleCap bounds how many rows feed a histogram: beyond it the
// build strides deterministically (every k-th collected value), so two
// builds over the same data always produce the same buckets — EXPLAIN cost
// annotations and goldens stay stable.
const histogramSampleCap = 8192

// HistogramBucket is one equi-depth bucket: it covers the half-open key
// range (previous bucket's Hi, Hi], holding Rows sampled rows across NDV
// distinct values.
type HistogramBucket struct {
	Hi   sqltypes.Value
	Rows int
	NDV  int
}

// Histogram is an equi-depth histogram over one indexed column's sampled
// non-NULL values.
type Histogram struct {
	Buckets []HistogramBucket
	// Sampled is the number of values the buckets were built from; Rows is
	// the table's live row count at build time (Sampled <= Rows).
	Sampled int
	Rows    int
}

// SelectivityRange estimates the fraction of the column's rows whose value
// falls in [lo, hi] (strict flags make a bound exclusive; a NULL bound is
// unbounded on that side). Buckets fully inside the range contribute
// whole, straddling buckets contribute half — coarse, but deterministic
// and monotone, which is all the access-path cost model needs.
func (h Histogram) SelectivityRange(lo, hi sqltypes.Value, loStrict, hiStrict bool) float64 {
	if h.Sampled == 0 || len(h.Buckets) == 0 {
		return 1
	}
	rows := 0.0
	prev := sqltypes.Null // exclusive lower bound of the current bucket
	for _, b := range h.Buckets {
		in := rangeOverlap(prev, b.Hi, lo, hi, loStrict, hiStrict)
		rows += in * float64(b.Rows)
		prev = b.Hi
	}
	return rows / float64(h.Sampled)
}

// rangeOverlap classifies how much of the bucket (bLo, bHi] overlaps the
// query range: 0 (disjoint), 1 (contained), or 0.5 (straddling).
func rangeOverlap(bLo, bHi, lo, hi sqltypes.Value, loStrict, hiStrict bool) float64 {
	// Entirely above: every bucket value exceeds the bucket's exclusive
	// lower bound, so bLo >= hi puts the whole bucket past the range.
	if !hi.IsNull() && !bLo.IsNull() {
		if c, ok := sqltypes.Compare(bLo, hi); ok && c >= 0 {
			return 0
		}
	}
	// Entirely below: the bucket's inclusive upper bound misses lo.
	if !lo.IsNull() {
		if c, ok := sqltypes.Compare(bHi, lo); ok && (c < 0 || (c == 0 && loStrict)) {
			return 0
		}
	}
	loIn := lo.IsNull()
	if !loIn && !bLo.IsNull() {
		if c, ok := sqltypes.Compare(bLo, lo); ok && c >= 0 {
			loIn = true // every bucket value > bLo >= lo
		}
	}
	hiIn := hi.IsNull()
	if !hiIn {
		if c, ok := sqltypes.Compare(bHi, hi); ok && (c < 0 || (c == 0 && !hiStrict)) {
			hiIn = true
		}
	}
	if loIn && hiIn {
		return 1
	}
	return 0.5
}

// TableStatistics is a point-in-time statistics snapshot.
type TableStatistics struct {
	// Rows is the committed live row count (equal to RowCount()).
	Rows int
	// Distinct holds the distinct-value estimate per column ordinal.
	// NULLs do not contribute (matching index behavior).
	Distinct []int
	// Histograms holds an equi-depth histogram per indexed column (keyed
	// by lower-cased column name) — the inputs the access-path cost model
	// and aggify_stat_columns read.
	Histograms map[string]Histogram
}

// DistinctOf returns the distinct estimate for the named column, or -1
// when the column does not exist.
func (ts TableStatistics) DistinctOf(s *Schema, column string) int {
	ord := s.Ordinal(column)
	if ord < 0 || ord >= len(ts.Distinct) {
		return -1
	}
	return ts.Distinct[ord]
}

// Statistics returns current table statistics, recomputing the cached
// distinct estimates and histograms if any mutation committed since the
// last call.
func (t *Table) Statistics() TableStatistics {
	v := t.statsVersion.Load()
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if t.statsCache != nil && t.statsCachedAt == v {
		return *t.statsCache
	}
	ncols := t.Schema.Len()
	sets := make([]map[uint64]struct{}, ncols)
	for i := range sets {
		sets[i] = map[uint64]struct{}{}
	}
	// Histogram inputs: collect the non-NULL values of every indexed
	// column during the same scan.
	defs := t.IndexDefs()
	histVals := make(map[string][]sqltypes.Value, len(defs))
	histOrds := make(map[string]int, len(defs))
	for _, d := range defs {
		histVals[d.Column] = nil
		histOrds[d.Column] = t.Schema.Ordinal(d.Column)
	}
	rows := 0
	t.Scan(nil, nil, func(_ int, row []sqltypes.Value) bool {
		rows++
		for i, val := range row {
			if !val.IsNull() {
				sets[i][sqltypes.Hash(val)] = struct{}{}
			}
		}
		for col, ord := range histOrds {
			if !row[ord].IsNull() {
				histVals[col] = append(histVals[col], row[ord])
			}
		}
		return true
	})
	st := &TableStatistics{Rows: rows, Distinct: make([]int, ncols), Histograms: make(map[string]Histogram, len(defs))}
	for i, set := range sets {
		st.Distinct[i] = len(set)
	}
	for col, vals := range histVals {
		st.Histograms[col] = buildHistogram(vals, rows)
	}
	t.statsCache = st
	t.statsCachedAt = v
	return *st
}

// buildHistogram makes an equi-depth histogram from one column's collected
// non-NULL values. Oversized inputs are strided down deterministically
// before sorting, so the result depends only on the table contents.
func buildHistogram(vals []sqltypes.Value, rows int) Histogram {
	if len(vals) > histogramSampleCap {
		stride := (len(vals) + histogramSampleCap - 1) / histogramSampleCap
		sampled := make([]sqltypes.Value, 0, histogramSampleCap)
		for i := 0; i < len(vals); i += stride {
			sampled = append(sampled, vals[i])
		}
		vals = sampled
	}
	h := Histogram{Sampled: len(vals), Rows: rows}
	if len(vals) == 0 {
		return h
	}
	sort.SliceStable(vals, func(i, j int) bool {
		c, ok := sqltypes.Compare(vals[i], vals[j])
		return ok && c < 0
	})
	depth := (len(vals) + HistogramBuckets - 1) / HistogramBuckets
	count, ndv := 0, 0
	for i, v := range vals {
		count++
		if i == 0 {
			ndv = 1
		} else if c, ok := sqltypes.Compare(v, vals[i-1]); !ok || c != 0 {
			ndv++
		}
		// Close the bucket once it is deep enough and the next value
		// differs (bucket boundaries never split a key's duplicates, so
		// each key belongs to exactly one bucket).
		last := i == len(vals)-1
		boundary := false
		if !last && count >= depth {
			if c, ok := sqltypes.Compare(vals[i+1], v); !ok || c != 0 {
				boundary = true
			}
		}
		if last || boundary {
			h.Buckets = append(h.Buckets, HistogramBucket{Hi: v, Rows: count, NDV: ndv})
			count, ndv = 0, 0
		}
	}
	return h
}
