package storage

import "aggify/internal/sqltypes"

// Table statistics: the committed live row count plus per-column distinct
// estimates, kept honest across every mutation path.
//
// The pre-MVCC implementation effectively sampled at insert only:
// RowCount was the slot count, so deletes and truncates never shrank it,
// and nothing invalidated distinct estimates after an update. Now every
// committed Insert/Update/Delete/Truncate — including replayed WAL
// mutations — bumps the table's statsVersion; cached statistics are
// recomputed on the next read whenever the version moved.
//
// Distinct counts are exact over value hashes (a 64-bit collision is
// indistinguishable from a duplicate, which is far below the estimate's
// useful precision) and computed from the latest committed state.

// TableStatistics is a point-in-time statistics snapshot.
type TableStatistics struct {
	// Rows is the committed live row count (equal to RowCount()).
	Rows int
	// Distinct holds the distinct-value estimate per column ordinal.
	// NULLs do not contribute (matching index behavior).
	Distinct []int
}

// DistinctOf returns the distinct estimate for the named column, or -1
// when the column does not exist.
func (ts TableStatistics) DistinctOf(s *Schema, column string) int {
	ord := s.Ordinal(column)
	if ord < 0 || ord >= len(ts.Distinct) {
		return -1
	}
	return ts.Distinct[ord]
}

// Statistics returns current table statistics, recomputing the cached
// distinct estimates if any mutation committed since the last call.
func (t *Table) Statistics() TableStatistics {
	v := t.statsVersion.Load()
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if t.statsCache != nil && t.statsCachedAt == v {
		return *t.statsCache
	}
	ncols := t.Schema.Len()
	sets := make([]map[uint64]struct{}, ncols)
	for i := range sets {
		sets[i] = map[uint64]struct{}{}
	}
	rows := 0
	t.Scan(nil, nil, func(_ int, row []sqltypes.Value) bool {
		rows++
		for i, val := range row {
			if !val.IsNull() {
				sets[i][sqltypes.Hash(val)] = struct{}{}
			}
		}
		return true
	})
	st := &TableStatistics{Rows: rows, Distinct: make([]int, ncols)}
	for i, set := range sets {
		st.Distinct[i] = len(set)
	}
	t.statsCache = st
	t.statsCachedAt = v
	return *st
}
