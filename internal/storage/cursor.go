package storage

import (
	"aggify/internal/sqltypes"
	"aggify/internal/txn"
)

// Cursor is a resumable, snapshot-visible scan over a frozen range of a
// table's slots. The slot slice is captured once at creation (under the
// table's read lock), so iteration is bounded even while concurrent inserts
// grow the table — the same guarantee the old materialize-at-Open scan gave
// — but rows are produced incrementally: a consumer that stops early (TOP,
// early cursor close) never pays for, or buffers, the rows it did not read.
//
// Version chains are walked lock-free per slot, exactly like Table.Scan, and
// each visible row charges one logical read to the Stats passed to Next.
type Cursor struct {
	slots []*slot
	snap  *txn.Snapshot
	pos   int
}

// NewCursor returns a cursor over every slot of the table, visiting rows in
// insertion (slot) order — the serial scan order.
func (t *Table) NewCursor(snap *txn.Snapshot) *Cursor {
	t.mu.RLock()
	slots := t.slots
	t.mu.RUnlock()
	return &Cursor{slots: slots, snap: snap}
}

// SplitCursors carves one frozen snapshot of the table's slots into n
// contiguous range cursors. Concatenating the partitions' rows in index
// order reproduces the serial scan order exactly, which is what lets
// parallel plans emit byte-identical output; the table is locked once, not
// once per partition.
func (t *Table) SplitCursors(snap *txn.Snapshot, n int) []*Cursor {
	t.mu.RLock()
	slots := t.slots
	t.mu.RUnlock()
	if n < 1 {
		n = 1
	}
	chunk := (len(slots) + n - 1) / n
	out := make([]*Cursor, n)
	for i := range out {
		lo := i * chunk
		hi := lo + chunk
		if lo > len(slots) {
			lo = len(slots)
		}
		if hi > len(slots) {
			hi = len(slots)
		}
		out[i] = &Cursor{slots: slots[lo:hi], snap: snap}
	}
	return out
}

// Reset rewinds the cursor to the start of its frozen slot range, so a
// re-opened operator re-reads (and re-charges) the same rows.
func (c *Cursor) Reset() { c.pos = 0 }

// Next delivers up to max visible rows to fn, charging stats one logical
// read per row, and returns the number delivered. A return of 0 (with
// max > 0) means the cursor is exhausted. The delivered row slices are
// committed version payloads and must be treated as immutable; retaining
// them is safe.
func (c *Cursor) Next(stats *Stats, max int, fn func(row []sqltypes.Value)) int {
	n := 0
	for c.pos < len(c.slots) && n < max {
		s := c.slots[c.pos]
		c.pos++
		v := txn.Visible(s.head.Load(), c.snap)
		if v == nil || v.IsTombstone() {
			continue
		}
		if stats != nil {
			stats.LogicalReads.Add(1)
		}
		fn(v.Row)
		n++
	}
	return n
}
