package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"aggify/internal/sqltypes"
	"aggify/internal/txn"
)

// Table is a heap table of per-row version chains with optional hash and
// ordered indexes, read under snapshot isolation.
//
// Every row occupies one slot; a slot's id (rid) is assigned at insert and
// is stable forever — deletes leave a tombstone version, vacuum empties
// the slot but never compacts the slot array, and checkpoints preserve
// dead slots — so rids can address rows in the write-ahead log across
// restarts.
//
// Concurrency: writers serialize on the table's write lock; readers walk
// version chains lock-free (slot heads and chain links are atomic), taking
// the read lock only for the instant it takes to copy the slot slice or an
// index bucket. A scan therefore never blocks a writer for the duration of
// its callbacks, and a writer never makes a reader observe a torn row: the
// reader's snapshot simply does not see versions committed after it.
//
// A table is either managed — bound to a txn.Manager via Bind, with every
// mutation versioned, conflict-checked, and (when a durability sink is
// attached) logged — or unmanaged (temp tables, table variables, test
// fixtures), where mutations apply directly and are visible to every
// snapshot. Unmanaged semantics deliberately match T-SQL table variables,
// which are unaffected by ROLLBACK.
//
// Reads charge the provided Stats with one logical read per row touched,
// which is how the engine reproduces the paper's logical-read measurements.
type Table struct {
	Name   string
	Schema *Schema

	mgr *txn.Manager // nil for unmanaged tables

	mu      sync.RWMutex
	slots   []*slot
	indexes map[string]TableIndex // keyed by lower-cased column name

	liveRows atomic.Int64 // committed live rows (satellite fix: excludes deleted slots)

	// Table statistics cache (see tablestats.go): statsVersion bumps on
	// every committed mutation, invalidating the cached distinct counts.
	statsVersion  atomic.Uint64
	statsMu       sync.Mutex
	statsCache    *TableStatistics
	statsCachedAt uint64
}

// slot holds the head of one row's version chain. A nil head is a dead
// slot (aborted insert or fully vacuumed row).
type slot struct {
	head atomic.Pointer[txn.Version]
}

// NewTable creates an empty, unmanaged table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{Name: name, Schema: schema, indexes: map[string]TableIndex{}}
}

// Bind attaches the table to a transaction manager, making every
// subsequent mutation versioned and conflict-checked. Must be called
// before the table is shared across sessions.
func (t *Table) Bind(mgr *txn.Manager) { t.mgr = mgr }

// Managed reports whether the table is bound to a transaction manager.
func (t *Table) Managed() bool { return t.mgr != nil }

// StatsVersion returns the table's mutation counter: it bumps on every
// committed mutation, so cached artifacts derived from table contents
// (statistics, compiled plans) can detect drift cheaply.
func (t *Table) StatsVersion() uint64 { return t.statsVersion.Load() }

// RowCount returns the number of committed live rows. (Before MVCC this
// returned the slot count, which silently included every deleted row —
// the planner's parallelism threshold drifted upward forever on
// delete-heavy tables.)
func (t *Table) RowCount() int { return int(t.liveRows.Load()) }

// SlotCount returns the total number of slots ever allocated, live or dead.
func (t *Table) SlotCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.slots)
}

// conflict records a write-conflict detection with the transaction manager
// and returns the canonical error.
func (t *Table) conflict() error {
	if t.mgr != nil {
		t.mgr.NoteConflict()
	}
	return txn.ErrWriteConflict
}

// ChainStats summarizes the table's version-chain shape for the
// aggify_stat_tables system view: Versions counts every version node
// reachable from a slot head, and Garbage the superseded (non-head) ones a
// vacuum pass could reclaim once the horizon allows.
type ChainStats struct {
	Versions int64
	Garbage  int64
}

// ChainStats walks every slot's version chain. O(versions); intended for
// introspection queries, not hot paths.
func (t *Table) ChainStats() ChainStats {
	t.mu.RLock()
	slots := t.slots
	t.mu.RUnlock()
	var cs ChainStats
	for _, s := range slots {
		depth := int64(0)
		for v := s.head.Load(); v != nil; v = v.Prev() {
			depth++
		}
		cs.Versions += depth
		if depth > 1 {
			cs.Garbage += depth - 1
		}
	}
	return cs
}

func (t *Table) coerce(row []sqltypes.Value) ([]sqltypes.Value, error) {
	if len(row) != t.Schema.Len() {
		return nil, fmt.Errorf("storage: table %s expects %d values, got %d", t.Name, t.Schema.Len(), len(row))
	}
	coerced := make([]sqltypes.Value, len(row))
	for i, v := range row {
		cv, err := v.CoerceTo(t.Schema.Columns[i].Type)
		if err != nil {
			return nil, fmt.Errorf("storage: column %s of %s: %w", t.Schema.Columns[i].Name, t.Name, err)
		}
		coerced[i] = cv
	}
	return coerced, nil
}

// autocommit wraps a single mutation on a managed table in an implicit
// transaction when the caller did not supply one.
func (t *Table) autocommit(do func(tx *txn.Txn) error) error {
	tx := t.mgr.Begin()
	if err := do(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// Insert appends a row. The row must match the schema arity; values are
// coerced to the declared column types. On a managed table a nil tx
// auto-commits the insert in an implicit transaction.
func (t *Table) Insert(tx *txn.Txn, row []sqltypes.Value) error {
	coerced, err := t.coerce(row)
	if err != nil {
		return err
	}
	if t.mgr != nil && tx == nil {
		return t.autocommit(func(tx *txn.Txn) error { return t.insertTx(tx, coerced) })
	}
	if tx == nil {
		// Unmanaged: apply directly, visible everywhere.
		t.mu.Lock()
		defer t.mu.Unlock()
		rid := len(t.slots)
		s := &slot{}
		s.head.Store(txn.NewCommittedVersion(coerced, nil, 0))
		t.slots = append(t.slots, s)
		for _, idx := range t.indexes {
			idx.add(coerced[idx.ord()], rid)
		}
		t.liveRows.Add(1)
		t.statsVersion.Add(1)
		return nil
	}
	return t.insertTx(tx, coerced)
}

func (t *Table) insertTx(tx *txn.Txn, coerced []sqltypes.Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rid := len(t.slots)
	s := &slot{}
	v := txn.NewVersion(coerced, nil, tx.ID)
	s.head.Store(v)
	t.slots = append(t.slots, s)
	for _, idx := range t.indexes {
		idx.add(coerced[idx.ord()], rid)
	}
	tx.Track(v)
	tx.Log(txn.Mutation{Table: t.Name, Op: txn.MutInsert, Rid: rid, Row: coerced})
	tx.OnCommit(func(uint64) {
		t.liveRows.Add(1)
		t.statsVersion.Add(1)
	})
	tx.OnAbort(func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		s.head.Store(nil)
		for _, idx := range t.indexes {
			idx.remove(coerced[idx.ord()], rid)
		}
	})
	return nil
}

// InsertMany appends many rows. On a managed table with a nil tx the whole
// batch commits as one implicit transaction (generators and bulk loads pay
// one epoch and one WAL record instead of one per row).
func (t *Table) InsertMany(tx *txn.Txn, rows [][]sqltypes.Value) error {
	if t.mgr != nil && tx == nil {
		return t.autocommit(func(tx *txn.Txn) error {
			for _, r := range rows {
				coerced, err := t.coerce(r)
				if err != nil {
					return err
				}
				if err := t.insertTx(tx, coerced); err != nil {
					return err
				}
			}
			return nil
		})
	}
	for _, r := range rows {
		if err := t.Insert(tx, r); err != nil {
			return err
		}
	}
	return nil
}

// Row returns the version of row rid visible to snap without charging I/O
// (internal use). Returns nil when the row does not exist at that snapshot.
func (t *Table) Row(snap *txn.Snapshot, rid int) []sqltypes.Value {
	t.mu.RLock()
	if rid < 0 || rid >= len(t.slots) {
		t.mu.RUnlock()
		return nil
	}
	s := t.slots[rid]
	t.mu.RUnlock()
	v := txn.Visible(s.head.Load(), snap)
	if v == nil || v.IsTombstone() {
		return nil
	}
	return v.Row
}

// Scan iterates over the rows visible to snap in insertion order, charging
// one logical read per row. The callback must not retain the row slice.
// Iteration stops early when the callback returns false. A nil snap sees
// the latest committed state.
//
// The slot slice is copied under the read lock, then the chains are walked
// lock-free: the callback runs with no table lock held, so long scans
// never block writers.
func (t *Table) Scan(snap *txn.Snapshot, stats *Stats, fn func(rid int, row []sqltypes.Value) bool) {
	t.mu.RLock()
	slots := t.slots
	t.mu.RUnlock()
	for rid, s := range slots {
		v := txn.Visible(s.head.Load(), snap)
		if v == nil || v.IsTombstone() {
			continue
		}
		if stats != nil {
			stats.LogicalReads.Add(1)
		}
		if !fn(rid, v.Row) {
			return
		}
	}
}

// Update replaces the row rid with row. A write conflict (another
// transaction's uncommitted version on the row, or a version committed
// after tx's snapshot) fails immediately with txn.ErrWriteConflict:
// first-writer-wins.
func (t *Table) Update(tx *txn.Txn, rid int, row []sqltypes.Value) error {
	coerced, err := t.coerce(row)
	if err != nil {
		return err
	}
	if t.mgr != nil && tx == nil {
		return t.autocommit(func(tx *txn.Txn) error { return t.writeTx(tx, rid, coerced, false) })
	}
	if tx == nil {
		t.mu.Lock()
		defer t.mu.Unlock()
		if rid < 0 || rid >= len(t.slots) {
			return fmt.Errorf("storage: table %s has no row %d", t.Name, rid)
		}
		s := t.slots[rid]
		head := s.head.Load()
		if head == nil || head.IsTombstone() {
			return fmt.Errorf("storage: table %s has no row %d", t.Name, rid)
		}
		old := head.Row
		for _, idx := range t.indexes {
			idx.remove(old[idx.ord()], rid)
			idx.add(coerced[idx.ord()], rid)
		}
		s.head.Store(txn.NewCommittedVersion(coerced, nil, 0))
		t.statsVersion.Add(1)
		return nil
	}
	return t.writeTx(tx, rid, coerced, false)
}

// Delete removes the row rid by appending a tombstone version. Conflict
// rules match Update.
func (t *Table) Delete(tx *txn.Txn, rid int) error {
	if t.mgr != nil && tx == nil {
		return t.autocommit(func(tx *txn.Txn) error { return t.writeTx(tx, rid, nil, true) })
	}
	if tx == nil {
		t.mu.Lock()
		defer t.mu.Unlock()
		if rid < 0 || rid >= len(t.slots) {
			return fmt.Errorf("storage: table %s has no row %d", t.Name, rid)
		}
		s := t.slots[rid]
		head := s.head.Load()
		if head == nil || head.IsTombstone() {
			return fmt.Errorf("storage: table %s has no row %d", t.Name, rid)
		}
		old := head.Row
		for _, idx := range t.indexes {
			idx.remove(old[idx.ord()], rid)
		}
		s.head.Store(nil)
		t.liveRows.Add(-1)
		t.statsVersion.Add(1)
		return nil
	}
	return t.writeTx(tx, rid, nil, true)
}

// writeTx applies a transactional update (tombstone=false, coerced is the
// new row) or delete (tombstone=true) to slot rid, with first-writer-wins
// conflict detection.
func (t *Table) writeTx(tx *txn.Txn, rid int, coerced []sqltypes.Value, tombstone bool) error {
	if tx.Done() {
		return txn.ErrTxnDone
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if rid < 0 || rid >= len(t.slots) {
		return fmt.Errorf("storage: table %s has no row %d", t.Name, rid)
	}
	s := t.slots[rid]
	head := s.head.Load()
	if head == nil {
		return fmt.Errorf("storage: table %s has no row %d", t.Name, rid)
	}
	if owner, ok := head.Owner(); ok {
		if owner != tx.ID {
			return t.conflict()
		}
		// Rewriting our own uncommitted version: replace it in place so the
		// chain holds at most one version per transaction.
		if head.IsTombstone() {
			return fmt.Errorf("storage: table %s has no row %d", t.Name, rid)
		}
		return t.replaceOwnVersion(tx, s, rid, head, coerced, tombstone)
	}
	epoch, _ := head.Committed()
	if epoch > tx.Snapshot().Epoch {
		// Committed after our snapshot: first committer won.
		return t.conflict()
	}
	if head.IsTombstone() {
		return fmt.Errorf("storage: table %s has no row %d", t.Name, rid)
	}
	v := txn.NewVersion(coerced, head, tx.ID)
	s.head.Store(v)
	tx.Track(v)
	if tombstone {
		tx.Log(txn.Mutation{Table: t.Name, Op: txn.MutDelete, Rid: rid})
		tx.OnCommit(func(uint64) {
			t.liveRows.Add(-1)
			t.statsVersion.Add(1)
			t.mgr.NoteGarbage(1)
		})
	} else {
		for _, idx := range t.indexes {
			idx.add(coerced[idx.ord()], rid)
		}
		tx.Log(txn.Mutation{Table: t.Name, Op: txn.MutUpdate, Rid: rid, Row: coerced})
		tx.OnCommit(func(uint64) {
			t.statsVersion.Add(1)
			t.mgr.NoteGarbage(1)
		})
	}
	tx.OnAbort(func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		s.head.Store(head)
		if !tombstone {
			t.dropKeyUnlessChained(coerced, head, rid)
		}
	})
	return nil
}

// replaceOwnVersion swaps the transaction's own uncommitted head for a new
// version with the same predecessor. The old version stays in tx's track
// list but is unreachable, so its commit stamp is harmless.
func (t *Table) replaceOwnVersion(tx *txn.Txn, s *slot, rid int, head *txn.Version, coerced []sqltypes.Value, tombstone bool) error {
	v := txn.NewVersion(coerced, head.Prev(), tx.ID)
	s.head.Store(v)
	tx.Track(v)
	if !tombstone {
		for _, idx := range t.indexes {
			idx.add(coerced[idx.ord()], rid)
		}
	}
	t.dropKeyUnlessChained(head.Row, v, rid)
	if tombstone {
		tx.Log(txn.Mutation{Table: t.Name, Op: txn.MutDelete, Rid: rid})
		// Always decrement at commit: for a pre-existing row this retires
		// it; for a row this transaction inserted it cancels the insert
		// hook's pending +1.
		tx.OnCommit(func(uint64) {
			t.liveRows.Add(-1)
			t.statsVersion.Add(1)
			t.mgr.NoteGarbage(1)
		})
	} else {
		tx.Log(txn.Mutation{Table: t.Name, Op: txn.MutUpdate, Rid: rid, Row: coerced})
	}
	tx.OnAbort(func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		s.head.Store(head)
		if !tombstone {
			t.dropKeyUnlessChained(coerced, head, rid)
		}
		if head.Row != nil {
			for _, idx := range t.indexes {
				idx.add(head.Row[idx.ord()], rid)
			}
		}
	})
	return nil
}

// dropKeyUnlessChained removes row's index entries for rid unless some
// version still reachable from chainHead carries the same key (index
// entries are deduplicated per (key, rid)). Callers hold the write lock.
func (t *Table) dropKeyUnlessChained(row []sqltypes.Value, chainHead *txn.Version, rid int) {
	if row == nil {
		return
	}
	for _, idx := range t.indexes {
		key := row[idx.ord()]
		keep := false
		for v := chainHead; v != nil; v = v.Prev() {
			if v.Row != nil && sqltypes.Equal(v.Row[idx.ord()], key) {
				keep = true
				break
			}
		}
		if !keep {
			idx.remove(key, rid)
		}
	}
}

// Truncate removes all rows. On a managed table every live row gets a
// tombstone version in the (possibly implicit) transaction — old snapshots
// keep seeing the rows, and ROLLBACK restores them; the WAL carries a
// single truncate record. Unmanaged tables clear in place.
func (t *Table) Truncate(tx *txn.Txn) error {
	if t.mgr != nil && tx == nil {
		return t.autocommit(func(tx *txn.Txn) error { return t.truncateTx(tx) })
	}
	if tx == nil {
		t.mu.Lock()
		defer t.mu.Unlock()
		t.slots = nil
		for _, idx := range t.indexes {
			idx.clear()
		}
		t.liveRows.Store(0)
		t.statsVersion.Add(1)
		return nil
	}
	return t.truncateTx(tx)
}

func (t *Table) truncateTx(tx *txn.Txn) error {
	if tx.Done() {
		return txn.ErrTxnDone
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// First-writer-wins over the whole table: any foreign uncommitted
	// version aborts the truncate before it tombstones anything.
	for _, s := range t.slots {
		head := s.head.Load()
		if head == nil {
			continue
		}
		if owner, ok := head.Owner(); ok && owner != tx.ID {
			return t.conflict()
		}
		if epoch, ok := head.Committed(); ok && epoch > tx.Snapshot().Epoch {
			return t.conflict()
		}
	}
	var killed int64
	for rid, s := range t.slots {
		head := s.head.Load()
		if head == nil || head.IsTombstone() {
			continue
		}
		var v *txn.Version
		if _, ok := head.Owner(); ok {
			v = txn.NewVersion(nil, head.Prev(), tx.ID)
			t.dropKeyUnlessChained(head.Row, v, rid)
		} else {
			v = txn.NewVersion(nil, head, tx.ID)
		}
		s.head.Store(v)
		tx.Track(v)
		restore := head
		slotRef := s
		tx.OnAbort(func() {
			t.mu.Lock()
			defer t.mu.Unlock()
			slotRef.head.Store(restore)
			if restore.Row != nil {
				for _, idx := range t.indexes {
					idx.add(restore.Row[idx.ord()], rid)
				}
			}
		})
		// Every tombstoned slot decrements at commit: pre-existing rows
		// retire, own uncommitted inserts cancel their pending +1.
		killed++
	}
	tx.Log(txn.Mutation{Table: t.Name, Op: txn.MutTruncate, Rid: 0})
	n := killed
	garbage := len(t.slots)
	tx.OnCommit(func(uint64) {
		t.liveRows.Add(-n)
		t.statsVersion.Add(1)
		t.mgr.NoteGarbage(garbage)
	})
	return nil
}

// CreateIndex builds a hash index on the named column, covering every
// version any live snapshot could still see. Creating an index that
// already exists with the same kind is a no-op; creating one with the
// other kind rebuilds it in place.
func (t *Table) CreateIndex(column string) error {
	return t.createIndex(column, false)
}

// CreateOrderedIndex builds an ordered (range-seekable) index on the named
// column, with the same coverage and replacement rules as CreateIndex.
func (t *Table) CreateOrderedIndex(column string) error {
	return t.createIndex(column, true)
}

func (t *Table) createIndex(column string, ordered bool) error {
	ord := t.Schema.Ordinal(column)
	if ord < 0 {
		return fmt.Errorf("storage: table %s has no column %q", t.Name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := t.Schema.Columns[ord].Name
	if existing, ok := t.indexes[key]; ok && existing.Ordered() == ordered {
		return nil
	}
	var idx TableIndex
	if ordered {
		idx = newOrderedIndex(ord)
	} else {
		idx = newHashIndex(ord)
	}
	for rid, s := range t.slots {
		for v := s.head.Load(); v != nil; v = v.Prev() {
			if v.Row != nil {
				idx.add(v.Row[ord], rid)
			}
		}
	}
	t.indexes[key] = idx
	return nil
}

// Index returns the index on the named column, or nil.
func (t *Table) Index(column string) TableIndex {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ord := t.Schema.Ordinal(column)
	if ord < 0 {
		return nil
	}
	idx, ok := t.indexes[t.Schema.Columns[ord].Name]
	if !ok {
		return nil
	}
	return idx
}

// IndexColumns returns the indexed column names (checkpointing).
func (t *Table) IndexColumns() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cols := make([]string, 0, len(t.indexes))
	for name := range t.indexes {
		cols = append(cols, name)
	}
	return cols
}

// IndexDef describes one index for checkpointing and introspection.
type IndexDef struct {
	Column  string
	Ordered bool
}

// IndexDefs returns every index's definition, sorted by column name for
// deterministic checkpoint images and system-table output.
func (t *Table) IndexDefs() []IndexDef {
	t.mu.RLock()
	defer t.mu.RUnlock()
	defs := make([]IndexDef, 0, len(t.indexes))
	for name, idx := range t.indexes {
		defs = append(defs, IndexDef{Column: name, Ordered: idx.Ordered()})
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].Column < defs[j].Column })
	return defs
}

// Seek looks up rows whose indexed column equals key via the index on the
// named column, charging one index seek plus one logical read per visible
// row. It returns false when no such index exists.
//
// Index entries are written eagerly by uncommitted transactions and
// retained for old snapshots after updates, so each candidate's visible
// version is re-verified against the key before it is emitted.
func (t *Table) Seek(snap *txn.Snapshot, stats *Stats, column string, key sqltypes.Value, fn func(rid int, row []sqltypes.Value) bool) bool {
	ord := t.Schema.Ordinal(column)
	if ord < 0 {
		return false
	}
	t.mu.RLock()
	idx := t.indexes[t.Schema.Columns[ord].Name]
	if idx == nil {
		t.mu.RUnlock()
		return false
	}
	rids := idx.lookup(key)
	slots := t.slots
	t.mu.RUnlock()
	if stats != nil {
		stats.IndexSeeks.Add(1)
	}
	for _, rid := range rids {
		if rid >= len(slots) {
			continue
		}
		v := txn.Visible(slots[rid].head.Load(), snap)
		if v == nil || v.IsTombstone() || !sqltypes.Equal(v.Row[ord], key) {
			continue
		}
		if stats != nil {
			stats.LogicalReads.Add(1)
		}
		if !fn(rid, v.Row) {
			break
		}
	}
	return true
}

// Vacuum reclaims versions no snapshot at or after epoch oldest can see:
// chains are cut below their newest version committed ≤ oldest, and slots
// whose surviving version is a tombstone are emptied. Index entries that
// pointed only at reclaimed versions are dropped.
func (t *Table) Vacuum(oldest uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for rid, s := range t.slots {
		head := s.head.Load()
		if head == nil {
			continue
		}
		// Find the newest version every live snapshot can rely on.
		var w *txn.Version
		for v := head; v != nil; v = v.Prev() {
			if e, ok := v.Committed(); ok && e <= oldest {
				w = v
				break
			}
		}
		if w == nil {
			continue
		}
		if w == head && head.IsTombstone() {
			// The whole slot is dead to every current and future snapshot.
			for v := head; v != nil; v = v.Prev() {
				if v.Row != nil {
					for _, idx := range t.indexes {
						idx.remove(v.Row[idx.ord()], rid)
					}
				}
			}
			s.head.Store(nil)
			continue
		}
		if w.Prev() == nil {
			continue
		}
		// Cut the chain below w, then drop index entries whose key no
		// longer appears in the surviving chain.
		dead := w.Prev()
		w.SetPrev(nil)
		for v := dead; v != nil; v = v.Prev() {
			t.dropKeyUnlessChained(v.Row, head, rid)
		}
	}
}

// CheckpointSlots returns each slot's row image as visible at epoch (nil
// for dead slots), preserving slot order and count for rid stability.
// Called with the commit lock held so the image is a consistent cut.
func (t *Table) CheckpointSlots(epoch uint64) [][]sqltypes.Value {
	snap := &txn.Snapshot{Epoch: epoch}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([][]sqltypes.Value, len(t.slots))
	for rid, s := range t.slots {
		v := txn.Visible(s.head.Load(), snap)
		if v == nil || v.IsTombstone() {
			continue
		}
		out[rid] = v.Row
	}
	return out
}

// LoadCheckpointSlots installs a checkpoint image (recovery). The table
// must be empty; rows are assumed already coerced (they were written by
// the codec that checkpointed them).
func (t *Table) LoadCheckpointSlots(rows [][]sqltypes.Value) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.slots = make([]*slot, len(rows))
	var live int64
	for rid, row := range rows {
		s := &slot{}
		if row != nil {
			s.head.Store(txn.NewCommittedVersion(row, nil, 0))
			live++
			for _, idx := range t.indexes {
				idx.add(row[idx.ord()], rid)
			}
		}
		t.slots[rid] = s
	}
	t.liveRows.Store(live)
	t.statsVersion.Add(1)
}

// ReplayApply re-executes one logged mutation at the given commit epoch
// (recovery). Slot ids are trusted: inserts extend the slot array as
// needed so replay lands every row at its original rid.
func (t *Table) ReplayApply(m txn.Mutation, epoch uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch m.Op {
	case txn.MutInsert:
		for len(t.slots) < m.Rid {
			t.slots = append(t.slots, &slot{})
		}
		s := &slot{}
		s.head.Store(txn.NewCommittedVersion(m.Row, nil, epoch))
		if m.Rid == len(t.slots) {
			t.slots = append(t.slots, s)
		} else {
			if old := t.slots[m.Rid].head.Load(); old != nil && old.Row != nil {
				for _, idx := range t.indexes {
					idx.remove(old.Row[idx.ord()], m.Rid)
				}
				t.liveRows.Add(-1)
			}
			t.slots[m.Rid] = s
		}
		for _, idx := range t.indexes {
			idx.add(m.Row[idx.ord()], m.Rid)
		}
		t.liveRows.Add(1)
	case txn.MutUpdate:
		if m.Rid < 0 || m.Rid >= len(t.slots) {
			return fmt.Errorf("storage: replay update of %s row %d out of range", t.Name, m.Rid)
		}
		s := t.slots[m.Rid]
		if old := s.head.Load(); old != nil && old.Row != nil {
			for _, idx := range t.indexes {
				idx.remove(old.Row[idx.ord()], m.Rid)
			}
		}
		s.head.Store(txn.NewCommittedVersion(m.Row, nil, epoch))
		for _, idx := range t.indexes {
			idx.add(m.Row[idx.ord()], m.Rid)
		}
	case txn.MutDelete:
		if m.Rid < 0 || m.Rid >= len(t.slots) {
			return fmt.Errorf("storage: replay delete of %s row %d out of range", t.Name, m.Rid)
		}
		s := t.slots[m.Rid]
		if old := s.head.Load(); old != nil && old.Row != nil {
			for _, idx := range t.indexes {
				idx.remove(old.Row[idx.ord()], m.Rid)
			}
			t.liveRows.Add(-1)
		}
		s.head.Store(nil)
	case txn.MutTruncate:
		for rid, s := range t.slots {
			if old := s.head.Load(); old != nil && old.Row != nil {
				for _, idx := range t.indexes {
					idx.remove(old.Row[idx.ord()], rid)
				}
			}
			s.head.Store(nil)
		}
		t.liveRows.Store(0)
	default:
		return fmt.Errorf("storage: replay of unknown mutation op %d", m.Op)
	}
	t.statsVersion.Add(1)
	return nil
}

// TableIndex is the contract both index kinds implement. Mutation methods
// are called with the table write lock held; lookup is called under the
// read lock and must return a freshly allocated slice. NULL keys are never
// indexed (SQL equality and range comparisons never match NULL), and
// entries are deduplicated per (key, rid): a rid appears at most once under
// a given key no matter how many chain versions carry it.
type TableIndex interface {
	// ord is the indexed column's schema ordinal.
	ord() int
	add(key sqltypes.Value, rid int)
	remove(key sqltypes.Value, rid int)
	clear()
	// lookup returns the row ids whose key equals the given value.
	lookup(key sqltypes.Value) []int
	// Ordered reports whether the index supports range seeks.
	Ordered() bool
}

// HashIndex is an equality index from column value to row ids.
type HashIndex struct {
	ordinal int
	buckets map[uint64][]entry
}

func (ix *HashIndex) ord() int { return ix.ordinal }

// Ordered implements TableIndex: hash indexes support equality only.
func (ix *HashIndex) Ordered() bool { return false }

type entry struct {
	key sqltypes.Value
	rid int
}

func newHashIndex(ordinal int) *HashIndex {
	return &HashIndex{ordinal: ordinal, buckets: map[uint64][]entry{}}
}

func (ix *HashIndex) add(key sqltypes.Value, rid int) {
	if key.IsNull() {
		return
	}
	h := sqltypes.Hash(key)
	for _, e := range ix.buckets[h] {
		if e.rid == rid && sqltypes.Equal(e.key, key) {
			return
		}
	}
	ix.buckets[h] = append(ix.buckets[h], entry{key, rid})
}

func (ix *HashIndex) remove(key sqltypes.Value, rid int) {
	if key.IsNull() {
		return
	}
	h := sqltypes.Hash(key)
	b := ix.buckets[h]
	for i, e := range b {
		if e.rid == rid && sqltypes.Equal(e.key, key) {
			b[i] = b[len(b)-1]
			ix.buckets[h] = b[:len(b)-1]
			return
		}
	}
}

func (ix *HashIndex) clear() { ix.buckets = map[uint64][]entry{} }

// lookup returns the row ids whose key equals the given value. The result
// is freshly allocated; callers may use it after releasing the table lock.
func (ix *HashIndex) lookup(key sqltypes.Value) []int {
	if key.IsNull() {
		return nil
	}
	var out []int
	for _, e := range ix.buckets[sqltypes.Hash(key)] {
		if sqltypes.Equal(e.key, key) {
			out = append(out, e.rid)
		}
	}
	return out
}
