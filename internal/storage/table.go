package storage

import (
	"fmt"
	"sync"

	"aggify/internal/sqltypes"
)

// Table is an in-memory heap table with optional hash indexes.
//
// Reads charge the provided Stats with one logical read per row touched,
// which is how the engine reproduces the paper's logical-read measurements.
type Table struct {
	Name   string
	Schema *Schema

	mu      sync.RWMutex
	rows    [][]sqltypes.Value
	indexes map[string]*HashIndex // keyed by lower-cased column name
}

// NewTable creates an empty table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{Name: name, Schema: schema, indexes: map[string]*HashIndex{}}
}

// RowCount returns the number of rows currently stored.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert appends a row. The row must match the schema arity; values are
// coerced to the declared column types.
func (t *Table) Insert(row []sqltypes.Value) error {
	if len(row) != t.Schema.Len() {
		return fmt.Errorf("storage: table %s expects %d values, got %d", t.Name, t.Schema.Len(), len(row))
	}
	coerced := make([]sqltypes.Value, len(row))
	for i, v := range row {
		cv, err := v.CoerceTo(t.Schema.Columns[i].Type)
		if err != nil {
			return fmt.Errorf("storage: column %s of %s: %w", t.Schema.Columns[i].Name, t.Name, err)
		}
		coerced[i] = cv
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rid := len(t.rows)
	t.rows = append(t.rows, coerced)
	for _, idx := range t.indexes {
		idx.add(coerced[idx.ordinal], rid)
	}
	return nil
}

// InsertMany appends many rows (used by generators); stops at first error.
func (t *Table) InsertMany(rows [][]sqltypes.Value) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Row returns the row with the given id without charging I/O (internal use).
// Deleted rows are nil.
func (t *Table) Row(rid int) []sqltypes.Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if rid < 0 || rid >= len(t.rows) {
		return nil
	}
	return t.rows[rid]
}

// Scan iterates over all live rows in insertion order, charging one logical
// read per row. The callback must not retain the row slice. Iteration stops
// early when the callback returns false.
func (t *Table) Scan(stats *Stats, fn func(rid int, row []sqltypes.Value) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for rid, row := range t.rows {
		if row == nil {
			continue
		}
		if stats != nil {
			stats.LogicalReads.Add(1)
		}
		if !fn(rid, row) {
			return
		}
	}
}

// Update replaces the row with id rid, maintaining indexes.
func (t *Table) Update(rid int, row []sqltypes.Value) error {
	if len(row) != t.Schema.Len() {
		return fmt.Errorf("storage: table %s expects %d values, got %d", t.Name, t.Schema.Len(), len(row))
	}
	coerced := make([]sqltypes.Value, len(row))
	for i, v := range row {
		cv, err := v.CoerceTo(t.Schema.Columns[i].Type)
		if err != nil {
			return err
		}
		coerced[i] = cv
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if rid < 0 || rid >= len(t.rows) || t.rows[rid] == nil {
		return fmt.Errorf("storage: table %s has no row %d", t.Name, rid)
	}
	old := t.rows[rid]
	for _, idx := range t.indexes {
		idx.remove(old[idx.ordinal], rid)
		idx.add(coerced[idx.ordinal], rid)
	}
	t.rows[rid] = coerced
	return nil
}

// Delete removes the row with id rid.
func (t *Table) Delete(rid int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rid < 0 || rid >= len(t.rows) || t.rows[rid] == nil {
		return fmt.Errorf("storage: table %s has no row %d", t.Name, rid)
	}
	old := t.rows[rid]
	for _, idx := range t.indexes {
		idx.remove(old[idx.ordinal], rid)
	}
	t.rows[rid] = nil
	return nil
}

// Truncate removes all rows and clears indexes.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = nil
	for _, idx := range t.indexes {
		idx.clear()
	}
}

// CreateIndex builds a hash index on the named column. Creating an index
// that already exists is a no-op.
func (t *Table) CreateIndex(column string) error {
	ord := t.Schema.Ordinal(column)
	if ord < 0 {
		return fmt.Errorf("storage: table %s has no column %q", t.Name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := t.Schema.Columns[ord].Name
	if _, ok := t.indexes[key]; ok {
		return nil
	}
	idx := newHashIndex(ord)
	for rid, row := range t.rows {
		if row != nil {
			idx.add(row[ord], rid)
		}
	}
	t.indexes[key] = idx
	return nil
}

// Index returns the hash index on the named column, or nil.
func (t *Table) Index(column string) *HashIndex {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ord := t.Schema.Ordinal(column)
	if ord < 0 {
		return nil
	}
	return t.indexes[t.Schema.Columns[ord].Name]
}

// Seek looks up rows whose indexed column equals key via the index on the
// named column, charging one index seek plus one logical read per row.
// It returns nil, false when no such index exists.
func (t *Table) Seek(stats *Stats, column string, key sqltypes.Value, fn func(rid int, row []sqltypes.Value) bool) bool {
	idx := t.Index(column)
	if idx == nil {
		return false
	}
	if stats != nil {
		stats.IndexSeeks.Add(1)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, rid := range idx.lookup(key) {
		row := t.rows[rid]
		if row == nil {
			continue
		}
		if stats != nil {
			stats.LogicalReads.Add(1)
		}
		if !fn(rid, row) {
			break
		}
	}
	return true
}

// HashIndex is an equality index from column value to row ids. NULL keys are
// not indexed (SQL equality never matches NULL).
type HashIndex struct {
	ordinal int
	buckets map[uint64][]entry
}

type entry struct {
	key sqltypes.Value
	rid int
}

func newHashIndex(ordinal int) *HashIndex {
	return &HashIndex{ordinal: ordinal, buckets: map[uint64][]entry{}}
}

func (ix *HashIndex) add(key sqltypes.Value, rid int) {
	if key.IsNull() {
		return
	}
	h := sqltypes.Hash(key)
	ix.buckets[h] = append(ix.buckets[h], entry{key, rid})
}

func (ix *HashIndex) remove(key sqltypes.Value, rid int) {
	if key.IsNull() {
		return
	}
	h := sqltypes.Hash(key)
	b := ix.buckets[h]
	for i, e := range b {
		if e.rid == rid {
			b[i] = b[len(b)-1]
			ix.buckets[h] = b[:len(b)-1]
			return
		}
	}
}

func (ix *HashIndex) clear() { ix.buckets = map[uint64][]entry{} }

// lookup returns the row ids whose key equals the given value.
func (ix *HashIndex) lookup(key sqltypes.Value) []int {
	if key.IsNull() {
		return nil
	}
	var out []int
	for _, e := range ix.buckets[sqltypes.Hash(key)] {
		if sqltypes.Equal(e.key, key) {
			out = append(out, e.rid)
		}
	}
	return out
}
