package storage

import (
	"testing"
	"testing/quick"

	"aggify/internal/sqltypes"
)

func testSchema() *Schema {
	return NewSchema(
		Col("id", sqltypes.Int),
		Col("name", sqltypes.VarChar(32)),
		Col("cost", sqltypes.Float),
	)
}

func TestSchemaOrdinal(t *testing.T) {
	s := testSchema()
	if s.Ordinal("NAME") != 1 {
		t.Fatalf("Ordinal is case sensitive: %d", s.Ordinal("NAME"))
	}
	if s.Ordinal("missing") != -1 {
		t.Fatal("missing column should be -1")
	}
	if s.Len() != 3 {
		t.Fatal("Len broken")
	}
	if got := s.String(); got != "(id INT, name VARCHAR(32), cost FLOAT)" {
		t.Fatalf("String() = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustOrdinal should panic on missing column")
		}
	}()
	s.MustOrdinal("nope")
}

func row(id int64, name string, cost float64) []sqltypes.Value {
	return []sqltypes.Value{sqltypes.NewInt(id), sqltypes.NewString(name), sqltypes.NewFloat(cost)}
}

func TestTableInsertScan(t *testing.T) {
	tab := NewTable("t", testSchema())
	var stats Stats
	for i := int64(0); i < 10; i++ {
		if err := tab.Insert(nil, row(i, "n", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if tab.RowCount() != 10 {
		t.Fatalf("RowCount = %d", tab.RowCount())
	}
	var seen int64
	tab.Scan(nil, &stats, func(rid int, r []sqltypes.Value) bool {
		if r[0].Int() != int64(rid) {
			t.Errorf("row %d has id %d", rid, r[0].Int())
		}
		seen++
		return true
	})
	if seen != 10 {
		t.Fatalf("scanned %d rows", seen)
	}
	if stats.LogicalReads.Load() != 10 {
		t.Fatalf("logical reads = %d, want 10", stats.LogicalReads.Load())
	}
}

func TestScanEarlyStop(t *testing.T) {
	tab := NewTable("t", testSchema())
	for i := int64(0); i < 10; i++ {
		_ = tab.Insert(nil, row(i, "n", 0))
	}
	var stats Stats
	n := 0
	tab.Scan(nil, &stats, func(int, []sqltypes.Value) bool { n++; return n < 3 })
	if n != 3 || stats.LogicalReads.Load() != 3 {
		t.Fatalf("early stop: n=%d reads=%d", n, stats.LogicalReads.Load())
	}
}

func TestInsertArityAndCoercion(t *testing.T) {
	tab := NewTable("t", testSchema())
	if err := tab.Insert(nil, []sqltypes.Value{sqltypes.NewInt(1)}); err == nil {
		t.Fatal("arity mismatch should error")
	}
	// An int inserted into a FLOAT column should coerce.
	if err := tab.Insert(nil, []sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewString("a"), sqltypes.NewInt(5)}); err != nil {
		t.Fatal(err)
	}
	r := tab.Row(nil, 0)
	if r[2].Kind() != sqltypes.KindFloat || r[2].Float() != 5 {
		t.Fatalf("coercion to float failed: %v", r[2])
	}
}

func TestIndexSeek(t *testing.T) {
	tab := NewTable("t", testSchema())
	for i := int64(0); i < 100; i++ {
		_ = tab.Insert(nil, row(i%10, "n", float64(i)))
	}
	if err := tab.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	var stats Stats
	var hits int
	ok := tab.Seek(nil, &stats, "id", sqltypes.NewInt(3), func(rid int, r []sqltypes.Value) bool {
		if r[0].Int() != 3 {
			t.Errorf("seek returned id %d", r[0].Int())
		}
		hits++
		return true
	})
	if !ok {
		t.Fatal("Seek reported no index")
	}
	if hits != 10 {
		t.Fatalf("seek hits = %d, want 10", hits)
	}
	if stats.IndexSeeks.Load() != 1 || stats.LogicalReads.Load() != 10 {
		t.Fatalf("stats: seeks=%d reads=%d", stats.IndexSeeks.Load(), stats.LogicalReads.Load())
	}
	if tab.Seek(nil, nil, "name", sqltypes.NewString("n"), func(int, []sqltypes.Value) bool { return true }) {
		t.Fatal("Seek on unindexed column should return false")
	}
}

func TestIndexMaintainedAcrossUpdateDelete(t *testing.T) {
	tab := NewTable("t", testSchema())
	_ = tab.CreateIndex("id")
	_ = tab.Insert(nil, row(1, "a", 0))
	_ = tab.Insert(nil, row(2, "b", 0))
	if err := tab.Update(nil, 0, row(5, "a2", 1)); err != nil {
		t.Fatal(err)
	}
	count := func(key int64) int {
		n := 0
		tab.Seek(nil, nil, "id", sqltypes.NewInt(key), func(int, []sqltypes.Value) bool { n++; return true })
		return n
	}
	if count(1) != 0 || count(5) != 1 {
		t.Fatalf("index not maintained on update: old=%d new=%d", count(1), count(5))
	}
	if err := tab.Delete(nil, 1); err != nil {
		t.Fatal(err)
	}
	if count(2) != 0 {
		t.Fatal("index not maintained on delete")
	}
	if err := tab.Delete(nil, 1); err == nil {
		t.Fatal("double delete should error")
	}
	// Deleted rows are skipped by scans.
	n := 0
	tab.Scan(nil, nil, func(int, []sqltypes.Value) bool { n++; return true })
	if n != 1 {
		t.Fatalf("scan after delete saw %d rows", n)
	}
}

func TestCreateIndexBackfillsAndIsIdempotent(t *testing.T) {
	tab := NewTable("t", testSchema())
	_ = tab.Insert(nil, row(7, "x", 0))
	if err := tab.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateIndex("id"); err != nil {
		t.Fatal("re-creating index should be a no-op")
	}
	n := 0
	tab.Seek(nil, nil, "id", sqltypes.NewInt(7), func(int, []sqltypes.Value) bool { n++; return true })
	if n != 1 {
		t.Fatal("index did not backfill existing rows")
	}
	if err := tab.CreateIndex("bogus"); err == nil {
		t.Fatal("index on missing column should error")
	}
}

func TestTruncate(t *testing.T) {
	tab := NewTable("t", testSchema())
	_ = tab.CreateIndex("id")
	_ = tab.Insert(nil, row(1, "a", 0))
	tab.Truncate(nil)
	if tab.RowCount() != 0 {
		t.Fatal("truncate left rows")
	}
	n := 0
	tab.Seek(nil, nil, "id", sqltypes.NewInt(1), func(int, []sqltypes.Value) bool { n++; return true })
	if n != 0 {
		t.Fatal("truncate left index entries")
	}
}

func TestNullNotIndexed(t *testing.T) {
	tab := NewTable("t", testSchema())
	_ = tab.CreateIndex("id")
	_ = tab.Insert(nil, []sqltypes.Value{sqltypes.Null, sqltypes.NewString("x"), sqltypes.NewFloat(0)})
	n := 0
	tab.Seek(nil, nil, "id", sqltypes.Null, func(int, []sqltypes.Value) bool { n++; return true })
	if n != 0 {
		t.Fatal("NULL keys must not match index seeks")
	}
}

func TestRowCodecRoundtrip(t *testing.T) {
	rows := [][]sqltypes.Value{
		{},
		{sqltypes.Null},
		{sqltypes.NewBool(true), sqltypes.NewBool(false)},
		{sqltypes.NewInt(-1 << 40), sqltypes.NewInt(0), sqltypes.NewInt(1 << 40)},
		{sqltypes.NewFloat(3.14159), sqltypes.NewFloat(-0.0)},
		{sqltypes.NewString(""), sqltypes.NewString("héllo 'quoted'")},
		{sqltypes.MustDate("1995-03-15")},
		{sqltypes.NewTuple([]sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewString("x"), sqltypes.Null})},
	}
	for _, r := range rows {
		enc := AppendRow(nil, r)
		dec, rest, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", r, err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode %v left %d bytes", r, len(rest))
		}
		if len(dec) != len(r) {
			t.Fatalf("arity mismatch: %v vs %v", dec, r)
		}
		for i := range r {
			if r[i].Kind() != dec[i].Kind() {
				t.Fatalf("kind mismatch at %d: %v vs %v", i, r[i], dec[i])
			}
			if !r[i].IsNull() && !sqltypes.GroupEqual(r[i], dec[i]) {
				t.Fatalf("value mismatch at %d: %v vs %v", i, r[i], dec[i])
			}
		}
	}
}

func TestRowCodecTruncation(t *testing.T) {
	enc := AppendRow(nil, []sqltypes.Value{sqltypes.NewString("hello")})
	for i := 1; i < len(enc); i++ {
		if _, _, err := DecodeRow(enc[:i]); err == nil {
			t.Fatalf("truncated decode at %d should error", i)
		}
	}
	if _, _, err := DecodeValue([]byte{250}); err == nil {
		t.Fatal("unknown tag should error")
	}
}

// Property: any row of random ints/strings roundtrips through the codec.
func TestRowCodecProperty(t *testing.T) {
	f := func(a int64, s string, b bool) bool {
		r := []sqltypes.Value{sqltypes.NewInt(a), sqltypes.NewString(s), sqltypes.NewBool(b), sqltypes.Null}
		dec, rest, err := DecodeRow(AppendRow(nil, r))
		if err != nil || len(rest) != 0 || len(dec) != 4 {
			return false
		}
		return dec[0].Int() == a && dec[1].Str() == s && dec[2].Bool() == b && dec[3].IsNull()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorktable(t *testing.T) {
	var stats Stats
	w := NewWorktable(&stats)
	for i := int64(0); i < 1000; i++ {
		w.Append(row(i, "some-name-payload", float64(i)*1.5))
	}
	if w.RowCount() != 1000 {
		t.Fatalf("RowCount = %d", w.RowCount())
	}
	if stats.WorktableWrites.Load() != 1000 {
		t.Fatalf("writes = %d", stats.WorktableWrites.Load())
	}
	if stats.WorktableBytes.Load() <= 0 {
		t.Fatal("no bytes accounted")
	}
	if w.PageCount() < 2 {
		t.Fatalf("expected multiple pages, got %d", w.PageCount())
	}
	for i := 0; i < 1000; i++ {
		r := w.Get(i)
		if r[0].Int() != int64(i) {
			t.Fatalf("row %d decoded id %d", i, r[0].Int())
		}
	}
	if stats.WorktableReads.Load() != 1000 {
		t.Fatalf("reads = %d", stats.WorktableReads.Load())
	}
	if w.Get(-1) != nil || w.Get(1000) != nil {
		t.Fatal("out-of-range Get must return nil")
	}
	w.Reset()
	if w.RowCount() != 0 || w.Get(0) != nil {
		t.Fatal("reset broken")
	}
}

func TestWireSize(t *testing.T) {
	small := WireSize([]sqltypes.Value{sqltypes.NewInt(1)})
	big := WireSize([]sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewString("abcdefghij")})
	if small <= 0 || big <= small {
		t.Fatalf("WireSize: small=%d big=%d", small, big)
	}
}

func TestStatsSnapshotSub(t *testing.T) {
	var s Stats
	s.LogicalReads.Add(10)
	before := s.Snapshot()
	s.LogicalReads.Add(5)
	s.WorktableReads.Add(2)
	d := s.Snapshot().Sub(before)
	if d.LogicalReads != 5 || d.WorktableReads != 2 {
		t.Fatalf("delta = %+v", d)
	}
	if d.TotalReads() != 7 {
		t.Fatalf("TotalReads = %d", d.TotalReads())
	}
	s.Reset()
	if s.Snapshot() != (Snapshot{}) {
		t.Fatal("reset broken")
	}
}
