// Package storage provides the physical layer of the engine: heap tables,
// hash indexes, encoded worktables (the materialization target of cursors),
// and logical I/O accounting matching what the paper's Table 2 measures.
package storage

import (
	"fmt"
	"strings"

	"aggify/internal/sqltypes"
)

// Column describes one column of a table schema.
type Column struct {
	Name string
	Type sqltypes.Type
}

// Schema is an ordered list of named, typed columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from (name, type) pairs.
func NewSchema(cols ...Column) *Schema { return &Schema{Columns: cols} }

// Col is a convenience constructor for a Column.
func Col(name string, t sqltypes.Type) Column { return Column{Name: strings.ToLower(name), Type: t} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Ordinal returns the index of the named column (case-insensitive), or -1.
func (s *Schema) Ordinal(name string) int {
	name = strings.ToLower(name)
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustOrdinal is Ordinal but panics when the column is missing; used by
// generators and tests where the schema is statically known.
func (s *Schema) MustOrdinal(name string) int {
	i := s.Ordinal(name)
	if i < 0 {
		panic(fmt.Sprintf("storage: no column %q in schema %v", name, s.Names()))
	}
	return i
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(a INT, b CHAR(5))".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}
