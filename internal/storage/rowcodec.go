package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"aggify/internal/sqltypes"
)

// The row codec serializes rows into the compact binary format used by
// worktables (cursor materialization) and by the client/server wire
// protocol. Cursors in the engine pay this encode/decode cost for every
// row, which is the mechanical analogue of SQL Server spooling cursor
// results into a tempdb worktable.
//
// Format, per value:
//
//	tag byte (Kind)
//	KindNull   — nothing
//	KindBool   — 1 byte
//	KindInt    — uvarint zig-zag
//	KindFloat  — 8 bytes little-endian IEEE-754
//	KindString — uvarint length + bytes
//	KindDate   — uvarint zig-zag day number
//	KindTuple  — uvarint arity + encoded elements

// AppendValue encodes v onto buf and returns the extended slice.
func AppendValue(buf []byte, v sqltypes.Value) []byte {
	buf = append(buf, byte(v.Kind()))
	switch v.Kind() {
	case sqltypes.KindNull:
	case sqltypes.KindBool:
		if v.Bool() {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case sqltypes.KindInt, sqltypes.KindDate:
		buf = binary.AppendVarint(buf, v.Int())
	case sqltypes.KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
	case sqltypes.KindString:
		s := v.Str()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	case sqltypes.KindTuple:
		t := v.Tuple()
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		for _, e := range t {
			buf = AppendValue(buf, e)
		}
	}
	return buf
}

// DecodeValue decodes one value from buf, returning it and the remaining
// bytes.
func DecodeValue(buf []byte) (sqltypes.Value, []byte, error) {
	if len(buf) == 0 {
		return sqltypes.Null, nil, fmt.Errorf("storage: truncated value")
	}
	kind := sqltypes.Kind(buf[0])
	buf = buf[1:]
	switch kind {
	case sqltypes.KindNull:
		return sqltypes.Null, buf, nil
	case sqltypes.KindBool:
		if len(buf) < 1 {
			return sqltypes.Null, nil, fmt.Errorf("storage: truncated bool")
		}
		return sqltypes.NewBool(buf[0] != 0), buf[1:], nil
	case sqltypes.KindInt, sqltypes.KindDate:
		i, n := binary.Varint(buf)
		if n <= 0 {
			return sqltypes.Null, nil, fmt.Errorf("storage: bad varint")
		}
		if kind == sqltypes.KindDate {
			return sqltypes.NewDate(i), buf[n:], nil
		}
		return sqltypes.NewInt(i), buf[n:], nil
	case sqltypes.KindFloat:
		if len(buf) < 8 {
			return sqltypes.Null, nil, fmt.Errorf("storage: truncated float")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(buf))
		return sqltypes.NewFloat(f), buf[8:], nil
	case sqltypes.KindString:
		n, w := binary.Uvarint(buf)
		if w <= 0 || uint64(len(buf)-w) < n {
			return sqltypes.Null, nil, fmt.Errorf("storage: truncated string")
		}
		s := string(buf[w : w+int(n)])
		return sqltypes.NewString(s), buf[w+int(n):], nil
	case sqltypes.KindTuple:
		n, w := binary.Uvarint(buf)
		if w <= 0 {
			return sqltypes.Null, nil, fmt.Errorf("storage: bad tuple arity")
		}
		buf = buf[w:]
		elems := make([]sqltypes.Value, n)
		var err error
		for i := range elems {
			elems[i], buf, err = DecodeValue(buf)
			if err != nil {
				return sqltypes.Null, nil, err
			}
		}
		return sqltypes.NewTuple(elems), buf, nil
	default:
		return sqltypes.Null, nil, fmt.Errorf("storage: unknown value tag %d", kind)
	}
}

// AppendRow encodes a row (arity prefix + values).
func AppendRow(buf []byte, row []sqltypes.Value) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, v := range row {
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeRow decodes one row from buf, returning it and the remaining bytes.
func DecodeRow(buf []byte) ([]sqltypes.Value, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, nil, fmt.Errorf("storage: bad row arity")
	}
	buf = buf[w:]
	row := make([]sqltypes.Value, n)
	var err error
	for i := range row {
		row[i], buf, err = DecodeValue(buf)
		if err != nil {
			return nil, nil, err
		}
	}
	return row, buf, nil
}

// WireSize returns the encoded size of a row in bytes — the unit used for
// the paper's data-movement measurements (§10.6).
func WireSize(row []sqltypes.Value) int {
	return len(AppendRow(nil, row))
}
