package storage

import (
	"testing"

	"aggify/internal/sqltypes"
)

func intv(i int64) sqltypes.Value { return sqltypes.NewInt(i) }

// drainRange drains a RangeCursor fully, returning the id column values in
// emission order.
func drainRange(c *RangeCursor, stats *Stats) []int64 {
	var out []int64
	for {
		if c.Next(stats, 4, func(row []sqltypes.Value) { out = append(out, row[0].Int()) }) == 0 {
			return out
		}
	}
}

func TestOrderedIndexRangeSeek(t *testing.T) {
	tab := NewTable("t", testSchema())
	// Interleaved keys so key order differs from insertion order.
	for i := int64(0); i < 100; i++ {
		if err := tab.Insert(nil, row(i%10, "n", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.CreateOrderedIndex("id"); err != nil {
		t.Fatal(err)
	}
	var stats Stats
	cur, ok := tab.SeekRange(nil, &stats, "id", intv(3), intv(5), false, true)
	if !ok {
		t.Fatal("SeekRange found no ordered index")
	}
	got := drainRange(cur, &stats)
	// Expect ids in {3, 4}, and in insertion (rid) order — identical to a
	// filtered scan.
	var want []int64
	tab.Scan(nil, nil, func(_ int, r []sqltypes.Value) bool {
		if id := r[0].Int(); id >= 3 && id < 5 {
			want = append(want, id)
		}
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("range seek returned %d rows, filtered scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: range seek id=%d, scan id=%d (order must match)", i, got[i], want[i])
		}
	}
	if stats.IndexSeeks.Load() != 1 {
		t.Fatalf("IndexSeeks = %d, want 1", stats.IndexSeeks.Load())
	}
	// Reset re-reads the same rows.
	cur.Reset()
	if again := drainRange(cur, nil); len(again) != len(got) {
		t.Fatalf("after Reset: %d rows, want %d", len(again), len(got))
	}
	// Unbounded-low and unbounded-high seeks.
	cur, _ = tab.SeekRange(nil, nil, "id", sqltypes.Null, intv(1), false, false)
	if n := len(drainRange(cur, nil)); n != 20 {
		t.Fatalf("id <= 1: %d rows, want 20", n)
	}
	cur, _ = tab.SeekRange(nil, nil, "id", intv(8), sqltypes.Null, true, false)
	if n := len(drainRange(cur, nil)); n != 10 {
		t.Fatalf("id > 8: %d rows, want 10", n)
	}
}

func TestOrderedIndexEqualityLookup(t *testing.T) {
	tab := NewTable("t", testSchema())
	for i := int64(0); i < 50; i++ {
		_ = tab.Insert(nil, row(i%7, "n", 0))
	}
	if err := tab.CreateOrderedIndex("id"); err != nil {
		t.Fatal(err)
	}
	// Table.Seek must work through an ordered index exactly as through a
	// hash index.
	n := 0
	if !tab.Seek(nil, nil, "id", intv(3), func(_ int, r []sqltypes.Value) bool {
		if r[0].Int() != 3 {
			t.Fatalf("seek(3) returned id=%d", r[0].Int())
		}
		n++
		return true
	}) {
		t.Fatal("Seek found no index")
	}
	if n != 7 {
		t.Fatalf("seek(3) matched %d rows, want 7", n)
	}
}

func TestOrderedIndexPageSplitAndRemove(t *testing.T) {
	tab := NewTable("t", testSchema())
	const n = 3000 // forces several page splits
	for i := int64(0); i < n; i++ {
		_ = tab.Insert(nil, row((i*7919)%n, "n", 0))
	}
	if err := tab.CreateOrderedIndex("id"); err != nil {
		t.Fatal(err)
	}
	ix := tab.Index("id").(*OrderedIndex)
	if ix.Len() != n {
		t.Fatalf("index len = %d, want %d", ix.Len(), n)
	}
	cur, _ := tab.SeekRange(nil, nil, "id", intv(100), intv(199), false, false)
	if got := len(drainRange(cur, nil)); got != 100 {
		t.Fatalf("range [100,199]: %d rows, want 100", got)
	}
	// Delete a swath and verify both the entries and the seek shrink.
	deleted := 0
	var rids []int
	tab.Scan(nil, nil, func(rid int, r []sqltypes.Value) bool {
		if id := r[0].Int(); id >= 100 && id < 150 {
			rids = append(rids, rid)
		}
		return true
	})
	for _, rid := range rids {
		if err := tab.Delete(nil, rid); err != nil {
			t.Fatal(err)
		}
		deleted++
	}
	if ix.Len() != n-deleted {
		t.Fatalf("after delete: index len = %d, want %d", ix.Len(), n-deleted)
	}
	cur, _ = tab.SeekRange(nil, nil, "id", intv(100), intv(199), false, false)
	if got := len(drainRange(cur, nil)); got != 50 {
		t.Fatalf("range [100,199] after delete: %d rows, want 50", got)
	}
}

// Regression: a range seek under a pinned cursor snapshot must not see
// rows committed after the snapshot was taken — the index holds their
// entries, but visibility filtering at the pinned epoch must drop them.
func TestOrderedRangeSeekPinnedSnapshot(t *testing.T) {
	tab, mgr := managedTable(t)
	for i := int64(0); i < 10; i++ {
		if err := tab.Insert(nil, row(i, "old", 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.CreateOrderedIndex("id"); err != nil {
		t.Fatal(err)
	}
	snap := mgr.Acquire()
	defer snap.Release()

	// Commit in-range inserts, an in-range update, and a delete after the
	// snapshot pinned its epoch.
	if err := tab.Insert(nil, row(5, "new", 0)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Update(nil, 0, row(5, "moved", 0)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Delete(nil, 7); err != nil {
		t.Fatal(err)
	}

	cur, ok := tab.SeekRange(snap, nil, "id", intv(3), intv(9), false, false)
	if !ok {
		t.Fatal("SeekRange found no ordered index")
	}
	var got []int64
	for cur.Next(nil, 100, func(r []sqltypes.Value) {
		if r[1].Str() != "old" {
			t.Errorf("pinned snapshot saw post-snapshot row %v", r)
		}
		got = append(got, r[0].Int())
	}) != 0 {
	}
	// Rows 3..9 as of the snapshot: ids 3,4,5,6,7,8,9 — including the
	// since-deleted 7 and the since-moved 0's old id is 0 (out of range).
	want := []int64{3, 4, 5, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("pinned range seek saw ids %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pinned range seek saw ids %v, want %v", got, want)
		}
	}
	// A latest-state seek sees the new world: 3,4,5,5(new),5(moved),6,8,9.
	cur, _ = tab.SeekRange(nil, nil, "id", intv(3), intv(9), false, false)
	if n := len(drainRange(cur, nil)); n != 8 {
		t.Fatalf("latest range seek saw %d rows, want 8", n)
	}
}

// Regression: rollback must undo ordered-index entries exactly as it does
// hash-index entries — an aborted insert/update/delete leaves no trace in
// the ordered index or its range seeks.
func TestOrderedIndexRollback(t *testing.T) {
	tab, mgr := managedTable(t)
	for i := int64(0); i < 10; i++ {
		_ = tab.Insert(nil, row(i, "base", 0))
	}
	if err := tab.CreateOrderedIndex("id"); err != nil {
		t.Fatal(err)
	}
	ix := tab.Index("id").(*OrderedIndex)
	before := ix.Len()

	tx := mgr.Begin()
	if err := tab.Insert(tx, row(100, "mine", 0)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Update(tx, 2, row(200, "mine", 0)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Delete(tx, 3); err != nil {
		t.Fatal(err)
	}
	// Uncommitted entries are visible to the writer itself...
	cur, _ := tab.SeekRange(tx.Snapshot(), nil, "id", intv(100), intv(200), false, false)
	if n := len(drainRange(cur, nil)); n != 2 {
		t.Fatalf("own-writes range seek saw %d rows, want 2", n)
	}
	tx.Rollback()

	if after := ix.Len(); after != before {
		t.Fatalf("rollback left ordered index at %d entries, want %d", after, before)
	}
	cur, _ = tab.SeekRange(nil, nil, "id", intv(100), intv(200), false, false)
	if n := len(drainRange(cur, nil)); n != 0 {
		t.Fatalf("rollback left %d rows visible in [100,200]", n)
	}
	cur, _ = tab.SeekRange(nil, nil, "id", intv(0), intv(9), false, false)
	if n := len(drainRange(cur, nil)); n != 10 {
		t.Fatalf("after rollback: %d base rows, want 10", n)
	}
}

func TestCreateIndexKindReplace(t *testing.T) {
	tab := NewTable("t", testSchema())
	for i := int64(0); i < 5; i++ {
		_ = tab.Insert(nil, row(i, "n", 0))
	}
	if err := tab.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	if tab.Index("id").Ordered() {
		t.Fatal("CreateIndex built an ordered index")
	}
	if _, ok := tab.SeekRange(nil, nil, "id", intv(0), intv(9), false, false); ok {
		t.Fatal("hash index must not serve range seeks")
	}
	// Re-creating with the ordered kind rebuilds in place.
	if err := tab.CreateOrderedIndex("id"); err != nil {
		t.Fatal(err)
	}
	if !tab.Index("id").Ordered() {
		t.Fatal("CreateOrderedIndex left a hash index")
	}
	cur, ok := tab.SeekRange(nil, nil, "id", intv(0), intv(9), false, false)
	if !ok {
		t.Fatal("ordered index must serve range seeks")
	}
	if n := len(drainRange(cur, nil)); n != 5 {
		t.Fatalf("rebuilt index range seek saw %d rows, want 5", n)
	}
	defs := tab.IndexDefs()
	if len(defs) != 1 || defs[0].Column != "id" || !defs[0].Ordered {
		t.Fatalf("IndexDefs = %+v", defs)
	}
}

func TestHistogramEquiDepth(t *testing.T) {
	tab := NewTable("t", testSchema())
	for i := int64(0); i < 970; i++ {
		_ = tab.Insert(nil, row(i%97, "n", 0))
	}
	if err := tab.CreateOrderedIndex("id"); err != nil {
		t.Fatal(err)
	}
	st := tab.Statistics()
	h, ok := st.Histograms["id"]
	if !ok {
		t.Fatal("no histogram for indexed column id")
	}
	if h.Sampled != 970 || h.Rows != 970 {
		t.Fatalf("histogram sampled=%d rows=%d, want 970/970", h.Sampled, h.Rows)
	}
	if len(h.Buckets) == 0 || len(h.Buckets) > HistogramBuckets {
		t.Fatalf("bucket count = %d", len(h.Buckets))
	}
	total, ndv := 0, 0
	for _, b := range h.Buckets {
		total += b.Rows
		ndv += b.NDV
	}
	if total != 970 {
		t.Fatalf("bucket rows sum to %d, want 970", total)
	}
	if ndv != 97 {
		t.Fatalf("bucket NDVs sum to %d, want 97", ndv)
	}
	// Selectivity of [10, 15) should be near 5/97.
	sel := h.SelectivityRange(intv(10), intv(15), false, true)
	if sel <= 0 || sel > 0.2 {
		t.Fatalf("selectivity [10,15) = %f, want ~0.05", sel)
	}
	// Full range ~ 1.
	if sel := h.SelectivityRange(sqltypes.Null, sqltypes.Null, false, false); sel < 0.99 {
		t.Fatalf("unbounded selectivity = %f, want 1", sel)
	}
	// Mutations invalidate via statsVersion.
	_ = tab.Insert(nil, row(1000, "n", 0))
	st2 := tab.Statistics()
	if st2.Histograms["id"].Sampled != 971 {
		t.Fatalf("post-insert histogram sampled = %d, want 971", st2.Histograms["id"].Sampled)
	}
}
