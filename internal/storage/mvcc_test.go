package storage

import (
	"errors"
	"sync"
	"testing"

	"aggify/internal/sqltypes"
	"aggify/internal/txn"
)

// managedTable returns a table bound to a fresh transaction manager.
func managedTable(t *testing.T) (*Table, *txn.Manager) {
	t.Helper()
	mgr := txn.NewManager()
	tab := NewTable("t", testSchema())
	tab.Bind(mgr)
	return tab, mgr
}

// chainLen counts the versions in a slot's chain (0 for a dead slot).
func (t *Table) chainLen(rid int) int {
	t.mu.RLock()
	s := t.slots[rid]
	t.mu.RUnlock()
	n := 0
	for v := s.head.Load(); v != nil; v = v.Prev() {
		n++
	}
	return n
}

func TestSnapshotIsolationReadersSeeFrozenEpoch(t *testing.T) {
	tab, mgr := managedTable(t)
	if err := tab.Insert(nil, row(1, "old", 10)); err != nil {
		t.Fatal(err)
	}

	snap := mgr.Acquire()
	defer snap.Release()

	if err := tab.Update(nil, 0, row(1, "new", 20)); err != nil {
		t.Fatal(err)
	}

	// The pinned snapshot still sees the old version.
	r := tab.Row(snap, 0)
	if r == nil || r[1].Str() != "old" {
		t.Fatalf("snapshot read = %v, want old", r)
	}
	// A latest-committed read sees the new one.
	r = tab.Row(nil, 0)
	if r == nil || r[1].Str() != "new" {
		t.Fatalf("latest read = %v, want new", r)
	}
	// Rows inserted after the snapshot are invisible to it.
	if err := tab.Insert(nil, row(2, "later", 0)); err != nil {
		t.Fatal(err)
	}
	n := 0
	tab.Scan(snap, nil, func(int, []sqltypes.Value) bool { n++; return true })
	if n != 1 {
		t.Fatalf("snapshot scan saw %d rows, want 1", n)
	}
}

func TestSnapshotSeesDeletedRow(t *testing.T) {
	tab, mgr := managedTable(t)
	_ = tab.Insert(nil, row(1, "a", 0))
	snap := mgr.Acquire()
	defer snap.Release()
	if err := tab.Delete(nil, 0); err != nil {
		t.Fatal(err)
	}
	if r := tab.Row(snap, 0); r == nil {
		t.Fatal("snapshot should still see the deleted row")
	}
	if r := tab.Row(nil, 0); r != nil {
		t.Fatalf("latest read should miss the deleted row, got %v", r)
	}
}

func TestTxnReadsOwnUncommittedWrites(t *testing.T) {
	tab, mgr := managedTable(t)
	_ = tab.Insert(nil, row(1, "base", 0))

	tx := mgr.Begin()
	if err := tab.Update(tx, 0, row(1, "mine", 1)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(tx, row(2, "alsomine", 2)); err != nil {
		t.Fatal(err)
	}
	// The transaction's snapshot sees both uncommitted writes.
	n := 0
	tab.Scan(tx.Snapshot(), nil, func(_ int, r []sqltypes.Value) bool { n++; return true })
	if n != 2 {
		t.Fatalf("own-writes scan saw %d rows, want 2", n)
	}
	// Other readers see neither.
	other := mgr.Acquire()
	defer other.Release()
	n = 0
	tab.Scan(other, nil, func(_ int, r []sqltypes.Value) bool {
		if r[1].Str() != "base" {
			t.Errorf("foreign reader saw uncommitted row %v", r)
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("foreign scan saw %d rows, want 1", n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tab.RowCount() != 2 {
		t.Fatalf("RowCount after commit = %d", tab.RowCount())
	}
}

func TestWriteConflictFirstCommitterWins(t *testing.T) {
	tab, mgr := managedTable(t)
	_ = tab.Insert(nil, row(1, "base", 0))

	t1 := mgr.Begin()
	t2 := mgr.Begin()
	if err := tab.Update(t1, 0, row(1, "t1", 1)); err != nil {
		t.Fatal(err)
	}
	// t2 hits t1's uncommitted version: immediate conflict.
	if err := tab.Update(t2, 0, row(1, "t2", 2)); !errors.Is(err, txn.ErrWriteConflict) {
		t.Fatalf("want ErrWriteConflict, got %v", err)
	}
	t2.Rollback()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}

	// A transaction whose snapshot predates a committed update conflicts too.
	t3 := mgr.Begin()
	if err := tab.Update(nil, 0, row(1, "autoc", 3)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Update(t3, 0, row(1, "t3", 4)); !errors.Is(err, txn.ErrWriteConflict) {
		t.Fatalf("stale-snapshot update: want ErrWriteConflict, got %v", err)
	}
	t3.Rollback()
}

func TestRollbackUndoesWritesAndIndexes(t *testing.T) {
	tab, mgr := managedTable(t)
	_ = tab.CreateIndex("id")
	_ = tab.Insert(nil, row(1, "keep", 0))

	tx := mgr.Begin()
	if err := tab.Insert(tx, row(7, "gone", 0)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Update(tx, 0, row(9, "changed", 0)); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()

	if tab.RowCount() != 1 {
		t.Fatalf("RowCount after rollback = %d", tab.RowCount())
	}
	count := func(key int64) int {
		n := 0
		tab.Seek(nil, nil, "id", sqltypes.NewInt(key), func(int, []sqltypes.Value) bool { n++; return true })
		return n
	}
	if count(7) != 0 || count(9) != 0 || count(1) != 1 {
		t.Fatalf("index after rollback: k7=%d k9=%d k1=%d", count(7), count(9), count(1))
	}
	if r := tab.Row(nil, 0); r == nil || r[1].Str() != "keep" {
		t.Fatalf("row after rollback = %v", r)
	}
}

func TestIndexSeekIsSnapshotRelative(t *testing.T) {
	tab, mgr := managedTable(t)
	_ = tab.CreateIndex("id")
	_ = tab.Insert(nil, row(1, "v1", 0))

	snap := mgr.Acquire()
	defer snap.Release()
	if err := tab.Update(nil, 0, row(2, "v2", 0)); err != nil {
		t.Fatal(err)
	}

	// At the old snapshot, key 1 matches and key 2 does not.
	var got []string
	tab.Seek(snap, nil, "id", sqltypes.NewInt(1), func(_ int, r []sqltypes.Value) bool {
		got = append(got, r[1].Str())
		return true
	})
	if len(got) != 1 || got[0] != "v1" {
		t.Fatalf("old-snapshot seek(1) = %v", got)
	}
	n := 0
	tab.Seek(snap, nil, "id", sqltypes.NewInt(2), func(int, []sqltypes.Value) bool { n++; return true })
	if n != 0 {
		t.Fatalf("old-snapshot seek(2) hit %d rows, want 0", n)
	}
	// At latest, the reverse.
	n = 0
	tab.Seek(nil, nil, "id", sqltypes.NewInt(1), func(int, []sqltypes.Value) bool { n++; return true })
	if n != 0 {
		t.Fatalf("latest seek(1) hit %d rows, want 0", n)
	}
	n = 0
	tab.Seek(nil, nil, "id", sqltypes.NewInt(2), func(int, []sqltypes.Value) bool { n++; return true })
	if n != 1 {
		t.Fatalf("latest seek(2) hit %d rows, want 1", n)
	}
}

func TestVacuumReclaimsOldVersions(t *testing.T) {
	tab, mgr := managedTable(t)
	_ = tab.CreateIndex("id")
	_ = tab.Insert(nil, row(1, "a", 0))
	for i := int64(2); i <= 10; i++ {
		if err := tab.Update(nil, 0, row(i, "a", 0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := tab.chainLen(0); got != 10 {
		t.Fatalf("chain length before vacuum = %d, want 10", got)
	}
	tab.Vacuum(mgr.OldestVisible())
	if got := tab.chainLen(0); got != 1 {
		t.Fatalf("chain length after vacuum = %d, want 1", got)
	}
	// Stale index entries for superseded keys are gone.
	for k := int64(1); k < 10; k++ {
		n := 0
		tab.Seek(nil, nil, "id", sqltypes.NewInt(k), func(int, []sqltypes.Value) bool { n++; return true })
		if n != 0 {
			t.Fatalf("stale index entry for key %d survived vacuum", k)
		}
	}
	// A live snapshot holds the horizon back.
	snap := mgr.Acquire()
	for i := int64(11); i <= 13; i++ {
		_ = tab.Update(nil, 0, row(i, "a", 0))
	}
	tab.Vacuum(mgr.OldestVisible())
	if got := tab.chainLen(0); got < 2 {
		t.Fatalf("vacuum cut versions a live snapshot needs: chain=%d", got)
	}
	if r := tab.Row(snap, 0); r == nil || r[0].Int() != 10 {
		t.Fatalf("snapshot read after vacuum = %v, want id 10", r)
	}
	snap.Release()
	tab.Vacuum(mgr.OldestVisible())
	if got := tab.chainLen(0); got != 1 {
		t.Fatalf("chain after release+vacuum = %d, want 1", got)
	}
}

func TestVacuumReclaimsDeletedSlots(t *testing.T) {
	tab, mgr := managedTable(t)
	_ = tab.Insert(nil, row(1, "a", 0))
	_ = tab.Insert(nil, row(2, "b", 0))
	if err := tab.Delete(nil, 0); err != nil {
		t.Fatal(err)
	}
	tab.Vacuum(mgr.OldestVisible())
	if got := tab.chainLen(0); got != 0 {
		t.Fatalf("deleted slot chain = %d, want 0 (tombstone reclaimed)", got)
	}
	// Rid stability: slot 1 still holds row b.
	if r := tab.Row(nil, 1); r == nil || r[1].Str() != "b" {
		t.Fatalf("slot 1 after vacuum = %v", r)
	}
	if tab.SlotCount() != 2 {
		t.Fatalf("SlotCount = %d, want 2 (slots are never compacted)", tab.SlotCount())
	}
}

func TestConcurrentReadersNeverBlockWriters(t *testing.T) {
	tab, mgr := managedTable(t)
	for i := int64(0); i < 64; i++ {
		_ = tab.Insert(nil, row(i, "x", 0))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := mgr.Acquire()
				n := 0
				tab.Scan(snap, nil, func(int, []sqltypes.Value) bool { n++; return true })
				if n != 64 {
					t.Errorf("reader saw %d rows, want 64 (update is not an insert+delete)", n)
				}
				snap.Release()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		rid := i % 64
		if err := tab.Update(nil, rid, row(int64(rid), "y", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	mgr.Vacuum(func(oldest uint64) { tab.Vacuum(oldest) })
}

func TestTruncateMVCC(t *testing.T) {
	tab, mgr := managedTable(t)
	_ = tab.Insert(nil, row(1, "a", 0))
	_ = tab.Insert(nil, row(2, "b", 0))

	snap := mgr.Acquire()
	defer snap.Release()
	if err := tab.Truncate(nil); err != nil {
		t.Fatal(err)
	}
	if tab.RowCount() != 0 {
		t.Fatalf("RowCount after truncate = %d", tab.RowCount())
	}
	// The pre-truncate snapshot still sees both rows.
	n := 0
	tab.Scan(snap, nil, func(int, []sqltypes.Value) bool { n++; return true })
	if n != 2 {
		t.Fatalf("snapshot scan after truncate saw %d rows, want 2", n)
	}

	// Rollback restores.
	_ = tab.Insert(nil, row(3, "c", 0))
	tx := mgr.Begin()
	if err := tab.Truncate(tx); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if tab.RowCount() != 1 {
		t.Fatalf("RowCount after rolled-back truncate = %d, want 1", tab.RowCount())
	}
}

// Satellite regression: table statistics (row count, per-column distinct
// estimates) must be refreshed by every mutation path rather than serving
// stale cached values.
func TestTableStatisticsRefreshOnMutation(t *testing.T) {
	tab, _ := managedTable(t)
	idOrd := tab.Schema.MustOrdinal("id")

	for i := int64(0); i < 8; i++ {
		_ = tab.Insert(nil, row(i%4, "n", 0))
	}
	st := tab.Statistics()
	if st.Rows != 8 || st.Distinct[idOrd] != 4 {
		t.Fatalf("after inserts: rows=%d distinct(id)=%d, want 8/4", st.Rows, st.Distinct[idOrd])
	}

	// Update collapses ids to a single value.
	for rid := 0; rid < 8; rid++ {
		if err := tab.Update(nil, rid, row(42, "n", 0)); err != nil {
			t.Fatal(err)
		}
	}
	st = tab.Statistics()
	if st.Rows != 8 || st.Distinct[idOrd] != 1 {
		t.Fatalf("after updates: rows=%d distinct(id)=%d, want 8/1", st.Rows, st.Distinct[idOrd])
	}

	if err := tab.Delete(nil, 0); err != nil {
		t.Fatal(err)
	}
	if st = tab.Statistics(); st.Rows != 7 {
		t.Fatalf("after delete: rows=%d, want 7", st.Rows)
	}

	if err := tab.Truncate(nil); err != nil {
		t.Fatal(err)
	}
	if st = tab.Statistics(); st.Rows != 0 || st.Distinct[idOrd] != 0 {
		t.Fatalf("after truncate: rows=%d distinct=%d, want 0/0", st.Rows, st.Distinct[idOrd])
	}

	// Rolled-back writes must not leak into the statistics.
	tx := tab.mgr.Begin()
	_ = tab.Insert(tx, row(1, "x", 0))
	tx.Rollback()
	if st = tab.Statistics(); st.Rows != 0 {
		t.Fatalf("after rollback: rows=%d, want 0", st.Rows)
	}
}

func TestStatisticsCachedUntilInvalidated(t *testing.T) {
	tab, _ := managedTable(t)
	_ = tab.Insert(nil, row(1, "a", 0))
	s1 := tab.Statistics()
	s2 := tab.Statistics()
	// The cached snapshot is returned by value but shares its Distinct
	// slice; a recompute allocates a fresh one.
	if &s1.Distinct[0] != &s2.Distinct[0] {
		t.Fatal("statistics should be cached between mutations")
	}
	_ = tab.Insert(nil, row(2, "b", 0))
	s3 := tab.Statistics()
	if &s3.Distinct[0] == &s1.Distinct[0] || s3.Rows != 2 {
		t.Fatalf("statistics not refreshed after mutation: %+v", s3)
	}
}
