package storage

import (
	"sort"

	"aggify/internal/sqltypes"
	"aggify/internal/txn"
)

// OrderedIndex is a B-tree-style ordered index: entries are kept sorted by
// (key, rid) across a two-level page structure, so equality lookups and
// range seeks are both binary searches, and inserts never memmove more
// than one page. It implements the same TableIndex maintenance contract as
// HashIndex — every MVCC mutation, rollback, vacuum, and replay path
// maintains both kinds through the shared interface — plus rangeRids for
// Table.SeekRange.
type OrderedIndex struct {
	ordinal int
	pages   [][]entry // each page non-empty, globally sorted by (key, rid)
}

// orderedPageCap is the split threshold: a page that grows past twice this
// splits in half, keeping per-insert memmove cost bounded regardless of
// table size.
const orderedPageCap = 256

func newOrderedIndex(ordinal int) *OrderedIndex {
	return &OrderedIndex{ordinal: ordinal}
}

func (ix *OrderedIndex) ord() int { return ix.ordinal }

// Ordered implements TableIndex: this index supports range seeks.
func (ix *OrderedIndex) Ordered() bool { return true }

// entryLess orders entries by key, then rid. Incomparable keys cannot
// occur within one column (every value is coerced to the column type
// before indexing), so a failed comparison falls back to rid order.
func entryLess(aKey sqltypes.Value, aRid int, bKey sqltypes.Value, bRid int) bool {
	if c, ok := sqltypes.Compare(aKey, bKey); ok && c != 0 {
		return c < 0
	}
	return aRid < bRid
}

// pageFor returns the index of the first page whose last entry is >=
// (key, rid) — the page the entry lives in or belongs in. Returns
// len(pages) when every page sorts entirely before the entry.
func (ix *OrderedIndex) pageFor(key sqltypes.Value, rid int) int {
	return sort.Search(len(ix.pages), func(p int) bool {
		pg := ix.pages[p]
		last := pg[len(pg)-1]
		return !entryLess(last.key, last.rid, key, rid)
	})
}

func (ix *OrderedIndex) add(key sqltypes.Value, rid int) {
	if key.IsNull() {
		return
	}
	if len(ix.pages) == 0 {
		ix.pages = append(ix.pages, []entry{{key, rid}})
		return
	}
	p := ix.pageFor(key, rid)
	if p == len(ix.pages) {
		p-- // past every page: append to the last one
	}
	pg := ix.pages[p]
	i := sort.Search(len(pg), func(i int) bool {
		return !entryLess(pg[i].key, pg[i].rid, key, rid)
	})
	if i < len(pg) && pg[i].rid == rid && sqltypes.Equal(pg[i].key, key) {
		return // deduplicate per (key, rid)
	}
	pg = append(pg, entry{})
	copy(pg[i+1:], pg[i:])
	pg[i] = entry{key, rid}
	ix.pages[p] = pg
	if len(pg) > 2*orderedPageCap {
		ix.split(p)
	}
}

// split halves page p in place.
func (ix *OrderedIndex) split(p int) {
	pg := ix.pages[p]
	mid := len(pg) / 2
	left := append([]entry(nil), pg[:mid]...)
	right := append([]entry(nil), pg[mid:]...)
	ix.pages = append(ix.pages, nil)
	copy(ix.pages[p+2:], ix.pages[p+1:])
	ix.pages[p] = left
	ix.pages[p+1] = right
}

func (ix *OrderedIndex) remove(key sqltypes.Value, rid int) {
	if key.IsNull() {
		return
	}
	p := ix.pageFor(key, rid)
	if p >= len(ix.pages) {
		return
	}
	pg := ix.pages[p]
	i := sort.Search(len(pg), func(i int) bool {
		return !entryLess(pg[i].key, pg[i].rid, key, rid)
	})
	if i >= len(pg) || pg[i].rid != rid || !sqltypes.Equal(pg[i].key, key) {
		return
	}
	copy(pg[i:], pg[i+1:])
	pg = pg[:len(pg)-1]
	if len(pg) == 0 {
		ix.pages = append(ix.pages[:p], ix.pages[p+1:]...)
		return
	}
	ix.pages[p] = pg
}

func (ix *OrderedIndex) clear() { ix.pages = nil }

// lookup implements equality via a degenerate range, so ordered indexes
// serve Table.Seek (and hence IndexSeek plans) exactly like hash indexes.
func (ix *OrderedIndex) lookup(key sqltypes.Value) []int {
	if key.IsNull() {
		return nil
	}
	return ix.rangeRids(key, key, false, false)
}

// rangeRids returns the rids of every entry whose key falls in [lo, hi]
// (strict flags make a bound exclusive). A NULL bound means unbounded on
// that side. The result is freshly allocated, in (key, rid) order; callers
// may use it after releasing the table lock.
func (ix *OrderedIndex) rangeRids(lo, hi sqltypes.Value, loStrict, hiStrict bool) []int {
	aboveLo := func(k sqltypes.Value) bool {
		if lo.IsNull() {
			return true
		}
		c, ok := sqltypes.Compare(k, lo)
		if !ok {
			return false
		}
		if loStrict {
			return c > 0
		}
		return c >= 0
	}
	belowHi := func(k sqltypes.Value) bool {
		if hi.IsNull() {
			return true
		}
		c, ok := sqltypes.Compare(k, hi)
		if !ok {
			return false
		}
		if hiStrict {
			return c < 0
		}
		return c <= 0
	}
	// First page that can hold an in-range entry: its last key clears lo.
	p := sort.Search(len(ix.pages), func(p int) bool {
		pg := ix.pages[p]
		return aboveLo(pg[len(pg)-1].key)
	})
	var out []int
	for ; p < len(ix.pages); p++ {
		pg := ix.pages[p]
		i := 0
		if !lo.IsNull() {
			i = sort.Search(len(pg), func(i int) bool { return aboveLo(pg[i].key) })
		}
		for ; i < len(pg); i++ {
			if !belowHi(pg[i].key) {
				return out
			}
			out = append(out, pg[i].rid)
		}
	}
	return out
}

// Len returns the total entry count (tests).
func (ix *OrderedIndex) Len() int {
	n := 0
	for _, pg := range ix.pages {
		n += len(pg)
	}
	return n
}

// RangeCursor streams the snapshot-visible rows of one ordered-index range
// in ascending rid (insertion) order — the same emission order as a full
// Scan — so a range-seek plan produces byte-identical output to the
// filtered scan it replaces. The candidate rid set is frozen at SeekRange
// (like Cursor freezes the slot slice), and each candidate's visible
// version is re-verified against the bounds before it is emitted: index
// entries are written eagerly by uncommitted transactions and retained for
// old snapshots, so a pinned snapshot must never trust the entry alone.
type RangeCursor struct {
	slots    []*slot
	rids     []int
	snap     *txn.Snapshot
	pos      int
	ordinal  int
	lo, hi   sqltypes.Value
	loStrict bool
	hiStrict bool
}

// SeekRange opens a range cursor over the ordered index on the named
// column, charging one index seek. It returns ok=false when the column has
// no ordered index. NULL bounds are unbounded on their side (callers
// resolve SQL's NULL-comparison semantics before seeking).
func (t *Table) SeekRange(snap *txn.Snapshot, stats *Stats, column string, lo, hi sqltypes.Value, loStrict, hiStrict bool) (*RangeCursor, bool) {
	ord := t.Schema.Ordinal(column)
	if ord < 0 {
		return nil, false
	}
	t.mu.RLock()
	oix, ok := t.indexes[t.Schema.Columns[ord].Name].(*OrderedIndex)
	if !ok {
		t.mu.RUnlock()
		return nil, false
	}
	rids := oix.rangeRids(lo, hi, loStrict, hiStrict)
	slots := t.slots
	t.mu.RUnlock()
	if stats != nil {
		stats.IndexSeeks.Add(1)
	}
	// Entries arrive in (key, rid) order; re-sort by rid and deduplicate
	// (one rid can appear under several in-range keys via retained chain
	// versions) so emission order matches Scan exactly.
	sort.Ints(rids)
	w := 0
	for i, rid := range rids {
		if i > 0 && rid == rids[w-1] {
			continue
		}
		rids[w] = rid
		w++
	}
	return &RangeCursor{
		slots: slots, rids: rids[:w], snap: snap, ordinal: ord,
		lo: lo, hi: hi, loStrict: loStrict, hiStrict: hiStrict,
	}, true
}

// Reset rewinds the cursor to its first candidate row.
func (c *RangeCursor) Reset() { c.pos = 0 }

// inRange re-verifies a visible row's key against the seek bounds.
func (c *RangeCursor) inRange(k sqltypes.Value) bool {
	if k.IsNull() {
		return false
	}
	if !c.lo.IsNull() {
		cmp, ok := sqltypes.Compare(k, c.lo)
		if !ok || cmp < 0 || (c.loStrict && cmp == 0) {
			return false
		}
	}
	if !c.hi.IsNull() {
		cmp, ok := sqltypes.Compare(k, c.hi)
		if !ok || cmp > 0 || (c.hiStrict && cmp == 0) {
			return false
		}
	}
	return true
}

// Next delivers up to max visible in-range rows to fn, charging stats one
// logical read per row, and returns the number delivered. A return of 0
// (with max > 0) means the cursor is exhausted. Row slices are committed
// version payloads and must be treated as immutable.
func (c *RangeCursor) Next(stats *Stats, max int, fn func(row []sqltypes.Value)) int {
	n := 0
	for c.pos < len(c.rids) && n < max {
		rid := c.rids[c.pos]
		c.pos++
		if rid < 0 || rid >= len(c.slots) {
			continue
		}
		v := txn.Visible(c.slots[rid].head.Load(), c.snap)
		if v == nil || v.IsTombstone() || !c.inRange(v.Row[c.ordinal]) {
			continue
		}
		if stats != nil {
			stats.LogicalReads.Add(1)
		}
		fn(v.Row)
		n++
	}
	return n
}
