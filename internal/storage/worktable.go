package storage

import (
	"fmt"
	"os"
	"runtime"

	"aggify/internal/sqltypes"
)

// Worktable is the materialization target of a static cursor: when the
// engine opens a cursor it runs the cursor query to completion and encodes
// every result row into the worktable; FETCH then decodes rows back out one
// at a time.
//
// By default worktables are disk-backed, mirroring how SQL Server spools
// static-cursor results into a tempdb worktable — the behaviour the paper
// identifies as the root cost of cursor loops (§2.3 "materialize results on
// disk, introducing additional IO", §10.4 "cursors end up materializing
// query results to disk, and then reading from the disk during iteration",
// and "temp tables are created and dropped for every run!"). Every OPEN
// creates a real temporary file, pages are written and read back through
// real file I/O, and DEALLOCATE removes the file. An in-memory mode exists
// for the ablation benchmark that isolates this cost.
//
// Rows are stored back-to-back in page-sized buffers; the encode/decode
// work is real in both modes.
type Worktable struct {
	pageSize int
	stats    *Stats
	rows     int
	offsets  []pageOffset

	// In-memory mode.
	memPages [][]byte

	// Disk mode.
	file     *os.File
	unlinked bool   // temp file already removed (unlink-after-open)
	writeBuf []byte // current page being filled
	curPage  int
	readBuf  []byte // single-page read cache
	readPage int

	scratch []byte // reusable row-encode buffer
}

type pageOffset struct {
	page  int
	start int
	end   int
}

// DefaultPageSize is the worktable page capacity in bytes (8 KiB, the SQL
// Server page size).
const DefaultPageSize = 8192

// NewWorktable creates a disk-backed worktable charging I/O against stats
// (which may be nil). If the temporary file cannot be created (read-only
// environments), the worktable silently degrades to in-memory mode.
func NewWorktable(stats *Stats) *Worktable {
	w := &Worktable{pageSize: DefaultPageSize, stats: stats, readPage: -1}
	f, err := os.CreateTemp("", "aggify-worktable-*.tmp")
	if err == nil {
		w.file = f
		// Unlink immediately (Unix): the space is reclaimed when the file
		// descriptor closes, so crashed or leaked cursors never strand temp
		// files. Platforms that refuse to remove open files fall back to
		// removal at Close time.
		if os.Remove(f.Name()) != nil {
			w.unlinked = false
		} else {
			w.unlinked = true
		}
		// Backstop for leaked cursors; DEALLOCATE closes files eagerly.
		runtime.SetFinalizer(w, func(wt *Worktable) { wt.dropFile() })
	}
	return w
}

// NewMemoryWorktable creates an in-memory worktable (the ablation mode).
func NewMemoryWorktable(stats *Stats) *Worktable {
	return &Worktable{pageSize: DefaultPageSize, stats: stats, readPage: -1}
}

// InMemory reports whether the worktable holds its pages in memory.
func (w *Worktable) InMemory() bool { return w.file == nil }

// Append encodes a row into the worktable, charging one worktable write.
func (w *Worktable) Append(row []sqltypes.Value) {
	w.scratch = AppendRow(w.scratch[:0], row)
	enc := w.scratch
	if w.file == nil {
		if len(w.memPages) == 0 || len(w.memPages[len(w.memPages)-1])+len(enc) > w.pageSize {
			w.memPages = append(w.memPages, make([]byte, 0, w.pageSize))
		}
		p := len(w.memPages) - 1
		start := len(w.memPages[p])
		w.memPages[p] = append(w.memPages[p], enc...)
		w.offsets = append(w.offsets, pageOffset{page: p, start: start, end: start + len(enc)})
	} else {
		if w.writeBuf == nil {
			w.writeBuf = make([]byte, 0, w.pageSize)
		}
		if len(w.writeBuf)+len(enc) > w.pageSize && len(w.writeBuf) > 0 {
			w.flushPage()
		}
		start := len(w.writeBuf)
		w.writeBuf = append(w.writeBuf, enc...)
		w.offsets = append(w.offsets, pageOffset{page: w.curPage, start: start, end: start + len(enc)})
	}
	w.rows++
	if w.stats != nil {
		w.stats.WorktableWrites.Add(1)
		w.stats.WorktableBytes.Add(int64(len(enc)))
	}
}

// flushPage writes the current page to disk at its page-aligned offset.
func (w *Worktable) flushPage() {
	if w.file == nil || len(w.writeBuf) == 0 {
		return
	}
	if _, err := w.file.WriteAt(w.writeBuf[:cap(w.writeBuf)][:w.pageSize], int64(w.curPage)*int64(w.pageSize)); err != nil {
		// Degrade to memory on I/O failure: move everything written so far
		// is unrecoverable, so fail loudly — worktable I/O errors mean the
		// environment is out of disk.
		panic(fmt.Sprintf("storage: worktable write failed: %v", err))
	}
	w.curPage++
	w.writeBuf = w.writeBuf[:0]
}

// RowCount returns the number of rows materialized.
func (w *Worktable) RowCount() int { return w.rows }

// Get decodes the i-th row, charging one worktable read. Returns nil when
// out of range.
func (w *Worktable) Get(i int) []sqltypes.Value {
	if i < 0 || i >= w.rows {
		return nil
	}
	off := w.offsets[i]
	var page []byte
	switch {
	case w.file == nil:
		page = w.memPages[off.page]
	case off.page == w.curPage:
		// The in-progress page is still in the write buffer (a dirtied
		// buffer-pool page that was never spilled).
		page = w.writeBuf
	default:
		if w.readPage != off.page {
			if w.readBuf == nil {
				w.readBuf = make([]byte, w.pageSize)
			}
			n, err := w.file.ReadAt(w.readBuf, int64(off.page)*int64(w.pageSize))
			if err != nil && n < off.end {
				panic(fmt.Sprintf("storage: worktable read failed: %v", err))
			}
			w.readPage = off.page
		}
		page = w.readBuf
	}
	row, _, err := DecodeRow(page[off.start:off.end])
	if err != nil {
		panic("storage: worktable row corrupted: " + err.Error())
	}
	if w.stats != nil {
		w.stats.WorktableReads.Add(1)
	}
	return row
}

// PageCount returns the number of pages used.
func (w *Worktable) PageCount() int {
	if w.file == nil {
		return len(w.memPages)
	}
	n := w.curPage
	if len(w.writeBuf) > 0 {
		n++
	}
	return n
}

// Reset drops all rows, keeping the backing file for reuse.
func (w *Worktable) Reset() {
	w.memPages = w.memPages[:0]
	w.offsets = w.offsets[:0]
	w.rows = 0
	w.curPage = 0
	w.readPage = -1
	if w.writeBuf != nil {
		w.writeBuf = w.writeBuf[:0]
	}
}

// Close releases the worktable, removing its backing file (the DEALLOCATE
// half of "created and dropped for every run").
func (w *Worktable) Close() {
	w.Reset()
	w.dropFile()
}

func (w *Worktable) dropFile() {
	if w.file == nil {
		return
	}
	name := w.file.Name()
	_ = w.file.Close()
	if !w.unlinked {
		_ = os.Remove(name)
	}
	w.file = nil
	runtime.SetFinalizer(w, nil)
}
