// Package txn implements the transactional core of the engine: commit
// epochs, snapshots, per-row version chains, and the transaction objects
// that tie them together under snapshot isolation.
//
// The design is epoch-based multi-versioning in the style of Hekaton:
//
//   - Every committed state of the database is identified by a commit
//     epoch, a monotonically increasing uint64 published by the Manager.
//   - A Snapshot pins one epoch. A reader holding a snapshot sees exactly
//     the versions committed at or before that epoch — never a torn write,
//     never a later commit — and never takes a lock to do so.
//   - Writers create new Versions at the head of a row's chain, stamped
//     with their transaction id. At commit the Manager allocates the next
//     epoch, stamps every version the transaction created, and publishes
//     the epoch; at rollback the versions are unlinked.
//   - Conflicts are resolved first-writer-wins: touching a row that carries
//     another transaction's uncommitted version, or a version committed
//     after the writer's snapshot, fails immediately with ErrWriteConflict.
//
// Durability is delegated to a CommitSink (the WAL, when the engine runs
// with a data directory): the sink logs the commit while the commit lock
// is held — so the log's epoch order matches publication order — and the
// committer waits for its record to become durable after the lock is
// released, which lets one fsync amortize over many concurrent commits.
package txn

import (
	"errors"
	"sync"
	"sync/atomic"

	"aggify/internal/sqltypes"
)

// ErrWriteConflict is returned when a write touches a row that was written
// by a concurrent transaction (uncommitted, or committed after the writer's
// snapshot). First-writer-wins: the later writer fails immediately.
var ErrWriteConflict = errors.New("txn: write conflict with a concurrent transaction")

// ErrTxnDone is returned when committing or writing through a transaction
// that has already committed or rolled back.
var ErrTxnDone = errors.New("txn: transaction already finished")

// txnBit marks a version's begin field as "owned by an uncommitted
// transaction": the low 63 bits then hold the owner's transaction id
// instead of a commit epoch.
const txnBit = uint64(1) << 63

// Version is one version of a row in a table's version chain. Row is nil
// for a tombstone (the row was deleted at this version). Versions are
// immutable once published except for the begin stamp (written exactly
// once, at commit) and the prev link (trimmed by vacuum); both are atomic
// so chain walks never need a lock.
type Version struct {
	begin atomic.Uint64
	prev  atomic.Pointer[Version]

	// Row holds the column values, or nil for a tombstone. It is written
	// before the version is linked into a chain and never mutated after.
	Row []sqltypes.Value
}

// NewVersion creates an uncommitted version owned by txn id owner, linked
// in front of prev. owner 0 with committed=true creates a pre-committed
// version at epoch 0 (used by unmanaged tables and recovery replay).
func NewVersion(row []sqltypes.Value, prev *Version, owner uint64) *Version {
	v := &Version{Row: row}
	v.prev.Store(prev)
	v.begin.Store(txnBit | owner)
	return v
}

// NewCommittedVersion creates a version already committed at the given
// epoch (recovery replay and unmanaged tables).
func NewCommittedVersion(row []sqltypes.Value, prev *Version, epoch uint64) *Version {
	v := &Version{Row: row}
	v.prev.Store(prev)
	v.begin.Store(epoch)
	return v
}

// Prev returns the next-older version in the chain, or nil.
func (v *Version) Prev() *Version { return v.prev.Load() }

// SetPrev relinks the chain below v (vacuum and rollback, under the
// owning table's write lock).
func (v *Version) SetPrev(p *Version) { v.prev.Store(p) }

// Committed reports whether v has a commit epoch, and which.
func (v *Version) Committed() (epoch uint64, ok bool) {
	b := v.begin.Load()
	if b&txnBit != 0 {
		return 0, false
	}
	return b, true
}

// Owner returns the transaction id that owns v while uncommitted.
func (v *Version) Owner() (id uint64, ok bool) {
	b := v.begin.Load()
	if b&txnBit == 0 {
		return 0, false
	}
	return b &^ txnBit, true
}

// IsTombstone reports whether v records a deletion.
func (v *Version) IsTombstone() bool { return v.Row == nil }

// commit stamps v with its commit epoch.
func (v *Version) commit(epoch uint64) { v.begin.Store(epoch) }

// abortStamp marks v permanently invisible (used when an aborted version
// cannot be unlinked because a newer version was chained on top; readers
// skip it and vacuum reclaims it).
const abortedOwner = txnBit // owner id 0 is never allocated

func (v *Version) abort() { v.begin.Store(abortedOwner) }

// Visible walks a version chain newest→oldest and returns the version the
// snapshot sees, or nil when the row does not exist at that snapshot
// (never created, or the visible version may be a tombstone — callers
// check IsTombstone). A nil snapshot sees the latest committed version.
func Visible(head *Version, snap *Snapshot) *Version {
	for v := head; v != nil; v = v.Prev() {
		b := v.begin.Load()
		if b&txnBit != 0 {
			// Uncommitted: visible only to the owning transaction.
			if snap != nil && snap.TxnID != 0 && snap.TxnID == b&^txnBit {
				return v
			}
			continue
		}
		if snap == nil || b <= snap.Epoch {
			return v
		}
	}
	return nil
}

// Snapshot pins a commit epoch: the holder sees every version committed at
// or before Epoch and nothing later. TxnID is non-zero for snapshots owned
// by a transaction, which additionally see that transaction's own
// uncommitted writes. Snapshots must be Released so vacuum can advance.
type Snapshot struct {
	Epoch uint64
	TxnID uint64

	mgr *Manager
	id  uint64 // registry key; 0 after release (or for unregistered snapshots)
}

// Release unregisters the snapshot from the manager's live set. Safe to
// call more than once.
func (s *Snapshot) Release() {
	if s == nil || s.mgr == nil || s.id == 0 {
		return
	}
	s.mgr.release(s.id)
	s.id = 0
}

// MutOp identifies a logged mutation kind.
type MutOp uint8

const (
	MutInsert MutOp = iota + 1
	MutUpdate
	MutDelete
	MutTruncate
)

// Mutation is the logical redo record of one table write, in terms the
// write-ahead log can serialize and recovery can replay: slot ids are
// stable across restarts, so (Table, Op, Rid, Row) reproduces the write
// exactly.
type Mutation struct {
	Table string
	Op    MutOp
	Rid   int
	Row   []sqltypes.Value // insert/update payload; nil for delete/truncate
}

// CommitSink receives commit records for durability. LogCommit is called
// with the manager's commit lock held (records therefore appear in epoch
// order); WaitDurable is called after the lock is released, so syncs from
// many committers coalesce.
type CommitSink interface {
	LogCommit(epoch uint64, muts []Mutation) (lsn uint64, err error)
	WaitDurable(lsn uint64) error
}

// Txn is one read-write transaction: a snapshot for its reads, a write set
// for conflict bookkeeping, and the undo/redo hooks the storage layer
// registers as it applies writes. A Txn is owned by a single session and
// is not safe for concurrent use.
type Txn struct {
	// ID is the transaction id stamped (with txnBit) on uncommitted
	// versions. Never zero.
	ID uint64

	mgr      *Manager
	snap     *Snapshot
	muts     []Mutation
	versions []*Version
	onCommit []func(epoch uint64)
	onAbort  []func()
	done     bool
}

// Snapshot returns the transaction's pinned snapshot (which also sees the
// transaction's own uncommitted writes).
func (t *Txn) Snapshot() *Snapshot { return t.snap }

// Track registers a version created by this transaction, to be stamped at
// commit.
func (t *Txn) Track(v *Version) { t.versions = append(t.versions, v) }

// Log appends a redo mutation for the WAL. Skipped entirely when the
// manager has no durability sink, so purely in-memory engines pay nothing.
func (t *Txn) Log(m Mutation) {
	if t.mgr.sink == nil {
		return
	}
	t.muts = append(t.muts, m)
}

// OnCommit registers a hook run (with the commit lock held) after this
// transaction's versions are stamped, before the epoch is published.
// Storage uses it for index/statistics maintenance that must become
// visible atomically with the commit.
func (t *Txn) OnCommit(fn func(epoch uint64)) { t.onCommit = append(t.onCommit, fn) }

// OnAbort registers an undo hook run (newest first) if the transaction
// rolls back.
func (t *Txn) OnAbort(fn func()) { t.onAbort = append(t.onAbort, fn) }

// Done reports whether the transaction has committed or rolled back.
func (t *Txn) Done() bool { return t.done }

// Commit publishes the transaction's writes at the next commit epoch and,
// when a durability sink is attached, returns only after the commit record
// is durable. On a sink error the transaction is rolled back.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	m := t.mgr
	if len(t.versions) == 0 && len(t.onCommit) == 0 && len(t.muts) == 0 {
		// Read-only: nothing to publish.
		t.done = true
		t.snap.Release()
		m.commits.Add(1)
		return nil
	}
	m.commitMu.Lock()
	epoch := m.epoch.Load() + 1
	var lsn uint64
	if m.sink != nil && len(t.muts) > 0 {
		var err error
		lsn, err = m.sink.LogCommit(epoch, t.muts)
		if err != nil {
			m.commitMu.Unlock()
			t.Rollback()
			return err
		}
	}
	for _, v := range t.versions {
		v.commit(epoch)
	}
	for _, fn := range t.onCommit {
		fn(epoch)
	}
	m.epoch.Store(epoch)
	m.commitMu.Unlock()
	t.done = true
	t.snap.Release()
	m.commits.Add(1)
	if m.sink != nil && lsn > 0 {
		return m.sink.WaitDurable(lsn)
	}
	return nil
}

// Rollback undoes the transaction's writes (newest first) and releases its
// snapshot. Safe to call on a finished transaction (no-op).
func (t *Txn) Rollback() {
	if t.done {
		return
	}
	t.done = true
	t.mgr.rollbacks.Add(1)
	for i := len(t.onAbort) - 1; i >= 0; i-- {
		t.onAbort[i]()
	}
	t.snap.Release()
}

// Manager allocates epochs and transaction ids, tracks live snapshots for
// vacuum, and serializes commit publication. One Manager per engine.
type Manager struct {
	epoch    atomic.Uint64
	nextTxn  atomic.Uint64
	commitMu sync.Mutex
	sink     CommitSink

	mu       sync.Mutex
	live     map[uint64]uint64 // snapshot registry: id → pinned epoch
	nextSnap uint64

	garbage   atomic.Int64
	vacuuming atomic.Bool

	// Cumulative transaction counters, exported through the server's
	// /metrics endpoint and the aggify_stat_wal system table.
	begins    atomic.Int64
	commits   atomic.Int64
	rollbacks atomic.Int64
	conflicts atomic.Int64
}

// Counters is a point-in-time copy of the manager's cumulative counters.
type Counters struct {
	Begins    int64
	Commits   int64
	Rollbacks int64
	Conflicts int64
}

// CounterSnapshot returns the cumulative begin/commit/rollback/conflict
// counts since the manager was created.
func (m *Manager) CounterSnapshot() Counters {
	return Counters{
		Begins:    m.begins.Load(),
		Commits:   m.commits.Load(),
		Rollbacks: m.rollbacks.Load(),
		Conflicts: m.conflicts.Load(),
	}
}

// NoteConflict records one write-conflict detection. The storage layer
// calls it at every site that returns ErrWriteConflict.
func (m *Manager) NoteConflict() { m.conflicts.Add(1) }

// NewManager creates a manager at epoch 0 with no durability sink.
func NewManager() *Manager {
	return &Manager{live: map[uint64]uint64{}}
}

// SetSink attaches a durability sink. Must be called before any commits
// that should be logged (i.e. at engine open, before user transactions).
func (m *Manager) SetSink(s CommitSink) { m.sink = s }

// Sink returns the attached durability sink, or nil.
func (m *Manager) Sink() CommitSink { return m.sink }

// Epoch returns the latest published commit epoch.
func (m *Manager) Epoch() uint64 { return m.epoch.Load() }

// SetEpoch force-sets the published epoch; recovery uses it to resume
// allocation after replaying the log.
func (m *Manager) SetEpoch(e uint64) { m.epoch.Store(e) }

// Acquire pins the current epoch as a read snapshot and registers it in
// the live set. The caller must Release it.
func (m *Manager) Acquire() *Snapshot {
	m.mu.Lock()
	m.nextSnap++
	id := m.nextSnap
	s := &Snapshot{Epoch: m.epoch.Load(), mgr: m, id: id}
	m.live[id] = s.Epoch
	m.mu.Unlock()
	return s
}

func (m *Manager) release(id uint64) {
	m.mu.Lock()
	delete(m.live, id)
	m.mu.Unlock()
}

// LiveSnapshots returns the number of registered, unreleased snapshots.
func (m *Manager) LiveSnapshots() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.live)
}

// OldestVisible returns the oldest epoch any live snapshot can see — the
// vacuum horizon. Versions superseded by a commit at or before this epoch
// are unreachable by every live and future snapshot.
func (m *Manager) OldestVisible() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldest := m.epoch.Load()
	for _, e := range m.live {
		if e < oldest {
			oldest = e
		}
	}
	return oldest
}

// Begin starts a read-write transaction pinned at the current epoch.
func (m *Manager) Begin() *Txn {
	m.begins.Add(1)
	id := m.nextTxn.Add(1)
	snap := m.Acquire()
	snap.TxnID = id
	return &Txn{ID: id, mgr: m, snap: snap}
}

// AdvanceEpoch allocates the next epoch under the commit lock, invoking
// log (when non-nil) before publication. DDL uses it so schema changes get
// their own epoch — a checkpoint taken at epoch E can then never straddle
// a DDL record at E.
func (m *Manager) AdvanceEpoch(log func(epoch uint64) error) (uint64, error) {
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	e := m.epoch.Load() + 1
	if log != nil {
		if err := log(e); err != nil {
			return 0, err
		}
	}
	m.epoch.Store(e)
	return e, nil
}

// WithCommitLock runs fn with commit publication frozen at the current
// epoch. Checkpointing uses it to image every table at one consistent
// epoch: no commit can publish (and no DDL can advance the epoch) while
// fn runs. Readers and in-progress writers are unaffected.
func (m *Manager) WithCommitLock(fn func(epoch uint64) error) error {
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	return fn(m.epoch.Load())
}

// NoteGarbage records that n superseded versions became reclaimable;
// MaybeVacuum fires once enough accumulate.
func (m *Manager) NoteGarbage(n int) { m.garbage.Add(int64(n)) }

// vacuumThreshold is how many superseded versions accumulate before the
// inline vacuum trigger fires. Small enough that loop-heavy workloads
// (a cursor loop updating every row) reclaim as they go, large enough to
// amortize the chain walks.
const vacuumThreshold = 1024

// MaybeVacuum runs fn(oldest visible epoch) when enough garbage has
// accumulated, at most once concurrently. Embedded engines call it inline
// after commits (no background goroutine: tests forbid leaked goroutines);
// the server calls Vacuum from a ticker as well.
func (m *Manager) MaybeVacuum(fn func(oldest uint64)) {
	if m.garbage.Load() < vacuumThreshold {
		return
	}
	if !m.vacuuming.CompareAndSwap(false, true) {
		return
	}
	m.garbage.Store(0)
	fn(m.OldestVisible())
	m.vacuuming.Store(false)
}

// Vacuum runs fn(oldest visible epoch) unconditionally (unless another
// vacuum is in flight).
func (m *Manager) Vacuum(fn func(oldest uint64)) {
	if !m.vacuuming.CompareAndSwap(false, true) {
		return
	}
	m.garbage.Store(0)
	fn(m.OldestVisible())
	m.vacuuming.Store(false)
}
