package txn

import (
	"errors"
	"sync"
	"testing"

	"aggify/internal/sqltypes"
)

func row(i int64) []sqltypes.Value { return []sqltypes.Value{sqltypes.NewInt(i)} }

func TestSnapshotVisibility(t *testing.T) {
	m := NewManager()

	tx1 := m.Begin()
	v1 := NewVersion(row(1), nil, tx1.ID)
	tx1.Track(v1)

	// Uncommitted: visible to the owner, invisible to others.
	if got := Visible(v1, tx1.Snapshot()); got != v1 {
		t.Fatalf("owner should see its own uncommitted version")
	}
	other := m.Acquire()
	if got := Visible(v1, other); got != nil {
		t.Fatalf("foreign snapshot saw an uncommitted version")
	}
	other.Release()

	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if e := m.Epoch(); e != 1 {
		t.Fatalf("epoch = %d, want 1", e)
	}

	// Snapshot taken now sees v1; a later committed v2 stays invisible.
	snap := m.Acquire()
	defer snap.Release()

	tx2 := m.Begin()
	v2 := NewVersion(row(2), v1, tx2.ID)
	tx2.Track(v2)
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	if got := Visible(v2, snap); got != v1 {
		t.Fatalf("old snapshot should still see v1, got %v", got)
	}
	fresh := m.Acquire()
	defer fresh.Release()
	if got := Visible(v2, fresh); got != v2 {
		t.Fatalf("fresh snapshot should see v2")
	}
	// nil snapshot = latest committed.
	if got := Visible(v2, nil); got != v2 {
		t.Fatalf("nil snapshot should see latest committed")
	}
}

func TestTombstoneVisibility(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	v1 := NewVersion(row(1), nil, tx.ID)
	tx.Track(v1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	before := m.Acquire()
	defer before.Release()

	del := m.Begin()
	tomb := NewVersion(nil, v1, del.ID)
	del.Track(tomb)
	if err := del.Commit(); err != nil {
		t.Fatal(err)
	}

	if got := Visible(tomb, before); got != v1 {
		t.Fatalf("pre-delete snapshot should see the live row")
	}
	after := m.Acquire()
	defer after.Release()
	got := Visible(tomb, after)
	if got == nil || !got.IsTombstone() {
		t.Fatalf("post-delete snapshot should see the tombstone, got %v", got)
	}
}

func TestRollbackRunsUndoNewestFirst(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	var order []int
	tx.OnAbort(func() { order = append(order, 1) })
	tx.OnAbort(func() { order = append(order, 2) })
	tx.Rollback()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("undo order = %v, want [2 1]", order)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("commit after rollback = %v, want ErrTxnDone", err)
	}
	if m.Epoch() != 0 {
		t.Fatalf("rollback advanced the epoch")
	}
}

func TestReadOnlyCommitDoesNotAdvanceEpoch(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 0 {
		t.Fatalf("read-only commit advanced the epoch to %d", m.Epoch())
	}
	if n := m.LiveSnapshots(); n != 0 {
		t.Fatalf("leaked %d snapshots", n)
	}
}

func TestOldestVisible(t *testing.T) {
	m := NewManager()
	bump := func() {
		tx := m.Begin()
		tx.Track(NewVersion(row(0), nil, tx.ID))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	bump() // epoch 1
	s1 := m.Acquire()
	bump() // epoch 2
	s2 := m.Acquire()
	bump() // epoch 3

	if got := m.OldestVisible(); got != 1 {
		t.Fatalf("oldest = %d, want 1", got)
	}
	s1.Release()
	if got := m.OldestVisible(); got != 2 {
		t.Fatalf("oldest = %d, want 2", got)
	}
	s2.Release()
	if got := m.OldestVisible(); got != 3 {
		t.Fatalf("oldest = %d, want 3 (current epoch)", got)
	}
	s2.Release() // double release is a no-op
}

type memSink struct {
	mu      sync.Mutex
	commits []uint64
	fail    bool
}

func (s *memSink) LogCommit(epoch uint64, muts []Mutation) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return 0, errors.New("disk full")
	}
	s.commits = append(s.commits, epoch)
	return uint64(len(s.commits)), nil
}

func (s *memSink) WaitDurable(lsn uint64) error { return nil }

func TestSinkSeesEpochOrder(t *testing.T) {
	m := NewManager()
	sink := &memSink{}
	m.SetSink(sink)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := m.Begin()
			tx.Track(NewVersion(row(0), nil, tx.ID))
			tx.Log(Mutation{Table: "t", Op: MutInsert, Rid: 0, Row: row(0)})
			if err := tx.Commit(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if len(sink.commits) != 16 {
		t.Fatalf("sink saw %d commits, want 16", len(sink.commits))
	}
	for i := 1; i < len(sink.commits); i++ {
		if sink.commits[i] != sink.commits[i-1]+1 {
			t.Fatalf("commit epochs out of order: %v", sink.commits)
		}
	}
}

func TestSinkErrorRollsBack(t *testing.T) {
	m := NewManager()
	sink := &memSink{fail: true}
	m.SetSink(sink)

	tx := m.Begin()
	tx.Track(NewVersion(row(1), nil, tx.ID))
	tx.Log(Mutation{Table: "t", Op: MutInsert, Rid: 0, Row: row(1)})
	undone := false
	tx.OnAbort(func() { undone = true })
	if err := tx.Commit(); err == nil {
		t.Fatal("commit with failing sink should error")
	}
	if !undone {
		t.Fatal("failed commit did not run undo hooks")
	}
	if m.Epoch() != 0 {
		t.Fatalf("failed commit advanced the epoch")
	}
}

func TestAdvanceEpochForDDL(t *testing.T) {
	m := NewManager()
	var logged uint64
	e, err := m.AdvanceEpoch(func(epoch uint64) error {
		logged = epoch
		return nil
	})
	if err != nil || e != 1 || logged != 1 {
		t.Fatalf("AdvanceEpoch = (%d, %v), logged %d; want (1, nil), 1", e, err, logged)
	}
	if m.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", m.Epoch())
	}
	// A failing log must not publish the epoch.
	_, err = m.AdvanceEpoch(func(uint64) error { return errors.New("nope") })
	if err == nil || m.Epoch() != 1 {
		t.Fatalf("failed DDL log published epoch %d", m.Epoch())
	}
}

func TestMaybeVacuumThreshold(t *testing.T) {
	m := NewManager()
	ran := 0
	m.MaybeVacuum(func(uint64) { ran++ })
	if ran != 0 {
		t.Fatal("vacuum ran below threshold")
	}
	m.NoteGarbage(vacuumThreshold)
	m.MaybeVacuum(func(uint64) { ran++ })
	if ran != 1 {
		t.Fatal("vacuum did not run at threshold")
	}
	// Counter was reset by the run.
	m.MaybeVacuum(func(uint64) { ran++ })
	if ran != 1 {
		t.Fatal("vacuum ran again without new garbage")
	}
}
