package server_test

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/server"
	"aggify/internal/wire"
)

// TestShutdownOrdering pins the drain sequence: once Shutdown begins, new
// Exec/Prepare/Query work is rejected while Fetch on an existing cursor
// still succeeds, and the OnDrain hook (aggifyd's WAL flush + final
// checkpoint) runs while connections — and their cursors — are still alive.
func TestShutdownOrdering(t *testing.T) {
	inDrain := make(chan struct{})
	release := make(chan struct{})
	var cursorsAtDrain int64

	eng := engine.New()
	interp.Install(eng)
	srv := server.New(eng)
	srv.OnDrain = func() {
		cursorsAtDrain = srv.OpenCursors()
		close(inDrain)
		<-release // hold the drain window open for the assertions below
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	c, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	typ, body := rawRoundTrip(t, c, wire.MsgExec,
		[]byte("create table t (n int); insert into t values (1),(2),(3),(4),(5),(6);"))
	mustOK(t, typ, body, wire.MsgResults)
	typ, body = rawRoundTrip(t, c, wire.MsgPrepare, []byte("select n from t order by n"))
	stmtID, err := wire.DecodeStmtResp(mustOK(t, typ, body, wire.MsgStmt))
	if err != nil {
		t.Fatal(err)
	}
	typ, body = rawRoundTrip(t, c, wire.MsgQuery, wire.EncodeQueryReq(stmtID, nil))
	curID, _, err := wire.DecodeCursorResp(mustOK(t, typ, body, wire.MsgCursor))
	if err != nil {
		t.Fatal(err)
	}
	// Fetch part of the result; the cursor stays open across the drain.
	typ, body = rawRoundTrip(t, c, wire.MsgFetch, wire.EncodeFetchReq(curID, 2))
	mustOK(t, typ, body, wire.MsgRows)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	<-inDrain

	// New work is rejected while draining...
	typ, body = rawRoundTrip(t, c, wire.MsgExec, []byte("insert into t values (7);"))
	if typ != wire.MsgError || !strings.Contains(string(body), "shutting down") {
		t.Fatalf("exec during drain: type=0x%02x body=%q, want shutting-down error", byte(typ), body)
	}
	typ, body = rawRoundTrip(t, c, wire.MsgQuery, wire.EncodeQueryReq(stmtID, nil))
	if typ != wire.MsgError {
		t.Fatalf("query during drain should be rejected, got 0x%02x", byte(typ))
	}
	// ...but the open cursor can still be drained by the client.
	typ, body = rawRoundTrip(t, c, wire.MsgFetch, wire.EncodeFetchReq(curID, 100))
	rows, fetchDone, err := wire.DecodeRowsResp(mustOK(t, typ, body, wire.MsgRows))
	if err != nil || !fetchDone || len(rows) != 4 {
		t.Fatalf("fetch during drain: rows=%d done=%v err=%v, want remaining 4 rows", len(rows), fetchDone, err)
	}
	// Stats stay available so monitoring can watch the drain.
	typ, body = rawRoundTrip(t, c, wire.MsgStats, nil)
	mustOK(t, typ, body, wire.MsgServerStats)

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != server.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
	// OnDrain observed the connection's cursor still open: the hook ran
	// before any teardown (checkpoint-before-close ordering).
	if cursorsAtDrain != 1 {
		t.Fatalf("open cursors during OnDrain = %d, want 1 (hook must run before teardown)", cursorsAtDrain)
	}
	// New connections are refused after shutdown.
	if _, err := net.Dial("tcp", lis.Addr().String()); err == nil {
		t.Fatal("listener should be closed")
	}
}
