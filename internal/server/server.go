package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"aggify/internal/engine"
	"aggify/internal/trace"
	"aggify/internal/wire"
)

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// Server is a concurrent TCP front end over one engine. Each accepted
// connection runs in its own goroutine with its own Backend; the shared
// engine underneath is safe for concurrent sessions.
type Server struct {
	eng *engine.Engine

	// ErrorLog receives per-connection protocol errors; nil silences them.
	ErrorLog *log.Logger
	// SlowThreshold, when positive, logs requests at least this slow into the
	// metrics slow-query ring (see Metrics). Set before Serve.
	SlowThreshold time.Duration
	// Tracer, when set, records request spans: traced client requests
	// (wire.TraceFlag) join the client's trace, and untraced requests may
	// root server-local traces subject to the tracer's sampling rate. Set
	// before Serve. A nil tracer costs nothing on the request path.
	Tracer *trace.Tracer

	// OnDrain, when set, runs during Shutdown after in-flight requests have
	// finished and new work is being rejected, but before any connection
	// (and its cursors) is torn down. aggifyd uses it to flush the WAL and
	// write a final checkpoint while the engine is quiescent. Set before
	// Serve.
	OnDrain func()

	// metrics is the server-wide query-metrics registry.
	metrics Metrics

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool

	wg          sync.WaitGroup
	reqWG       sync.WaitGroup // in-flight requests (one dispatch each)
	draining    atomic.Bool    // reject new transactions/statements
	openCursors atomic.Int64
}

// New creates a server for the engine.
func New(eng *engine.Engine) *Server {
	return &Server{eng: eng, conns: map[net.Conn]struct{}{}}
}

// OpenCursors returns the number of server-side cursors currently open
// across all connections.
func (s *Server) OpenCursors() int64 { return s.openCursors.Load() }

// Stats returns the server's query-metrics snapshot (the same data a client
// obtains with MsgStats).
func (s *Server) Stats() *wire.ServerStats { return s.metrics.Snapshot(s.openCursors.Load()) }

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve accepts connections on l until Shutdown or Close. It always closes
// the listener before returning.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.lis = l
	s.mu.Unlock()
	defer l.Close()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			down := s.shutdown
			s.mu.Unlock()
			if down {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(c)
	}
}

// Shutdown drains the server in three ordered phases:
//
//  1. Stop admitting work: the listener closes and new Exec/Prepare/Query
//     requests (anything that could start a transaction) are rejected,
//     while Fetch/CloseCursor/Stats keep working so clients can drain. It
//     then waits for in-flight requests to finish (or ctx to expire).
//  2. Run the OnDrain hook — WAL flush and final checkpoint — while no
//     statement is executing and no connection has been torn down yet.
//  3. Close connections: pending reads are unblocked so handlers exit
//     (rolling back any open explicit transactions); if ctx expires first
//     the remaining connections are forcibly closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.shutdown = true
	l := s.lis
	s.mu.Unlock()
	s.draining.Store(true)
	if l != nil {
		l.Close()
	}

	reqDone := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(reqDone)
	}()
	var expired bool
	select {
	case <-reqDone:
	case <-ctx.Done():
		expired = true
	}

	if s.OnDrain != nil {
		s.OnDrain()
	}

	s.mu.Lock()
	// Unblock reads: idle connections fail their pending Read and close;
	// connections mid-request finish and fail on the next Read.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if !expired {
		select {
		case <-done:
			return nil
		case <-ctx.Done():
		}
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-done
	if expired || ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

// Close is Shutdown without grace: it force-closes everything.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// handle runs one connection's request loop.
func (s *Server) handle(c net.Conn) {
	s.metrics.connections.Add(1)
	b := NewBackend(s.eng)
	b.Tracer = s.Tracer
	b.cursorGauge = func(d int64) {
		s.openCursors.Add(d)
		if d > 0 {
			s.metrics.cursorsOpened.Add(d)
		}
	}
	defer func() {
		b.Close()
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		typ, body, rn, err := wire.ReadFrame(br)
		if err != nil {
			// EOF, peer reset, shutdown deadline, or a malformed frame
			// (e.g. oversized) — the connection cannot continue either way.
			s.logf("aggifyd: %v: %v", c.RemoteAddr(), err)
			return
		}
		// Strip the optional trace context; untraced frames pass through
		// untouched (no allocation).
		typ, tc, body, err := wire.SplitTraceContext(typ, body)
		if err != nil {
			s.logf("aggifyd: %v: %v", c.RemoteAddr(), err)
			return
		}
		sp := s.dispatchSpan(tc, typ)
		b.SetTraceParent(sp.Context())
		start := time.Now()
		s.reqWG.Add(1)
		respT, respB := s.dispatch(b, typ, body)
		s.reqWG.Done()
		wn, err := wire.WriteFrame(bw, respT, respB)
		s.metrics.record(typ, time.Since(start), rn, wn, body, s.SlowThreshold)
		sp.SetAttrInt("bytes_in", int64(rn))
		sp.SetAttrInt("bytes_out", int64(wn))
		sp.End()
		if err != nil {
			s.logf("aggifyd: %v: write: %v", c.RemoteAddr(), err)
			return
		}
		if err := bw.Flush(); err != nil {
			s.logf("aggifyd: %v: flush: %v", c.RemoteAddr(), err)
			return
		}
		if typ == wire.MsgQuit {
			return
		}
	}
}

// dispatchSpan opens the per-request server span: traced requests join the
// client's trace, untraced ones may root a sampled server-local trace. With
// a nil tracer both paths return a disabled span at zero cost.
func (s *Server) dispatchSpan(tc wire.TraceContext, typ wire.MsgType) trace.Span {
	var sp trace.Span
	if tc.Valid() {
		sp = s.Tracer.JoinTrace(trace.SpanContext{Trace: trace.ID(tc.TraceID), Span: trace.ID(tc.SpanID)}, "server.dispatch")
	} else {
		sp = s.Tracer.StartTrace("server.dispatch")
	}
	sp.SetAttr("msg", msgName(typ))
	return sp
}

// msgName names a request type for span attributes (no allocation).
func msgName(typ wire.MsgType) string {
	switch typ {
	case wire.MsgExec:
		return "exec"
	case wire.MsgPrepare:
		return "prepare"
	case wire.MsgQuery:
		return "query"
	case wire.MsgFetch:
		return "fetch"
	case wire.MsgCloseCursor:
		return "close_cursor"
	case wire.MsgStats:
		return "stats"
	case wire.MsgQuit:
		return "quit"
	default:
		return "unknown"
	}
}

// dispatch decodes a request, runs it against the backend, and encodes the
// reply. Request errors become MsgError frames; the connection stays up.
func (s *Server) dispatch(b *Backend, typ wire.MsgType, body []byte) (wire.MsgType, []byte) {
	// While draining, anything that could start new work — a script batch,
	// a prepare, a query opening a cursor — is rejected; fetching from (and
	// closing) existing cursors still works so clients can finish.
	if s.draining.Load() {
		switch typ {
		case wire.MsgExec, wire.MsgPrepare, wire.MsgQuery:
			return wire.MsgError, []byte("server: shutting down")
		}
	}
	switch typ {
	case wire.MsgExec:
		res, err := b.Exec(string(body))
		if err != nil {
			return wire.MsgError, []byte(err.Error())
		}
		return wire.MsgResults, wire.EncodeExecResult(res)
	case wire.MsgPrepare:
		id, err := b.Prepare(string(body))
		if err != nil {
			return wire.MsgError, []byte(err.Error())
		}
		return wire.MsgStmt, wire.EncodeStmtResp(id)
	case wire.MsgQuery:
		stmtID, args, err := wire.DecodeQueryReq(body)
		if err != nil {
			return wire.MsgError, []byte(err.Error())
		}
		curID, cols, err := b.Query(stmtID, args)
		if err != nil {
			return wire.MsgError, []byte(err.Error())
		}
		return wire.MsgCursor, wire.EncodeCursorResp(curID, cols)
	case wire.MsgFetch:
		curID, maxRows, err := wire.DecodeFetchReq(body)
		if err != nil {
			return wire.MsgError, []byte(err.Error())
		}
		rows, done, err := b.Fetch(curID, maxRows)
		if err != nil {
			return wire.MsgError, []byte(err.Error())
		}
		return wire.MsgRows, wire.EncodeRowsResp(rows, done)
	case wire.MsgCloseCursor:
		curID, err := wire.DecodeCloseReq(body)
		if err != nil {
			return wire.MsgError, []byte(err.Error())
		}
		if err := b.CloseCursor(curID); err != nil {
			return wire.MsgError, []byte(err.Error())
		}
		return wire.MsgOK, nil
	case wire.MsgStats:
		return wire.MsgServerStats, wire.EncodeServerStats(s.Stats())
	case wire.MsgQuit:
		return wire.MsgOK, nil
	default:
		return wire.MsgError, []byte(fmt.Sprintf("server: unknown message type 0x%02x", byte(typ)))
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.ErrorLog != nil {
		s.ErrorLog.Printf(format, args...)
	}
}
