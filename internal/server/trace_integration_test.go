package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"aggify/internal/client"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/server"
	"aggify/internal/sqltypes"
	"aggify/internal/trace"
	"aggify/internal/wire"
)

// traceNames returns the span names recorded for trace id in the ring.
func traceNames(tr *trace.Tracer, id trace.ID) map[string]trace.SpanRecord {
	out := map[string]trace.SpanRecord{}
	for _, sp := range tr.Spans() {
		if sp.Trace == id {
			out[sp.Name] = sp
		}
	}
	return out
}

// TestTraceEndToEndOverTCP is the tentpole acceptance test: a client-rooted
// trace must connect client call → wire frames → server dispatch → parse →
// plan → execute under ONE trace id, visible in both rings, in the client's
// JSONL output, and on the server's /traces endpoint.
func TestTraceEndToEndOverTCP(t *testing.T) {
	serverTracer := trace.New(trace.Config{}) // sample 0: joins only
	_, srv, addr := startServer(t, func(s *server.Server) { s.Tracer = serverTracer })

	var jsonl bytes.Buffer
	clientTracer := trace.New(trace.Config{Sample: 1, Out: &jsonl})
	conn, err := client.Dial(addr, wire.LAN)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetTracer(clientTracer)

	if err := conn.Exec(`
create table nums (n int);
insert into nums values (1), (2), (3);
`); err != nil {
		t.Fatal(err)
	}
	stmt, err := conn.Prepare("select n from nums order by n")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for rs.Next() {
		rows++
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	rs.Close()
	if rows != 3 {
		t.Fatalf("rows = %d, want 3", rows)
	}
	// A second query closed before it drains sends a real CloseCursor.
	conn.FetchSize = 1
	rs2, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !rs2.Next() {
		t.Fatal("no first row")
	}
	if err := rs2.Close(); err != nil {
		t.Fatal(err)
	}

	// Every client call was sampled, so the client ring holds the call
	// roots plus their wire child spans.
	clientSpans := clientTracer.Spans()
	var execRoot trace.SpanRecord
	names := map[string]bool{}
	for _, sp := range clientSpans {
		names[sp.Name] = true
		if sp.Name == "client.exec" {
			execRoot = sp
		}
	}
	for _, want := range []string{"client.exec", "client.prepare", "client.query", "client.fetch", "client.close_cursor", "wire.write", "wire.read"} {
		if !names[want] {
			t.Fatalf("client ring missing span %q (have %v)", want, names)
		}
	}
	if execRoot.Trace == 0 || execRoot.Parent != 0 {
		t.Fatalf("client.exec is not a root span: %+v", execRoot)
	}

	// The client.exec trace continued on the server: dispatch joined it
	// (same trace id, remote parent) and parse/script ran under it.
	sv := traceNames(serverTracer, execRoot.Trace)
	for _, want := range []string{"server.dispatch", "server.parse", "server.script"} {
		if _, ok := sv[want]; !ok {
			t.Fatalf("server ring missing %q for trace %s (have %v)", want, trace.FormatID(execRoot.Trace), sv)
		}
	}
	if sv["server.dispatch"].Parent == 0 {
		t.Fatal("server.dispatch lost its remote parent span id")
	}
	// Client wire spans live in the same trace as the server spans.
	cv := traceNames(clientTracer, execRoot.Trace)
	if _, ok := cv["wire.write"]; !ok {
		t.Fatalf("wire.write not in trace %s", trace.FormatID(execRoot.Trace))
	}
	if c := serverTracer.Counters(); c.TracesJoined == 0 || c.TracesStarted != 0 {
		t.Fatalf("server tracer counters = %+v, want joins only", c)
	}

	// The prepared-statement query rooted its own trace; the server must
	// have planned and executed under it.
	var queryRoot trace.SpanRecord
	for _, sp := range clientSpans {
		if sp.Name == "client.query" {
			queryRoot = sp
		}
	}
	qv := traceNames(serverTracer, queryRoot.Trace)
	for _, want := range []string{"server.dispatch", "server.plan", "server.execute"} {
		if _, ok := qv[want]; !ok {
			t.Fatalf("query trace missing %q on server (have %v)", want, qv)
		}
	}
	// Each batch fetch is its own client-rooted trace ending in a
	// server.fetch span.
	var fetchRoot trace.SpanRecord
	for _, sp := range clientSpans {
		if sp.Name == "client.fetch" {
			fetchRoot = sp
		}
	}
	fv := traceNames(serverTracer, fetchRoot.Trace)
	if _, ok := fv["server.fetch"]; !ok {
		t.Fatalf("fetch trace missing server.fetch (have %v)", fv)
	}

	// JSONL out carries the end-to-end trace id as 16 hex chars.
	if !strings.Contains(jsonl.String(), trace.FormatID(execRoot.Trace)) {
		t.Fatalf("-trace-out stream missing trace id %s", trace.FormatID(execRoot.Trace))
	}

	// GET /traces on the server's debug handler exposes the joined trace.
	req := httptest.NewRequest("GET", "/traces", nil)
	w := httptest.NewRecorder()
	srv.DebugHandler().ServeHTTP(w, req)
	var views []struct {
		Trace string `json:"trace"`
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &views); err != nil {
		t.Fatalf("/traces is not JSON: %v\n%s", err, w.Body.String())
	}
	found := false
	for _, v := range views {
		if v.Trace == trace.FormatID(execRoot.Trace) {
			found = true
			if len(v.Spans) < 3 {
				t.Fatalf("/traces shows %d spans for the exec trace", len(v.Spans))
			}
		}
	}
	if !found {
		t.Fatalf("/traces missing trace %s:\n%s", trace.FormatID(execRoot.Trace), w.Body.String())
	}
}

// TestTraceProcedureOverWire drives the `\profile` / TRACE PROCEDURE path
// end to end: the profile report for a cursor-loop procedure arrives as a
// result set over TCP and carries the aggify_candidate verdict.
func TestTraceProcedureOverWire(t *testing.T) {
	_, _, addr := startServer(t)
	conn, err := client.Dial(addr, wire.LAN)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Exec(`
create table nums (n int);
insert into nums values (1), (2), (3), (4);
GO
create procedure sumNums() as
begin
  declare @n int;
  declare @s int = 0;
  declare c cursor for select n from nums order by n;
  open c;
  fetch next from c into @n;
  while @@fetch_status = 0
  begin
    set @s = @s + @n;
    fetch next from c into @n;
  end
  close c;
  deallocate c;
  print @s;
end
`); err != nil {
		t.Fatal(err)
	}
	res, err := conn.ExecResults("trace procedure sumNums;")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 1 || len(res.Sets[0].Columns) != 1 || res.Sets[0].Columns[0] != "profile" {
		t.Fatalf("profile result shape = %+v", res.Sets)
	}
	var lines []string
	for _, row := range res.Sets[0].Rows {
		lines = append(lines, row[0].Str())
	}
	report := strings.Join(lines, "\n")
	for _, want := range []string{"cursor loop c:", "iterations=4", "rows_fetched=4", "aggify_candidate=true", "time_share="} {
		if !strings.Contains(report, want) {
			t.Fatalf("profile over the wire missing %q:\n%s", want, report)
		}
	}
	// The procedure really ran server-side.
	if p := res.Prints; len(p) != 1 || p[0] != "10" {
		t.Fatalf("prints = %v, want [10]", p)
	}
}

// TestTraceUnsampledAddsNoHeader: with no tracer installed the client must
// emit plain frames the server accepts, and nothing lands in any ring.
func TestTraceUnsampledAddsNoHeader(t *testing.T) {
	serverTracer := trace.New(trace.Config{})
	_, _, addr := startServer(t, func(s *server.Server) { s.Tracer = serverTracer })
	conn, err := client.Dial(addr, wire.LAN)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetTracer(trace.New(trace.Config{Sample: 0}))
	if err := conn.Exec("create table t (n int)"); err != nil {
		t.Fatal(err)
	}
	if got := len(serverTracer.Spans()); got != 0 {
		t.Fatalf("server recorded %d spans for unsampled traffic", got)
	}
	if c := serverTracer.Counters(); c.TracesJoined != 0 {
		t.Fatalf("TracesJoined = %d, want 0", c.TracesJoined)
	}
}

// TestInprocTransportTraces: the embedded (in-process) transport parents
// server-side spans directly under the client call, no wire spans involved.
func TestInprocTransportTraces(t *testing.T) {
	eng := engine.New()
	interp.Install(eng)
	conn := client.Connect(eng, wire.LAN)
	defer conn.Close()
	tr := trace.New(trace.Config{Sample: 1})
	conn.SetTracer(tr)
	if err := conn.Exec("create table t (n int); insert into t values (1), (2)"); err != nil {
		t.Fatal(err)
	}
	stmt, err := conn.Prepare("select n from t")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	for rs.Next() {
	}
	rs.Close()
	names := map[string]bool{}
	for _, sp := range tr.Spans() {
		names[sp.Name] = true
	}
	for _, want := range []string{"client.exec", "server.script", "server.plan", "server.execute"} {
		if !names[want] {
			t.Fatalf("in-process trace missing %q (have %v)", want, names)
		}
	}
	if names["wire.write"] || names["wire.read"] {
		t.Fatal("in-process transport emitted wire spans")
	}
}

// TestDebugEndpoints pins the debug mux: /healthz liveness, /metrics
// Prometheus exposition (metrics and tracer counters present), pprof index.
func TestDebugEndpoints(t *testing.T) {
	_, srv, addr := startServer(t, func(s *server.Server) { s.Tracer = trace.New(trace.Config{Sample: 1}) })
	conn, err := client.Dial(addr, wire.LAN)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Exec("create table t (n int); insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	stmt, err := conn.Prepare("select n from t where n >= ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(sqltypes.NewInt(0)); err != nil {
		t.Fatal(err)
	}

	h := srv.DebugHandler()
	get := func(path string) (int, string) {
		t.Helper()
		req := httptest.NewRequest("GET", path, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		b, _ := io.ReadAll(w.Result().Body)
		return w.Code, string(b)
	}

	code, body := get("/healthz")
	if code != 200 || strings.TrimSpace(body) != `{"status":"ok"}` {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"aggifyd_requests_total",
		"aggifyd_execs_total",
		"aggifyd_queries_total",
		"aggifyd_request_latency_p50_micros",
		"aggifyd_traces_started_total",
		"aggifyd_spans_recorded_total",
		"# TYPE aggifyd_requests_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get("/traces?limit=1")
	if code != 200 {
		t.Fatalf("/traces = %d", code)
	}
	var views []map[string]any
	if err := json.Unmarshal([]byte(body), &views); err != nil {
		t.Fatalf("/traces not JSON: %v", err)
	}
	if len(views) != 1 {
		t.Fatalf("limit=1 returned %d traces", len(views))
	}

	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

// TestMetricsNilTracer: the debug handler must serve even when no tracer is
// installed (srv.Tracer nil) — tracer methods are nil-safe.
func TestMetricsNilTracer(t *testing.T) {
	_, srv, _ := startServer(t)
	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	srv.DebugHandler().ServeHTTP(w, req)
	if w.Code != 200 || !strings.Contains(w.Body.String(), "aggifyd_traces_joined_total 0") {
		t.Fatalf("/metrics with nil tracer = %d\n%s", w.Code, w.Body.String())
	}
	req = httptest.NewRequest("GET", "/traces", nil)
	w = httptest.NewRecorder()
	srv.DebugHandler().ServeHTTP(w, req)
	if w.Code != 200 || strings.TrimSpace(w.Body.String()) != "[]" {
		t.Fatalf("/traces with nil tracer = %d %q", w.Code, w.Body.String())
	}
}
