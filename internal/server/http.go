package server

import (
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"aggify/internal/trace"
)

// DebugHandler builds the aggifyd debug mux (the -http listener):
//
//	/healthz        liveness probe ({"status":"ok"})
//	/metrics        Prometheus text exposition of the query-metrics
//	                registry plus the tracer's counters
//	/traces         recent traces from the tracer's span ring, as JSON
//	/debug/pprof/*  the standard Go profiler endpoints
//
// The handler reads the same registries the wire-level MsgStats reply does,
// so it can be attached to any mux or served standalone via ServeDebug.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug serves the debug handler on l until the listener closes.
func (s *Server) ServeDebug(l net.Listener) error {
	return http.Serve(l, s.DebugHandler())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{"status":"ok"}` + "\n"))
}

// handleMetrics renders the Prometheus text exposition format by hand — the
// format is three lines per metric and not worth a dependency.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	tc := s.Tracer.Counters()
	var buf []byte
	counter := func(name, help string, v int64) {
		buf = append(buf, "# HELP "+name+" "+help+"\n# TYPE "+name+" counter\n"+name+" "...)
		buf = strconv.AppendInt(buf, v, 10)
		buf = append(buf, '\n')
	}
	gauge := func(name, help string, v int64) {
		buf = append(buf, "# HELP "+name+" "+help+"\n# TYPE "+name+" gauge\n"+name+" "...)
		buf = strconv.AppendInt(buf, v, 10)
		buf = append(buf, '\n')
	}
	counter("aggifyd_connections_total", "Connections accepted.", st.Connections)
	counter("aggifyd_requests_total", "Requests served.", st.Requests)
	counter("aggifyd_execs_total", "Exec requests served.", st.Execs)
	counter("aggifyd_queries_total", "Query requests served.", st.Queries)
	counter("aggifyd_fetches_total", "Fetch requests served.", st.Fetches)
	counter("aggifyd_cursors_opened_total", "Server-side cursors opened.", st.CursorsOpened)
	gauge("aggifyd_open_cursors", "Server-side cursors currently open.", st.OpenCursors)
	counter("aggifyd_bytes_in_total", "Request bytes received.", st.BytesIn)
	counter("aggifyd_bytes_out_total", "Response bytes sent.", st.BytesOut)
	gauge("aggifyd_request_latency_p50_micros", "Median request latency upper bound (us).", st.P50Micros)
	gauge("aggifyd_request_latency_p99_micros", "P99 request latency upper bound (us).", st.P99Micros)
	counter("aggifyd_slow_requests_total", "Requests over the slow-query threshold.", st.SlowCount)
	counter("aggifyd_traces_started_total", "Locally-rooted traces sampled.", tc.TracesStarted)
	counter("aggifyd_traces_joined_total", "Client trace contexts joined.", tc.TracesJoined)
	counter("aggifyd_spans_recorded_total", "Completed spans recorded.", tc.SpansRecorded)
	counter("aggifyd_spans_dropped_total", "Spans evicted from the ring unread.", tc.SpansDropped)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf)
}

// handleTraces renders the tracer's recent traces as a JSON array, most
// recent trace first, each span in the schema of trace.AppendSpanJSON.
// ?limit=N bounds the number of traces returned.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	views := s.Tracer.Traces()
	if lim, err := strconv.Atoi(r.URL.Query().Get("limit")); err == nil && lim >= 0 && lim < len(views) {
		views = views[:lim]
	}
	buf := []byte{'['}
	for i, v := range views {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"trace":"`...)
		buf = append(buf, trace.FormatID(v.Trace)...)
		buf = append(buf, `","spans":[`...)
		for j, sp := range v.Spans {
			if j > 0 {
				buf = append(buf, ',')
			}
			buf = trace.AppendSpanJSON(buf, sp)
		}
		buf = append(buf, `]}`...)
	}
	buf = append(buf, ']', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
}
