package server

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"aggify/internal/core"
	"aggify/internal/engine"
	"aggify/internal/trace"
)

// DebugHandler builds the aggifyd debug mux (the -http listener):
//
//	/healthz        liveness probe ({"status":"ok"})
//	/metrics        Prometheus text exposition of the query-metrics
//	                registry plus the tracer's counters
//	/traces         recent traces from the tracer's span ring, as JSON
//	/debug/pprof/*  the standard Go profiler endpoints
//
// The handler reads the same registries the wire-level MsgStats reply does,
// so it can be attached to any mux or served standalone via ServeDebug.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug serves the debug handler on l until the listener closes.
func (s *Server) ServeDebug(l net.Listener) error {
	return http.Serve(l, s.DebugHandler())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{"status":"ok"}` + "\n"))
}

// metricDef is one scalar line of the /metrics exposition. Keeping the
// whole registry in a slice (rather than inline calls) lets tests assert
// that every registered metric actually renders.
type metricDef struct {
	name, help string
	kind       string // "counter" or "gauge"
	value      int64
}

// metricDefs snapshots every scalar metric: the wire-level request
// registry, the tracer, the transaction manager, the WAL, and the
// fingerprint stats store.
func (s *Server) metricDefs() []metricDef {
	st := s.Stats()
	tc := s.Tracer.Counters()
	eng := s.eng
	txc := eng.TxnMgr.CounterSnapshot()
	stmts := eng.StmtStatsStore()
	defs := []metricDef{
		{"aggifyd_connections_total", "Connections accepted.", "counter", st.Connections},
		{"aggifyd_requests_total", "Requests served.", "counter", st.Requests},
		{"aggifyd_execs_total", "Exec requests served.", "counter", st.Execs},
		{"aggifyd_queries_total", "Query requests served.", "counter", st.Queries},
		{"aggifyd_fetches_total", "Fetch requests served.", "counter", st.Fetches},
		{"aggifyd_cursors_opened_total", "Server-side cursors opened.", "counter", st.CursorsOpened},
		{"aggifyd_open_cursors", "Server-side cursors currently open.", "gauge", st.OpenCursors},
		{"aggifyd_bytes_in_total", "Request bytes received.", "counter", st.BytesIn},
		{"aggifyd_bytes_out_total", "Response bytes sent.", "counter", st.BytesOut},
		{"aggifyd_request_latency_p50_micros", "Median request latency upper bound (us).", "gauge", st.P50Micros},
		{"aggifyd_request_latency_p99_micros", "P99 request latency upper bound (us).", "gauge", st.P99Micros},
		{"aggifyd_slow_requests_total", "Requests over the slow-query threshold.", "counter", st.SlowCount},
		{"aggifyd_traces_started_total", "Locally-rooted traces sampled.", "counter", tc.TracesStarted},
		{"aggifyd_traces_joined_total", "Client trace contexts joined.", "counter", tc.TracesJoined},
		{"aggifyd_spans_recorded_total", "Completed spans recorded.", "counter", tc.SpansRecorded},
		{"aggifyd_spans_dropped_total", "Spans evicted from the ring unread.", "counter", tc.SpansDropped},
		{"aggifyd_txn_begins_total", "Transactions begun (explicit and implicit).", "counter", txc.Begins},
		{"aggifyd_txn_commits_total", "Transactions committed.", "counter", txc.Commits},
		{"aggifyd_txn_rollbacks_total", "Transactions rolled back.", "counter", txc.Rollbacks},
		{"aggifyd_txn_conflicts_total", "First-committer-wins write conflicts.", "counter", txc.Conflicts},
		{"aggifyd_checkpoints_total", "WAL checkpoints completed.", "counter", eng.Checkpoints()},
		{"aggifyd_stmt_fingerprints", "Distinct statement fingerprints tracked.", "gauge", int64(stmts.Len())},
		{"aggifyd_stmt_evictions_total", "Fingerprint entries evicted from the stats store.", "counter", stmts.Evictions()},
	}
	var walBytes, walSynced, walRecords, walFsyncs int64
	if ws, _, ok := eng.WALStats(); ok {
		walBytes, walSynced = int64(ws.AppendedBytes), int64(ws.SyncedBytes)
		walRecords, walFsyncs = ws.Records, ws.Fsyncs
	}
	defs = append(defs,
		metricDef{"aggifyd_wal_bytes_total", "WAL bytes appended.", "counter", walBytes},
		metricDef{"aggifyd_wal_synced_bytes_total", "WAL bytes durably synced.", "counter", walSynced},
		metricDef{"aggifyd_wal_records_total", "WAL records appended.", "counter", walRecords},
		metricDef{"aggifyd_wal_fsyncs_total", "WAL fsync calls.", "counter", walFsyncs},
	)
	// One counter per stable Aggify rejection code: how often the rewrite
	// analysis rejected (or, for unmatched_pattern, never attempted) a
	// cursor loop in this process. Every code is always present,
	// zero-valued, so dashboards can alert on shape changes.
	counts := core.ReasonCounts()
	for _, code := range core.AllReasonCodes() {
		defs = append(defs, metricDef{
			"aggifyd_aggify_reject_" + string(code) + "_total",
			"Cursor loops not aggified with reason code " + string(code) + ".",
			"counter", counts[code],
		})
	}
	return defs
}

// metricsTopK bounds the per-fingerprint statement series on /metrics. The
// full store is SQL-queryable via aggify_stat_statements; the exposition
// only carries the heaviest statements by total wall time.
const metricsTopK = 10

// handleMetrics renders the Prometheus text exposition format by hand — the
// format is three lines per metric and not worth a dependency.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf []byte
	for _, d := range s.metricDefs() {
		buf = append(buf, "# HELP "+d.name+" "+d.help+"\n# TYPE "+d.name+" "+d.kind+"\n"+d.name+" "...)
		buf = strconv.AppendInt(buf, d.value, 10)
		buf = append(buf, '\n')
	}
	rows := s.eng.StmtStatsStore().Snapshot()
	sort.Slice(rows, func(i, j int) bool { return rows[i].TotalMicros > rows[j].TotalMicros })
	if len(rows) > metricsTopK {
		rows = rows[:metricsTopK]
	}
	stmtSeries := []struct {
		name, help string
		value      func(r engine.StmtStatRow) int64
	}{
		{"aggifyd_stmt_calls_total", "Statement executions by fingerprint.", func(r engine.StmtStatRow) int64 { return r.Calls }},
		{"aggifyd_stmt_micros_total", "Statement wall time by fingerprint (us).", func(r engine.StmtStatRow) int64 { return r.TotalMicros }},
		{"aggifyd_stmt_rows_total", "Rows returned by fingerprint.", func(r engine.StmtStatRow) int64 { return r.Rows }},
		{"aggifyd_stmt_logical_reads_total", "Logical reads by fingerprint.", func(r engine.StmtStatRow) int64 { return r.LogicalReads }},
	}
	for _, series := range stmtSeries {
		if len(rows) == 0 {
			break
		}
		buf = append(buf, "# HELP "+series.name+" "+series.help+"\n# TYPE "+series.name+" counter\n"...)
		for _, r := range rows {
			buf = append(buf, series.name+`{fingerprint="`...)
			buf = append(buf, fmt.Sprintf("%016x", r.Fingerprint)...)
			buf = append(buf, `"} `...)
			buf = strconv.AppendInt(buf, series.value(r), 10)
			buf = append(buf, '\n')
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf)
}

// handleTraces renders the tracer's recent traces as a JSON array, most
// recent trace first, each span in the schema of trace.AppendSpanJSON.
// ?limit=N bounds the number of traces returned.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	views := s.Tracer.Traces()
	if lim, err := strconv.Atoi(r.URL.Query().Get("limit")); err == nil && lim >= 0 && lim < len(views) {
		views = views[:lim]
	}
	buf := []byte{'['}
	for i, v := range views {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"trace":"`...)
		buf = append(buf, trace.FormatID(v.Trace)...)
		buf = append(buf, `","spans":[`...)
		for j, sp := range v.Spans {
			if j > 0 {
				buf = append(buf, ',')
			}
			buf = trace.AppendSpanJSON(buf, sp)
		}
		buf = append(buf, `]}`...)
	}
	buf = append(buf, ']', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
}
