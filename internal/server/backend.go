// Package server is the aggifyd daemon: a concurrent TCP server exposing
// the engine over the length-prefixed binary protocol of internal/wire.
// Each connection gets its own engine session (temp tables, statistics,
// PRINT buffer) plus per-connection prepared statements and server-side
// cursors, so round trips and data movement are real rather than simulated
// — the client/server boundary the paper's Figure 8 experiments measure.
package server

import (
	"fmt"

	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
	"aggify/internal/trace"
	"aggify/internal/wire"
)

// Backend is the per-connection protocol state machine: one engine session,
// the connection's prepared statements, and its open server-side cursors.
// A Backend is driven by a single goroutine (the connection handler, or the
// in-process transport) and is not safe for concurrent use; concurrency
// across connections comes from each having its own Backend.
type Backend struct {
	sess       *engine.Session
	stmts      map[uint32]preparedStmt
	cursors    map[uint32]*cursor
	nextStmt   uint32
	nextCursor uint32

	// cursorGauge, when set, is called with +1/-1 as cursors open and close
	// (the server's open-cursor gauge).
	cursorGauge func(delta int64)

	// Tracer, when set, records parse/plan/execute/fetch spans under the
	// parent installed by SetTraceParent for the current request.
	Tracer *trace.Tracer
	parent trace.SpanContext
}

// preparedStmt keeps the parsed query together with its source text, so
// executions can be attributed to the statement's fingerprint.
type preparedStmt struct {
	q   *ast.Select
	src string
}

// cursor is a materialized result handed out in fetch-sized batches. The
// engine runs queries to completion (rows spool like a cursor worktable);
// the cursor meters their transfer to the client.
type cursor struct {
	cols []string
	rows [][]sqltypes.Value
	pos  int
}

// NewBackend opens a fresh session against the engine.
func NewBackend(eng *engine.Engine) *Backend {
	return &Backend{
		sess:    eng.NewSession(),
		stmts:   map[uint32]preparedStmt{},
		cursors: map[uint32]*cursor{},
	}
}

// Session exposes the backend's engine session (statistics, options).
func (b *Backend) Session() *engine.Session { return b.sess }

// SetTraceParent scopes the backend's spans (and the session's plan/execute
// spans) to one request. A zero context disables them. The caller drives
// the backend from a single goroutine, so a plain field write suffices.
func (b *Backend) SetTraceParent(ctx trace.SpanContext) {
	b.parent = ctx
	b.sess.Tracer = b.Tracer
	b.sess.TraceParent = ctx
}

// span opens a child span of the current request (disabled when untraced).
func (b *Backend) span(name string) trace.Span {
	return b.Tracer.StartSpan(b.parent, name)
}

// OpenCursors returns the number of cursors currently held.
func (b *Backend) OpenCursors() int { return len(b.cursors) }

// Exec parses and runs a script batch, returning PRINT output and any
// top-level result sets.
func (b *Backend) Exec(src string) (*wire.ExecResult, error) {
	psp := b.span("server.parse")
	stmts, spans, err := parser.ParseSpans(src)
	psp.SetAttrInt("statements", int64(len(stmts)))
	psp.End()
	if err != nil {
		return nil, err
	}
	ssp := b.span("server.script")
	sets, err := interp.RunScriptSpans(b.sess, src, stmts, spans)
	ssp.SetAttrInt("result_sets", int64(len(sets)))
	ssp.End()
	res := &wire.ExecResult{Prints: b.sess.Prints()}
	if err != nil {
		return nil, err
	}
	for _, s := range sets {
		res.Sets = append(res.Sets, wire.ResultSet{Columns: s.Columns, Rows: s.Rows})
	}
	return res, nil
}

// Prepare parses a single SELECT (with '?' placeholders) and returns its
// statement id.
func (b *Backend) Prepare(src string) (uint32, error) {
	stmts, err := parser.Parse(src)
	if err != nil {
		return 0, err
	}
	if len(stmts) != 1 {
		return 0, fmt.Errorf("server: Prepare expects a single statement")
	}
	qs, ok := stmts[0].(*ast.QueryStmt)
	if !ok {
		return 0, fmt.Errorf("server: Prepare expects a SELECT")
	}
	b.nextStmt++
	b.stmts[b.nextStmt] = preparedStmt{q: qs.Query, src: src}
	return b.nextStmt, nil
}

// Query executes a prepared statement and opens a server-side cursor over
// its full result. No rows travel yet: the client pulls them with Fetch.
func (b *Backend) Query(stmtID uint32, args []sqltypes.Value) (uint32, []string, error) {
	ps, ok := b.stmts[stmtID]
	if !ok {
		return 0, nil, fmt.Errorf("server: unknown statement %d", stmtID)
	}
	ctx := b.sess.Ctx(nil, nil)
	ctx.Params = args
	rec := b.sess.BeginStmt(ps.src)
	cols, rows, err := b.sess.Query(ps.q, ctx)
	b.sess.EndStmt(rec, err)
	if err != nil {
		return 0, nil, err
	}
	b.nextCursor++
	b.cursors[b.nextCursor] = &cursor{cols: cols, rows: rows}
	b.sess.NoteCursorOpen(1)
	if b.cursorGauge != nil {
		b.cursorGauge(1)
	}
	return b.nextCursor, cols, nil
}

// Fetch returns the next batch of at most maxRows rows. done reports the
// cursor exhausted; an exhausted cursor is released immediately, so a full
// scan never needs a CloseCursor round trip.
func (b *Backend) Fetch(cursorID uint32, maxRows int) ([][]sqltypes.Value, bool, error) {
	c, ok := b.cursors[cursorID]
	if !ok {
		// Cursor ids are handed out sequentially, so an id at or below the
		// high-water mark names a cursor this connection once held: it was
		// released, either by an explicit close or by the fetch that
		// exhausted it (done=true).
		if cursorID > 0 && cursorID <= b.nextCursor {
			return nil, false, fmt.Errorf("server: cursor %d already released (closed or exhausted)", cursorID)
		}
		return nil, false, fmt.Errorf("server: unknown cursor %d", cursorID)
	}
	if maxRows < 1 {
		maxRows = 1
	}
	sp := b.span("server.fetch")
	hi := c.pos + maxRows
	if hi > len(c.rows) {
		hi = len(c.rows)
	}
	batch := c.rows[c.pos:hi]
	c.pos = hi
	done := c.pos >= len(c.rows)
	if done {
		b.releaseCursor(cursorID)
	}
	sp.SetAttrInt("cursor", int64(cursorID))
	sp.SetAttrInt("rows", int64(len(batch)))
	if done {
		sp.SetAttrInt("done", 1)
	}
	sp.End()
	return batch, done, nil
}

// CloseCursor releases a cursor early; its unfetched rows are never
// transferred. Closing an unknown (or already-exhausted) cursor is not an
// error, mirroring lenient driver semantics.
func (b *Backend) CloseCursor(cursorID uint32) error {
	b.releaseCursor(cursorID)
	return nil
}

func (b *Backend) releaseCursor(cursorID uint32) {
	if _, ok := b.cursors[cursorID]; !ok {
		return
	}
	delete(b.cursors, cursorID)
	b.sess.NoteCursorOpen(-1)
	if b.cursorGauge != nil {
		b.cursorGauge(-1)
	}
}

// Close releases all cursors and statements and closes the engine session
// (connection teardown). Closing the session rolls back any explicit
// transaction the connection left open, so a dropped client can never
// leave uncommitted versions pinning the vacuum horizon.
func (b *Backend) Close() {
	for id := range b.cursors {
		b.releaseCursor(id)
	}
	b.stmts = map[uint32]preparedStmt{}
	b.sess.Close()
}
