package server_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"aggify/internal/client"
	"aggify/internal/wire"
)

// TestSnapshotHammerOverTCP is the concurrency gauntlet for the MVCC
// subsystem, run under the race detector by scripts/ci.sh: reader
// connections continuously scan and aggregate over TCP while writer
// connections mutate the same table. Every reader result must be exactly
// what a serial execution at the reader's pinned epoch would produce:
//
//   - each committed update writes v=k to every row atomically, so a
//     snapshot either sees all rows at k or none (min==max, sum==min*count);
//   - two aggregations inside one explicit transaction read the same epoch
//     (repeatable read);
//   - the pairs table only ever gains rows two at a time inside one
//     explicit transaction, so its count is even at every epoch.
//
// A torn scan, a read through a half-committed epoch, or a cursor drifting
// off its snapshot breaks one of these immediately.
func TestSnapshotHammerOverTCP(t *testing.T) {
	const (
		accts       = 32
		updateTurns = 40
		pairTurns   = 40
		readers     = 3
		writeConns  = 2
	)
	_, _, addr := startServer(t)

	setup, err := client.Dial(addr, wire.LAN)
	if err != nil {
		t.Fatal(err)
	}
	var ins strings.Builder
	ins.WriteString("create table acct (id int, v int);\ncreate table pairs (x int);\ninsert into acct values ")
	for i := 0; i < accts; i++ {
		if i > 0 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, 0)", i)
	}
	ins.WriteString(";")
	if err := setup.Exec(ins.String()); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	var (
		wg           sync.WaitGroup
		writersDone  = make(chan struct{})
		commits      atomic.Int64
		readsChecked atomic.Int64
	)

	// Full-table update writers: each committed statement moves every row
	// to the same new value in one epoch. Conflicts between the two writers
	// are expected (first committer wins); exhausted retries are tolerated,
	// other errors are not.
	var writerWG sync.WaitGroup
	for w := 0; w < writeConns; w++ {
		wg.Add(1)
		writerWG.Add(1)
		go func() {
			defer wg.Done()
			defer writerWG.Done()
			conn, err := client.Dial(addr, wire.LAN)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for i := 0; i < updateTurns; i++ {
				err := conn.Exec("update acct set v = v + 1;")
				switch {
				case err == nil:
					commits.Add(1)
				case strings.Contains(err.Error(), "write conflict"):
					// lost the race after all retries; fine
				default:
					t.Errorf("update writer: %v", err)
					return
				}
			}
		}()
	}
	// Pair writer: rows only appear two at a time, atomically.
	wg.Add(1)
	writerWG.Add(1)
	go func() {
		defer wg.Done()
		defer writerWG.Done()
		conn, err := client.Dial(addr, wire.LAN)
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		for i := 0; i < pairTurns; i++ {
			script := fmt.Sprintf(
				"begin transaction; insert into pairs values (%d); insert into pairs values (%d); commit;", i, i)
			if err := conn.Exec(script); err != nil {
				t.Errorf("pair writer: %v", err)
				return
			}
		}
	}()
	go func() {
		writerWG.Wait()
		close(writersDone)
	}()

	readerScript := `
begin transaction;
select min(v) as mn, max(v) as mx, sum(v) as sm, count(*) as cnt from acct;
select sum(v) as sm2 from acct;
select count(*) as pc from pairs;
commit;
`
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := client.Dial(addr, wire.LAN)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for done := false; !done; {
				select {
				case <-writersDone:
					done = true // one final pass after the writers stop
				default:
				}
				res, err := conn.ExecResults(readerScript)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if len(res.Sets) != 3 {
					t.Errorf("reader got %d result sets", len(res.Sets))
					return
				}
				agg := res.Sets[0].Rows[0]
				mn, mx, sm, cnt := agg[0].Int(), agg[1].Int(), agg[2].Int(), agg[3].Int()
				if cnt != accts {
					t.Errorf("reader saw %d rows, want %d", cnt, accts)
					return
				}
				if mn != mx || sm != mn*cnt {
					t.Errorf("torn snapshot: min=%d max=%d sum=%d (serial execution at one epoch has all rows equal)", mn, mx, sm)
					return
				}
				if sm2 := res.Sets[1].Rows[0][0].Int(); sm2 != sm {
					t.Errorf("non-repeatable read inside txn: sum=%d then %d", sm, sm2)
					return
				}
				if pc := res.Sets[2].Rows[0][0].Int(); pc%2 != 0 {
					t.Errorf("pairs count %d is odd: explicit txn published half its writes", pc)
					return
				}
				readsChecked.Add(1)
			}
		}()
	}

	wg.Wait()
	if commits.Load() == 0 {
		t.Fatal("no update writer ever committed")
	}
	if readsChecked.Load() == 0 {
		t.Fatal("no reader iteration completed")
	}
	t.Logf("hammer: %d committed full-table updates, %d verified reader snapshots", commits.Load(), readsChecked.Load())
}
