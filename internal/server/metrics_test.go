package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"aggify/internal/wire"
)

// TestPercentilesEmptyHistogramZero: with no samples recorded, p50 and p99
// must both be 0, not a garbage bucket bound.
func TestPercentilesEmptyHistogramZero(t *testing.T) {
	var m Metrics
	st := m.Snapshot(0)
	if st.P50Micros != 0 || st.P99Micros != 0 {
		t.Fatalf("empty histogram percentiles = p50=%d p99=%d, want 0/0", st.P50Micros, st.P99Micros)
	}
}

func TestPercentilesSingleSample(t *testing.T) {
	var m Metrics
	m.record(wire.MsgExec, 100*time.Microsecond, 10, 10, nil, 0)
	st := m.Snapshot(0)
	// 100µs needs 7 bits, so both percentiles report the 2^7 bucket bound.
	if st.P50Micros != 128 || st.P99Micros != 128 {
		t.Fatalf("p50=%d p99=%d, want 128/128", st.P50Micros, st.P99Micros)
	}
}

func TestPercentilesOrdered(t *testing.T) {
	var m Metrics
	for i := 0; i < 98; i++ {
		m.record(wire.MsgExec, 10*time.Microsecond, 1, 1, nil, 0)
	}
	m.record(wire.MsgExec, 10*time.Millisecond, 1, 1, nil, 0)
	m.record(wire.MsgExec, 10*time.Millisecond, 1, 1, nil, 0)
	st := m.Snapshot(0)
	if st.P50Micros > st.P99Micros {
		t.Fatalf("p50=%d > p99=%d", st.P50Micros, st.P99Micros)
	}
	if st.P50Micros != 16 {
		t.Fatalf("p50 = %d, want 16", st.P50Micros)
	}
	if st.P99Micros < 1<<13 {
		t.Fatalf("p99 = %d, want the slow tail visible", st.P99Micros)
	}
}

// TestSlowSummaryTruncatesOversizedStatement: an Exec whose normalized
// template is still huge must leave only ~summaryBudget bytes in the
// slow-query ring.
func TestSlowSummaryTruncatesOversizedStatement(t *testing.T) {
	var m Metrics
	huge := []byte("select " + strings.Repeat("x", 4<<20) + " from t")
	m.record(wire.MsgExec, time.Second, len(huge), 10, huge, time.Millisecond)
	st := m.Snapshot(0)
	if len(st.Slow) != 1 {
		t.Fatalf("slow entries = %d, want 1", len(st.Slow))
	}
	s := st.Slow[0].Summary
	if len(s) > summaryBudget+len("...") {
		t.Fatalf("summary length %d exceeds budget %d", len(s), summaryBudget)
	}
	if !strings.HasPrefix(s, "select x") || !strings.HasSuffix(s, "...") {
		t.Fatalf("summary mangled: %.40q...%q", s, s[len(s)-8:])
	}
}

// TestSlowSummaryNormalized: ring entries carry the normalized template
// (literals collapsed) plus its fingerprint.
func TestSlowSummaryNormalized(t *testing.T) {
	var m Metrics
	m.record(wire.MsgExec, time.Second, 8, 8, []byte("select 1"), time.Millisecond)
	st := m.Snapshot(0)
	if len(st.Slow) != 1 || st.Slow[0].Summary != "select ?" {
		t.Fatalf("slow = %+v", st.Slow)
	}
	if st.Slow[0].Fingerprint == 0 || st.Slow[0].Count != 1 {
		t.Fatalf("slow entry missing fingerprint/count: %+v", st.Slow[0])
	}
}

// TestSlowRingFoldsByFingerprint: repeated slow executions of the same
// statement shape fold into one entry with the worst latency and a count,
// regardless of literal values.
func TestSlowRingFoldsByFingerprint(t *testing.T) {
	var m Metrics
	m.record(wire.MsgExec, time.Second, 8, 8, []byte("select 1"), time.Millisecond)
	m.record(wire.MsgExec, 3*time.Second, 8, 8, []byte("select 42"), time.Millisecond)
	m.record(wire.MsgExec, 2*time.Second, 8, 8, []byte("SELECT  7"), time.Millisecond)
	st := m.Snapshot(0)
	if len(st.Slow) != 1 {
		t.Fatalf("slow entries = %d, want 1 folded: %+v", len(st.Slow), st.Slow)
	}
	sq := st.Slow[0]
	if sq.Count != 3 || sq.Micros != (3*time.Second).Microseconds() {
		t.Fatalf("folded entry = %+v, want count=3 micros=worst", sq)
	}
	if st.SlowCount != 3 {
		t.Fatalf("SlowCount = %d, want 3", st.SlowCount)
	}
}

func TestFastRequestSkipsSlowRing(t *testing.T) {
	var m Metrics
	m.record(wire.MsgExec, time.Microsecond, 8, 8, []byte("select 1"), time.Second)
	st := m.Snapshot(0)
	if len(st.Slow) != 0 || st.SlowCount != 0 {
		t.Fatalf("fast request entered slow ring: %+v", st.Slow)
	}
}

func TestSlowRingBounded(t *testing.T) {
	var m Metrics
	for i := 0; i < slowLogSize*3; i++ {
		// Distinct statement shapes so entries cannot fold.
		src := fmt.Sprintf("select c%d from t", i)
		m.record(wire.MsgExec, time.Second, 8, 8, []byte(src), time.Millisecond)
	}
	st := m.Snapshot(0)
	if len(st.Slow) != slowLogSize {
		t.Fatalf("ring size = %d, want %d", len(st.Slow), slowLogSize)
	}
	if st.SlowCount != slowLogSize*3 {
		t.Fatalf("SlowCount = %d, want %d", st.SlowCount, slowLogSize*3)
	}
}

// TestMetricsConcurrentHammer records from many goroutines while snapshots
// stream, asserting every snapshot is internally consistent: typed counters
// never exceed the request total, percentiles stay ordered, and the final
// totals are exact. Run with -race, this is also the registry's data-race
// guard.
func TestMetricsConcurrentHammer(t *testing.T) {
	var m Metrics
	const writers, perW = 8, 500
	body := []byte("select n from nums")
	var writersWG sync.WaitGroup
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	var snapErr error
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := m.Snapshot(3)
			if sum := st.Execs + st.Queries + st.Fetches; sum > st.Requests {
				snapErr = fmt.Errorf("snapshot: execs+queries+fetches = %d exceeds requests = %d", sum, st.Requests)
				return
			}
			if st.P50Micros > st.P99Micros {
				snapErr = fmt.Errorf("snapshot: p50 = %d > p99 = %d", st.P50Micros, st.P99Micros)
				return
			}
		}
	}()
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(g int) {
			defer writersWG.Done()
			types := []wire.MsgType{wire.MsgExec, wire.MsgQuery, wire.MsgFetch, wire.MsgStats}
			for i := 0; i < perW; i++ {
				d := time.Duration(1+i%1000) * time.Microsecond
				m.record(types[(g+i)%len(types)], d, 10, 20, body, 500*time.Microsecond)
			}
		}(g)
	}
	writersWG.Wait()
	close(stop)
	<-snapDone
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	st := m.Snapshot(0)
	if st.Requests != writers*perW {
		t.Fatalf("Requests = %d, want %d", st.Requests, writers*perW)
	}
	if st.BytesIn != writers*perW*10 || st.BytesOut != writers*perW*20 {
		t.Fatalf("bytes = %d/%d", st.BytesIn, st.BytesOut)
	}
	if sum := st.Execs + st.Queries + st.Fetches; sum != writers*perW*3/4 {
		t.Fatalf("typed sum = %d, want %d", sum, writers*perW*3/4)
	}
}
