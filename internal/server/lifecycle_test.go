package server_test

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"aggify/internal/client"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/server"
	"aggify/internal/wire"
)

// rawRoundTrip drives the binary protocol over a bare net.Conn, for tests
// that need protocol-level control the driver API hides (abrupt drops,
// fetches on released cursors).
func rawRoundTrip(t *testing.T, c net.Conn, typ wire.MsgType, body []byte) (wire.MsgType, []byte) {
	t.Helper()
	if _, err := wire.WriteFrame(c, typ, body); err != nil {
		t.Fatal(err)
	}
	respT, respB, _, err := wire.ReadFrame(c)
	if err != nil {
		t.Fatal(err)
	}
	return respT, respB
}

func mustOK(t *testing.T, typ wire.MsgType, body []byte, want wire.MsgType) []byte {
	t.Helper()
	if typ == wire.MsgError {
		t.Fatalf("server error: %s", body)
	}
	if typ != want {
		t.Fatalf("response type 0x%02x, want 0x%02x", byte(typ), byte(want))
	}
	return body
}

func TestDroppedConnectionReleasesCursors(t *testing.T) {
	_, srv, addr := startServer(t)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	typ, body := rawRoundTrip(t, c, wire.MsgExec,
		[]byte("create table t (n int); insert into t values (1),(2),(3),(4),(5);"))
	mustOK(t, typ, body, wire.MsgResults)
	typ, body = rawRoundTrip(t, c, wire.MsgPrepare, []byte("select n from t"))
	stmtID, err := wire.DecodeStmtResp(mustOK(t, typ, body, wire.MsgStmt))
	if err != nil {
		t.Fatal(err)
	}
	// Open two cursors and fetch only partially: both stay open server-side.
	for i := 0; i < 2; i++ {
		typ, body = rawRoundTrip(t, c, wire.MsgQuery, wire.EncodeQueryReq(stmtID, nil))
		curID, _, err := wire.DecodeCursorResp(mustOK(t, typ, body, wire.MsgCursor))
		if err != nil {
			t.Fatal(err)
		}
		typ, body = rawRoundTrip(t, c, wire.MsgFetch, wire.EncodeFetchReq(curID, 2))
		mustOK(t, typ, body, wire.MsgRows)
	}
	if got := srv.OpenCursors(); got != 2 {
		t.Fatalf("open cursors = %d, want 2", got)
	}
	// Drop the TCP connection without MsgQuit or MsgCloseCursor: the
	// server's connection teardown must return the gauge to zero.
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.OpenCursors() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("open cursors stuck at %d after connection drop", srv.OpenCursors())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFetchOnReleasedCursorFailsClearly(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	typ, body := rawRoundTrip(t, c, wire.MsgExec,
		[]byte("create table t (n int); insert into t values (1),(2);"))
	mustOK(t, typ, body, wire.MsgResults)
	typ, body = rawRoundTrip(t, c, wire.MsgPrepare, []byte("select n from t"))
	stmtID, err := wire.DecodeStmtResp(mustOK(t, typ, body, wire.MsgStmt))
	if err != nil {
		t.Fatal(err)
	}
	typ, body = rawRoundTrip(t, c, wire.MsgQuery, wire.EncodeQueryReq(stmtID, nil))
	curID, _, err := wire.DecodeCursorResp(mustOK(t, typ, body, wire.MsgCursor))
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust the cursor: done=true auto-releases it server-side.
	typ, body = rawRoundTrip(t, c, wire.MsgFetch, wire.EncodeFetchReq(curID, 100))
	rows, done, err := wire.DecodeRowsResp(mustOK(t, typ, body, wire.MsgRows))
	if err != nil || !done || len(rows) != 2 {
		t.Fatalf("fetch: rows=%d done=%v err=%v", len(rows), done, err)
	}
	// A further FETCH must fail with a released-cursor error — a protocol
	// error frame, not a codec failure or a generic unknown-id message.
	typ, body = rawRoundTrip(t, c, wire.MsgFetch, wire.EncodeFetchReq(curID, 100))
	if typ != wire.MsgError {
		t.Fatalf("fetch on released cursor: response type 0x%02x, want MsgError", byte(typ))
	}
	if !strings.Contains(string(body), "already released") {
		t.Fatalf("error %q should say the cursor was already released", body)
	}
	// A never-issued id is a different failure.
	typ, body = rawRoundTrip(t, c, wire.MsgFetch, wire.EncodeFetchReq(9999, 1))
	if typ != wire.MsgError || !strings.Contains(string(body), "unknown cursor") {
		t.Fatalf("fetch on unknown cursor: type=0x%02x err=%q", byte(typ), body)
	}
	// The connection survives protocol errors.
	typ, body = rawRoundTrip(t, c, wire.MsgQuery, wire.EncodeQueryReq(stmtID, nil))
	mustOK(t, typ, body, wire.MsgCursor)
}

func TestServerMetricsOverSocket(t *testing.T) {
	eng := engine.New()
	interp.Install(eng)
	srv := server.New(eng)
	srv.SlowThreshold = time.Nanosecond // everything is slow
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	}()

	conn, err := client.Dial(lis.Addr().String(), wire.LAN)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Exec("create table t (n int); insert into t values (1),(2),(3);"); err != nil {
		t.Fatal(err)
	}
	stmt, err := conn.Prepare("select n from t order by n")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	for rs.Next() {
	}
	rs.Close()

	st, err := conn.ServerMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if st.Connections != 1 {
		t.Errorf("connections = %d", st.Connections)
	}
	if st.Execs != 1 || st.Queries != 1 || st.Fetches < 1 {
		t.Errorf("execs=%d queries=%d fetches=%d", st.Execs, st.Queries, st.Fetches)
	}
	if st.CursorsOpened != 1 || st.OpenCursors != 0 {
		t.Errorf("cursors opened=%d open=%d", st.CursorsOpened, st.OpenCursors)
	}
	if st.BytesIn <= 0 || st.BytesOut <= 0 {
		t.Errorf("bytes in=%d out=%d", st.BytesIn, st.BytesOut)
	}
	// Requests so far: exec + prepare + query + fetch(es); the stats
	// request itself is recorded after its own reply is assembled.
	if st.Requests < 4 {
		t.Errorf("requests = %d", st.Requests)
	}
	if st.P50Micros <= 0 || st.P99Micros < st.P50Micros {
		t.Errorf("p50=%d p99=%d", st.P50Micros, st.P99Micros)
	}
	if st.SlowCount < 4 || len(st.Slow) == 0 {
		t.Errorf("slow count=%d entries=%d", st.SlowCount, len(st.Slow))
	}
	var sawExec bool
	for _, sq := range st.Slow {
		if strings.Contains(sq.Summary, "create table t") {
			sawExec = true
		}
	}
	if !sawExec {
		t.Errorf("slow log %v should contain the exec script", st.Slow)
	}
	// Round trip through the codec is loss-free (server-side view matches
	// what the client decoded, modulo requests recorded since).
	direct := srv.Stats()
	if direct.Execs != st.Execs || direct.CursorsOpened != st.CursorsOpened {
		t.Errorf("direct stats %+v != wire stats %+v", direct, st)
	}

	// The in-process transport has no server registry: asking for server
	// metrics must fail loudly, not return zeros.
	inproc := client.Connect(eng, wire.LAN)
	if _, err := inproc.ServerMetrics(); err == nil {
		t.Error("in-process ServerMetrics must error")
	}
}
