package server_test

import (
	"fmt"
	"strings"
	"testing"

	"aggify/internal/client"
	"aggify/internal/wire"
)

// TestPlanCacheWarmHitOverTCP: the same query over the wire must hit the
// server's text-keyed plan cache on the second run and stream back a
// byte-identical result set.
func TestPlanCacheWarmHitOverTCP(t *testing.T) {
	eng, _, addr := startServer(t)
	conn, err := client.Dial(addr, wire.LAN)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var setup strings.Builder
	setup.WriteString("create table pct (k int, v int);\n")
	setup.WriteString("create index idx_pct on pct(k) using ordered;\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&setup, "insert into pct values (%d, %d);\n", i, i*7)
	}
	if err := conn.Exec(setup.String()); err != nil {
		t.Fatal(err)
	}

	fetch := func() string {
		t.Helper()
		stmt, err := conn.Prepare("select k, v from pct where k >= 190 order by k")
		if err != nil {
			t.Fatal(err)
		}
		rs, err := stmt.Query()
		if err != nil {
			t.Fatal(err)
		}
		defer rs.Close()
		var b strings.Builder
		b.WriteString(strings.Join(rs.Columns(), "|"))
		for rs.Next() {
			b.WriteByte('\n')
			for i, v := range rs.Row() {
				if i > 0 {
					b.WriteByte('|')
				}
				b.WriteString(v.Display())
			}
		}
		if err := rs.Err(); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	cold := fetch()
	if eng.PlanCacheLen() == 0 {
		t.Fatal("query over TCP did not populate the server's plan cache")
	}
	for i := 0; i < 3; i++ {
		if warm := fetch(); warm != cold {
			t.Fatalf("warm run %d not byte-identical:\ncold:\n%s\nwarm:\n%s", i, cold, warm)
		}
	}
	if !strings.Contains(cold, "199") {
		t.Fatalf("result set missing expected rows:\n%s", cold)
	}
}
