package server_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"aggify/internal/client"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/server"
	"aggify/internal/sqltypes"
	"aggify/internal/testutil"
	"aggify/internal/wire"
)

// startServer serves a fresh engine on loopback and returns it with a
// dialable address. opts run before the listener opens (install a tracer,
// set thresholds); Cleanup drains the server.
func startServer(t *testing.T, opts ...func(*server.Server)) (*engine.Engine, *server.Server, string) {
	t.Helper()
	// Registered before the shutdown cleanup below, so it runs after it
	// (cleanups are LIFO): no connection handler or exchange worker may
	// survive the drain.
	testutil.VerifyNoLeaks(t)
	eng := engine.New()
	interp.Install(eng)
	srv := server.New(eng)
	for _, o := range opts {
		o(srv)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != server.ErrServerClosed {
			t.Errorf("serve returned %v", err)
		}
	})
	return eng, srv, lis.Addr().String()
}

func TestServerQueryOverTCP(t *testing.T) {
	_, _, addr := startServer(t)
	conn, err := client.Dial(addr, wire.LAN)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Exec(`
create table nums (n int, label varchar(10));
insert into nums values (1, 'one'), (2, 'two'), (3, null);
print 'loaded';
`); err != nil {
		t.Fatal(err)
	}
	if p := conn.Prints(); len(p) != 1 || p[0] != "loaded" {
		t.Fatalf("prints = %v", p)
	}
	stmt, err := conn.Prepare("select n, label from nums where n >= ? order by n")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := stmt.Query(sqltypes.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	var ns []int64
	var labels []string
	for rs.Next() {
		ns = append(ns, rs.Int64("n"))
		labels = append(labels, rs.String("label"))
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	rs.Close()
	if fmt.Sprint(ns) != "[2 3]" || fmt.Sprint(labels) != "[two ]" {
		t.Fatalf("ns=%v labels=%q", ns, labels)
	}
	// Server-side errors come back as protocol errors, connection survives.
	if _, err := conn.Prepare("not sql at all"); err == nil {
		t.Fatal("expected parse error")
	}
	bad, err := conn.Prepare("select * from missing_table")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Query(); err == nil {
		t.Fatal("expected error for missing table")
	}
	if _, err := stmt.Query(sqltypes.NewInt(1)); err != nil {
		t.Fatalf("connection unusable after error: %v", err)
	}
}

func TestServerCursorReleasedOnEarlyClose(t *testing.T) {
	_, srv, addr := startServer(t)
	conn, err := client.Dial(addr, wire.LAN)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Exec("create table t (n int)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := conn.Exec("insert into t values (1),(2),(3),(4),(5)"); err != nil {
			t.Fatal(err)
		}
	}
	conn.FetchSize = 10
	stmt, err := conn.Prepare("select n from t")
	if err != nil {
		t.Fatal(err)
	}
	conn.ResetMeter()
	rs, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	rs.Next()
	if got := srv.OpenCursors(); got != 1 {
		t.Fatalf("open cursors = %d, want 1", got)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if got := srv.OpenCursors(); got != 0 {
		t.Fatalf("open cursors after close = %d, want 0", got)
	}
	// Only the first batch crossed the socket; the other 90 rows never did.
	if got := conn.Meter().RowsTransferred; got != 10 {
		t.Fatalf("rows transferred = %d, want 10", got)
	}
	// Exhausting a cursor releases it without an explicit close.
	rs2, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rs2.Next() {
		n++
	}
	if n != 100 {
		t.Fatalf("rows = %d", n)
	}
	if got := srv.OpenCursors(); got != 0 {
		t.Fatalf("open cursors after exhaustion = %d, want 0", got)
	}
	if err := rs2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestVirtualMeterMatchesSocketBytes runs the same workload over the
// in-process virtual meter and a live socket and requires identical byte
// and round-trip counts — the virtual §10.6 series priced against reality.
func TestVirtualMeterMatchesSocketBytes(t *testing.T) {
	eng, _, addr := startServer(t)
	setup := client.Connect(eng, wire.LAN)
	if err := setup.Exec(`
create table inv (id int, roi float);
insert into inv values (7, 0.10), (7, 0.05), (7, -0.02), (8, 0.01);
`); err != nil {
		t.Fatal(err)
	}

	workload := func(conn *client.Conn) wire.Meter {
		t.Helper()
		conn.ResetMeter()
		if err := conn.Exec("print 'hello'; select id from inv where id = 8;"); err != nil {
			t.Fatal(err)
		}
		stmt, err := conn.Prepare("select roi from inv where id = ?")
		if err != nil {
			t.Fatal(err)
		}
		rs, err := stmt.Query(sqltypes.NewInt(7))
		if err != nil {
			t.Fatal(err)
		}
		for rs.Next() {
		}
		rs.Close()
		// An error reply is metered too.
		conn.Exec("select broken from nowhere")
		return conn.Meter()
	}

	virtual := workload(client.Connect(eng, wire.LAN))
	sock, err := client.Dial(addr, wire.LAN)
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	real := workload(sock)
	if virtual != real {
		t.Fatalf("virtual meter %+v != socket meter %+v", virtual, real)
	}
	if virtual.RowsTransferred != 4 { // 1 exec result row + 3 fetched
		t.Fatalf("rows transferred = %d", virtual.RowsTransferred)
	}
}

// TestConcurrentClients exercises the engine under many simultaneous
// connections (run with -race).
func TestConcurrentClients(t *testing.T) {
	eng, _, addr := startServer(t)
	setup := client.Connect(eng, wire.LAN)
	if err := setup.Exec(`
create table shared (k int, v int);
insert into shared values (1, 10), (2, 20), (3, 30);
create aggregate sumsq(@x int) returns int as
begin
  fields (@acc int);
  init begin set @acc = 0; end
  accumulate begin set @acc = @acc + @x * @x; end
  terminate begin return @acc; end
end
`); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := client.Dial(addr, wire.LAN)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			// Session-private temp table: no cross-connection interference.
			if err := conn.Exec(fmt.Sprintf(`
create table #mine (n int);
insert into #mine values (%d);
`, w)); err != nil {
				errs <- err
				return
			}
			stmt, err := conn.Prepare("select sumsq(v) from shared where k <= ?")
			if err != nil {
				errs <- err
				return
			}
			mine, err := conn.Prepare("select n from #mine")
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 25; i++ {
				row, err := stmt.QueryRow(sqltypes.NewInt(3))
				if err != nil {
					errs <- err
					return
				}
				if got, _ := row[0].AsInt(); got != 1400 {
					errs <- fmt.Errorf("worker %d: sumsq = %d", w, got)
					return
				}
				row, err = mine.QueryRow()
				if err != nil {
					errs <- err
					return
				}
				if got, _ := row[0].AsInt(); got != int64(w) {
					errs <- fmt.Errorf("worker %d read %d from its temp table", w, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	eng := engine.New()
	interp.Install(eng)
	srv := server.New(eng)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	conn, err := client.Dial(lis.Addr().String(), wire.LAN)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Exec("create table t (n int); insert into t values (1);"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != server.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
	// The drained connection is closed: further requests fail rather than
	// hang.
	if err := conn.Exec("select n from t"); err == nil {
		t.Fatal("request after shutdown must fail")
	}
	// New connections are refused.
	if _, err := client.Dial(lis.Addr().String(), wire.LAN); err == nil {
		t.Fatal("dial after shutdown must fail")
	}
}
