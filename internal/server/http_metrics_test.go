package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"aggify/internal/ast"
	"aggify/internal/core"
	"aggify/internal/engine"
	"aggify/internal/parser"
)

// TestMetricsExposesEveryRegisteredMetric renders /metrics and asserts that
// every metric in the registry actually appears in the exposition — the
// guard that keeps metricDefs and the rendered text from drifting apart as
// counters are added.
func TestMetricsExposesEveryRegisteredMetric(t *testing.T) {
	s := New(engine.New())
	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	s.DebugHandler().ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("/metrics = %d", w.Code)
	}
	body := w.Body.String()
	defs := s.metricDefs()
	if len(defs) == 0 {
		t.Fatal("metricDefs returned no metrics")
	}
	for _, d := range defs {
		if !strings.Contains(body, "\n"+d.name+" ") && !strings.HasPrefix(body, d.name+" ") {
			t.Errorf("/metrics missing sample line for %s", d.name)
		}
		if !strings.Contains(body, "# TYPE "+d.name+" "+d.kind+"\n") {
			t.Errorf("/metrics missing TYPE line for %s (%s)", d.name, d.kind)
		}
		if !strings.Contains(body, "# HELP "+d.name+" ") {
			t.Errorf("/metrics missing HELP line for %s", d.name)
		}
	}
	// The new observability counters must be registered at all.
	for _, want := range []string{
		"aggifyd_txn_begins_total", "aggifyd_txn_commits_total",
		"aggifyd_txn_rollbacks_total", "aggifyd_txn_conflicts_total",
		"aggifyd_wal_bytes_total", "aggifyd_wal_fsyncs_total",
		"aggifyd_checkpoints_total", "aggifyd_stmt_evictions_total",
	} {
		found := false
		for _, d := range defs {
			if d.name == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("metric %s not registered in metricDefs", want)
		}
	}
}

// TestMetricsStatementTopK: after running statements through a backend, the
// exposition carries per-fingerprint series for the hottest statements.
func TestMetricsStatementTopK(t *testing.T) {
	eng := engine.New()
	s := New(eng)
	b := NewBackend(eng)
	defer b.Close()
	if _, err := b.Exec("create table t (n int); insert into t values (1); select n from t"); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	s.DebugHandler().ServeHTTP(w, req)
	body := w.Body.String()
	for _, want := range []string{
		`aggifyd_stmt_calls_total{fingerprint="`,
		`aggifyd_stmt_micros_total{fingerprint="`,
		`aggifyd_stmt_rows_total{fingerprint="`,
		`aggifyd_stmt_logical_reads_total{fingerprint="`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, body)
		}
	}
}

// TestMetricsAggifyRejectCounters: every stable Aggify rejection code gets
// a counter in the exposition, present even at zero, and a rejection
// observed by the core analysis shows up in the rendered value.
func TestMetricsAggifyRejectCounters(t *testing.T) {
	s := New(engine.New())
	render := func() string {
		req := httptest.NewRequest("GET", "/metrics", nil)
		w := httptest.NewRecorder()
		s.DebugHandler().ServeHTTP(w, req)
		return w.Body.String()
	}
	body := render()
	for _, code := range core.AllReasonCodes() {
		name := "aggifyd_aggify_reject_" + string(code) + "_total"
		if !strings.Contains(body, "\n"+name+" ") {
			t.Errorf("/metrics missing %s", name)
		}
	}
	before := core.ReasonCounts()[core.ReasonPersistentDML]
	fn := parser.MustParse(`
create function f() returns int as
begin
  declare @n int;
  declare c cursor for select n from sink;
  open c;
  fetch next from c into @n;
  while @@fetch_status = 0
  begin
    insert into sink values (@n);
    fetch next from c into @n;
  end
  close c;
  deallocate c;
  return 0;
end`)[0].(*ast.CreateFunction)
	if _, res, err := core.TransformFunction(fn, core.Options{}); err != nil || len(res.Skipped) != 1 {
		t.Fatalf("transform: err=%v skipped=%v", err, res.Skipped)
	}
	after := core.ReasonCounts()[core.ReasonPersistentDML]
	if after != before+1 {
		t.Fatalf("persistent_dml counter = %d, want %d", after, before+1)
	}
	if !strings.Contains(render(), fmt.Sprintf("\naggifyd_aggify_reject_persistent_dml_total %d", after)) {
		t.Fatal("rendered counter did not pick up the rejection")
	}
}
