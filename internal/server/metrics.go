package server

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"aggify/internal/wire"
)

// slowLogSize bounds the slow-query ring buffer.
const slowLogSize = 16

// summaryLimit truncates slow-query summaries (script text can be large).
const summaryLimit = 120

// Metrics is the server's query-metrics registry: lifetime request counters,
// traffic totals, a lock-free latency histogram, and a slow-query log. All
// hot-path updates are atomic; only the slow log takes a mutex, and only for
// requests that exceed the threshold.
type Metrics struct {
	connections   atomic.Int64
	requests      atomic.Int64
	execs         atomic.Int64
	queries       atomic.Int64
	fetches       atomic.Int64
	cursorsOpened atomic.Int64
	bytesIn       atomic.Int64
	bytesOut      atomic.Int64
	slowCount     atomic.Int64

	// hist counts requests by latency bucket: bucket i holds requests whose
	// latency in microseconds needs i bits (i.e. latency < 2^i µs), so the
	// derived percentiles are upper bounds accurate to a factor of two.
	hist [64]atomic.Int64

	mu   sync.Mutex
	slow []wire.SlowQuery // ring, newest last
}

// record accounts one served request.
func (m *Metrics) record(typ wire.MsgType, d time.Duration, bytesIn, bytesOut int, summary string, threshold time.Duration) {
	m.requests.Add(1)
	m.bytesIn.Add(int64(bytesIn))
	m.bytesOut.Add(int64(bytesOut))
	switch typ {
	case wire.MsgExec:
		m.execs.Add(1)
	case wire.MsgQuery:
		m.queries.Add(1)
	case wire.MsgFetch:
		m.fetches.Add(1)
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	m.hist[bits.Len64(uint64(us))].Add(1)
	if threshold > 0 && d >= threshold {
		m.slowCount.Add(1)
		if len(summary) > summaryLimit {
			summary = summary[:summaryLimit] + "..."
		}
		m.mu.Lock()
		m.slow = append(m.slow, wire.SlowQuery{Micros: us, Summary: summary})
		if len(m.slow) > slowLogSize {
			m.slow = m.slow[len(m.slow)-slowLogSize:]
		}
		m.mu.Unlock()
	}
}

// percentile returns the upper bound (in µs) of the histogram bucket that
// contains the q-quantile observation (0 when the histogram is empty).
func (m *Metrics) percentile(q float64) int64 {
	var counts [64]int64
	var total int64
	for i := range m.hist {
		counts[i] = m.hist[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i >= 63 {
				return math.MaxInt64
			}
			return int64(1) << i
		}
	}
	return math.MaxInt64
}

// Snapshot assembles the wire-level stats reply. openCursors is the server's
// live cursor gauge (owned by Server, not Metrics).
func (m *Metrics) Snapshot(openCursors int64) *wire.ServerStats {
	m.mu.Lock()
	slow := append([]wire.SlowQuery(nil), m.slow...)
	m.mu.Unlock()
	return &wire.ServerStats{
		Connections:   m.connections.Load(),
		Requests:      m.requests.Load(),
		Execs:         m.execs.Load(),
		Queries:       m.queries.Load(),
		Fetches:       m.fetches.Load(),
		CursorsOpened: m.cursorsOpened.Load(),
		OpenCursors:   openCursors,
		BytesIn:       m.bytesIn.Load(),
		BytesOut:      m.bytesOut.Load(),
		P50Micros:     m.percentile(0.50),
		P99Micros:     m.percentile(0.99),
		SlowCount:     m.slowCount.Load(),
		Slow:          slow,
	}
}

// requestSummary describes a request for the slow-query log.
func requestSummary(typ wire.MsgType, body []byte) string {
	switch typ {
	case wire.MsgExec:
		return string(body)
	case wire.MsgPrepare:
		return "PREPARE " + string(body)
	case wire.MsgQuery:
		if id, _, err := wire.DecodeQueryReq(body); err == nil {
			return fmt.Sprintf("QUERY stmt=%d", id)
		}
		return "QUERY"
	case wire.MsgFetch:
		if id, n, err := wire.DecodeFetchReq(body); err == nil {
			return fmt.Sprintf("FETCH cursor=%d max=%d", id, n)
		}
		return "FETCH"
	case wire.MsgCloseCursor:
		return "CLOSE CURSOR"
	case wire.MsgStats:
		return "STATS"
	default:
		return fmt.Sprintf("msg 0x%02x", byte(typ))
	}
}
