package server

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"aggify/internal/fingerprint"
	"aggify/internal/wire"
)

// slowLogSize bounds the slow-query ring buffer.
const slowLogSize = 16

// summaryBudget caps the bytes of statement text captured per slow-query
// ring entry. Entries hold copies of request text; without a byte budget a
// single pathological multi-MB Exec batch would pin megabytes in the ring
// for as long as the entry survives.
const summaryBudget = 512

// Metrics is the server's query-metrics registry: lifetime request counters,
// traffic totals, a lock-free latency histogram, and a slow-query log. All
// hot-path updates are atomic; only the slow log takes a mutex, and only for
// requests that exceed the threshold.
type Metrics struct {
	connections   atomic.Int64
	requests      atomic.Int64
	execs         atomic.Int64
	queries       atomic.Int64
	fetches       atomic.Int64
	cursorsOpened atomic.Int64
	bytesIn       atomic.Int64
	bytesOut      atomic.Int64
	slowCount     atomic.Int64

	// hist counts requests by latency bucket: bucket i holds requests whose
	// latency in microseconds needs i bits (i.e. latency < 2^i µs), so the
	// derived percentiles are upper bounds accurate to a factor of two.
	hist [64]atomic.Int64

	mu   sync.Mutex
	slow []wire.SlowQuery // ring, newest last
}

// record accounts one served request. body is the raw request body; the
// slow-query summary is derived from it only when the request crosses the
// threshold, so the common path does no summary formatting or allocation.
func (m *Metrics) record(typ wire.MsgType, d time.Duration, bytesIn, bytesOut int, body []byte, threshold time.Duration) {
	m.requests.Add(1)
	m.bytesIn.Add(int64(bytesIn))
	m.bytesOut.Add(int64(bytesOut))
	switch typ {
	case wire.MsgExec:
		m.execs.Add(1)
	case wire.MsgQuery:
		m.queries.Add(1)
	case wire.MsgFetch:
		m.fetches.Add(1)
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	m.hist[bits.Len64(uint64(us))].Add(1)
	if threshold > 0 && d >= threshold {
		m.slowCount.Add(1)
		fp, summary := slowKey(typ, body)
		m.mu.Lock()
		if fp != 0 {
			// The ring is keyed by fingerprint: a hot slow statement folds
			// into one entry (worst latency, hit count) instead of evicting
			// everything else.
			for i := range m.slow {
				if m.slow[i].Fingerprint == fp {
					m.slow[i].Count++
					if us > m.slow[i].Micros {
						m.slow[i].Micros = us
					}
					m.mu.Unlock()
					return
				}
			}
		}
		m.slow = append(m.slow, wire.SlowQuery{Micros: us, Summary: summary, Fingerprint: fp, Count: 1})
		if len(m.slow) > slowLogSize {
			m.slow = m.slow[len(m.slow)-slowLogSize:]
		}
		m.mu.Unlock()
	}
}

// slowKey derives the slow-ring key for a request: for requests carrying
// statement text the normalized template and its fingerprint, otherwise a
// protocol-level label with fingerprint 0 (never folded).
func slowKey(typ wire.MsgType, body []byte) (uint64, string) {
	switch typ {
	case wire.MsgExec:
		src := string(body)
		return fingerprint.Fingerprint(src), clipSummary(fingerprint.Normalize(src))
	case wire.MsgPrepare:
		src := string(body)
		return fingerprint.Fingerprint(src), clipSummary("PREPARE " + fingerprint.Normalize(src))
	}
	return 0, clipSummary(requestSummary(typ, body))
}

// clipSummary enforces the slow-log byte budget.
func clipSummary(s string) string {
	if len(s) > summaryBudget {
		return s[:summaryBudget] + "..."
	}
	return s
}

// latencyPercentiles derives p50 and p99 from one consistent histogram
// snapshot. Loading the buckets once is what keeps the pair internally
// consistent under concurrent recording: computing each percentile from its
// own load could observe p50 > p99 when a burst of fast requests lands
// between the two loads. With no samples recorded both are 0 — not a
// garbage bucket bound.
func (m *Metrics) latencyPercentiles() (p50, p99 int64) {
	var counts [64]int64
	var total int64
	for i := range m.hist {
		counts[i] = m.hist[i].Load()
		total += counts[i]
	}
	return quantile(&counts, total, 0.50), quantile(&counts, total, 0.99)
}

// quantile returns the upper bound (in µs) of the histogram bucket that
// contains the q-quantile observation, or 0 when the histogram is empty.
func quantile(counts *[64]int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i >= 63 {
				return math.MaxInt64
			}
			return int64(1) << i
		}
	}
	return math.MaxInt64
}

// Snapshot assembles the wire-level stats reply. openCursors is the server's
// live cursor gauge (owned by Server, not Metrics). Typed counters are
// loaded before the requests total so that execs+queries+fetches never
// exceeds requests within one snapshot (each record bumps requests first).
func (m *Metrics) Snapshot(openCursors int64) *wire.ServerStats {
	m.mu.Lock()
	slow := append([]wire.SlowQuery(nil), m.slow...)
	m.mu.Unlock()
	execs := m.execs.Load()
	queries := m.queries.Load()
	fetches := m.fetches.Load()
	slowCount := m.slowCount.Load()
	p50, p99 := m.latencyPercentiles()
	return &wire.ServerStats{
		Connections:   m.connections.Load(),
		Requests:      m.requests.Load(),
		Execs:         execs,
		Queries:       queries,
		Fetches:       fetches,
		CursorsOpened: m.cursorsOpened.Load(),
		OpenCursors:   openCursors,
		BytesIn:       m.bytesIn.Load(),
		BytesOut:      m.bytesOut.Load(),
		P50Micros:     p50,
		P99Micros:     p99,
		SlowCount:     slowCount,
		Slow:          slow,
	}
}

// requestSummary describes a request for the slow-query log. Script text is
// clipped near the summary byte budget before conversion so a multi-MB
// batch never materializes as a string; one extra byte is kept so
// clipSummary can still see the entry was oversized and mark it.
func requestSummary(typ wire.MsgType, body []byte) string {
	switch typ {
	case wire.MsgExec:
		if len(body) > summaryBudget+1 {
			body = body[:summaryBudget+1]
		}
		return string(body)
	case wire.MsgPrepare:
		if len(body) > summaryBudget+1 {
			body = body[:summaryBudget+1]
		}
		return "PREPARE " + string(body)
	case wire.MsgQuery:
		if id, _, err := wire.DecodeQueryReq(body); err == nil {
			return fmt.Sprintf("QUERY stmt=%d", id)
		}
		return "QUERY"
	case wire.MsgFetch:
		if id, n, err := wire.DecodeFetchReq(body); err == nil {
			return fmt.Sprintf("FETCH cursor=%d max=%d", id, n)
		}
		return "FETCH"
	case wire.MsgCloseCursor:
		return "CLOSE CURSOR"
	case wire.MsgStats:
		return "STATS"
	default:
		return fmt.Sprintf("msg 0x%02x", byte(typ))
	}
}
