package fingerprint

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// corpus holds structurally distinct statement shapes. Each entry is a
// template with %v holes that the property test fills with random literals;
// two renderings of the same entry must share a fingerprint, and any two
// different entries must not collide.
var corpus = []string{
	"select %v",
	"select %v + %v",
	"select n from t where n = %v",
	"select n from t where n > %v",
	"select n from t where n > %v and n < %v",
	"select n, m from t where n = %v",
	"select count(*) from t",
	"select count(*) from t where n = %v",
	"select sum(n) from t group by m",
	"select sum(n) from t group by m having sum(n) > %v",
	"select n from t order by n desc",
	"select top 3 n from t order by n",
	"select t.n, u.m from t join u on t.id = u.id",
	"select n from t where m in (%v, %v, %v)",
	"select n from t where s like %q",
	"select n from t where exists (select 1 from u where u.id = t.id)",
	"with c as (select n from t) select n from c",
	"select n from t union all select n from u",
	"insert into t values (%v, %q)",
	"insert into t (n, s) values (%v, %q)",
	"update t set n = %v where id = %v",
	"update t set n = n + %v",
	"delete from t where n = %v",
	"delete from t",
	"create table t2 (n int, s string)",
	"declare @x int",
	"set @x = %v",
	"select case when n > %v then %q else %q end from t",
	"select n from t where n between %v and %v",
	"select distinct n from t",
}

// render fills a corpus template's holes with the given literal seed.
func render(tmpl string, rng *rand.Rand) string {
	n := strings.Count(tmpl, "%v") + strings.Count(tmpl, "%q")
	args := make([]any, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			args = append(args, rng.Intn(100000))
		} else {
			args = append(args, float64(rng.Intn(1000))+0.5)
		}
	}
	// %q holes need strings; rebuild args matching hole order.
	out := make([]any, 0, n)
	rest := tmpl
	for _, a := range args {
		i := strings.IndexByte(rest, '%')
		if i < 0 || i+1 >= len(rest) {
			break
		}
		if rest[i+1] == 'q' {
			out = append(out, fmt.Sprintf("lit%d", rng.Intn(1000)))
		} else {
			out = append(out, a)
		}
		rest = rest[i+2:]
	}
	s := tmpl
	s = strings.ReplaceAll(s, "%q", "'%v'")
	return fmt.Sprintf(s, out...)
}

// mangle rewrites src with random whitespace, comments, keyword case, and
// optional trailing separators — all fingerprint-invariant transforms.
func mangle(src string, rng *rand.Rand) string {
	var b strings.Builder
	for _, tok := range strings.Fields(src) {
		switch rng.Intn(4) {
		case 0:
			b.WriteString(strings.ToUpper(tok))
		case 1:
			// Random per-letter case.
			for _, c := range tok {
				if rng.Intn(2) == 0 {
					b.WriteString(strings.ToUpper(string(c)))
				} else {
					b.WriteString(string(c))
				}
			}
		default:
			b.WriteString(tok)
		}
		switch rng.Intn(5) {
		case 0:
			b.WriteString("  \t ")
		case 1:
			b.WriteString("\n")
		case 2:
			b.WriteString(" /* c */ ")
		default:
			b.WriteString(" ")
		}
	}
	switch rng.Intn(3) {
	case 0:
		b.WriteString(";")
	case 1:
		b.WriteString(" ; -- trailing comment")
	}
	return b.String()
}

// TestFingerprintStability: renderings of one shape with different
// literals, whitespace, comments, and case always share a fingerprint.
func TestFingerprintStability(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, tmpl := range corpus {
		base := Fingerprint(render(tmpl, rng))
		for trial := 0; trial < 50; trial++ {
			v := mangle(render(tmpl, rng), rng)
			if got := Fingerprint(v); got != base {
				t.Fatalf("shape %q: variant %q fingerprints %016x, want %016x",
					tmpl, v, got, base)
			}
		}
	}
}

// TestFingerprintNoCollisions: distinct shapes never collide across the
// corpus.
func TestFingerprintNoCollisions(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seen := map[uint64]string{}
	for _, tmpl := range corpus {
		fp := Fingerprint(render(tmpl, rng))
		if prev, ok := seen[fp]; ok {
			t.Fatalf("shapes %q and %q collide on %016x", prev, tmpl, fp)
		}
		seen[fp] = tmpl
	}
}

// TestLiteralAndParamCollapse: a literal and an explicit ? parameter in the
// same position are the same shape (the whole point of fingerprinting:
// parameterized and inline traffic aggregate together).
func TestLiteralAndParamCollapse(t *testing.T) {
	a := Fingerprint("select n from t where n = 42")
	b := Fingerprint("select n from t where n = ?")
	c := Fingerprint("select n from t where n = 'x'")
	if a != b || b != c {
		t.Fatalf("literal/param/string forms differ: %016x %016x %016x", a, b, c)
	}
}

func TestNormalizeTemplates(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT 1 + 1", "select ? + ?"},
		{"select  N  from T where n=42;", "select n from t where n = ?"},
		{"select count( * ) from t -- c", "select count(*) from t"},
		{"select n from t where s = 'it''s'", "select n from t where s = ?"},
		{"INSERT INTO t VALUES (1, 'a')", "insert into t values (?, ?)"},
		{"select t . n from t", "select t.n from t"},
		{"select n from t where n in (1,2,3)", "select n from t where n in (?, ?, ?)"},
		{"select 1\nGO\nselect 1", "select ? select ?"},
		{"select n from t where n != 3", "select n from t where n <> ?"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNormalizeFingerprintAgree: hashing the normalized template yields the
// statement's fingerprint — the two views of the canonical form never drift.
func TestNormalizeFingerprintAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, tmpl := range corpus {
		src := mangle(render(tmpl, rng), rng)
		if Fingerprint(src) != Fingerprint(Normalize(src)) {
			t.Fatalf("Normalize(%q) = %q does not re-fingerprint to the same value",
				src, Normalize(src))
		}
	}
}

func TestDistinctVariablesDistinctShapes(t *testing.T) {
	if Fingerprint("set @x = 1") == Fingerprint("set @y = 1") {
		t.Fatal("@x and @y should be distinct shapes")
	}
}

// TestFingerprintZeroAllocs pins the hot path: fingerprinting must not
// allocate regardless of statement size.
func TestFingerprintZeroAllocs(t *testing.T) {
	src := "select n, sum(m) from t where n > 100 and s = 'abc' group by n order by 2 desc"
	if allocs := testing.AllocsPerRun(100, func() {
		Fingerprint(src)
	}); allocs != 0 {
		t.Fatalf("Fingerprint allocated %.1f times per run, want 0", allocs)
	}
}
