// Package fingerprint normalizes SQL statement text to a canonical
// template and hashes it to a stable 64-bit fingerprint, in the style of
// pg_stat_statements. Two statements that differ only in literal values,
// whitespace, comments, or keyword/identifier case share a fingerprint;
// structurally different statements get (with overwhelming probability)
// distinct ones.
//
// Fingerprint is allocation-free: it re-lexes the raw text with a
// self-contained scanner (no dependency on package parser) and folds the
// canonical token stream into an FNV-1a hash without building the template
// string. Normalize builds the template and is only meant for cold paths
// (first sighting of a fingerprint, slow-query capture, display).
package fingerprint

// Token classes the scanner distinguishes. Literals (numbers and strings)
// collapse to a single '?' placeholder so parameterized and literal forms
// of the same statement hash identically.
type tokKind uint8

const (
	tkEOF tokKind = iota
	tkWord
	tkLiteral // number or '...' string: hashes as "?"
	tkParam   // explicit ? parameter
	tkPunct
)

// FNV-1a 64-bit constants.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

type scanner struct {
	src string
	pos int
}

// next returns the next token's class and byte bounds; [start,end) indexes
// s.src. Word text is NOT lower-cased here (that would allocate); callers
// fold case byte-wise.
func (s *scanner) next() (kind tokKind, start, end int) {
	s.skipSpaceAndComments()
	start = s.pos
	if s.pos >= len(s.src) {
		return tkEOF, start, start
	}
	c := s.src[s.pos]
	switch {
	case c == '@' || c == '_' || c == '#' || isAlpha(c):
		// @vars keep their names: @x and @y are different shapes.
		s.pos++
		if c == '@' && s.pos < len(s.src) && s.src[s.pos] == '@' {
			s.pos++
		}
		for s.pos < len(s.src) && isIdentChar(s.src[s.pos]) {
			s.pos++
		}
		return tkWord, start, s.pos
	case c >= '0' && c <= '9':
		s.scanNumber()
		return tkLiteral, start, s.pos
	case c == '\'':
		s.pos++
		for s.pos < len(s.src) {
			if s.src[s.pos] == '\'' {
				if s.pos+1 < len(s.src) && s.src[s.pos+1] == '\'' {
					s.pos += 2
					continue
				}
				s.pos++
				break
			}
			s.pos++
		}
		return tkLiteral, start, s.pos
	case c == '?':
		s.pos++
		return tkParam, start, s.pos
	default:
		if s.pos+1 < len(s.src) {
			switch s.src[s.pos : s.pos+2] {
			case "<=", ">=", "<>", "!=", "||":
				s.pos += 2
				return tkPunct, start, s.pos
			}
		}
		s.pos++
		return tkPunct, start, s.pos
	}
}

func (s *scanner) skipSpaceAndComments() {
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			s.pos++
		case c == '-' && s.pos+1 < len(s.src) && s.src[s.pos+1] == '-':
			for s.pos < len(s.src) && s.src[s.pos] != '\n' {
				s.pos++
			}
		case c == '/' && s.pos+1 < len(s.src) && s.src[s.pos+1] == '*':
			s.pos += 2
			for s.pos+1 < len(s.src) && !(s.src[s.pos] == '*' && s.src[s.pos+1] == '/') {
				s.pos++
			}
			s.pos += 2
			if s.pos > len(s.src) {
				s.pos = len(s.src)
			}
		default:
			return
		}
	}
}

func (s *scanner) scanNumber() {
	for s.pos < len(s.src) && s.src[s.pos] >= '0' && s.src[s.pos] <= '9' {
		s.pos++
	}
	if s.pos+1 < len(s.src) && s.src[s.pos] == '.' && s.src[s.pos+1] >= '0' && s.src[s.pos+1] <= '9' {
		s.pos++
		for s.pos < len(s.src) && s.src[s.pos] >= '0' && s.src[s.pos] <= '9' {
			s.pos++
		}
	}
	if s.pos < len(s.src) && (s.src[s.pos] == 'e' || s.src[s.pos] == 'E') {
		save := s.pos
		s.pos++
		if s.pos < len(s.src) && (s.src[s.pos] == '+' || s.src[s.pos] == '-') {
			s.pos++
		}
		if s.pos < len(s.src) && s.src[s.pos] >= '0' && s.src[s.pos] <= '9' {
			for s.pos < len(s.src) && s.src[s.pos] >= '0' && s.src[s.pos] <= '9' {
				s.pos++
			}
		} else {
			s.pos = save
		}
	}
}

func isAlpha(c byte) bool     { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentChar(c byte) bool { return c == '_' || c == '#' || isAlpha(c) || (c >= '0' && c <= '9') }

func lower(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c | 0x20
	}
	return c
}

// Fingerprint hashes src's canonical token stream to a stable 64-bit value.
// Statement separators (';', GO) are dropped, so "SELECT 1;" and "select 2"
// collide — which is the point. Returns a nonzero value for any input with
// at least zero tokens; the empty statement hashes to the FNV offset basis.
func Fingerprint(src string) uint64 {
	h := uint64(offset64)
	var s scanner
	s.src = src
	for {
		kind, start, end := s.next()
		if kind == tkEOF {
			return h
		}
		switch kind {
		case tkLiteral, tkParam:
			h = (h ^ '?') * prime64
		case tkPunct:
			if end-start == 1 && src[start] == ';' {
				continue
			}
			tok := src[start:end]
			if tok == "!=" {
				tok = "<>"
			}
			for i := 0; i < len(tok); i++ {
				h = (h ^ uint64(tok[i])) * prime64
			}
		case tkWord:
			if isSeparatorWord(src[start:end]) {
				continue
			}
			for i := start; i < end; i++ {
				h = (h ^ uint64(lower(src[i]))) * prime64
			}
		}
		// Token boundary marker: keeps "a b" distinct from "ab".
		h = (h ^ 0x1f) * prime64
	}
}

// isSeparatorWord reports whether the word is the GO batch separator,
// case-insensitively, without allocating.
func isSeparatorWord(w string) bool {
	return len(w) == 2 && lower(w[0]) == 'g' && lower(w[1]) == 'o'
}

// tightBefore lists keywords after which '(' keeps a leading space in the
// template; after any other word, '(' binds tight (function-call style).
var spacedBeforeParen = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "or": true,
	"on": true, "when": true, "then": true, "else": true, "in": true,
	"not": true, "by": true, "having": true, "union": true, "all": true,
	"join": true, "between": true, "like": true, "is": true, "as": true,
	"exists": true, "case": true, "set": true, "over": true, "values": true,
}

// Normalize returns the canonical template for src: literals replaced by
// '?', whitespace and comments collapsed, keywords and identifiers
// lower-cased, statement separators dropped. It allocates; use it off the
// hot path only.
func Normalize(src string) string {
	out := make([]byte, 0, len(src))
	var s scanner
	prevKind := tkEOF
	prevWord := ""
	s.src = src
	for {
		kind, start, end := s.next()
		if kind == tkEOF {
			return string(out)
		}
		tok := src[start:end]
		switch kind {
		case tkLiteral, tkParam:
			tok = "?"
		case tkPunct:
			if tok == ";" {
				continue
			}
			if tok == "!=" {
				tok = "<>"
			}
		case tkWord:
			if isSeparatorWord(tok) {
				continue
			}
		}
		if len(out) > 0 && wantSpace(prevKind, prevWord, kind, tok) {
			out = append(out, ' ')
		}
		if kind == tkWord {
			for i := 0; i < len(tok); i++ {
				out = append(out, lower(tok[i]))
			}
		} else {
			out = append(out, tok...)
		}
		prevWord = tok
		prevKind = kind
	}
}

// wantSpace decides whether a space separates the previous emitted token
// from the next one in the normalized template.
func wantSpace(prevKind tokKind, prevWord string, kind tokKind, tok string) bool {
	// No space after '(' or '.'.
	if prevKind == tkPunct && (prevWord == "(" || prevWord == ".") {
		return false
	}
	// No space before ',', ')', '.', and tight '(' after non-keyword words.
	switch tok {
	case ",", ")", ".":
		return false
	case "(":
		if prevKind == tkWord && !spacedBeforeParen[lowerStr(prevWord)] {
			return false
		}
	}
	return true
}

func lowerStr(w string) string {
	for i := 0; i < len(w); i++ {
		if w[i] >= 'A' && w[i] <= 'Z' {
			b := make([]byte, len(w))
			for j := 0; j < len(w); j++ {
				b[j] = lower(w[j])
			}
			return string(b)
		}
	}
	return w
}
