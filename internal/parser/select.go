package parser

import (
	"aggify/internal/ast"
)

// ParseSelect parses a full SELECT (or WITH ... SELECT) query.
func (p *Parser) ParseSelect() (*ast.Select, error) { return p.parseSelect() }

func (p *Parser) parseSelect() (*ast.Select, error) {
	q := &ast.Select{}
	if p.isKw("with") {
		p.advance()
		for {
			cte, err := p.parseCTE()
			if err != nil {
				return nil, err
			}
			q.With = append(q.With, cte)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.parseSelectCore(q); err != nil {
		return nil, err
	}
	// UNION ALL chain (each branch is a core select; ORDER BY applies to the
	// whole chain and is parsed after the last branch).
	tail := q
	for p.isKw("union") {
		p.advance()
		if err := p.expectKw("all"); err != nil {
			return nil, err
		}
		branch := &ast.Select{}
		if err := p.parseSelectCore(branch); err != nil {
			return nil, err
		}
		tail.Union = branch
		tail = branch
	}
	if p.isKw("order") {
		p.advance()
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			item := ast.OrderItem{Expr: e}
			if p.acceptKw("desc") {
				item.Desc = true
			} else {
				p.acceptKw("asc")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.isKw("option") {
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectKw("order"); err != nil {
			return nil, err
		}
		if err := p.expectKw("enforced"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		q.OrderEnforced = true
	}
	return q, nil
}

func (p *Parser) parseCTE() (ast.CTE, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ast.CTE{}, err
	}
	cte := ast.CTE{Name: name}
	if p.isPunct("(") {
		p.advance()
		for {
			col, err := p.expectIdent()
			if err != nil {
				return ast.CTE{}, err
			}
			cte.Cols = append(cte.Cols, col)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return ast.CTE{}, err
		}
	}
	if err := p.expectKw("as"); err != nil {
		return ast.CTE{}, err
	}
	if err := p.expectPunct("("); err != nil {
		return ast.CTE{}, err
	}
	body, err := p.parseSelect()
	if err != nil {
		return ast.CTE{}, err
	}
	if err := p.expectPunct(")"); err != nil {
		return ast.CTE{}, err
	}
	cte.Query = body
	return cte, nil
}

// parseSelectCore parses SELECT ... [FROM ... WHERE ... GROUP BY ... HAVING]
// without ORDER BY/UNION, filling q.
func (p *Parser) parseSelectCore(q *ast.Select) error {
	if err := p.expectKw("select"); err != nil {
		return err
	}
	if p.acceptKw("distinct") {
		q.Distinct = true
	}
	if p.isKw("top") {
		p.advance()
		e, err := p.parsePrimary()
		if err != nil {
			return err
		}
		q.Top = e
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return err
		}
		q.Items = append(q.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.isKw("from") {
		p.advance()
		for {
			te, err := p.parseTableExpr()
			if err != nil {
				return err
			}
			q.From = append(q.From, te)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.isKw("where") {
		p.advance()
		e, err := p.ParseExpr()
		if err != nil {
			return err
		}
		q.Where = e
	}
	if p.isKw("group") {
		p.advance()
		if err := p.expectKw("by"); err != nil {
			return err
		}
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return err
			}
			q.GroupBy = append(q.GroupBy, e)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.isKw("having") {
		p.advance()
		e, err := p.ParseExpr()
		if err != nil {
			return err
		}
		q.Having = e
	}
	return nil
}

func (p *Parser) parseSelectItem() (ast.SelectItem, error) {
	if p.isPunct("*") {
		p.advance()
		return ast.SelectItem{Star: true}, nil
	}
	// t.* form
	if p.cur().kind == tokIdent && !keywords[p.cur().text] && p.peek().text == "." && p.at(2).text == "*" {
		tbl := p.advance().text
		p.advance() // .
		p.advance() // *
		return ast.SelectItem{Star: true, Alias: tbl}, nil
	}
	e, err := p.ParseExpr()
	if err != nil {
		return ast.SelectItem{}, err
	}
	item := ast.SelectItem{Expr: e}
	if p.acceptKw("as") {
		alias, err := p.expectIdent()
		if err != nil {
			return ast.SelectItem{}, err
		}
		item.Alias = alias
	} else if p.cur().kind == tokIdent && !keywords[p.cur().text] {
		item.Alias = p.advance().text
	}
	return item, nil
}

// parseTableExpr parses one FROM item including any trailing JOIN chain.
func (p *Parser) parseTableExpr() (ast.TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var kind ast.JoinKind
		switch {
		case p.isKw("join") || p.isKw("inner"):
			p.acceptKw("inner")
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			kind = ast.JoinInner
		case p.isKw("left"):
			p.advance()
			p.acceptKw("outer")
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			kind = ast.JoinLeft
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		on, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		left = &ast.Join{Kind: kind, L: left, R: right, On: on}
	}
}

func (p *Parser) parseTablePrimary() (ast.TableExpr, error) {
	if p.isPunct("(") {
		p.advance()
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		alias, err := p.parseOptionalAlias()
		if err != nil {
			return nil, err
		}
		if alias == "" {
			return nil, p.errf("derived table requires an alias")
		}
		return &ast.SubqueryRef{Query: q, Alias: alias}, nil
	}
	var name string
	if p.cur().kind == tokVar { // table variable
		name = p.advance().text
	} else {
		n, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		name = n
	}
	alias, err := p.parseOptionalAlias()
	if err != nil {
		return nil, err
	}
	return &ast.TableRef{Name: name, Alias: alias}, nil
}

func (p *Parser) parseOptionalAlias() (string, error) {
	if p.acceptKw("as") {
		return p.expectIdent()
	}
	if p.cur().kind == tokIdent && !keywords[p.cur().text] {
		return p.advance().text, nil
	}
	return "", nil
}
