// Package parser turns dialect source text into the AST of package ast.
// The dialect is a T-SQL-like language: SQL queries (joins, subqueries,
// GROUP BY, ORDER BY, TOP, CTEs, UNION ALL), DDL, DML, and procedural
// constructs (DECLARE/SET/IF/WHILE/FOR, cursors and FETCH, TRY/CATCH,
// functions, procedures, and CREATE AGGREGATE definitions).
package parser

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVar    // @name or @@name
	tokNumber // integer or float literal
	tokString // '...'
	tokPunct  // single/multi-char punctuation
	tokQMark  // ? parameter
)

type token struct {
	kind tokenKind
	text string // identifiers lower-cased; punctuation canonical
	pos  int    // byte offset, for error messages
	line int
}

// keywords that terminate expressions or guide statement parsing. Anything
// not in this set lexes as a plain identifier (so MIN, SUM, and user
// function names are ordinary idents).
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "asc": true, "desc": true, "top": true,
	"distinct": true, "as": true, "and": true, "or": true, "not": true,
	"null": true, "is": true, "in": true, "between": true, "like": true,
	"exists": true, "case": true, "when": true, "then": true, "else": true,
	"end": true, "join": true, "inner": true, "left": true, "outer": true,
	"on": true, "union": true, "all": true, "with": true, "option": true,
	"begin": true, "declare": true, "set": true, "if": true, "while": true,
	"for": true, "break": true, "continue": true, "return": true,
	"cursor": true, "open": true, "close": true, "deallocate": true,
	"fetch": true, "next": true, "into": true, "insert": true,
	"values": true, "update": true, "delete": true, "create": true,
	"table": true, "index": true, "function": true, "procedure": true,
	"aggregate": true, "returns": true, "try": true, "catch": true,
	"print": true, "exec": true, "go": true, "true": true, "false": true,
	"date": true, "enforced": true,
	// Note: the CREATE AGGREGATE section markers (FIELDS, INIT, ACCUMULATE,
	// TERMINATE) are contextual — they are matched positionally by the
	// parser and remain usable as ordinary identifiers elsewhere.
}

type lexer struct {
	src    string
	pos    int
	line   int
	tokens []token
}

// lex scans the whole input; the parser then works over the token slice.
func lex(src string) ([]token, error) {
	lx := &lexer{src: src, line: 1}
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		lx.tokens = append(lx.tokens, tok)
		if tok.kind == tokEOF {
			return lx.tokens, nil
		}
	}
}

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("parser: line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: start, line: lx.line}, nil
	}
	c := lx.src[lx.pos]
	switch {
	case c == '@':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '@' {
			lx.pos++
		}
		nameStart := lx.pos
		lx.scanIdentTail()
		if lx.pos == nameStart {
			return token{}, lx.errf("bare '@'")
		}
		return token{kind: tokVar, text: strings.ToLower(lx.src[start:lx.pos]), pos: start, line: lx.line}, nil
	case isIdentStart(c):
		lx.pos++
		lx.scanIdentTail()
		return token{kind: tokIdent, text: strings.ToLower(lx.src[start:lx.pos]), pos: start, line: lx.line}, nil
	case c >= '0' && c <= '9':
		return lx.scanNumber()
	case c == '\'':
		return lx.scanString()
	case c == '?':
		lx.pos++
		return token{kind: tokQMark, text: "?", pos: start, line: lx.line}, nil
	default:
		return lx.scanPunct()
	}
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.pos += 2
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				if lx.src[lx.pos] == '\n' {
					lx.line++
				}
				lx.pos++
			}
			lx.pos += 2
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '#' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (lx *lexer) scanIdentTail() {
	for lx.pos < len(lx.src) && isIdentChar(lx.src[lx.pos]) {
		lx.pos++
	}
}

func (lx *lexer) scanNumber() (token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
		lx.pos++
	}
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
	}
	// exponent
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		save := lx.pos
		lx.pos++
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.pos++
		}
		if lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
				lx.pos++
			}
		} else {
			lx.pos = save
		}
	}
	return token{kind: tokNumber, text: lx.src[start:lx.pos], pos: start, line: lx.line}, nil
}

func (lx *lexer) scanString() (token, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\'' {
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
				b.WriteByte('\'')
				lx.pos += 2
				continue
			}
			lx.pos++
			return token{kind: tokString, text: b.String(), pos: start, line: lx.line}, nil
		}
		if c == '\n' {
			lx.line++
		}
		b.WriteByte(c)
		lx.pos++
	}
	return token{}, lx.errf("unterminated string literal")
}

func (lx *lexer) scanPunct() (token, error) {
	start := lx.pos
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		lx.pos += 2
		text := two
		if text == "!=" {
			text = "<>"
		}
		return token{kind: tokPunct, text: text, pos: start, line: lx.line}, nil
	}
	c := lx.src[lx.pos]
	switch c {
	case '(', ')', ',', ';', '.', '=', '<', '>', '+', '-', '*', '/', '%':
		lx.pos++
		return token{kind: tokPunct, text: string(c), pos: start, line: lx.line}, nil
	}
	return token{}, lx.errf("unexpected character %q", string(c))
}
