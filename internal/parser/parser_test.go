package parser

import (
	"strings"
	"testing"

	"aggify/internal/ast"
	"aggify/internal/sqltypes"
)

func parseOneStmt(t *testing.T, src string) ast.Stmt {
	t.Helper()
	stmts, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if len(stmts) != 1 {
		t.Fatalf("Parse(%q): got %d statements", src, len(stmts))
	}
	return stmts[0]
}

func parseExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	p, err := New(src)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.ParseExpr()
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestExprPrecedence(t *testing.T) {
	e := parseExpr(t, "1 + 2 * 3")
	b, ok := e.(*ast.BinExpr)
	if !ok || b.Op != sqltypes.OpAdd {
		t.Fatalf("top = %v", e)
	}
	if r, ok := b.R.(*ast.BinExpr); !ok || r.Op != sqltypes.OpMul {
		t.Fatalf("rhs = %v", b.R)
	}
	e = parseExpr(t, "a = 1 or b = 2 and c = 3")
	b = e.(*ast.BinExpr)
	if b.Op != sqltypes.OpOr {
		t.Fatalf("OR should be outermost: %v", e)
	}
	if rb := b.R.(*ast.BinExpr); rb.Op != sqltypes.OpAnd {
		t.Fatalf("AND should bind tighter: %v", b.R)
	}
}

func TestExprKinds(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"@x", "@x"},
		{"@@fetch_status = 0", "(@@fetch_status = 0)"},
		{"t.col", "t.col"},
		{"-1", "-1"},
		{"not a", "(NOT a)"},
		{"a is null", "(a IS NULL)"},
		{"a is not null", "(a IS NOT NULL)"},
		{"a between 1 and 2", "(a BETWEEN 1 AND 2)"},
		{"a not between 1 and 2", "(a NOT BETWEEN 1 AND 2)"},
		{"a in (1, 2, 3)", "(a IN (1, 2, 3))"},
		{"a not in (1)", "(a NOT IN (1))"},
		{"a like 'PROMO%'", "(a LIKE 'PROMO%')"},
		{"count(*)", "count(*)"},
		{"min(a + 1)", "min((a + 1))"},
		{"case when a > 1 then 'x' else 'y' end", "CASE WHEN (a > 1) THEN 'x' ELSE 'y' END"},
		{"'it''s'", "'it''s'"},
		{"date '1995-03-15'", "'1995-03-15'"},
		{"a || 'x'", "(a || 'x')"},
		{"a <> b", "(a <> b)"},
		{"a != b", "(a <> b)"},
		{"1.5e2", "150"},
	}
	for _, c := range cases {
		e := parseExpr(t, c.src)
		if got := e.String(); got != c.want {
			t.Errorf("parse %q = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestExprSubquery(t *testing.T) {
	e := parseExpr(t, "(select count(*) from t where t.a = @x)")
	sq, ok := e.(*ast.Subquery)
	if !ok || sq.Exists {
		t.Fatalf("got %T", e)
	}
	e = parseExpr(t, "exists (select * from t)")
	sq = e.(*ast.Subquery)
	if !sq.Exists {
		t.Fatal("EXISTS flag missing")
	}
	e = parseExpr(t, "a in (select b from t)")
	in := e.(*ast.InExpr)
	if in.Query == nil {
		t.Fatal("IN subquery missing")
	}
}

func TestSelectBasics(t *testing.T) {
	s := parseOneStmt(t, "SELECT ps_supplycost, s_name FROM partsupp, supplier WHERE ps_partkey = @pkey AND ps_suppkey = s_suppkey")
	q := s.(*ast.QueryStmt).Query
	if len(q.Items) != 2 || len(q.From) != 2 || q.Where == nil {
		t.Fatalf("bad parse: %+v", q)
	}
	if q.From[0].(*ast.TableRef).Name != "partsupp" {
		t.Fatal("from parse broken")
	}
}

func TestSelectFull(t *testing.T) {
	src := `SELECT DISTINCT TOP 5 o_custkey, count(*) AS cnt
	        FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey
	        WHERE o_comment NOT LIKE '%special%'
	        GROUP BY o_custkey HAVING count(*) > 2
	        ORDER BY cnt DESC, o_custkey`
	q := parseOneStmt(t, src).(*ast.QueryStmt).Query
	if !q.Distinct || q.Top == nil {
		t.Fatal("DISTINCT/TOP lost")
	}
	j, ok := q.From[0].(*ast.Join)
	if !ok || j.Kind != ast.JoinInner {
		t.Fatalf("join parse: %T", q.From[0])
	}
	if len(q.GroupBy) != 1 || q.Having == nil {
		t.Fatal("GROUP BY/HAVING lost")
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Fatal("ORDER BY lost")
	}
	if q.Items[1].Alias != "cnt" {
		t.Fatal("alias lost")
	}
}

func TestSelectLeftJoinAndDerived(t *testing.T) {
	src := `SELECT q.a FROM (SELECT a, b FROM t) q LEFT OUTER JOIN u ON q.a = u.a`
	q := parseOneStmt(t, src).(*ast.QueryStmt).Query
	j := q.From[0].(*ast.Join)
	if j.Kind != ast.JoinLeft {
		t.Fatal("LEFT JOIN lost")
	}
	if _, ok := j.L.(*ast.SubqueryRef); !ok {
		t.Fatalf("derived table lost: %T", j.L)
	}
}

func TestSelectCTEAndUnion(t *testing.T) {
	src := `WITH cte(i) AS (SELECT 0 AS i UNION ALL SELECT i + 1 FROM cte WHERE i < 100)
	        SELECT * FROM cte`
	q := parseOneStmt(t, src).(*ast.QueryStmt).Query
	if len(q.With) != 1 || q.With[0].Name != "cte" || len(q.With[0].Cols) != 1 {
		t.Fatalf("CTE parse: %+v", q.With)
	}
	if q.With[0].Query.Union == nil {
		t.Fatal("UNION ALL in CTE lost")
	}
}

func TestOrderEnforcedOption(t *testing.T) {
	q := parseOneStmt(t, "SELECT a FROM t OPTION (ORDER ENFORCED)").(*ast.QueryStmt).Query
	if !q.OrderEnforced {
		t.Fatal("OPTION (ORDER ENFORCED) lost")
	}
}

func TestMinCostSuppUDF(t *testing.T) {
	// The paper's Figure 1 UDF, verbatim modulo dialect details.
	src := `
create function minCostSupp(@pkey int, @lb int = -1) returns char(25) as
begin
  declare @pCost decimal(15,2);
  declare @sName char(25);
  declare @minCost decimal(15,2) = 100000;
  declare @suppName char(25);
  if (@lb = -1)
    set @lb = getLowerBound(@pkey);
  declare c1 cursor for
    select ps_supplycost, s_name from partsupp, supplier
    where ps_partkey = @pkey and ps_suppkey = s_suppkey;
  open c1;
  fetch next from c1 into @pCost, @sName;
  while @@FETCH_STATUS = 0
  begin
    if (@pCost < @minCost and @pCost >= @lb)
    begin
      set @minCost = @pCost;
      set @suppName = @sName;
    end
    fetch next from c1 into @pCost, @sName;
  end
  close c1;
  deallocate c1;
  return @suppName;
end`
	f := parseOneStmt(t, src).(*ast.CreateFunction)
	if f.Name != "mincostsupp" {
		t.Fatalf("name = %q", f.Name)
	}
	if len(f.Params) != 2 || f.Params[1].Default == nil {
		t.Fatalf("params = %+v", f.Params)
	}
	if f.Returns.String() != "CHAR(25)" {
		t.Fatalf("returns = %v", f.Returns)
	}
	var cursors, fetches, whiles int
	ast.WalkStmt(f.Body, func(s ast.Stmt) bool {
		switch s.(type) {
		case *ast.DeclareCursor:
			cursors++
		case *ast.FetchStmt:
			fetches++
		case *ast.WhileStmt:
			whiles++
		}
		return true
	})
	if cursors != 1 || fetches != 2 || whiles != 1 {
		t.Fatalf("cursors=%d fetches=%d whiles=%d", cursors, fetches, whiles)
	}
}

func TestCreateAggregate(t *testing.T) {
	src := `
create aggregate MinCostSuppAgg(@pCost float, @sName char(25), @p_minCost float, @p_lb int) returns char(25) as
begin
  fields (@minCost float, @lb int, @suppName char(25), @isInitialized bit);
  init begin
    set @isInitialized = false;
  end
  accumulate begin
    if @isInitialized = false
    begin
      set @minCost = @p_minCost;
      set @lb = @p_lb;
      set @isInitialized = true;
    end
    if (@pCost < @minCost and @pCost >= @lb)
    begin
      set @minCost = @pCost;
      set @suppName = @sName;
    end
  end
  terminate begin
    return @suppName;
  end
end`
	agg := parseOneStmt(t, src).(*ast.CreateAggregate)
	if agg.Name != "mincostsuppagg" || len(agg.Params) != 4 || len(agg.Fields) != 4 {
		t.Fatalf("agg = %+v", agg)
	}
	if agg.Init == nil || agg.Accum == nil || agg.Terminate == nil {
		t.Fatal("missing method blocks")
	}
}

func TestProceduralStatements(t *testing.T) {
	src := `
create procedure p(@n int) as
begin
  declare @t table (k int, v float);
  declare @i int = 0, @sum float = 0;
  while @i < @n
  begin
    insert into @t (k, v) values (@i, @i * 2.0);
    set @i = @i + 1;
    if @i % 2 = 0 continue;
    if @i > 100 break;
  end
  begin try
    update @t set v = v + 1 where k > 2;
    delete from @t where k = 0;
  end try
  begin catch
    print 'error';
  end catch
  select count(*) from @t;
end`
	proc := parseOneStmt(t, src).(*ast.CreateProcedure)
	var haveTable, haveTry, haveBreak, haveContinue, haveUpdate, haveDelete bool
	ast.WalkStmt(proc.Body, func(s ast.Stmt) bool {
		switch s.(type) {
		case *ast.DeclareTable:
			haveTable = true
		case *ast.TryCatch:
			haveTry = true
		case *ast.BreakStmt:
			haveBreak = true
		case *ast.ContinueStmt:
			haveContinue = true
		case *ast.UpdateStmt:
			haveUpdate = true
		case *ast.DeleteStmt:
			haveDelete = true
		}
		return true
	})
	if !haveTable || !haveTry || !haveBreak || !haveContinue || !haveUpdate || !haveDelete {
		t.Fatalf("missing constructs: table=%v try=%v break=%v continue=%v update=%v delete=%v",
			haveTable, haveTry, haveBreak, haveContinue, haveUpdate, haveDelete)
	}
}

func TestForLoop(t *testing.T) {
	src := `for (@i = 0; @i <= 100; @i = @i + 1) begin set @s = @s + @i; end`
	f := parseOneStmt(t, src).(*ast.ForStmt)
	if f.InitVar != "@i" || f.PostVar != "@i" || f.Cond == nil {
		t.Fatalf("for = %+v", f)
	}
}

func TestDDLAndDML(t *testing.T) {
	stmts, err := Parse(`
create table part (p_partkey int, p_name varchar(55));
create index idx_pk on part(p_partkey);
insert into part values (1, 'green widget'), (2, 'red widget');
insert into part (p_partkey, p_name) select p_partkey, p_name from part;
GO
exec myproc 1, 'x';
set (@a, @b) = (select agg(x) from t);
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 6 {
		t.Fatalf("got %d statements", len(stmts))
	}
	ins := stmts[2].(*ast.InsertStmt)
	if len(ins.Rows) != 2 {
		t.Fatalf("multi-row VALUES lost: %d", len(ins.Rows))
	}
	set := stmts[5].(*ast.SetStmt)
	if len(set.Targets) != 2 {
		t.Fatalf("tuple SET targets = %v", set.Targets)
	}
}

func TestParamPlaceholders(t *testing.T) {
	p, err := New("select roi from inv where id = ? and start_date >= ?")
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.ParseSelect()
	if err != nil {
		t.Fatal(err)
	}
	var idxs []int
	ast.WalkSelectExprs(q, func(e ast.Expr) bool {
		if pr, ok := e.(*ast.ParamRef); ok {
			idxs = append(idxs, pr.Index)
		}
		return true
	})
	if len(idxs) != 2 || idxs[0] != 0 || idxs[1] != 1 {
		t.Fatalf("param indexes = %v", idxs)
	}
}

func TestComments(t *testing.T) {
	src := `-- line comment
	select a /* block
	comment */ from t -- trailing`
	q := parseOneStmt(t, src).(*ast.QueryStmt).Query
	if len(q.Items) != 1 {
		t.Fatal("comments broke parse")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"select from",                      // missing items
		"select a from (select b from t)",  // derived table missing alias
		"set x = 1",                        // SET without variable
		"declare @x",                       // missing type
		"fetch next from c into x",         // non-variable in INTO
		"create table t",                   // missing columns
		"'unterminated",                    // lexer error
		"select a from t where a = $",      // bad char
		"begin select 1",                   // unterminated block
		"case when 1 then 2",               // CASE without END (as expr stmt is invalid anyway)
		"create aggregate a() returns int", // missing AS
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestPrintRoundtrip(t *testing.T) {
	// Format output must re-parse to an identical rendering (fixpoint).
	sources := []string{
		`create function f(@a int, @b int = -1) returns float as
		 begin
		   declare @x float = 0;
		   declare c cursor for select v from t where k = @a order by v desc;
		   open c;
		   fetch next from c into @x;
		   while @@fetch_status = 0
		   begin
		     set @b = @b + @x;
		     fetch next from c into @x;
		   end
		   close c;
		   deallocate c;
		   return @b;
		 end`,
		`select a, count(*) as c from t where a > 0 group by a having count(*) > 1 order by c desc`,
		`with w(i) as (select 1 as i union all select i + 1 from w where i < 5) select * from w option (order enforced)`,
	}
	for _, src := range sources {
		stmts, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		printed := ast.FormatProgram(stmts)
		stmts2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, printed)
		}
		printed2 := ast.FormatProgram(stmts2)
		if printed != printed2 {
			t.Errorf("print fixpoint failed:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("select from nothing valid ???")
}

func TestKeywordCaseInsensitive(t *testing.T) {
	for _, src := range []string{"SELECT a FROM t", "select a from t", "SeLeCt a FrOm t"} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestLexerUnterminatedBlockComment(t *testing.T) {
	// Unterminated block comments consume to EOF without panicking.
	if _, err := Parse("select 1 /* never closed"); err != nil && !strings.Contains(err.Error(), "") {
		t.Fatal(err)
	}
}
