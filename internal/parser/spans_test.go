package parser

import (
	"strings"
	"testing"
)

// TestParseSpansCoverEachStatement: spans are parallel to statements and
// each span's text re-parses to exactly that one statement.
func TestParseSpansCoverEachStatement(t *testing.T) {
	src := `create table t (n int);
insert into t values (1), (2);
select n from t where n > 1;
GO
print 'done'`
	stmts, spans, err := ParseSpans(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != len(spans) {
		t.Fatalf("stmts = %d, spans = %d", len(stmts), len(spans))
	}
	if len(stmts) != 4 {
		t.Fatalf("statements = %d, want 4", len(stmts))
	}
	for i, sp := range spans {
		if sp.Start < 0 || sp.End > len(src) || sp.Start >= sp.End {
			t.Fatalf("span %d out of range: %+v", i, sp)
		}
		sub := src[sp.Start:sp.End]
		re, err := Parse(sub)
		if err != nil {
			t.Fatalf("span %d text %q does not re-parse: %v", i, sub, err)
		}
		if len(re) != 1 {
			t.Fatalf("span %d text %q holds %d statements, want 1", i, sub, len(re))
		}
	}
	// Spans are ordered and non-overlapping.
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End {
			t.Fatalf("spans overlap: %+v then %+v", spans[i-1], spans[i])
		}
	}
	if !strings.Contains(src[spans[2].Start:spans[2].End], "where n > 1") {
		t.Fatalf("span 2 misses statement body: %q", src[spans[2].Start:spans[2].End])
	}
}

// TestParseSpansAgreesWithParse: both entry points see the same program.
func TestParseSpansAgreesWithParse(t *testing.T) {
	src := "select 1; select 2; select 3"
	a, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b, spans, err := ParseSpans(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(b) != len(spans) {
		t.Fatalf("Parse = %d stmts, ParseSpans = %d stmts / %d spans", len(a), len(b), len(spans))
	}
}
