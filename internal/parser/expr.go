package parser

import (
	"fmt"
	"strconv"
	"strings"

	"aggify/internal/ast"
	"aggify/internal/sqltypes"
)

// Parser consumes the token stream produced by the lexer. It is a
// hand-written recursive-descent parser with one token of lookahead plus
// explicit peeking where SQL's grammar demands it.
type Parser struct {
	toks       []token
	i          int
	paramCount int // positional '?' parameters seen so far
}

// New creates a parser over src.
func New(src string) (*Parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks}, nil
}

func (p *Parser) cur() token  { return p.toks[p.i] }
func (p *Parser) peek() token { return p.at(1) }

func (p *Parser) at(n int) token {
	if p.i+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.i+n]
}

func (p *Parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

// isKw reports whether the current token is the given keyword.
func (p *Parser) isKw(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == kw
}

// isPunct reports whether the current token is the given punctuation.
func (p *Parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

// acceptKw consumes the keyword if present.
func (p *Parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.advance()
		return true
	}
	return false
}

// acceptPunct consumes the punctuation if present.
func (p *Parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %q", strings.ToUpper(kw), p.cur().text)
	}
	return nil
}

func (p *Parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, found %q", s, p.cur().text)
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent || keywords[t.text] {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("parser: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

// ParseExpr parses a full expression (entry point for tests and tools).
func (p *Parser) ParseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKw("or") {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = ast.Bin(sqltypes.OpOr, l, r)
	}
	return l, nil
}

func (p *Parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKw("and") {
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = ast.Bin(sqltypes.OpAnd, l, r)
	}
	return l, nil
}

func (p *Parser) parseNot() (ast.Expr, error) {
	if p.isKw("not") {
		p.advance()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: '!', E: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (ast.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.cur().kind == tokPunct && comparisonOps[p.cur().text] != 0:
			op := comparisonOps[p.advance().text]
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = ast.Bin(op-1, l, r) // stored +1 so the zero value means "absent"
		case p.isKw("is"):
			p.advance()
			neg := p.acceptKw("not")
			if err := p.expectKw("null"); err != nil {
				return nil, err
			}
			l = &ast.IsNullExpr{E: l, Negate: neg}
		case p.isKw("like"):
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = ast.Bin(sqltypes.OpLike, l, r)
		case p.isKw("not") && (p.peek().text == "in" || p.peek().text == "between" || p.peek().text == "like"):
			p.advance() // NOT
			switch p.cur().text {
			case "like":
				p.advance()
				r, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &ast.UnaryExpr{Op: '!', E: ast.Bin(sqltypes.OpLike, l, r)}
			case "in":
				var err error
				l, err = p.parseIn(l, true)
				if err != nil {
					return nil, err
				}
			case "between":
				var err error
				l, err = p.parseBetween(l, true)
				if err != nil {
					return nil, err
				}
			}
		case p.isKw("in"):
			var err error
			l, err = p.parseIn(l, false)
			if err != nil {
				return nil, err
			}
		case p.isKw("between"):
			var err error
			l, err = p.parseBetween(l, false)
			if err != nil {
				return nil, err
			}
		default:
			return l, nil
		}
	}
}

// comparisonOps maps punct to BinaryOp+1 (zero means not a comparison).
var comparisonOps = map[string]sqltypes.BinaryOp{
	"=":  sqltypes.OpEq + 1,
	"<>": sqltypes.OpNe + 1,
	"<":  sqltypes.OpLt + 1,
	"<=": sqltypes.OpLe + 1,
	">":  sqltypes.OpGt + 1,
	">=": sqltypes.OpGe + 1,
}

func (p *Parser) parseIn(l ast.Expr, neg bool) (ast.Expr, error) {
	p.advance() // IN
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if p.isKw("select") || p.isKw("with") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &ast.InExpr{E: l, Query: q, Negate: neg}, nil
	}
	var list []ast.Expr
	for {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &ast.InExpr{E: l, List: list, Negate: neg}, nil
}

func (p *Parser) parseBetween(l ast.Expr, neg bool) (ast.Expr, error) {
	p.advance() // BETWEEN
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("and"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &ast.BetweenExpr{E: l, Lo: lo, Hi: hi, Negate: neg}, nil
}

func (p *Parser) parseAdditive() (ast.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("+"):
			p.advance()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = ast.Bin(sqltypes.OpAdd, l, r)
		case p.isPunct("-"):
			p.advance()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = ast.Bin(sqltypes.OpSub, l, r)
		case p.isPunct("||"):
			p.advance()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = ast.Bin(sqltypes.OpConcat, l, r)
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("*"):
			p.advance()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = ast.Bin(sqltypes.OpMul, l, r)
		case p.isPunct("/"):
			p.advance()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = ast.Bin(sqltypes.OpDiv, l, r)
		case p.isPunct("%"):
			p.advance()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = ast.Bin(sqltypes.OpMod, l, r)
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	if p.isPunct("-") {
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals so defaults like -1 parse as constants.
		if lit, ok := e.(*ast.Literal); ok {
			if v, err := sqltypes.Negate(lit.Val); err == nil {
				return ast.Lit(v), nil
			}
		}
		return &ast.UnaryExpr{Op: '-', E: e}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return ast.Lit(sqltypes.NewFloat(f)), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return ast.IntLit(i), nil
	case tokString:
		p.advance()
		return ast.StrLit(t.text), nil
	case tokVar:
		p.advance()
		return ast.Var(t.text), nil
	case tokQMark:
		p.advance()
		p.paramCount++
		return &ast.ParamRef{Index: p.paramCount - 1}, nil
	case tokPunct:
		if t.text == "(" {
			p.advance()
			if p.isKw("select") || p.isKw("with") {
				q, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return &ast.Subquery{Query: q}, nil
			}
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		switch t.text {
		case "null":
			p.advance()
			return ast.Lit(sqltypes.Null), nil
		case "true":
			p.advance()
			return ast.Lit(sqltypes.NewBool(true)), nil
		case "false":
			p.advance()
			return ast.Lit(sqltypes.NewBool(false)), nil
		case "date":
			// DATE 'yyyy-mm-dd' literal.
			if p.peek().kind == tokString {
				p.advance()
				s := p.advance().text
				v, err := sqltypes.ParseDate(s)
				if err != nil {
					return nil, p.errf("%v", err)
				}
				return ast.Lit(v), nil
			}
		case "case":
			return p.parseCase()
		case "exists":
			p.advance()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &ast.Subquery{Query: q, Exists: true}, nil
		}
		if keywords[t.text] {
			return nil, p.errf("unexpected keyword %q in expression", t.text)
		}
		return p.parseIdentExpr()
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

// parseIdentExpr handles column references (a, t.a) and function calls
// (f(...), count(*)).
func (p *Parser) parseIdentExpr() (ast.Expr, error) {
	name := p.advance().text
	if p.isPunct("(") {
		p.advance()
		fc := &ast.FuncCall{Name: name}
		if p.isPunct("*") {
			p.advance()
			fc.Star = true
		} else if !p.isPunct(")") {
			for {
				a, err := p.ParseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, a)
				if !p.acceptPunct(",") {
					break
				}
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.isPunct(".") && p.peek().kind == tokIdent && !keywords[p.peek().text] {
		p.advance()
		col := p.advance().text
		return ast.QCol(name, col), nil
	}
	return ast.Col(name), nil
}

func (p *Parser) parseCase() (ast.Expr, error) {
	p.advance() // CASE
	c := &ast.CaseExpr{}
	for p.isKw("when") {
		p.advance()
		cond, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("then"); err != nil {
			return nil, err
		}
		then, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.WhenClause{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.acceptKw("else") {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return c, nil
}
