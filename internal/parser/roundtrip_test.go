package parser_test

import (
	"testing"

	"aggify/internal/ast"
	"aggify/internal/parser"
	"aggify/internal/workloads/corpus"
)

// TestCorpusRoundtrip pins a strong invariant over ~100 realistic
// procedures: every corpus file parses, formats, re-parses, and reaches a
// print fixpoint.
func TestCorpusRoundtrip(t *testing.T) {
	for _, app := range corpus.Apps() {
		sources, err := corpus.Sources(app)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range sources {
			stmts, err := parser.Parse(src.SQL)
			if err != nil {
				t.Fatalf("%s/%s: %v", app, src.Name, err)
			}
			printed := ast.FormatProgram(stmts)
			stmts2, err := parser.Parse(printed)
			if err != nil {
				t.Fatalf("%s/%s: formatted source does not re-parse: %v", app, src.Name, err)
			}
			printed2 := ast.FormatProgram(stmts2)
			if printed != printed2 {
				t.Fatalf("%s/%s: print fixpoint failed", app, src.Name)
			}
			// Clones format identically and stay independent.
			for _, s := range stmts {
				if ast.Format(ast.CloneStmt(s)) != ast.Format(s) {
					t.Fatalf("%s/%s: clone formats differently", app, src.Name)
				}
			}
		}
	}
}

// TestParserNeverPanics feeds mangled corpus fragments to the parser: it
// must fail cleanly, never panic.
func TestParserNeverPanics(t *testing.T) {
	sources, err := corpus.Sources("rubis")
	if err != nil {
		t.Fatal(err)
	}
	base := sources[0].SQL
	mangle := []func(string) string{
		func(s string) string { return s[:len(s)/2] },
		func(s string) string { return s[len(s)/3:] },
		func(s string) string { return s + " select" },
		func(s string) string { return "begin " + s },
		func(s string) string {
			out := []byte(s)
			for i := 7; i < len(out); i += 13 {
				out[i] = byte("()';=@"[i%6])
			}
			return string(out)
		},
	}
	for i, m := range mangle {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("mangle %d: parser panicked: %v", i, r)
				}
			}()
			_, _ = parser.Parse(m(base)) // error or success, never panic
		}()
	}
}
