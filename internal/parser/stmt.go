package parser

import (
	"strconv"
	"strings"

	"aggify/internal/ast"
	"aggify/internal/sqltypes"
)

// Parse parses a whole program (a sequence of statements, optionally
// separated by semicolons and GO batch separators).
func Parse(src string) ([]ast.Stmt, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	return p.ParseProgram()
}

// MustParse parses a program and panics on error; for tests and embedded
// workload definitions whose sources are fixed.
func MustParse(src string) []ast.Stmt {
	stmts, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return stmts
}

// Span is the byte range [Start, End) a statement occupies in the source
// text handed to ParseSpans. The range starts at the statement's first
// token and ends just before the next statement's first token (or at end
// of input), so it may include a trailing semicolon, whitespace, or
// comments — all of which the fingerprint normalizer ignores.
type Span struct {
	Start, End int
}

// ParseSpans parses a whole program like Parse, additionally reporting the
// source span of each statement so callers can slice out per-statement raw
// text (for fingerprinting, slow-query capture, activity views) without
// re-lexing. len(spans) == len(stmts).
func ParseSpans(src string) ([]ast.Stmt, []Span, error) {
	p, err := New(src)
	if err != nil {
		return nil, nil, err
	}
	var stmts []ast.Stmt
	var spans []Span
	for {
		p.skipSeparators()
		if p.cur().kind == tokEOF {
			return stmts, spans, nil
		}
		start := p.cur().pos
		s, err := p.ParseStmt()
		if err != nil {
			return nil, nil, err
		}
		stmts = append(stmts, s)
		spans = append(spans, Span{Start: start, End: p.cur().pos})
	}
}

// ParseProgram parses statements until EOF.
func (p *Parser) ParseProgram() ([]ast.Stmt, error) {
	var out []ast.Stmt
	for {
		p.skipSeparators()
		if p.cur().kind == tokEOF {
			return out, nil
		}
		s, err := p.ParseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *Parser) skipSeparators() {
	for p.isPunct(";") || p.isKw("go") {
		p.advance()
	}
}

// ParseStmt parses a single statement.
func (p *Parser) ParseStmt() (ast.Stmt, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, p.errf("expected statement, found %q", t.text)
	}
	switch t.text {
	case "begin":
		if p.peek().text == "try" {
			return p.parseTryCatch()
		}
		if kw := p.peek().text; kw == "transaction" || kw == "tran" {
			p.advance()
			p.advance()
			p.endStmt()
			return &ast.TxnStmt{Op: ast.TxnBegin}, nil
		}
		return p.parseBlock()
	case "commit":
		p.advance()
		if kw := p.cur().text; kw == "transaction" || kw == "tran" || kw == "work" {
			p.advance()
		}
		p.endStmt()
		return &ast.TxnStmt{Op: ast.TxnCommit}, nil
	case "rollback":
		p.advance()
		if kw := p.cur().text; kw == "transaction" || kw == "tran" || kw == "work" {
			p.advance()
		}
		p.endStmt()
		return &ast.TxnStmt{Op: ast.TxnRollback}, nil
	case "declare":
		return p.parseDeclare()
	case "set":
		return p.parseSet()
	case "if":
		return p.parseIf()
	case "while":
		return p.parseWhile()
	case "for":
		return p.parseFor()
	case "break":
		p.advance()
		p.endStmt()
		return &ast.BreakStmt{}, nil
	case "continue":
		p.advance()
		p.endStmt()
		return &ast.ContinueStmt{}, nil
	case "return":
		p.advance()
		if p.isPunct(";") || p.cur().kind == tokEOF || p.isKw("end") {
			p.endStmt()
			return &ast.ReturnStmt{}, nil
		}
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		p.endStmt()
		return &ast.ReturnStmt{Value: e}, nil
	case "open":
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		p.endStmt()
		return &ast.OpenCursor{Name: name}, nil
	case "close":
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		p.endStmt()
		return &ast.CloseCursor{Name: name}, nil
	case "deallocate":
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		p.endStmt()
		return &ast.DeallocateCursor{Name: name}, nil
	case "fetch":
		return p.parseFetch()
	case "select", "with":
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		p.endStmt()
		return &ast.QueryStmt{Query: q}, nil
	case "explain":
		p.advance()
		if p.acceptKw("procedure") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			p.endStmt()
			return &ast.ExplainProcStmt{Proc: name}, nil
		}
		analyze := p.acceptKw("analyze")
		if !p.isKw("select") && !p.isKw("with") {
			return nil, p.errf("expected SELECT or WITH after EXPLAIN, found %q", p.cur().text)
		}
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		p.endStmt()
		return &ast.ExplainStmt{Analyze: analyze, Query: q}, nil
	case "insert":
		return p.parseInsert()
	case "update":
		return p.parseUpdate()
	case "delete":
		return p.parseDelete()
	case "print":
		p.advance()
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		p.endStmt()
		return &ast.PrintStmt{E: e}, nil
	case "exec":
		return p.parseExec()
	case "trace":
		return p.parseTraceProc()
	case "create":
		return p.parseCreate()
	case "try", "catch":
		return nil, p.errf("unexpected %q", t.text)
	}
	return nil, p.errf("unknown statement %q", t.text)
}

// endStmt consumes an optional trailing semicolon.
func (p *Parser) endStmt() { p.acceptPunct(";") }

func (p *Parser) parseBlock() (ast.Stmt, error) {
	if err := p.expectKw("begin"); err != nil {
		return nil, err
	}
	b := &ast.Block{}
	for {
		p.skipSeparators()
		if p.acceptKw("end") {
			p.endStmt()
			return b, nil
		}
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated BEGIN block")
		}
		s, err := p.ParseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
}

func (p *Parser) parseTryCatch() (ast.Stmt, error) {
	p.advance() // BEGIN
	p.advance() // TRY
	tryBlock := &ast.Block{}
	for {
		p.skipSeparators()
		if p.isKw("end") && p.peek().text == "try" {
			p.advance()
			p.advance()
			break
		}
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated BEGIN TRY")
		}
		s, err := p.ParseStmt()
		if err != nil {
			return nil, err
		}
		tryBlock.Stmts = append(tryBlock.Stmts, s)
	}
	if err := p.expectKw("begin"); err != nil {
		return nil, err
	}
	if err := p.expectKw("catch"); err != nil {
		return nil, err
	}
	catchBlock := &ast.Block{}
	for {
		p.skipSeparators()
		if p.isKw("end") && p.peek().text == "catch" {
			p.advance()
			p.advance()
			p.endStmt()
			break
		}
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated BEGIN CATCH")
		}
		s, err := p.ParseStmt()
		if err != nil {
			return nil, err
		}
		catchBlock.Stmts = append(catchBlock.Stmts, s)
	}
	return &ast.TryCatch{Try: tryBlock, Catch: catchBlock}, nil
}

// parseDeclare handles scalar variables, table variables, and cursors.
func (p *Parser) parseDeclare() (ast.Stmt, error) {
	p.advance() // DECLARE
	if p.cur().kind == tokIdent {
		// DECLARE name CURSOR FOR query
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("cursor"); err != nil {
			return nil, err
		}
		if err := p.expectKw("for"); err != nil {
			return nil, err
		}
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		p.endStmt()
		return &ast.DeclareCursor{Name: name, Query: q}, nil
	}
	if p.cur().kind != tokVar {
		return nil, p.errf("expected variable or cursor name after DECLARE")
	}
	name := p.advance().text
	if p.isKw("table") {
		p.advance()
		cols, err := p.parseColumnDefs()
		if err != nil {
			return nil, err
		}
		p.endStmt()
		return &ast.DeclareTable{Name: name, Cols: cols}, nil
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	dv := &ast.DeclareVar{Name: name, Type: typ}
	if p.acceptPunct("=") {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		dv.Init = e
	}
	// Multiple declarations: DECLARE @a INT, @b INT = 2 become a block.
	if p.isPunct(",") {
		block := &ast.Block{Stmts: []ast.Stmt{dv}}
		for p.acceptPunct(",") {
			if p.cur().kind != tokVar {
				return nil, p.errf("expected variable in DECLARE list")
			}
			n := p.advance().text
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			d := &ast.DeclareVar{Name: n, Type: t}
			if p.acceptPunct("=") {
				e, err := p.ParseExpr()
				if err != nil {
					return nil, err
				}
				d.Init = e
			}
			block.Stmts = append(block.Stmts, d)
		}
		p.endStmt()
		return block, nil
	}
	p.endStmt()
	return dv, nil
}

func (p *Parser) parseType() (sqltypes.Type, error) {
	name, err := p.typeName()
	if err != nil {
		return sqltypes.Unknown, err
	}
	var args []int
	if p.isPunct("(") {
		p.advance()
		for {
			t := p.cur()
			if t.kind != tokNumber {
				return sqltypes.Unknown, p.errf("expected number in type arguments")
			}
			n, err := strconv.Atoi(t.text)
			if err != nil {
				return sqltypes.Unknown, p.errf("bad type argument %q", t.text)
			}
			p.advance()
			args = append(args, n)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return sqltypes.Unknown, err
		}
	}
	typ, err := sqltypes.ParseType(name, args...)
	if err != nil {
		return sqltypes.Unknown, p.errf("%v", err)
	}
	return typ, nil
}

// typeName accepts an identifier even if it collides with a keyword (DATE
// is both a keyword and a type name).
func (p *Parser) typeName() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected type name, found %q", t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *Parser) parseSet() (ast.Stmt, error) {
	p.advance() // SET
	// Session options are bare identifiers: SET MAXDOP = 4.
	if p.isKw("maxdop") {
		opt := strings.ToLower(p.advance().text)
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		p.endStmt()
		return &ast.SetOption{Name: opt, Value: e}, nil
	}
	st := &ast.SetStmt{}
	if p.isPunct("(") {
		p.advance()
		for {
			if p.cur().kind != tokVar {
				return nil, p.errf("expected variable in SET target list")
			}
			st.Targets = append(st.Targets, p.advance().text)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	} else {
		if p.cur().kind != tokVar {
			return nil, p.errf("expected variable after SET")
		}
		st.Targets = []string{p.advance().text}
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	e, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	st.Value = e
	p.endStmt()
	return st, nil
}

func (p *Parser) parseIf() (ast.Stmt, error) {
	p.advance() // IF
	cond, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.ParseStmt()
	if err != nil {
		return nil, err
	}
	st := &ast.IfStmt{Cond: cond, Then: then}
	p.skipSeparators()
	if p.acceptKw("else") {
		e, err := p.ParseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = e
	}
	return st, nil
}

func (p *Parser) parseWhile() (ast.Stmt, error) {
	p.advance() // WHILE
	cond, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.ParseStmt()
	if err != nil {
		return nil, err
	}
	return &ast.WhileStmt{Cond: cond, Body: body}, nil
}

// parseFor parses the §8.1 counted loop:
// FOR (@i = 0; @i <= 100; @i = @i + 1) stmt
func (p *Parser) parseFor() (ast.Stmt, error) {
	p.advance() // FOR
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	st := &ast.ForStmt{}
	if p.cur().kind != tokVar {
		return nil, p.errf("expected loop variable in FOR")
	}
	st.InitVar = p.advance().text
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	var err error
	if st.InitExpr, err = p.ParseExpr(); err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if st.Cond, err = p.ParseExpr(); err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if p.cur().kind != tokVar {
		return nil, p.errf("expected loop variable in FOR increment")
	}
	st.PostVar = p.advance().text
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	if st.PostExpr, err = p.ParseExpr(); err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if st.Body, err = p.ParseStmt(); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseFetch() (ast.Stmt, error) {
	p.advance() // FETCH
	if err := p.expectKw("next"); err != nil {
		return nil, err
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	cursor, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	st := &ast.FetchStmt{Cursor: cursor}
	for {
		if p.cur().kind != tokVar {
			return nil, p.errf("expected variable in FETCH INTO list")
		}
		st.Into = append(st.Into, p.advance().text)
		if !p.acceptPunct(",") {
			break
		}
	}
	p.endStmt()
	return st, nil
}

func (p *Parser) parseInsert() (ast.Stmt, error) {
	p.advance() // INSERT
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	st := &ast.InsertStmt{}
	if p.cur().kind == tokVar {
		st.Table = p.advance().text
	} else {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Table = name
	}
	if p.isPunct("(") {
		p.advance()
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("values") {
		for {
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			var row []ast.Expr
			for {
				e, err := p.ParseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			st.Rows = append(st.Rows, row)
			if !p.acceptPunct(",") {
				break
			}
		}
		p.endStmt()
		return st, nil
	}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	st.Query = q
	p.endStmt()
	return st, nil
}

func (p *Parser) parseUpdate() (ast.Stmt, error) {
	p.advance() // UPDATE
	st := &ast.UpdateStmt{}
	if p.cur().kind == tokVar {
		st.Table = p.advance().text
	} else {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Table = name
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, ast.SetClause{Column: col, Value: e})
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKw("where") {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	p.endStmt()
	return st, nil
}

func (p *Parser) parseDelete() (ast.Stmt, error) {
	p.advance() // DELETE
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	st := &ast.DeleteStmt{}
	if p.cur().kind == tokVar {
		st.Table = p.advance().text
	} else {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Table = name
	}
	if p.acceptKw("where") {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	p.endStmt()
	return st, nil
}

func (p *Parser) parseExec() (ast.Stmt, error) {
	p.advance() // EXEC
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &ast.ExecStmt{Proc: name}
	if !p.isPunct(";") && p.cur().kind != tokEOF && !p.isKw("end") && !p.isKw("go") {
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			st.Args = append(st.Args, e)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	p.endStmt()
	return st, nil
}

// parseTraceProc parses TRACE PROCEDURE name [arg1, arg2, ...] — a profiled
// procedure invocation (the argument list mirrors EXEC).
func (p *Parser) parseTraceProc() (ast.Stmt, error) {
	p.advance() // TRACE
	if err := p.expectKw("procedure"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &ast.TraceProcStmt{Proc: name}
	if !p.isPunct(";") && p.cur().kind != tokEOF && !p.isKw("end") && !p.isKw("go") {
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			st.Args = append(st.Args, e)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	p.endStmt()
	return st, nil
}

func (p *Parser) parseColumnDefs() ([]ast.ColumnDef, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []ast.ColumnDef
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		cols = append(cols, ast.ColumnDef{Name: name, Type: typ})
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return cols, nil
}

func (p *Parser) parseParams() ([]ast.Param, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []ast.Param
	if p.acceptPunct(")") {
		return params, nil
	}
	for {
		if p.cur().kind != tokVar {
			return nil, p.errf("expected parameter variable")
		}
		name := p.advance().text
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		param := ast.Param{Name: name, Type: typ}
		if p.acceptPunct("=") {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			param.Default = e
		}
		params = append(params, param)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *Parser) parseCreate() (ast.Stmt, error) {
	p.advance() // CREATE
	switch {
	case p.isKw("table"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		cols, err := p.parseColumnDefs()
		if err != nil {
			return nil, err
		}
		p.endStmt()
		return &ast.CreateTable{Name: name, Cols: cols}, nil
	case p.isKw("index"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		column, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		ordered := false
		if p.isKw("using") {
			p.advance()
			switch {
			case p.isKw("hash"):
				p.advance()
			case p.isKw("ordered"):
				p.advance()
				ordered = true
			default:
				return nil, p.errf("expected HASH or ORDERED after USING")
			}
		}
		p.endStmt()
		return &ast.CreateIndex{Name: name, Table: table, Column: column, Ordered: ordered}, nil
	case p.isKw("function"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params, err := p.parseParams()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("returns"); err != nil {
			return nil, err
		}
		ret, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("as"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ast.CreateFunction{Name: name, Params: params, Returns: ret, Body: body.(*ast.Block)}, nil
	case p.isKw("procedure"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params, err := p.parseParams()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("as"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ast.CreateProcedure{Name: name, Params: params, Body: body.(*ast.Block)}, nil
	case p.isKw("aggregate"):
		return p.parseCreateAggregate()
	}
	return nil, p.errf("unsupported CREATE %q", p.cur().text)
}

// parseCreateAggregate parses the Figure 4 template:
//
//	CREATE AGGREGATE name(params) RETURNS type AS BEGIN
//	  FIELDS (@f1 T1, ...);
//	  INIT BEGIN ... END
//	  ACCUMULATE BEGIN ... END
//	  TERMINATE BEGIN ... END
//	END
func (p *Parser) parseCreateAggregate() (ast.Stmt, error) {
	p.advance() // AGGREGATE
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("returns"); err != nil {
		return nil, err
	}
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("as"); err != nil {
		return nil, err
	}
	if err := p.expectKw("begin"); err != nil {
		return nil, err
	}
	agg := &ast.CreateAggregate{Name: name, Params: params, Returns: ret}
	if err := p.expectKw("fields"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		if p.cur().kind != tokVar {
			return nil, p.errf("expected field variable in FIELDS")
		}
		fname := p.advance().text
		ftyp, err := p.parseType()
		if err != nil {
			return nil, err
		}
		agg.Fields = append(agg.Fields, ast.ColumnDef{Name: fname, Type: ftyp})
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	p.endStmt()
	if err := p.expectKw("init"); err != nil {
		return nil, err
	}
	initBlock, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("accumulate"); err != nil {
		return nil, err
	}
	accBlock, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("terminate"); err != nil {
		return nil, err
	}
	termBlock, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	// Optional MERGE section: folds another instance's state (visible as
	// @other_<field> variables) into this one, enabling parallel aggregation.
	var mergeBlock ast.Stmt
	if p.acceptKw("merge") {
		mergeBlock, err = p.parseBlock()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	p.endStmt()
	agg.Init = initBlock.(*ast.Block)
	agg.Accum = accBlock.(*ast.Block)
	agg.Terminate = termBlock.(*ast.Block)
	if mergeBlock != nil {
		agg.Merge = mergeBlock.(*ast.Block)
	}
	return agg, nil
}
