package interp

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"aggify/internal/ast"
	"aggify/internal/core"
	"aggify/internal/engine"
	"aggify/internal/sqltypes"
)

// Profile collects per-statement execution statistics for one profiled
// invocation. Statements are keyed by AST node identity (all statement nodes
// are pointers), so the same node executed many times — a loop body —
// accumulates into one entry. Times are inclusive: a WHILE's entry covers
// everything run inside it.
type Profile struct {
	stmts map[ast.Stmt]*stmtStats
	// fetchOK counts successful fetches (a row assigned) per FETCH node,
	// which is how rows-per-loop is attributed.
	fetchOK map[*ast.FetchStmt]int64
}

// stmtStats is one statement node's accumulated cost.
type stmtStats struct {
	count int64
	wall  time.Duration
	reads int64
}

func newProfile() *Profile {
	return &Profile{stmts: map[ast.Stmt]*stmtStats{}, fetchOK: map[*ast.FetchStmt]int64{}}
}

func (p *Profile) stat(s ast.Stmt) *stmtStats {
	st, ok := p.stmts[s]
	if !ok {
		st = &stmtStats{}
		p.stmts[s] = st
	}
	return st
}

// Count returns how many times the statement node executed.
func (p *Profile) Count(s ast.Stmt) int64 {
	if st, ok := p.stmts[s]; ok {
		return st.count
	}
	return 0
}

// Wall returns the statement node's inclusive wall time.
func (p *Profile) Wall(s ast.Stmt) time.Duration {
	if st, ok := p.stmts[s]; ok {
		return st.wall
	}
	return 0
}

// Reads returns the statement node's inclusive logical reads.
func (p *Profile) Reads(s ast.Stmt) int64 {
	if st, ok := p.stmts[s]; ok {
		return st.reads
	}
	return 0
}

// LoopProfile aggregates one cursor loop's cost within a profiled
// invocation.
type LoopProfile struct {
	// Cursor names the loop's cursor.
	Cursor string
	// Iterations is how many times the loop body ran.
	Iterations int64
	// RowsFetched counts rows the loop's FETCH statements assigned
	// (priming fetch included).
	RowsFetched int64
	// BodyWall / BodyReads are the inclusive cost of the loop body across
	// all iterations; LoopWall is the WHILE statement itself (condition
	// re-evaluation included).
	BodyWall  time.Duration
	BodyReads int64
	LoopWall  time.Duration
	// TimeShare is LoopWall as a fraction of the whole invocation, in
	// [0, 1].
	TimeShare float64
	// AggifyCandidate reports that the Aggify applicability analysis
	// (§4.2) accepts the loop; Reason explains a rejection and Code is
	// its stable reason code (see core.ReasonCode).
	AggifyCandidate bool
	Reason          string
	Code            core.ReasonCode
}

// ProcedureProfile is the result of one TRACE PROCEDURE invocation.
type ProcedureProfile struct {
	Proc  string
	Wall  time.Duration
	Reads int64
	Loops []LoopProfile
	// NeverAttempted counts cursor-style WHILE loops (conditioned on
	// @@fetch_status) that the rewrite pattern matcher did not even
	// attempt — as opposed to matched loops it examined and rejected.
	NeverAttempted int
	// Stmts lists the top-level body statements with their inclusive
	// costs, in source order (the per-statement attribution view).
	Stmts []StmtProfile
}

// StmtProfile is one statement's attributed cost.
type StmtProfile struct {
	Text  string // first line of the rendered statement
	Count int64
	Wall  time.Duration
	Reads int64
	// Tier is the execution tier the compile-first pipeline chose for
	// this statement ("" when the whole procedure runs interpreted);
	// TierWhy explains an interpreted choice.
	Tier    string
	TierWhy string
}

// ProfileProcedure runs a registered procedure with profiling enabled and
// returns the per-statement and per-loop attribution. The procedure really
// executes (side effects included), exactly like EXEC.
func ProfileProcedure(s *engine.Session, name string, args ...sqltypes.Value) (*ProcedureProfile, error) {
	def, ok := s.Eng.Procedure(name)
	if !ok {
		return nil, fmt.Errorf("interp: unknown procedure %s", name)
	}
	r := NewRunner(s)
	r.Prof = newProfile()
	defer r.cleanup()
	if err := bindParams(r.Frame, def.Params, args, r.eval); err != nil {
		return nil, fmt.Errorf("interp: profiling %s: %w", name, err)
	}
	start := time.Now()
	readsBefore := s.Stats.LogicalReads.Load()
	err := r.Run(def.Body.Stmts)
	if _, isReturn := err.(returnSignal); isReturn {
		err = nil
	}
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	return buildProcedureProfile(name, def.Body, r.Prof, wall, s.Stats.LogicalReads.Load()-readsBefore, routineForProc(s.Eng, def)), nil
}

// buildProcedureProfile assembles the report from the raw per-node stats,
// joining on the compile-first pipeline's tier decisions when the
// procedure has a compiled form.
func buildProcedureProfile(name string, body *ast.Block, prof *Profile, wall time.Duration, reads int64, rt *routine) *ProcedureProfile {
	out := &ProcedureProfile{Proc: name, Wall: wall, Reads: reads}
	for _, loop := range core.FindCursorLoops(body) {
		lp := LoopProfile{
			Cursor:      loop.Cursor,
			Iterations:  prof.Count(loop.While.Body),
			RowsFetched: prof.fetchOK[loop.Prime] + prof.fetchOK[loop.Inner],
			BodyWall:    prof.Wall(loop.While.Body),
			BodyReads:   prof.Reads(loop.While.Body),
			LoopWall:    prof.Wall(loop.While),
		}
		if wall > 0 {
			lp.TimeShare = float64(lp.LoopWall) / float64(wall)
		}
		if err := core.CheckApplicability(loop, core.OuterTableVars(body, loop.While.Body)); err != nil {
			lp.Reason = err.Error()
			lp.Code = core.ReasonUnmatchedPattern
			var na *core.NotAggifiableError
			if errors.As(err, &na) {
				lp.Code = na.Code
			}
		} else {
			lp.AggifyCandidate = true
		}
		out.Loops = append(out.Loops, lp)
	}
	for range core.FindUnmatchedCursorWhiles(body) {
		out.NeverAttempted++
		core.CountUnmatched()
	}
	tierOf := map[ast.Stmt]StmtTier{}
	if rt != nil {
		for _, t := range rt.tiers {
			if t.node != nil {
				tierOf[t.node] = t
			}
		}
	}
	for _, st := range body.Stmts {
		sp := StmtProfile{
			Text:  stmtLabel(st),
			Count: prof.Count(st),
			Wall:  prof.Wall(st),
			Reads: prof.Reads(st),
		}
		if t, ok := tierOf[st]; ok {
			sp.Tier, sp.TierWhy = t.Tier, t.Why
		}
		out.Stmts = append(out.Stmts, sp)
	}
	// Heaviest loops first: the report exists to point at the loop worth
	// aggifying.
	sort.SliceStable(out.Loops, func(i, j int) bool { return out.Loops[i].LoopWall > out.Loops[j].LoopWall })
	return out
}

// stmtLabel renders a statement's first line as its report label.
func stmtLabel(s ast.Stmt) string {
	text := ast.Format(s)
	for i := 0; i < len(text); i++ {
		if text[i] == '\n' {
			return text[:i]
		}
	}
	return text
}

// Lines renders the profile as the TRACE PROCEDURE result set, one line per
// row. The format is stable enough for tests to assert on: the procedure
// header, each top-level statement, then each cursor loop with its
// aggify_candidate verdict.
func (p *ProcedureProfile) Lines() []string {
	out := []string{fmt.Sprintf("procedure %s: wall_us=%d reads=%d", p.Proc, p.Wall.Microseconds(), p.Reads)}
	for _, st := range p.Stmts {
		line := fmt.Sprintf("stmt count=%d wall_us=%d reads=%d :: %s", st.Count, st.Wall.Microseconds(), st.Reads, st.Text)
		if st.Tier != "" {
			line += " tier=" + st.Tier
			if st.TierWhy != "" {
				line += " (" + st.TierWhy + ")"
			}
		}
		out = append(out, line)
	}
	for _, lp := range p.Loops {
		verdict := "aggify_candidate=false verdict=rejected code=" + string(lp.Code)
		if lp.AggifyCandidate {
			verdict = "aggify_candidate=true"
		}
		line := fmt.Sprintf("cursor loop %s: iterations=%d rows_fetched=%d body_wall_us=%d body_reads=%d time_share=%.1f%% %s",
			lp.Cursor, lp.Iterations, lp.RowsFetched, lp.BodyWall.Microseconds(), lp.BodyReads, lp.TimeShare*100, verdict)
		if lp.Reason != "" {
			line += " (" + lp.Reason + ")"
		}
		out = append(out, line)
	}
	for i := 0; i < p.NeverAttempted; i++ {
		out = append(out, fmt.Sprintf("cursor-style WHILE loop: verdict=never_attempted code=%s", core.ReasonUnmatchedPattern))
	}
	return out
}
