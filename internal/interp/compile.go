package interp

import (
	"fmt"
	"strings"

	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/exec"
	"aggify/internal/plan"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// The block compiler turns the method bodies of a generated custom
// aggregate into Go closure chains over a slot-based variable frame. This
// mirrors the paper's prototype, which emits *compiled* C# aggregates while
// cursor loops remain interpreted T-SQL (§9): the asymmetry is part of why
// Aggify wins, so the reproduction preserves it mechanically. Bodies that
// use statements outside the compilable subset fall back to the interpreted
// aggregate path transparently.

// compiledStmt executes one compiled statement against a machine.
type compiledStmt func(m *machine) error

// evalFn evaluates one compiled scalar expression against a machine. In
// routine mode, expressions that can touch stored data (subqueries, UDF
// calls) pin a read snapshot around the evaluation, exactly as the
// interpreter's eval does; aggregate bodies always run inside a query
// that already pinned one, so their evalFns skip the check entirely.
type evalFn func(m *machine) (sqltypes.Value, error)

// tableDef is the schema prototype of a compiled DECLARE TABLE.
type tableDef struct {
	slot   int
	name   string
	schema *storage.Schema
}

// cursorDef is a compiled DECLARE CURSOR.
type cursorDef struct {
	slot  int
	name  string
	query *ast.Select
}

// program is a fully compiled aggregate definition.
type program struct {
	def *ast.CreateAggregate

	slotIndex map[string]int
	slotTypes []sqltypes.Type
	nSlots    int
	fetchSlot int

	tableIndex map[string]int
	tableDefs  []tableDef
	nTables    int

	cursorIndex map[string]int
	nCursors    int

	paramSlots []int

	init, accum, term compiledStmt
	// merge, when non-nil, folds another instance's state (pre-copied into
	// the @other_<field> slots) into this one.
	merge compiledStmt
	// mergeCopies maps each field's slot (in the other instance) to the
	// corresponding @other_<field> slot in this instance.
	mergeCopies []slotPair
}

// slotPair is one field → @other_<field> slot mapping for Merge.
type slotPair struct{ from, to int }

// machine is one executing instance of a compiled program.
type machine struct {
	prog    *program
	sess    *engine.Session
	ctx     *exec.Ctx
	slots   []sqltypes.Value
	tables  []*storage.Table
	cursors []*engine.Cursor
}

func newMachine(prog *program, sess *engine.Session) *machine {
	m := &machine{
		prog:    prog,
		sess:    sess,
		slots:   make([]sqltypes.Value, prog.nSlots),
		tables:  make([]*storage.Table, prog.nTables),
		cursors: make([]*engine.Cursor, prog.nCursors),
	}
	m.ctx = sess.Ctx(
		func(name string) (sqltypes.Value, bool) {
			if i, ok := prog.slotIndex[name]; ok {
				return m.slots[i], true
			}
			return sqltypes.Null, false
		},
		func(name string) (*storage.Table, bool) {
			if i, ok := prog.tableIndex[name]; ok && m.tables[i] != nil {
				return m.tables[i], true
			}
			return nil, false
		},
	)
	m.ctx.VarSlots = m.slots
	return m
}

func (m *machine) assign(slot int, v sqltypes.Value) error {
	cv, err := v.CoerceTo(m.prog.slotTypes[slot])
	if err != nil {
		return err
	}
	m.slots[slot] = cv
	return nil
}

// blockCompiler compiles one aggregate definition or routine body.
type blockCompiler struct {
	eng  *engine.Engine
	prog *program
	cat  plan.Catalog

	// bridge enables statement-level fallthrough to the interpreter:
	// statements outside the compilable subset (or whose scalar
	// expressions fail to compile, e.g. against a table that only exists
	// at runtime) execute through a per-statement interpreter bridge
	// instead of failing the whole compilation. Aggregate bodies keep
	// bridge=false — an uncompilable aggregate falls back wholesale to
	// the interpreted aggregate, preserving the paper's §9 asymmetry.
	bridge bool
	// pinEvals marks routine mode: scalar evaluations that can read
	// stored data pin their own statement-level read snapshot.
	pinEvals bool

	// tiers records the per-statement compile/interpret decision for
	// EXPLAIN PROCEDURE and the coverage meter (routine mode only).
	tiers []StmtTier
	depth int
}

// compileAggregate compiles def; a nil program with a non-nil error means
// the body is outside the compilable subset (caller falls back to the
// interpreter).
func compileAggregate(eng *engine.Engine, def *ast.CreateAggregate) (*program, error) {
	prog := &program{
		def:         def,
		slotIndex:   map[string]int{},
		tableIndex:  map[string]int{},
		cursorIndex: map[string]int{},
	}
	bc := &blockCompiler{eng: eng, prog: prog}

	addSlot := func(name string, t sqltypes.Type) int {
		if i, ok := prog.slotIndex[name]; ok {
			prog.slotTypes[i] = t
			return i
		}
		i := prog.nSlots
		prog.slotIndex[name] = i
		prog.slotTypes = append(prog.slotTypes, t)
		prog.nSlots++
		return i
	}
	prog.fetchSlot = addSlot(ast.FetchStatusVar, sqltypes.Int)
	for _, f := range def.Fields {
		addSlot(f.Name, f.Type)
	}
	for _, p := range def.Params {
		prog.paramSlots = append(prog.paramSlots, addSlot(p.Name, p.Type))
	}
	// Pre-scan: declare slots, table prototypes, and cursor indexes for
	// everything in the three method bodies.
	protoTables := map[string]*storage.Table{}
	var scan func(s ast.Stmt) error
	scan = func(s ast.Stmt) error {
		var err error
		ast.WalkStmt(s, func(st ast.Stmt) bool {
			switch x := st.(type) {
			case *ast.DeclareVar:
				addSlot(x.Name, x.Type)
			case *ast.DeclareTable:
				if _, ok := prog.tableIndex[x.Name]; !ok {
					cols := make([]storage.Column, len(x.Cols))
					for i, c := range x.Cols {
						cols[i] = storage.Col(c.Name, c.Type)
					}
					schema := storage.NewSchema(cols...)
					prog.tableIndex[x.Name] = prog.nTables
					prog.tableDefs = append(prog.tableDefs, tableDef{slot: prog.nTables, name: x.Name, schema: schema})
					prog.nTables++
					protoTables[x.Name] = storage.NewTable(x.Name, schema)
				}
			case *ast.DeclareCursor:
				if _, ok := prog.cursorIndex[x.Name]; !ok {
					prog.cursorIndex[x.Name] = prog.nCursors
					prog.nCursors++
				}
			case *ast.QueryStmt:
				err = fmt.Errorf("interp: result-set SELECT is not compilable")
			case *ast.ExecStmt:
				err = fmt.Errorf("interp: EXEC is not compilable")
			case *ast.CreateTable, *ast.CreateIndex, *ast.CreateFunction, *ast.CreateProcedure, *ast.CreateAggregate:
				err = fmt.Errorf("interp: DDL is not compilable")
			}
			return err == nil
		})
		return err
	}
	bodies := []*ast.Block{def.Init, def.Accum, def.Terminate}
	if def.Merge != nil {
		// The Merge body sees the other instance's fields as @other_<field>
		// variables; give each its own slot alongside the regular fields.
		for _, f := range def.Fields {
			other := ast.OtherFieldVar(f.Name)
			prog.mergeCopies = append(prog.mergeCopies, slotPair{from: prog.slotIndex[f.Name], to: addSlot(other, f.Type)})
		}
		bodies = append(bodies, def.Merge)
	}
	for _, b := range bodies {
		if err := scan(b); err != nil {
			return nil, err
		}
	}
	bc.cat = eng.CatalogWithTemp(func(name string) (*storage.Table, bool) {
		t, ok := protoTables[name]
		return t, ok
	})

	var err error
	if prog.init, err = bc.stmt(def.Init); err != nil {
		return nil, err
	}
	if prog.accum, err = bc.stmt(def.Accum); err != nil {
		return nil, err
	}
	if prog.term, err = bc.stmt(def.Terminate); err != nil {
		return nil, err
	}
	if def.Merge != nil {
		if prog.merge, err = bc.stmt(def.Merge); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// scalar compiles an expression with slot-resolved variables.
func (bc *blockCompiler) scalar(e ast.Expr) (evalFn, error) {
	sc, err := plan.CompileScalarSlots(bc.cat, plan.Options{}, e, bc.prog.slotIndex)
	if err != nil {
		return nil, err
	}
	if bc.pinEvals && bc.exprReadsData(e) {
		return func(m *machine) (sqltypes.Value, error) {
			defer m.sess.PinRead(m.ctx)()
			return sc(m.ctx, nil)
		}, nil
	}
	return func(m *machine) (sqltypes.Value, error) { return sc(m.ctx, nil) }, nil
}

// exprReadsData reports whether evaluating e can read stored data: it
// contains a subquery, an IN (SELECT ...), or a call to a registered UDF
// (whose body may query). Pure arithmetic over slots skips snapshot
// pinning on the compiled hot path.
func (bc *blockCompiler) exprReadsData(e ast.Expr) bool {
	reads := false
	ast.WalkExpr(e, func(x ast.Expr) bool {
		switch q := x.(type) {
		case *ast.Subquery:
			reads = true
		case *ast.InExpr:
			if q.Query != nil {
				reads = true
			}
		case *ast.FuncCall:
			if _, ok := bc.eng.Function(q.Name); ok {
				reads = true
			}
		}
		return !reads
	})
	return reads
}

// child compiles a nested statement: with the bridge enabled, a
// statement that fails native compilation (or is outside the compilable
// subset by construction) becomes an interpreter-bridge closure instead
// of an error, and the decision is recorded for EXPLAIN PROCEDURE.
func (bc *blockCompiler) child(s ast.Stmt) (compiledStmt, error) {
	if !bc.bridge {
		return bc.stmt(s)
	}
	if _, ok := s.(*ast.Block); ok {
		// A block is pure sequencing: no tier entry of its own, and its
		// children record at the current depth.
		return bc.stmt(s)
	}
	idx := len(bc.tiers)
	bc.tiers = append(bc.tiers, StmtTier{Text: stmtLabel(s), Depth: bc.depth, Leaf: !isContainer(s), node: s})
	if why, always := interpretedOnly(s); always {
		bc.tiers[idx].Tier, bc.tiers[idx].Why = TierInterpreted, why
		return bc.bridgeStmt(s), nil
	}
	bc.depth++
	c, err := bc.stmt(s)
	bc.depth--
	if err != nil {
		// Drop the partial entries of any children compiled before the
		// failure: the whole statement executes via the bridge.
		bc.tiers = bc.tiers[:idx+1]
		bc.tiers[idx].Tier, bc.tiers[idx].Why = TierInterpreted, strings.TrimPrefix(err.Error(), "interp: ")
		return bc.bridgeStmt(s), nil
	}
	bc.tiers[idx].Tier = TierCompiled
	return c, nil
}

// bridgeStmt wraps one statement in the per-statement interpreter
// bridge: slots, tables, cursors, and @@fetch_status are copied into a
// fresh interpreter frame, the statement runs through the tree-walking
// dispatcher, and every piece of state is copied back — including on
// control-flow signals and errors, where partial effects must remain
// visible exactly as they would interpreting the whole body.
func (bc *blockCompiler) bridgeStmt(s ast.Stmt) compiledStmt {
	return func(m *machine) error { return m.runBridged(s) }
}

func (m *machine) runBridged(s ast.Stmt) error {
	prog := m.prog
	r := NewRunner(m.sess)
	f := r.Frame
	for name, i := range prog.slotIndex {
		if name == ast.FetchStatusVar {
			continue
		}
		f.types[name] = prog.slotTypes[i]
		f.vars[name] = m.slots[i]
	}
	if v := m.slots[prog.fetchSlot]; v.Kind() == sqltypes.KindInt {
		f.fetchStatus = v.Int()
	}
	for name, i := range prog.tableIndex {
		if m.tables[i] != nil {
			f.tables[name] = m.tables[i]
		}
	}
	for name, i := range prog.cursorIndex {
		if m.cursors[i] != nil {
			f.cursors[name] = m.cursors[i]
		}
	}
	err := r.exec(s)
	for name, i := range prog.slotIndex {
		if name == ast.FetchStatusVar {
			continue
		}
		if v, ok := f.vars[name]; ok {
			m.slots[i] = v
		}
	}
	m.slots[prog.fetchSlot] = sqltypes.NewInt(f.fetchStatus)
	for name, i := range prog.tableIndex {
		m.tables[i] = f.tables[name]
	}
	for name, i := range prog.cursorIndex {
		m.cursors[i] = f.cursors[name]
	}
	return err
}

// stmt compiles one statement.
func (bc *blockCompiler) stmt(s ast.Stmt) (compiledStmt, error) {
	switch st := s.(type) {
	case *ast.Block:
		seq := make([]compiledStmt, len(st.Stmts))
		for i, inner := range st.Stmts {
			c, err := bc.child(inner)
			if err != nil {
				return nil, err
			}
			seq[i] = c
		}
		return func(m *machine) error {
			for _, c := range seq {
				if err := c(m); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case *ast.DeclareVar:
		slot := bc.prog.slotIndex[st.Name]
		if st.Init == nil {
			return func(m *machine) error {
				m.slots[slot] = sqltypes.Null
				return nil
			}, nil
		}
		init, err := bc.scalar(st.Init)
		if err != nil {
			return nil, err
		}
		return func(m *machine) error {
			v, err := init(m)
			if err != nil {
				return err
			}
			return m.assign(slot, v)
		}, nil
	case *ast.DeclareTable:
		idx := bc.prog.tableIndex[st.Name]
		def := bc.prog.tableDefs[idx]
		return func(m *machine) error {
			m.tables[idx] = storage.NewTable(def.name, def.schema)
			return nil
		}, nil
	case *ast.SetStmt:
		val, err := bc.scalar(st.Value)
		if err != nil {
			return nil, err
		}
		slots := make([]int, len(st.Targets))
		for i, tgt := range st.Targets {
			slot, ok := bc.prog.slotIndex[tgt]
			if !ok {
				return nil, fmt.Errorf("interp: assignment to undeclared variable %s", tgt)
			}
			slots[i] = slot
		}
		if len(slots) == 1 {
			slot := slots[0]
			return func(m *machine) error {
				v, err := val(m)
				if err != nil {
					return err
				}
				return m.assign(slot, v)
			}, nil
		}
		return func(m *machine) error {
			v, err := val(m)
			if err != nil {
				return err
			}
			var parts []sqltypes.Value
			switch {
			case v.Kind() == sqltypes.KindTuple:
				parts = v.Tuple()
			case v.IsNull():
				parts = make([]sqltypes.Value, len(slots))
			default:
				return fmt.Errorf("interp: SET with %d targets requires a tuple", len(slots))
			}
			if len(parts) != len(slots) {
				return fmt.Errorf("interp: SET targets %d but value has %d attributes", len(slots), len(parts))
			}
			for i, slot := range slots {
				if err := m.assign(slot, parts[i]); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case *ast.IfStmt:
		cond, err := bc.scalar(st.Cond)
		if err != nil {
			return nil, err
		}
		then, err := bc.child(st.Then)
		if err != nil {
			return nil, err
		}
		var els compiledStmt
		if st.Else != nil {
			if els, err = bc.child(st.Else); err != nil {
				return nil, err
			}
		}
		return func(m *machine) error {
			v, err := cond(m)
			if err != nil {
				return err
			}
			if v.Truthy() {
				return then(m)
			}
			if els != nil {
				return els(m)
			}
			return nil
		}, nil
	case *ast.WhileStmt:
		cond, err := bc.scalar(st.Cond)
		if err != nil {
			return nil, err
		}
		body, err := bc.child(st.Body)
		if err != nil {
			return nil, err
		}
		return func(m *machine) error {
			for {
				if m.ctx.Interrupted() {
					return exec.ErrInterrupted
				}
				v, err := cond(m)
				if err != nil {
					return err
				}
				if !v.Truthy() {
					return nil
				}
				if err := body(m); err != nil {
					if err == errBreak {
						return nil
					}
					if err == errContinue {
						continue
					}
					return err
				}
			}
		}, nil
	case *ast.ForStmt:
		initSlot, ok := bc.prog.slotIndex[st.InitVar]
		if !ok {
			return nil, fmt.Errorf("interp: assignment to undeclared variable %s", st.InitVar)
		}
		postSlot, ok := bc.prog.slotIndex[st.PostVar]
		if !ok {
			return nil, fmt.Errorf("interp: assignment to undeclared variable %s", st.PostVar)
		}
		initE, err := bc.scalar(st.InitExpr)
		if err != nil {
			return nil, err
		}
		condE, err := bc.scalar(st.Cond)
		if err != nil {
			return nil, err
		}
		postE, err := bc.scalar(st.PostExpr)
		if err != nil {
			return nil, err
		}
		body, err := bc.child(st.Body)
		if err != nil {
			return nil, err
		}
		return func(m *machine) error {
			v, err := initE(m)
			if err != nil {
				return err
			}
			if err := m.assign(initSlot, v); err != nil {
				return err
			}
			for {
				cv, err := condE(m)
				if err != nil {
					return err
				}
				if !cv.Truthy() {
					return nil
				}
				if err := body(m); err != nil {
					if err == errBreak {
						return nil
					}
					if err != errContinue {
						return err
					}
				}
				pv, err := postE(m)
				if err != nil {
					return err
				}
				if err := m.assign(postSlot, pv); err != nil {
					return err
				}
			}
		}, nil
	case *ast.BreakStmt:
		return func(*machine) error { return errBreak }, nil
	case *ast.ContinueStmt:
		return func(*machine) error { return errContinue }, nil
	case *ast.ReturnStmt:
		if st.Value == nil {
			return func(*machine) error { return returnSignal{val: sqltypes.Null} }, nil
		}
		val, err := bc.scalar(st.Value)
		if err != nil {
			return nil, err
		}
		return func(m *machine) error {
			v, err := val(m)
			if err != nil {
				return err
			}
			return returnSignal{val: v}
		}, nil
	case *ast.DeclareCursor:
		idx := bc.prog.cursorIndex[st.Name]
		query := st.Query
		name := st.Name
		return func(m *machine) error {
			m.cursors[idx] = engine.NewCursor(name, query)
			return nil
		}, nil
	case *ast.OpenCursor:
		idx, ok := bc.prog.cursorIndex[st.Name]
		if !ok {
			return nil, fmt.Errorf("interp: undeclared cursor %s", st.Name)
		}
		return func(m *machine) error {
			if m.cursors[idx] == nil {
				return fmt.Errorf("interp: cursor %s not declared", st.Name)
			}
			return m.cursors[idx].Open(m.sess, m.ctx)
		}, nil
	case *ast.CloseCursor:
		idx, ok := bc.prog.cursorIndex[st.Name]
		if !ok {
			return nil, fmt.Errorf("interp: undeclared cursor %s", st.Name)
		}
		return func(m *machine) error { return m.cursors[idx].Close() }, nil
	case *ast.DeallocateCursor:
		idx, ok := bc.prog.cursorIndex[st.Name]
		if !ok {
			return nil, fmt.Errorf("interp: undeclared cursor %s", st.Name)
		}
		return func(m *machine) error {
			m.cursors[idx].Deallocate()
			return nil
		}, nil
	case *ast.FetchStmt:
		idx, ok := bc.prog.cursorIndex[st.Cursor]
		if !ok {
			return nil, fmt.Errorf("interp: undeclared cursor %s", st.Cursor)
		}
		slots := make([]int, len(st.Into))
		for i, v := range st.Into {
			s, ok := bc.prog.slotIndex[v]
			if !ok {
				return nil, fmt.Errorf("interp: FETCH into undeclared variable %s", v)
			}
			slots[i] = s
		}
		fetchSlot := bc.prog.fetchSlot
		return func(m *machine) error {
			row, more, err := m.cursors[idx].Fetch()
			if err != nil {
				return err
			}
			if !more {
				m.slots[fetchSlot] = sqltypes.NewInt(-1)
				return nil
			}
			if len(row) != len(slots) {
				return fmt.Errorf("interp: FETCH arity mismatch")
			}
			for i, slot := range slots {
				if err := m.assign(slot, row[i]); err != nil {
					return err
				}
			}
			m.slots[fetchSlot] = sqltypes.NewInt(0)
			return nil
		}, nil
	case *ast.InsertStmt:
		return func(m *machine) error {
			_, err := m.sess.Insert(st, m.ctx)
			return err
		}, nil
	case *ast.UpdateStmt:
		return func(m *machine) error {
			_, err := m.sess.Update(st, m.ctx)
			return err
		}, nil
	case *ast.DeleteStmt:
		return func(m *machine) error {
			_, err := m.sess.Delete(st, m.ctx)
			return err
		}, nil
	case *ast.PrintStmt:
		val, err := bc.scalar(st.E)
		if err != nil {
			return nil, err
		}
		return func(m *machine) error {
			v, err := val(m)
			if err != nil {
				return err
			}
			m.sess.Print(v.Display())
			return nil
		}, nil
	case *ast.TryCatch:
		try, err := bc.child(st.Try)
		if err != nil {
			return nil, err
		}
		catch, err := bc.child(st.Catch)
		if err != nil {
			return nil, err
		}
		return func(m *machine) error {
			err := try(m)
			if err == nil || err == errBreak || err == errContinue || err == exec.ErrInterrupted {
				return err
			}
			if _, isReturn := err.(returnSignal); isReturn {
				return err
			}
			return catch(m)
		}, nil
	case *ast.TxnStmt:
		op := st.Op
		return func(m *machine) error {
			switch op {
			case ast.TxnBegin:
				return m.sess.BeginTxn()
			case ast.TxnCommit:
				return m.sess.CommitTxn()
			default:
				return m.sess.RollbackTxn()
			}
		}, nil
	case *ast.SetOption:
		if st.Name != "maxdop" {
			return nil, fmt.Errorf("interp: unknown session option %q", st.Name)
		}
		val, err := bc.scalar(st.Value)
		if err != nil {
			return nil, err
		}
		return func(m *machine) error {
			v, err := val(m)
			if err != nil {
				return err
			}
			if v.Kind() != sqltypes.KindInt || v.Int() < 0 {
				return fmt.Errorf("interp: SET MAXDOP requires a non-negative integer, got %s", v)
			}
			m.sess.SetMaxDOP(int(v.Int()))
			return nil
		}, nil
	}
	return nil, fmt.Errorf("interp: statement %T is not compilable", s)
}

// compiledAgg is a compiled custom aggregate instance.
type compiledAgg struct {
	prog     *program
	m        *machine
	needInit bool
}

// Reset implements exec.Aggregator.
func (a *compiledAgg) Reset() {
	a.needInit = true
	if a.m != nil {
		for i := range a.m.slots {
			a.m.slots[i] = sqltypes.Null
		}
	}
}

func (a *compiledAgg) ensure(ctx *exec.Ctx) error {
	if a.m == nil {
		sess, ok := ctx.Owner.(*engine.Session)
		if !ok {
			return fmt.Errorf("interp: aggregate %s executed without a session context", a.prog.def.Name)
		}
		a.m = newMachine(a.prog, sess)
	}
	if a.needInit {
		a.needInit = false
		if err := runCompiled(a.prog.init, a.m); err != nil {
			return err
		}
	}
	return nil
}

// runCompiled executes a method body; RETURN acts as an early exit.
func runCompiled(c compiledStmt, m *machine) error {
	err := c(m)
	if _, isReturn := err.(returnSignal); isReturn {
		return nil
	}
	return err
}

// Step implements exec.Aggregator.
func (a *compiledAgg) Step(ctx *exec.Ctx, args []sqltypes.Value) error {
	if err := a.ensure(ctx); err != nil {
		return err
	}
	if len(args) != len(a.prog.paramSlots) {
		return fmt.Errorf("interp: aggregate %s expects %d arguments, got %d", a.prog.def.Name, len(a.prog.paramSlots), len(args))
	}
	for i, slot := range a.prog.paramSlots {
		if err := a.m.assign(slot, args[i]); err != nil {
			return err
		}
	}
	return runCompiled(a.prog.accum, a.m)
}

// Result implements exec.Aggregator.
func (a *compiledAgg) Result(ctx *exec.Ctx) (sqltypes.Value, error) {
	if err := a.ensure(ctx); err != nil {
		return sqltypes.Null, err
	}
	err := a.prog.term(a.m)
	if err == nil {
		return sqltypes.Null, nil
	}
	ret, ok := err.(returnSignal)
	if !ok {
		return sqltypes.Null, err
	}
	v, cerr := ret.val.CoerceTo(a.prog.def.Returns)
	if cerr != nil {
		return sqltypes.Null, fmt.Errorf("interp: terminate of %s: %w", a.prog.def.Name, cerr)
	}
	return v, nil
}

// Merge implements exec.Aggregator: it copies the other instance's field
// slots into this instance's @other_<field> slots and runs the compiled
// MERGE body. An uninitialized other is a no-op; an uninitialized self
// adopts the other's machine wholesale (partition saw no rows).
func (a *compiledAgg) Merge(other exec.Aggregator) error {
	if a.prog.merge == nil {
		return fmt.Errorf("interp: aggregate %s does not support Merge", a.prog.def.Name)
	}
	o, ok := other.(*compiledAgg)
	if !ok || o.prog != a.prog {
		return fmt.Errorf("interp: merge of mismatched aggregate %s", a.prog.def.Name)
	}
	if o.m == nil || o.needInit {
		return nil
	}
	if a.m == nil || a.needInit {
		a.m, a.needInit = o.m, false
		return nil
	}
	for _, p := range a.prog.mergeCopies {
		a.m.slots[p.to] = o.m.slots[p.from]
	}
	return runCompiled(a.prog.merge, a.m)
}
