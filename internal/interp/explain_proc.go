package interp

import (
	"errors"
	"fmt"
	"strings"

	"aggify/internal/ast"
	"aggify/internal/core"
	"aggify/internal/exec"
	"aggify/internal/sqltypes"
)

// execExplainProc runs EXPLAIN PROCEDURE p: the routine is compiled (not
// executed) and the result set shows the three-tier execution picture —
// which cursor loops Aggify would rewrite (and, for rejections, the
// stable reason code), then every body statement with the tier the
// compiler chose for it and why.
func (r *Runner) execExplainProc(st *ast.ExplainProcStmt) error {
	var lines []string
	if def, ok := r.Sess.Eng.Procedure(st.Proc); ok {
		lines = routineTierLines("procedure", def.Name, routineForProc(r.Sess.Eng, def), def.Body)
	} else if def, ok := r.Sess.Eng.Function(st.Proc); ok {
		lines = routineTierLines("function", def.Name, routineForFunc(r.Sess.Eng, def), def.Body)
	} else {
		return fmt.Errorf("interp: unknown procedure %s", st.Proc)
	}
	rows := make([]exec.Row, len(lines))
	for i, l := range lines {
		rows[i] = exec.Row{sqltypes.NewString(l)}
	}
	r.Results = append(r.Results, ResultSet{Columns: []string{"tier"}, Rows: rows})
	return nil
}

// routineTierLines renders the EXPLAIN PROCEDURE report.
func routineTierLines(kind, name string, rt *routine, body *ast.Block) []string {
	var out []string
	if rt == nil {
		out = append(out, fmt.Sprintf("%s %s: compilation unavailable, fully interpreted", kind, name))
	} else {
		compiled, total := TierCoverage(rt.tiers)
		out = append(out, fmt.Sprintf("%s %s: %d/%d statements compiled", kind, name, compiled, total))
	}
	// Aggify tier first: per cursor loop, would the rewrite fire?
	for _, loop := range core.FindCursorLoops(body) {
		if err := core.CheckApplicability(loop, core.OuterTableVars(body, loop.While.Body)); err != nil {
			code := core.ReasonUnmatchedPattern
			var na *core.NotAggifiableError
			if errors.As(err, &na) {
				code = na.Code
			}
			out = append(out, fmt.Sprintf("cursor loop %s: aggify=rejected code=%s (%s)", loop.Cursor, code, err.Error()))
		} else {
			out = append(out, fmt.Sprintf("cursor loop %s: aggify=candidate", loop.Cursor))
		}
	}
	for range core.FindUnmatchedCursorWhiles(body) {
		out = append(out, fmt.Sprintf("cursor-style WHILE: aggify=never_attempted code=%s", core.ReasonUnmatchedPattern))
	}
	if rt == nil {
		return out
	}
	for _, t := range rt.tiers {
		line := strings.Repeat("  ", t.Depth) + t.Text + " [" + t.Tier
		if t.Why != "" {
			line += ": " + t.Why
		}
		line += "]"
		out = append(out, line)
	}
	return out
}
