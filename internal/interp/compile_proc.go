package interp

import (
	"fmt"

	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// This file extends the slot-based closure compiler from aggregate method
// bodies to full stored-procedure and scalar-UDF bodies. Unlike
// aggregates — where an uncompilable body falls back wholesale to the
// interpreter, preserving the paper's §9 compiled-aggregate/interpreted-
// loop asymmetry — routines compile with statement-level fallthrough:
// every statement that fits the compiled subset becomes a Go closure over
// the slot frame, and anything else (result-set SELECTs, EXEC, DDL, or a
// statement whose scalar expressions reference runtime-only state)
// executes through a per-statement interpreter bridge. The per-statement
// decisions are recorded as StmtTiers for EXPLAIN PROCEDURE and the
// applicability coverage meter.

// routine is one compiled procedure or function body.
type routine struct {
	name   string
	params []ast.Param

	prog       *program
	paramSlots []int
	// defaults holds the compiled default expression per parameter (nil
	// when the parameter has none).
	defaults []evalFn

	body compiledStmt
	// tiers is the per-statement compile/interpret record, in source
	// order.
	tiers []StmtTier
}

// compileRoutine compiles a routine body with the bridge enabled. An
// error means the routine cannot use the compiled pipeline at all (e.g. a
// parameter default fails to compile) and the caller should interpret.
func compileRoutine(eng *engine.Engine, name string, params []ast.Param, body *ast.Block) (*routine, error) {
	prog := &program{
		slotIndex:   map[string]int{},
		tableIndex:  map[string]int{},
		cursorIndex: map[string]int{},
	}
	bc := &blockCompiler{eng: eng, prog: prog, bridge: true, pinEvals: true}

	addSlot := func(name string, t sqltypes.Type) int {
		if i, ok := prog.slotIndex[name]; ok {
			prog.slotTypes[i] = t
			return i
		}
		i := prog.nSlots
		prog.slotIndex[name] = i
		prog.slotTypes = append(prog.slotTypes, t)
		prog.nSlots++
		return i
	}
	prog.fetchSlot = addSlot(ast.FetchStatusVar, sqltypes.Int)
	rt := &routine{name: name, params: params, prog: prog}
	for _, p := range params {
		rt.paramSlots = append(rt.paramSlots, addSlot(p.Name, p.Type))
	}
	// Permissive pre-scan: every declaration in the body gets a slot, a
	// table prototype, or a cursor index — including declarations inside
	// statements that end up bridged, whose effects must round-trip
	// through the bridge's copy-in/copy-out.
	protoTables := map[string]*storage.Table{}
	ast.WalkStmt(body, func(st ast.Stmt) bool {
		switch x := st.(type) {
		case *ast.DeclareVar:
			addSlot(x.Name, x.Type)
		case *ast.DeclareTable:
			if _, ok := prog.tableIndex[x.Name]; !ok {
				cols := make([]storage.Column, len(x.Cols))
				for i, c := range x.Cols {
					cols[i] = storage.Col(c.Name, c.Type)
				}
				schema := storage.NewSchema(cols...)
				prog.tableIndex[x.Name] = prog.nTables
				prog.tableDefs = append(prog.tableDefs, tableDef{slot: prog.nTables, name: x.Name, schema: schema})
				prog.nTables++
				protoTables[x.Name] = storage.NewTable(x.Name, schema)
			}
		case *ast.DeclareCursor:
			if _, ok := prog.cursorIndex[x.Name]; !ok {
				prog.cursorIndex[x.Name] = prog.nCursors
				prog.nCursors++
			}
		}
		return true
	})
	bc.cat = eng.CatalogWithTemp(func(name string) (*storage.Table, bool) {
		t, ok := protoTables[name]
		return t, ok
	})

	for _, p := range params {
		if p.Default == nil {
			rt.defaults = append(rt.defaults, nil)
			continue
		}
		d, err := bc.scalar(p.Default)
		if err != nil {
			return nil, err
		}
		rt.defaults = append(rt.defaults, d)
	}
	c, err := bc.stmt(body)
	if err != nil {
		return nil, err
	}
	rt.body = c
	rt.tiers = bc.tiers
	return rt, nil
}

// call runs the compiled routine on a fresh machine. The returned value
// is the RETURN value (Null when the body fell off the end); function
// callers coerce it to the declared return type.
func (rt *routine) call(s *engine.Session, args []sqltypes.Value) (sqltypes.Value, error) {
	if len(args) > len(rt.params) {
		return sqltypes.Null, fmt.Errorf("interp: calling %s: interp: %d arguments for %d parameters", rt.name, len(args), len(rt.params))
	}
	m := newMachine(rt.prog, s)
	for i := range m.slots {
		m.slots[i] = sqltypes.Null
	}
	// The interpreter's fetch status starts at 0, not NULL.
	m.slots[rt.prog.fetchSlot] = sqltypes.NewInt(0)
	for i, p := range rt.params {
		var v sqltypes.Value
		switch {
		case i < len(args):
			v = args[i]
		case rt.defaults[i] != nil:
			dv, err := rt.defaults[i](m)
			if err != nil {
				return sqltypes.Null, fmt.Errorf("interp: calling %s: %w", rt.name, err)
			}
			v = dv
		default:
			return sqltypes.Null, fmt.Errorf("interp: calling %s: interp: missing argument for parameter %s", rt.name, p.Name)
		}
		if err := m.assign(rt.paramSlots[i], v); err != nil {
			return sqltypes.Null, fmt.Errorf("interp: calling %s: interp: initializing %s: %w", rt.name, p.Name, err)
		}
	}
	// Cursors left open by an early RETURN drop their worktables, exactly
	// like Runner.cleanup.
	defer func() {
		for _, cur := range m.cursors {
			if cur != nil {
				cur.Deallocate()
			}
		}
	}()
	err := rt.body(m)
	if ret, ok := err.(returnSignal); ok {
		return ret.val, nil
	}
	if err != nil {
		return sqltypes.Null, err
	}
	return sqltypes.Null, nil
}

// routineForProc returns the cached compiled form of a procedure, or nil
// when the body cannot use the compiled pipeline (the negative result is
// cached too, so hot interpreted procedures do not recompile per call).
func routineForProc(eng *engine.Engine, def *ast.CreateProcedure) *routine {
	if v, ok := eng.RoutinePlan(def); ok {
		rt, _ := v.(*routine)
		return rt
	}
	rt, err := compileRoutine(eng, def.Name, def.Params, def.Body)
	if err != nil {
		eng.StoreRoutinePlan(def, (*routine)(nil))
		return nil
	}
	eng.StoreRoutinePlan(def, rt)
	return rt
}

// routineForFunc is routineForProc for scalar UDFs.
func routineForFunc(eng *engine.Engine, def *ast.CreateFunction) *routine {
	if v, ok := eng.RoutinePlan(def); ok {
		rt, _ := v.(*routine)
		return rt
	}
	rt, err := compileRoutine(eng, def.Name, def.Params, def.Body)
	if err != nil {
		eng.StoreRoutinePlan(def, (*routine)(nil))
		return nil
	}
	eng.StoreRoutinePlan(def, rt)
	return rt
}
