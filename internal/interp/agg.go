package interp

import (
	"fmt"

	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/exec"
	"aggify/internal/sqltypes"
)

// newAggSpec builds an executable aggregate spec from a CREATE AGGREGATE
// definition. Bodies within the compilable subset are compiled to slot-
// based closure chains (the analogue of the paper emitting compiled C#
// aggregates, §9); others run through the tree-walking interpreter, whose
// per-row cost is comparable to the cursor loop's.
func newAggSpec(eng *engine.Engine, def *ast.CreateAggregate, orderSensitive bool) (*exec.AggSpec, error) {
	// Field and parameter names must not collide: the aggregate frame holds
	// both (the Aggify generator renames parameters to avoid this).
	seen := map[string]bool{}
	for _, f := range def.Fields {
		if seen[f.Name] {
			return nil, fmt.Errorf("interp: aggregate %s: duplicate field %s", def.Name, f.Name)
		}
		seen[f.Name] = true
	}
	for _, p := range def.Params {
		if seen[p.Name] {
			return nil, fmt.Errorf("interp: aggregate %s: parameter %s collides with a field", def.Name, p.Name)
		}
		seen[p.Name] = true
	}
	if prog, err := compileAggregate(eng, def); err == nil {
		return &exec.AggSpec{
			Name:           def.Name,
			OrderSensitive: orderSensitive,
			Mergeable:      prog.merge != nil,
			ParallelSafe:   prog.merge != nil && !orderSensitive && progParallelSafe(eng, prog),
			New:            func() exec.Aggregator { return &compiledAgg{prog: prog, needInit: true} },
		}, nil
	}
	return InterpretedAggSpec(def, orderSensitive), nil
}

// progParallelSafe reports whether a compiled aggregate is a pure slot
// machine whose Init/Accumulate may run concurrently on distinct instances:
// no cursors, no machine tables, no DML or PRINT (those reach the shared
// session), and no subqueries or user function calls in any expression
// (those run on the single-threaded session). Terminate is held to the same
// bar for simplicity, although it only runs post-merge.
func progParallelSafe(eng *engine.Engine, prog *program) bool {
	if prog.nCursors > 0 || prog.nTables > 0 {
		return false
	}
	def := prog.def
	safe := true
	exprCheck := func(x ast.Expr) bool {
		switch t := x.(type) {
		case *ast.Subquery:
			// FROM-less projections are tuple constructors (the shape the
			// Aggify generator emits in Terminate); they never reach the
			// session. Returning true keeps walking their item expressions.
			if pureProjection(t.Query) {
				return true
			}
			safe = false
			return false
		case *ast.InExpr:
			if t.Query != nil {
				safe = false
				return false
			}
		case *ast.FuncCall:
			if _, isUDF := eng.Function(t.Name); isUDF {
				safe = false
				return false
			}
		}
		return true
	}
	bodies := []*ast.Block{def.Init, def.Accum, def.Terminate}
	if def.Merge != nil {
		bodies = append(bodies, def.Merge)
	}
	for _, b := range bodies {
		ast.WalkStmt(b, func(s ast.Stmt) bool {
			switch s.(type) {
			case *ast.InsertStmt, *ast.UpdateStmt, *ast.DeleteStmt, *ast.PrintStmt,
				*ast.QueryStmt, *ast.ExecStmt, *ast.DeclareCursor, *ast.DeclareTable:
				safe = false
				return false
			}
			ast.StmtExprs(s, exprCheck)
			return safe
		})
		if !safe {
			return false
		}
	}
	return true
}

// pureProjection reports whether q is a bare SELECT of expressions — no
// table access or query machinery of any kind.
func pureProjection(q *ast.Select) bool {
	return q != nil && len(q.With) == 0 && !q.Distinct && q.Top == nil &&
		len(q.From) == 0 && q.Where == nil && len(q.GroupBy) == 0 &&
		q.Having == nil && len(q.OrderBy) == 0 && q.Union == nil
}

// InterpretedAggSpec builds an aggregate spec that always runs through the
// tree-walking interpreter, bypassing the block compiler. Exposed for the
// compiled-vs-interpreted ablation benchmark.
func InterpretedAggSpec(def *ast.CreateAggregate, orderSensitive bool) *exec.AggSpec {
	return &exec.AggSpec{
		Name:           def.Name,
		OrderSensitive: orderSensitive,
		// Interpreted Merge works (chunked parallel mode, property tests),
		// but interpreted bodies run on the single-threaded session, so the
		// spec is never ParallelSafe.
		Mergeable: def.Merge != nil,
		New:       func() exec.Aggregator { return &interpAgg{def: def, needInit: true} },
	}
}

// interpAgg is an interpreted custom aggregate instance.
type interpAgg struct {
	def      *ast.CreateAggregate
	r        *Runner
	needInit bool
}

// Reset implements exec.Aggregator (the contract's Init is deferred to the
// first Step/Result since running the body requires an execution context).
func (a *interpAgg) Reset() {
	a.needInit = true
	if a.r != nil {
		for _, f := range a.def.Fields {
			_ = a.r.Frame.declare(f.Name, f.Type, sqltypes.Null)
		}
	}
}

func (a *interpAgg) ensure(ctx *exec.Ctx) error {
	if a.r == nil {
		sess, ok := ctx.Owner.(*engine.Session)
		if !ok {
			return fmt.Errorf("interp: aggregate %s executed without a session context", a.def.Name)
		}
		a.r = NewRunner(sess)
		for _, f := range a.def.Fields {
			if err := a.r.Frame.declare(f.Name, f.Type, sqltypes.Null); err != nil {
				return err
			}
		}
		for _, p := range a.def.Params {
			if err := a.r.Frame.declare(p.Name, p.Type, sqltypes.Null); err != nil {
				return err
			}
		}
	}
	if a.needInit {
		a.needInit = false
		if err := a.runBody(a.r, a.def.Init); err != nil {
			return err
		}
	}
	return nil
}

// runBody executes a method block; RETURN inside Accumulate/Init acts as an
// early exit.
func (a *interpAgg) runBody(r *Runner, b *ast.Block) error {
	err := r.Run(b.Stmts)
	if _, isReturn := err.(returnSignal); isReturn {
		return nil
	}
	return err
}

// Step implements exec.Aggregator: it binds the parameters and interprets
// the Accumulate body.
func (a *interpAgg) Step(ctx *exec.Ctx, args []sqltypes.Value) error {
	if err := a.ensure(ctx); err != nil {
		return err
	}
	if len(args) != len(a.def.Params) {
		return fmt.Errorf("interp: aggregate %s expects %d arguments, got %d", a.def.Name, len(a.def.Params), len(args))
	}
	for i, p := range a.def.Params {
		if err := a.r.Frame.assign(p.Name, args[i]); err != nil {
			return err
		}
	}
	return a.runBody(a.r, a.def.Accum)
}

// Result implements exec.Aggregator: it interprets the Terminate body and
// returns its RETURN value coerced to the declared return type. Over empty
// input this is Init followed by Terminate — the semantics the Aggify
// rewrite relies on for empty cursors.
func (a *interpAgg) Result(ctx *exec.Ctx) (sqltypes.Value, error) {
	if err := a.ensure(ctx); err != nil {
		return sqltypes.Null, err
	}
	err := a.r.Run(a.def.Terminate.Stmts)
	if err == nil {
		return sqltypes.Null, nil
	}
	ret, ok := err.(returnSignal)
	if !ok {
		return sqltypes.Null, err
	}
	v, cerr := ret.val.CoerceTo(a.def.Returns)
	if cerr != nil {
		return sqltypes.Null, fmt.Errorf("interp: terminate of %s: %w", a.def.Name, cerr)
	}
	return v, nil
}

// Merge implements exec.Aggregator: it binds the other instance's fields as
// @other_<field> variables in this instance's frame and interprets the MERGE
// body. An uninitialized other is a no-op; an uninitialized self adopts the
// other's runner wholesale (this partition saw no rows).
func (a *interpAgg) Merge(other exec.Aggregator) error {
	if a.def.Merge == nil {
		return fmt.Errorf("interp: aggregate %s does not support Merge", a.def.Name)
	}
	o, ok := other.(*interpAgg)
	if !ok || o.def != a.def {
		return fmt.Errorf("interp: merge of mismatched aggregate %s", a.def.Name)
	}
	if o.r == nil || o.needInit {
		return nil
	}
	if a.r == nil || a.needInit {
		a.r, a.needInit = o.r, false
		return nil
	}
	for _, f := range a.def.Fields {
		v, _ := o.r.Frame.lookup(f.Name)
		if err := a.r.Frame.declare(ast.OtherFieldVar(f.Name), f.Type, v); err != nil {
			return err
		}
	}
	return a.runBody(a.r, a.def.Merge)
}
