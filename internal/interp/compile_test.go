package interp

import (
	"testing"

	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/exec"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
)

func parseAgg(t *testing.T, src string) *ast.CreateAggregate {
	t.Helper()
	return parser.MustParse(src)[0].(*ast.CreateAggregate)
}

const sumAggSrc = `
create aggregate SumTimes2(@v int, @p_s float) returns float as
begin
  fields (@s float, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      set @s = @p_s;
      set @isInitialized = true;
    end
    set @s = @s + @v * 2;
  end
  terminate begin return @s; end
end`

// runAgg folds the values through an aggregate spec instance.
func runAgg(t *testing.T, sess *engine.Session, spec *exec.AggSpec, base float64, vals ...int64) sqltypes.Value {
	t.Helper()
	agg := spec.New()
	agg.Reset()
	ctx := sess.Ctx(nil, nil)
	for _, v := range vals {
		if err := agg.Step(ctx, []sqltypes.Value{sqltypes.NewInt(v), sqltypes.NewFloat(base)}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := agg.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCompiledAggregateMatchesInterpreted(t *testing.T) {
	eng := engine.New()
	Install(eng)
	sess := eng.NewSession()
	def := parseAgg(t, sumAggSrc)

	compiled, err := newAggSpec(eng, def, false)
	if err != nil {
		t.Fatal(err)
	}
	// The simple body must take the compiled path.
	if _, ok := compiled.New().(*compiledAgg); !ok {
		t.Fatalf("expected compiled aggregate, got %T", compiled.New())
	}
	interpreted := InterpretedAggSpec(def, false)
	if _, ok := interpreted.New().(*interpAgg); !ok {
		t.Fatalf("expected interpreted aggregate, got %T", interpreted.New())
	}

	c := runAgg(t, sess, compiled, 10, 1, 2, 3)
	i := runAgg(t, sess, interpreted, 10, 1, 2, 3)
	want := 10.0 + 2*(1+2+3)
	if c.Float() != want || i.Float() != want {
		t.Fatalf("compiled=%v interpreted=%v want %v", c, i, want)
	}

	// Empty input: Init + Terminate only, fields stay NULL.
	if v := runAgg(t, sess, compiled, 10); !v.IsNull() {
		t.Fatalf("compiled empty = %v, want NULL", v)
	}
	if v := runAgg(t, sess, interpreted, 10); !v.IsNull() {
		t.Fatalf("interpreted empty = %v, want NULL", v)
	}
}

func TestCompiledAggregateReset(t *testing.T) {
	eng := engine.New()
	Install(eng)
	sess := eng.NewSession()
	spec, err := newAggSpec(eng, parseAgg(t, sumAggSrc), false)
	if err != nil {
		t.Fatal(err)
	}
	agg := spec.New()
	ctx := sess.Ctx(nil, nil)
	agg.Reset()
	_ = agg.Step(ctx, []sqltypes.Value{sqltypes.NewInt(5), sqltypes.NewFloat(0)})
	v1, _ := agg.Result(ctx)
	agg.Reset()
	_ = agg.Step(ctx, []sqltypes.Value{sqltypes.NewInt(7), sqltypes.NewFloat(0)})
	v2, _ := agg.Result(ctx)
	if v1.Float() != 10 || v2.Float() != 14 {
		t.Fatalf("reset broken: %v then %v", v1, v2)
	}
}

func TestCompileFallbackForResultSets(t *testing.T) {
	eng := engine.New()
	Install(eng)
	def := parseAgg(t, `
create aggregate Weird(@v int) returns int as
begin
  fields (@n int, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    select @v; -- result-set SELECT: not compilable
  end
  terminate begin return @n; end
end`)
	spec, err := newAggSpec(eng, def, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := spec.New().(*interpAgg); !ok {
		t.Fatalf("expected interpreter fallback, got %T", spec.New())
	}
}

func TestCompiledAggregateWithNestedCursorLoop(t *testing.T) {
	// Accumulate bodies may contain whole cursor loops (§4.2 "nested loops
	// (cursor and non-cursor)").
	eng := engine.New()
	Install(eng)
	sess := eng.NewSession()
	if _, err := RunScript(sess, parser.MustParse(`
create table details (k int, v int);
create index idx_d on details(k);
insert into details values (1, 10), (1, 20), (2, 5);
`)); err != nil {
		t.Fatal(err)
	}
	def := parseAgg(t, `
create aggregate NestedSum(@k int) returns int as
begin
  fields (@total int, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      set @total = 0;
      set @isInitialized = true;
    end
    declare @v int;
    declare inner_c cursor for select v from details where k = @k;
    open inner_c;
    fetch next from inner_c into @v;
    while @@fetch_status = 0
    begin
      set @total = @total + @v;
      fetch next from inner_c into @v;
    end
    close inner_c;
    deallocate inner_c;
  end
  terminate begin return @total; end
end`)
	spec, err := newAggSpec(eng, def, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := spec.New().(*compiledAgg); !ok {
		t.Fatalf("nested cursor loops should compile, got %T", spec.New())
	}
	agg := spec.New()
	agg.Reset()
	ctx := sess.Ctx(nil, nil)
	for _, k := range []int64{1, 2} {
		if err := agg.Step(ctx, []sqltypes.Value{sqltypes.NewInt(k)}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := agg.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 35 {
		t.Fatalf("nested sum = %v, want 35", v)
	}
}

func TestCompiledAggregateTableVar(t *testing.T) {
	eng := engine.New()
	Install(eng)
	sess := eng.NewSession()
	def := parseAgg(t, `
create aggregate DistinctishCount(@v int) returns int as
begin
  fields (@n int, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      set @n = 0;
      set @isInitialized = true;
    end
    declare @t table (x int);
    insert into @t values (@v);
    set @n = @n + (select count(*) from @t where x % 2 = 0);
  end
  terminate begin return @n; end
end`)
	spec, err := newAggSpec(eng, def, false)
	if err != nil {
		t.Fatal(err)
	}
	agg := spec.New()
	agg.Reset()
	ctx := sess.Ctx(nil, nil)
	for _, v := range []int64{1, 2, 3, 4} {
		if err := agg.Step(ctx, []sqltypes.Value{sqltypes.NewInt(v)}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := agg.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Int() != 2 {
		t.Fatalf("count = %v, want 2 (evens)", out)
	}
}
