// Package interp executes the procedural dialect: scalar UDFs, stored
// procedures, scripts, cursor loops, and the bodies of interpreted custom
// aggregates. It installs itself into an engine via Install, providing the
// hooks queries use to call UDFs and custom aggregates.
//
// Cursor loops run here exactly as the paper's §2.3 describes: DECLARE
// plans the query, OPEN materializes its full result into an encoded
// worktable, FETCH NEXT decodes one row per call and updates
// @@FETCH_STATUS, and the WHILE loop re-evaluates its condition through the
// statement dispatcher each iteration. That interpreted, materializing
// execution is the baseline Aggify beats.
package interp

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/exec"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// Install wires the interpreter's hooks into the engine.
func Install(e *engine.Engine) {
	e.FuncCaller = callFunction
	e.ProcCaller = callProcedure
	e.AggFactory = func(def *ast.CreateAggregate, orderSensitive bool) (*exec.AggSpec, error) {
		return newAggSpec(e, def, orderSensitive)
	}
}

// control-flow signals, propagated as errors.
var (
	errBreak    = errors.New("interp: BREAK outside loop")
	errContinue = errors.New("interp: CONTINUE outside loop")
)

type returnSignal struct {
	val sqltypes.Value
}

func (returnSignal) Error() string { return "interp: RETURN" }

// frame is one procedure/function invocation's variable environment.
// Mirroring T-SQL, variables are batch-scoped: a DECLARE anywhere in the
// body is visible for the rest of the invocation.
type frame struct {
	vars        map[string]sqltypes.Value
	types       map[string]sqltypes.Type
	tables      map[string]*storage.Table
	cursors     map[string]*engine.Cursor
	fetchStatus int64
}

func newFrame() *frame {
	return &frame{
		vars:    map[string]sqltypes.Value{},
		types:   map[string]sqltypes.Type{},
		tables:  map[string]*storage.Table{},
		cursors: map[string]*engine.Cursor{},
	}
}

func (f *frame) lookup(name string) (sqltypes.Value, bool) {
	if name == ast.FetchStatusVar {
		return sqltypes.NewInt(f.fetchStatus), true
	}
	v, ok := f.vars[name]
	return v, ok
}

func (f *frame) assign(name string, v sqltypes.Value) error {
	t, declared := f.types[name]
	if !declared {
		return fmt.Errorf("interp: assignment to undeclared variable %s", name)
	}
	cv, err := v.CoerceTo(t)
	if err != nil {
		return fmt.Errorf("interp: assigning %s: %w", name, err)
	}
	f.vars[name] = cv
	return nil
}

func (f *frame) declare(name string, t sqltypes.Type, init sqltypes.Value) error {
	f.types[name] = t
	cv, err := init.CoerceTo(t)
	if err != nil {
		return fmt.Errorf("interp: initializing %s: %w", name, err)
	}
	f.vars[name] = cv
	return nil
}

// Runner executes statements for one invocation.
type Runner struct {
	Sess  *engine.Session
	Frame *frame
	ctx   *exec.Ctx

	// Results collects result sets from standalone SELECT statements.
	Results []ResultSet

	// Prof, when set, attributes wall time and logical reads to each
	// executed statement node (see ProfileProcedure). Nil — the normal
	// case — costs one nil check per statement.
	Prof *Profile
}

// ResultSet is one SELECT statement's output.
type ResultSet struct {
	Columns []string
	Rows    []exec.Row
}

// NewRunner creates a runner with a fresh frame.
func NewRunner(sess *engine.Session) *Runner {
	r := &Runner{Sess: sess, Frame: newFrame()}
	r.ctx = sess.Ctx(r.Frame.lookup, func(name string) (*storage.Table, bool) {
		t, ok := r.Frame.tables[name]
		return t, ok
	})
	return r
}

// Ctx returns the runner's execution context.
func (r *Runner) Ctx() *exec.Ctx { return r.ctx }

// cleanup releases frame resources at the end of an invocation; cursors
// left open (early RETURN inside a loop) drop their worktable files.
func (r *Runner) cleanup() {
	for _, cur := range r.Frame.cursors {
		cur.Deallocate()
	}
}

// eval evaluates an expression in the current frame.
func (r *Runner) eval(e ast.Expr) (sqltypes.Value, error) {
	sc, err := r.Sess.Eng.CachedScalar(r.Sess.Catalog(r.ctx.Temp), r.Sess.Opts, e)
	if err != nil {
		return sqltypes.Null, err
	}
	// Pin a read snapshot for the evaluation: scalar expressions can embed
	// subqueries, which must see the explicit transaction's own writes (or
	// a consistent statement epoch in auto-commit mode). No-op when the
	// enclosing statement already pinned one.
	defer r.Sess.PinRead(r.ctx)()
	return sc(r.ctx, nil)
}

// Run executes a statement list (a script or a body).
func (r *Runner) Run(stmts []ast.Stmt) error {
	for _, s := range stmts {
		if err := r.Exec(s); err != nil {
			return err
		}
	}
	return nil
}

// Exec executes one statement, attributing its cost when profiling.
func (r *Runner) Exec(s ast.Stmt) error {
	if r.Prof == nil {
		return r.exec(s)
	}
	start := time.Now()
	readsBefore := r.Sess.Stats.LogicalReads.Load()
	err := r.exec(s)
	st := r.Prof.stat(s)
	st.count++
	st.wall += time.Since(start)
	st.reads += r.Sess.Stats.LogicalReads.Load() - readsBefore
	return err
}

// exec dispatches one statement.
func (r *Runner) exec(s ast.Stmt) error {
	if r.ctx.Interrupted() {
		return exec.ErrInterrupted
	}
	switch st := s.(type) {
	case *ast.Block:
		return r.Run(st.Stmts)
	case *ast.DeclareVar:
		init := sqltypes.Null
		if st.Init != nil {
			v, err := r.eval(st.Init)
			if err != nil {
				return err
			}
			init = v
		}
		return r.Frame.declare(st.Name, st.Type, init)
	case *ast.DeclareTable:
		cols := make([]storage.Column, len(st.Cols))
		for i, c := range st.Cols {
			cols[i] = storage.Col(c.Name, c.Type)
		}
		r.Frame.tables[st.Name] = storage.NewTable(st.Name, storage.NewSchema(cols...))
		return nil
	case *ast.SetStmt:
		return r.execSet(st)
	case *ast.SetOption:
		return r.execSetOption(st)
	case *ast.IfStmt:
		cond, err := r.eval(st.Cond)
		if err != nil {
			return err
		}
		if cond.Truthy() {
			return r.Exec(st.Then)
		}
		if st.Else != nil {
			return r.Exec(st.Else)
		}
		return nil
	case *ast.WhileStmt:
		for {
			cond, err := r.eval(st.Cond)
			if err != nil {
				return err
			}
			if !cond.Truthy() {
				return nil
			}
			if err := r.Exec(st.Body); err != nil {
				if err == errBreak {
					return nil
				}
				if err == errContinue {
					continue
				}
				return err
			}
		}
	case *ast.ForStmt:
		return r.execFor(st)
	case *ast.BreakStmt:
		return errBreak
	case *ast.ContinueStmt:
		return errContinue
	case *ast.ReturnStmt:
		val := sqltypes.Null
		if st.Value != nil {
			v, err := r.eval(st.Value)
			if err != nil {
				return err
			}
			val = v
		}
		return returnSignal{val: val}
	case *ast.DeclareCursor:
		r.Frame.cursors[st.Name] = engine.NewCursor(st.Name, st.Query)
		return nil
	case *ast.OpenCursor:
		cur, ok := r.Frame.cursors[st.Name]
		if !ok {
			return fmt.Errorf("interp: undeclared cursor %s", st.Name)
		}
		return cur.Open(r.Sess, r.ctx)
	case *ast.CloseCursor:
		cur, ok := r.Frame.cursors[st.Name]
		if !ok {
			return fmt.Errorf("interp: undeclared cursor %s", st.Name)
		}
		return cur.Close()
	case *ast.DeallocateCursor:
		cur, ok := r.Frame.cursors[st.Name]
		if !ok {
			return fmt.Errorf("interp: undeclared cursor %s", st.Name)
		}
		cur.Deallocate()
		delete(r.Frame.cursors, st.Name)
		return nil
	case *ast.FetchStmt:
		return r.execFetch(st)
	case *ast.QueryStmt:
		cols, rows, err := r.Sess.Query(st.Query, r.ctx)
		if err != nil {
			return err
		}
		r.Results = append(r.Results, ResultSet{Columns: cols, Rows: rows})
		return nil
	case *ast.ExplainStmt:
		lines, err := r.Sess.ExplainQuery(st.Query, st.Analyze, r.ctx)
		if err != nil {
			return err
		}
		rows := make([]exec.Row, len(lines))
		for i, l := range lines {
			rows[i] = exec.Row{sqltypes.NewString(l)}
		}
		r.Results = append(r.Results, ResultSet{Columns: []string{"plan"}, Rows: rows})
		return nil
	case *ast.ExplainProcStmt:
		return r.execExplainProc(st)
	case *ast.InsertStmt:
		_, err := r.Sess.Insert(st, r.ctx)
		return err
	case *ast.UpdateStmt:
		_, err := r.Sess.Update(st, r.ctx)
		return err
	case *ast.DeleteStmt:
		_, err := r.Sess.Delete(st, r.ctx)
		return err
	case *ast.TryCatch:
		err := r.Exec(st.Try)
		if err == nil {
			return nil
		}
		// Control-flow signals and interrupts pass through; genuine errors
		// are caught.
		if err == errBreak || err == errContinue || err == exec.ErrInterrupted {
			return err
		}
		if _, isReturn := err.(returnSignal); isReturn {
			return err
		}
		return r.Exec(st.Catch)
	case *ast.TxnStmt:
		switch st.Op {
		case ast.TxnBegin:
			return r.Sess.BeginTxn()
		case ast.TxnCommit:
			return r.Sess.CommitTxn()
		default:
			return r.Sess.RollbackTxn()
		}
	case *ast.PrintStmt:
		v, err := r.eval(st.E)
		if err != nil {
			return err
		}
		r.Sess.Print(v.Display())
		return nil
	case *ast.ExecStmt:
		return r.execProc(st)
	case *ast.TraceProcStmt:
		return r.execTraceProc(st)
	case *ast.CreateTable:
		return r.execCreateTable(st)
	case *ast.CreateIndex:
		if st.Ordered {
			return r.Sess.Eng.CreateOrderedIndex(st.Table, st.Column)
		}
		return r.Sess.Eng.CreateIndex(st.Table, st.Column)
	case *ast.CreateFunction:
		return r.Sess.Eng.RegisterFunction(st)
	case *ast.CreateProcedure:
		return r.Sess.Eng.RegisterProcedure(st)
	case *ast.CreateAggregate:
		return r.Sess.Eng.RegisterAggregate(st, false)
	}
	return fmt.Errorf("interp: cannot execute %T", s)
}

func (r *Runner) execCreateTable(st *ast.CreateTable) error {
	cols := make([]storage.Column, len(st.Cols))
	for i, c := range st.Cols {
		cols[i] = storage.Col(c.Name, c.Type)
	}
	schema := storage.NewSchema(cols...)
	if strings.HasPrefix(st.Name, "#") {
		r.Sess.CreateTempTable(st.Name, schema)
		return nil
	}
	_, err := r.Sess.Eng.CreateTable(st.Name, schema)
	return err
}

func (r *Runner) execSet(st *ast.SetStmt) error {
	v, err := r.eval(st.Value)
	if err != nil {
		return err
	}
	if len(st.Targets) == 1 {
		return r.Frame.assign(st.Targets[0], v)
	}
	// Tuple destructuring: SET (@a, @b) = (SELECT Agg(...) ...). A NULL
	// (empty result) assigns NULL to every target.
	var parts []sqltypes.Value
	switch {
	case v.Kind() == sqltypes.KindTuple:
		parts = v.Tuple()
	case v.IsNull():
		parts = make([]sqltypes.Value, len(st.Targets))
	default:
		return fmt.Errorf("interp: SET with %d targets requires a tuple value", len(st.Targets))
	}
	if len(parts) != len(st.Targets) {
		return fmt.Errorf("interp: SET targets %d but value has %d attributes", len(st.Targets), len(parts))
	}
	for i, name := range st.Targets {
		if err := r.Frame.assign(name, parts[i]); err != nil {
			return err
		}
	}
	return nil
}

// execSetOption applies a session option: SET MAXDOP = n caps the degree of
// parallelism for subsequent queries on this session (1 disables, 0 resets
// to the server default).
func (r *Runner) execSetOption(st *ast.SetOption) error {
	v, err := r.eval(st.Value)
	if err != nil {
		return err
	}
	switch st.Name {
	case "maxdop":
		if v.Kind() != sqltypes.KindInt || v.Int() < 0 {
			return fmt.Errorf("interp: SET MAXDOP requires a non-negative integer, got %s", v)
		}
		r.Sess.SetMaxDOP(int(v.Int()))
		return nil
	default:
		return fmt.Errorf("interp: unknown session option %q", st.Name)
	}
}

func (r *Runner) execFor(st *ast.ForStmt) error {
	initV, err := r.eval(st.InitExpr)
	if err != nil {
		return err
	}
	if err := r.Frame.assign(st.InitVar, initV); err != nil {
		return err
	}
	for {
		cond, err := r.eval(st.Cond)
		if err != nil {
			return err
		}
		if !cond.Truthy() {
			return nil
		}
		if err := r.Exec(st.Body); err != nil {
			if err == errBreak {
				return nil
			}
			if err != errContinue {
				return err
			}
		}
		postV, err := r.eval(st.PostExpr)
		if err != nil {
			return err
		}
		if err := r.Frame.assign(st.PostVar, postV); err != nil {
			return err
		}
	}
}

func (r *Runner) execFetch(st *ast.FetchStmt) error {
	cur, ok := r.Frame.cursors[st.Cursor]
	if !ok {
		return fmt.Errorf("interp: undeclared cursor %s", st.Cursor)
	}
	row, more, err := cur.Fetch()
	if err != nil {
		return err
	}
	if !more {
		// End of cursor: variables keep their values, status goes to -1.
		r.Frame.fetchStatus = -1
		return nil
	}
	if len(row) != len(st.Into) {
		return fmt.Errorf("interp: FETCH INTO %d variables but cursor %s yields %d columns", len(st.Into), st.Cursor, len(row))
	}
	for i, name := range st.Into {
		if err := r.Frame.assign(name, row[i]); err != nil {
			return err
		}
	}
	r.Frame.fetchStatus = 0
	if r.Prof != nil {
		r.Prof.fetchOK[st]++
	}
	return nil
}

func (r *Runner) execProc(st *ast.ExecStmt) error {
	def, ok := r.Sess.Eng.Procedure(st.Proc)
	if !ok {
		return fmt.Errorf("interp: unknown procedure %s", st.Proc)
	}
	args := make([]sqltypes.Value, len(st.Args))
	for i, a := range st.Args {
		v, err := r.eval(a)
		if err != nil {
			return err
		}
		args[i] = v
	}
	return callProcedure(r.Sess, r.ctx, def, args)
}

// execTraceProc runs TRACE PROCEDURE: the named procedure executes under a
// profiling runner (side effects happen, like EXEC) and the attribution
// report becomes a one-column result set.
func (r *Runner) execTraceProc(st *ast.TraceProcStmt) error {
	args := make([]sqltypes.Value, len(st.Args))
	for i, a := range st.Args {
		v, err := r.eval(a)
		if err != nil {
			return err
		}
		args[i] = v
	}
	prof, err := ProfileProcedure(r.Sess, st.Proc, args...)
	if err != nil {
		return err
	}
	lines := prof.Lines()
	rows := make([]exec.Row, len(lines))
	for i, l := range lines {
		rows[i] = exec.Row{sqltypes.NewString(l)}
	}
	r.Results = append(r.Results, ResultSet{Columns: []string{"profile"}, Rows: rows})
	return nil
}

// bindParams populates a frame with declared parameters, applying defaults.
func bindParams(f *frame, params []ast.Param, args []sqltypes.Value, evalDefault func(ast.Expr) (sqltypes.Value, error)) error {
	if len(args) > len(params) {
		return fmt.Errorf("interp: %d arguments for %d parameters", len(args), len(params))
	}
	for i, p := range params {
		var v sqltypes.Value
		switch {
		case i < len(args):
			v = args[i]
		case p.Default != nil:
			dv, err := evalDefault(p.Default)
			if err != nil {
				return err
			}
			v = dv
		default:
			return fmt.Errorf("interp: missing argument for parameter %s", p.Name)
		}
		if err := f.declare(p.Name, p.Type, v); err != nil {
			return err
		}
	}
	return nil
}

// callFunction implements the engine's FuncCaller hook: compile-first —
// the body runs as compiled closures (with per-statement interpreter
// bridging) when it can, and falls back to the tree-walking interpreter
// otherwise. Either way the RETURN value is coerced to the declared
// return type.
func callFunction(s *engine.Session, _ *exec.Ctx, def *ast.CreateFunction, args []sqltypes.Value) (sqltypes.Value, error) {
	if rt := routineForFunc(s.Eng, def); rt != nil {
		ret, err := rt.call(s, args)
		if err != nil {
			return sqltypes.Null, err
		}
		v, cerr := ret.CoerceTo(def.Returns)
		if cerr != nil {
			return sqltypes.Null, fmt.Errorf("interp: return value of %s: %w", def.Name, cerr)
		}
		return v, nil
	}
	return callFunctionInterpreted(s, def, args)
}

// callFunctionInterpreted is the tree-walking tier of callFunction.
func callFunctionInterpreted(s *engine.Session, def *ast.CreateFunction, args []sqltypes.Value) (sqltypes.Value, error) {
	r := NewRunner(s)
	defer r.cleanup()
	if err := bindParams(r.Frame, def.Params, args, r.eval); err != nil {
		return sqltypes.Null, fmt.Errorf("interp: calling %s: %w", def.Name, err)
	}
	err := r.Run(def.Body.Stmts)
	if err == nil {
		// Fell off the end without RETURN.
		return sqltypes.Null, nil
	}
	ret, ok := err.(returnSignal)
	if !ok {
		return sqltypes.Null, err
	}
	v, cerr := ret.val.CoerceTo(def.Returns)
	if cerr != nil {
		return sqltypes.Null, fmt.Errorf("interp: return value of %s: %w", def.Name, cerr)
	}
	return v, nil
}

// callProcedure implements the engine's ProcCaller hook, compile-first
// like callFunction.
func callProcedure(s *engine.Session, _ *exec.Ctx, def *ast.CreateProcedure, args []sqltypes.Value) error {
	if rt := routineForProc(s.Eng, def); rt != nil {
		_, err := rt.call(s, args)
		return err
	}
	return callProcedureInterpreted(s, def, args)
}

// callProcedureInterpreted is the tree-walking tier of callProcedure.
func callProcedureInterpreted(s *engine.Session, def *ast.CreateProcedure, args []sqltypes.Value) error {
	r := NewRunner(s)
	defer r.cleanup()
	if err := bindParams(r.Frame, def.Params, args, r.eval); err != nil {
		return fmt.Errorf("interp: calling %s: %w", def.Name, err)
	}
	err := r.Run(def.Body.Stmts)
	if _, isReturn := err.(returnSignal); isReturn {
		return nil
	}
	return err
}

// RunScript parses nothing — it executes pre-parsed statements against a
// session with a fresh frame and returns the collected result sets.
func RunScript(s *engine.Session, stmts []ast.Stmt) ([]ResultSet, error) {
	r := NewRunner(s)
	defer r.cleanup()
	err := r.Run(stmts)
	if _, isReturn := err.(returnSignal); isReturn {
		err = nil
	}
	return r.Results, err
}

// RunScriptSpans executes pre-parsed statements like RunScript, but also
// records each top-level statement into the session's fingerprint stats
// using its source span (so aggify_stat_statements attributes time, rows,
// reads, and WAL bytes per normalized statement template). spans must be
// parallel to stmts, as returned by parser.ParseSpans.
func RunScriptSpans(s *engine.Session, src string, stmts []ast.Stmt, spans []parser.Span) ([]ResultSet, error) {
	if len(spans) != len(stmts) {
		return RunScript(s, stmts)
	}
	r := NewRunner(s)
	defer r.cleanup()
	for i, st := range stmts {
		sp := spans[i]
		rec := s.BeginStmt(src[sp.Start:sp.End])
		err := r.Exec(st)
		if _, isReturn := err.(returnSignal); isReturn {
			err = nil
			s.EndStmt(rec, nil)
			break
		}
		s.EndStmt(rec, err)
		if err != nil {
			return r.Results, err
		}
	}
	return r.Results, nil
}

// CallFunctionByName invokes a registered scalar UDF (helper for tests,
// benchmarks, and the public facade).
func CallFunctionByName(s *engine.Session, name string, args ...sqltypes.Value) (sqltypes.Value, error) {
	def, ok := s.Eng.Function(name)
	if !ok {
		return sqltypes.Null, fmt.Errorf("interp: unknown function %s", name)
	}
	return callFunction(s, nil, def, args)
}

// CallProcedureByName invokes a registered stored procedure.
func CallProcedureByName(s *engine.Session, name string, args ...sqltypes.Value) error {
	def, ok := s.Eng.Procedure(name)
	if !ok {
		return fmt.Errorf("interp: unknown procedure %s", name)
	}
	return callProcedure(s, nil, def, args)
}

// CallFunctionInterpreted invokes a scalar UDF through the tree-walking
// interpreter, bypassing the compiled pipeline. Exists for equivalence
// tests and the compiled-vs-interpreted benchmark gate.
func CallFunctionInterpreted(s *engine.Session, name string, args ...sqltypes.Value) (sqltypes.Value, error) {
	def, ok := s.Eng.Function(name)
	if !ok {
		return sqltypes.Null, fmt.Errorf("interp: unknown function %s", name)
	}
	return callFunctionInterpreted(s, def, args)
}

// CallProcedureInterpreted invokes a stored procedure through the
// tree-walking interpreter, bypassing the compiled pipeline.
func CallProcedureInterpreted(s *engine.Session, name string, args ...sqltypes.Value) error {
	def, ok := s.Eng.Procedure(name)
	if !ok {
		return fmt.Errorf("interp: unknown procedure %s", name)
	}
	return callProcedureInterpreted(s, def, args)
}
