package interp

import (
	"strings"
	"testing"

	"aggify/internal/ast"
	"aggify/internal/core"
	"aggify/internal/engine"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
)

// tierSession builds an engine with a procedure mixing natively-compiled
// statements with ones that must bridge to the interpreter (a result-set
// SELECT and a nested EXEC).
func tierSession(t *testing.T) *engine.Session {
	t.Helper()
	eng := engine.New()
	Install(eng)
	sess := eng.NewSession()
	setup := `
create table log_t (n int);
GO
create procedure noteOne() as
begin
  insert into log_t values (1);
end
GO
create procedure mixed(@n int) as
begin
  declare @i int = 0;
  while @i < @n
  begin
    insert into log_t values (@i);
    set @i = @i + 1;
  end
  select count(*) from log_t;
  exec noteOne;
end
`
	if _, err := RunScript(sess, parser.MustParse(setup)); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return sess
}

func TestClassifyBodyTierCoverage(t *testing.T) {
	sess := tierSession(t)
	def, ok := sess.Eng.Procedure("mixed")
	if !ok {
		t.Fatal("mixed not registered")
	}
	tiers := ClassifyBody(def.Body)
	compiled, total := TierCoverage(tiers)
	// Leaves: declare, insert, set, select, exec (the WHILE is a container).
	if total != 5 {
		t.Fatalf("total leaves = %d, want 5\n%+v", total, tiers)
	}
	if compiled != 3 {
		t.Fatalf("compiled leaves = %d, want 3 (declare, insert, set)\n%+v", compiled, tiers)
	}
	byText := map[string]StmtTier{}
	for _, tr := range tiers {
		byText[tr.Text] = tr
	}
	if tr, ok := byText["EXEC noteone ;"]; !ok || tr.Tier != TierInterpreted || tr.Why == "" {
		t.Fatalf("EXEC tier = %+v", tr)
	}
}

func TestRoutineTiersMatchStaticClassification(t *testing.T) {
	sess := tierSession(t)
	def, _ := sess.Eng.Procedure("mixed")
	rt := routineForProc(sess.Eng, def)
	if rt == nil {
		t.Fatal("mixed should compile (partially)")
	}
	gotC, gotT := TierCoverage(rt.tiers)
	wantC, wantT := TierCoverage(ClassifyBody(def.Body))
	if gotC != wantC || gotT != wantT {
		t.Fatalf("compiled coverage %d/%d, static classifier says %d/%d", gotC, gotT, wantC, wantT)
	}
}

func TestCompiledProcedureBridgeEquivalence(t *testing.T) {
	// The same procedure through the compiled pipeline (statement-level
	// bridging for SELECT and EXEC) and the tree-walking interpreter must
	// leave identical table state.
	run := func(call func(*engine.Session) error) []string {
		eng := engine.New()
		Install(eng)
		sess := eng.NewSession()
		setup := `
create table log_t (n int);
GO
create procedure noteOne() as
begin
  insert into log_t values (1);
end
GO
create procedure mixed(@n int) as
begin
  declare @i int = 0;
  while @i < @n
  begin
    insert into log_t values (@i);
    set @i = @i + 1;
  end
  select count(*) from log_t;
  exec noteOne;
end
`
		if _, err := RunScript(sess, parser.MustParse(setup)); err != nil {
			t.Fatalf("setup: %v", err)
		}
		if err := call(sess); err != nil {
			t.Fatal(err)
		}
		q := parser.MustParse("select n from log_t order by n")[0].(*ast.QueryStmt).Query
		_, rows, err := sess.Query(q, sess.Ctx(nil, nil))
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, r := range rows {
			out = append(out, r[0].String())
		}
		return out
	}
	arg := sqltypes.NewInt(4)
	compiled := run(func(s *engine.Session) error { return CallProcedureByName(s, "mixed", arg) })
	interpreted := run(func(s *engine.Session) error { return CallProcedureInterpreted(s, "mixed", arg) })
	if strings.Join(compiled, "|") != strings.Join(interpreted, "|") {
		t.Fatalf("compiled rows %v vs interpreted rows %v", compiled, interpreted)
	}
}

func TestExplainProcedure(t *testing.T) {
	sess := tierSession(t)
	results, err := RunScript(sess, parser.MustParse("explain procedure mixed;"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("result sets = %d, want 1", len(results))
	}
	var lines []string
	for _, row := range results[0].Rows {
		lines = append(lines, row[0].Str())
	}
	text := strings.Join(lines, "\n")
	if !strings.Contains(lines[0], "procedure mixed: 3/5 statements compiled") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(text, "[compiled]") {
		t.Fatalf("no compiled tier line:\n%s", text)
	}
	if !strings.Contains(text, "[interpreted: ") {
		t.Fatalf("no interpreted tier line with reason:\n%s", text)
	}
	if !strings.Contains(text, "EXEC noteone ; [interpreted: nested procedure call]") {
		t.Fatalf("EXEC line missing its why:\n%s", text)
	}
}

func TestExplainProcedureAggifyVerdicts(t *testing.T) {
	sess := profSession(t)
	out := func(proc string) string {
		results, err := RunScript(sess, parser.MustParse("explain procedure "+proc+";"))
		if err != nil {
			t.Fatal(err)
		}
		var lines []string
		for _, row := range results[0].Rows {
			lines = append(lines, row[0].Str())
		}
		return strings.Join(lines, "\n")
	}
	accepted := out("sumAbove")
	if !strings.Contains(accepted, "cursor loop c: aggify=candidate") {
		t.Fatalf("sumAbove verdict missing:\n%s", accepted)
	}
	rejected := out("copyNums")
	if !strings.Contains(rejected, "aggify=rejected code="+string(core.ReasonPersistentDML)) {
		t.Fatalf("copyNums verdict missing the reason code:\n%s", rejected)
	}
}

func TestExplainProcedureUnknown(t *testing.T) {
	sess := tierSession(t)
	if _, err := RunScript(sess, parser.MustParse("explain procedure nosuch;")); err == nil ||
		!strings.Contains(err.Error(), "unknown procedure nosuch") {
		t.Fatalf("err = %v", err)
	}
}

func TestTraceProcedureTierLines(t *testing.T) {
	sess := tierSession(t)
	results, err := RunScript(sess, parser.MustParse("trace procedure mixed(2);"))
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, row := range results[len(results)-1].Rows {
		lines = append(lines, row[0].Str())
	}
	text := strings.Join(lines, "\n")
	if !strings.Contains(text, "tier=compiled") {
		t.Fatalf("no compiled tier in trace:\n%s", text)
	}
	if !strings.Contains(text, "tier=interpreted (nested procedure call)") {
		t.Fatalf("no interpreted tier with why in trace:\n%s", text)
	}
}

func TestTraceProcedureRejectionCode(t *testing.T) {
	sess := profSession(t)
	results, err := RunScript(sess, parser.MustParse("trace procedure copyNums;"))
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, row := range results[len(results)-1].Rows {
		lines = append(lines, row[0].Str())
	}
	text := strings.Join(lines, "\n")
	if !strings.Contains(text, "verdict=rejected code="+string(core.ReasonPersistentDML)) {
		t.Fatalf("rejected loop missing its code:\n%s", text)
	}
}

func TestProfileNeverAttemptedWhile(t *testing.T) {
	// A cursor-style WHILE (conditioned on @@fetch_status) that does not
	// match the OPEN/FETCH/WHILE pattern: the profiler must report it as
	// never_attempted rather than silently skipping it.
	eng := engine.New()
	Install(eng)
	sess := eng.NewSession()
	setup := `
create table nums (n int);
insert into nums values (1), (2);
GO
create procedure oddloop() as
begin
  declare @n int;
  declare c cursor for select n from nums;
  open c;
  fetch next from c into @n;
  while @@fetch_status = 0
  begin
    fetch next from c into @n;
  end
  deallocate c;
end
`
	if _, err := RunScript(sess, parser.MustParse(setup)); err != nil {
		t.Fatalf("setup: %v", err)
	}
	prof, err := ProfileProcedure(sess, "oddloop")
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Loops) != 0 {
		t.Fatalf("pattern should not match (no CLOSE), loops = %d", len(prof.Loops))
	}
	if prof.NeverAttempted != 1 {
		t.Fatalf("NeverAttempted = %d, want 1", prof.NeverAttempted)
	}
	text := strings.Join(prof.Lines(), "\n")
	if !strings.Contains(text, "verdict=never_attempted code="+string(core.ReasonUnmatchedPattern)) {
		t.Fatalf("never_attempted line missing:\n%s", text)
	}
}
