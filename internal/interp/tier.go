package interp

import (
	"aggify/internal/ast"
)

// Execution tiers for one procedural statement. "compiled" means the
// statement runs as a Go closure over the slot frame; "interpreted"
// means it executes through the per-statement bridge into the
// tree-walking interpreter.
const (
	TierCompiled    = "compiled"
	TierInterpreted = "interpreted"
)

// StmtTier is the compile/interpret decision for one body statement,
// recorded during routine compilation and rendered by EXPLAIN PROCEDURE
// and the applicability coverage meter.
type StmtTier struct {
	Text  string // short statement label, e.g. "SET @total"
	Depth int    // nesting depth for indented rendering
	Tier  string // TierCompiled or TierInterpreted
	Why   string // reason, set when Tier is TierInterpreted
	Leaf  bool   // true for non-container statements (coverage counts leaves)

	// node identifies the statement for in-package consumers (the
	// profiler joins tier decisions onto its per-node attribution).
	node ast.Stmt
}

// interpretedOnly reports whether s is outside the compiled subset by
// construction — it must route result sets, invoke other modules, or
// mutate the catalog, all of which belong to the interpreter — and the
// reason shown in EXPLAIN PROCEDURE.
func interpretedOnly(s ast.Stmt) (string, bool) {
	switch s.(type) {
	case *ast.QueryStmt:
		return "result-set SELECT routes through the session", true
	case *ast.ExplainStmt:
		return "EXPLAIN produces a result set", true
	case *ast.ExplainProcStmt:
		return "EXPLAIN PROCEDURE produces a result set", true
	case *ast.ExecStmt:
		return "nested procedure call", true
	case *ast.TraceProcStmt:
		return "profiling entry point", true
	case *ast.CreateTable, *ast.CreateIndex, *ast.CreateFunction, *ast.CreateProcedure, *ast.CreateAggregate:
		return "DDL mutates the catalog", true
	}
	return "", false
}

// isContainer reports whether s is a control-flow container whose tier
// entry describes only its own control flow (children get their own).
func isContainer(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.Block, *ast.IfStmt, *ast.WhileStmt, *ast.ForStmt, *ast.TryCatch:
		return true
	}
	return false
}

// ClassifyBody statically classifies a procedure body without an engine:
// each statement gets the tier the routine compiler would choose,
// assuming its scalar expressions compile (the optimistic case — the
// corpus scanner has no live catalog to compile against). Used by the
// applicability workload to measure compile-tier coverage over corpus
// procedures; the runtime decisions recorded during real compilation are
// the ground truth for EXPLAIN PROCEDURE.
func ClassifyBody(body *ast.Block) []StmtTier {
	var tiers []StmtTier
	var walk func(s ast.Stmt, depth int)
	walk = func(s ast.Stmt, depth int) {
		if s == nil {
			return
		}
		if b, ok := s.(*ast.Block); ok && depth == 0 {
			// The top-level body block is the routine itself, not a stmt.
			for _, inner := range b.Stmts {
				walk(inner, 0)
			}
			return
		}
		t := StmtTier{Text: stmtLabel(s), Depth: depth, Leaf: !isContainer(s), node: s}
		if why, always := interpretedOnly(s); always {
			t.Tier, t.Why = TierInterpreted, why
			tiers = append(tiers, t)
			return
		}
		t.Tier = TierCompiled
		tiers = append(tiers, t)
		switch st := s.(type) {
		case *ast.Block:
			for _, inner := range st.Stmts {
				walk(inner, depth+1)
			}
		case *ast.IfStmt:
			walk(st.Then, depth+1)
			walk(st.Else, depth+1)
		case *ast.WhileStmt:
			walk(st.Body, depth+1)
		case *ast.ForStmt:
			walk(st.Body, depth+1)
		case *ast.TryCatch:
			walk(st.Try, depth+1)
			walk(st.Catch, depth+1)
		}
	}
	walk(body, 0)
	return tiers
}

// TierCoverage counts leaf statements by tier: containers describe
// control flow only, so coverage over leaves reflects where the work
// actually executes.
func TierCoverage(tiers []StmtTier) (compiled, total int) {
	for _, t := range tiers {
		if !t.Leaf {
			continue
		}
		total++
		if t.Tier == TierCompiled {
			compiled++
		}
	}
	return compiled, total
}
