package interp

import (
	"strings"
	"testing"

	"aggify/internal/engine"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
)

// profSession builds an engine with a numbers table, a sink table, and two
// procedures: sumAbove walks a cursor loop that the Aggify analysis accepts,
// copyNums walks one it must reject (persistent INSERT in the body).
func profSession(t *testing.T) *engine.Session {
	t.Helper()
	eng := engine.New()
	Install(eng)
	sess := eng.NewSession()
	setup := `
create table nums (n int);
insert into nums values (1), (2), (3), (4), (5);
create table sink (n int);
GO
create procedure sumAbove(@lo int) as
begin
  declare @n int;
  declare @s int = 0;
  declare c cursor for select n from nums where n >= @lo order by n;
  open c;
  fetch next from c into @n;
  while @@fetch_status = 0
  begin
    set @s = @s + @n;
    fetch next from c into @n;
  end
  close c;
  deallocate c;
  print @s;
end
GO
create procedure copyNums() as
begin
  declare @n int;
  declare c cursor for select n from nums;
  open c;
  fetch next from c into @n;
  while @@fetch_status = 0
  begin
    insert into sink values (@n);
    fetch next from c into @n;
  end
  close c;
  deallocate c;
end
`
	if _, err := RunScript(sess, parser.MustParse(setup)); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return sess
}

func TestProfileProcedureCursorLoopCandidate(t *testing.T) {
	sess := profSession(t)
	prof, err := ProfileProcedure(sess, "sumAbove", sqltypes.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(prof.Loops))
	}
	lp := prof.Loops[0]
	// 5 matching rows: the body runs once per row, and the priming fetch
	// plus 4 successful in-loop fetches assign 5 rows total.
	if lp.Iterations != 5 {
		t.Fatalf("iterations = %d, want 5", lp.Iterations)
	}
	if lp.RowsFetched != 5 {
		t.Fatalf("rows fetched = %d, want 5", lp.RowsFetched)
	}
	if !lp.AggifyCandidate || lp.Reason != "" {
		t.Fatalf("loop not a candidate: reason = %q", lp.Reason)
	}
	if lp.TimeShare <= 0 || lp.TimeShare > 1 {
		t.Fatalf("time share = %v, want (0,1]", lp.TimeShare)
	}
	if lp.LoopWall < lp.BodyWall {
		t.Fatalf("loop wall %v < body wall %v", lp.LoopWall, lp.BodyWall)
	}
	// The procedure really executed: PRINT captured the sum.
	if p := sess.Prints(); len(p) != 1 || p[0] != "15" {
		t.Fatalf("prints = %v, want [15]", p)
	}
}

func TestProfileProcedureArgumentsNarrowLoop(t *testing.T) {
	sess := profSession(t)
	prof, err := ProfileProcedure(sess, "sumAbove", sqltypes.NewInt(4))
	if err != nil {
		t.Fatal(err)
	}
	if lp := prof.Loops[0]; lp.Iterations != 2 || lp.RowsFetched != 2 {
		t.Fatalf("iterations=%d rows=%d, want 2/2", lp.Iterations, lp.RowsFetched)
	}
}

func TestProfileProcedureRejectedLoopHasReason(t *testing.T) {
	sess := profSession(t)
	prof, err := ProfileProcedure(sess, "copyNums")
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(prof.Loops))
	}
	lp := prof.Loops[0]
	if lp.AggifyCandidate {
		t.Fatal("persistent INSERT in loop body must not be a candidate")
	}
	if !strings.Contains(lp.Reason, "sink") {
		t.Fatalf("reason = %q, want the offending table named", lp.Reason)
	}
	// Side effects happened exactly like EXEC.
	tbl, ok := sess.Eng.Table("sink")
	if !ok {
		t.Fatal("sink table missing")
	}
	if n := tbl.RowCount(); n != 5 {
		t.Fatalf("sink rows = %d, want 5", n)
	}
}

func TestProfileProcedureStmtAttribution(t *testing.T) {
	sess := profSession(t)
	prof, err := ProfileProcedure(sess, "sumAbove", sqltypes.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Stmts) == 0 {
		t.Fatal("no per-statement attribution")
	}
	var sawLoop bool
	for _, st := range prof.Stmts {
		if st.Count < 1 {
			t.Fatalf("top-level stmt %q ran %d times", st.Text, st.Count)
		}
		if strings.HasPrefix(st.Text, "WHILE") || strings.HasPrefix(st.Text, "while") {
			sawLoop = true
		}
	}
	if !sawLoop {
		t.Fatalf("WHILE missing from attribution: %+v", prof.Stmts)
	}
	if prof.Wall <= 0 {
		t.Fatalf("wall = %v", prof.Wall)
	}
}

func TestProfileProcedureUnknown(t *testing.T) {
	sess := profSession(t)
	if _, err := ProfileProcedure(sess, "nope"); err == nil {
		t.Fatal("expected error for unknown procedure")
	}
}

// TestTraceProcedureStatement drives the SQL surface: TRACE PROCEDURE
// returns the profile as a one-column result set whose lines carry the
// aggify_candidate verdict.
func TestTraceProcedureStatement(t *testing.T) {
	sess := profSession(t)
	rs, err := RunScript(sess, parser.MustParse("trace procedure sumAbove(1);"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || len(rs[0].Columns) != 1 || rs[0].Columns[0] != "profile" {
		t.Fatalf("result shape = %+v", rs)
	}
	var all []string
	for _, row := range rs[0].Rows {
		all = append(all, row[0].String())
	}
	text := strings.Join(all, "\n")
	for _, want := range []string{
		"procedure sumabove:",
		"cursor loop c:",
		"iterations=5",
		"rows_fetched=5",
		"aggify_candidate=true",
		"time_share=",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("profile output missing %q:\n%s", want, text)
		}
	}
}
