// Package testutil holds shared test helpers. It is stdlib-only and must
// stay importable from every internal package's tests.
package testutil

import (
	"runtime"
	"strings"
	"time"
)

// TB is the subset of *testing.T that VerifyNoLeaks needs; taking an
// interface keeps the package free of a testing import in its API and lets
// benchmarks use the guard too.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// VerifyNoLeaks registers a cleanup that fails the test if any goroutine
// running this module's code (exchange workers, server connection handlers,
// client readers) outlives the test body. Goroutines already alive when the
// guard is installed are exempt, as is the goroutine running the check
// itself. Shutdown is asynchronous in places (connection teardown, worker
// drain), so the check retries with backoff before declaring a leak.
func VerifyNoLeaks(t TB) {
	t.Helper()
	before := map[string]bool{}
	for id := range moduleGoroutines() {
		before[id] = true
	}
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			var leaked []string
			for id, stack := range moduleGoroutines() {
				if !before[id] {
					leaked = append(leaked, stack)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("testutil: %d goroutine(s) leaked:\n%s", len(leaked), strings.Join(leaked, "\n---\n"))
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// moduleGoroutines returns the stacks of live goroutines executing this
// module's non-test code, keyed by the "goroutine N" header (stable for a
// goroutine's lifetime). The goroutine running the scan is excluded via its
// testutil frames.
func moduleGoroutines() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := map[string]string{}
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		if !strings.Contains(stanza, "aggify/internal/") && !strings.Contains(stanza, "\naggify.") {
			continue
		}
		if strings.Contains(stanza, "aggify/internal/testutil.") {
			continue
		}
		header, _, ok := strings.Cut(stanza, " [")
		if !ok {
			continue
		}
		out[header] = stanza
	}
	return out
}
