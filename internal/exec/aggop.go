package exec

import (
	"fmt"
	"sync"

	"aggify/internal/sqltypes"
)

// AggInstance pairs an aggregate spec with its compiled argument scalars.
type AggInstance struct {
	Spec *AggSpec
	Args []Scalar
	Star bool // COUNT(*): no arguments are evaluated
	// ArgOrds, when non-nil (same length as Args), gives the input column
	// ordinal of every argument: the planner sets it when each argument is a
	// plain column reference, unlocking the vectorized StepBatch path that
	// reads arguments straight out of batch columns instead of evaluating
	// Args row by row.
	ArgOrds []int
}

// step folds one row, reusing buf for argument evaluation (Step
// implementations must not retain the slice).
func (ai *AggInstance) step(ctx *Ctx, agg Aggregator, row Row, buf []sqltypes.Value) error {
	if ai.Star {
		return agg.Step(ctx, nil)
	}
	for i, s := range ai.Args {
		v, err := s(ctx, row)
		if err != nil {
			return err
		}
		buf[i] = v
	}
	return agg.Step(ctx, buf[:len(ai.Args)])
}

// argBuffers allocates one reusable argument buffer per aggregate.
func argBuffers(aggs []AggInstance) [][]sqltypes.Value {
	out := make([][]sqltypes.Value, len(aggs))
	for i, ai := range aggs {
		out[i] = make([]sqltypes.Value, len(ai.Args))
	}
	return out
}

// HashAggOp groups its input by GroupKeys and folds each group through the
// aggregates. With no group keys it is a scalar aggregate: exactly one
// output row, produced even for empty input (Init + Terminate only — the
// semantics Aggify's empty-cursor case relies on).
//
// When the child produces batches natively (and NoBatch is unset) the input
// is consumed through the vectorized fold in aggbatch.go; groups and rows
// are visited in the same order on both paths, so results are byte-identical.
type HashAggOp struct {
	Child     Operator
	GroupKeys []Scalar
	Aggs      []AggInstance
	// GroupOrds, when non-nil (same length as GroupKeys), gives the input
	// column ordinal of every group key for the vectorized fold.
	GroupOrds []int
	// NoBatch forces the row-at-a-time path (the planner sets it under
	// Options.DisableBatch, keeping the row path benchmarkable/testable).
	NoBatch bool

	groups []Row
	pos    int
}

// BufferedRows reports the number of materialized groups.
func (o *HashAggOp) BufferedRows() int { return len(o.groups) }

// Open implements Operator: it consumes the child entirely.
func (o *HashAggOp) Open(ctx *Ctx) error {
	o.groups = nil
	o.pos = 0
	if err := o.Child.Open(ctx); err != nil {
		return err
	}
	defer o.Child.Close()

	var order []*pagGroup
	if !o.NoBatch && CanBatch(o.Child) && BatchWorthwhile(len(o.GroupKeys), o.GroupOrds, o.Aggs) {
		f := newBatchAggFold(o.GroupKeys, o.GroupOrds, o.Aggs, true)
		if err := f.run(ctx, o.Child.(BatchOperator)); err != nil {
			return err
		}
		order = f.order
	} else {
		var err error
		if order, err = o.rowFold(ctx); err != nil {
			return err
		}
	}
	for _, g := range order {
		out := make(Row, len(g.keys)+len(g.aggs))
		copy(out, g.keys)
		for i, a := range g.aggs {
			v, err := a.Result(ctx)
			if err != nil {
				return err
			}
			out[len(g.keys)+i] = v
		}
		o.groups = append(o.groups, out)
	}
	return nil
}

// rowFold is the row-at-a-time accumulation loop.
func (o *HashAggOp) rowFold(ctx *Ctx) ([]*pagGroup, error) {
	newGroup := func(keys []sqltypes.Value) *pagGroup {
		g := &pagGroup{keys: keys, aggs: make([]Aggregator, len(o.Aggs))}
		for i, ai := range o.Aggs {
			g.aggs[i] = ai.Spec.New()
			g.aggs[i].Reset()
		}
		return g
	}
	table := map[uint64][]*pagGroup{}
	bufs := argBuffers(o.Aggs)
	var order []*pagGroup // preserve first-seen group order for determinism
	var scalarGroup *pagGroup
	if len(o.GroupKeys) == 0 {
		scalarGroup = newGroup(nil)
		order = append(order, scalarGroup)
	}
	n := 0
	for {
		row, err := o.Child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if row == nil {
			return order, nil
		}
		n++
		if n%1024 == 0 && ctx.Interrupted() {
			return nil, ErrInterrupted
		}
		g := scalarGroup
		if g == nil {
			keys := make([]sqltypes.Value, len(o.GroupKeys))
			for i, k := range o.GroupKeys {
				if keys[i], err = k(ctx, row); err != nil {
					return nil, err
				}
			}
			h := sqltypes.HashRow(keys)
			for _, cand := range table[h] {
				if sqltypes.RowsGroupEqual(cand.keys, keys) {
					g = cand
					break
				}
			}
			if g == nil {
				g = newGroup(keys)
				table[h] = append(table[h], g)
				order = append(order, g)
			}
		}
		for i := range o.Aggs {
			if err := o.Aggs[i].step(ctx, g.aggs[i], row, bufs[i]); err != nil {
				return nil, err
			}
		}
	}
}

// Next implements Operator.
func (o *HashAggOp) Next(*Ctx) (Row, error) {
	if o.pos >= len(o.groups) {
		return nil, nil
	}
	r := o.groups[o.pos]
	o.pos++
	return r, nil
}

// Close implements Operator.
func (o *HashAggOp) Close() { o.groups = nil }

// StreamAggOp is the streaming aggregate operator: it folds its input in
// arrival order, emitting a group whenever the group keys change. Its input
// must already be grouped (sorted) by the keys. This is the operator the
// Aggify rewrite rule (paper Eq. 6) enforces for order-sensitive custom
// aggregates: the input order is exactly the order Accumulate observes.
type StreamAggOp struct {
	Child     Operator
	GroupKeys []Scalar
	Aggs      []AggInstance

	curKeys  []sqltypes.Value
	curAggs  []Aggregator
	started  bool
	childEOF bool
	emitted  bool // scalar-aggregate case: one row emitted
	bufs     [][]sqltypes.Value
}

// Open implements Operator.
func (o *StreamAggOp) Open(ctx *Ctx) error {
	o.curKeys = nil
	o.curAggs = nil
	o.started = false
	o.childEOF = false
	o.emitted = false
	o.bufs = argBuffers(o.Aggs)
	return o.Child.Open(ctx)
}

func (o *StreamAggOp) freshAggs() []Aggregator {
	aggs := make([]Aggregator, len(o.Aggs))
	for i, ai := range o.Aggs {
		aggs[i] = ai.Spec.New()
		aggs[i].Reset()
	}
	return aggs
}

func (o *StreamAggOp) result(ctx *Ctx) (Row, error) {
	out := make(Row, len(o.curKeys)+len(o.curAggs))
	copy(out, o.curKeys)
	for i, a := range o.curAggs {
		v, err := a.Result(ctx)
		if err != nil {
			return nil, err
		}
		out[len(o.curKeys)+i] = v
	}
	return out, nil
}

// Next implements Operator.
func (o *StreamAggOp) Next(ctx *Ctx) (Row, error) {
	if o.childEOF {
		return nil, nil
	}
	n := 0
	for {
		n++
		if n%1024 == 0 && ctx.Interrupted() {
			return nil, ErrInterrupted
		}
		row, err := o.Child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if row == nil {
			o.childEOF = true
			o.Child.Close()
			if len(o.GroupKeys) == 0 {
				// Scalar aggregate: always exactly one row.
				if o.emitted {
					return nil, nil
				}
				o.emitted = true
				if !o.started {
					o.curAggs = o.freshAggs()
				}
				return o.result(ctx)
			}
			if o.started {
				o.started = false
				return o.result(ctx)
			}
			return nil, nil
		}
		var keys []sqltypes.Value
		if len(o.GroupKeys) > 0 {
			keys = make([]sqltypes.Value, len(o.GroupKeys))
			for i, k := range o.GroupKeys {
				if keys[i], err = k(ctx, row); err != nil {
					return nil, err
				}
			}
		}
		var emit Row
		if o.started && len(o.GroupKeys) > 0 && !sqltypes.RowsGroupEqual(keys, o.curKeys) {
			if emit, err = o.result(ctx); err != nil {
				return nil, err
			}
			o.started = false
		}
		if !o.started {
			o.curKeys = keys
			o.curAggs = o.freshAggs()
			o.started = true
			if len(o.GroupKeys) == 0 {
				o.emitted = false
			}
		}
		for i := range o.Aggs {
			if err := o.Aggs[i].step(ctx, o.curAggs[i], row, o.bufs[i]); err != nil {
				return nil, err
			}
		}
		if emit != nil {
			return emit, nil
		}
	}
}

// Close implements Operator.
func (o *StreamAggOp) Close() {
	if !o.childEOF {
		o.Child.Close()
	}
}

// ParallelAggOp aggregates its input across worker goroutines, each running
// its own aggregator instances, and combines partial states with Merge —
// the parallel path of the custom-aggregate contract (§3.1). It must only
// be used for order-insensitive aggregates.
//
// Two input modes:
//   - Parts (preferred): one pre-partitioned child subtree per worker,
//     typically Filter/Project chains over a ParallelScanOp. Workers pull
//     their partition concurrently under private contexts (see exchange.go)
//     so scans, predicate evaluation, and accumulation all parallelize.
//   - Child (fallback): the serial input is drained first, then split into
//     contiguous chunks — only the accumulation parallelizes.
//
// Both modes merge worker partials in partition order into worker 0's
// table, so the output group order equals the serial HashAggOp's first-seen
// order (partitions are contiguous in serial input order) and results are
// byte-identical to the serial plan.
type ParallelAggOp struct {
	Child     Operator
	Parts     []Operator
	GroupKeys []Scalar
	Aggs      []AggInstance
	Workers   int
	// GroupOrds, when non-nil (same length as GroupKeys), gives the input
	// column ordinal of every group key for the vectorized fold.
	GroupOrds []int
	// NoBatch forces the row-at-a-time path (set under Options.DisableBatch).
	NoBatch bool

	groups []Row
	pos    int
}

// BufferedRows reports the number of materialized groups.
func (o *ParallelAggOp) BufferedRows() int { return len(o.groups) }

type pagGroup struct {
	keys []sqltypes.Value
	aggs []Aggregator
	sel  []int // transient per-batch selection vector (batchAggFold only)
}

// Open implements Operator.
func (o *ParallelAggOp) Open(ctx *Ctx) error {
	o.groups = nil
	o.pos = 0
	var partials []map[uint64][]*pagGroup
	var orders [][]*pagGroup
	var err error
	if len(o.Parts) > 0 {
		partials, orders, err = o.runPartitioned(ctx)
	} else {
		partials, orders, err = o.runChunked(ctx)
	}
	if err != nil {
		return err
	}
	// Merge worker partials into worker 0's table.
	master := partials[0]
	masterOrder := orders[0]
	for w := 1; w < len(partials); w++ {
		for _, g := range orders[w] {
			h := sqltypes.HashRow(g.keys)
			var target *pagGroup
			for _, cand := range master[h] {
				if sqltypes.RowsGroupEqual(cand.keys, g.keys) {
					target = cand
					break
				}
			}
			if target == nil {
				master[h] = append(master[h], g)
				masterOrder = append(masterOrder, g)
				continue
			}
			for i := range target.aggs {
				if err := target.aggs[i].Merge(g.aggs[i]); err != nil {
					return err
				}
			}
		}
	}
	if len(o.GroupKeys) == 0 && len(masterOrder) == 0 {
		// Scalar aggregate over empty input: Init + Terminate.
		g := &pagGroup{aggs: make([]Aggregator, len(o.Aggs))}
		for i, ai := range o.Aggs {
			g.aggs[i] = ai.Spec.New()
			g.aggs[i].Reset()
		}
		masterOrder = append(masterOrder, g)
	}
	for _, g := range masterOrder {
		out := make(Row, len(g.keys)+len(g.aggs))
		copy(out, g.keys)
		for i, a := range g.aggs {
			v, err := a.Result(ctx)
			if err != nil {
				return err
			}
			out[len(g.keys)+i] = v
		}
		o.groups = append(o.groups, out)
	}
	return nil
}

// runPartitioned pulls one pre-partitioned subtree per worker, each folding
// its rows into a private group table under a private context. An error in
// any worker closes quit so the others stop promptly.
func (o *ParallelAggOp) runPartitioned(ctx *Ctx) ([]map[uint64][]*pagGroup, [][]*pagGroup, error) {
	n := len(o.Parts)
	partials := make([]map[uint64][]*pagGroup, n)
	orders := make([][]*pagGroup, n)
	errs := make([]error, n)
	quit := make(chan struct{})
	var abort sync.Once
	stop := func() { abort.Do(func() { close(quit) }) }
	// quit always closes on the way out so the Done relay below never
	// outlives this call.
	defer stop()
	if ctx.Done != nil {
		// Relay a parent-level cancellation (early Rows.Close) into quit.
		go func() {
			select {
			case <-ctx.Done:
				stop()
			case <-quit:
			}
		}()
	}
	var wg sync.WaitGroup
	for w, part := range o.Parts {
		wg.Add(1)
		go func(w int, part Operator) {
			defer wg.Done()
			wctx, flush := workerCtx(ctx, quit)
			defer flush()
			defer part.Close()
			if err := part.Open(wctx); err != nil {
				errs[w] = err
				abort.Do(func() { close(quit) })
				return
			}
			if !o.NoBatch && CanBatch(part) && BatchWorthwhile(len(o.GroupKeys), o.GroupOrds, o.Aggs) {
				// Vectorized worker fold. preScalar is false: an empty
				// partition must contribute no partial, exactly like
				// aggregateStream (Open's scalar fallback supplies the
				// Init+Terminate row when every partition is empty).
				f := newBatchAggFold(o.GroupKeys, o.GroupOrds, o.Aggs, false)
				errs[w] = f.run(wctx, part.(BatchOperator))
				partials[w], orders[w] = f.table, f.order
			} else {
				partials[w], orders[w], errs[w] = o.aggregateStream(wctx, part.Next)
			}
			if errs[w] != nil {
				abort.Do(func() { close(quit) })
			}
		}(w, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return partials, orders, nil
}

// runChunked is the materialize-then-split fallback used when the planner
// could not partition the input subtree: only accumulation parallelizes.
func (o *ParallelAggOp) runChunked(ctx *Ctx) ([]map[uint64][]*pagGroup, [][]*pagGroup, error) {
	rows, err := Drain(ctx, o.Child)
	if err != nil {
		return nil, nil, err
	}
	workers := o.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(rows) && len(rows) > 0 {
		workers = len(rows)
	}
	if len(rows) == 0 {
		workers = 1
	}
	partials := make([]map[uint64][]*pagGroup, workers)
	orders := make([][]*pagGroup, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(rows) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wctx, flush := workerCtx(ctx, nil)
			defer flush()
			pos := lo
			partials[w], orders[w], errs[w] = o.aggregateStream(wctx, func(*Ctx) (Row, error) {
				if pos >= hi {
					return nil, nil
				}
				r := rows[pos]
				pos++
				return r, nil
			})
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return partials, orders, nil
}

// aggregateStream folds rows from next into a fresh group table, preserving
// first-seen group order.
func (o *ParallelAggOp) aggregateStream(ctx *Ctx, next func(*Ctx) (Row, error)) (map[uint64][]*pagGroup, []*pagGroup, error) {
	table := map[uint64][]*pagGroup{}
	bufs := argBuffers(o.Aggs)
	var order []*pagGroup
	n := 0
	for {
		row, err := next(ctx)
		if err != nil {
			return nil, nil, err
		}
		if row == nil {
			return table, order, nil
		}
		n++
		if n%1024 == 0 && ctx.Interrupted() {
			return nil, nil, ErrInterrupted
		}
		var keys []sqltypes.Value
		if len(o.GroupKeys) > 0 {
			keys = make([]sqltypes.Value, len(o.GroupKeys))
			for i, k := range o.GroupKeys {
				v, err := k(ctx, row)
				if err != nil {
					return nil, nil, err
				}
				keys[i] = v
			}
		}
		h := sqltypes.HashRow(keys)
		var g *pagGroup
		for _, cand := range table[h] {
			if sqltypes.RowsGroupEqual(cand.keys, keys) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &pagGroup{keys: keys, aggs: make([]Aggregator, len(o.Aggs))}
			for i, ai := range o.Aggs {
				g.aggs[i] = ai.Spec.New()
				g.aggs[i].Reset()
			}
			table[h] = append(table[h], g)
			order = append(order, g)
		}
		for i := range o.Aggs {
			if err := o.Aggs[i].step(ctx, g.aggs[i], row, bufs[i]); err != nil {
				return nil, nil, err
			}
		}
	}
}

// Next implements Operator.
func (o *ParallelAggOp) Next(*Ctx) (Row, error) {
	if o.pos >= len(o.groups) {
		return nil, nil
	}
	r := o.groups[o.pos]
	o.pos++
	return r, nil
}

// Close implements Operator.
func (o *ParallelAggOp) Close() { o.groups = nil }

// RecursiveCTEOp evaluates a recursive common table expression with UNION
// ALL semantics: the seed runs once; then the recursive branch runs against
// the previous iteration's delta until it yields no rows. It backs the
// paper's §8.1 FOR-loop lifting.
type RecursiveCTEOp struct {
	Seed      Operator
	Recursive Operator
	// Delta is shared with the DeltaScanOp leaves inside Recursive.
	Delta *[]Row
	// MaxIterations caps runaway recursion (0 = default 1e6).
	MaxIterations int

	out []Row
	pos int
}

// BufferedRows reports the rows spooled into the CTE worktable.
func (o *RecursiveCTEOp) BufferedRows() int { return len(o.out) }

// Open implements Operator.
func (o *RecursiveCTEOp) Open(ctx *Ctx) error {
	o.out = nil
	o.pos = 0
	limit := o.MaxIterations
	if limit <= 0 {
		limit = 1_000_000
	}
	seedRows, err := Drain(ctx, o.Seed)
	if err != nil {
		return err
	}
	o.out = append(o.out, seedRows...)
	delta := seedRows
	for iter := 0; len(delta) > 0; iter++ {
		if iter >= limit {
			return fmt.Errorf("exec: recursive CTE exceeded %d iterations", limit)
		}
		if ctx.Interrupted() {
			return ErrInterrupted
		}
		*o.Delta = delta
		next, err := Drain(ctx, o.Recursive)
		if err != nil {
			return err
		}
		o.out = append(o.out, next...)
		delta = next
	}
	return nil
}

// Next implements Operator.
func (o *RecursiveCTEOp) Next(*Ctx) (Row, error) {
	if o.pos >= len(o.out) {
		return nil, nil
	}
	r := o.out[o.pos]
	o.pos++
	return r, nil
}

// Close implements Operator.
func (o *RecursiveCTEOp) Close() { o.out = nil }
