package exec

import (
	"fmt"
	"sync"

	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// This file implements intra-query parallelism: Volcano-style exchange
// operators pulling N partitioned child subtrees on worker goroutines, and
// the range-partitioned scan that feeds them. Parallel aggregation (the
// Merge half of the custom-aggregate contract, §3.1) lives in aggop.go and
// shares the worker plumbing here.
//
// Concurrency rules, kept uniform across every exchange-style operator:
//
//   - Each worker runs its child subtree under a private Ctx copy with a
//     worker-local storage.Stats, flushed into the parent's Stats exactly
//     once at worker exit (before the consumer can observe EOF). Per-node
//     instrumentation deltas therefore stay serially consistent inside each
//     worker, and the exclusive-reads-sum == session-delta invariant holds.
//   - The worker Ctx's Done channel is the operator's quit channel: closing
//     it cancels workers promptly even mid-scan. The parent's Interrupt
//     channel is inherited so session interrupts reach workers directly.
//   - Close closes quit and joins the WaitGroup; it never strands a worker
//     blocked on a channel send (every send selects on quit).

// defaultExchangeBuffer is the per-channel row capacity of an exchange.
const defaultExchangeBuffer = 64

// workerCtx derives a worker execution context from the consumer's: private
// stats, quit (when non-nil) as the local Done. It returns the context and
// a flush that folds the worker's accumulated stats into the parent context.
func workerCtx(parent *Ctx, quit <-chan struct{}) (*Ctx, func()) {
	w := *parent
	ws := &storage.Stats{}
	w.Stats = ws
	if quit != nil {
		w.Done = quit
	}
	flush := func() {
		if parent.Stats != nil {
			parent.Stats.AddSnapshot(ws.Snapshot())
		}
	}
	return &w, flush
}

// ScanSplit owns one shared snapshot of a table's rows and parcels it into
// NParts contiguous ranges. All ParallelScanOp siblings of one execution
// share a split, so the table is read (and its logical reads charged)
// exactly once, and partition i always holds rows strictly before partition
// i+1 in serial scan order — the property that lets parallel plans
// reproduce serial output orders deterministically.
type ScanSplit struct {
	// Table is the base table to snapshot; when nil, Name is resolved
	// through Ctx.Temp at first Open (table variables, temp tables).
	Table *storage.Table
	// Name is the late-bound table name used when Table is nil.
	Name string
	// NParts is the number of contiguous partitions.
	NParts int

	once sync.Once
	rows []Row
	err  error
}

// load snapshots the table once; the first caller's context is charged the
// logical reads (its worker-local stats flush to the session either way).
func (s *ScanSplit) load(ctx *Ctx) ([]Row, error) {
	s.once.Do(func() {
		tab := s.Table
		if tab == nil {
			if ctx.Temp == nil {
				s.err = fmt.Errorf("exec: no temp-table resolver for %s", s.Name)
				return
			}
			t, ok := ctx.Temp(s.Name)
			if !ok {
				s.err = fmt.Errorf("exec: undeclared table variable %s", s.Name)
				return
			}
			tab = t
		}
		tab.Scan(ctx.Snap, ctx.Stats, func(_ int, row []sqltypes.Value) bool {
			s.rows = append(s.rows, row)
			return true
		})
	})
	return s.rows, s.err
}

// part returns partition i's contiguous row range.
func (s *ScanSplit) part(ctx *Ctx, i int) ([]Row, error) {
	rows, err := s.load(ctx)
	if err != nil {
		return nil, err
	}
	n := s.NParts
	if n < 1 {
		n = 1
	}
	chunk := (len(rows) + n - 1) / n
	lo := i * chunk
	hi := lo + chunk
	if lo > len(rows) {
		lo = len(rows)
	}
	if hi > len(rows) {
		hi = len(rows)
	}
	return rows[lo:hi], nil
}

// ParallelScanOp is one partition of a range-partitioned table scan. The
// planner instantiates the subtree below an exchange once per worker; each
// instance carries the same ScanSplit and its own Part index.
type ParallelScanOp struct {
	Split *ScanSplit
	Part  int

	rows []Row
	pos  int
}

// Open implements Operator.
func (o *ParallelScanOp) Open(ctx *Ctx) error {
	o.pos = 0
	rows, err := o.Split.part(ctx, o.Part)
	o.rows = rows
	return err
}

// Next implements Operator.
func (o *ParallelScanOp) Next(ctx *Ctx) (Row, error) {
	if o.pos%1024 == 0 && ctx.Interrupted() {
		return nil, ErrInterrupted
	}
	if o.pos >= len(o.rows) {
		return nil, nil
	}
	r := o.rows[o.pos]
	o.pos++
	return r, nil
}

// Close implements Operator.
func (o *ParallelScanOp) Close() { o.rows = nil }

// exchangeWorker drains part into out under a worker context, honouring
// quit on every send. The worker's stats flush before out is closed, so a
// consumer that has seen EOF also sees the flushed reads.
func exchangeWorker(parent *Ctx, quit <-chan struct{}, part Operator, out chan<- Row, errp *error) {
	ctx, flush := workerCtx(parent, quit)
	defer close(out)
	defer flush()
	defer part.Close()
	if err := part.Open(ctx); err != nil {
		*errp = err
		return
	}
	for {
		r, err := part.Next(ctx)
		if err != nil {
			*errp = err
			return
		}
		if r == nil {
			return
		}
		select {
		case out <- r:
		case <-quit:
			return
		}
	}
}

// ExchangeOp gathers the rows of N partitioned child subtrees, each pulled
// by its own worker goroutine through a bounded channel. Ordered mode
// drains partitions in index order — with contiguous range partitions the
// output reproduces the serial scan order exactly; unordered mode emits
// rows as workers produce them (nondeterministic interleaving, for
// consumers that impose their own order).
type ExchangeOp struct {
	Parts   []Operator
	Ordered bool
	// Buffer is the per-partition channel capacity (default 64).
	Buffer int

	quit    chan struct{}
	wg      sync.WaitGroup
	chans   []chan Row
	errs    []error
	gather  chan Row
	cur     int
	started bool
	closed  bool
}

// Open implements Operator: it starts one worker per partition.
func (o *ExchangeOp) Open(ctx *Ctx) error {
	buf := o.Buffer
	if buf <= 0 {
		buf = defaultExchangeBuffer
	}
	o.quit = make(chan struct{})
	o.chans = make([]chan Row, len(o.Parts))
	o.errs = make([]error, len(o.Parts))
	o.cur = 0
	o.started = true
	o.closed = false
	for i, part := range o.Parts {
		ch := make(chan Row, buf)
		o.chans[i] = ch
		o.wg.Add(1)
		go func(i int, part Operator, ch chan Row) {
			defer o.wg.Done()
			exchangeWorker(ctx, o.quit, part, ch, &o.errs[i])
		}(i, part, ch)
	}
	if !o.Ordered {
		// Funnel all partitions into one channel; the funnel exits once
		// every worker channel is closed (or quit fires mid-forward).
		o.gather = make(chan Row, buf)
		o.wg.Add(1)
		go func() {
			defer o.wg.Done()
			defer close(o.gather)
			var fan sync.WaitGroup
			for _, ch := range o.chans {
				fan.Add(1)
				go func(ch chan Row) {
					defer fan.Done()
					for r := range ch {
						select {
						case o.gather <- r:
						case <-o.quit:
							return
						}
					}
				}(ch)
			}
			fan.Wait()
		}()
	}
	return nil
}

// Next implements Operator.
func (o *ExchangeOp) Next(ctx *Ctx) (Row, error) {
	if !o.started {
		return nil, nil
	}
	if o.Ordered {
		for o.cur < len(o.chans) {
			r, err := o.recv(ctx, o.chans[o.cur])
			if err != nil {
				return nil, err
			}
			if r != nil {
				return r, nil
			}
			// Partition drained: surface its error before moving on.
			if werr := o.errs[o.cur]; werr != nil {
				return nil, werr
			}
			o.cur++
		}
		return nil, o.firstErr()
	}
	r, err := o.recv(ctx, o.gather)
	if err != nil {
		return nil, err
	}
	if r == nil {
		return nil, o.firstErr()
	}
	return r, nil
}

// recv pulls one row, waking up on consumer-side cancellation.
func (o *ExchangeOp) recv(ctx *Ctx, ch <-chan Row) (Row, error) {
	select {
	case r := <-ch:
		return r, nil
	default:
	}
	// A nil Interrupt/Done case never fires, which is the wanted no-op.
	select {
	case r := <-ch:
		return r, nil
	case <-o.quit:
		return nil, ErrInterrupted
	case <-ctx.Interrupt:
		return nil, ErrInterrupted
	case <-ctx.Done:
		return nil, ErrInterrupted
	}
}

func (o *ExchangeOp) firstErr() error {
	for _, err := range o.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close implements Operator: it cancels and joins all workers.
func (o *ExchangeOp) Close() {
	if !o.started || o.closed {
		return
	}
	o.closed = true
	close(o.quit)
	// Unblock workers stuck on a full channel by draining.
	for _, ch := range o.chans {
		for range ch {
		}
	}
	if o.gather != nil {
		for range o.gather {
		}
	}
	o.wg.Wait()
	o.started = false
}

// MergeExchangeOp merges N partitioned, individually sorted child subtrees
// into one globally sorted stream: each worker runs its partition's sort,
// and the consumer repeatedly takes the smallest head row. Ties take the
// lowest partition index — with contiguous range partitions and stable
// per-partition sorts this reproduces the serial stable sort byte for byte.
type MergeExchangeOp struct {
	Parts []Operator
	// Keys/Desc mirror the SortOp ordering the partitions were sorted by.
	Keys []Scalar
	Desc []bool
	// Buffer is the per-partition channel capacity (default 64).
	Buffer int

	quit    chan struct{}
	wg      sync.WaitGroup
	chans   []chan Row
	errs    []error
	heads   []mergeHead
	started bool
	closed  bool
	primed  bool
}

type mergeHead struct {
	row  Row
	keys []sqltypes.Value
	eof  bool
}

// Open implements Operator.
func (o *MergeExchangeOp) Open(ctx *Ctx) error {
	buf := o.Buffer
	if buf <= 0 {
		buf = defaultExchangeBuffer
	}
	o.quit = make(chan struct{})
	o.chans = make([]chan Row, len(o.Parts))
	o.errs = make([]error, len(o.Parts))
	o.heads = make([]mergeHead, len(o.Parts))
	o.started = true
	o.closed = false
	o.primed = false
	for i, part := range o.Parts {
		ch := make(chan Row, buf)
		o.chans[i] = ch
		o.wg.Add(1)
		go func(i int, part Operator, ch chan Row) {
			defer o.wg.Done()
			exchangeWorker(ctx, o.quit, part, ch, &o.errs[i])
		}(i, part, ch)
	}
	return nil
}

// advance refills partition i's head slot.
func (o *MergeExchangeOp) advance(ctx *Ctx, i int) error {
	var r Row
	select {
	case r = <-o.chans[i]:
	default:
		select {
		case r = <-o.chans[i]:
		case <-o.quit:
			return ErrInterrupted
		case <-ctx.Interrupt:
			return ErrInterrupted
		case <-ctx.Done:
			return ErrInterrupted
		}
	}
	if r == nil {
		if err := o.errs[i]; err != nil {
			return err
		}
		o.heads[i] = mergeHead{eof: true}
		return nil
	}
	keys := make([]sqltypes.Value, len(o.Keys))
	for k, key := range o.Keys {
		v, err := key(ctx, r)
		if err != nil {
			return err
		}
		keys[k] = v
	}
	o.heads[i] = mergeHead{row: r, keys: keys}
	return nil
}

// Next implements Operator.
func (o *MergeExchangeOp) Next(ctx *Ctx) (Row, error) {
	if !o.started {
		return nil, nil
	}
	if !o.primed {
		for i := range o.Parts {
			if err := o.advance(ctx, i); err != nil {
				return nil, err
			}
		}
		o.primed = true
	}
	best := -1
	for i := range o.heads {
		h := &o.heads[i]
		if h.eof {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		if o.less(h.keys, o.heads[best].keys) {
			best = i
		}
	}
	if best < 0 {
		return nil, nil
	}
	r := o.heads[best].row
	if err := o.advance(ctx, best); err != nil {
		return nil, err
	}
	return r, nil
}

// less orders candidate head i's keys strictly before the current best's;
// equal keys keep the earlier partition (stable tie-break by index, since
// the scan over heads visits partitions in ascending order).
func (o *MergeExchangeOp) less(a, b []sqltypes.Value) bool {
	for i := range o.Keys {
		c := compareForSort(a[i], b[i])
		if c == 0 {
			continue
		}
		if o.Desc[i] {
			return c > 0
		}
		return c < 0
	}
	return false
}

// Close implements Operator.
func (o *MergeExchangeOp) Close() {
	if !o.started || o.closed {
		return
	}
	o.closed = true
	close(o.quit)
	for _, ch := range o.chans {
		for range ch {
		}
	}
	o.wg.Wait()
	o.started = false
	o.heads = nil
}
