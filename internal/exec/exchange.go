package exec

import (
	"fmt"
	"sync"

	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// This file implements intra-query parallelism: Volcano-style exchange
// operators pulling N partitioned child subtrees on worker goroutines, and
// the range-partitioned scan that feeds them. Parallel aggregation (the
// Merge half of the custom-aggregate contract, §3.1) lives in aggop.go and
// shares the worker plumbing here.
//
// Concurrency rules, kept uniform across every exchange-style operator:
//
//   - Each worker runs its child subtree under a private Ctx copy with a
//     worker-local storage.Stats, flushed into the parent's Stats exactly
//     once at worker exit (before the consumer can observe EOF). Per-node
//     instrumentation deltas therefore stay serially consistent inside each
//     worker, and the exclusive-reads-sum == session-delta invariant holds.
//   - The worker Ctx's Done channel is the operator's quit channel: closing
//     it cancels workers promptly even mid-scan. The parent's Interrupt
//     channel is inherited so session interrupts reach workers directly.
//   - Close closes quit and joins the WaitGroup; it never strands a worker
//     blocked on a channel send (every send selects on quit).

// defaultExchangeBuffer is the per-channel row capacity of an exchange.
const defaultExchangeBuffer = 64

// workerCtx derives a worker execution context from the consumer's: private
// stats, quit (when non-nil) as the local Done. It returns the context and
// a flush that folds the worker's accumulated stats into the parent context.
func workerCtx(parent *Ctx, quit <-chan struct{}) (*Ctx, func()) {
	w := *parent
	ws := &storage.Stats{}
	w.Stats = ws
	if quit != nil {
		w.Done = quit
	}
	flush := func() {
		if parent.Stats != nil {
			parent.Stats.AddSnapshot(ws.Snapshot())
		}
	}
	return &w, flush
}

// ScanSplit owns one frozen snapshot of a table's slot range and parcels it
// into NParts contiguous streaming cursors. All ParallelScanOp siblings of
// one execution share a split, so the table is locked exactly once, and
// partition i always holds rows strictly before partition i+1 in serial scan
// order — the property that lets parallel plans reproduce serial output
// orders deterministically. Rows stream out of each cursor on demand (each
// partition charges its own logical reads to its worker's stats), so a
// parallel scan never materializes the table.
type ScanSplit struct {
	// Table is the base table to snapshot; when nil, Name is resolved
	// through Ctx.Temp at first Open (table variables, temp tables).
	Table *storage.Table
	// Name is the late-bound table name used when Table is nil.
	Name string
	// NParts is the number of contiguous partitions.
	NParts int

	once  sync.Once
	curs  []*storage.Cursor
	width int
	err   error
}

// load freezes the slot snapshot and carves the partition cursors once.
func (s *ScanSplit) load(ctx *Ctx) error {
	s.once.Do(func() {
		tab := s.Table
		if tab == nil {
			if ctx.Temp == nil {
				s.err = fmt.Errorf("exec: no temp-table resolver for %s", s.Name)
				return
			}
			t, ok := ctx.Temp(s.Name)
			if !ok {
				s.err = fmt.Errorf("exec: undeclared table variable %s", s.Name)
				return
			}
			tab = t
		}
		n := s.NParts
		if n < 1 {
			n = 1
		}
		s.curs = tab.SplitCursors(ctx.Snap, n)
		s.width = tab.Schema.Len()
	})
	return s.err
}

// cursor returns partition i's streaming cursor and the table width.
func (s *ScanSplit) cursor(ctx *Ctx, i int) (*storage.Cursor, int, error) {
	if err := s.load(ctx); err != nil {
		return nil, 0, err
	}
	return s.curs[i], s.width, nil
}

// ParallelScanOp is one partition of a range-partitioned table scan. The
// planner instantiates the subtree below an exchange once per worker; each
// instance carries the same ScanSplit and its own Part index. It is a native
// batch producer: a batched consumer (the vectorized aggregation fold) pulls
// whole column batches straight off the partition's cursor.
type ParallelScanOp struct {
	Split *ScanSplit
	Part  int

	cur   *storage.Cursor
	width int
	buf   []Row
	pos   int
	eof   bool
	batch *Batch
}

// Open implements Operator.
func (o *ParallelScanOp) Open(ctx *Ctx) error {
	o.buf = nil
	o.pos = 0
	o.eof = false
	cur, width, err := o.Split.cursor(ctx, o.Part)
	if err != nil {
		return err
	}
	cur.Reset()
	o.cur = cur
	o.width = width
	return nil
}

// Next implements Operator, streaming the partition in cursor-sized refills.
func (o *ParallelScanOp) Next(ctx *Ctx) (Row, error) {
	for o.pos >= len(o.buf) {
		if o.eof {
			return nil, nil
		}
		if ctx.Interrupted() {
			return nil, ErrInterrupted
		}
		if o.buf == nil {
			o.buf = make([]Row, 0, DefaultBatchSize)
		}
		o.buf = o.buf[:0]
		o.pos = 0
		if o.cur.Next(ctx.Stats, DefaultBatchSize, func(row []sqltypes.Value) {
			o.buf = append(o.buf, row)
		}) == 0 {
			o.eof = true
		}
	}
	r := o.buf[o.pos]
	o.pos++
	return r, nil
}

// NextBatch implements BatchOperator.
func (o *ParallelScanOp) NextBatch(ctx *Ctx) (*Batch, error) {
	if o.eof {
		return nil, nil
	}
	if ctx.Interrupted() {
		return nil, ErrInterrupted
	}
	if o.batch == nil {
		o.batch = NewBatch(o.width)
	}
	b := o.batch
	b.Reset(o.width)
	if o.cur.Next(ctx.Stats, DefaultBatchSize, func(row []sqltypes.Value) {
		b.AppendRow(row)
	}) == 0 {
		o.eof = true
		return nil, nil
	}
	return b, nil
}

// BatchCapable implements batchCapable.
func (o *ParallelScanOp) BatchCapable() bool { return true }

// Close implements Operator.
func (o *ParallelScanOp) Close() {
	o.cur = nil
	o.buf = nil
}

// exchangeWorker drains part into out under a worker context, honouring
// quit on every send. Rows ship between workers and the consumer as whole
// batches — one channel operation per ~DefaultBatchSize rows instead of one
// per row. Native batch producers are detached from their reusable buffer
// with Clone before the send; row-only subtrees are packed into fresh
// batches here. The worker's stats flush before out is closed, so a consumer
// that has seen EOF also sees the flushed reads.
func exchangeWorker(parent *Ctx, quit <-chan struct{}, part Operator, out chan<- *Batch, errp *error) {
	ctx, flush := workerCtx(parent, quit)
	defer close(out)
	defer flush()
	defer part.Close()
	if err := part.Open(ctx); err != nil {
		*errp = err
		return
	}
	if CanBatch(part) {
		src := part.(BatchOperator)
		for {
			if ctx.Interrupted() {
				*errp = ErrInterrupted
				return
			}
			b, err := src.NextBatch(ctx)
			if err != nil {
				*errp = err
				return
			}
			if b == nil {
				return
			}
			if b.Len() == 0 {
				continue
			}
			select {
			case out <- b.Clone():
			case <-quit:
				return
			}
		}
	}
	var b *Batch
	for {
		r, err := part.Next(ctx)
		if err != nil {
			*errp = err
			return
		}
		if r == nil {
			if b != nil && b.Len() > 0 {
				select {
				case out <- b:
				case <-quit:
				}
			}
			return
		}
		if b == nil {
			b = NewBatch(len(r))
		}
		b.AppendRow(r)
		if b.Len() >= DefaultBatchSize {
			select {
			case out <- b:
			case <-quit:
				return
			}
			// The consumer owns the sent batch; start a fresh one.
			b = NewBatch(len(r))
		}
	}
}

// ExchangeOp gathers the rows of N partitioned child subtrees, each pulled
// by its own worker goroutine through a bounded channel of whole batches.
// Ordered mode drains partitions in index order — with contiguous range
// partitions the output reproduces the serial scan order exactly; unordered
// mode emits batches as workers produce them (nondeterministic interleaving,
// for consumers that impose their own order). Row consumers unpack each
// received batch through Next; batch consumers take them whole via
// NextBatch.
type ExchangeOp struct {
	Parts   []Operator
	Ordered bool
	// Buffer is the per-partition channel capacity in batches (default 64).
	Buffer int

	quit    chan struct{}
	wg      sync.WaitGroup
	chans   []chan *Batch
	errs    []error
	gather  chan *Batch
	cur     int
	pending []Row
	ppos    int
	started bool
	closed  bool
}

// Open implements Operator: it starts one worker per partition.
func (o *ExchangeOp) Open(ctx *Ctx) error {
	buf := o.Buffer
	if buf <= 0 {
		buf = defaultExchangeBuffer
	}
	o.quit = make(chan struct{})
	o.chans = make([]chan *Batch, len(o.Parts))
	o.errs = make([]error, len(o.Parts))
	o.cur = 0
	o.pending = nil
	o.ppos = 0
	o.started = true
	o.closed = false
	for i, part := range o.Parts {
		ch := make(chan *Batch, buf)
		o.chans[i] = ch
		o.wg.Add(1)
		go func(i int, part Operator, ch chan *Batch) {
			defer o.wg.Done()
			exchangeWorker(ctx, o.quit, part, ch, &o.errs[i])
		}(i, part, ch)
	}
	if !o.Ordered {
		// Funnel all partitions into one channel; the funnel exits once
		// every worker channel is closed (or quit fires mid-forward).
		o.gather = make(chan *Batch, buf)
		o.wg.Add(1)
		go func() {
			defer o.wg.Done()
			defer close(o.gather)
			var fan sync.WaitGroup
			for _, ch := range o.chans {
				fan.Add(1)
				go func(ch chan *Batch) {
					defer fan.Done()
					for b := range ch {
						select {
						case o.gather <- b:
						case <-o.quit:
							return
						}
					}
				}(ch)
			}
			fan.Wait()
		}()
	}
	return nil
}

// Next implements Operator: it unpacks received batches one row at a time.
func (o *ExchangeOp) Next(ctx *Ctx) (Row, error) {
	for {
		if o.ppos < len(o.pending) {
			r := o.pending[o.ppos]
			o.ppos++
			return r, nil
		}
		b, err := o.NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		o.pending = b.Rows()
		o.ppos = 0
	}
}

// NextBatch implements BatchOperator. The returned batch was detached from
// its producer by the worker, so unlike most producers it remains valid
// after the next call — but consumers should not rely on that.
func (o *ExchangeOp) NextBatch(ctx *Ctx) (*Batch, error) {
	if !o.started {
		return nil, nil
	}
	if ctx.Interrupted() {
		return nil, ErrInterrupted
	}
	if o.Ordered {
		for o.cur < len(o.chans) {
			b, err := o.recv(ctx, o.chans[o.cur])
			if err != nil {
				return nil, err
			}
			if b != nil {
				return b, nil
			}
			// Partition drained: surface its error before moving on.
			if werr := o.errs[o.cur]; werr != nil {
				return nil, werr
			}
			o.cur++
		}
		return nil, o.firstErr()
	}
	b, err := o.recv(ctx, o.gather)
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, o.firstErr()
	}
	return b, nil
}

// BatchCapable implements batchCapable: exchange transport is batched end
// to end (row-only subtrees are packed worker-side, off the consumer's
// critical path).
func (o *ExchangeOp) BatchCapable() bool { return true }

// recv pulls one batch, waking up on consumer-side cancellation.
func (o *ExchangeOp) recv(ctx *Ctx, ch <-chan *Batch) (*Batch, error) {
	select {
	case b := <-ch:
		return b, nil
	default:
	}
	// A nil Interrupt/Done case never fires, which is the wanted no-op.
	select {
	case b := <-ch:
		return b, nil
	case <-o.quit:
		return nil, ErrInterrupted
	case <-ctx.Interrupt:
		return nil, ErrInterrupted
	case <-ctx.Done:
		return nil, ErrInterrupted
	}
}

func (o *ExchangeOp) firstErr() error {
	for _, err := range o.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close implements Operator: it cancels and joins all workers.
func (o *ExchangeOp) Close() {
	if !o.started || o.closed {
		return
	}
	o.closed = true
	close(o.quit)
	// Unblock workers stuck on a full channel by draining.
	for _, ch := range o.chans {
		for range ch {
		}
	}
	if o.gather != nil {
		for range o.gather {
		}
	}
	o.wg.Wait()
	o.started = false
}

// MergeExchangeOp merges N partitioned, individually sorted child subtrees
// into one globally sorted stream: each worker runs its partition's sort,
// and the consumer repeatedly takes the smallest head row. Ties take the
// lowest partition index — with contiguous range partitions and stable
// per-partition sorts this reproduces the serial stable sort byte for byte.
type MergeExchangeOp struct {
	Parts []Operator
	// Keys/Desc mirror the SortOp ordering the partitions were sorted by.
	Keys []Scalar
	Desc []bool
	// Buffer is the per-partition channel capacity (default 64).
	Buffer int

	quit    chan struct{}
	wg      sync.WaitGroup
	chans   []chan *Batch
	errs    []error
	heads   []mergeHead
	started bool
	closed  bool
	primed  bool
}

// mergeHead is one partition's merge cursor: the current row plus the
// received batch it came from and the index of the next row to unpack.
type mergeHead struct {
	row   Row
	keys  []sqltypes.Value
	batch *Batch
	next  int
	eof   bool
}

// Open implements Operator.
func (o *MergeExchangeOp) Open(ctx *Ctx) error {
	buf := o.Buffer
	if buf <= 0 {
		buf = defaultExchangeBuffer
	}
	o.quit = make(chan struct{})
	o.chans = make([]chan *Batch, len(o.Parts))
	o.errs = make([]error, len(o.Parts))
	o.heads = make([]mergeHead, len(o.Parts))
	o.started = true
	o.closed = false
	o.primed = false
	for i, part := range o.Parts {
		ch := make(chan *Batch, buf)
		o.chans[i] = ch
		o.wg.Add(1)
		go func(i int, part Operator, ch chan *Batch) {
			defer o.wg.Done()
			exchangeWorker(ctx, o.quit, part, ch, &o.errs[i])
		}(i, part, ch)
	}
	return nil
}

// advance refills partition i's head slot, pulling a fresh batch from the
// worker only when the current one is spent.
func (o *MergeExchangeOp) advance(ctx *Ctx, i int) error {
	h := &o.heads[i]
	for h.batch == nil || h.next >= h.batch.Len() {
		var b *Batch
		select {
		case b = <-o.chans[i]:
		default:
			select {
			case b = <-o.chans[i]:
			case <-o.quit:
				return ErrInterrupted
			case <-ctx.Interrupt:
				return ErrInterrupted
			case <-ctx.Done:
				return ErrInterrupted
			}
		}
		if b == nil {
			if err := o.errs[i]; err != nil {
				return err
			}
			o.heads[i] = mergeHead{eof: true}
			return nil
		}
		h.batch = b
		h.next = 0
	}
	// Materialize into a fresh slice: the head row outlives its batch slot
	// (the consumer returns it after advance overwrites the head).
	r := h.batch.Row(h.next, nil)
	h.next++
	keys := make([]sqltypes.Value, len(o.Keys))
	for k, key := range o.Keys {
		v, err := key(ctx, r)
		if err != nil {
			return err
		}
		keys[k] = v
	}
	h.row = r
	h.keys = keys
	return nil
}

// Next implements Operator.
func (o *MergeExchangeOp) Next(ctx *Ctx) (Row, error) {
	if !o.started {
		return nil, nil
	}
	if !o.primed {
		for i := range o.Parts {
			if err := o.advance(ctx, i); err != nil {
				return nil, err
			}
		}
		o.primed = true
	}
	best := -1
	for i := range o.heads {
		h := &o.heads[i]
		if h.eof {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		if o.less(h.keys, o.heads[best].keys) {
			best = i
		}
	}
	if best < 0 {
		return nil, nil
	}
	r := o.heads[best].row
	if err := o.advance(ctx, best); err != nil {
		return nil, err
	}
	return r, nil
}

// less orders candidate head i's keys strictly before the current best's;
// equal keys keep the earlier partition (stable tie-break by index, since
// the scan over heads visits partitions in ascending order).
func (o *MergeExchangeOp) less(a, b []sqltypes.Value) bool {
	for i := range o.Keys {
		c := compareForSort(a[i], b[i])
		if c == 0 {
			continue
		}
		if o.Desc[i] {
			return c > 0
		}
		return c < 0
	}
	return false
}

// Close implements Operator.
func (o *MergeExchangeOp) Close() {
	if !o.started || o.closed {
		return
	}
	o.closed = true
	close(o.quit)
	for _, ch := range o.chans {
		for range ch {
		}
	}
	o.wg.Wait()
	o.started = false
	o.heads = nil
}
