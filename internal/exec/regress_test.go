package exec

import (
	"errors"
	"math"
	"testing"

	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// --- SUM overflow ---

func TestSumOverflow(t *testing.T) {
	op := &HashAggOp{
		Child: bufferOf(intRow(math.MaxInt64), intRow(1)),
		Aggs:  []AggInstance{{Spec: builtinAgg(t, "sum"), Args: []Scalar{ColScalar(0)}}},
	}
	if _, err := Drain(&Ctx{}, op); !errors.Is(err, sqltypes.ErrArithmeticOverflow) {
		t.Fatalf("SUM over MaxInt64+1: want ErrArithmeticOverflow, got %v", err)
	}
	// The boundary itself is fine.
	op = &HashAggOp{
		Child: bufferOf(intRow(math.MaxInt64-1), intRow(1)),
		Aggs:  []AggInstance{{Spec: builtinAgg(t, "sum"), Args: []Scalar{ColScalar(0)}}},
	}
	rows := drain(t, op)
	if rows[0][0].Int() != math.MaxInt64 {
		t.Fatalf("SUM boundary = %v", rows)
	}
	// Once a float enters the sum, the result is float and IEEE754 absorbs
	// the magnitude instead of erroring (T-SQL's implicit promotion).
	op = &HashAggOp{
		Child: bufferOf(
			Row{sqltypes.NewFloat(1.5)},
			intRow(math.MaxInt64),
			intRow(math.MaxInt64),
		),
		Aggs: []AggInstance{{Spec: builtinAgg(t, "sum"), Args: []Scalar{ColScalar(0)}}},
	}
	rows = drain(t, op)
	if rows[0][0].Kind() != sqltypes.KindFloat {
		t.Fatalf("float-promoted SUM = %v", rows)
	}
}

func TestSumMergeOverflow(t *testing.T) {
	a, b := &sumAgg{}, &sumAgg{}
	if err := a.Step(nil, []sqltypes.Value{sqltypes.NewInt(math.MaxInt64)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Step(nil, []sqltypes.Value{sqltypes.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); !errors.Is(err, sqltypes.ErrArithmeticOverflow) {
		t.Fatalf("Merge overflow: want ErrArithmeticOverflow, got %v", err)
	}
}

// --- sort comparator total order ---

func TestCompareForSortTotalOrder(t *testing.T) {
	// A set with every kind, including pairs sqltypes.Compare rejects
	// (date vs non-date string, bool vs int): the comparator must still
	// impose a total order over them.
	vals := []sqltypes.Value{
		sqltypes.Null,
		sqltypes.NewBool(false),
		sqltypes.NewBool(true),
		sqltypes.NewInt(-3),
		sqltypes.NewFloat(2.5),
		sqltypes.NewInt(7),
		mustDate(t, "2024-01-15"),
		mustDate(t, "2025-06-01"),
		sqltypes.NewString("apple"),
		sqltypes.NewString("zebra"),
		sqltypes.NewTuple([]sqltypes.Value{sqltypes.NewInt(1)}),
	}
	// Antisymmetry + transitivity over every pair/triple.
	for _, a := range vals {
		if compareForSort(a, a) != 0 {
			t.Errorf("compare(%v, %v) != 0", a, a)
		}
		for _, b := range vals {
			if compareForSort(a, b) != -compareForSort(b, a) {
				t.Errorf("compare(%v, %v) not antisymmetric", a, b)
			}
			for _, c := range vals {
				if compareForSort(a, b) <= 0 && compareForSort(b, c) <= 0 && compareForSort(a, c) > 0 {
					t.Errorf("not transitive: %v <= %v <= %v but %v > %v", a, b, c, a, c)
				}
			}
		}
	}
}

func TestMixedKindSortPermutationIndependent(t *testing.T) {
	// Pre-fix, incomparable pairs compared as equal, making the order
	// depend on input permutation. Sort two rotations of the same multiset
	// and require identical output.
	base := []sqltypes.Value{
		sqltypes.NewString("pear"),
		mustDate(t, "2024-03-03"),
		sqltypes.NewInt(5),
		sqltypes.NewString("fig"),
		sqltypes.Null,
		sqltypes.NewBool(true),
		mustDate(t, "2023-12-31"),
	}
	sortOnce := func(vals []sqltypes.Value) []Row {
		rows := make([]Row, len(vals))
		for i, v := range vals {
			rows[i] = Row{v}
		}
		return drain(t, &SortOp{Child: &BufferScanOp{Rows: rows}, Keys: []Scalar{ColScalar(0)}, Desc: []bool{false}})
	}
	want := sortOnce(base)
	for rot := 1; rot < len(base); rot++ {
		perm := append(append([]sqltypes.Value{}, base[rot:]...), base[:rot]...)
		got := sortOnce(perm)
		for i := range want {
			if want[i][0].String() != got[i][0].String() {
				t.Fatalf("rotation %d: order diverged at %d: %v vs %v", rot, i, want[i][0], got[i][0])
			}
		}
	}
	// Kind ranking: NULL first, then bool, numerics, dates, strings.
	order := make([]string, len(want))
	for i, r := range want {
		order[i] = r[0].Kind().String()
	}
	if !want[0][0].IsNull() {
		t.Fatalf("NULL must sort first: %v", order)
	}
}

func mustDate(t *testing.T, s string) sqltypes.Value {
	t.Helper()
	v, err := sqltypes.ParseDate(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// --- TOP closes its child subtree at the limit ---

// closeTracker records lifecycle calls so tests can observe when a subtree
// is released.
type closeTracker struct {
	Child  Operator
	opens  int
	closes int
}

func (o *closeTracker) Open(ctx *Ctx) error {
	o.opens++
	return o.Child.Open(ctx)
}
func (o *closeTracker) Next(ctx *Ctx) (Row, error) { return o.Child.Next(ctx) }
func (o *closeTracker) Close()                     { o.closes++; o.Child.Close() }

func TestTopClosesChildAtLimit(t *testing.T) {
	tr := &closeTracker{Child: bufferOf(intRow(1), intRow(2), intRow(3))}
	top := &TopOp{Child: tr, N: ConstScalar(sqltypes.NewInt(2))}
	ctx := &Ctx{}
	if err := top.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		r, err := top.Next(ctx)
		if err != nil || r == nil {
			t.Fatalf("row %d: %v %v", i, r, err)
		}
	}
	// The limit is reached: the child subtree must already be released,
	// before the plan's own teardown.
	if tr.closes != 1 {
		t.Fatalf("child closes after limit = %d, want 1 (TOP must release its subtree eagerly)", tr.closes)
	}
	if r, err := top.Next(ctx); r != nil || err != nil {
		t.Fatalf("post-limit Next = %v, %v", r, err)
	}
	top.Close()
	if tr.closes != 1 {
		t.Fatalf("Close must be idempotent on the child: closes = %d", tr.closes)
	}
}

func TestTopZeroNeverOpensChild(t *testing.T) {
	tr := &closeTracker{Child: bufferOf(intRow(1))}
	top := &TopOp{Child: tr, N: ConstScalar(sqltypes.NewInt(0))}
	rows := drain(t, top)
	if len(rows) != 0 || tr.opens != 0 {
		t.Fatalf("TOP 0: rows=%d opens=%d", len(rows), tr.opens)
	}
}

func TestTopStopsReadingUnionBranches(t *testing.T) {
	// TOP over a concatenation only touches the branches it needs: the
	// second table's scan is never opened, so its reads never accrue.
	mk := func(name string, rows int64) *storage.Table {
		tab := storage.NewTable(name, storage.NewSchema(storage.Col("a", sqltypes.Int)))
		for i := int64(0); i < rows; i++ {
			_ = tab.Insert(nil, intRow(i))
		}
		return tab
	}
	t1, t2 := mk("t1", 3), mk("t2", 5)
	run := func(op Operator) storage.Snapshot {
		var stats storage.Stats
		if _, err := Drain(&Ctx{Stats: &stats}, op); err != nil {
			t.Fatal(err)
		}
		return stats.Snapshot()
	}
	full := run(&ConcatOp{Children: []Operator{&ScanOp{Table: t1}, &ScanOp{Table: t2}}})
	if full.LogicalReads != 8 {
		t.Fatalf("full concat reads = %d", full.LogicalReads)
	}
	topped := run(&TopOp{
		Child: &ConcatOp{Children: []Operator{&ScanOp{Table: t1}, &ScanOp{Table: t2}}},
		N:     ConstScalar(sqltypes.NewInt(2)),
	})
	if topped.LogicalReads != 3 {
		t.Fatalf("TOP 2 reads = %d, want 3 (t1 only; t2 must never open)", topped.LogicalReads)
	}
}

// --- left outer joins ---

func TestHashJoinLeftOuterResidualRejectsAll(t *testing.T) {
	left := bufferOf(intRow(1), intRow(2), intRow(3))
	right := bufferOf(intRow(1, 100), intRow(2, 200))
	never := func(_ *Ctx, _ Row) (sqltypes.Value, error) { return sqltypes.NewBool(false), nil }
	join := &HashJoinOp{
		Left: left, Right: right,
		LeftWidth: 1, RightWidth: 2,
		LeftKeys:  []Scalar{ColScalar(0)},
		RightKeys: []Scalar{ColScalar(0)},
		Residual:  never,
		LeftOuter: true,
	}
	rows := drain(t, join)
	if len(rows) != 3 {
		t.Fatalf("rows = %v, want one NULL-padded row per left row", rows)
	}
	for _, r := range rows {
		if len(r) != 3 || !r[1].IsNull() || !r[2].IsNull() {
			t.Fatalf("row %v not NULL-padded", r)
		}
	}
}

func TestHashJoinLeftOuterNullKeysBothSides(t *testing.T) {
	left := bufferOf(Row{sqltypes.Null}, intRow(1))
	right := bufferOf(Row{sqltypes.Null, sqltypes.NewInt(900)}, intRow(1, 100))
	join := &HashJoinOp{
		Left: left, Right: right,
		LeftWidth: 1, RightWidth: 2,
		LeftKeys:  []Scalar{ColScalar(0)},
		RightKeys: []Scalar{ColScalar(0)},
		LeftOuter: true,
	}
	rows := drain(t, join)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// NULL keys never match (SQL semantics): the NULL-keyed left row is
	// padded, the 1-keyed row joins.
	var padded, joined bool
	for _, r := range rows {
		switch {
		case r[0].IsNull() && r[1].IsNull() && r[2].IsNull():
			padded = true
		case !r[0].IsNull() && r[0].Int() == 1 && r[2].Int() == 100:
			joined = true
		default:
			t.Fatalf("unexpected row %v", r)
		}
	}
	if !padded || !joined {
		t.Fatalf("padded=%v joined=%v rows=%v", padded, joined, rows)
	}
}

func TestNLJoinLeftOuterPredicateRejectsAll(t *testing.T) {
	left := bufferOf(intRow(1), intRow(2))
	right := bufferOf(intRow(10), intRow(20))
	never := func(_ *Ctx, _ Row) (sqltypes.Value, error) { return sqltypes.NewBool(false), nil }
	join := &NLJoinOp{Left: left, Right: right, LeftWidth: 1, RightWidth: 1, On: never, LeftOuter: true}
	rows := drain(t, join)
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want one NULL-padded row per left row", rows)
	}
	for _, r := range rows {
		if !r[1].IsNull() {
			t.Fatalf("row %v not NULL-padded", r)
		}
	}
}

func TestNLJoinLeftOuterNullKeyComparison(t *testing.T) {
	// ON l = r with a NULL on either side evaluates to NULL (not true), so
	// NULL-keyed rows pad rather than match.
	left := bufferOf(Row{sqltypes.Null}, intRow(1))
	right := bufferOf(Row{sqltypes.Null}, intRow(1))
	on := func(ctx *Ctx, r Row) (sqltypes.Value, error) {
		return sqltypes.Apply(sqltypes.OpEq, r[0], r[1])
	}
	join := &NLJoinOp{Left: left, Right: right, LeftWidth: 1, RightWidth: 1, On: on, LeftOuter: true}
	rows := drain(t, join)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	var padded, matched int
	for _, r := range rows {
		if r[1].IsNull() {
			padded++
		} else {
			matched++
		}
	}
	if padded != 1 || matched != 1 {
		t.Fatalf("padded=%d matched=%d rows=%v", padded, matched, rows)
	}
}

// --- instrumentation wrapper ---

func TestInstrumentedOpCounters(t *testing.T) {
	tab := storage.NewTable("t", storage.NewSchema(storage.Col("a", sqltypes.Int)))
	for i := int64(0); i < 4; i++ {
		_ = tab.Insert(nil, intRow(4-i))
	}
	var stats storage.Stats
	ctx := &Ctx{Stats: &stats}
	scanStats, sortStats := &OpStats{}, &OpStats{}
	op := &InstrumentedOp{
		Stats: sortStats,
		Child: &SortOp{
			Child: &InstrumentedOp{Stats: scanStats, Child: &ScanOp{Table: tab}},
			Keys:  []Scalar{ColScalar(0)},
			Desc:  []bool{false},
		},
	}
	rows, err := Drain(ctx, op)
	if err != nil || len(rows) != 4 {
		t.Fatalf("drain: %v %d", err, len(rows))
	}
	if scanStats.Rows() != 4 || scanStats.Loops() != 1 {
		t.Fatalf("scan stats = %+v", scanStats)
	}
	if scanStats.Reads().LogicalReads != 4 {
		t.Fatalf("scan reads = %+v", scanStats.Reads())
	}
	if sortStats.Rows() != 4 || sortStats.PeakBuffered() != 4 {
		t.Fatalf("sort stats = %+v", sortStats)
	}
	// The sort's inclusive reads contain the scan's.
	if sortStats.Reads().LogicalReads != 4 {
		t.Fatalf("sort inclusive reads = %+v", sortStats.Reads())
	}
	// NextCalls includes the EOF call.
	if scanStats.NextCalls() != 5 {
		t.Fatalf("scan NextCalls = %d", scanStats.NextCalls())
	}
}
