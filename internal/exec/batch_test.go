package exec

import (
	"errors"
	"testing"

	"aggify/internal/sqltypes"
	"aggify/internal/storage"
	"aggify/internal/testutil"
)

func TestColumnNullBitmap(t *testing.T) {
	var c Column
	// Cross the 64-bit word boundary so multi-word bitmaps are exercised.
	for i := 0; i < 200; i++ {
		if i%3 == 0 {
			c.Append(sqltypes.Null)
		} else {
			c.Append(sqltypes.NewInt(int64(i)))
		}
	}
	if !c.HasNulls() {
		t.Fatal("HasNulls = false")
	}
	want := 0
	for i := 0; i < 200; i++ {
		isNull := i%3 == 0
		if isNull {
			want++
		}
		if c.Null(i) != isNull {
			t.Fatalf("Null(%d) = %v, want %v", i, c.Null(i), isNull)
		}
	}
	if got := c.NullCount(); got != want {
		t.Fatalf("NullCount = %d, want %d", got, want)
	}

	var noNulls Column
	noNulls.Append(sqltypes.NewInt(1))
	if noNulls.HasNulls() || noNulls.Null(0) || noNulls.NullCount() != 0 {
		t.Fatal("phantom nulls in all-non-null column")
	}
}

func TestBatchResetClearsBitmap(t *testing.T) {
	b := NewBatch(1)
	b.AppendRow(Row{sqltypes.Null})
	b.Reset(1)
	b.AppendRow(Row{sqltypes.NewInt(7)})
	if b.Cols[0].HasNulls() || b.Cols[0].Null(0) {
		t.Fatal("null bitmap survived Reset")
	}
}

// mkAggs builds count(*)+count(v)+sum(v)+avg(v)+min(v)+max(v) instances over
// column ord, with ArgOrds resolved so the batch fold vectorizes.
func mkAggs(ord int) []AggInstance {
	specs := BuiltinAggs()
	col := ColScalar(ord)
	return []AggInstance{
		{Spec: specs["count"], Star: true},
		{Spec: specs["count"], Args: []Scalar{col}, ArgOrds: []int{ord}},
		{Spec: specs["sum"], Args: []Scalar{col}, ArgOrds: []int{ord}},
		{Spec: specs["avg"], Args: []Scalar{col}, ArgOrds: []int{ord}},
		{Spec: specs["min"], Args: []Scalar{col}, ArgOrds: []int{ord}},
		{Spec: specs["max"], Args: []Scalar{col}, ArgOrds: []int{ord}},
	}
}

// aggTable builds a two-column table: k = i%7, v = NULL every 5th row else i.
func aggTable(t *testing.T, rows int64, allNull bool) *storage.Table {
	t.Helper()
	tab := storage.NewTable("t", storage.NewSchema(
		storage.Col("k", sqltypes.Int), storage.Col("v", sqltypes.Int)))
	for i := int64(0); i < rows; i++ {
		v := sqltypes.NewInt(i)
		if allNull || i%5 == 0 {
			v = sqltypes.Null
		}
		if err := tab.Insert(nil, []sqltypes.Value{sqltypes.NewInt(i % 7), v}); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// TestHashAggBatchMatchesRow drives the same grouped aggregation through the
// vectorized fold and the row path and requires byte-identical output —
// including group order and NULL handling, across row counts that are exact
// batch multiples, off-by-one, and empty.
func TestHashAggBatchMatchesRow(t *testing.T) {
	for _, rows := range []int64{0, 1, DefaultBatchSize, DefaultBatchSize + 1, 2 * DefaultBatchSize, 3000} {
		tab := aggTable(t, rows, false)
		run := func(noBatch bool) []Row {
			op := &HashAggOp{
				Child:     &ScanOp{Table: tab},
				GroupKeys: []Scalar{ColScalar(0)},
				GroupOrds: []int{0},
				Aggs:      mkAggs(1),
				NoBatch:   noBatch,
			}
			out, err := Drain(&Ctx{Stats: &storage.Stats{}}, op)
			if err != nil {
				t.Fatalf("rows=%d noBatch=%v: %v", rows, noBatch, err)
			}
			return out
		}
		batch, row := run(false), run(true)
		if len(batch) != len(row) {
			t.Fatalf("rows=%d: %d batch groups vs %d row groups", rows, len(batch), len(row))
		}
		for i := range batch {
			if !sqltypes.RowsGroupEqual(batch[i], row[i]) {
				t.Fatalf("rows=%d group %d: batch %v != row %v", rows, i, batch[i], row[i])
			}
		}
	}
}

// TestHashAggBatchAllNulls pins bitmap correctness where it matters most: an
// aggregated column that is entirely NULL (count skips all, sum/min/max/avg
// return NULL) on both paths.
func TestHashAggBatchAllNulls(t *testing.T) {
	tab := aggTable(t, 2000, true)
	for _, noBatch := range []bool{false, true} {
		op := &HashAggOp{Child: &ScanOp{Table: tab}, Aggs: mkAggs(1), NoBatch: noBatch}
		out, err := Drain(&Ctx{Stats: &storage.Stats{}}, op)
		if err != nil || len(out) != 1 {
			t.Fatalf("noBatch=%v: %v %d", noBatch, err, len(out))
		}
		r := out[0]
		if r[0].Int() != 2000 { // count(*)
			t.Fatalf("noBatch=%v: count(*) = %v", noBatch, r[0])
		}
		if r[1].Int() != 0 { // count(v) skips NULLs
			t.Fatalf("noBatch=%v: count(v) = %v", noBatch, r[1])
		}
		for i := 2; i < 6; i++ { // sum/avg/min/max over all-NULL
			if !r[i].IsNull() {
				t.Fatalf("noBatch=%v: agg %d = %v, want NULL", noBatch, i, r[i])
			}
		}
	}
}

// TestAdaptBatch checks the row→batch adapter on empty input and on a row
// count that is an exact multiple of the batch size (the boundary where an
// off-by-one would emit a phantom empty batch or drop the last one).
func TestAdaptBatch(t *testing.T) {
	ad := &AdaptBatch{Child: bufferOf()}
	if err := ad.Open(&Ctx{}); err != nil {
		t.Fatal(err)
	}
	if b, err := ad.NextBatch(&Ctx{}); err != nil || b != nil {
		t.Fatalf("empty input: batch=%v err=%v", b, err)
	}
	ad.Close()

	ad = &AdaptBatch{Child: &BufferScanOp{Rows: seqRows(0, 2*DefaultBatchSize)}}
	if err := ad.Open(&Ctx{}); err != nil {
		t.Fatal(err)
	}
	var sizes []int
	total := int64(0)
	for {
		b, err := ad.NextBatch(&Ctx{})
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		sizes = append(sizes, b.Len())
		for i := 0; i < b.Len(); i++ {
			if b.Cols[0].Vals[i].Int() != total {
				t.Fatalf("row %d out of order: %v", total, b.Cols[0].Vals[i])
			}
			total++
		}
	}
	ad.Close()
	if total != 2*DefaultBatchSize || len(sizes) != 2 || sizes[0] != DefaultBatchSize || sizes[1] != DefaultBatchSize {
		t.Fatalf("total=%d sizes=%v", total, sizes)
	}
}

// TestScanStreamsEarlyStop is the satellite regression test: pulling one row
// (TOP 1) off a large table must not materialize — or charge reads for —
// more than one cursor refill.
func TestScanStreamsEarlyStop(t *testing.T) {
	tab := aggTable(t, 10_000, false)
	stats := &storage.Stats{}
	ctx := &Ctx{Stats: stats}
	scan := &ScanOp{Table: tab}
	top := &TopOp{Child: scan, N: ConstScalar(sqltypes.NewInt(1))}
	rows, err := Drain(ctx, top)
	if err != nil || len(rows) != 1 {
		t.Fatalf("top 1: %v %d", err, len(rows))
	}
	if reads := stats.Snapshot().LogicalReads; reads > DefaultBatchSize {
		t.Fatalf("TOP 1 over 10k rows charged %d logical reads, want <= %d", reads, DefaultBatchSize)
	}
}

func TestScanBufferedRowsBounded(t *testing.T) {
	tab := aggTable(t, 10_000, false)
	scan := &ScanOp{Table: tab}
	ctx := &Ctx{Stats: &storage.Stats{}}
	if err := scan.Open(ctx); err != nil {
		t.Fatal(err)
	}
	defer scan.Close()
	if _, err := scan.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if n := scan.BufferedRows(); n > DefaultBatchSize {
		t.Fatalf("scan buffered %d rows after one Next, want <= %d", n, DefaultBatchSize)
	}
}

// interruptingBatchOp yields batches forever and closes the interrupt
// channel right before handing out batch #1 — so only a consumer that
// checks Interrupted at every batch boundary stops.
type interruptingBatchOp struct {
	interrupt chan struct{}
	batch     *Batch
	served    int
}

func (o *interruptingBatchOp) Open(*Ctx) error { o.served = 0; return nil }
func (o *interruptingBatchOp) Next(*Ctx) (Row, error) {
	return nil, errors.New("row path must not be used")
}
func (o *interruptingBatchOp) NextBatch(*Ctx) (*Batch, error) {
	if o.batch == nil {
		o.batch = NewBatch(1)
		for i := 0; i < DefaultBatchSize; i++ {
			o.batch.AppendRow(Row{sqltypes.NewInt(int64(i))})
		}
	}
	o.served++
	if o.served == 1 {
		close(o.interrupt)
	}
	return o.batch, nil
}
func (o *interruptingBatchOp) BatchCapable() bool { return true }
func (o *interruptingBatchOp) Close()             {}

// TestBatchFoldInterrupt pins the satellite-3 contract: the vectorized fold
// bypasses Next's per-row interrupt stride, so it must check cancellation at
// every batch boundary itself.
func TestBatchFoldInterrupt(t *testing.T) {
	interrupt := make(chan struct{})
	op := &HashAggOp{
		Child: &interruptingBatchOp{interrupt: interrupt},
		Aggs:  []AggInstance{{Spec: BuiltinAggs()["count"], Star: true}},
	}
	_, err := Drain(&Ctx{Interrupt: interrupt, Stats: &storage.Stats{}}, op)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

// TestParallelAggBatchWorkers runs the partitioned (batch-fold-per-worker)
// parallel aggregation against the serial row path and requires
// byte-identical groups — partitions stream through SplitCursors, so this
// also covers the ScanSplit rewrite.
func TestParallelAggBatchWorkers(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	tab := aggTable(t, 9_000, false)
	split := &ScanSplit{Table: tab, NParts: 4}
	parts := make([]Operator, 4)
	for i := range parts {
		parts[i] = &ParallelScanOp{Split: split, Part: i}
	}
	par := &ParallelAggOp{
		Parts:     parts,
		GroupKeys: []Scalar{ColScalar(0)},
		GroupOrds: []int{0},
		Aggs:      mkAggs(1),
		Workers:   4,
	}
	serial := &HashAggOp{
		Child:     &ScanOp{Table: tab},
		GroupKeys: []Scalar{ColScalar(0)},
		Aggs:      mkAggs(1),
		NoBatch:   true,
	}
	got, err := Drain(&Ctx{Stats: &storage.Stats{}}, par)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Drain(&Ctx{Stats: &storage.Stats{}}, serial)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d parallel groups vs %d serial", len(got), len(want))
	}
	for i := range got {
		if !sqltypes.RowsGroupEqual(got[i], want[i]) {
			t.Fatalf("group %d: parallel %v != serial %v", i, got[i], want[i])
		}
	}
}

// TestExchangeBatchTransport pulls whole batches through an ordered exchange
// over streaming scan partitions and checks serial order is reproduced.
func TestExchangeBatchTransport(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	tab := storage.NewTable("t", storage.NewSchema(storage.Col("n", sqltypes.Int)))
	const n = 5000
	for i := int64(0); i < n; i++ {
		_ = tab.Insert(nil, intRow(i))
	}
	split := &ScanSplit{Table: tab, NParts: 3}
	ex := &ExchangeOp{
		Parts: []Operator{
			&ParallelScanOp{Split: split, Part: 0},
			&ParallelScanOp{Split: split, Part: 1},
			&ParallelScanOp{Split: split, Part: 2},
		},
		Ordered: true,
	}
	ctx := &Ctx{Stats: &storage.Stats{}}
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if !CanBatch(ex) {
		t.Fatal("exchange should be batch-capable")
	}
	var next int64
	for {
		b, err := ex.NextBatch(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Len(); i++ {
			if got := b.Cols[0].Vals[i].Int(); got != next {
				t.Fatalf("row %d: got %d (order not serial)", next, got)
			}
			next++
		}
	}
	if next != n {
		t.Fatalf("drained %d rows, want %d", next, n)
	}
}

// TestExchangeEarlyCloseMidBatch closes the consumer after a handful of rows
// — mid-batch, with workers still producing — and requires zero leaked
// goroutines (the early-Rows.Close path on the batched transport).
func TestExchangeEarlyCloseMidBatch(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ex := &ExchangeOp{
		Parts: []Operator{
			&BufferScanOp{Rows: seqRows(0, 100_000)},
			&BufferScanOp{Rows: seqRows(100_000, 200_000)},
		},
		Ordered: true,
		Buffer:  1,
	}
	ctx := &Ctx{Stats: &storage.Stats{}}
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ex.Next(ctx); err != nil {
			t.Fatal(err)
		}
	}
	ex.Close()
}

// TestBatchOfMixedTree checks batchOf: a native producer passes through
// unwrapped; a row-only operator is adapted, and both deliver the same rows.
func TestBatchOfMixedTree(t *testing.T) {
	tab := aggTable(t, 100, false)
	scan := &ScanOp{Table: tab}
	if bo := batchOf(scan); bo != Operator(scan) {
		t.Fatal("native producer should pass through batchOf unwrapped")
	}
	rows := seqRows(0, 100)
	adapted := batchOf(&BufferScanOp{Rows: rows})
	if _, isAdapter := adapted.(*AdaptBatch); !isAdapter {
		t.Fatal("row-only operator should be wrapped in AdaptBatch")
	}
	ctx := &Ctx{}
	if err := adapted.Open(ctx); err != nil {
		t.Fatal(err)
	}
	defer adapted.Close()
	var got int64
	for {
		b, err := adapted.NextBatch(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for _, r := range b.Rows() {
			if r[0].Int() != got {
				t.Fatalf("row %d: %v", got, r)
			}
			got++
		}
	}
	if got != 100 {
		t.Fatalf("drained %d rows, want 100", got)
	}
}
