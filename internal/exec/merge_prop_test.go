package exec

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"aggify/internal/sqltypes"
)

// mergeTrial accumulates vals serially and via K random contiguous
// partitions folded with Merge, returning both outcomes.
type mergeOutcome struct {
	val sqltypes.Value
	err error
}

func runMergeTrial(spec *AggSpec, vals []sqltypes.Value, cuts []int) (serial, merged mergeOutcome) {
	ctx := &Ctx{}
	accumulate := func(vs []sqltypes.Value) (Aggregator, error) {
		a := spec.New()
		a.Reset()
		for _, v := range vs {
			if err := a.Step(ctx, []sqltypes.Value{v}); err != nil {
				return nil, err
			}
		}
		return a, nil
	}
	if a, err := accumulate(vals); err != nil {
		serial.err = err
	} else {
		serial.val, serial.err = a.Result(ctx)
	}
	master, err := accumulate(vals[cuts[0]:cuts[1]])
	for p := 1; err == nil && p+1 < len(cuts); p++ {
		var part Aggregator
		if part, err = accumulate(vals[cuts[p]:cuts[p+1]]); err == nil {
			err = master.Merge(part)
		}
	}
	if err != nil {
		merged.err = err
	} else {
		merged.val, merged.err = master.Result(ctx)
	}
	return serial, merged
}

// approxEqual compares results exactly, except floats (AVG, float SUM) which
// get a relative tolerance: partitioned float addition associates
// differently, and that is accepted float behaviour, not a Merge bug.
func approxEqual(a, b sqltypes.Value) bool {
	if a.Kind() == sqltypes.KindFloat && b.Kind() == sqltypes.KindFloat {
		x, y := a.Float(), b.Float()
		if x == y {
			return true
		}
		d := math.Abs(x - y)
		return d <= 1e-9*math.Max(math.Abs(x), math.Abs(y))
	}
	return sqltypes.GroupEqual(a, b)
}

// randomCuts returns k+1 sorted partition boundaries over [0, n], allowing
// empty partitions.
func randomCuts(rng *rand.Rand, n, k int) []int {
	cuts := make([]int, k+1)
	cuts[k] = n
	for i := 1; i < k; i++ {
		cuts[i] = rng.Intn(n + 1)
	}
	sort.Ints(cuts)
	return cuts
}

func mergeableBuiltins(t *testing.T) []*AggSpec {
	t.Helper()
	specs := BuiltinAggs()
	names := make([]string, 0, len(specs))
	for name, spec := range specs {
		if spec.Mergeable {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) < 5 {
		t.Fatalf("expected at least 5 mergeable builtins, got %v", names)
	}
	out := make([]*AggSpec, len(names))
	for i, name := range names {
		out[i] = specs[name]
	}
	return out
}

// Property: for every Mergeable builtin, splitting an input into K partitions,
// accumulating each into its own Aggregator, and folding the partials with
// Merge (in partition order) yields exactly the serial result — the §3.1
// contract parallel aggregation relies on. Inputs mix NULLs, negatives, and
// (second loop) int64-overflow duals.
func TestMergePropertyBuiltins(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	specs := mergeableBuiltins(t)

	// Mixed-sign values small enough that SUM can never overflow: serial and
	// merged must agree exactly (floats within tolerance).
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(64) // include the empty input
		vals := make([]sqltypes.Value, n)
		for i := range vals {
			if rng.Intn(10) == 0 {
				vals[i] = sqltypes.Null
			} else {
				vals[i] = sqltypes.NewInt(rng.Int63n(2001) - 1000)
			}
		}
		cuts := randomCuts(rng, n, 1+rng.Intn(6))
		for _, spec := range specs {
			serial, merged := runMergeTrial(spec, vals, cuts)
			if serial.err != nil || merged.err != nil {
				t.Fatalf("trial %d %s: unexpected error (serial %v, merged %v)",
					trial, spec.Name, serial.err, merged.err)
			}
			if !approxEqual(serial.val, merged.val) {
				t.Fatalf("trial %d %s: serial %v != merged %v (n=%d cuts=%v)",
					trial, spec.Name, serial.val, merged.val, n, cuts)
			}
		}
	}

	// Overflow duals: non-negative values with occasional near-MaxInt64
	// spikes. Partial sums are monotone, so SUM overflows in the serial run
	// exactly when the merged run overflows (at a Step or at a Merge) — the
	// two paths must agree on error-vs-value, and on the value when both
	// succeed.
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(32)
		vals := make([]sqltypes.Value, n)
		for i := range vals {
			switch rng.Intn(10) {
			case 0:
				vals[i] = sqltypes.Null
			case 1, 2:
				vals[i] = sqltypes.NewInt(math.MaxInt64 - rng.Int63n(3))
			default:
				vals[i] = sqltypes.NewInt(rng.Int63n(1000))
			}
		}
		cuts := randomCuts(rng, n, 1+rng.Intn(6))
		for _, spec := range specs {
			serial, merged := runMergeTrial(spec, vals, cuts)
			if (serial.err != nil) != (merged.err != nil) {
				t.Fatalf("trial %d %s: overflow detection diverged: serial err %v, merged err %v (cuts=%v)",
					trial, spec.Name, serial.err, merged.err, cuts)
			}
			if serial.err == nil && !approxEqual(serial.val, merged.val) {
				t.Fatalf("trial %d %s: serial %v != merged %v (cuts=%v)",
					trial, spec.Name, serial.val, merged.val, cuts)
			}
		}
	}
}
