package exec

import (
	"sync/atomic"
	"time"

	"aggify/internal/storage"
)

// OpStats accumulates runtime counters for one instrumented operator. All
// measurements are inclusive of the operator's subtree: the renderer
// subtracts child stats to attribute exclusive costs.
//
// All counters are atomic: a parallel plan instantiates the subtree below an
// exchange once per worker, and every instance shares the OpStats keyed by
// the (single) explain node, so workers update the same counters
// concurrently. Loops then counts the per-worker Opens and Time sums worker
// wall clock — it may exceed the query's elapsed time, like CPU time does.
type OpStats struct {
	loops        atomic.Int64
	nextCalls    atomic.Int64
	rows         atomic.Int64
	timeNanos    atomic.Int64
	peakBuffered atomic.Int64

	logicalReads    atomic.Int64
	worktableWrites atomic.Int64
	worktableReads  atomic.Int64
	worktableBytes  atomic.Int64
	rowsEmitted     atomic.Int64
	indexSeeks      atomic.Int64
}

// Loops reports Open calls (an operator on the inner side of a nested-loop
// join re-opens once per outer row; a parallel subtree opens once per worker).
func (s *OpStats) Loops() int64 { return s.loops.Load() }

// NextCalls reports Next invocations, including the final EOF call.
func (s *OpStats) NextCalls() int64 { return s.nextCalls.Load() }

// Rows reports rows emitted.
func (s *OpStats) Rows() int64 { return s.rows.Load() }

// Time reports wall time spent inside Open+Next+Close of the subtree,
// summed across parallel workers.
func (s *OpStats) Time() time.Duration { return time.Duration(s.timeNanos.Load()) }

// PeakBuffered reports the largest BufferedRows observation for blocking
// operators (sorts, hash builds, aggregation tables, CTE spools).
func (s *OpStats) PeakBuffered() int64 { return s.peakBuffered.Load() }

// Reads reports the storage counter delta accrued while inside the subtree.
func (s *OpStats) Reads() storage.Snapshot {
	return storage.Snapshot{
		LogicalReads:    s.logicalReads.Load(),
		WorktableWrites: s.worktableWrites.Load(),
		WorktableReads:  s.worktableReads.Load(),
		WorktableBytes:  s.worktableBytes.Load(),
		RowsEmitted:     s.rowsEmitted.Load(),
		IndexSeeks:      s.indexSeeks.Load(),
	}
}

func (s *OpStats) addReads(d storage.Snapshot) {
	s.logicalReads.Add(d.LogicalReads)
	s.worktableWrites.Add(d.WorktableWrites)
	s.worktableReads.Add(d.WorktableReads)
	s.worktableBytes.Add(d.WorktableBytes)
	s.rowsEmitted.Add(d.RowsEmitted)
	s.indexSeeks.Add(d.IndexSeeks)
}

func (s *OpStats) observeBuffered(n int64) {
	for {
		cur := s.peakBuffered.Load()
		if n <= cur || s.peakBuffered.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Buffered is implemented by blocking operators that materialize rows
// (SortOp, HashJoinOp's build side, HashAggOp, ParallelAggOp,
// RecursiveCTEOp). BufferedRows must be O(1): it is probed after every
// Open/Next call of an instrumented execution.
type Buffered interface {
	BufferedRows() int
}

// InstrumentedOp wraps an operator and records runtime statistics into
// Stats. Stats lives outside the operator so that cached plans (whose
// explain nodes are shared across executions) stay reentrant: each
// execution carries its own OpStats map.
type InstrumentedOp struct {
	Child Operator
	Stats *OpStats
}

// Open implements Operator.
func (o *InstrumentedOp) Open(ctx *Ctx) error {
	o.Stats.loops.Add(1)
	start := time.Now()
	before := snapshotOf(ctx)
	err := o.Child.Open(ctx)
	o.Stats.addReads(snapshotOf(ctx).Sub(before))
	o.Stats.timeNanos.Add(int64(time.Since(start)))
	o.probe()
	return err
}

// Next implements Operator.
func (o *InstrumentedOp) Next(ctx *Ctx) (Row, error) {
	o.Stats.nextCalls.Add(1)
	start := time.Now()
	before := snapshotOf(ctx)
	r, err := o.Child.Next(ctx)
	o.Stats.addReads(snapshotOf(ctx).Sub(before))
	o.Stats.timeNanos.Add(int64(time.Since(start)))
	if r != nil {
		o.Stats.rows.Add(1)
	}
	o.probe()
	return r, err
}

// NextBatch implements BatchOperator: the whole batch counts as one call
// and Len rows, so per-op read/time attribution works identically on the
// vectorized path.
func (o *InstrumentedOp) NextBatch(ctx *Ctx) (*Batch, error) {
	o.Stats.nextCalls.Add(1)
	start := time.Now()
	before := snapshotOf(ctx)
	b, err := o.Child.(BatchOperator).NextBatch(ctx)
	o.Stats.addReads(snapshotOf(ctx).Sub(before))
	o.Stats.timeNanos.Add(int64(time.Since(start)))
	if b != nil {
		o.Stats.rows.Add(int64(b.Len()))
	}
	o.probe()
	return b, err
}

// BatchCapable implements batchCapable: instrumentation is a pass-through
// transformer, so the wrapper is exactly as batch-capable as its child.
func (o *InstrumentedOp) BatchCapable() bool { return CanBatch(o.Child) }

// Close implements Operator.
func (o *InstrumentedOp) Close() {
	start := time.Now()
	o.Child.Close()
	o.Stats.timeNanos.Add(int64(time.Since(start)))
}

// probe samples the child's buffer size if it is a blocking operator.
func (o *InstrumentedOp) probe() {
	if b, ok := o.Child.(Buffered); ok {
		o.Stats.observeBuffered(int64(b.BufferedRows()))
	}
}

func snapshotOf(ctx *Ctx) storage.Snapshot {
	if ctx == nil || ctx.Stats == nil {
		return storage.Snapshot{}
	}
	return ctx.Stats.Snapshot()
}
