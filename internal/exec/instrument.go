package exec

import (
	"time"

	"aggify/internal/storage"
)

// OpStats accumulates runtime counters for one instrumented operator. All
// measurements are inclusive of the operator's subtree: the renderer
// subtracts child stats to attribute exclusive costs.
type OpStats struct {
	// Loops counts Open calls (an operator on the inner side of a
	// nested-loop join re-opens once per outer row).
	Loops int64
	// NextCalls counts Next invocations, including the final EOF call.
	NextCalls int64
	// Rows counts rows emitted.
	Rows int64
	// Time is wall time spent inside Open+Next+Close of the subtree.
	Time time.Duration
	// Reads is the storage counter delta accrued while inside the subtree.
	Reads storage.Snapshot
	// PeakBuffered is the largest BufferedRows observation for blocking
	// operators (sorts, hash builds, aggregation tables, CTE spools).
	PeakBuffered int64
}

// Buffered is implemented by blocking operators that materialize rows
// (SortOp, HashJoinOp's build side, HashAggOp, ParallelAggOp,
// RecursiveCTEOp). BufferedRows must be O(1): it is probed after every
// Open/Next call of an instrumented execution.
type Buffered interface {
	BufferedRows() int
}

// InstrumentedOp wraps an operator and records runtime statistics into
// Stats. Stats lives outside the operator so that cached plans (whose
// explain nodes are shared across executions) stay reentrant: each
// execution carries its own OpStats map.
type InstrumentedOp struct {
	Child Operator
	Stats *OpStats
}

// Open implements Operator.
func (o *InstrumentedOp) Open(ctx *Ctx) error {
	o.Stats.Loops++
	start := time.Now()
	before := snapshotOf(ctx)
	err := o.Child.Open(ctx)
	o.Stats.Reads = o.Stats.Reads.Add(snapshotOf(ctx).Sub(before))
	o.Stats.Time += time.Since(start)
	o.probe()
	return err
}

// Next implements Operator.
func (o *InstrumentedOp) Next(ctx *Ctx) (Row, error) {
	o.Stats.NextCalls++
	start := time.Now()
	before := snapshotOf(ctx)
	r, err := o.Child.Next(ctx)
	o.Stats.Reads = o.Stats.Reads.Add(snapshotOf(ctx).Sub(before))
	o.Stats.Time += time.Since(start)
	if r != nil {
		o.Stats.Rows++
	}
	o.probe()
	return r, err
}

// Close implements Operator.
func (o *InstrumentedOp) Close() {
	start := time.Now()
	o.Child.Close()
	o.Stats.Time += time.Since(start)
}

// probe samples the child's buffer size if it is a blocking operator.
func (o *InstrumentedOp) probe() {
	if b, ok := o.Child.(Buffered); ok {
		if n := int64(b.BufferedRows()); n > o.Stats.PeakBuffered {
			o.Stats.PeakBuffered = n
		}
	}
}

func snapshotOf(ctx *Ctx) storage.Snapshot {
	if ctx == nil || ctx.Stats == nil {
		return storage.Snapshot{}
	}
	return ctx.Stats.Snapshot()
}
