package exec

import (
	"testing"

	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

func intRow(vals ...int64) Row {
	r := make(Row, len(vals))
	for i, v := range vals {
		r[i] = sqltypes.NewInt(v)
	}
	return r
}

func bufferOf(rows ...Row) *BufferScanOp { return &BufferScanOp{Rows: rows} }

func drain(t *testing.T, op Operator) []Row {
	t.Helper()
	rows, err := Drain(&Ctx{}, op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestFilterProject(t *testing.T) {
	src := bufferOf(intRow(1, 10), intRow(2, 20), intRow(3, 30))
	pred := func(_ *Ctx, r Row) (sqltypes.Value, error) {
		return sqltypes.Apply(sqltypes.OpGt, r[0], sqltypes.NewInt(1))
	}
	proj := &ProjectOp{
		Child: &FilterOp{Child: src, Pred: pred},
		Exprs: []Scalar{ColScalar(1)},
	}
	rows := drain(t, proj)
	if len(rows) != 2 || rows[0][0].Int() != 20 || rows[1][0].Int() != 30 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestScanAndIndexSeek(t *testing.T) {
	tab := storage.NewTable("t", storage.NewSchema(
		storage.Col("k", sqltypes.Int), storage.Col("v", sqltypes.Int)))
	for i := int64(0); i < 20; i++ {
		_ = tab.Insert(nil, intRow(i%5, i))
	}
	_ = tab.CreateIndex("k")
	var stats storage.Stats
	ctx := &Ctx{Stats: &stats}
	rows, err := Drain(ctx, &ScanOp{Table: tab})
	if err != nil || len(rows) != 20 {
		t.Fatalf("scan: %v %d", err, len(rows))
	}
	seek := &IndexSeekOp{Table: tab, Column: "k", Key: ConstScalar(sqltypes.NewInt(2))}
	rows, err = Drain(ctx, seek)
	if err != nil || len(rows) != 4 {
		t.Fatalf("seek: %v %d", err, len(rows))
	}
	badSeek := &IndexSeekOp{Table: tab, Column: "v", Key: ConstScalar(sqltypes.NewInt(2))}
	if _, err := Drain(ctx, badSeek); err == nil {
		t.Fatal("seek without index should error")
	}
	nullSeek := &IndexSeekOp{Table: tab, Column: "k", Key: ConstScalar(sqltypes.Null)}
	rows, err = Drain(ctx, nullSeek)
	if err != nil || len(rows) != 0 {
		t.Fatalf("NULL seek should be empty: %v %d", err, len(rows))
	}
}

func TestNLJoinInnerAndOuter(t *testing.T) {
	left := bufferOf(intRow(1), intRow(2), intRow(3))
	right := bufferOf(intRow(1, 100), intRow(1, 101), intRow(3, 300))
	on := func(_ *Ctx, r Row) (sqltypes.Value, error) {
		return sqltypes.Apply(sqltypes.OpEq, r[0], r[1])
	}
	join := &NLJoinOp{Left: left, Right: right, LeftWidth: 1, RightWidth: 2, On: on}
	rows := drain(t, join)
	if len(rows) != 3 {
		t.Fatalf("inner rows = %v", rows)
	}
	left2 := bufferOf(intRow(1), intRow(2), intRow(3))
	right2 := bufferOf(intRow(1, 100), intRow(1, 101), intRow(3, 300))
	outer := &NLJoinOp{Left: left2, Right: right2, LeftWidth: 1, RightWidth: 2, On: on, LeftOuter: true}
	rows = drain(t, outer)
	if len(rows) != 4 {
		t.Fatalf("outer rows = %v", rows)
	}
	// Row for left=2 must be NULL-padded.
	var found bool
	for _, r := range rows {
		if r[0].Int() == 2 {
			found = true
			if !r[1].IsNull() || !r[2].IsNull() {
				t.Fatalf("outer miss not padded: %v", r)
			}
		}
	}
	if !found {
		t.Fatal("missing outer row")
	}
}

func TestNLJoinCorrelatedRight(t *testing.T) {
	// The right side reads the current left row through the outer stack —
	// this is the Apply pattern used for index nested-loop joins.
	tab := storage.NewTable("t", storage.NewSchema(
		storage.Col("k", sqltypes.Int), storage.Col("v", sqltypes.Int)))
	for i := int64(0); i < 10; i++ {
		_ = tab.Insert(nil, intRow(i, i*10))
	}
	_ = tab.CreateIndex("k")
	left := bufferOf(intRow(3), intRow(7))
	right := &IndexSeekOp{Table: tab, Column: "k", Key: OuterColScalar(1, 0)}
	join := &NLJoinOp{Left: left, Right: right, LeftWidth: 1, RightWidth: 2}
	ctx := &Ctx{Stats: &storage.Stats{}}
	rows, err := Drain(ctx, join)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][2].Int() != 30 || rows[1][2].Int() != 70 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestHashJoin(t *testing.T) {
	left := bufferOf(intRow(1, 0), intRow(2, 0), intRow(4, 0))
	right := bufferOf(intRow(10, 1), intRow(11, 1), intRow(12, 2), intRow(13, 3))
	join := &HashJoinOp{
		Left: left, Right: right,
		LeftWidth: 2, RightWidth: 2,
		LeftKeys:  []Scalar{ColScalar(0)},
		RightKeys: []Scalar{ColScalar(1)},
	}
	rows := drain(t, join)
	if len(rows) != 3 {
		t.Fatalf("inner join rows = %v", rows)
	}
	left = bufferOf(intRow(1, 0), intRow(2, 0), intRow(4, 0))
	right = bufferOf(intRow(10, 1), intRow(11, 1), intRow(12, 2), intRow(13, 3))
	outer := &HashJoinOp{
		Left: left, Right: right,
		LeftWidth: 2, RightWidth: 2,
		LeftKeys:  []Scalar{ColScalar(0)},
		RightKeys: []Scalar{ColScalar(1)},
		LeftOuter: true,
	}
	rows = drain(t, outer)
	if len(rows) != 4 {
		t.Fatalf("left join rows = %v", rows)
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	left := bufferOf(Row{sqltypes.Null}, intRow(1))
	right := bufferOf(Row{sqltypes.Null}, intRow(1))
	join := &HashJoinOp{
		Left: left, Right: right, LeftWidth: 1, RightWidth: 1,
		LeftKeys: []Scalar{ColScalar(0)}, RightKeys: []Scalar{ColScalar(0)},
	}
	rows := drain(t, join)
	if len(rows) != 1 || rows[0][0].Int() != 1 {
		t.Fatalf("NULL join rows = %v", rows)
	}
}

func TestSortTopDistinct(t *testing.T) {
	src := bufferOf(intRow(3), intRow(1), intRow(2), intRow(1))
	sorted := &SortOp{Child: src, Keys: []Scalar{ColScalar(0)}, Desc: []bool{false}}
	rows := drain(t, sorted)
	want := []int64{1, 1, 2, 3}
	for i, w := range want {
		if rows[i][0].Int() != w {
			t.Fatalf("sorted = %v", rows)
		}
	}
	src2 := bufferOf(intRow(3), intRow(1), intRow(2), intRow(1))
	desc := &SortOp{Child: src2, Keys: []Scalar{ColScalar(0)}, Desc: []bool{true}}
	rows = drain(t, desc)
	if rows[0][0].Int() != 3 {
		t.Fatalf("desc sort = %v", rows)
	}
	top := &TopOp{Child: bufferOf(intRow(1), intRow(2), intRow(3)), N: ConstScalar(sqltypes.NewInt(2))}
	if rows = drain(t, top); len(rows) != 2 {
		t.Fatalf("top = %v", rows)
	}
	dist := &DistinctOp{Child: bufferOf(intRow(1), intRow(2), intRow(1), Row{sqltypes.Null}, Row{sqltypes.Null})}
	if rows = drain(t, dist); len(rows) != 3 {
		t.Fatalf("distinct = %v", rows)
	}
}

func TestSortNullsFirst(t *testing.T) {
	src := bufferOf(intRow(1), Row{sqltypes.Null})
	sorted := &SortOp{Child: src, Keys: []Scalar{ColScalar(0)}, Desc: []bool{false}}
	rows := drain(t, sorted)
	if !rows[0][0].IsNull() {
		t.Fatalf("NULLs should sort first: %v", rows)
	}
}

func TestConcat(t *testing.T) {
	op := &ConcatOp{Children: []Operator{bufferOf(intRow(1)), bufferOf(), bufferOf(intRow(2), intRow(3))}}
	rows := drain(t, op)
	if len(rows) != 3 || rows[2][0].Int() != 3 {
		t.Fatalf("concat = %v", rows)
	}
}

func builtinAgg(t *testing.T, name string) *AggSpec {
	t.Helper()
	spec := BuiltinAggs()[name]
	if spec == nil {
		t.Fatalf("no builtin %q", name)
	}
	return spec
}

func TestBuiltinAggregates(t *testing.T) {
	input := bufferOf(intRow(1, 5), intRow(1, 7), intRow(2, 9), Row{sqltypes.NewInt(2), sqltypes.Null})
	op := &HashAggOp{
		Child:     input,
		GroupKeys: []Scalar{ColScalar(0)},
		Aggs: []AggInstance{
			{Spec: builtinAgg(t, "count"), Star: true},
			{Spec: builtinAgg(t, "count"), Args: []Scalar{ColScalar(1)}},
			{Spec: builtinAgg(t, "sum"), Args: []Scalar{ColScalar(1)}},
			{Spec: builtinAgg(t, "avg"), Args: []Scalar{ColScalar(1)}},
			{Spec: builtinAgg(t, "min"), Args: []Scalar{ColScalar(1)}},
			{Spec: builtinAgg(t, "max"), Args: []Scalar{ColScalar(1)}},
		},
	}
	rows := drain(t, op)
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
	g1 := rows[0]
	if g1[1].Int() != 2 || g1[2].Int() != 2 || g1[3].Int() != 12 || g1[4].Float() != 6 || g1[5].Int() != 5 || g1[6].Int() != 7 {
		t.Fatalf("group1 = %v", g1)
	}
	g2 := rows[1]
	if g2[1].Int() != 2 || g2[2].Int() != 1 || g2[3].Int() != 9 {
		t.Fatalf("group2 = %v (COUNT(x) must skip NULL)", g2)
	}
}

func TestScalarAggOverEmptyInput(t *testing.T) {
	op := &HashAggOp{
		Child: bufferOf(),
		Aggs: []AggInstance{
			{Spec: builtinAgg(t, "count"), Star: true},
			{Spec: builtinAgg(t, "sum"), Args: []Scalar{ColScalar(0)}},
		},
	}
	rows := drain(t, op)
	if len(rows) != 1 {
		t.Fatal("scalar aggregate must emit one row for empty input")
	}
	if rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Fatalf("empty agg = %v; want COUNT=0, SUM=NULL", rows[0])
	}
	// GROUP BY over empty input emits no rows.
	op2 := &HashAggOp{
		Child:     bufferOf(),
		GroupKeys: []Scalar{ColScalar(0)},
		Aggs:      []AggInstance{{Spec: builtinAgg(t, "count"), Star: true}},
	}
	if rows := drain(t, op2); len(rows) != 0 {
		t.Fatalf("grouped empty agg = %v", rows)
	}
}

func TestStreamAgg(t *testing.T) {
	// Input sorted by key; StreamAgg emits groups as keys change.
	input := bufferOf(intRow(1, 5), intRow(1, 7), intRow(2, 9))
	op := &StreamAggOp{
		Child:     input,
		GroupKeys: []Scalar{ColScalar(0)},
		Aggs:      []AggInstance{{Spec: builtinAgg(t, "sum"), Args: []Scalar{ColScalar(1)}}},
	}
	rows := drain(t, op)
	if len(rows) != 2 || rows[0][1].Int() != 12 || rows[1][1].Int() != 9 {
		t.Fatalf("stream agg = %v", rows)
	}
	// Scalar (no keys) over empty input: one row.
	op2 := &StreamAggOp{
		Child: bufferOf(),
		Aggs:  []AggInstance{{Spec: builtinAgg(t, "count"), Star: true}},
	}
	rows = drain(t, op2)
	if len(rows) != 1 || rows[0][0].Int() != 0 {
		t.Fatalf("stream scalar agg empty = %v", rows)
	}
}

func TestStreamAggObservesOrder(t *testing.T) {
	// An order-sensitive aggregate: concatenates its inputs.
	spec := &AggSpec{
		Name:           "cat",
		OrderSensitive: true,
		New: func() Aggregator {
			var s string
			return &FuncAggregator{
				InitFn: func() { s = "" },
				StepFn: func(_ *Ctx, args []sqltypes.Value) error { s += args[0].Display(); return nil },
				FinalFn: func(*Ctx) (sqltypes.Value, error) {
					return sqltypes.NewString(s), nil
				},
			}
		},
	}
	input := bufferOf(intRow(3), intRow(1), intRow(2))
	op := &StreamAggOp{Child: input, Aggs: []AggInstance{{Spec: spec, Args: []Scalar{ColScalar(0)}}}}
	rows := drain(t, op)
	if rows[0][0].Str() != "312" {
		t.Fatalf("order-sensitive agg saw %q, want 312", rows[0][0].Str())
	}
	// Below a sort, it observes sorted order (Eq. 6's enforcement).
	sorted := &SortOp{Child: bufferOf(intRow(3), intRow(1), intRow(2)), Keys: []Scalar{ColScalar(0)}, Desc: []bool{false}}
	op2 := &StreamAggOp{Child: sorted, Aggs: []AggInstance{{Spec: spec, Args: []Scalar{ColScalar(0)}}}}
	rows = drain(t, op2)
	if rows[0][0].Str() != "123" {
		t.Fatalf("sorted agg saw %q, want 123", rows[0][0].Str())
	}
}

func TestParallelAggMatchesSerial(t *testing.T) {
	var rows []Row
	for i := int64(0); i < 1000; i++ {
		rows = append(rows, intRow(i%7, i))
	}
	mk := func() []AggInstance {
		return []AggInstance{
			{Spec: builtinAgg(t, "count"), Star: true},
			{Spec: builtinAgg(t, "sum"), Args: []Scalar{ColScalar(1)}},
			{Spec: builtinAgg(t, "min"), Args: []Scalar{ColScalar(1)}},
			{Spec: builtinAgg(t, "max"), Args: []Scalar{ColScalar(1)}},
			{Spec: builtinAgg(t, "avg"), Args: []Scalar{ColScalar(1)}},
		}
	}
	serial := &HashAggOp{Child: &BufferScanOp{Rows: rows}, GroupKeys: []Scalar{ColScalar(0)}, Aggs: mk()}
	parallel := &ParallelAggOp{Child: &BufferScanOp{Rows: rows}, GroupKeys: []Scalar{ColScalar(0)}, Aggs: mk(), Workers: 4}
	sr := drain(t, serial)
	pr := drain(t, parallel)
	if len(sr) != len(pr) {
		t.Fatalf("group counts differ: %d vs %d", len(sr), len(pr))
	}
	index := map[int64]Row{}
	for _, r := range pr {
		index[r[0].Int()] = r
	}
	for _, s := range sr {
		p := index[s[0].Int()]
		if p == nil {
			t.Fatalf("missing group %v", s[0])
		}
		for i := range s {
			if i == 5 { // avg: compare approximately
				if d := s[i].Float() - p[i].Float(); d > 1e-9 || d < -1e-9 {
					t.Fatalf("avg differs: %v vs %v", s, p)
				}
				continue
			}
			if !sqltypes.GroupEqual(s[i], p[i]) {
				t.Fatalf("group %v: serial %v vs parallel %v", s[0], s, p)
			}
		}
	}
}

func TestParallelAggEmptyScalar(t *testing.T) {
	op := &ParallelAggOp{
		Child:   bufferOf(),
		Aggs:    []AggInstance{{Spec: builtinAgg(t, "count"), Star: true}},
		Workers: 4,
	}
	rows := drain(t, op)
	if len(rows) != 1 || rows[0][0].Int() != 0 {
		t.Fatalf("parallel empty scalar agg = %v", rows)
	}
}

func TestRecursiveCTE(t *testing.T) {
	// WITH cte(i) AS (SELECT 0 UNION ALL SELECT i+1 FROM cte WHERE i < 4)
	var delta []Row
	seed := bufferOf(intRow(0))
	inc := func(_ *Ctx, r Row) (sqltypes.Value, error) {
		return sqltypes.Apply(sqltypes.OpAdd, r[0], sqltypes.NewInt(1))
	}
	cond := func(_ *Ctx, r Row) (sqltypes.Value, error) {
		return sqltypes.Apply(sqltypes.OpLt, r[0], sqltypes.NewInt(4))
	}
	recursive := &ProjectOp{
		Child: &FilterOp{Child: &DeltaScanOp{Source: &delta}, Pred: cond},
		Exprs: []Scalar{inc},
	}
	op := &RecursiveCTEOp{Seed: seed, Recursive: recursive, Delta: &delta}
	rows := drain(t, op)
	if len(rows) != 5 {
		t.Fatalf("cte rows = %v", rows)
	}
	for i, r := range rows {
		if r[0].Int() != int64(i) {
			t.Fatalf("cte rows = %v", rows)
		}
	}
}

func TestRecursiveCTEIterationCap(t *testing.T) {
	var delta []Row
	// Recursive branch never terminates: always emits one row.
	recursive := &ProjectOp{Child: &DeltaScanOp{Source: &delta}, Exprs: []Scalar{ColScalar(0)}}
	op := &RecursiveCTEOp{Seed: bufferOf(intRow(1)), Recursive: recursive, Delta: &delta, MaxIterations: 10}
	if _, err := Drain(&Ctx{}, op); err == nil {
		t.Fatal("runaway recursion must be capped")
	}
}

func TestMergeMismatch(t *testing.T) {
	c := &countAgg{}
	s := &sumAgg{}
	if err := c.Merge(s); err == nil {
		t.Fatal("mismatched merge must error")
	}
	f := &FuncAggregator{StepFn: func(*Ctx, []sqltypes.Value) error { return nil },
		FinalFn: func(*Ctx) (sqltypes.Value, error) { return sqltypes.Null, nil }}
	if err := f.Merge(c); err == nil {
		t.Fatal("FuncAggregator without MergeFn must reject Merge")
	}
}

func TestInterrupt(t *testing.T) {
	tab := storage.NewTable("t", storage.NewSchema(storage.Col("k", sqltypes.Int)))
	for i := int64(0); i < 5000; i++ {
		_ = tab.Insert(nil, intRow(i))
	}
	ch := make(chan struct{})
	close(ch)
	ctx := &Ctx{Interrupt: ch, Stats: &storage.Stats{}}
	_, err := Drain(ctx, &ScanOp{Table: tab})
	if err != ErrInterrupted {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

func TestValuesAndOneRow(t *testing.T) {
	vals := &ValuesOp{Rows: [][]Scalar{
		{ConstScalar(sqltypes.NewInt(1)), ConstScalar(sqltypes.NewString("a"))},
		{ConstScalar(sqltypes.NewInt(2)), ConstScalar(sqltypes.NewString("b"))},
	}}
	rows := drain(t, vals)
	if len(rows) != 2 || rows[1][1].Str() != "b" {
		t.Fatalf("values = %v", rows)
	}
	one := drain(t, &OneRowOp{})
	if len(one) != 1 || len(one[0]) != 0 {
		t.Fatalf("one-row = %v", one)
	}
}

func TestIsBuiltinAgg(t *testing.T) {
	if !IsBuiltinAgg("COUNT") || !IsBuiltinAgg("min") || IsBuiltinAgg("mycustom") {
		t.Fatal("IsBuiltinAgg broken")
	}
}
