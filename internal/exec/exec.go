// Package exec implements the engine's physical execution layer: pull-based
// (Volcano-style) operators, compiled scalar expressions, and the aggregate
// machinery — including the custom-aggregate contract (Init / Accumulate /
// Terminate / Merge) that Aggify's generated aggregates plug into.
package exec

import (
	"errors"
	"fmt"

	"aggify/internal/sqltypes"
	"aggify/internal/storage"
	"aggify/internal/txn"
)

// Row is a tuple of values.
type Row = []sqltypes.Value

// Ctx carries the runtime context of one query execution: procedural
// variable bindings, positional parameters, the outer-row stack for
// correlated subqueries, I/O statistics, and the scalar-function invoker.
type Ctx struct {
	// Vars resolves procedural variables (@x) read by the query. May be nil
	// when the query references none.
	Vars func(name string) (sqltypes.Value, bool)
	// Params holds positional '?' parameter values.
	Params []sqltypes.Value
	// OuterRows is the stack of rows from enclosing queries, innermost last.
	OuterRows []Row
	// Stats receives logical I/O accounting; may be nil.
	Stats *storage.Stats
	// Snap is the snapshot all base-table reads go through: the statement
	// or transaction's pinned commit epoch. Nil reads the latest committed
	// state. Worker contexts copy the Ctx by value, so parallel scan
	// partitions and exchange workers inherit the same frozen epoch.
	Snap *txn.Snapshot
	// CallFunc invokes a scalar function (built-in or UDF) by name.
	CallFunc func(name string, args []sqltypes.Value) (sqltypes.Value, error)
	// Temp resolves table variables and temp tables (@t, #t) at execution
	// time; plans over such tables are late-bound since each procedure
	// invocation gets fresh instances.
	Temp func(name string) (*storage.Table, bool)
	// Interrupt, when non-nil, is checked periodically; a closed channel
	// aborts execution with ErrInterrupted (used to cap the paper's
	// "forcibly terminated" original-program runs).
	Interrupt <-chan struct{}
	// Done, when non-nil, cancels this (sub)execution when closed. It is
	// the prompt-cancellation path for parallel plans: exchange operators
	// install their quit channel here for worker subtrees, so an early
	// consumer Close (TopOp hitting its limit, Rows.Close) unblocks
	// workers mid-scan instead of letting them run to completion.
	Done <-chan struct{}
	// Owner carries the engine session that built this context; interpreted
	// custom aggregates use it to run the queries inside their Accumulate
	// bodies. Typed as any to keep exec independent of the engine package.
	Owner any
	// VarSlots backs slot-compiled procedural blocks (compiled custom
	// aggregates): expressions compiled with a slot table read variables by
	// index here instead of through the Vars lookup.
	VarSlots []sqltypes.Value
}

// ErrInterrupted is returned when Ctx.Interrupt fires mid-execution.
var ErrInterrupted = errors.New("exec: interrupted")

// Interrupted reports whether the context has been cancelled, either by the
// session-level Interrupt or by the execution-local Done channel.
func (c *Ctx) Interrupted() bool {
	if c.Interrupt != nil {
		select {
		case <-c.Interrupt:
			return true
		default:
		}
	}
	if c.Done != nil {
		select {
		case <-c.Done:
			return true
		default:
		}
	}
	return false
}

// Scalar is a compiled expression: evaluated against the current row under
// a context. Scalars are stateless and safe to share between plan instances.
type Scalar func(ctx *Ctx, row Row) (sqltypes.Value, error)

// ConstScalar returns a Scalar yielding a fixed value.
func ConstScalar(v sqltypes.Value) Scalar {
	return func(*Ctx, Row) (sqltypes.Value, error) { return v, nil }
}

// ColScalar returns a Scalar reading ordinal i of the current row.
func ColScalar(i int) Scalar {
	return func(_ *Ctx, row Row) (sqltypes.Value, error) {
		if i >= len(row) {
			return sqltypes.Null, fmt.Errorf("exec: column ordinal %d out of range %d", i, len(row))
		}
		return row[i], nil
	}
}

// OuterColScalar returns a Scalar reading ordinal i of the outer row
// levelsUp scopes above the current query.
func OuterColScalar(levelsUp, i int) Scalar {
	return func(ctx *Ctx, _ Row) (sqltypes.Value, error) {
		n := len(ctx.OuterRows)
		if levelsUp > n {
			return sqltypes.Null, fmt.Errorf("exec: outer reference %d levels up but only %d outer rows", levelsUp, n)
		}
		outer := ctx.OuterRows[n-levelsUp]
		if i >= len(outer) {
			return sqltypes.Null, fmt.Errorf("exec: outer column ordinal %d out of range %d", i, len(outer))
		}
		return outer[i], nil
	}
}

// Operator is a pull-based physical operator. A fresh operator tree is
// instantiated per execution (plans are factories), so operators may keep
// per-execution state freely.
type Operator interface {
	// Open prepares the operator for iteration.
	Open(ctx *Ctx) error
	// Next returns the next row, or nil at end of stream.
	Next(ctx *Ctx) (Row, error)
	// Close releases resources. It must be safe to call after a failed Open.
	Close()
}

// Drain runs op to completion and returns all rows.
func Drain(ctx *Ctx, op Operator) ([]Row, error) {
	if err := op.Open(ctx); err != nil {
		op.Close()
		return nil, err
	}
	defer op.Close()
	var out []Row
	for {
		r, err := op.Next(ctx)
		if err != nil {
			return nil, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, r)
	}
}
