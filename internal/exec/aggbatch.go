package exec

import "aggify/internal/sqltypes"

// This file implements the vectorized aggregation fold shared by HashAggOp
// (serial) and ParallelAggOp (one fold per worker). Instead of evaluating
// key and argument scalars and dispatching Aggregator.Step once per row, the
// fold consumes whole batches: group keys are read straight out of the
// batch's columns when the planner resolved them to ordinals, rows are
// bucketed into per-group selection vectors (in input order, so
// order-within-group — and with it float summation order — matches the row
// path exactly), and each builtin aggregate folds a whole selection through
// one StepBatch call. The per-row interface and closure costs that made
// row-at-a-time aggregation cursor-slow are paid once per group per batch.

// BatchWorthwhile reports whether the vectorized fold would actually cut
// per-row costs for an aggregation: every group key must be ordinal-resolved
// (nKeys == 0 or groupOrds non-nil) and every aggregate must fold whole
// selections through StepBatch — COUNT(*) or a single ordinal-resolved
// argument on an aggregate implementing BatchStepper. Anything else (custom
// aggregates with procedural Accumulate bodies, expression arguments) would
// pack rows into columns only to unpack them again per row, which is
// strictly worse than the row path; those plans keep it. The planner calls
// this to label plans, the aggregation operators to pick the path, so
// EXPLAIN and execution always agree.
func BatchWorthwhile(nKeys int, groupOrds []int, aggs []AggInstance) bool {
	if nKeys > 0 && groupOrds == nil {
		return false
	}
	for i := range aggs {
		ai := &aggs[i]
		if ai.Star {
			continue
		}
		if len(ai.ArgOrds) != 1 {
			return false
		}
		if _, ok := ai.Spec.New().(BatchStepper); !ok {
			return false
		}
	}
	return true
}

// batchAggFold accumulates batches into a group table, preserving first-seen
// group order. The same pagGroup table/order representation as the row path
// is used so ParallelAggOp's Merge phase is path-agnostic.
type batchAggFold struct {
	groupKeys []Scalar
	groupOrds []int // when non-nil, input ordinal of every group key
	aggs      []AggInstance

	table map[uint64][]*pagGroup
	order []*pagGroup
	// scalar is the pre-created group of a scalar aggregate (no group keys).
	// HashAggOp pre-creates it so empty input still yields the Init+Terminate
	// row; ParallelAggOp workers must not (a partition with no rows
	// contributes no partial, exactly like the row path's aggregateStream).
	scalar *pagGroup

	keybuf  []sqltypes.Value
	rowbuf  Row
	bufs    [][]sqltypes.Value
	touched []*pagGroup
	allSel  []int
}

// newBatchAggFold builds a fold. preScalar pre-creates the scalar group for
// aggregations without group keys (HashAggOp semantics).
func newBatchAggFold(groupKeys []Scalar, groupOrds []int, aggs []AggInstance, preScalar bool) *batchAggFold {
	f := &batchAggFold{
		groupKeys: groupKeys,
		groupOrds: groupOrds,
		aggs:      aggs,
		table:     map[uint64][]*pagGroup{},
		keybuf:    make([]sqltypes.Value, len(groupKeys)),
		bufs:      argBuffers(aggs),
	}
	if len(groupKeys) == 0 && preScalar {
		f.scalar = f.newGroup(nil)
		f.order = append(f.order, f.scalar)
	}
	return f
}

func (f *batchAggFold) newGroup(keys []sqltypes.Value) *pagGroup {
	g := &pagGroup{keys: keys, aggs: make([]Aggregator, len(f.aggs))}
	for i, ai := range f.aggs {
		g.aggs[i] = ai.Spec.New()
		g.aggs[i].Reset()
	}
	return g
}

// run drains src through the fold, checking for cancellation at every batch
// boundary (batch consumers bypass Next and its per-row interrupt stride).
func (f *batchAggFold) run(ctx *Ctx, src BatchOperator) error {
	for {
		if ctx.Interrupted() {
			return ErrInterrupted
		}
		b, err := src.NextBatch(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if err := f.fold(ctx, b); err != nil {
			return err
		}
	}
}

// fold accumulates one batch.
func (f *batchAggFold) fold(ctx *Ctx, b *Batch) error {
	n := b.Len()
	if len(f.groupKeys) == 0 {
		g := f.scalar
		if g == nil {
			// Worker-side scalar aggregate: create the single group on the
			// first row, like the row path does.
			if len(f.order) == 0 {
				f.order = append(f.order, f.newGroup(nil))
				f.table[sqltypes.HashRow(nil)] = append(f.table[sqltypes.HashRow(nil)], f.order[0])
			}
			g = f.order[0]
		}
		for len(f.allSel) < n {
			f.allSel = append(f.allSel, len(f.allSel))
		}
		return f.stepGroup(ctx, g, b, f.allSel[:n])
	}
	for i := 0; i < n; i++ {
		if f.groupOrds != nil {
			for k, ord := range f.groupOrds {
				f.keybuf[k] = b.Cols[ord].Vals[i]
			}
		} else {
			f.rowbuf = b.Row(i, f.rowbuf)
			for k, key := range f.groupKeys {
				v, err := key(ctx, f.rowbuf)
				if err != nil {
					return err
				}
				f.keybuf[k] = v
			}
		}
		h := sqltypes.HashRow(f.keybuf)
		var g *pagGroup
		for _, cand := range f.table[h] {
			if sqltypes.RowsGroupEqual(cand.keys, f.keybuf) {
				g = cand
				break
			}
		}
		if g == nil {
			g = f.newGroup(append([]sqltypes.Value(nil), f.keybuf...))
			f.table[h] = append(f.table[h], g)
			f.order = append(f.order, g)
		}
		if len(g.sel) == 0 {
			f.touched = append(f.touched, g)
		}
		g.sel = append(g.sel, i)
	}
	for _, g := range f.touched {
		if err := f.stepGroup(ctx, g, b, g.sel); err != nil {
			return err
		}
		g.sel = g.sel[:0]
	}
	f.touched = f.touched[:0]
	return nil
}

// stepGroup folds the selected rows of b into one group's aggregates. sel is
// in ascending row order, so each aggregate observes its inputs in exactly
// the order the row path would feed them.
func (f *batchAggFold) stepGroup(ctx *Ctx, g *pagGroup, b *Batch, sel []int) error {
	for j := range f.aggs {
		inst := &f.aggs[j]
		agg := g.aggs[j]
		switch {
		case inst.Star:
			if bs, ok := agg.(BatchStepper); ok {
				if err := bs.StepBatch(nil, sel); err != nil {
					return err
				}
				continue
			}
			for range sel {
				if err := agg.Step(ctx, nil); err != nil {
					return err
				}
			}
		case inst.ArgOrds != nil:
			if len(inst.ArgOrds) == 1 {
				if bs, ok := agg.(BatchStepper); ok {
					if err := bs.StepBatch(&b.Cols[inst.ArgOrds[0]], sel); err != nil {
						return err
					}
					continue
				}
			}
			buf := f.bufs[j]
			for _, i := range sel {
				for k, ord := range inst.ArgOrds {
					buf[k] = b.Cols[ord].Vals[i]
				}
				if err := agg.Step(ctx, buf[:len(inst.ArgOrds)]); err != nil {
					return err
				}
			}
		default:
			for _, i := range sel {
				f.rowbuf = b.Row(i, f.rowbuf)
				if err := inst.step(ctx, agg, f.rowbuf, f.bufs[j]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
