package exec

import (
	"fmt"
	"sort"
	"strings"

	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// ----- Leaf operators -----

// ValuesOp emits a fixed list of rows, each produced by evaluating scalars
// (so VALUES may reference variables and parameters).
type ValuesOp struct {
	Rows [][]Scalar
	pos  int
}

// Open implements Operator.
func (o *ValuesOp) Open(*Ctx) error { o.pos = 0; return nil }

// Next implements Operator.
func (o *ValuesOp) Next(ctx *Ctx) (Row, error) {
	if o.pos >= len(o.Rows) {
		return nil, nil
	}
	scalars := o.Rows[o.pos]
	o.pos++
	row := make(Row, len(scalars))
	for i, s := range scalars {
		v, err := s(ctx, nil)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// Close implements Operator.
func (o *ValuesOp) Close() {}

// OneRowOp emits a single empty row; it feeds projections with no FROM
// clause (SELECT 1 + 2).
type OneRowOp struct {
	done bool
}

// Open implements Operator.
func (o *OneRowOp) Open(*Ctx) error { o.done = false; return nil }

// Next implements Operator.
func (o *OneRowOp) Next(*Ctx) (Row, error) {
	if o.done {
		return nil, nil
	}
	o.done = true
	return Row{}, nil
}

// Close implements Operator.
func (o *OneRowOp) Close() {}

// ScanOp scans a base table (or table variable / temp table). It streams
// from a storage cursor one batch at a time: the cursor freezes the slot
// slice at Open (so concurrent inserts during iteration — e.g. INSERT ...
// SELECT on the same table — do not loop forever) but rows are only walked,
// charged, and buffered as the consumer pulls, so a TOP or an early close
// over a large table never materializes the whole table.
type ScanOp struct {
	Table *storage.Table

	cur   *storage.Cursor
	buf   []Row
	pos   int
	eof   bool
	batch *Batch
}

// Open implements Operator.
func (o *ScanOp) Open(ctx *Ctx) error {
	o.cur = o.Table.NewCursor(ctx.Snap)
	o.buf = o.buf[:0]
	o.pos = 0
	o.eof = false
	return nil
}

// BufferedRows reports the rows currently buffered (at most one batch) —
// the regression guard for the old materialize-everything-at-Open behavior.
func (o *ScanOp) BufferedRows() int { return len(o.buf) }

// Next implements Operator.
func (o *ScanOp) Next(ctx *Ctx) (Row, error) {
	for o.pos >= len(o.buf) {
		if o.eof {
			return nil, nil
		}
		if ctx.Interrupted() {
			return nil, ErrInterrupted
		}
		o.buf = o.buf[:0]
		o.pos = 0
		if o.cur.Next(ctx.Stats, DefaultBatchSize, func(row []sqltypes.Value) {
			o.buf = append(o.buf, row)
		}) == 0 {
			o.eof = true
		}
	}
	r := o.buf[o.pos]
	o.pos++
	return r, nil
}

// NextBatch implements BatchOperator, filling a columnar batch straight
// from the storage cursor.
func (o *ScanOp) NextBatch(ctx *Ctx) (*Batch, error) {
	if o.eof {
		return nil, nil
	}
	if ctx.Interrupted() {
		return nil, ErrInterrupted
	}
	w := o.Table.Schema.Len()
	if o.batch == nil {
		o.batch = NewBatch(w)
	}
	b := o.batch
	b.Reset(w)
	o.cur.Next(ctx.Stats, DefaultBatchSize, func(row []sqltypes.Value) {
		b.AppendRow(row)
	})
	if b.Len() == 0 {
		o.eof = true
		return nil, nil
	}
	return b, nil
}

// BatchCapable implements the batch contract: scans produce batches natively.
func (o *ScanOp) BatchCapable() bool { return true }

// Close implements Operator.
func (o *ScanOp) Close() { o.cur = nil; o.buf = nil }

// IndexSeekOp returns the rows of Table whose Column equals the key scalar,
// which is evaluated at Open (it may reference variables or outer rows).
type IndexSeekOp struct {
	Table  *storage.Table
	Column string
	Key    Scalar

	rows  [][]sqltypes.Value
	pos   int
	batch *Batch
}

// Open implements Operator.
func (o *IndexSeekOp) Open(ctx *Ctx) error {
	o.rows = o.rows[:0]
	o.pos = 0
	key, err := o.Key(ctx, nil)
	if err != nil {
		return err
	}
	if key.IsNull() {
		return nil // equality with NULL matches nothing
	}
	if !o.Table.Seek(ctx.Snap, ctx.Stats, o.Column, key, func(_ int, row []sqltypes.Value) bool {
		o.rows = append(o.rows, row)
		return true
	}) {
		return fmt.Errorf("exec: no index on %s(%s)", o.Table.Name, o.Column)
	}
	return nil
}

// Next implements Operator.
func (o *IndexSeekOp) Next(*Ctx) (Row, error) {
	if o.pos >= len(o.rows) {
		return nil, nil
	}
	r := o.rows[o.pos]
	o.pos++
	return r, nil
}

// NextBatch implements BatchOperator over the matched rows (index matches
// are bounded by key selectivity, so they stay materialized at Open).
func (o *IndexSeekOp) NextBatch(ctx *Ctx) (*Batch, error) {
	if o.pos >= len(o.rows) {
		return nil, nil
	}
	if ctx.Interrupted() {
		return nil, ErrInterrupted
	}
	w := o.Table.Schema.Len()
	if o.batch == nil {
		o.batch = NewBatch(w)
	}
	b := o.batch
	b.Reset(w)
	for o.pos < len(o.rows) && b.Len() < DefaultBatchSize {
		b.AppendRow(o.rows[o.pos])
		o.pos++
	}
	return b, nil
}

// BatchCapable implements the batch contract.
func (o *IndexSeekOp) BatchCapable() bool { return true }

// Close implements Operator.
func (o *IndexSeekOp) Close() { o.rows = nil }

// RangeSeekOp streams the rows of Table whose Column falls in [Lo, Hi]
// through an ordered index. A nil bound scalar is unbounded on that side; a
// bound that evaluates to NULL matches nothing (SQL comparisons with NULL
// are never true). Like ScanOp it streams from a storage cursor one batch
// at a time, so the PR 7 batch path consumes range seeks exactly as it
// consumes scans.
type RangeSeekOp struct {
	Table    *storage.Table
	Column   string
	Lo, Hi   Scalar // nil = unbounded
	LoStrict bool
	HiStrict bool

	cur   *storage.RangeCursor
	empty bool
	buf   []Row
	pos   int
	eof   bool
	batch *Batch
}

// Open implements Operator, evaluating the bound scalars (they may
// reference variables or outer rows) and opening the range cursor.
func (o *RangeSeekOp) Open(ctx *Ctx) error {
	o.cur = nil
	o.empty = false
	o.buf = o.buf[:0]
	o.pos = 0
	o.eof = false
	lo, hi := sqltypes.Null, sqltypes.Null
	if o.Lo != nil {
		v, err := o.Lo(ctx, nil)
		if err != nil {
			return err
		}
		if v.IsNull() {
			o.empty = true
			return nil
		}
		lo = v
	}
	if o.Hi != nil {
		v, err := o.Hi(ctx, nil)
		if err != nil {
			return err
		}
		if v.IsNull() {
			o.empty = true
			return nil
		}
		hi = v
	}
	cur, ok := o.Table.SeekRange(ctx.Snap, ctx.Stats, o.Column, lo, hi, o.LoStrict, o.HiStrict)
	if !ok {
		return fmt.Errorf("exec: no ordered index on %s(%s)", o.Table.Name, o.Column)
	}
	o.cur = cur
	return nil
}

// BufferedRows reports the rows currently buffered (at most one batch).
func (o *RangeSeekOp) BufferedRows() int { return len(o.buf) }

// Next implements Operator.
func (o *RangeSeekOp) Next(ctx *Ctx) (Row, error) {
	if o.empty {
		return nil, nil
	}
	for o.pos >= len(o.buf) {
		if o.eof {
			return nil, nil
		}
		if ctx.Interrupted() {
			return nil, ErrInterrupted
		}
		o.buf = o.buf[:0]
		o.pos = 0
		if o.cur.Next(ctx.Stats, DefaultBatchSize, func(row []sqltypes.Value) {
			o.buf = append(o.buf, row)
		}) == 0 {
			o.eof = true
		}
	}
	r := o.buf[o.pos]
	o.pos++
	return r, nil
}

// NextBatch implements BatchOperator, filling a columnar batch straight
// from the range cursor.
func (o *RangeSeekOp) NextBatch(ctx *Ctx) (*Batch, error) {
	if o.empty || o.eof {
		return nil, nil
	}
	if ctx.Interrupted() {
		return nil, ErrInterrupted
	}
	w := o.Table.Schema.Len()
	if o.batch == nil {
		o.batch = NewBatch(w)
	}
	b := o.batch
	b.Reset(w)
	o.cur.Next(ctx.Stats, DefaultBatchSize, func(row []sqltypes.Value) {
		b.AppendRow(row)
	})
	if b.Len() == 0 {
		o.eof = true
		return nil, nil
	}
	return b, nil
}

// BatchCapable implements the batch contract.
func (o *RangeSeekOp) BatchCapable() bool { return true }

// Close implements Operator.
func (o *RangeSeekOp) Close() { o.cur = nil; o.buf = nil }

// LateScanOp scans a table variable or temp table resolved from the
// context at Open time. Plans over such tables are cached across procedure
// invocations even though each invocation declares fresh instances.
type LateScanOp struct {
	Name string
	scan ScanOp
}

// Open implements Operator.
func (o *LateScanOp) Open(ctx *Ctx) error {
	if ctx.Temp == nil {
		return fmt.Errorf("exec: no temp-table resolver for %s", o.Name)
	}
	tab, ok := ctx.Temp(o.Name)
	if !ok {
		return fmt.Errorf("exec: undeclared table variable %s", o.Name)
	}
	o.scan = ScanOp{Table: tab}
	return o.scan.Open(ctx)
}

// Next implements Operator.
func (o *LateScanOp) Next(ctx *Ctx) (Row, error) { return o.scan.Next(ctx) }

// NextBatch implements BatchOperator via the inner scan.
func (o *LateScanOp) NextBatch(ctx *Ctx) (*Batch, error) { return o.scan.NextBatch(ctx) }

// BatchCapable implements the batch contract.
func (o *LateScanOp) BatchCapable() bool { return true }

// Close implements Operator.
func (o *LateScanOp) Close() { o.scan.Close() }

// DeltaScanOp reads from a shared row buffer; the recursive-CTE operator
// points it at the previous iteration's delta.
type DeltaScanOp struct {
	Source *[]Row
	pos    int
}

// Open implements Operator.
func (o *DeltaScanOp) Open(*Ctx) error { o.pos = 0; return nil }

// Next implements Operator.
func (o *DeltaScanOp) Next(*Ctx) (Row, error) {
	rows := *o.Source
	if o.pos >= len(rows) {
		return nil, nil
	}
	r := rows[o.pos]
	o.pos++
	return r, nil
}

// Close implements Operator.
func (o *DeltaScanOp) Close() {}

// BufferScanOp emits rows from a fixed buffer (materialized CTE results).
type BufferScanOp struct {
	Rows []Row
	pos  int
}

// Open implements Operator.
func (o *BufferScanOp) Open(*Ctx) error { o.pos = 0; return nil }

// Next implements Operator.
func (o *BufferScanOp) Next(*Ctx) (Row, error) {
	if o.pos >= len(o.Rows) {
		return nil, nil
	}
	r := o.Rows[o.pos]
	o.pos++
	return r, nil
}

// Close implements Operator.
func (o *BufferScanOp) Close() {}

// ----- Row transformers -----

// FilterOp passes through rows satisfying Pred.
type FilterOp struct {
	Child Operator
	Pred  Scalar

	out     *Batch
	scratch Row
}

// Open implements Operator.
func (o *FilterOp) Open(ctx *Ctx) error { return o.Child.Open(ctx) }

// Next implements Operator.
func (o *FilterOp) Next(ctx *Ctx) (Row, error) {
	for {
		r, err := o.Child.Next(ctx)
		if err != nil || r == nil {
			return nil, err
		}
		v, err := o.Pred(ctx, r)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			return r, nil
		}
	}
}

// NextBatch implements BatchOperator: the predicate is evaluated per row on
// a scratch view of the child batch, and qualifying rows are gathered into
// the output batch. Qualifier-free stretches still advance a whole batch
// per child pull, so the per-row interrupt stride is preserved by the
// producers beneath.
func (o *FilterOp) NextBatch(ctx *Ctx) (*Batch, error) {
	src := o.Child.(BatchOperator)
	for {
		in, err := src.NextBatch(ctx)
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		if o.out == nil {
			o.out = NewBatch(in.Width())
		}
		out := o.out
		out.Reset(in.Width())
		for i := 0; i < in.Len(); i++ {
			o.scratch = in.Row(i, o.scratch)
			v, err := o.Pred(ctx, o.scratch)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				out.AppendRow(o.scratch)
			}
		}
		if out.Len() > 0 {
			return out, nil
		}
	}
}

// BatchCapable reports the child's capability: a filter is a pass-through
// transformer on the batch path.
func (o *FilterOp) BatchCapable() bool { return CanBatch(o.Child) }

// Close implements Operator.
func (o *FilterOp) Close() { o.Child.Close() }

// ProjectOp maps each input row through a list of scalars.
type ProjectOp struct {
	Child Operator
	Exprs []Scalar

	out     *Batch
	scratch Row
}

// Open implements Operator.
func (o *ProjectOp) Open(ctx *Ctx) error { return o.Child.Open(ctx) }

// Next implements Operator.
func (o *ProjectOp) Next(ctx *Ctx) (Row, error) {
	r, err := o.Child.Next(ctx)
	if err != nil || r == nil {
		return nil, err
	}
	out := make(Row, len(o.Exprs))
	for i, s := range o.Exprs {
		if out[i], err = s(ctx, r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// NextBatch implements BatchOperator, evaluating the projection over a
// scratch view of each input row into the output batch.
func (o *ProjectOp) NextBatch(ctx *Ctx) (*Batch, error) {
	src := o.Child.(BatchOperator)
	in, err := src.NextBatch(ctx)
	if err != nil || in == nil {
		return nil, err
	}
	if o.out == nil {
		o.out = NewBatch(len(o.Exprs))
	}
	out := o.out
	out.Reset(len(o.Exprs))
	for i := 0; i < in.Len(); i++ {
		o.scratch = in.Row(i, o.scratch)
		for j, s := range o.Exprs {
			v, err := s(ctx, o.scratch)
			if err != nil {
				return nil, err
			}
			out.Cols[j].Append(v)
		}
		out.n++
	}
	return out, nil
}

// BatchCapable reports the child's capability: a projection is a
// pass-through transformer on the batch path.
func (o *ProjectOp) BatchCapable() bool { return CanBatch(o.Child) }

// Close implements Operator.
func (o *ProjectOp) Close() { o.Child.Close() }

// ----- Joins -----

// NLJoinOp is a nested-loop join that pushes each left row onto the
// outer-row stack and re-opens the right child, which may therefore be
// correlated (an IndexSeekOp keyed by the left row, or an arbitrary
// dependent subplan). It thus doubles as the Apply operator.
type NLJoinOp struct {
	Left       Operator
	Right      Operator
	LeftWidth  int
	RightWidth int
	On         Scalar // evaluated on the combined row; nil = always true
	LeftOuter  bool

	leftRow    Row
	rightOpen  bool
	matched    bool
	checkCount int
}

// Open implements Operator.
func (o *NLJoinOp) Open(ctx *Ctx) error {
	o.leftRow = nil
	o.rightOpen = false
	o.matched = false
	return o.Left.Open(ctx)
}

// Next implements Operator.
func (o *NLJoinOp) Next(ctx *Ctx) (Row, error) {
	for {
		o.checkCount++
		if o.checkCount%1024 == 0 && ctx.Interrupted() {
			return nil, ErrInterrupted
		}
		if !o.rightOpen {
			lr, err := o.Left.Next(ctx)
			if err != nil {
				return nil, err
			}
			if lr == nil {
				return nil, nil
			}
			o.leftRow = lr
			o.matched = false
			ctx.OuterRows = append(ctx.OuterRows, lr)
			err = o.Right.Open(ctx)
			ctx.OuterRows = ctx.OuterRows[:len(ctx.OuterRows)-1]
			if err != nil {
				return nil, err
			}
			o.rightOpen = true
		}
		ctx.OuterRows = append(ctx.OuterRows, o.leftRow)
		rr, err := o.Right.Next(ctx)
		ctx.OuterRows = ctx.OuterRows[:len(ctx.OuterRows)-1]
		if err != nil {
			return nil, err
		}
		if rr == nil {
			o.Right.Close()
			o.rightOpen = false
			if o.LeftOuter && !o.matched {
				return o.combine(o.leftRow, nil), nil
			}
			continue
		}
		combined := o.combine(o.leftRow, rr)
		if o.On != nil {
			v, err := o.On(ctx, combined)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		o.matched = true
		return combined, nil
	}
}

func (o *NLJoinOp) combine(l, r Row) Row {
	out := make(Row, o.LeftWidth+o.RightWidth)
	copy(out, l)
	if r != nil {
		copy(out[o.LeftWidth:], r)
	} else {
		for i := o.LeftWidth; i < len(out); i++ {
			out[i] = sqltypes.Null
		}
	}
	return out
}

// Close implements Operator.
func (o *NLJoinOp) Close() {
	if o.rightOpen {
		o.Right.Close()
		o.rightOpen = false
	}
	o.Left.Close()
}

// HashJoinOp is an equi-join: it builds a hash table over the right child
// keyed by RightKeys, then probes with LeftKeys. Residual predicates run on
// the combined row.
type HashJoinOp struct {
	Left       Operator
	Right      Operator
	LeftWidth  int
	RightWidth int
	LeftKeys   []Scalar
	RightKeys  []Scalar
	Residual   Scalar // may be nil
	LeftOuter  bool

	table     map[uint64][]Row
	pending   []Row // matches for the current left row not yet emitted
	leftRow   Row
	buildRows int // rows buffered in the hash table (for instrumentation)
}

// BufferedRows reports the build-side hash table size.
func (o *HashJoinOp) BufferedRows() int { return o.buildRows }

// Open implements Operator.
func (o *HashJoinOp) Open(ctx *Ctx) error {
	o.table = map[uint64][]Row{}
	o.pending = nil
	o.buildRows = 0
	if err := o.Right.Open(ctx); err != nil {
		return err
	}
	defer o.Right.Close()
	keybuf := make([]sqltypes.Value, len(o.RightKeys))
	for {
		r, err := o.Right.Next(ctx)
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		null := false
		for i, k := range o.RightKeys {
			v, err := k(ctx, r)
			if err != nil {
				return err
			}
			if v.IsNull() {
				null = true
				break
			}
			keybuf[i] = v
		}
		if null {
			continue // NULL keys never join
		}
		h := sqltypes.HashRow(keybuf)
		o.table[h] = append(o.table[h], r)
		o.buildRows++
	}
	return o.Left.Open(ctx)
}

// Next implements Operator.
func (o *HashJoinOp) Next(ctx *Ctx) (Row, error) {
	for {
		if len(o.pending) > 0 {
			r := o.pending[0]
			o.pending = o.pending[1:]
			return r, nil
		}
		lr, err := o.Left.Next(ctx)
		if err != nil {
			return nil, err
		}
		if lr == nil {
			return nil, nil
		}
		o.leftRow = lr
		keys := make([]sqltypes.Value, len(o.LeftKeys))
		null := false
		for i, k := range o.LeftKeys {
			v, err := k(ctx, lr)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			keys[i] = v
		}
		var matches []Row
		if !null {
			for _, cand := range o.table[sqltypes.HashRow(keys)] {
				equal := true
				for i, k := range o.RightKeys {
					v, err := k(ctx, cand)
					if err != nil {
						return nil, err
					}
					if !sqltypes.Equal(v, keys[i]) {
						equal = false
						break
					}
				}
				if !equal {
					continue
				}
				combined := o.combine(lr, cand)
				if o.Residual != nil {
					v, err := o.Residual(ctx, combined)
					if err != nil {
						return nil, err
					}
					if !v.Truthy() {
						continue
					}
				}
				matches = append(matches, combined)
			}
		}
		if len(matches) == 0 {
			if o.LeftOuter {
				return o.combine(lr, nil), nil
			}
			continue
		}
		o.pending = matches[1:]
		return matches[0], nil
	}
}

func (o *HashJoinOp) combine(l, r Row) Row {
	out := make(Row, o.LeftWidth+o.RightWidth)
	copy(out, l)
	if r != nil {
		copy(out[o.LeftWidth:], r)
	} else {
		for i := o.LeftWidth; i < len(out); i++ {
			out[i] = sqltypes.Null
		}
	}
	return out
}

// Close implements Operator.
func (o *HashJoinOp) Close() {
	o.table = nil
	o.pending = nil
	o.Left.Close()
}

// ----- Ordering, limiting, dedup -----

// SortOp materializes its input and emits it ordered by Keys. NULLs sort
// first; incomparable values keep their input order.
type SortOp struct {
	Child Operator
	Keys  []Scalar
	Desc  []bool

	rows []Row
	pos  int
}

// BufferedRows reports the number of rows materialized for sorting.
func (o *SortOp) BufferedRows() int { return len(o.rows) }

// Open implements Operator.
func (o *SortOp) Open(ctx *Ctx) error {
	o.rows = nil
	o.pos = 0
	if err := o.Child.Open(ctx); err != nil {
		return err
	}
	defer o.Child.Close()
	type keyed struct {
		row  Row
		keys []sqltypes.Value
	}
	var items []keyed
	for {
		r, err := o.Child.Next(ctx)
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		ks := make([]sqltypes.Value, len(o.Keys))
		for i, k := range o.Keys {
			v, err := k(ctx, r)
			if err != nil {
				return err
			}
			ks[i] = v
		}
		items = append(items, keyed{r, ks})
	}
	sort.SliceStable(items, func(a, b int) bool {
		for i := range o.Keys {
			va, vb := items[a].keys[i], items[b].keys[i]
			c := compareForSort(va, vb)
			if c == 0 {
				continue
			}
			if o.Desc[i] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	o.rows = make([]Row, len(items))
	for i, it := range items {
		o.rows[i] = it.row
	}
	return nil
}

// compareForSort orders values with NULLs first, then by kind rank, then by
// value within a rank. Returning 0 for incomparable mixed-kind pairs would
// make the comparator non-transitive (1 ~ 'a', 'a' ~ 2, but 1 < 2) and the
// sort order input-dependent; ranking kinds first yields a total order.
func compareForSort(a, b sqltypes.Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	if ra, rb := sortRank(a), sortRank(b); ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	if a.Kind() == sqltypes.KindTuple && b.Kind() == sqltypes.KindTuple {
		at, bt := a.Tuple(), b.Tuple()
		n := len(at)
		if len(bt) < n {
			n = len(bt)
		}
		for i := 0; i < n; i++ {
			if c := compareForSort(at[i], bt[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(at) < len(bt):
			return -1
		case len(at) > len(bt):
			return 1
		}
		return 0
	}
	if c, ok := sqltypes.Compare(a, b); ok {
		return c
	}
	// Same rank but still incomparable (e.g. a date vs a non-date string):
	// fall back to the rendered form so the order stays total.
	return strings.Compare(a.String(), b.String())
}

// sortRank buckets kinds for mixed-kind ORDER BY: booleans, then numerics
// (ints and floats compare cross-kind), then dates, then strings, then
// tuples. Dates and strings rank separately even though Compare coerces
// date-shaped strings: a non-date string is incomparable with a date, which
// would break transitivity if they shared a rank.
func sortRank(v sqltypes.Value) int {
	switch v.Kind() {
	case sqltypes.KindBool:
		return 1
	case sqltypes.KindInt, sqltypes.KindFloat:
		return 2
	case sqltypes.KindDate:
		return 3
	case sqltypes.KindString:
		return 4
	case sqltypes.KindTuple:
		return 5
	}
	return 6
}

// Next implements Operator.
func (o *SortOp) Next(*Ctx) (Row, error) {
	if o.pos >= len(o.rows) {
		return nil, nil
	}
	r := o.rows[o.pos]
	o.pos++
	return r, nil
}

// Close implements Operator.
func (o *SortOp) Close() { o.rows = nil }

// TopOp emits at most N rows, N evaluated at Open. Once the limit is
// reached the child subtree is closed immediately, so scans beneath a
// satisfied TOP stop accruing logical reads; TOP 0 never opens the child.
type TopOp struct {
	Child Operator
	N     Scalar

	limit     int64
	seen      int64
	childOpen bool
}

// Open implements Operator.
func (o *TopOp) Open(ctx *Ctx) error {
	o.seen = 0
	o.childOpen = false
	v, err := o.N(ctx, nil)
	if err != nil {
		return err
	}
	n, ok := v.AsInt()
	if !ok {
		return fmt.Errorf("exec: TOP requires an integer, got %s", v.Kind())
	}
	o.limit = n
	if o.limit <= 0 {
		return nil
	}
	// Mark open before the call so a failed child Open is still closed
	// (the Operator contract makes that safe).
	o.childOpen = true
	return o.Child.Open(ctx)
}

// Next implements Operator.
func (o *TopOp) Next(ctx *Ctx) (Row, error) {
	if o.seen >= o.limit {
		o.closeChild()
		return nil, nil
	}
	r, err := o.Child.Next(ctx)
	if err != nil || r == nil {
		return nil, err
	}
	o.seen++
	if o.seen >= o.limit {
		o.closeChild()
	}
	return r, nil
}

func (o *TopOp) closeChild() {
	if o.childOpen {
		o.Child.Close()
		o.childOpen = false
	}
}

// Close implements Operator.
func (o *TopOp) Close() { o.closeChild() }

// DistinctOp removes duplicate rows (grouping NULLs together).
type DistinctOp struct {
	Child Operator
	seen  map[uint64][]Row
}

// Open implements Operator.
func (o *DistinctOp) Open(ctx *Ctx) error {
	o.seen = map[uint64][]Row{}
	return o.Child.Open(ctx)
}

// Next implements Operator.
func (o *DistinctOp) Next(ctx *Ctx) (Row, error) {
	for {
		r, err := o.Child.Next(ctx)
		if err != nil || r == nil {
			return nil, err
		}
		h := sqltypes.HashRow(r)
		dup := false
		for _, prev := range o.seen[h] {
			if sqltypes.RowsGroupEqual(prev, r) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		o.seen[h] = append(o.seen[h], r)
		return r, nil
	}
}

// Close implements Operator.
func (o *DistinctOp) Close() { o.seen = nil; o.Child.Close() }

// ConcatOp emits all rows of each child in turn (UNION ALL).
type ConcatOp struct {
	Children []Operator
	cur      int
	open     bool
}

// Open implements Operator.
func (o *ConcatOp) Open(ctx *Ctx) error {
	o.cur = 0
	o.open = false
	return nil
}

// Next implements Operator.
func (o *ConcatOp) Next(ctx *Ctx) (Row, error) {
	for o.cur < len(o.Children) {
		if !o.open {
			if err := o.Children[o.cur].Open(ctx); err != nil {
				return nil, err
			}
			o.open = true
		}
		r, err := o.Children[o.cur].Next(ctx)
		if err != nil {
			return nil, err
		}
		if r != nil {
			return r, nil
		}
		o.Children[o.cur].Close()
		o.open = false
		o.cur++
	}
	return nil, nil
}

// Close implements Operator.
func (o *ConcatOp) Close() {
	if o.open && o.cur < len(o.Children) {
		o.Children[o.cur].Close()
		o.open = false
	}
}
