package exec

import (
	"errors"
	"testing"

	"aggify/internal/sqltypes"
	"aggify/internal/storage"
	"aggify/internal/testutil"
)

// errOp emits its rows then fails: on Open when failOpen is set, otherwise
// on the Next call after the last row.
type errOp struct {
	rows     []Row
	failOpen bool
	err      error
	pos      int
}

func (o *errOp) Open(*Ctx) error {
	o.pos = 0
	if o.failOpen {
		return o.err
	}
	return nil
}

func (o *errOp) Next(*Ctx) (Row, error) {
	if o.pos >= len(o.rows) {
		return nil, o.err
	}
	r := o.rows[o.pos]
	o.pos++
	return r, nil
}

func (o *errOp) Close() {}

func seqRows(lo, hi int64) []Row {
	var out []Row
	for i := lo; i < hi; i++ {
		out = append(out, intRow(i))
	}
	return out
}

func TestExchangeOrdered(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ex := &ExchangeOp{
		Parts: []Operator{
			&BufferScanOp{Rows: seqRows(0, 100)},
			&BufferScanOp{Rows: seqRows(100, 200)},
			&BufferScanOp{Rows: seqRows(200, 250)},
		},
		Ordered: true,
	}
	rows := drain(t, ex)
	if len(rows) != 250 {
		t.Fatalf("got %d rows, want 250", len(rows))
	}
	// Ordered mode must reproduce the partition concatenation exactly.
	for i, r := range rows {
		if r[0].Int() != int64(i) {
			t.Fatalf("row %d = %v, want %d", i, r[0], i)
		}
	}
}

func TestExchangeUnordered(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ex := &ExchangeOp{
		Parts: []Operator{
			&BufferScanOp{Rows: seqRows(0, 100)},
			&BufferScanOp{Rows: seqRows(100, 200)},
		},
		Buffer: 4,
	}
	rows := drain(t, ex)
	if len(rows) != 200 {
		t.Fatalf("got %d rows, want 200", len(rows))
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		if seen[r[0].Int()] {
			t.Fatalf("duplicate row %v", r[0])
		}
		seen[r[0].Int()] = true
	}
	for i := int64(0); i < 200; i++ {
		if !seen[i] {
			t.Fatalf("missing row %d", i)
		}
	}
}

func TestExchangeWorkerErrors(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	boom := errors.New("boom")
	for _, tc := range []struct {
		name    string
		ordered bool
		part    Operator
	}{
		{"ordered/open", true, &errOp{failOpen: true, err: boom}},
		{"ordered/next", true, &errOp{rows: seqRows(0, 10), err: boom}},
		{"unordered/open", false, &errOp{failOpen: true, err: boom}},
		{"unordered/next", false, &errOp{rows: seqRows(0, 10), err: boom}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ex := &ExchangeOp{
				Parts:   []Operator{&BufferScanOp{Rows: seqRows(0, 5)}, tc.part},
				Ordered: tc.ordered,
			}
			_, err := Drain(&Ctx{}, ex)
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want %v", err, boom)
			}
		})
	}
}

func TestMergeExchange(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// Each partition is sorted on column 0; column 1 tags the partition so
	// the tie-break (lowest partition index first) is observable.
	ex := &MergeExchangeOp{
		Parts: []Operator{
			&BufferScanOp{Rows: []Row{intRow(1, 0), intRow(3, 0), intRow(5, 0)}},
			&BufferScanOp{Rows: []Row{intRow(1, 1), intRow(2, 1), intRow(6, 1)}},
		},
		Keys: []Scalar{ColScalar(0)},
		Desc: []bool{false},
	}
	rows := drain(t, ex)
	wantKeys := []int64{1, 1, 2, 3, 5, 6}
	wantPart := []int64{0, 1, 1, 0, 0, 1}
	if len(rows) != len(wantKeys) {
		t.Fatalf("got %d rows, want %d", len(rows), len(wantKeys))
	}
	for i, r := range rows {
		if r[0].Int() != wantKeys[i] || r[1].Int() != wantPart[i] {
			t.Fatalf("row %d = %v, want key %d from part %d", i, r, wantKeys[i], wantPart[i])
		}
	}
}

func TestMergeExchangeDesc(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ex := &MergeExchangeOp{
		Parts: []Operator{
			&BufferScanOp{Rows: []Row{intRow(9), intRow(4)}},
			&BufferScanOp{Rows: []Row{intRow(7), intRow(1)}},
		},
		Keys: []Scalar{ColScalar(0)},
		Desc: []bool{true},
	}
	rows := drain(t, ex)
	want := []int64{9, 7, 4, 1}
	for i, r := range rows {
		if r[0].Int() != want[i] {
			t.Fatalf("row %d = %v, want %d", i, r[0], want[i])
		}
	}
}

func TestScanSplitPartitions(t *testing.T) {
	tab := storage.NewTable("t", storage.NewSchema(storage.Col("v", sqltypes.Int)))
	for i := int64(0); i < 10; i++ {
		_ = tab.Insert(nil, intRow(i))
	}
	split := &ScanSplit{Table: tab, NParts: 3}
	var stats storage.Stats
	ctx := &Ctx{Stats: &stats}
	var all []Row
	sizes := []int{4, 4, 2}
	for i := 0; i < 3; i++ {
		rows, err := Drain(ctx, &ParallelScanOp{Split: split, Part: i})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != sizes[i] {
			t.Fatalf("part %d has %d rows, want %d", i, len(rows), sizes[i])
		}
		all = append(all, rows...)
	}
	// Contiguous partitions must concatenate back into serial scan order.
	for i, r := range all {
		if r[0].Int() != int64(i) {
			t.Fatalf("row %d = %v, want %d", i, r[0], i)
		}
	}
	// The shared snapshot charges the table's reads exactly once.
	if got := stats.Snapshot().LogicalReads; got != 10 {
		t.Fatalf("logical reads = %d, want 10 (snapshot charged once)", got)
	}
}

func TestScanSplitLateBound(t *testing.T) {
	tab := storage.NewTable("@t", storage.NewSchema(storage.Col("v", sqltypes.Int)))
	for i := int64(0); i < 6; i++ {
		_ = tab.Insert(nil, intRow(i))
	}
	ctx := &Ctx{Temp: func(name string) (*storage.Table, bool) {
		if name == "@t" {
			return tab, true
		}
		return nil, false
	}}
	split := &ScanSplit{Name: "@t", NParts: 2}
	for i := 0; i < 2; i++ {
		rows, err := Drain(ctx, &ParallelScanOp{Split: split, Part: i})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("part %d has %d rows, want 3", i, len(rows))
		}
	}
	missing := &ScanSplit{Name: "@nope", NParts: 1}
	if _, err := Drain(ctx, &ParallelScanOp{Split: missing}); err == nil {
		t.Fatal("undeclared late-bound table should error")
	}
}

func TestParallelAggPartsMatchesSerial(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	tab := storage.NewTable("t", storage.NewSchema(
		storage.Col("k", sqltypes.Int), storage.Col("v", sqltypes.Int)))
	for i := int64(0); i < 5000; i++ {
		_ = tab.Insert(nil, intRow(i%13, i))
	}
	mk := func() []AggInstance {
		return []AggInstance{
			{Spec: builtinAgg(t, "count"), Star: true},
			{Spec: builtinAgg(t, "sum"), Args: []Scalar{ColScalar(1)}},
			{Spec: builtinAgg(t, "min"), Args: []Scalar{ColScalar(1)}},
			{Spec: builtinAgg(t, "max"), Args: []Scalar{ColScalar(1)}},
		}
	}
	serial := &HashAggOp{Child: &ScanOp{Table: tab}, GroupKeys: []Scalar{ColScalar(0)}, Aggs: mk()}
	const workers = 4
	split := &ScanSplit{Table: tab, NParts: workers}
	parts := make([]Operator, workers)
	for i := range parts {
		parts[i] = &ParallelScanOp{Split: split, Part: i}
	}
	parallel := &ParallelAggOp{Parts: parts, GroupKeys: []Scalar{ColScalar(0)}, Aggs: mk(), Workers: workers}
	ctx := &Ctx{Stats: &storage.Stats{}}
	sr, err := Drain(ctx, serial)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Drain(&Ctx{Stats: &storage.Stats{}}, parallel)
	if err != nil {
		t.Fatal(err)
	}
	// Contiguous partitions merged in partition order must reproduce the
	// serial first-seen group order byte for byte.
	if len(sr) != len(pr) {
		t.Fatalf("group counts differ: %d vs %d", len(sr), len(pr))
	}
	for i := range sr {
		for j := range sr[i] {
			if !sqltypes.GroupEqual(sr[i][j], pr[i][j]) {
				t.Fatalf("row %d col %d: serial %v vs parallel %v", i, j, sr[i], pr[i])
			}
		}
	}
}

// TestExchangeEarlyCloseNoLeak is the regression test for the satellite fix:
// a consumer that stops early (TopOp hitting its limit, Rows.Close) must
// cancel in-flight workers promptly and leave zero goroutines behind.
func TestExchangeEarlyCloseNoLeak(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	// Small buffers guarantee workers are blocked on sends when the limit
	// hits, exercising the quit-channel wakeup path.
	mk := func(ordered bool) *TopOp {
		return &TopOp{
			Child: &ExchangeOp{
				Parts: []Operator{
					&BufferScanOp{Rows: seqRows(0, 10000)},
					&BufferScanOp{Rows: seqRows(10000, 20000)},
					&BufferScanOp{Rows: seqRows(20000, 30000)},
				},
				Ordered: ordered,
				Buffer:  1,
			},
			N: ConstScalar(sqltypes.NewInt(3)),
		}
	}
	for _, ordered := range []bool{true, false} {
		rows := drain(t, mk(ordered))
		if len(rows) != 3 {
			t.Fatalf("ordered=%v: got %d rows, want 3", ordered, len(rows))
		}
	}
}

// TestExchangeDoneCancels checks the Ctx.Done path: closing the execution's
// Done channel aborts a blocked consumer with ErrInterrupted and Close still
// joins all workers.
func TestExchangeDoneCancels(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	done := make(chan struct{})
	ex := &ExchangeOp{
		Parts:   []Operator{&BufferScanOp{Rows: seqRows(0, 100000)}},
		Ordered: true,
		Buffer:  1,
	}
	ctx := &Ctx{Done: done}
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	close(done)
	var err error
	for i := 0; i < 200000; i++ {
		if _, err = ex.Next(ctx); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

// TestParallelAggDoneCancels checks that a parent-level cancellation reaches
// partitioned aggregation workers (the relay installed in runPartitioned).
func TestParallelAggDoneCancels(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	done := make(chan struct{})
	close(done)
	op := &ParallelAggOp{
		Parts: []Operator{
			&BufferScanOp{Rows: seqRows(0, 100000)},
			&BufferScanOp{Rows: seqRows(100000, 200000)},
		},
		GroupKeys: []Scalar{ColScalar(0)},
		Aggs:      []AggInstance{{Spec: builtinAgg(t, "count"), Star: true}},
		Workers:   2,
	}
	_, err := Drain(&Ctx{Done: done}, op)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}
