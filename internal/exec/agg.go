package exec

import (
	"fmt"
	"strings"

	"aggify/internal/sqltypes"
)

// Aggregator is the custom-aggregate contract of §3.1: Init (Reset),
// Accumulate (Step), Terminate (Result), and Merge for parallel execution.
// Built-in aggregates and Aggify-generated aggregates both implement it.
type Aggregator interface {
	// Reset re-initializes the aggregate state (the contract's Init).
	Reset()
	// Step folds one input tuple into the state (the contract's Accumulate).
	// The context gives interpreted aggregates access to query execution
	// (their bodies may contain SELECTs and nested loops).
	Step(ctx *Ctx, args []sqltypes.Value) error
	// Result computes the final value (the contract's Terminate).
	Result(ctx *Ctx) (sqltypes.Value, error)
	// Merge combines the partial state of another instance of the same
	// aggregate (the contract's Merge, used by parallel aggregation).
	Merge(other Aggregator) error
}

// BatchStepper is the optional vectorized extension of Aggregator: StepBatch
// folds the selected rows of one column batch into the state, equivalent to
// calling Step once per selected row in sel order (so NULL handling, type
// coercion, and overflow detection behave identically on both paths). A nil
// column is the argument-less COUNT(*) form. Aggregates that do not
// implement it — notably interpreted and compiled custom aggregates, whose
// Accumulate bodies are procedural — are stepped row-at-a-time even inside
// a batched plan.
type BatchStepper interface {
	StepBatch(col *Column, sel []int) error
}

// AggSpec describes an aggregate function available to the planner.
type AggSpec struct {
	Name string
	// New creates a fresh Aggregator instance.
	New func() Aggregator
	// OrderSensitive marks aggregates whose result depends on input order
	// (Aggify-generated aggregates over ORDER BY cursors). The planner must
	// feed them with a streaming aggregate below an enforced sort, and must
	// not parallelize them (paper §6.1).
	OrderSensitive bool
	// Mergeable marks aggregates whose Merge method is implemented, making
	// them eligible for parallel aggregation.
	Mergeable bool
	// ParallelSafe marks aggregates whose Step may run concurrently on
	// distinct instances without shared mutable state. Built-ins qualify;
	// interpreted custom aggregates do not (their Accumulate bodies run on
	// the owning session, which is single-threaded), and compiled custom
	// aggregates qualify only when their programs are pure slot machines
	// (no cursors, table access, or function calls).
	ParallelSafe bool
}

// ----- Built-in aggregates -----

// BuiltinAggs returns the specs of the built-in aggregate functions.
func BuiltinAggs() map[string]*AggSpec {
	mk := func(name string, f func() Aggregator) *AggSpec {
		return &AggSpec{Name: name, New: f, Mergeable: true, ParallelSafe: true}
	}
	return map[string]*AggSpec{
		"count": mk("count", func() Aggregator { return &countAgg{} }),
		"sum":   mk("sum", func() Aggregator { return &sumAgg{} }),
		"avg":   mk("avg", func() Aggregator { return &avgAgg{} }),
		"min":   mk("min", func() Aggregator { return &minMaxAgg{want: -1} }),
		"max":   mk("max", func() Aggregator { return &minMaxAgg{want: 1} }),
	}
}

// IsBuiltinAgg reports whether name is a built-in aggregate function.
func IsBuiltinAgg(name string) bool {
	switch strings.ToLower(name) {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}

// countAgg implements COUNT(*) (no args) and COUNT(x) (skips NULL).
type countAgg struct {
	n int64
}

func (a *countAgg) Reset() { a.n = 0 }

func (a *countAgg) Step(_ *Ctx, args []sqltypes.Value) error {
	if len(args) == 0 || !args[0].IsNull() {
		a.n++
	}
	return nil
}

// StepBatch implements BatchStepper. A nil column is the COUNT(*) form.
func (a *countAgg) StepBatch(col *Column, sel []int) error {
	if col == nil || !col.HasNulls() {
		a.n += int64(len(sel))
		return nil
	}
	for _, i := range sel {
		if !col.Null(i) {
			a.n++
		}
	}
	return nil
}

func (a *countAgg) Result(*Ctx) (sqltypes.Value, error) { return sqltypes.NewInt(a.n), nil }

func (a *countAgg) Merge(other Aggregator) error {
	o, ok := other.(*countAgg)
	if !ok {
		return fmt.Errorf("exec: merge of mismatched aggregate")
	}
	a.n += o.n
	return nil
}

// sumAgg implements SUM; integer inputs keep integer arithmetic.
type sumAgg struct {
	seen    bool
	isFloat bool
	i       int64
	f       float64
}

func (a *sumAgg) Reset() { *a = sumAgg{} }

func (a *sumAgg) Step(_ *Ctx, args []sqltypes.Value) error {
	if len(args) != 1 {
		return fmt.Errorf("exec: sum expects 1 argument")
	}
	return a.add(args[0])
}

// add folds one value; shared by Step and StepBatch so both execution paths
// have identical NULL, overflow, and type semantics.
func (a *sumAgg) add(v sqltypes.Value) error {
	if v.IsNull() {
		return nil
	}
	switch v.Kind() {
	case sqltypes.KindInt:
		s, err := sqltypes.AddInt64(a.i, v.Int())
		if err != nil && !a.isFloat {
			return err
		}
		a.i = s
		a.f += float64(v.Int())
	case sqltypes.KindFloat:
		a.isFloat = true
		a.f += v.Float()
	default:
		return fmt.Errorf("exec: sum of non-numeric %s", v.Kind())
	}
	a.seen = true
	return nil
}

// StepBatch implements BatchStepper.
func (a *sumAgg) StepBatch(col *Column, sel []int) error {
	if col == nil {
		return fmt.Errorf("exec: sum expects 1 argument")
	}
	for _, i := range sel {
		if err := a.add(col.Vals[i]); err != nil {
			return err
		}
	}
	return nil
}

func (a *sumAgg) Result(*Ctx) (sqltypes.Value, error) {
	if !a.seen {
		return sqltypes.Null, nil
	}
	if a.isFloat {
		return sqltypes.NewFloat(a.f), nil
	}
	return sqltypes.NewInt(a.i), nil
}

func (a *sumAgg) Merge(other Aggregator) error {
	o, ok := other.(*sumAgg)
	if !ok {
		return fmt.Errorf("exec: merge of mismatched aggregate")
	}
	a.seen = a.seen || o.seen
	a.isFloat = a.isFloat || o.isFloat
	s, err := sqltypes.AddInt64(a.i, o.i)
	if err != nil && !a.isFloat {
		return err
	}
	a.i = s
	a.f += o.f
	return nil
}

// avgAgg implements AVG (always float).
type avgAgg struct {
	n int64
	f float64
}

func (a *avgAgg) Reset() { *a = avgAgg{} }

func (a *avgAgg) Step(_ *Ctx, args []sqltypes.Value) error {
	if len(args) != 1 {
		return fmt.Errorf("exec: avg expects 1 argument")
	}
	return a.add(args[0])
}

func (a *avgAgg) add(v sqltypes.Value) error {
	if v.IsNull() {
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("exec: avg of non-numeric %s", v.Kind())
	}
	a.n++
	a.f += f
	return nil
}

// StepBatch implements BatchStepper.
func (a *avgAgg) StepBatch(col *Column, sel []int) error {
	if col == nil {
		return fmt.Errorf("exec: avg expects 1 argument")
	}
	for _, i := range sel {
		if err := a.add(col.Vals[i]); err != nil {
			return err
		}
	}
	return nil
}

func (a *avgAgg) Result(*Ctx) (sqltypes.Value, error) {
	if a.n == 0 {
		return sqltypes.Null, nil
	}
	return sqltypes.NewFloat(a.f / float64(a.n)), nil
}

func (a *avgAgg) Merge(other Aggregator) error {
	o, ok := other.(*avgAgg)
	if !ok {
		return fmt.Errorf("exec: merge of mismatched aggregate")
	}
	a.n += o.n
	a.f += o.f
	return nil
}

// minMaxAgg implements MIN (want=-1) and MAX (want=1).
type minMaxAgg struct {
	want int
	seen bool
	best sqltypes.Value
}

func (a *minMaxAgg) Reset() { a.seen = false; a.best = sqltypes.Null }

func (a *minMaxAgg) Step(_ *Ctx, args []sqltypes.Value) error {
	if len(args) != 1 {
		return fmt.Errorf("exec: min/max expects 1 argument")
	}
	return a.add(args[0])
}

func (a *minMaxAgg) add(v sqltypes.Value) error {
	if v.IsNull() {
		return nil
	}
	if !a.seen {
		a.best = v
		a.seen = true
		return nil
	}
	c, ok := sqltypes.Compare(v, a.best)
	if !ok {
		return fmt.Errorf("exec: min/max over incomparable values %s and %s", v.Kind(), a.best.Kind())
	}
	if (a.want < 0 && c < 0) || (a.want > 0 && c > 0) {
		a.best = v
	}
	return nil
}

// StepBatch implements BatchStepper.
func (a *minMaxAgg) StepBatch(col *Column, sel []int) error {
	if col == nil {
		return fmt.Errorf("exec: min/max expects 1 argument")
	}
	for _, i := range sel {
		if err := a.add(col.Vals[i]); err != nil {
			return err
		}
	}
	return nil
}

func (a *minMaxAgg) Result(*Ctx) (sqltypes.Value, error) {
	if !a.seen {
		return sqltypes.Null, nil
	}
	return a.best, nil
}

func (a *minMaxAgg) Merge(other Aggregator) error {
	o, ok := other.(*minMaxAgg)
	if !ok || o.want != a.want {
		return fmt.Errorf("exec: merge of mismatched aggregate")
	}
	if !o.seen {
		return nil
	}
	return a.Step(nil, []sqltypes.Value{o.best})
}

// FuncAggregator adapts three closures to the Aggregator contract; used for
// native-Go custom aggregates registered through the public API.
type FuncAggregator struct {
	InitFn  func()
	StepFn  func(ctx *Ctx, args []sqltypes.Value) error
	FinalFn func(ctx *Ctx) (sqltypes.Value, error)
	MergeFn func(other Aggregator) error // optional
}

// Reset implements Aggregator.
func (a *FuncAggregator) Reset() {
	if a.InitFn != nil {
		a.InitFn()
	}
}

// Step implements Aggregator.
func (a *FuncAggregator) Step(ctx *Ctx, args []sqltypes.Value) error { return a.StepFn(ctx, args) }

// Result implements Aggregator.
func (a *FuncAggregator) Result(ctx *Ctx) (sqltypes.Value, error) { return a.FinalFn(ctx) }

// Merge implements Aggregator; aggregates without MergeFn reject parallel
// merging, which makes the planner fall back to serial aggregation.
func (a *FuncAggregator) Merge(other Aggregator) error {
	if a.MergeFn == nil {
		return fmt.Errorf("exec: aggregate does not support Merge")
	}
	return a.MergeFn(other)
}
