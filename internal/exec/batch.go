package exec

import "aggify/internal/sqltypes"

// This file defines the vectorized half of the operator contract: column-
// oriented row batches, the optional BatchOperator interface, and the
// adapter that lets any row-at-a-time operator participate in a batched
// plan. The executor stays a pull model — a batch consumer calls NextBatch
// instead of Next and receives ~DefaultBatchSize rows per call — so the
// per-row costs the paper attributes to cursor-style iteration (interface
// dispatch, per-row channel sends, per-row closure evaluation) are paid
// once per batch instead.

// DefaultBatchSize is the target number of rows per batch. It matches the
// executor's long-standing interrupt-check stride, so a cancelled query
// stops within one batch on either execution path.
const DefaultBatchSize = 1024

// Column is one column of a batch: a value vector plus a null bitmap.
// NULLs are stored both ways — Vals[i] is the NULL value and bit i is set —
// so row-oriented consumers can read Vals directly while vectorized
// aggregates test the bitmap without inspecting each value.
type Column struct {
	Vals []sqltypes.Value

	nulls    []uint64
	hasNulls bool
}

// Append adds one value to the column, maintaining the null bitmap.
func (c *Column) Append(v sqltypes.Value) {
	i := len(c.Vals)
	c.Vals = append(c.Vals, v)
	if word := i >> 6; word >= len(c.nulls) {
		c.nulls = append(c.nulls, 0)
	}
	if v.IsNull() {
		c.nulls[i>>6] |= 1 << (uint(i) & 63)
		c.hasNulls = true
	}
}

// Null reports whether value i is NULL, from the bitmap.
func (c *Column) Null(i int) bool {
	if !c.hasNulls {
		return false
	}
	return c.nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

// HasNulls reports whether any value in the column is NULL.
func (c *Column) HasNulls() bool { return c.hasNulls }

// NullCount counts the NULLs in the column via the bitmap.
func (c *Column) NullCount() int {
	if !c.hasNulls {
		return 0
	}
	n := 0
	for i := range c.Vals {
		if c.nulls[i>>6]&(1<<(uint(i)&63)) != 0 {
			n++
		}
	}
	return n
}

func (c *Column) reset() {
	c.Vals = c.Vals[:0]
	for i := range c.nulls {
		c.nulls[i] = 0
	}
	c.hasNulls = false
}

// Batch is a column-oriented block of rows. All columns have the same
// length. A batch returned by NextBatch is owned by the producer and valid
// only until the next NextBatch (or Close) call on that operator; consumers
// that retain rows across calls must copy them out (see Row and Clone).
type Batch struct {
	Cols []Column
	n    int
}

// NewBatch returns an empty batch with the given column count.
func NewBatch(width int) *Batch {
	return &Batch{Cols: make([]Column, width)}
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return b.n }

// Width returns the number of columns.
func (b *Batch) Width() int { return len(b.Cols) }

// Reset empties the batch, re-shaping it to width columns.
func (b *Batch) Reset(width int) {
	if len(b.Cols) != width {
		b.Cols = make([]Column, width)
	} else {
		for i := range b.Cols {
			b.Cols[i].reset()
		}
	}
	b.n = 0
}

// AppendRow adds one row across all columns. The row must match the batch
// width; values are copied, so the caller may reuse the slice.
func (b *Batch) AppendRow(row Row) {
	for i := range b.Cols {
		b.Cols[i].Append(row[i])
	}
	b.n++
}

// Row materializes row i into buf (grown as needed) and returns it. The
// result aliases buf, not the batch, so it survives batch reuse only as
// long as buf does.
func (b *Batch) Row(i int, buf Row) Row {
	if cap(buf) < len(b.Cols) {
		buf = make(Row, len(b.Cols))
	}
	buf = buf[:len(b.Cols)]
	for j := range b.Cols {
		buf[j] = b.Cols[j].Vals[i]
	}
	return buf
}

// Rows materializes every row of the batch into freshly allocated slices
// backed by one slab — the unpack path for row-oriented consumers above a
// batched exchange.
func (b *Batch) Rows() []Row {
	w := len(b.Cols)
	slab := make([]sqltypes.Value, b.n*w)
	out := make([]Row, b.n)
	for i := 0; i < b.n; i++ {
		r := slab[i*w : (i+1)*w : (i+1)*w]
		for j := 0; j < w; j++ {
			r[j] = b.Cols[j].Vals[i]
		}
		out[i] = r
	}
	return out
}

// Clone returns a deep copy the caller owns (used by exchange workers to
// detach a batch from its producer's reusable buffer before a channel send).
func (b *Batch) Clone() *Batch {
	out := &Batch{Cols: make([]Column, len(b.Cols)), n: b.n}
	for i := range b.Cols {
		src := &b.Cols[i]
		dst := &out.Cols[i]
		dst.Vals = append([]sqltypes.Value(nil), src.Vals...)
		dst.nulls = append([]uint64(nil), src.nulls...)
		dst.hasNulls = src.hasNulls
	}
	return out
}

// BatchOperator is the vectorized extension of Operator. NextBatch returns
// the next block of rows, or nil at end of stream; the returned batch is
// reused by the producer across calls. Implementations must check
// Ctx.Interrupted at every batch boundary — batch consumers bypass Next and
// its per-row interrupt stride entirely.
type BatchOperator interface {
	Operator
	NextBatch(ctx *Ctx) (*Batch, error)
}

// batchCapable is implemented by operators whose NextBatch is native end to
// end (pass-through transformers report their child's capability). CanBatch
// consults it so consumers and the planner agree on which plans take the
// vectorized path.
type batchCapable interface {
	BatchCapable() bool
}

// CanBatch reports whether op produces batches natively, i.e. without a
// row-at-a-time adapter anywhere beneath it. Consumers use it to pick the
// vectorized path only when it actually avoids per-row iteration; AdaptBatch
// remains available for mixed trees that want batch transport regardless.
func CanBatch(op Operator) bool {
	if bc, ok := op.(batchCapable); ok {
		return bc.BatchCapable()
	}
	return false
}

// AdaptBatch lifts any row-at-a-time operator into the batch contract by
// packing its rows into reusable DefaultBatchSize batches. It is the
// compatibility shim that keeps every existing operator usable in a batched
// plan (exchange transport, mixed trees) without modification. Width is
// taken from the first row.
type AdaptBatch struct {
	Child Operator

	batch *Batch
	first Row
	eof   bool
}

// Open implements Operator.
func (o *AdaptBatch) Open(ctx *Ctx) error {
	o.first = nil
	o.eof = false
	return o.Child.Open(ctx)
}

// Next implements Operator (pass-through, so the adapter is still usable as
// a plain row operator).
func (o *AdaptBatch) Next(ctx *Ctx) (Row, error) { return o.Child.Next(ctx) }

// NextBatch implements BatchOperator.
func (o *AdaptBatch) NextBatch(ctx *Ctx) (*Batch, error) {
	if o.eof {
		return nil, nil
	}
	if ctx.Interrupted() {
		return nil, ErrInterrupted
	}
	row := o.first
	o.first = nil
	if row == nil {
		var err error
		if row, err = o.Child.Next(ctx); err != nil {
			return nil, err
		}
		if row == nil {
			o.eof = true
			return nil, nil
		}
	}
	if o.batch == nil {
		o.batch = NewBatch(len(row))
	}
	b := o.batch
	b.Reset(len(row))
	b.AppendRow(row)
	for b.Len() < DefaultBatchSize {
		r, err := o.Child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if r == nil {
			o.eof = true
			break
		}
		b.AppendRow(r)
	}
	return b, nil
}

// Close implements Operator.
func (o *AdaptBatch) Close() { o.Child.Close() }

// batchOf returns op itself when it is a native batch producer, or an
// AdaptBatch wrapper otherwise. The result shares op's Open/Close, so use
// either the wrapper or the wrapped operator for lifecycle calls — not both.
func batchOf(op Operator) BatchOperator {
	if CanBatch(op) {
		return op.(BatchOperator)
	}
	return &AdaptBatch{Child: op}
}
