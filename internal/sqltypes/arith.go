package sqltypes

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrArithmeticOverflow is returned when integer arithmetic or SUM
// accumulation exceeds the int64 range, matching T-SQL's "Arithmetic
// overflow error" rather than wrapping silently.
var ErrArithmeticOverflow = errors.New("sqltypes: arithmetic overflow")

// AddInt64 returns a + b, or ErrArithmeticOverflow if the sum does not fit
// in an int64.
func AddInt64(a, b int64) (int64, error) {
	s := a + b
	// Overflow iff both operands share a sign the sum does not.
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, ErrArithmeticOverflow
	}
	return s, nil
}

// SubInt64 returns a - b with overflow checking.
func SubInt64(a, b int64) (int64, error) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return 0, ErrArithmeticOverflow
	}
	return d, nil
}

// MulInt64 returns a * b with overflow checking.
func MulInt64(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, ErrArithmeticOverflow
	}
	return p, nil
}

// BinaryOp enumerates binary operators of the expression language.
type BinaryOp uint8

const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpConcat
	OpLike
)

func (op BinaryOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpConcat:
		return "||"
	case OpLike:
		return "LIKE"
	}
	return "?"
}

// IsComparison reports whether op is one of the six comparison operators.
func (op BinaryOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// Apply evaluates a binary operator with SQL three-valued semantics:
// any NULL operand yields NULL, except AND/OR which follow Kleene logic.
func Apply(op BinaryOp, a, b Value) (Value, error) {
	switch op {
	case OpAnd:
		return and3(a, b), nil
	case OpOr:
		return or3(a, b), nil
	}
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return arith(op, a, b)
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		c, ok := Compare(a, b)
		if !ok {
			return Null, nil
		}
		return NewBool(cmpHolds(op, c)), nil
	case OpConcat:
		return NewString(a.Display() + b.Display()), nil
	case OpLike:
		if a.Kind() != KindString || b.Kind() != KindString {
			return Null, nil
		}
		return NewBool(Like(a.Str(), b.Str())), nil
	}
	return Null, fmt.Errorf("sqltypes: unsupported operator %v", op)
}

func cmpHolds(op BinaryOp, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

func arith(op BinaryOp, a, b Value) (Value, error) {
	// DATE +/- INT yields DATE (day arithmetic); DATE - DATE yields INT days.
	if a.Kind() == KindDate || b.Kind() == KindDate {
		return dateArith(op, a, b)
	}
	if a.Kind() == KindInt && b.Kind() == KindInt {
		ai, bi := a.Int(), b.Int()
		switch op {
		case OpAdd:
			s, err := AddInt64(ai, bi)
			if err != nil {
				return Null, err
			}
			return NewInt(s), nil
		case OpSub:
			d, err := SubInt64(ai, bi)
			if err != nil {
				return Null, err
			}
			return NewInt(d), nil
		case OpMul:
			p, err := MulInt64(ai, bi)
			if err != nil {
				return Null, err
			}
			return NewInt(p), nil
		case OpDiv:
			if bi == 0 {
				return Null, fmt.Errorf("sqltypes: division by zero")
			}
			if ai == math.MinInt64 && bi == -1 {
				return Null, ErrArithmeticOverflow
			}
			return NewInt(ai / bi), nil
		case OpMod:
			if bi == 0 {
				return Null, fmt.Errorf("sqltypes: division by zero")
			}
			return NewInt(ai % bi), nil
		}
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok || !bok {
		return Null, fmt.Errorf("sqltypes: %v not defined for %s and %s", op, a.Kind(), b.Kind())
	}
	switch op {
	case OpAdd:
		return NewFloat(af + bf), nil
	case OpSub:
		return NewFloat(af - bf), nil
	case OpMul:
		return NewFloat(af * bf), nil
	case OpDiv:
		if bf == 0 {
			return Null, fmt.Errorf("sqltypes: division by zero")
		}
		return NewFloat(af / bf), nil
	case OpMod:
		bi := int64(bf)
		if bi == 0 {
			return Null, fmt.Errorf("sqltypes: division by zero")
		}
		return NewInt(int64(af) % bi), nil
	}
	return Null, fmt.Errorf("sqltypes: unsupported arithmetic %v", op)
}

func dateArith(op BinaryOp, a, b Value) (Value, error) {
	switch {
	case a.Kind() == KindDate && b.Kind() == KindInt:
		switch op {
		case OpAdd:
			return NewDate(a.Int() + b.Int()), nil
		case OpSub:
			return NewDate(a.Int() - b.Int()), nil
		}
	case a.Kind() == KindInt && b.Kind() == KindDate && op == OpAdd:
		return NewDate(a.Int() + b.Int()), nil
	case a.Kind() == KindDate && b.Kind() == KindDate && op == OpSub:
		return NewInt(a.Int() - b.Int()), nil
	}
	return Null, fmt.Errorf("sqltypes: %v not defined for %s and %s", op, a.Kind(), b.Kind())
}

// and3 implements Kleene AND: FALSE dominates NULL.
func and3(a, b Value) Value {
	af, at := boolState(a)
	bf, bt := boolState(b)
	if af || bf {
		return NewBool(false)
	}
	if at && bt {
		return NewBool(true)
	}
	return Null
}

// or3 implements Kleene OR: TRUE dominates NULL.
func or3(a, b Value) Value {
	af, at := boolState(a)
	bf, bt := boolState(b)
	if at || bt {
		return NewBool(true)
	}
	if af && bf {
		return NewBool(false)
	}
	return Null
}

// boolState reports (isFalse, isTrue); NULL and non-bools are (false,false).
func boolState(v Value) (isFalse, isTrue bool) {
	if v.Kind() != KindBool {
		return false, false
	}
	if v.Bool() {
		return false, true
	}
	return true, false
}

// Negate returns the arithmetic negation of v (NULL for NULL).
func Negate(v Value) (Value, error) {
	switch v.Kind() {
	case KindNull:
		return Null, nil
	case KindInt:
		if v.Int() == math.MinInt64 {
			return Null, ErrArithmeticOverflow
		}
		return NewInt(-v.Int()), nil
	case KindFloat:
		return NewFloat(-v.Float()), nil
	}
	return Null, fmt.Errorf("sqltypes: cannot negate %s", v.Kind())
}

// Not returns Kleene NOT of v.
func Not(v Value) Value {
	if v.Kind() != KindBool {
		return Null
	}
	return NewBool(!v.Bool())
}

// Like implements SQL LIKE with % (any run) and _ (any one char) wildcards,
// case-insensitively (matching typical default collations).
func Like(s, pattern string) bool {
	return likeMatch(strings.ToLower(s), strings.ToLower(pattern))
}

func likeMatch(s, p string) bool {
	// Dynamic-programming free two-pointer matcher with backtracking on %.
	var si, pi int
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, ss = pi, si
			pi++
		case star != -1:
			pi = star + 1
			ss++
			si = ss
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
