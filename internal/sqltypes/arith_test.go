package sqltypes

import (
	"testing"
	"testing/quick"
)

func mustApply(t *testing.T, op BinaryOp, a, b Value) Value {
	t.Helper()
	v, err := Apply(op, a, b)
	if err != nil {
		t.Fatalf("Apply(%v, %v, %v): %v", op, a, b, err)
	}
	return v
}

func TestIntArithmetic(t *testing.T) {
	if v := mustApply(t, OpAdd, NewInt(2), NewInt(3)); v.Int() != 5 {
		t.Errorf("2+3 = %v", v)
	}
	if v := mustApply(t, OpSub, NewInt(2), NewInt(3)); v.Int() != -1 {
		t.Errorf("2-3 = %v", v)
	}
	if v := mustApply(t, OpMul, NewInt(4), NewInt(3)); v.Int() != 12 {
		t.Errorf("4*3 = %v", v)
	}
	if v := mustApply(t, OpDiv, NewInt(7), NewInt(2)); v.Int() != 3 {
		t.Errorf("7/2 = %v (integer division)", v)
	}
	if v := mustApply(t, OpMod, NewInt(7), NewInt(2)); v.Int() != 1 {
		t.Errorf("7%%2 = %v", v)
	}
}

func TestMixedArithmeticPromotesToFloat(t *testing.T) {
	v := mustApply(t, OpDiv, NewInt(7), NewFloat(2))
	if v.Kind() != KindFloat || v.Float() != 3.5 {
		t.Errorf("7/2.0 = %v", v)
	}
	v = mustApply(t, OpMul, NewFloat(1.5), NewInt(2))
	if v.Float() != 3 {
		t.Errorf("1.5*2 = %v", v)
	}
}

func TestDivisionByZero(t *testing.T) {
	if _, err := Apply(OpDiv, NewInt(1), NewInt(0)); err == nil {
		t.Fatal("int div by zero must error")
	}
	if _, err := Apply(OpDiv, NewFloat(1), NewFloat(0)); err == nil {
		t.Fatal("float div by zero must error")
	}
	if _, err := Apply(OpMod, NewInt(1), NewInt(0)); err == nil {
		t.Fatal("mod by zero must error")
	}
}

func TestNullPropagation(t *testing.T) {
	for _, op := range []BinaryOp{OpAdd, OpSub, OpMul, OpDiv, OpEq, OpLt, OpConcat, OpLike} {
		if v := mustApply(t, op, Null, NewInt(1)); !v.IsNull() {
			t.Errorf("%v with NULL lhs = %v", op, v)
		}
		if v := mustApply(t, op, NewInt(1), Null); !v.IsNull() {
			t.Errorf("%v with NULL rhs = %v", op, v)
		}
	}
}

func TestKleeneLogic(t *testing.T) {
	tr, fa := NewBool(true), NewBool(false)
	// FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
	if v := mustApply(t, OpAnd, fa, Null); !v.Truthy() == false && !v.IsNull() {
		t.Errorf("FALSE AND NULL = %v", v)
	}
	if v := mustApply(t, OpAnd, fa, Null); v.IsNull() || v.Bool() {
		t.Errorf("FALSE AND NULL = %v, want FALSE", v)
	}
	if v := mustApply(t, OpAnd, tr, Null); !v.IsNull() {
		t.Errorf("TRUE AND NULL = %v, want NULL", v)
	}
	// TRUE OR NULL = TRUE; FALSE OR NULL = NULL.
	if v := mustApply(t, OpOr, tr, Null); v.IsNull() || !v.Bool() {
		t.Errorf("TRUE OR NULL = %v, want TRUE", v)
	}
	if v := mustApply(t, OpOr, fa, Null); !v.IsNull() {
		t.Errorf("FALSE OR NULL = %v, want NULL", v)
	}
	if v := Not(Null); !v.IsNull() {
		t.Errorf("NOT NULL = %v", v)
	}
	if v := Not(tr); v.Bool() {
		t.Errorf("NOT TRUE = %v", v)
	}
}

func TestComparisonOps(t *testing.T) {
	cases := []struct {
		op   BinaryOp
		a, b int64
		want bool
	}{
		{OpEq, 1, 1, true}, {OpEq, 1, 2, false},
		{OpNe, 1, 2, true}, {OpNe, 2, 2, false},
		{OpLt, 1, 2, true}, {OpLt, 2, 2, false},
		{OpLe, 2, 2, true}, {OpLe, 3, 2, false},
		{OpGt, 3, 2, true}, {OpGt, 2, 2, false},
		{OpGe, 2, 2, true}, {OpGe, 1, 2, false},
	}
	for _, c := range cases {
		v := mustApply(t, c.op, NewInt(c.a), NewInt(c.b))
		if v.Bool() != c.want {
			t.Errorf("%d %v %d = %v, want %v", c.a, c.op, c.b, v, c.want)
		}
	}
}

func TestDateArithmetic(t *testing.T) {
	d := MustDate("1995-01-01")
	v := mustApply(t, OpAdd, d, NewInt(31))
	if v.DateString() != "1995-02-01" {
		t.Errorf("date+31 = %v", v.DateString())
	}
	v = mustApply(t, OpSub, MustDate("1995-02-01"), MustDate("1995-01-01"))
	if v.Kind() != KindInt || v.Int() != 31 {
		t.Errorf("date-date = %v", v)
	}
	if _, err := Apply(OpMul, d, NewInt(2)); err == nil {
		t.Fatal("date*int must error")
	}
}

func TestConcat(t *testing.T) {
	v := mustApply(t, OpConcat, NewString("a"), NewString("b"))
	if v.Str() != "ab" {
		t.Errorf("concat = %v", v)
	}
	v = mustApply(t, OpConcat, NewString("n="), NewInt(3))
	if v.Str() != "n=3" {
		t.Errorf("string||int = %v", v)
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"PROMO BURNISHED", "PROMO%", true},
		{"STANDARD", "PROMO%", false},
		{"special requests", "%special%requests%", true},
		{"special orders", "%special%requests%", false},
		{"abc", "a_c", true},
		{"abbc", "a_c", false},
		{"", "%", true},
		{"", "", true},
		{"x", "", false},
		{"Brand#12", "brand#1_", true}, // case-insensitive
		{"aXbYc", "a%b%c", true},
	}
	for _, c := range cases {
		if got := Like(c.s, c.p); got != c.want {
			t.Errorf("Like(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestNegate(t *testing.T) {
	if v, _ := Negate(NewInt(5)); v.Int() != -5 {
		t.Errorf("-5 = %v", v)
	}
	if v, _ := Negate(NewFloat(2.5)); v.Float() != -2.5 {
		t.Errorf("-2.5 = %v", v)
	}
	if v, _ := Negate(Null); !v.IsNull() {
		t.Errorf("-NULL = %v", v)
	}
	if _, err := Negate(NewString("x")); err == nil {
		t.Fatal("negating a string must error")
	}
}

// Property: a+b == b+a and (a+b)-b == a for random ints (commutativity and
// inverse), exercising Apply end to end.
func TestArithmeticProperties(t *testing.T) {
	f := func(a, b int32) bool {
		va, vb := NewInt(int64(a)), NewInt(int64(b))
		s1, err1 := Apply(OpAdd, va, vb)
		s2, err2 := Apply(OpAdd, vb, va)
		if err1 != nil || err2 != nil || !Equal(s1, s2) {
			return false
		}
		d, err := Apply(OpSub, s1, vb)
		return err == nil && Equal(d, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: comparison trichotomy — exactly one of <, =, > holds.
func TestTrichotomyProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		lt := mustTruthy(Apply(OpLt, va, vb))
		eq := mustTruthy(Apply(OpEq, va, vb))
		gt := mustTruthy(Apply(OpGt, va, vb))
		n := 0
		for _, x := range []bool{lt, eq, gt} {
			if x {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mustTruthy(v Value, err error) bool {
	if err != nil {
		panic(err)
	}
	return v.Truthy()
}

func TestBinaryOpString(t *testing.T) {
	if OpAdd.String() != "+" || OpNe.String() != "<>" || OpAnd.String() != "AND" {
		t.Fatal("operator rendering broken")
	}
	if !OpLe.IsComparison() || OpAdd.IsComparison() {
		t.Fatal("IsComparison broken")
	}
}
