// Package sqltypes defines the SQL value model used throughout the engine:
// runtime values with NULL-aware (three-valued) comparison and arithmetic,
// and static type descriptors for columns, variables, and parameters.
package sqltypes

import (
	"fmt"
	"strings"
)

// Kind enumerates the runtime kinds a Value can take.
type Kind uint8

const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate  // days since 1970-01-01
	KindTuple // composite value, used for multi-attribute aggregate results
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindDate:
		return "DATE"
	case KindTuple:
		return "TUPLE"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// TypeID enumerates the declared SQL types of the dialect.
type TypeID uint8

const (
	TUnknown TypeID = iota
	TBit            // boolean
	TInt
	TBigInt
	TFloat
	TDecimal // DECIMAL(p,s); evaluated as float64
	TChar    // CHAR(n)
	TVarChar // VARCHAR(n)
	TDate
	TTuple
)

// Type is a static SQL type descriptor.
type Type struct {
	ID    TypeID
	Prec  int // precision for DECIMAL, length for CHAR/VARCHAR
	Scale int // scale for DECIMAL
}

// Common pre-built type descriptors.
var (
	Bit     = Type{ID: TBit}
	Int     = Type{ID: TInt}
	BigInt  = Type{ID: TBigInt}
	Float   = Type{ID: TFloat}
	Date    = Type{ID: TDate}
	Unknown = Type{ID: TUnknown}
)

// Decimal returns a DECIMAL(p,s) type descriptor.
func Decimal(p, s int) Type { return Type{ID: TDecimal, Prec: p, Scale: s} }

// Char returns a CHAR(n) type descriptor.
func Char(n int) Type { return Type{ID: TChar, Prec: n} }

// VarChar returns a VARCHAR(n) type descriptor.
func VarChar(n int) Type { return Type{ID: TVarChar, Prec: n} }

// Kind maps the declared type to the runtime kind of its values.
func (t Type) Kind() Kind {
	switch t.ID {
	case TBit:
		return KindBool
	case TInt, TBigInt:
		return KindInt
	case TFloat, TDecimal:
		return KindFloat
	case TChar, TVarChar:
		return KindString
	case TDate:
		return KindDate
	case TTuple:
		return KindTuple
	default:
		return KindNull
	}
}

// String renders the type in SQL syntax.
func (t Type) String() string {
	switch t.ID {
	case TBit:
		return "BIT"
	case TInt:
		return "INT"
	case TBigInt:
		return "BIGINT"
	case TFloat:
		return "FLOAT"
	case TDecimal:
		return fmt.Sprintf("DECIMAL(%d,%d)", t.Prec, t.Scale)
	case TChar:
		return fmt.Sprintf("CHAR(%d)", t.Prec)
	case TVarChar:
		return fmt.Sprintf("VARCHAR(%d)", t.Prec)
	case TDate:
		return "DATE"
	case TTuple:
		return "TUPLE"
	default:
		return "UNKNOWN"
	}
}

// ParseType parses a SQL type name (with optional precision arguments) into
// a Type. The name must already be upper-cased by the caller's lexer; this
// function upper-cases defensively anyway.
func ParseType(name string, args ...int) (Type, error) {
	switch strings.ToUpper(name) {
	case "BIT", "BOOL", "BOOLEAN":
		return Bit, nil
	case "INT", "INTEGER", "SMALLINT", "TINYINT":
		return Int, nil
	case "BIGINT":
		return BigInt, nil
	case "FLOAT", "REAL", "DOUBLE":
		return Float, nil
	case "DECIMAL", "NUMERIC", "MONEY":
		p, s := 18, 0
		if len(args) > 0 {
			p = args[0]
		}
		if len(args) > 1 {
			s = args[1]
		}
		return Decimal(p, s), nil
	case "CHAR", "NCHAR":
		n := 1
		if len(args) > 0 {
			n = args[0]
		}
		return Char(n), nil
	case "VARCHAR", "NVARCHAR", "TEXT":
		n := 255
		if len(args) > 0 {
			n = args[0]
		}
		return VarChar(n), nil
	case "DATE", "DATETIME":
		return Date, nil
	case "TUPLE":
		return Type{ID: TTuple}, nil
	default:
		return Unknown, fmt.Errorf("sqltypes: unknown type %q", name)
	}
}
