package sqltypes

import (
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
	"strings"
	"time"
)

// Value is a runtime SQL value. The zero Value is NULL.
//
// Values are small (one word of kind/ints/floats plus a string header and a
// slice header) and are passed by value everywhere; rows are []Value.
type Value struct {
	kind Kind
	i    int64   // KindBool (0/1), KindInt, KindDate
	f    float64 // KindFloat
	s    string  // KindString
	t    []Value // KindTuple
}

// Null is the SQL NULL value.
var Null = Value{}

// NewBool returns a BOOL value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewInt returns an INT value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a STRING value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewDate returns a DATE value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{kind: KindDate, i: days} }

// NewTuple returns a TUPLE value wrapping vs. The slice is not copied.
func NewTuple(vs []Value) Value { return Value{kind: KindTuple, t: vs} }

// ParseDate parses 'YYYY-MM-DD' into a DATE value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("sqltypes: bad date %q: %w", s, err)
	}
	return NewDate(t.Unix() / 86400), nil
}

// MustDate parses 'YYYY-MM-DD' and panics on error; for tests and generators.
func MustDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload; valid only when Kind()==KindBool.
func (v Value) Bool() bool { return v.i != 0 }

// Int returns the integer payload; valid for KindInt and KindDate.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload; valid only when Kind()==KindFloat.
func (v Value) Float() float64 { return v.f }

// Str returns the string payload; valid only when Kind()==KindString.
func (v Value) Str() string { return v.s }

// Tuple returns the tuple payload; valid only when Kind()==KindTuple.
func (v Value) Tuple() []Value { return v.t }

// AsFloat coerces numeric values to float64. NULL and non-numerics yield 0
// with ok=false.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	case KindBool:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// AsInt coerces numeric values to int64 (floats truncate toward zero).
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt, KindBool, KindDate:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	default:
		return 0, false
	}
}

// Truthy reports whether v is a non-NULL true boolean. SQL WHERE semantics:
// NULL and false both reject.
func (v Value) Truthy() bool { return v.kind == KindBool && v.i != 0 }

// String renders the value in SQL literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindDate:
		return "'" + v.DateString() + "'"
	case KindTuple:
		parts := make([]string, len(v.t))
		for i, e := range v.t {
			parts[i] = e.String()
		}
		return "(" + strings.Join(parts, ", ") + ")"
	}
	return "?"
}

// DateString renders a DATE value as YYYY-MM-DD.
func (v Value) DateString() string {
	return time.Unix(v.i*86400, 0).UTC().Format("2006-01-02")
}

// Display renders the value for result output (strings unquoted).
func (v Value) Display() string {
	switch v.kind {
	case KindString:
		return v.s
	case KindDate:
		return v.DateString()
	case KindFloat:
		return strconv.FormatFloat(v.f, 'f', -1, 64)
	default:
		return v.String()
	}
}

// CoerceTo converts v to the runtime kind of the declared type t, following
// SQL assignment semantics. NULL stays NULL. Returns an error for impossible
// conversions.
func (v Value) CoerceTo(t Type) (Value, error) {
	if v.kind == KindNull {
		return Null, nil
	}
	switch t.Kind() {
	case KindBool:
		switch v.kind {
		case KindBool:
			return v, nil
		case KindInt:
			return NewBool(v.i != 0), nil
		case KindFloat:
			return NewBool(v.f != 0), nil
		}
	case KindInt:
		if i, ok := v.AsInt(); ok {
			return NewInt(i), nil
		}
		if v.kind == KindString {
			i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err == nil {
				return NewInt(i), nil
			}
		}
	case KindFloat:
		if f, ok := v.AsFloat(); ok {
			return NewFloat(f), nil
		}
		if v.kind == KindString {
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err == nil {
				return NewFloat(f), nil
			}
		}
	case KindString:
		s := v.Display()
		if t.Prec > 0 && len(s) > t.Prec {
			s = s[:t.Prec]
		}
		return NewString(s), nil
	case KindDate:
		switch v.kind {
		case KindDate:
			return v, nil
		case KindString:
			return ParseDate(v.s)
		case KindInt:
			return NewDate(v.i), nil
		}
	case KindTuple:
		if v.kind == KindTuple {
			return v, nil
		}
		return NewTuple([]Value{v}), nil
	}
	return Null, fmt.Errorf("sqltypes: cannot coerce %s to %s", v.kind, t)
}

// Compare compares two values, returning (-1|0|1, true) or (0, false) when
// either side is NULL or the kinds are incomparable. Ints and floats compare
// numerically; dates compare as day numbers; strings compare bytewise.
func Compare(a, b Value) (int, bool) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, false
	}
	switch {
	case a.kind == KindString && b.kind == KindString:
		return strings.Compare(a.s, b.s), true
	case a.kind == KindDate && b.kind == KindDate:
		return cmpInt(a.i, b.i), true
	case a.kind == KindDate && b.kind == KindString:
		// SQL-style implicit coercion of date-shaped strings.
		if bv, err := ParseDate(b.s); err == nil {
			return cmpInt(a.i, bv.i), true
		}
		return 0, false
	case a.kind == KindString && b.kind == KindDate:
		if av, err := ParseDate(a.s); err == nil {
			return cmpInt(av.i, b.i), true
		}
		return 0, false
	case a.kind == KindBool && b.kind == KindBool:
		return cmpInt(a.i, b.i), true
	case a.kind == KindInt && b.kind == KindInt:
		return cmpInt(a.i, b.i), true
	case a.kind == KindTuple && b.kind == KindTuple:
		n := len(a.t)
		if len(b.t) < n {
			n = len(b.t)
		}
		for i := 0; i < n; i++ {
			if c, ok := Compare(a.t[i], b.t[i]); !ok {
				return 0, false
			} else if c != 0 {
				return c, true
			}
		}
		return cmpInt(int64(len(a.t)), int64(len(b.t))), true
	default:
		af, aok := a.AsFloat()
		bf, bok := b.AsFloat()
		if !aok || !bok {
			return 0, false
		}
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports strict SQL equality: NULL = anything is not equal (returns
// false), matching three-valued logic collapsed to boolean for hashing and
// grouping purposes use GroupEqual instead.
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// GroupEqual reports equality under grouping semantics, where NULLs compare
// equal to each other (as GROUP BY treats them). Tuples compare element-wise
// with the same NULL-safe rule.
func GroupEqual(a, b Value) bool {
	if a.kind == KindNull && b.kind == KindNull {
		return true
	}
	if a.kind == KindTuple && b.kind == KindTuple {
		return RowsGroupEqual(a.t, b.t)
	}
	return Equal(a, b)
}

var hashSeed = maphash.MakeSeed()

// Hash returns a hash of v suitable for hash joins and hash aggregation.
// Values that are GroupEqual hash identically (ints and equal floats share
// a representation).
func Hash(v Value) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	switch v.kind {
	case KindNull:
		h.WriteByte(0)
	case KindBool:
		h.WriteByte(1)
		h.WriteByte(byte(v.i))
	case KindInt, KindDate:
		writeFloatHash(&h, float64(v.i))
	case KindFloat:
		writeFloatHash(&h, v.f)
	case KindString:
		h.WriteByte(3)
		h.WriteString(v.s)
	case KindTuple:
		h.WriteByte(4)
		for _, e := range v.t {
			sub := Hash(e)
			var buf [8]byte
			for i := 0; i < 8; i++ {
				buf[i] = byte(sub >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// writeFloatHash writes a canonical numeric representation so that
// NewInt(3) and NewFloat(3) hash identically (they compare equal).
func writeFloatHash(h *maphash.Hash, f float64) {
	h.WriteByte(2)
	bits := math.Float64bits(f)
	if f == 0 { // normalize -0
		bits = 0
	}
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(bits >> (8 * i))
	}
	h.Write(buf[:])
}

// HashRow hashes a slice of values (a row or a grouping key).
func HashRow(vs []Value) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	for _, v := range vs {
		sub := Hash(v)
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(sub >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// RowsGroupEqual reports whether two rows are equal under grouping semantics.
func RowsGroupEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !GroupEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}
