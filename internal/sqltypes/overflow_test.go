package sqltypes

import (
	"errors"
	"math"
	"testing"
)

func TestCheckedInt64Helpers(t *testing.T) {
	okCases := []struct {
		fn      func(a, b int64) (int64, error)
		a, b, w int64
	}{
		{AddInt64, math.MaxInt64 - 1, 1, math.MaxInt64},
		{AddInt64, math.MinInt64 + 1, -1, math.MinInt64},
		{AddInt64, math.MaxInt64, math.MinInt64, -1},
		{SubInt64, math.MinInt64 + 1, 1, math.MinInt64},
		{SubInt64, math.MaxInt64, math.MaxInt64, 0},
		{SubInt64, -1, math.MaxInt64, math.MinInt64},
		{MulInt64, math.MaxInt64, 1, math.MaxInt64},
		{MulInt64, math.MinInt64, 1, math.MinInt64},
		{MulInt64, math.MaxInt64 / 2, 2, math.MaxInt64 - 1},
		{MulInt64, 0, math.MinInt64, 0},
	}
	for _, c := range okCases {
		got, err := c.fn(c.a, c.b)
		if err != nil || got != c.w {
			t.Errorf("checked(%d, %d) = %d, %v; want %d", c.a, c.b, got, err, c.w)
		}
	}
	overflowCases := []struct {
		fn   func(a, b int64) (int64, error)
		a, b int64
	}{
		{AddInt64, math.MaxInt64, 1},
		{AddInt64, math.MinInt64, -1},
		{SubInt64, math.MinInt64, 1},
		{SubInt64, 0, math.MinInt64},
		{MulInt64, math.MaxInt64, 2},
		{MulInt64, math.MinInt64, -1},
		{MulInt64, -1, math.MinInt64},
		{MulInt64, math.MaxInt64/2 + 1, 2},
	}
	for _, c := range overflowCases {
		if _, err := c.fn(c.a, c.b); !errors.Is(err, ErrArithmeticOverflow) {
			t.Errorf("checked(%d, %d): want ErrArithmeticOverflow, got %v", c.a, c.b, err)
		}
	}
}

func TestApplyIntOverflow(t *testing.T) {
	cases := []struct {
		op   BinaryOp
		a, b int64
	}{
		{OpAdd, math.MaxInt64, 1},
		{OpAdd, math.MinInt64, -1},
		{OpSub, math.MinInt64, 1},
		{OpMul, math.MaxInt64, 2},
		{OpMul, math.MinInt64, -1},
		{OpDiv, math.MinInt64, -1},
	}
	for _, c := range cases {
		if _, err := Apply(c.op, NewInt(c.a), NewInt(c.b)); !errors.Is(err, ErrArithmeticOverflow) {
			t.Errorf("Apply(%v, %d, %d): want ErrArithmeticOverflow, got %v", c.op, c.a, c.b, err)
		}
	}
	// Boundary values that fit must not be rejected.
	if v := mustApply(t, OpAdd, NewInt(math.MaxInt64-1), NewInt(1)); v.Int() != math.MaxInt64 {
		t.Errorf("MaxInt64-1 + 1 = %v", v)
	}
	if v := mustApply(t, OpMul, NewInt(math.MinInt64/2), NewInt(2)); v.Int() != math.MinInt64 {
		t.Errorf("MinInt64/2 * 2 = %v", v)
	}
	// Float arithmetic is unaffected: the same magnitudes go through IEEE754.
	if v := mustApply(t, OpAdd, NewFloat(math.MaxInt64), NewInt(1)); v.Kind() != KindFloat {
		t.Errorf("float add should not overflow-check: %v", v)
	}
}

func TestNegateOverflow(t *testing.T) {
	if _, err := Negate(NewInt(math.MinInt64)); !errors.Is(err, ErrArithmeticOverflow) {
		t.Fatalf("Negate(MinInt64): want ErrArithmeticOverflow, got %v", err)
	}
	v, err := Negate(NewInt(math.MinInt64 + 1))
	if err != nil || v.Int() != math.MaxInt64 {
		t.Fatalf("Negate(MinInt64+1) = %v, %v", v, err)
	}
}
