package sqltypes

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNullBasics(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null should be null")
	}
	var zero Value
	if !zero.IsNull() {
		t.Fatal("zero Value should be NULL")
	}
	if Null.Truthy() {
		t.Fatal("NULL must not be truthy")
	}
	if got := Null.String(); got != "NULL" {
		t.Fatalf("String() = %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{NewBool(true), KindBool},
		{NewInt(42), KindInt},
		{NewFloat(2.5), KindFloat},
		{NewString("hi"), KindString},
		{NewDate(19000), KindDate},
		{NewTuple([]Value{NewInt(1)}), KindTuple},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("bool payload broken")
	}
	if NewInt(42).Int() != 42 {
		t.Error("int payload broken")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("float payload broken")
	}
	if NewString("hi").Str() != "hi" {
		t.Error("string payload broken")
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("1995-03-15")
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != KindDate {
		t.Fatalf("kind = %v", v.Kind())
	}
	if got := v.DateString(); got != "1995-03-15" {
		t.Fatalf("roundtrip = %q", got)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Fatal("expected error")
	}
	// Epoch sanity.
	if MustDate("1970-01-01").Int() != 0 {
		t.Fatal("epoch should be day 0")
	}
	if MustDate("1970-01-02").Int() != 1 {
		t.Fatal("epoch+1 should be day 1")
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	c, ok := Compare(NewInt(3), NewFloat(3.0))
	if !ok || c != 0 {
		t.Fatalf("3 vs 3.0 = (%d,%v)", c, ok)
	}
	c, ok = Compare(NewInt(3), NewFloat(3.5))
	if !ok || c != -1 {
		t.Fatalf("3 vs 3.5 = (%d,%v)", c, ok)
	}
	if _, ok := Compare(Null, NewInt(1)); ok {
		t.Fatal("NULL comparisons must be unknown")
	}
	if _, ok := Compare(NewInt(1), NewString("1")); ok {
		t.Fatal("int vs string must be incomparable")
	}
}

func TestCompareTuples(t *testing.T) {
	a := NewTuple([]Value{NewInt(1), NewString("a")})
	b := NewTuple([]Value{NewInt(1), NewString("b")})
	if c, ok := Compare(a, b); !ok || c != -1 {
		t.Fatalf("tuple compare = (%d,%v)", c, ok)
	}
	short := NewTuple([]Value{NewInt(1)})
	if c, ok := Compare(short, a); !ok || c != -1 {
		t.Fatalf("prefix tuple compare = (%d,%v)", c, ok)
	}
}

func TestGroupEqualNulls(t *testing.T) {
	if Equal(Null, Null) {
		t.Fatal("Equal(NULL,NULL) must be false")
	}
	if !GroupEqual(Null, Null) {
		t.Fatal("GroupEqual(NULL,NULL) must be true")
	}
	if GroupEqual(Null, NewInt(0)) {
		t.Fatal("GroupEqual(NULL,0) must be false")
	}
}

func TestHashConsistentWithGroupEqual(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(7), NewFloat(7)},
		{Null, Null},
		{NewString("x"), NewString("x")},
		{NewDate(5), NewInt(5)}, // dates compare equal to ints numerically
		{NewTuple([]Value{NewInt(1), Null}), NewTuple([]Value{NewFloat(1), Null})},
	}
	for _, p := range pairs {
		if GroupEqual(p[0], p[1]) && Hash(p[0]) != Hash(p[1]) {
			t.Errorf("equal values %v and %v hash differently", p[0], p[1])
		}
	}
}

func TestCoerceTo(t *testing.T) {
	v, err := NewString("42").CoerceTo(Int)
	if err != nil || v.Int() != 42 {
		t.Fatalf("string->int: %v %v", v, err)
	}
	v, err = NewInt(3).CoerceTo(Float)
	if err != nil || v.Float() != 3 {
		t.Fatalf("int->float: %v %v", v, err)
	}
	v, err = NewString("hello world").CoerceTo(Char(5))
	if err != nil || v.Str() != "hello" {
		t.Fatalf("char truncation: %v %v", v, err)
	}
	v, err = Null.CoerceTo(Int)
	if err != nil || !v.IsNull() {
		t.Fatalf("NULL coercion must stay NULL: %v %v", v, err)
	}
	v, err = NewString("1995-06-17").CoerceTo(Date)
	if err != nil || v.DateString() != "1995-06-17" {
		t.Fatalf("string->date: %v %v", v, err)
	}
	if _, err := NewTuple(nil).CoerceTo(Int); err == nil {
		t.Fatal("tuple->int must fail")
	}
}

func TestParseTypeRoundtrip(t *testing.T) {
	cases := []struct {
		name string
		args []int
		want string
	}{
		{"int", nil, "INT"},
		{"BIGINT", nil, "BIGINT"},
		{"decimal", []int{15, 2}, "DECIMAL(15,2)"},
		{"char", []int{25}, "CHAR(25)"},
		{"varchar", []int{64}, "VARCHAR(64)"},
		{"date", nil, "DATE"},
		{"bit", nil, "BIT"},
		{"float", nil, "FLOAT"},
	}
	for _, c := range cases {
		typ, err := ParseType(c.name, c.args...)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", c.name, err)
		}
		if typ.String() != c.want {
			t.Errorf("ParseType(%q) = %s, want %s", c.name, typ, c.want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Fatal("unknown type should error")
	}
}

func TestTypeKinds(t *testing.T) {
	if Decimal(15, 2).Kind() != KindFloat {
		t.Error("decimal evaluates as float")
	}
	if Char(25).Kind() != KindString {
		t.Error("char is string-kinded")
	}
	if Bit.Kind() != KindBool {
		t.Error("bit is bool-kinded")
	}
}

// Property: Compare is antisymmetric and reflexive over random numeric values.
func TestCompareProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		c1, ok1 := Compare(va, vb)
		c2, ok2 := Compare(vb, va)
		if !ok1 || !ok2 || c1 != -c2 {
			return false
		}
		cr, okr := Compare(va, va)
		return okr && cr == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hash equality follows from group equality for random floats
// (including int/float cross-representations).
func TestHashProperty(t *testing.T) {
	f := func(x int32) bool {
		a, b := NewInt(int64(x)), NewFloat(float64(x))
		return GroupEqual(a, b) && Hash(a) == Hash(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeZeroHash(t *testing.T) {
	nz := NewFloat(math.Copysign(0, -1))
	z := NewFloat(0)
	if !GroupEqual(nz, z) || Hash(nz) != Hash(z) {
		t.Fatal("-0 and +0 must group together")
	}
}

func TestHashRowAndRowsGroupEqual(t *testing.T) {
	a := []Value{NewInt(1), Null, NewString("x")}
	b := []Value{NewFloat(1), Null, NewString("x")}
	if !RowsGroupEqual(a, b) {
		t.Fatal("rows should be group-equal")
	}
	if HashRow(a) != HashRow(b) {
		t.Fatal("group-equal rows must hash the same")
	}
	if RowsGroupEqual(a, a[:2]) {
		t.Fatal("length mismatch must not be equal")
	}
}

func TestDisplay(t *testing.T) {
	if NewString("ab").Display() != "ab" {
		t.Error("string display should be unquoted")
	}
	if NewFloat(2.5).Display() != "2.5" {
		t.Errorf("float display = %q", NewFloat(2.5).Display())
	}
	if NewString("o'brien").String() != "'o''brien'" {
		t.Errorf("literal quoting = %q", NewString("o'brien").String())
	}
}
