package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one completed span, as stored in the ring and rendered to
// JSONL and /traces.
type SpanRecord struct {
	Trace  ID
	Span   ID
	Parent ID
	Name   string
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr
}

// ring is a fixed-capacity buffer of the most recent completed spans. push
// takes the mutex only briefly (a copy into a preallocated slot), which
// keeps the enabled hot path cheap; the disabled path never reaches here.
type ring struct {
	mu      sync.Mutex
	buf     []SpanRecord
	next    uint64 // total pushes; buf index is next % len(buf)
	dropped atomic.Int64
}

func (r *ring) init(capacity int) {
	r.buf = make([]SpanRecord, capacity)
}

func (r *ring) push(rec SpanRecord) {
	r.mu.Lock()
	if r.next >= uint64(len(r.buf)) {
		r.dropped.Add(1)
	}
	r.buf[r.next%uint64(len(r.buf))] = rec
	r.next++
	r.mu.Unlock()
}

// snapshot copies the ring's live records, oldest first.
func (r *ring) snapshot() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	size := uint64(len(r.buf))
	count := n
	if count > size {
		count = size
	}
	out := make([]SpanRecord, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, r.buf[i%size])
	}
	return out
}
