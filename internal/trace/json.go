package trace

import (
	"strconv"
)

// AppendSpanJSON renders one span record as a single JSON object with a
// stable field order — the schema shared by the -trace-out JSONL stream and
// the /traces endpoint, pinned by testdata/span.golden:
//
//	{"trace":"<16-hex>","span":"<16-hex>","parent":"<16-hex>","name":...,
//	 "start_us":<unix-µs>,"dur_us":<µs>,"attrs":{...}}
//
// A root span has parent "0000000000000000". Attribute values are strings
// or integers.
func AppendSpanJSON(buf []byte, r SpanRecord) []byte {
	buf = append(buf, `{"trace":"`...)
	buf = appendHexID(buf, r.Trace)
	buf = append(buf, `","span":"`...)
	buf = appendHexID(buf, r.Span)
	buf = append(buf, `","parent":"`...)
	buf = appendHexID(buf, r.Parent)
	buf = append(buf, `","name":`...)
	buf = strconv.AppendQuote(buf, r.Name)
	buf = append(buf, `,"start_us":`...)
	buf = strconv.AppendInt(buf, r.Start.UnixMicro(), 10)
	buf = append(buf, `,"dur_us":`...)
	buf = strconv.AppendInt(buf, r.Dur.Microseconds(), 10)
	buf = append(buf, `,"attrs":{`...)
	for i, a := range r.Attrs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendQuote(buf, a.Key)
		buf = append(buf, ':')
		if a.IsInt {
			buf = strconv.AppendInt(buf, a.Int, 10)
		} else {
			buf = strconv.AppendQuote(buf, a.Str)
		}
	}
	return append(buf, `}}`...)
}

// appendHexID renders an ID as 16 lower-case hex digits.
func appendHexID(buf []byte, id ID) []byte {
	const digits = "0123456789abcdef"
	var tmp [16]byte
	v := uint64(id)
	for i := 15; i >= 0; i-- {
		tmp[i] = digits[v&0xf]
		v >>= 4
	}
	return append(buf, tmp[:]...)
}

// FormatID renders an ID the way AppendSpanJSON does (16 hex digits), for
// log lines and tests.
func FormatID(id ID) string { return string(appendHexID(nil, id)) }

// ParseID parses a 16-hex-digit ID (the inverse of FormatID).
func ParseID(s string) (ID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	return ID(v), err
}
