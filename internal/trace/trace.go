// Package trace is a lock-light distributed span tracer for the aggify
// client/server stack. A trace is a tree of spans sharing one trace ID; the
// client mints the trace ID for each driver call and the server joins it by
// reading the trace context carried in the wire frame (wire.TraceFlag), so
// one request produces one connected trace spanning client call → frame
// write/read → server dispatch → parse → plan → execute.
//
// Completed spans go to an in-memory ring of recent spans (served by the
// aggifyd -http debug listener at /traces) and, optionally, to a JSONL
// writer (aggifyd -trace-out). Local trace roots are sampling-controlled
// (aggifyd -trace-sample); joined traces are always recorded, because the
// remote end already made the sampling decision.
//
// The disabled path is free: every method is safe on a nil *Tracer, Span is
// a value type that stays on the caller's stack, and a disabled span's
// methods return before touching the clock — zero allocations and no atomic
// traffic, guarded by TestDisabledTracingZeroAllocs.
package trace

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ID identifies a trace or a span (zero means absent).
type ID uint64

// SpanContext names a position in a trace: the trace plus a parent span.
// The zero SpanContext is "not traced".
type SpanContext struct {
	Trace ID
	Span  ID
}

// Valid reports whether the context names a live trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 }

// Attr is one span attribute. Attributes are either strings or integers;
// integers render unquoted in JSON.
type Attr struct {
	Key string
	Str string
	Int int64
	// IsInt selects the integer value.
	IsInt bool
}

// String builds a string attribute.
func String(key, val string) Attr { return Attr{Key: key, Str: val} }

// Int builds an integer attribute.
func Int(key string, val int64) Attr { return Attr{Key: key, Int: val, IsInt: true} }

// maxAttrs bounds the inline attribute storage of a Span. Attributes past
// the bound are dropped (never allocated).
const maxAttrs = 8

// Config configures a Tracer.
type Config struct {
	// Sample is the fraction of locally-rooted traces to record, in [0, 1].
	// 0 disables local roots (joined traces are still recorded); 1 records
	// every local root.
	Sample float64
	// RingSpans is the capacity of the in-memory recent-span ring
	// (DefaultRingSpans when 0).
	RingSpans int
	// Out, when non-nil, receives every completed span as one JSON line.
	Out io.Writer
}

// DefaultRingSpans is the default recent-span ring capacity.
const DefaultRingSpans = 4096

// Counters is a snapshot of the tracer's lifetime counters.
type Counters struct {
	// TracesStarted counts locally-rooted traces that passed sampling.
	TracesStarted int64
	// TracesJoined counts remote trace contexts joined.
	TracesJoined int64
	// SpansRecorded counts completed spans pushed to the sinks.
	SpansRecorded int64
	// SpansDropped counts spans evicted from the ring before being read.
	SpansDropped int64
}

// Tracer records spans. The zero value is not usable; build one with New.
// A nil *Tracer is a valid always-off tracer.
type Tracer struct {
	threshold uint64 // sampling threshold in 2^64 space
	rng       atomic.Uint64

	ring ring

	mu  sync.Mutex // guards out and buf
	out io.Writer
	buf []byte

	tracesStarted atomic.Int64
	tracesJoined  atomic.Int64
	spansRecorded atomic.Int64
}

// New builds a tracer.
func New(cfg Config) *Tracer {
	n := cfg.RingSpans
	if n <= 0 {
		n = DefaultRingSpans
	}
	t := &Tracer{out: cfg.Out}
	t.ring.init(n)
	switch {
	case cfg.Sample >= 1:
		t.threshold = ^uint64(0)
	case cfg.Sample <= 0:
		t.threshold = 0
	default:
		t.threshold = uint64(cfg.Sample * float64(^uint64(0)))
	}
	t.rng.Store(uint64(time.Now().UnixNano()) | 1)
	return t
}

// next steps the tracer's xorshift64* generator (lock-free, good enough for
// sampling decisions and ID minting; never returns 0).
func (t *Tracer) next() uint64 {
	for {
		old := t.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if t.rng.CompareAndSwap(old, x) {
			v := x * 0x2545f4914f6cdd1d
			if v == 0 {
				v = 1
			}
			return v
		}
	}
}

// sampled makes one sampling decision.
func (t *Tracer) sampled() bool {
	if t.threshold == ^uint64(0) {
		return true
	}
	if t.threshold == 0 {
		return false
	}
	return t.next() < t.threshold
}

// Counters returns the lifetime counter snapshot (zero for a nil tracer).
func (t *Tracer) Counters() Counters {
	if t == nil {
		return Counters{}
	}
	return Counters{
		TracesStarted: t.tracesStarted.Load(),
		TracesJoined:  t.tracesJoined.Load(),
		SpansRecorded: t.spansRecorded.Load(),
		SpansDropped:  t.ring.dropped.Load(),
	}
}

// Span is one in-flight span. It is a value type: keep it on the stack and
// call End exactly once. The zero Span is disabled; all methods are no-ops.
type Span struct {
	tr     *Tracer
	trace  ID
	id     ID
	parent ID
	name   string
	start  time.Time
	nattrs int
	attrs  [maxAttrs]Attr
}

// StartTrace begins a locally-rooted trace, applying the sampling decision.
// The returned span is disabled when the tracer is nil or the trace was not
// sampled.
func (t *Tracer) StartTrace(name string) Span {
	if t == nil || !t.sampled() {
		return Span{}
	}
	t.tracesStarted.Add(1)
	return Span{tr: t, trace: ID(t.next()), id: ID(t.next()), name: name, start: time.Now()}
}

// JoinTrace begins a span under a remote parent (a trace context read off
// the wire). Joined traces bypass sampling: the remote end already sampled.
// Disabled when the tracer is nil or the context is zero.
func (t *Tracer) JoinTrace(parent SpanContext, name string) Span {
	if t == nil || !parent.Valid() {
		return Span{}
	}
	t.tracesJoined.Add(1)
	return Span{tr: t, trace: parent.Trace, id: ID(t.next()), parent: parent.Span, name: name, start: time.Now()}
}

// StartSpan begins a child span under a local parent context. Disabled when
// the tracer is nil or the parent is zero, so call sites need no guards.
func (t *Tracer) StartSpan(parent SpanContext, name string) Span {
	if t == nil || !parent.Valid() {
		return Span{}
	}
	return Span{tr: t, trace: parent.Trace, id: ID(t.next()), parent: parent.Span, name: name, start: time.Now()}
}

// Enabled reports whether the span records anything.
func (s *Span) Enabled() bool { return s.tr != nil }

// Context returns the span's context for parenting children (zero when
// disabled).
func (s *Span) Context() SpanContext {
	if s.tr == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id}
}

// SetAttr attaches a string attribute (dropped past the inline bound).
func (s *Span) SetAttr(key, val string) {
	if s.tr == nil || s.nattrs >= maxAttrs {
		return
	}
	s.attrs[s.nattrs] = String(key, val)
	s.nattrs++
}

// SetAttrInt attaches an integer attribute.
func (s *Span) SetAttrInt(key string, val int64) {
	if s.tr == nil || s.nattrs >= maxAttrs {
		return
	}
	s.attrs[s.nattrs] = Int(key, val)
	s.nattrs++
}

// End completes the span and pushes it to the tracer's sinks. Calling End
// on a disabled span is a no-op.
func (s *Span) End() {
	if s.tr == nil {
		return
	}
	t := s.tr
	s.tr = nil // End is once
	rec := SpanRecord{
		Trace:  s.trace,
		Span:   s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		Dur:    time.Since(s.start),
		Attrs:  append([]Attr(nil), s.attrs[:s.nattrs]...),
	}
	t.spansRecorded.Add(1)
	t.ring.push(rec)
	if t.out != nil {
		t.mu.Lock()
		t.buf = AppendSpanJSON(t.buf[:0], rec)
		t.buf = append(t.buf, '\n')
		t.out.Write(t.buf)
		t.mu.Unlock()
	}
}

// Spans returns the ring's recent spans, oldest first (nil for a nil
// tracer).
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// TraceView groups one trace's recent spans.
type TraceView struct {
	Trace ID
	Spans []SpanRecord
}

// Traces groups the ring's recent spans by trace, most recently started
// trace first.
func (t *Tracer) Traces() []TraceView {
	spans := t.Spans()
	byTrace := map[ID]int{}
	var out []TraceView
	for _, sp := range spans {
		i, ok := byTrace[sp.Trace]
		if !ok {
			i = len(out)
			byTrace[sp.Trace] = i
			out = append(out, TraceView{Trace: sp.Trace})
		}
		out[i].Spans = append(out[i].Spans, sp)
	}
	// Reverse: traces whose first ring span is most recent come first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
