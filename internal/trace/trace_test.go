package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartTraceSampleZeroRecordsNothing(t *testing.T) {
	tr := New(Config{Sample: 0})
	sp := tr.StartTrace("call")
	if sp.Enabled() {
		t.Fatal("sample=0 span is enabled")
	}
	sp.End()
	if got := len(tr.Spans()); got != 0 {
		t.Fatalf("recorded %d spans, want 0", got)
	}
	if c := tr.Counters(); c.TracesStarted != 0 || c.SpansRecorded != 0 {
		t.Fatalf("counters = %+v, want zero", c)
	}
}

func TestStartTraceSampleOneRecordsEverything(t *testing.T) {
	tr := New(Config{Sample: 1})
	for i := 0; i < 10; i++ {
		sp := tr.StartTrace("call")
		if !sp.Enabled() {
			t.Fatal("sample=1 span is disabled")
		}
		sp.End()
	}
	if got := len(tr.Spans()); got != 10 {
		t.Fatalf("recorded %d spans, want 10", got)
	}
	if c := tr.Counters(); c.TracesStarted != 10 || c.SpansRecorded != 10 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestJoinTraceBypassesSampling(t *testing.T) {
	tr := New(Config{Sample: 0})
	parent := SpanContext{Trace: 0xabc, Span: 0xdef}
	sp := tr.JoinTrace(parent, "server.dispatch")
	if !sp.Enabled() {
		t.Fatal("joined span disabled despite valid remote context")
	}
	if ctx := sp.Context(); ctx.Trace != parent.Trace {
		t.Fatalf("joined trace id = %x, want %x", ctx.Trace, parent.Trace)
	}
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Trace != parent.Trace || spans[0].Parent != parent.Span {
		t.Fatalf("spans = %+v", spans)
	}
	if c := tr.Counters(); c.TracesJoined != 1 {
		t.Fatalf("TracesJoined = %d, want 1", c.TracesJoined)
	}
}

func TestChildSpansShareTraceID(t *testing.T) {
	tr := New(Config{Sample: 1})
	root := tr.StartTrace("root")
	child := tr.StartSpan(root.Context(), "child")
	grand := tr.StartSpan(child.Context(), "grandchild")
	grand.End()
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	for _, sp := range spans {
		if sp.Trace != spans[0].Trace {
			t.Fatalf("trace ids diverge: %+v", spans)
		}
	}
	// Oldest first: grandchild ended first.
	if spans[0].Name != "grandchild" || spans[2].Name != "root" {
		t.Fatalf("order = %s,%s,%s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[2].Parent != 0 {
		t.Fatalf("root parent = %x, want 0", spans[2].Parent)
	}
	if spans[1].Parent == 0 || spans[0].Parent == 0 {
		t.Fatal("child spans lost their parents")
	}
}

func TestRingEvictsOldestAndCountsDrops(t *testing.T) {
	tr := New(Config{Sample: 1, RingSpans: 4})
	for i := 0; i < 10; i++ {
		sp := tr.StartTrace("s")
		sp.SetAttrInt("i", int64(i))
		sp.End()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	if spans[0].Attrs[0].Int != 6 || spans[3].Attrs[0].Int != 9 {
		t.Fatalf("ring window = [%d..%d], want [6..9]", spans[0].Attrs[0].Int, spans[3].Attrs[0].Int)
	}
	if c := tr.Counters(); c.SpansDropped != 6 {
		t.Fatalf("SpansDropped = %d, want 6", c.SpansDropped)
	}
}

func TestAttrOverflowDropped(t *testing.T) {
	tr := New(Config{Sample: 1})
	sp := tr.StartTrace("s")
	for i := 0; i < maxAttrs+5; i++ {
		sp.SetAttrInt("k", int64(i))
	}
	sp.End()
	spans := tr.Spans()
	if len(spans[0].Attrs) != maxAttrs {
		t.Fatalf("kept %d attrs, want %d", len(spans[0].Attrs), maxAttrs)
	}
}

func TestJSONLOutput(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{Sample: 1, Out: &buf})
	sp := tr.StartTrace("client.exec")
	sp.SetAttr("msg", "exec")
	sp.SetAttrInt("rows", 3)
	sp.End()
	line := strings.TrimSpace(buf.String())
	var obj map[string]any
	if err := json.Unmarshal([]byte(line), &obj); err != nil {
		t.Fatalf("trace-out line is not JSON: %v\n%s", err, line)
	}
	if obj["name"] != "client.exec" {
		t.Fatalf("name = %v", obj["name"])
	}
	attrs, ok := obj["attrs"].(map[string]any)
	if !ok || attrs["msg"] != "exec" || attrs["rows"] != float64(3) {
		t.Fatalf("attrs = %v", obj["attrs"])
	}
	if len(obj["trace"].(string)) != 16 || len(obj["span"].(string)) != 16 {
		t.Fatalf("ids not 16-hex: %v", line)
	}
}

// TestSpanJSONGolden pins the span JSON schema shared by -trace-out and the
// /traces endpoint to testdata/span.golden.
func TestSpanJSONGolden(t *testing.T) {
	rec := SpanRecord{
		Trace:  0x0123456789abcdef,
		Span:   0x00000000000000aa,
		Parent: 0x00000000000000bb,
		Name:   "server.dispatch",
		Start:  time.UnixMicro(1700000000000000).UTC(),
		Dur:    1500 * time.Microsecond,
		Attrs:  []Attr{String("msg", "exec"), Int("rows", 42)},
	}
	got := string(AppendSpanJSON(nil, rec)) + "\n"
	want, err := os.ReadFile("testdata/span.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("span JSON schema drifted:\n got: %s\nwant: %s", got, want)
	}
}

func TestFormatParseIDRoundTrip(t *testing.T) {
	for _, id := range []ID{1, 0xdeadbeef, ^ID(0)} {
		s := FormatID(id)
		if len(s) != 16 {
			t.Fatalf("FormatID(%x) = %q", id, s)
		}
		back, err := ParseID(s)
		if err != nil || back != id {
			t.Fatalf("ParseID(%q) = %x, %v", s, back, err)
		}
	}
}

func TestTracesGroupsByTraceMostRecentFirst(t *testing.T) {
	tr := New(Config{Sample: 1})
	a := tr.StartTrace("a")
	actx := a.Context()
	a.End()
	ac := tr.StartSpan(actx, "a.child")
	ac.End()
	b := tr.StartTrace("b")
	b.End()
	views := tr.Traces()
	if len(views) != 2 {
		t.Fatalf("got %d traces", len(views))
	}
	if views[0].Spans[0].Name != "b" {
		t.Fatalf("most recent trace first: got %q", views[0].Spans[0].Name)
	}
	if len(views[1].Spans) != 2 {
		t.Fatalf("trace a has %d spans, want 2", len(views[1].Spans))
	}
}

// TestDisabledTracingZeroAllocs is the tracing-overhead guard (run by
// scripts/ci.sh): the disabled path — nil tracer, unsampled tracer, zero
// parent — must not allocate.
func TestDisabledTracingZeroAllocs(t *testing.T) {
	var nilTracer *Tracer
	off := New(Config{Sample: 0})
	cases := map[string]func(){
		"nil tracer": func() {
			sp := nilTracer.StartTrace("x")
			sp.SetAttr("k", "v")
			sp.SetAttrInt("n", 1)
			child := nilTracer.StartSpan(sp.Context(), "y")
			child.End()
			sp.End()
		},
		"unsampled": func() {
			sp := off.StartTrace("x")
			sp.SetAttrInt("n", 1)
			sp.End()
		},
		"zero parent": func() {
			sp := off.StartSpan(SpanContext{}, "x")
			sp.End()
		},
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// TestTracerConcurrentHammer drives the tracer from many goroutines under
// -race and checks the final counters agree with the ring.
func TestTracerConcurrentHammer(t *testing.T) {
	tr := New(Config{Sample: 1, RingSpans: 64})
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := tr.StartTrace("hammer")
				child := tr.StartSpan(sp.Context(), "child")
				child.SetAttrInt("i", int64(i))
				child.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	c := tr.Counters()
	total := int64(goroutines * perG)
	if c.TracesStarted != total {
		t.Fatalf("TracesStarted = %d, want %d", c.TracesStarted, total)
	}
	if c.SpansRecorded != 2*total {
		t.Fatalf("SpansRecorded = %d, want %d", c.SpansRecorded, 2*total)
	}
	spans := tr.Spans()
	if int64(len(spans))+c.SpansDropped != c.SpansRecorded {
		t.Fatalf("ring %d + dropped %d != recorded %d", len(spans), c.SpansDropped, c.SpansRecorded)
	}
	for _, sp := range spans {
		if sp.Trace == 0 || sp.Span == 0 {
			t.Fatalf("zero id in recorded span %+v", sp)
		}
	}
}

func BenchmarkDisabledSpanNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartTrace("call")
		sp.SetAttrInt("n", int64(i))
		sp.End()
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := New(Config{Sample: 1, RingSpans: 1024})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartTrace("call")
		sp.SetAttrInt("n", int64(i))
		sp.End()
	}
}
