package engine_test

import (
	"strings"
	"testing"

	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/exec"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
)

// newDB builds an engine+session with the interpreter installed and the
// given setup script executed.
func newDB(t *testing.T, setup string) *engine.Session {
	t.Helper()
	eng := engine.New()
	interp.Install(eng)
	sess := eng.NewSession()
	if setup != "" {
		if _, err := interp.RunScript(sess, parser.MustParse(setup)); err != nil {
			t.Fatalf("setup: %v", err)
		}
	}
	return sess
}

// query runs a single SELECT and returns its rows.
func query(t *testing.T, sess *engine.Session, sql string) []exec.Row {
	t.Helper()
	stmts := parser.MustParse(sql)
	q, ok := stmts[0].(*ast.QueryStmt)
	if !ok || len(stmts) != 1 {
		t.Fatalf("not a single query: %s", sql)
	}
	_, rows, err := sess.Query(q.Query, sess.Ctx(nil, nil))
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return rows
}

const sampleDB = `
create table part (p_partkey int, p_name varchar(55), p_retail float);
create index pk_part on part(p_partkey);
create table partsupp (ps_partkey int, ps_suppkey int, ps_supplycost decimal(15,2));
create index idx_ps on partsupp(ps_partkey);
create table supplier (s_suppkey int, s_name char(25), s_nation varchar(25));
create index pk_supp on supplier(s_suppkey);
insert into part values (1, 'widget red', 10.0), (2, 'widget blue', 20.0), (3, 'gizmo green', 30.0), (4, 'lonely part', 40.0);
insert into supplier values (10, 'acme', 'FRANCE'), (11, 'bolts inc', 'GERMANY'), (12, 'cheapco', 'FRANCE');
insert into partsupp values
 (1, 10, 5.0), (1, 11, 3.5), (1, 12, 9.0),
 (2, 10, 7.0), (2, 12, 2.0),
 (3, 11, 8.0);
`

func TestBasicSelect(t *testing.T) {
	sess := newDB(t, sampleDB)
	rows := query(t, sess, "select p_partkey, p_name from part where p_retail > 15 order by p_partkey")
	if len(rows) != 3 || rows[0][0].Int() != 2 || rows[2][1].Str() != "lonely part" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestWhereLikeAndBetween(t *testing.T) {
	sess := newDB(t, sampleDB)
	rows := query(t, sess, "select count(*) from part where p_name like 'widget%'")
	if rows[0][0].Int() != 2 {
		t.Fatalf("like count = %v", rows)
	}
	rows = query(t, sess, "select count(*) from part where p_retail between 15 and 35")
	if rows[0][0].Int() != 2 {
		t.Fatalf("between count = %v", rows)
	}
}

func TestCommaJoinWithIndexSeek(t *testing.T) {
	sess := newDB(t, sampleDB)
	// The Figure 1 cursor query shape.
	rows := query(t, sess, `select ps_supplycost, s_name from partsupp, supplier
	                        where ps_partkey = 1 and ps_suppkey = s_suppkey order by ps_supplycost`)
	if len(rows) != 3 || rows[0][0].Float() != 3.5 || strings.TrimSpace(rows[0][1].Str()) != "bolts inc" {
		t.Fatalf("rows = %v", rows)
	}
	// The plan must use the partsupp index for the constant predicate.
	p, err := sess.PlanQuery(parser.MustParse(`select ps_supplycost from partsupp where ps_partkey = 1`)[0].(*ast.QueryStmt).Query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Explain.Contains("IndexSeek(partsupp.ps_partkey)") {
		t.Fatalf("expected index seek, plan:\n%s", p.Explain)
	}
}

func TestJoinOrderIndependence(t *testing.T) {
	sess := newDB(t, sampleDB)
	a := query(t, sess, `select p_name, s_name from part, partsupp, supplier
	                     where p_partkey = ps_partkey and ps_suppkey = s_suppkey order by p_name, s_name`)
	b := query(t, sess, `select p_name, s_name from supplier, part, partsupp
	                     where p_partkey = ps_partkey and ps_suppkey = s_suppkey order by p_name, s_name`)
	if len(a) != 6 || len(a) != len(b) {
		t.Fatalf("join sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i][0].Str() != b[i][0].Str() || a[i][1].Str() != b[i][1].Str() {
			t.Fatalf("row %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestExplicitJoins(t *testing.T) {
	sess := newDB(t, sampleDB)
	rows := query(t, sess, `select p.p_partkey, ps.ps_supplycost
	                        from part p join partsupp ps on p.p_partkey = ps.ps_partkey
	                        order by p.p_partkey, ps.ps_supplycost`)
	if len(rows) != 6 {
		t.Fatalf("inner join = %v", rows)
	}
	rows = query(t, sess, `select p.p_partkey, ps.ps_suppkey
	                       from part p left join partsupp ps on p.p_partkey = ps.ps_partkey
	                       order by p.p_partkey`)
	if len(rows) != 7 {
		t.Fatalf("left join should keep the lonely part: %v", rows)
	}
	last := rows[len(rows)-1]
	if last[0].Int() != 4 || !last[1].IsNull() {
		t.Fatalf("lonely part row = %v", last)
	}
}

func TestGroupByHavingOrder(t *testing.T) {
	sess := newDB(t, sampleDB)
	rows := query(t, sess, `select ps_partkey, count(*) as n, min(ps_supplycost) as lo
	                        from partsupp group by ps_partkey having count(*) > 1 order by n desc, ps_partkey`)
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
	if rows[0][0].Int() != 1 || rows[0][1].Int() != 3 || rows[0][2].Float() != 3.5 {
		t.Fatalf("group = %v", rows[0])
	}
}

func TestScalarSubqueryAndExists(t *testing.T) {
	sess := newDB(t, sampleDB)
	rows := query(t, sess, `select p_partkey,
	                          (select min(ps_supplycost) from partsupp where ps_partkey = p_partkey) as mc
	                        from part order by p_partkey`)
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][1].Float() != 3.5 || !rows[3][1].IsNull() {
		t.Fatalf("correlated subquery = %v", rows)
	}
	rows = query(t, sess, `select p_partkey from part
	                       where exists (select * from partsupp where ps_partkey = p_partkey)
	                       order by p_partkey`)
	if len(rows) != 3 {
		t.Fatalf("exists rows = %v", rows)
	}
	rows = query(t, sess, `select p_partkey from part
	                       where p_partkey in (select ps_partkey from partsupp where ps_supplycost < 4)
	                       order by p_partkey`)
	if len(rows) != 2 {
		t.Fatalf("in-subquery rows = %v", rows)
	}
}

func TestDecorrelationPlanAndResults(t *testing.T) {
	q := `select p_partkey,
	        (select count(*) from partsupp where ps_partkey = p_partkey) as n
	      from part order by p_partkey`
	sessOn := newDB(t, sampleDB)
	sessOff := newDB(t, sampleDB)
	sessOff.Opts.DisableDecorrelation = true

	pOn, err := sessOn.PlanQuery(parser.MustParse(q)[0].(*ast.QueryStmt).Query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pOn.Explain.Contains("HashJoin") || !pOn.Explain.Contains("HashAgg") {
		t.Fatalf("decorrelated plan expected, got:\n%s", pOn.Explain)
	}
	on := query(t, sessOn, q)
	off := query(t, sessOff, q)
	if len(on) != 4 || len(off) != 4 {
		t.Fatalf("row counts: %d vs %d", len(on), len(off))
	}
	for i := range on {
		for j := range on[i] {
			if !sqltypes.GroupEqual(on[i][j], off[i][j]) {
				t.Fatalf("row %d differs: %v vs %v", i, on[i], off[i])
			}
		}
	}
	// COUNT fixup: the lonely part must report 0, not NULL.
	if on[3][1].Int() != 0 {
		t.Fatalf("COUNT over empty group = %v, want 0", on[3][1])
	}
}

func TestDistinctTopUnion(t *testing.T) {
	sess := newDB(t, sampleDB)
	rows := query(t, sess, "select distinct ps_partkey from partsupp order by ps_partkey")
	if len(rows) != 3 {
		t.Fatalf("distinct = %v", rows)
	}
	rows = query(t, sess, "select top 2 p_partkey from part order by p_retail desc")
	if len(rows) != 2 || rows[0][0].Int() != 4 {
		t.Fatalf("top = %v", rows)
	}
	rows = query(t, sess, "select p_partkey from part where p_partkey = 1 union all select p_partkey from part where p_partkey > 2 order by p_partkey")
	if len(rows) != 3 || rows[2][0].Int() != 4 {
		t.Fatalf("union = %v", rows)
	}
}

func TestRecursiveCTEQuery(t *testing.T) {
	sess := newDB(t, "")
	rows := query(t, sess, `with seq(i) as (select 0 as i union all select i + 1 from seq where i < 9)
	                        select count(*), sum(i) from seq`)
	if rows[0][0].Int() != 10 || rows[0][1].Int() != 45 {
		t.Fatalf("recursive cte = %v", rows)
	}
}

func TestUDFFromQuery(t *testing.T) {
	sess := newDB(t, sampleDB+`
create function mincost(@pkey int) returns float as
begin
  declare @m float;
  set @m = (select min(ps_supplycost) from partsupp where ps_partkey = @pkey);
  return @m;
end`)
	rows := query(t, sess, "select p_partkey, mincost(p_partkey) from part order by p_partkey")
	if rows[0][1].Float() != 3.5 || rows[1][1].Float() != 2.0 || !rows[3][1].IsNull() {
		t.Fatalf("udf rows = %v", rows)
	}
}

func TestCursorLoopUDF(t *testing.T) {
	// Figure 1, almost verbatim.
	sess := newDB(t, sampleDB+`
create function getLowerBound(@pkey int) returns int as
begin
  return 3;
end
GO
create function minCostSupp(@pkey int, @lb int = -1) returns char(25) as
begin
  declare @pCost decimal(15,2);
  declare @sName char(25);
  declare @minCost decimal(15,2) = 100000;
  declare @suppName char(25);
  if (@lb = -1)
    set @lb = getLowerBound(@pkey);
  declare c1 cursor for
    select ps_supplycost, s_name from partsupp, supplier
    where ps_partkey = @pkey and ps_suppkey = s_suppkey;
  open c1;
  fetch next from c1 into @pCost, @sName;
  while @@fetch_status = 0
  begin
    if (@pCost < @minCost and @pCost >= @lb)
    begin
      set @minCost = @pCost;
      set @suppName = @sName;
    end
    fetch next from c1 into @pCost, @sName;
  end
  close c1;
  deallocate c1;
  return @suppName;
end`)
	v, err := interp.CallFunctionByName(sess, "minCostSupp", sqltypes.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	// Lower bound 3 excludes nothing for part 1 (min cost 3.5 >= 3).
	if strings.TrimSpace(v.Str()) != "bolts inc" {
		t.Fatalf("minCostSupp(1) = %q", v.Str())
	}
	// With explicit lower bound 4, cost 3.5 is excluded; min becomes 5.0.
	v, err = interp.CallFunctionByName(sess, "minCostSupp", sqltypes.NewInt(1), sqltypes.NewInt(4))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(v.Str()) != "acme" {
		t.Fatalf("minCostSupp(1, 4) = %q", v.Str())
	}
	// Cursor materialization must be visible in worktable stats.
	if sess.Stats.WorktableWrites.Load() == 0 || sess.Stats.WorktableReads.Load() == 0 {
		t.Fatal("cursor loop should have touched the worktable")
	}
	// Empty cursor: part 4 has no suppliers, result stays NULL.
	v, err = interp.CallFunctionByName(sess, "minCostSupp", sqltypes.NewInt(4))
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsNull() {
		t.Fatalf("minCostSupp(4) = %v, want NULL", v)
	}
}

func TestHandWrittenAggregateMatchesCursorLoop(t *testing.T) {
	// Figure 5's generated aggregate, registered by hand, driving the
	// Figure 7 rewritten UDF: must agree with the cursor loop for all parts.
	sess := newDB(t, sampleDB+`
create function getLowerBound(@pkey int) returns int as
begin
  return 3;
end
GO
create aggregate MinCostSuppAgg(@pCost decimal(15,2), @sName char(25), @p_minCost decimal(15,2), @p_lb int) returns char(25) as
begin
  fields (@minCost decimal(15,2), @lb int, @suppName char(25), @isInitialized bit);
  init begin
    set @isInitialized = false;
  end
  accumulate begin
    if @isInitialized = false
    begin
      set @minCost = @p_minCost;
      set @lb = @p_lb;
      set @isInitialized = true;
    end
    if (@pCost < @minCost and @pCost >= @lb)
    begin
      set @minCost = @pCost;
      set @suppName = @sName;
    end
  end
  terminate begin
    return @suppName;
  end
end
GO
create function minCostSupp2(@pkey int, @lb int = -1) returns char(25) as
begin
  declare @minCost decimal(15,2) = 100000;
  declare @suppName char(25);
  if (@lb = -1)
    set @lb = getLowerBound(@pkey);
  set @suppName = (
    select MinCostSuppAgg(Q.ps_supplycost, Q.s_name, @minCost, @lb)
    from (select ps_supplycost, s_name
          from partsupp, supplier
          where ps_partkey = @pkey and ps_suppkey = s_suppkey) Q );
  return @suppName;
end`)
	for pkey := int64(1); pkey <= 4; pkey++ {
		v, err := interp.CallFunctionByName(sess, "minCostSupp2", sqltypes.NewInt(pkey))
		if err != nil {
			t.Fatalf("part %d: %v", pkey, err)
		}
		// Lower bound 3 (from getLowerBound) excludes part 2's 2.0 offer.
		want := map[int64]string{1: "bolts inc", 2: "acme", 3: "bolts inc"}[pkey]
		got := strings.TrimSpace(v.Str())
		if pkey == 4 {
			if !v.IsNull() {
				t.Fatalf("part 4 = %v, want NULL", v)
			}
			continue
		}
		if got != want {
			t.Fatalf("part %d = %q, want %q", pkey, got, want)
		}
	}
}

func TestOrderEnforcedStreamAgg(t *testing.T) {
	sess := newDB(t, `
create table seqvals (k int, v varchar(10));
insert into seqvals values (3, 'c'), (1, 'a'), (2, 'b');
GO
create aggregate ConcatAgg(@v varchar(10)) returns varchar(100) as
begin
  fields (@acc varchar(100), @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      set @acc = '';
      set @isInitialized = true;
    end
    set @acc = @acc || @v;
  end
  terminate begin return @acc; end
end`)
	// Re-register as order-sensitive (as Aggify does for ORDER BY loops).
	src, _ := sess.Eng.AggregateSource("concatagg")
	if err := sess.Eng.RegisterAggregate(src, true); err != nil {
		t.Fatal(err)
	}
	q := parser.MustParse(`select ConcatAgg(q.v) from (select v from seqvals order by k) q option (order enforced)`)[0].(*ast.QueryStmt).Query
	p, err := sess.PlanQuery(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Explain.Contains("StreamAgg") {
		t.Fatalf("OrderEnforced must use StreamAgg:\n%s", p.Explain)
	}
	_, rows, err := sess.Query(q, sess.Ctx(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Str() != "abc" {
		t.Fatalf("ordered concat = %q, want abc", rows[0][0].Str())
	}
}

func TestProcedureWithTableVarAndTryCatch(t *testing.T) {
	sess := newDB(t, `
create table audit_log (msg varchar(100));
GO
create procedure doWork(@n int) as
begin
  declare @t table (k int, v int);
  declare @i int = 0;
  while @i < @n
  begin
    insert into @t values (@i, @i * @i);
    set @i = @i + 1;
  end
  update @t set v = v + 1 where k >= 2;
  delete from @t where k = 0;
  begin try
    declare @x int = 1 / 0;
    set @x = @x;
  end try
  begin catch
    insert into audit_log values ('caught division by zero');
  end catch
  insert into audit_log select 'sum=' || sum(v) from @t;
end`)
	if err := interp.CallProcedureByName(sess, "doWork", sqltypes.NewInt(4)); err != nil {
		t.Fatal(err)
	}
	rows := query(t, sess, "select msg from audit_log order by msg")
	if len(rows) != 2 {
		t.Fatalf("audit rows = %v", rows)
	}
	// k=1:1, k=2:5, k=3:10 => 16
	if rows[1][0].Str() != "sum=16" {
		t.Fatalf("audit = %v", rows)
	}
}

func TestBreakContinueAndForLoop(t *testing.T) {
	sess := newDB(t, `
create function sumEvensUpTo(@n int) returns int as
begin
  declare @s int = 0;
  declare @i int = 0;
  for (@i = 0; @i <= @n; @i = @i + 1)
  begin
    if @i % 2 = 1 continue;
    if @i > 100 break;
    set @s = @s + @i;
  end
  return @s;
end`)
	v, err := interp.CallFunctionByName(sess, "sumEvensUpTo", sqltypes.NewInt(10))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 30 {
		t.Fatalf("sumEvensUpTo(10) = %v, want 30", v)
	}
	v, err = interp.CallFunctionByName(sess, "sumEvensUpTo", sqltypes.NewInt(1000))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 2550 { // 0+2+...+100
		t.Fatalf("sumEvensUpTo(1000) = %v, want 2550", v)
	}
}

func TestTempTables(t *testing.T) {
	sess := newDB(t, `
create table #scratch (k int, v int);
insert into #scratch values (1, 10), (2, 20);
`)
	rows := query(t, sess, "select sum(v) from #scratch")
	if rows[0][0].Int() != 30 {
		t.Fatalf("temp table sum = %v", rows)
	}
	if _, ok := sess.Eng.Table("#scratch"); ok {
		t.Fatal("temp table must not be a global table")
	}
}

func TestNestedCursorLoops(t *testing.T) {
	sess := newDB(t, sampleDB+`
create function totalCost() returns float as
begin
  declare @pk int;
  declare @total float = 0;
  declare @cost float;
  declare outerc cursor for select p_partkey from part;
  open outerc;
  fetch next from outerc into @pk;
  while @@fetch_status = 0
  begin
    declare innerc cursor for select ps_supplycost from partsupp where ps_partkey = @pk;
    open innerc;
    fetch next from innerc into @cost;
    while @@fetch_status = 0
    begin
      set @total = @total + @cost;
      fetch next from innerc into @cost;
    end
    close innerc;
    deallocate innerc;
    fetch next from outerc into @pk;
  end
  close outerc;
  deallocate outerc;
  return @total;
end`)
	v, err := interp.CallFunctionByName(sess, "totalCost")
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 34.5 {
		t.Fatalf("totalCost = %v, want 34.5", v)
	}
}

// Note: the inner loop's FETCH sets @@fetch_status; after the inner loop
// ends it is -1, which would also terminate the outer loop in real T-SQL
// unless the outer FETCH runs first — the function above fetches the outer
// cursor at the end of the body, mirroring the standard idiom.

func TestVariablesKeepValuesAtCursorEnd(t *testing.T) {
	sess := newDB(t, sampleDB+`
create function lastKey() returns int as
begin
  declare @k int = -1;
  declare c cursor for select p_partkey from part where p_partkey < 0;
  open c;
  fetch next from c into @k;
  close c;
  deallocate c;
  return @k;
end`)
	v, err := interp.CallFunctionByName(sess, "lastKey")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != -1 {
		t.Fatalf("FETCH past end must keep variable: %v", v)
	}
}

func TestDivisionByZeroSurfacesAsError(t *testing.T) {
	sess := newDB(t, `
create function boom() returns int as
begin
  return 1 / 0;
end`)
	if _, err := interp.CallFunctionByName(sess, "boom"); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestPrintAndExec(t *testing.T) {
	sess := newDB(t, `
create procedure greet(@name varchar(20)) as
begin
  print 'hello ' || @name;
end
GO
exec greet 'world';
`)
	prints := sess.Prints()
	if len(prints) != 1 || prints[0] != "hello world" {
		t.Fatalf("prints = %v", prints)
	}
}

func TestTupleSetFromAggregate(t *testing.T) {
	sess := newDB(t, sampleDB+`
create aggregate MinMaxAgg(@c float) returns tuple as
begin
  fields (@lo float, @hi float, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      set @lo = @c; set @hi = @c; set @isInitialized = true;
    end
    if @c < @lo set @lo = @c;
    if @c > @hi set @hi = @c;
  end
  terminate begin return (select @lo, @hi); end
end
GO
create function spread(@pkey int) returns float as
begin
  declare @lo float;
  declare @hi float;
  set (@lo, @hi) = (select MinMaxAgg(ps_supplycost) from partsupp where ps_partkey = @pkey);
  return @hi - @lo;
end`)
	v, err := interp.CallFunctionByName(sess, "spread", sqltypes.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 5.5 {
		t.Fatalf("spread(1) = %v, want 5.5", v)
	}
	// Empty group: tuple of NULLs destructures to NULLs; @hi-@lo is NULL.
	v, err = interp.CallFunctionByName(sess, "spread", sqltypes.NewInt(99))
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsNull() {
		t.Fatalf("spread(99) = %v, want NULL", v)
	}
}

func TestParallelAggregationMatchesSerial(t *testing.T) {
	sess := newDB(t, sampleDB)
	serial := query(t, sess, "select ps_partkey, sum(ps_supplycost), count(*) from partsupp group by ps_partkey order by ps_partkey")
	par := sess.Eng.NewSession()
	par.Opts.Parallelism = 4
	stmts := parser.MustParse("select ps_partkey, sum(ps_supplycost), count(*) from partsupp group by ps_partkey order by ps_partkey")
	_, rows, err := par.Query(stmts[0].(*ast.QueryStmt).Query, par.Ctx(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(serial) {
		t.Fatalf("parallel %d vs serial %d", len(rows), len(serial))
	}
	for i := range rows {
		for j := range rows[i] {
			if !sqltypes.GroupEqual(rows[i][j], serial[i][j]) {
				t.Fatalf("row %d: %v vs %v", i, rows[i], serial[i])
			}
		}
	}
}

func TestLogicalReadAccounting(t *testing.T) {
	sess := newDB(t, sampleDB)
	before := sess.Stats.Snapshot()
	query(t, sess, "select count(*) from partsupp")
	delta := sess.Stats.Snapshot().Sub(before)
	if delta.LogicalReads != 6 {
		t.Fatalf("scan of 6 rows charged %d reads", delta.LogicalReads)
	}
}

func TestDateLiteralsAndFunctions(t *testing.T) {
	sess := newDB(t, `
create table events (d date, what varchar(20));
insert into events values ('1995-03-15', 'ides'), ('1995-09-01', 'school'), ('1996-01-01', 'newyear');
`)
	rows := query(t, sess, "select what from events where d >= '1995-09-01' and d < date '1996-01-01'")
	if len(rows) != 1 || rows[0][0].Str() != "school" {
		t.Fatalf("date filter = %v", rows)
	}
	rows = query(t, sess, "select year(d), month(d) from events where what = 'ides'")
	if rows[0][0].Int() != 1995 || rows[0][1].Int() != 3 {
		t.Fatalf("date parts = %v", rows)
	}
}

func TestInterruptLongRun(t *testing.T) {
	sess := newDB(t, `create table big (k int);`)
	tab, _ := sess.Eng.Table("big")
	for i := int64(0); i < 10000; i++ {
		_ = tab.Insert(nil, []sqltypes.Value{sqltypes.NewInt(i)})
	}
	ch := make(chan struct{})
	close(ch)
	sess.Interrupt = ch
	stmts := parser.MustParse("select count(*) from big b1, big b2")
	_, _, err := sess.Query(stmts[0].(*ast.QueryStmt).Query, sess.Ctx(nil, nil))
	if err != exec.ErrInterrupted {
		t.Fatalf("err = %v, want interrupted", err)
	}
}

func TestDDLErrors(t *testing.T) {
	sess := newDB(t, "create table t1 (a int);")
	if _, err := interp.RunScript(sess, parser.MustParse("create table t1 (a int);")); err == nil {
		t.Fatal("duplicate table should error")
	}
	if _, err := interp.RunScript(sess, parser.MustParse("create index i on missing(a);")); err == nil {
		t.Fatal("index on missing table should error")
	}
	if _, err := interp.RunScript(sess, parser.MustParse("create function abs(@x int) returns int as begin return @x; end")); err == nil {
		t.Fatal("shadowing a builtin function should error")
	}
}

func TestUnknownReferencesError(t *testing.T) {
	sess := newDB(t, sampleDB)
	for _, bad := range []string{
		"select nosuchcol from part",
		"select * from nosuchtable",
		"select nosuchfunc(p_partkey) from part",
		"select p_partkey from part group by p_name", // item not in GROUP BY
	} {
		stmts := parser.MustParse(bad)
		if _, _, err := sess.Query(stmts[0].(*ast.QueryStmt).Query, sess.Ctx(nil, nil)); err == nil {
			t.Errorf("query %q should fail", bad)
		}
	}
}
