package engine_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/plan"
)

// parseSelect returns the SELECT of a single-statement query script.
func parseSelect(t *testing.T, sql string) *ast.Select {
	t.Helper()
	stmts := parser.MustParse(sql)
	q, ok := stmts[0].(*ast.QueryStmt)
	if !ok || len(stmts) != 1 {
		t.Fatalf("not a single query: %s", sql)
	}
	return q.Query
}

const planCacheDB = `
create table pc (k int, v int);
create index idx_pc on pc(k) using ordered;
insert into pc values (1, 10), (2, 20), (3, 30), (4, 40), (5, 50);
`

// seedBig creates table `name` with 200 rows. On a table this size the
// cost model prefers a range seek over a scan for a narrow predicate
// (tiny tables legitimately pick the scan: log2(n)+1+sel*n beats n only
// once n is big enough).
func seedBig(t *testing.T, sess *engine.Session, name string, orderedIndex bool) {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "create table %s (k int, v int);\n", name)
	if orderedIndex {
		fmt.Fprintf(&b, "create index idx_%s on %s(k) using ordered;\n", name, name)
	}
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "insert into %s values (%d, %d);\n", name, i, i*10)
	}
	if _, err := interp.RunScript(sess, parser.MustParse(b.String())); err != nil {
		t.Fatalf("seed %s: %v", name, err)
	}
}

// TestPlanCacheWarmHitSharedText: re-parsing the same query text must hit
// the text-keyed cache (fresh AST pointers every time) and return results
// identical to the cold run.
func TestPlanCacheWarmHitSharedText(t *testing.T) {
	sess := newDB(t, planCacheDB)
	const sql = "select k, v from pc where k >= 3 order by k"

	cold := query(t, sess, sql)
	misses, hits := sess.PlanCacheMisses(), sess.PlanCacheHits()
	if misses != 1 || hits != 0 {
		t.Fatalf("after cold run: hits=%d misses=%d, want 0/1", hits, misses)
	}
	for i := 0; i < 3; i++ {
		warm := query(t, sess, sql) // query() re-parses: new AST each time
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("warm run %d diverged:\ncold: %v\nwarm: %v", i, cold, warm)
		}
	}
	if m := sess.PlanCacheMisses(); m != 1 {
		t.Fatalf("warm runs recompiled: misses=%d, want 1", m)
	}
	if h := sess.PlanCacheHits(); h != 3 {
		t.Fatalf("warm hits=%d, want 3", h)
	}
}

// TestPlanCacheDDLEviction: CREATE INDEX must drop every cached plan — a
// stale plan would keep scanning after the index exists.
func TestPlanCacheDDLEviction(t *testing.T) {
	sess := newDB(t, "")
	seedBig(t, sess, "pd", false)
	const sql = "select v from pd where k >= 195 order by v"

	before := query(t, sess, sql)
	if n := sess.Eng.PlanCacheLen(); n == 0 {
		t.Fatal("query did not populate the text-keyed plan cache")
	}
	if _, err := interp.RunScript(sess, parser.MustParse("create index idx_pd on pd(k) using ordered")); err != nil {
		t.Fatalf("create index: %v", err)
	}
	if n := sess.Eng.PlanCacheLen(); n != 0 {
		t.Fatalf("plan cache survived DDL: %d entries", n)
	}
	misses := sess.PlanCacheMisses()
	after := query(t, sess, sql)
	if sess.PlanCacheMisses() != misses+1 {
		t.Fatal("post-DDL query did not recompile")
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("results changed across DDL:\nbefore: %v\nafter: %v", before, after)
	}
	// The recompiled plan must actually use the new index.
	expl, err := sess.ExplainQuery(parseSelect(t, sql), false, sess.Ctx(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(expl, "\n"), "RangeSeek(pd.k)") {
		t.Fatalf("post-DDL plan ignores the new index:\n%s", strings.Join(expl, "\n"))
	}
}

// TestPlanCacheStatsDriftReplan: once a table drifts PlanStaleThreshold
// committed mutations past a cached plan's stamp, the next lookup must
// recompile instead of serving the stale plan.
func TestPlanCacheStatsDriftReplan(t *testing.T) {
	sess := newDB(t, planCacheDB)
	q := parseSelect(t, "select count(*) from pc where k >= 2")

	p1, err := sess.PlanQuery(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	var drift strings.Builder
	for i := 0; i < engine.PlanStaleThreshold; i++ {
		fmt.Fprintf(&drift, "insert into pc values (%d, %d);\n", 100+i, i)
	}
	if _, err := interp.RunScript(sess, parser.MustParse(drift.String())); err != nil {
		t.Fatalf("drift inserts: %v", err)
	}
	misses := sess.PlanCacheMisses()
	p2, err := sess.PlanQuery(q, nil) // same AST: would be a 0-alloc L1 hit if fresh
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("stale plan served after stats drift")
	}
	if sess.PlanCacheMisses() != misses+1 {
		t.Fatal("drift replan not counted as a miss")
	}
	// Short of the threshold the plan must be reused: recompiling on every
	// mutation would make the cache pointless.
	p3, err := sess.PlanQuery(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p2 {
		t.Fatal("plan not reused immediately after replan")
	}
}

// TestPlanCacheOptionsIsolation: the same query text under different
// planner options must map to different cache entries, and disabling
// choose_access_path must reproduce the plain scan plan byte-identically.
func TestPlanCacheOptionsIsolation(t *testing.T) {
	sess := newDB(t, "")
	seedBig(t, sess, "pcb", true)
	const sql = "select sum(v) from pcb where k >= 190"

	explain := func() string {
		t.Helper()
		lines, err := sess.ExplainQuery(parseSelect(t, sql), false, sess.Ctx(nil, nil))
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(lines, "\n")
	}

	withRule := explain()
	if !strings.Contains(withRule, "RangeSeek(pcb.k)") {
		t.Fatalf("cost model did not pick the ordered index:\n%s", withRule)
	}
	sess.Opts.DisableRules = plan.RuleChooseAccessPath
	noRule := explain()
	if strings.Contains(noRule, "RangeSeek(") {
		t.Fatalf("disabled rule still fired:\n%s", noRule)
	}
	noRuleAgain := explain()
	if noRule != noRuleAgain {
		t.Fatalf("disabled-rule plan not byte-stable:\n%s\nvs\n%s", noRule, noRuleAgain)
	}
	sess.Opts.DisableRules = 0
	if again := explain(); again != withRule {
		t.Fatalf("re-enabled plan differs from original:\n%s\nvs\n%s", again, withRule)
	}

	// Both option variants are live in the cache: re-running each must hit.
	run := func() { query(t, sess, sql) }
	run()
	sess.Opts.DisableRules = plan.RuleChooseAccessPath
	run()
	hits, misses := sess.PlanCacheHits(), sess.PlanCacheMisses()
	sess.Opts.DisableRules = 0
	run()
	sess.Opts.DisableRules = plan.RuleChooseAccessPath
	run()
	if sess.PlanCacheMisses() != misses {
		t.Fatalf("warm option-keyed lookups recompiled: misses %d -> %d", misses, sess.PlanCacheMisses())
	}
	if sess.PlanCacheHits() != hits+2 {
		t.Fatalf("warm option-keyed lookups: hits %d -> %d, want +2", hits, sess.PlanCacheHits())
	}
}

// TestPlanCacheTempTablesNotShared: `select * from #t` renders the same
// text in every session but resolves to per-session tables, so the
// text-keyed tier must never serve one session's plan to another.
func TestPlanCacheTempTablesNotShared(t *testing.T) {
	eng := engine.New()
	interp.Install(eng)
	s1, s2 := eng.NewSession(), eng.NewSession()
	for sess, val := range map[*engine.Session]string{s1: "1", s2: "2"} {
		script := "create table #t (n int);\ninsert into #t values (" + val + ");"
		if _, err := interp.RunScript(sess, parser.MustParse(script)); err != nil {
			t.Fatalf("setup: %v", err)
		}
	}
	const sql = "select n from #t"
	if got := query(t, s1, sql)[0][0].Int(); got != 1 {
		t.Fatalf("session 1 sees n=%d, want 1", got)
	}
	// Warm in s1, then the same text in s2: must not reuse s1's plan.
	query(t, s1, sql)
	if got := query(t, s2, sql)[0][0].Int(); got != 2 {
		t.Fatalf("session 2 sees n=%d, want 2 (temp plan leaked across sessions)", got)
	}
	if n := eng.PlanCacheLen(); n != 0 {
		t.Fatalf("temp-table queries entered the shared text cache: %d entries", n)
	}
}

// TestStatStatementsPlanCacheColumns: the per-fingerprint hit/miss
// counters surface in aggify_stat_statements.
func TestStatStatementsPlanCacheColumns(t *testing.T) {
	sess := newDB(t, planCacheDB)
	const sql = "select v from pc where k = 1"
	for i := 0; i < 3; i++ {
		runRecorded(t, sess, sql)
	}
	rows := query(t, sess,
		"select plan_cache_hits, plan_cache_misses from aggify_stat_statements where query = 'select v from pc where k = ?'")
	if len(rows) != 1 {
		t.Fatalf("stat rows = %d, want 1", len(rows))
	}
	hits, misses := rows[0][0].Int(), rows[0][1].Int()
	if misses != 1 || hits != 2 {
		t.Fatalf("plan_cache_hits=%d plan_cache_misses=%d, want 2/1", hits, misses)
	}
}

// TestStatColumnsView: aggify_stat_columns exposes one row per histogram
// bucket per indexed column, with the index kind and bucket row counts.
func TestStatColumnsView(t *testing.T) {
	sess := newDB(t, planCacheDB+"create index idx_pcv on pc(v);\n")
	rows := query(t, sess,
		"select column_name, index_kind, bucket_rows from aggify_stat_columns where table_name = 'pc' order by column_name, bucket")
	if len(rows) == 0 {
		t.Fatal("no aggify_stat_columns rows for pc")
	}
	perCol := map[string]int64{}
	kinds := map[string]string{}
	for _, r := range rows {
		col, kind := r[0].Str(), r[1].Str()
		kinds[col] = kind
		if !r[2].IsNull() {
			perCol[col] += r[2].Int()
		}
	}
	if kinds["k"] != "ordered" || kinds["v"] != "hash" {
		t.Fatalf("index kinds = %v, want k:ordered v:hash", kinds)
	}
	// Every committed row lands in exactly one bucket per column.
	if perCol["k"] != 5 || perCol["v"] != 5 {
		t.Fatalf("bucket_rows sums = %v, want 5 per column", perCol)
	}
}
