// Package engine ties the storage, planning, and execution layers into a
// database engine: a catalog of tables, indexes, scalar UDFs, stored
// procedures, and custom aggregates; sessions with I/O statistics; static
// explicit cursors that materialize into worktables (the behaviour Aggify
// optimizes away); and DML execution.
//
// The procedural interpreter (package interp) installs itself into the
// engine via the AggFactory and FuncCaller hooks, which break the mutual
// dependency between query execution (queries call scalar UDFs) and
// procedure execution (procedures run queries).
package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"aggify/internal/ast"
	"aggify/internal/exec"
	"aggify/internal/plan"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
	"aggify/internal/txn"
)

// Engine is the shared database instance: catalog plus plan cache.
type Engine struct {
	mu     sync.RWMutex
	tables map[string]*storage.Table
	funcs  map[string]*ast.CreateFunction
	procs  map[string]*ast.CreateProcedure
	aggs   map[string]*exec.AggSpec
	aggSrc map[string]*ast.CreateAggregate

	planMu  sync.Mutex
	plans   map[planKey]*plan.Plan
	planTxt map[planTextKey]*planEntry
	planUse uint64
	scalars map[scalarKey]exec.Scalar
	// routinePlans caches compiled routine bodies keyed by definition node
	// identity (values are opaque to the engine; the interpreter owns them,
	// including negative entries marking bodies it will not recompile).
	routinePlans map[any]any

	// DefaultMaxDOP seeds each new session's degree of parallelism
	// (plan.Options.Parallelism). 0 or 1 means serial execution; sessions
	// override it with SET MAXDOP.
	DefaultMaxDOP int

	// TxnMgr allocates commit epochs, snapshots, and transactions for every
	// base table. Always non-nil; without an attached durability sink the
	// engine runs the same MVCC protocol purely in memory.
	TxnMgr *txn.Manager
	// dur holds the attached WAL/checkpoint state (nil without a data
	// directory); see durability.go.
	dur *durability

	// stmtStats is the per-fingerprint cumulative statement store backing
	// aggify_stat_statements; see stmtstats.go.
	stmtStats *StmtStats
	// checkpoints counts completed checkpoint passes.
	checkpoints atomic.Int64

	// Live-session registry backing aggify_stat_activity.
	sessMu   sync.Mutex
	sessions map[uint64]*Session
	nextSess uint64

	// AggFactory builds an executable aggregate spec from a CREATE AGGREGATE
	// definition; installed by the interpreter.
	AggFactory func(def *ast.CreateAggregate, orderSensitive bool) (*exec.AggSpec, error)
	// FuncCaller invokes a scalar UDF; installed by the interpreter.
	FuncCaller func(s *Session, ctx *exec.Ctx, def *ast.CreateFunction, args []sqltypes.Value) (sqltypes.Value, error)
	// ProcCaller invokes a stored procedure; installed by the interpreter.
	ProcCaller func(s *Session, ctx *exec.Ctx, def *ast.CreateProcedure, args []sqltypes.Value) error
}

// Plan-cache tuning.
const (
	// PlanCacheCap bounds the text-keyed (L2) plan cache; beyond it the
	// least-recently-used entry is evicted.
	PlanCacheCap = 256
	// PlanStaleThreshold is how far a table's stats version may drift past
	// the version a cached plan was costed against before the cache
	// recompiles the plan. Small enough that access-path choices track the
	// data, large enough that steady single-row DML does not replan per
	// statement.
	PlanStaleThreshold = 64
)

// planKey is the L1 cache key: AST node identity. Hits are allocation-free,
// serving repeated executions of the same parsed statement (procedure
// bodies, cached prepared statements).
type planKey struct {
	q    *ast.Select
	opts plan.Options
}

// planTextKey is the L2 cache key: a hash of the statement's exact rendered
// SQL text plus the planner options. Literals are part of the text — they
// are baked into compiled plans, so (unlike the stat_statements
// fingerprint) the cache key must not normalize them away. Entries carry
// the full text as an exact-match collision guard.
type planTextKey struct {
	hash uint64
	opts plan.Options
}

type planEntry struct {
	text     string
	p        *plan.Plan
	lastUsed uint64
}

type scalarKey struct {
	e    ast.Expr
	opts plan.Options
}

// New creates an empty engine with the built-in aggregates registered.
func New() *Engine {
	e := &Engine{
		tables:       map[string]*storage.Table{},
		funcs:        map[string]*ast.CreateFunction{},
		procs:        map[string]*ast.CreateProcedure{},
		aggs:         map[string]*exec.AggSpec{},
		aggSrc:       map[string]*ast.CreateAggregate{},
		plans:        map[planKey]*plan.Plan{},
		planTxt:      map[planTextKey]*planEntry{},
		scalars:      map[scalarKey]exec.Scalar{},
		routinePlans: map[any]any{},
		TxnMgr:       txn.NewManager(),

		stmtStats: NewStmtStats(DefaultStmtStatsCap),
		sessions:  map[uint64]*Session{},
	}
	for name, spec := range exec.BuiltinAggs() {
		e.aggs[name] = spec
	}
	return e
}

// CreateTable registers a new base table, bound to the engine's
// transaction manager and (when durability is attached) logged to the WAL
// under its own commit epoch.
func (e *Engine) CreateTable(name string, schema *storage.Schema) (*storage.Table, error) {
	name = strings.ToLower(name)
	if strings.HasPrefix(name, SystemTablePrefix) {
		return nil, fmt.Errorf("engine: the %s* name prefix is reserved for system tables", SystemTablePrefix)
	}
	e.mu.Lock()
	if _, exists := e.tables[name]; exists {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: table %s already exists", name)
	}
	t := storage.NewTable(name, schema)
	t.Bind(e.TxnMgr)
	e.tables[name] = t
	e.mu.Unlock()
	if err := e.logCreateTable(name, schema); err != nil {
		e.mu.Lock()
		delete(e.tables, name)
		e.mu.Unlock()
		return nil, err
	}
	e.InvalidatePlans()
	return t, nil
}

// DropTable removes a base table (used by tests and the shell).
func (e *Engine) DropTable(name string) {
	name = strings.ToLower(name)
	e.mu.Lock()
	delete(e.tables, name)
	e.mu.Unlock()
	e.logDropTable(name)
	e.InvalidatePlans()
}

// Tables returns every base table (stable order not guaranteed). Used by
// vacuum and checkpointing.
func (e *Engine) Tables() []*storage.Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*storage.Table, 0, len(e.tables))
	for _, t := range e.tables {
		out = append(out, t)
	}
	return out
}

// vacuumAll reclaims superseded versions older than the vacuum horizon in
// every base table.
func (e *Engine) vacuumAll(oldest uint64) {
	for _, t := range e.Tables() {
		t.Vacuum(oldest)
	}
}

// MaybeVacuum runs an inline vacuum pass if enough superseded versions
// have accumulated. Sessions call it after commits; the server also runs
// Vacuum from a background ticker.
func (e *Engine) MaybeVacuum() { e.TxnMgr.MaybeVacuum(e.vacuumAll) }

// Vacuum forces a vacuum pass over all base tables.
func (e *Engine) Vacuum() { e.TxnMgr.Vacuum(e.vacuumAll) }

// Table returns a base table by name.
func (e *Engine) Table(name string) (*storage.Table, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[strings.ToLower(name)]
	return t, ok
}

// CreateIndex builds a hash index on a base table column and invalidates
// cached plans so they can pick the new access path.
func (e *Engine) CreateIndex(table, column string) error {
	return e.createIndex(table, column, false)
}

// CreateOrderedIndex builds an ordered (range-capable) index on a base
// table column and invalidates cached plans.
func (e *Engine) CreateOrderedIndex(table, column string) error {
	return e.createIndex(table, column, true)
}

func (e *Engine) createIndex(table, column string, ordered bool) error {
	t, ok := e.Table(table)
	if !ok {
		return fmt.Errorf("engine: no table %s", table)
	}
	var err error
	if ordered {
		err = t.CreateOrderedIndex(column)
	} else {
		err = t.CreateIndex(column)
	}
	if err != nil {
		return err
	}
	if err := e.logCreateIndex(strings.ToLower(table), strings.ToLower(column), ordered); err != nil {
		return err
	}
	e.InvalidatePlans()
	return nil
}

// RegisterFunction registers a scalar UDF definition.
func (e *Engine) RegisterFunction(def *ast.CreateFunction) error {
	name := strings.ToLower(def.Name)
	if plan.IsBuiltinScalarFunc(name) || exec.IsBuiltinAgg(name) {
		return fmt.Errorf("engine: function %s conflicts with a built-in", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.funcs[name] = def
	return nil
}

// Function returns a scalar UDF definition.
func (e *Engine) Function(name string) (*ast.CreateFunction, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	f, ok := e.funcs[strings.ToLower(name)]
	return f, ok
}

// RegisterProcedure registers a stored procedure definition.
func (e *Engine) RegisterProcedure(def *ast.CreateProcedure) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.procs[strings.ToLower(def.Name)] = def
	return nil
}

// Procedure returns a stored procedure definition.
func (e *Engine) Procedure(name string) (*ast.CreateProcedure, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	p, ok := e.procs[strings.ToLower(name)]
	return p, ok
}

// RegisterAggregateSpec registers a native (Go-implemented) custom
// aggregate. The spec name is lower-cased.
func (e *Engine) RegisterAggregateSpec(spec *exec.AggSpec) error {
	name := strings.ToLower(spec.Name)
	if exec.IsBuiltinAgg(name) {
		return fmt.Errorf("engine: aggregate %s conflicts with a built-in", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.aggs[name] = spec
	return nil
}

// RegisterAggregate registers an interpreted custom aggregate from its
// CREATE AGGREGATE definition (the form Aggify generates). orderSensitive
// marks aggregates generated from ORDER BY cursor loops (paper Eq. 6).
func (e *Engine) RegisterAggregate(def *ast.CreateAggregate, orderSensitive bool) error {
	if e.AggFactory == nil {
		return fmt.Errorf("engine: no aggregate factory installed (missing interp.Install)")
	}
	spec, err := e.AggFactory(def, orderSensitive)
	if err != nil {
		return err
	}
	name := strings.ToLower(def.Name)
	spec.Name = name
	e.mu.Lock()
	defer e.mu.Unlock()
	e.aggs[name] = spec
	e.aggSrc[name] = def
	return nil
}

// Aggregate returns a registered aggregate spec.
func (e *Engine) Aggregate(name string) (*exec.AggSpec, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	a, ok := e.aggs[strings.ToLower(name)]
	return a, ok
}

// AggregateSource returns the CREATE AGGREGATE definition of an interpreted
// aggregate, if it was registered from source.
func (e *Engine) AggregateSource(name string) (*ast.CreateAggregate, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	src, ok := e.aggSrc[strings.ToLower(name)]
	return src, ok
}

// cachedPlan compiles q under the catalog (or returns a cached plan).
//
// The cache has two levels. L1 keys on AST node identity — repeated
// executions of the same parsed statement (procedure bodies, prepared
// statements) hit it without allocating. L2 keys on the statement's exact
// rendered text plus options, so re-parsed arrivals of the same SQL (each
// TCP request parses afresh) share one compiled plan; an L2 hit promotes
// the plan into L1 under the new AST pointer. Any hit is revalidated
// against the plan's table stamps: once a table's stats version drifts
// past PlanStaleThreshold, the entry is dropped and the query recompiled
// so access-path choices track the data.
//
// Queries touching system views never enter the cache: their backing
// tables are per-statement telemetry snapshots, so a cached plan would
// freeze the first observation forever. Queries referencing temp tables or
// table variables skip L2 only — their rendered text is identical across
// sessions but resolves to different tables, so sharing by text would leak
// plans across sessions; L1 (AST identity is session-local) stays safe.
func (e *Engine) cachedPlan(s *Session, temp func(string) (*storage.Table, bool), opts plan.Options, q *ast.Select) (*plan.Plan, error) {
	// L1 first, before any query-shape analysis: system-view queries never
	// enter the cache, so an L1 hit cannot be one, and the warm path stays
	// allocation-free.
	key := planKey{q: q, opts: opts}
	e.planMu.Lock()
	if p, ok := e.plans[key]; ok {
		if !planStale(p) {
			e.planMu.Unlock()
			s.notePlanCache(true)
			return p, nil
		}
		delete(e.plans, key)
	}
	e.planMu.Unlock()

	if selectRefsSystemTable(q) {
		return plan.Compile(s.Catalog(temp), opts, q)
	}
	shareText := !selectRefsTempTable(q)
	e.planMu.Lock()
	var text string
	var tkey planTextKey
	if shareText {
		text = q.String()
		tkey = planTextKey{hash: fnv64(text), opts: opts}
		if ent, ok := e.planTxt[tkey]; ok && ent.text == text {
			if !planStale(ent.p) {
				e.planUse++
				ent.lastUsed = e.planUse
				e.plans[key] = ent.p
				p := ent.p
				e.planMu.Unlock()
				s.notePlanCache(true)
				return p, nil
			}
			delete(e.planTxt, tkey)
		}
	}
	e.planMu.Unlock()

	s.notePlanCache(false)
	p, err := plan.Compile(s.Catalog(temp), opts, q)
	if err != nil {
		return nil, err
	}
	e.planMu.Lock()
	e.plans[key] = p
	if shareText {
		if len(e.planTxt) >= PlanCacheCap {
			e.evictPlanLocked()
		}
		e.planUse++
		e.planTxt[tkey] = &planEntry{text: text, p: p, lastUsed: e.planUse}
	}
	e.planMu.Unlock()
	return p, nil
}

// planStale reports whether any table the plan was costed against has
// drifted PlanStaleThreshold or more stats-version bumps since compile.
func planStale(p *plan.Plan) bool {
	for _, st := range p.Stamps {
		if st.Table.StatsVersion()-st.StatsVersion >= PlanStaleThreshold {
			return true
		}
	}
	return false
}

// evictPlanLocked removes the least-recently-used L2 entry. O(n), but only
// runs when a new statement shape arrives with the cache already full.
func (e *Engine) evictPlanLocked() {
	var victim planTextKey
	found := false
	min := uint64(0)
	for k, ent := range e.planTxt {
		if !found || ent.lastUsed < min {
			found, min, victim = true, ent.lastUsed, k
		}
	}
	if found {
		delete(e.planTxt, victim)
	}
}

// fnv64 is FNV-1a over the rendered statement text.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// CachedScalar compiles an expression (with caching keyed by AST node
// identity) for evaluation outside a table context: procedure statements,
// variable initializers, and aggregate bodies.
func (e *Engine) CachedScalar(cat plan.Catalog, opts plan.Options, expr ast.Expr) (exec.Scalar, error) {
	key := scalarKey{e: expr, opts: opts}
	e.planMu.Lock()
	s, ok := e.scalars[key]
	e.planMu.Unlock()
	if ok {
		return s, nil
	}
	s, err := plan.CompileScalar(cat, opts, expr)
	if err != nil {
		return nil, err
	}
	e.planMu.Lock()
	e.scalars[key] = s
	e.planMu.Unlock()
	return s, nil
}

// InvalidatePlans drops the plan and expression caches (after DDL that
// changes schemas or available indexes).
func (e *Engine) InvalidatePlans() {
	e.planMu.Lock()
	e.plans = map[planKey]*plan.Plan{}
	e.planTxt = map[planTextKey]*planEntry{}
	e.scalars = map[scalarKey]exec.Scalar{}
	e.routinePlans = map[any]any{}
	e.planMu.Unlock()
}

// RoutinePlan looks up a cached compiled routine body (see routinePlans).
func (e *Engine) RoutinePlan(key any) (any, bool) {
	e.planMu.Lock()
	v, ok := e.routinePlans[key]
	e.planMu.Unlock()
	return v, ok
}

// StoreRoutinePlan caches a compiled routine body under key.
func (e *Engine) StoreRoutinePlan(key, val any) {
	e.planMu.Lock()
	e.routinePlans[key] = val
	e.planMu.Unlock()
}

// PlanCacheLen returns the number of text-keyed cached plans (tests and
// observability).
func (e *Engine) PlanCacheLen() int {
	e.planMu.Lock()
	defer e.planMu.Unlock()
	return len(e.planTxt)
}

// CatalogWithTemp returns a planner catalog over this engine with an
// additional temp-table resolver (used by the aggregate-body compiler,
// which runs at registration time without a session).
func (e *Engine) CatalogWithTemp(temp func(string) (*storage.Table, bool)) plan.Catalog {
	return sessionCatalog{eng: e, temp: temp}
}

// sessionCatalog adapts the engine (plus a session's temp-table resolver)
// to the planner's Catalog interface.
type sessionCatalog struct {
	eng  *Engine
	temp func(name string) (*storage.Table, bool)
}

// ResolveTable implements plan.Catalog.
func (c sessionCatalog) ResolveTable(name string) (*storage.Table, error) {
	name = strings.ToLower(name)
	if len(name) > 0 && (name[0] == '@' || name[0] == '#') {
		if c.temp != nil {
			if t, ok := c.temp(name); ok {
				return t, nil
			}
		}
		return nil, fmt.Errorf("engine: undeclared table variable %s", name)
	}
	if t, ok := c.eng.Table(name); ok {
		return t, nil
	}
	if IsSystemTable(name) {
		return c.eng.systemTable(name)
	}
	return nil, fmt.Errorf("engine: no table %s", name)
}

// AggSpec implements plan.Catalog.
func (c sessionCatalog) AggSpec(name string) (*exec.AggSpec, bool) {
	return c.eng.Aggregate(name)
}

// ScalarFuncExists implements plan.Catalog.
func (c sessionCatalog) ScalarFuncExists(name string) bool {
	_, ok := c.eng.Function(name)
	return ok
}

// TypeOfExprDefault is the declared type used when none can be inferred.
var TypeOfExprDefault = sqltypes.Unknown
