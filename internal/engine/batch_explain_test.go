package engine_test

import (
	"strings"
	"testing"

	"aggify/internal/interp"
	"aggify/internal/parser"
)

// TestExplainBatchAnnotations checks that EXPLAIN reports whether an
// aggregation runs on the vectorized batch path — and, when it falls back,
// which precondition failed. The suffixes come from the same eligibility
// check the executor uses (exec.BatchWorthwhile plus the batch-capable chain
// walk), so the annotation cannot drift from what actually runs.
func TestExplainBatchAnnotations(t *testing.T) {
	sess := bigDB(t, 5000)
	if _, err := interp.RunScript(sess, parser.MustParse(`
create table tiny2 (k int, v int);
insert into tiny2 values (1, 10), (2, 20);
GO
create aggregate CustomSum(@v int) returns int as
begin
  fields (@s int);
  init begin set @s = 0; end
  accumulate begin set @s = @s + @v; end
  terminate begin return @s; end
end`)); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name, sql, want string
	}{
		{"eligible grouped agg", "select k, count(*), sum(v) from bigt group by k", "[batch]"},
		{"eligible scalar agg", "select min(v), max(v) from bigt", "[batch]"},
		{"filter below agg stays batched", "select sum(v) from bigt where k < 50", "[batch]"},
		{"custom aggregate falls back", "select CustomSum(v) from bigt", "[row: aggregate not vectorizable]"},
		{"join input falls back", "select count(*) from bigt b1, tiny2 b2 where b1.k = b2.k",
			"[row: input not batch-capable]"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan := explain(t, sess, tc.sql)
			if !strings.Contains(plan, tc.want) {
				t.Fatalf("want %q in plan:\n%s", tc.want, plan)
			}
		})
	}

	// A session that forces the row path says so.
	rowSess := sess.Eng.NewSession()
	rowSess.Opts.DisableBatch = true
	plan := explain(t, rowSess, "select k, sum(v) from bigt group by k")
	if !strings.Contains(plan, "[row: batch disabled]") {
		t.Fatalf("want [row: batch disabled] in plan:\n%s", plan)
	}
	if strings.Contains(plan, "[batch]") {
		t.Fatalf("disabled session must not claim the batch path:\n%s", plan)
	}

	// The parallel plan annotates its ParallelAgg the same way.
	par := sess.Eng.NewSession()
	par.Opts.Parallelism = 4
	plan = explain(t, par, "select k, sum(v) from bigt group by k")
	if !strings.Contains(plan, "ParallelAgg(workers=4") || !strings.Contains(plan, "[batch]") {
		t.Fatalf("parallel plan should be batch-annotated:\n%s", plan)
	}
}
