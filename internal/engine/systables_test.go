package engine_test

import (
	"strings"
	"testing"
	"time"

	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/parser"
)

// runRecorded executes a script with per-statement fingerprint recording
// (the same path the embedded facade and the server use).
func runRecorded(t *testing.T, sess *engine.Session, src string) {
	t.Helper()
	stmts, spans, err := parser.ParseSpans(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if _, err := interp.RunScriptSpans(sess, src, stmts, spans); err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
}

// TestStatStatementsCumulative runs a scripted workload and asserts the
// canonical observability query returns correct cumulative rows.
func TestStatStatementsCumulative(t *testing.T) {
	sess := newDB(t, "")
	runRecorded(t, sess, "create table t (n int)")
	runRecorded(t, sess, "insert into t values (1)")
	runRecorded(t, sess, "insert into t values (2)")
	runRecorded(t, sess, "insert into t values (3)")
	runRecorded(t, sess, "select n from t")
	runRecorded(t, sess, "select n from t")

	rows := query(t, sess,
		"select query, calls, total_micros, rows, logical_reads from aggify_stat_statements where query = 'insert into t values (?)'")
	if len(rows) != 1 {
		t.Fatalf("stat rows for insert template = %d, want 1", len(rows))
	}
	if got := rows[0][1].Int(); got != 3 {
		t.Fatalf("insert calls = %d, want 3 (literals must collapse)", got)
	}
	rows = query(t, sess,
		"select calls, rows from aggify_stat_statements where query = 'select n from t'")
	if len(rows) != 1 || rows[0][0].Int() != 2 {
		t.Fatalf("select template rows = %v", rows)
	}
	if got := rows[0][1].Int(); got != 6 {
		t.Fatalf("select template cumulative rows = %d, want 6 (2 runs x 3 rows)", got)
	}
}

// TestStatStatementsQueryShapes: the views are real scan sources — ORDER
// BY, aggregates, and EXPLAIN all work over them.
func TestStatStatementsQueryShapes(t *testing.T) {
	sess := newDB(t, "")
	runRecorded(t, sess, "select 1")
	runRecorded(t, sess, "select 2, 3")

	rows := query(t, sess, "select query from aggify_stat_statements order by query")
	if len(rows) < 2 {
		t.Fatalf("ordered scan rows = %d, want >= 2", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].Str() > rows[i][0].Str() {
			t.Fatalf("ORDER BY violated: %q > %q", rows[i-1][0].Str(), rows[i][0].Str())
		}
	}
	rows = query(t, sess, "select count(*), sum(calls) from aggify_stat_statements")
	if len(rows) != 1 || rows[0][0].Int() < 2 || rows[0][1].Int() < 2 {
		t.Fatalf("aggregate over view = %v", rows)
	}

	stmts := parser.MustParse("select * from aggify_stat_statements")
	q := stmts[0].(*ast.QueryStmt).Query
	lines, err := sess.ExplainQuery(q, false, sess.Ctx(nil, nil))
	if err != nil {
		t.Fatalf("explain over view: %v", err)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "aggify_stat_statements") {
		t.Fatalf("explain does not show the view scan:\n%s", joined)
	}
}

// TestStatStatementsNotCached: the view snapshot must be rebuilt per
// execution, so repeated queries see fresh counters.
func TestStatStatementsNotCached(t *testing.T) {
	sess := newDB(t, "")
	runRecorded(t, sess, "select 1")
	before := query(t, sess, "select calls from aggify_stat_statements where query = 'select ?'")
	if len(before) != 1 {
		t.Fatalf("before rows = %v", before)
	}
	runRecorded(t, sess, "select 2")
	runRecorded(t, sess, "select 3")
	after := query(t, sess, "select calls from aggify_stat_statements where query = 'select ?'")
	if len(after) != 1 || after[0][0].Int() != before[0][0].Int()+2 {
		t.Fatalf("view is stale: before=%v after=%v", before, after)
	}
}

// TestStatTablesView: row counts and version-chain stats per table.
func TestStatTablesView(t *testing.T) {
	sess := newDB(t, sampleDB)
	rows := query(t, sess, "select name, rows from aggify_stat_tables order by name")
	byName := map[string]int64{}
	for _, r := range rows {
		byName[r[0].Str()] = r[1].Int()
	}
	if byName["part"] != 4 || byName["supplier"] != 3 || byName["partsupp"] != 6 {
		t.Fatalf("aggify_stat_tables rows = %v", byName)
	}
	// An update grows a version chain, visible as garbage.
	runRecorded(t, sess, "update part set p_retail = 99.0 where p_partkey = 1")
	rows = query(t, sess, "select versions, garbage from aggify_stat_tables where name = 'part'")
	if len(rows) != 1 || rows[0][0].Int() < 5 || rows[0][1].Int() < 1 {
		t.Fatalf("version chain stats after update = %v", rows)
	}
}

// TestStatWALView: the single-row durability/txn summary. In-memory
// engines report enabled=0 but live transaction counters.
func TestStatWALView(t *testing.T) {
	sess := newDB(t, "create table t (n int)")
	runRecorded(t, sess, "insert into t values (1)")
	rows := query(t, sess, "select enabled, txn_begins, txn_commits from aggify_stat_wal")
	if len(rows) != 1 {
		t.Fatalf("wal view rows = %d, want 1", len(rows))
	}
	if rows[0][0].Int() != 0 {
		t.Fatalf("in-memory engine reports wal enabled = %d", rows[0][0].Int())
	}
	if rows[0][1].Int() < 1 || rows[0][2].Int() < 1 {
		t.Fatalf("txn counters = %v, want >= 1", rows[0])
	}
}

// TestStatActivitySelf: a session querying the activity view sees itself
// as active, running this very statement.
func TestStatActivitySelf(t *testing.T) {
	sess := newDB(t, "")
	runRecorded(t, sess, "select 1")
	rows := query(t, sess, "select session_id, state from aggify_stat_activity")
	if len(rows) != 1 {
		t.Fatalf("activity rows = %d, want 1", len(rows))
	}
	// query() bypasses BeginStmt, so this session reads as idle here; the
	// recorded path is covered by TestStatActivityConcurrentSession.
	if rows[0][0].Int() <= 0 {
		t.Fatalf("session_id = %d, want positive", rows[0][0].Int())
	}
}

// TestStatActivityConcurrentSession: while one session is mid-statement,
// another session's activity query reports it active with its fingerprint.
func TestStatActivityConcurrentSession(t *testing.T) {
	sess := newDB(t, "create table t (n int)")
	for i := 0; i < 200; i++ {
		runRecorded(t, sess, "insert into t values (1)")
	}
	worker := sess.Eng.NewSession()
	defer worker.Close()
	done := make(chan error, 1)
	go func() {
		// A cursor loop over t is slow enough to observe from outside.
		src := `
declare @i int; set @i = 0;
while @i < 400
begin
  declare c cursor for select n from t;
  open c;
  close c;
  deallocate c;
  set @i = @i + 1;
end`
		stmts, spans, err := parser.ParseSpans(src)
		if err != nil {
			done <- err
			return
		}
		_, err = interp.RunScriptSpans(worker, src, stmts, spans)
		done <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	seen := false
	for time.Now().Before(deadline) && !seen {
		rows := query(t, sess,
			"select session_id, fingerprint from aggify_stat_activity where state = 'active'")
		for _, r := range rows {
			if r[0].Int() == int64(worker.ID) && r[1].Str() != "0000000000000000" {
				seen = true
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("worker script: %v", err)
	}
	if !seen {
		t.Fatal("activity view never showed the concurrent session as active")
	}
}
