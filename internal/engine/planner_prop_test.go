package engine_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/parser"
)

// Property test: the planner's rewrites (index-seek selection, greedy join
// ordering, hash-join choice, apply decorrelation, common-subquery
// hoisting) must never change results. Random queries run against three
// configurations — indexed, unindexed, and decorrelation-disabled — and
// must agree row-for-row.

func buildPropDB(t *testing.T, withIndexes bool) *engine.Session {
	t.Helper()
	eng := engine.New()
	interp.Install(eng)
	sess := eng.NewSession()
	rng := rand.New(rand.NewSource(99))
	script := strings.Builder{}
	script.WriteString(`
create table t1 (a int, b int, c varchar(8));
create table t2 (a int, d int);
`)
	if withIndexes {
		script.WriteString("create index i1 on t1(a);\ncreate index i2 on t2(a);\n")
	}
	if _, err := interp.RunScript(sess, parser.MustParse(script.String())); err != nil {
		t.Fatal(err)
	}
	labels := []string{"red", "blue", "green"}
	for i := 0; i < 60; i++ {
		a := int64(rng.Intn(10))
		b := int64(rng.Intn(20) - 10)
		var err error
		if rng.Intn(8) == 0 {
			err = insertSQL(sess, fmt.Sprintf("insert into t1 values (%d, %d, null)", a, b))
		} else {
			err = insertSQL(sess, fmt.Sprintf("insert into t1 values (%d, %d, '%s')", a, b, labels[rng.Intn(3)]))
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		a := int64(rng.Intn(12)) // some keys miss t1 (outer-join coverage)
		d := int64(rng.Intn(100))
		if err := insertSQL(sess, fmt.Sprintf("insert into t2 values (%d, %d)", a, d)); err != nil {
			t.Fatal(err)
		}
	}
	return sess
}

func insertSQL(sess *engine.Session, sql string) error {
	_, err := interp.RunScript(sess, parser.MustParse(sql))
	return err
}

// randomQuery emits one random-but-valid query over t1/t2.
func randomQuery(rng *rand.Rand) string {
	switch rng.Intn(6) {
	case 0: // filtered single-table scan, maybe sargable
		return fmt.Sprintf("select a, b from t1 where a = %d and b > %d order by b, a",
			rng.Intn(10), rng.Intn(10)-5)
	case 1: // comma join with equality (index NL or hash)
		return fmt.Sprintf(`select t1.a, b, d from t1, t2
		                    where t1.a = t2.a and d < %d order by t1.a, b, d`, rng.Intn(100))
	case 2: // explicit left join
		return fmt.Sprintf(`select t1.a, count(d) as nd from t1 left join t2 on t1.a = t2.a
		                    where b >= %d group by t1.a order by t1.a`, rng.Intn(6)-3)
	case 3: // correlated scalar-aggregate subquery (decorrelation target)
		agg := []string{"count(*)", "sum(d)", "min(d)", "max(d)"}[rng.Intn(4)]
		return fmt.Sprintf(`select a, b, (select %s from t2 where t2.a = t1.a) as s
		                    from t1 where b <> %d order by a, b, s`, agg, rng.Intn(10))
	case 4: // grouped aggregation with HAVING and expression keys
		return fmt.Sprintf(`select a %% 3 as g, sum(b) as sb, count(*) as n from t1
		                    group by a %% 3 having count(*) > %d order by g`, rng.Intn(3))
	default: // duplicated subquery (common-subquery hoisting target)
		return fmt.Sprintf(`select a,
		         (select count(*) from t2 where t2.a = t1.a) + (select count(*) from t2 where t2.a = t1.a) as twice
		       from t1 where a <= %d order by a, twice`, rng.Intn(10))
	}
}

func runSQL(t *testing.T, sess *engine.Session, sql string) []string {
	t.Helper()
	stmts := parser.MustParse(sql)
	_, rows, err := sess.Query(stmts[0].(*ast.QueryStmt).Query, sess.Ctx(nil, nil))
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.String()
		}
		out[i] = strings.Join(cells, "|")
	}
	// Queries all carry ORDER BY, but ties may order differently across
	// plans; canonicalize fully.
	sort.Strings(out)
	return out
}

func TestPlannerRewritesPreserveResults(t *testing.T) {
	indexed := buildPropDB(t, true)
	unindexed := buildPropDB(t, false)
	noDecor := buildPropDB(t, true)
	noDecor.Opts.DisableDecorrelation = true
	parallel := buildPropDB(t, true)
	parallel.Opts.Parallelism = 4

	rng := rand.New(rand.NewSource(20200615))
	for trial := 0; trial < 60; trial++ {
		sql := randomQuery(rng)
		want := runSQL(t, indexed, sql)
		for name, sess := range map[string]*engine.Session{
			"unindexed":      unindexed,
			"no-decorrelate": noDecor,
			"parallel":       parallel,
		} {
			got := runSQL(t, sess, sql)
			if len(got) != len(want) {
				t.Fatalf("trial %d (%s): %d rows vs %d\nquery: %s", trial, name, len(got), len(want), sql)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d (%s): row %d differs\n got: %s\nwant: %s\nquery: %s",
						trial, name, i, got[i], want[i], sql)
				}
			}
		}
	}
}

func TestPlannerUsesIndexWhenAvailable(t *testing.T) {
	indexed := buildPropDB(t, true)
	q := parser.MustParse("select b from t1 where a = 3")[0].(*ast.QueryStmt).Query
	p, err := indexed.PlanQuery(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Explain.Contains("IndexSeek(t1.a)") {
		t.Fatalf("expected index seek:\n%s", p.Explain)
	}
	unindexed := buildPropDB(t, false)
	p2, err := unindexed.PlanQuery(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Explain.Contains("IndexSeek") {
		t.Fatalf("unindexed DB cannot seek:\n%s", p2.Explain)
	}
}
