package engine

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aggify/internal/fingerprint"
)

// Per-fingerprint cumulative statement statistics, in the spirit of
// pg_stat_statements. Every top-level statement the engine dispatches —
// embedded, over TCP, or prepared — is fingerprinted at session dispatch
// and folded into one StmtStat entry per canonical statement shape. The
// store is engine-global: all sessions aggregate into it, and the
// aggify_stat_statements system table plus the /metrics exporter read it.

// DefaultStmtStatsCap bounds how many distinct fingerprints the store
// retains; beyond it, the least-recently-called entry is evicted.
const DefaultStmtStatsCap = 1024

// StmtStat accumulates one statement shape's counters. All fields are
// atomics so the hot path (one warm statement) is lock-free after the map
// lookup and allocation-free always.
type StmtStat struct {
	Fingerprint uint64
	Query       string // canonical template; immutable once created

	lastUsed atomic.Int64 // store's logical clock at the most recent call

	Calls         atomic.Int64
	Errors        atomic.Int64
	TotalMicros   atomic.Int64
	MinMicros     atomic.Int64 // math.MaxInt64 until the first call lands
	MaxMicros     atomic.Int64
	Rows          atomic.Int64 // rows emitted to the client
	LogicalReads  atomic.Int64
	WALBytes      atomic.Int64 // bytes framed into the WAL (approximate under concurrency)
	Conflicts     atomic.Int64 // write conflicts hit (including retried ones)
	QueryExecs    atomic.Int64 // query executions inside the statement
	BatchExecs    atomic.Int64 // ... of which ran batch-mode plans
	ParallelExecs atomic.Int64 // ... of which ran parallel plans
	Rewritten     atomic.Int64 // ... of which had logical rewrite rules fire
	PlanHits      atomic.Int64 // plan compilations the plan cache served
	PlanMisses    atomic.Int64 // plan compilations the cache could not serve
}

// StmtStatRow is a point-in-time copy of one entry, used by the system
// table and the /metrics exporter.
type StmtStatRow struct {
	Fingerprint   uint64
	Query         string
	Calls         int64
	Errors        int64
	TotalMicros   int64
	MinMicros     int64
	MaxMicros     int64
	Rows          int64
	LogicalReads  int64
	WALBytes      int64
	Conflicts     int64
	QueryExecs    int64
	BatchExecs    int64
	RowExecs      int64 // QueryExecs - BatchExecs
	ParallelExecs int64
	Rewritten     int64
	PlanHits      int64
	PlanMisses    int64
}

// StmtStats is the bounded per-fingerprint store.
type StmtStats struct {
	mu  sync.RWMutex
	m   map[uint64]*StmtStat
	cap int

	clock     atomic.Int64 // logical LRU clock, ticked per call
	evictions atomic.Int64
}

// NewStmtStats creates a store bounded to cap entries (DefaultStmtStatsCap
// when cap <= 0).
func NewStmtStats(cap int) *StmtStats {
	if cap <= 0 {
		cap = DefaultStmtStatsCap
	}
	return &StmtStats{m: make(map[uint64]*StmtStat), cap: cap}
}

// entry returns the stat entry for fp, creating (and possibly evicting) on
// first sighting. raw is only normalized on the miss path.
func (ss *StmtStats) entry(fp uint64, raw string) *StmtStat {
	ss.mu.RLock()
	e := ss.m[fp]
	ss.mu.RUnlock()
	if e != nil {
		return e
	}
	ss.mu.Lock()
	if e = ss.m[fp]; e == nil {
		if len(ss.m) >= ss.cap {
			ss.evictLocked()
		}
		e = &StmtStat{Fingerprint: fp, Query: fingerprint.Normalize(raw)}
		e.MinMicros.Store(math.MaxInt64)
		ss.m[fp] = e
	}
	ss.mu.Unlock()
	return e
}

// evictLocked removes the least-recently-called entry. O(n), but only runs
// when a brand-new shape arrives with the store already full — adversarial
// unique-shape traffic pays for its own eviction scans; steady-state
// workloads never enter here.
func (ss *StmtStats) evictLocked() {
	var victim uint64
	minUsed := int64(math.MaxInt64)
	for fp, e := range ss.m {
		if u := e.lastUsed.Load(); u < minUsed {
			minUsed, victim = u, fp
		}
	}
	if _, ok := ss.m[victim]; ok {
		delete(ss.m, victim)
		ss.evictions.Add(1)
	}
}

// Evictions returns how many entries the cardinality cap has evicted.
func (ss *StmtStats) Evictions() int64 { return ss.evictions.Load() }

// Len returns the number of distinct fingerprints currently tracked.
func (ss *StmtStats) Len() int {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return len(ss.m)
}

// Lookup returns the canonical template for a fingerprint, if tracked.
func (ss *StmtStats) Lookup(fp uint64) (string, bool) {
	ss.mu.RLock()
	e := ss.m[fp]
	ss.mu.RUnlock()
	if e == nil {
		return "", false
	}
	return e.Query, true
}

// Snapshot copies every entry, sorted by fingerprint for deterministic
// iteration (the system table's natural order).
func (ss *StmtStats) Snapshot() []StmtStatRow {
	ss.mu.RLock()
	entries := make([]*StmtStat, 0, len(ss.m))
	for _, e := range ss.m {
		entries = append(entries, e)
	}
	ss.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Fingerprint < entries[j].Fingerprint })
	out := make([]StmtStatRow, len(entries))
	for i, e := range entries {
		min := e.MinMicros.Load()
		if min == math.MaxInt64 {
			min = 0
		}
		q := e.QueryExecs.Load()
		b := e.BatchExecs.Load()
		out[i] = StmtStatRow{
			Fingerprint:   e.Fingerprint,
			Query:         e.Query,
			Calls:         e.Calls.Load(),
			Errors:        e.Errors.Load(),
			TotalMicros:   e.TotalMicros.Load(),
			MinMicros:     min,
			MaxMicros:     e.MaxMicros.Load(),
			Rows:          e.Rows.Load(),
			LogicalReads:  e.LogicalReads.Load(),
			WALBytes:      e.WALBytes.Load(),
			Conflicts:     e.Conflicts.Load(),
			QueryExecs:    q,
			BatchExecs:    b,
			RowExecs:      q - b,
			ParallelExecs: e.ParallelExecs.Load(),
			Rewritten:     e.Rewritten.Load(),
			PlanHits:      e.PlanHits.Load(),
			PlanMisses:    e.PlanMisses.Load(),
		}
	}
	return out
}

// record folds one finished statement into the store. Allocation-free when
// the fingerprint is already tracked.
func (ss *StmtStats) record(fp uint64, raw string, micros int64, failed bool, d stmtDelta) {
	e := ss.entry(fp, raw)
	e.lastUsed.Store(ss.clock.Add(1))
	e.Calls.Add(1)
	if failed {
		e.Errors.Add(1)
	}
	e.TotalMicros.Add(micros)
	for {
		cur := e.MinMicros.Load()
		if micros >= cur || e.MinMicros.CompareAndSwap(cur, micros) {
			break
		}
	}
	for {
		cur := e.MaxMicros.Load()
		if micros <= cur || e.MaxMicros.CompareAndSwap(cur, micros) {
			break
		}
	}
	e.Rows.Add(d.rows)
	e.LogicalReads.Add(d.reads)
	e.WALBytes.Add(d.wal)
	e.Conflicts.Add(d.conflicts)
	e.QueryExecs.Add(d.queries)
	e.BatchExecs.Add(d.batch)
	e.ParallelExecs.Add(d.parallel)
	e.Rewritten.Add(d.rewritten)
	e.PlanHits.Add(d.planHits)
	e.PlanMisses.Add(d.planMisses)
}

// stmtDelta carries the per-statement counter deltas from BeginStmt's
// snapshot to EndStmt.
type stmtDelta struct {
	rows, reads, wal, conflicts         int64
	queries, batch, parallel, rewritten int64
	planHits, planMisses                int64
}

// StmtRecord is the in-flight handle between BeginStmt and EndStmt. It is
// a plain value (no allocation) holding the counter baselines.
type StmtRecord struct {
	fp     uint64
	raw    string
	start  time.Time
	base   stmtDelta
	active bool
}

// Fingerprint returns the statement's fingerprint (for callers that want to
// reuse it, e.g. the server's slow-query ring).
func (r StmtRecord) Fingerprint() uint64 { return r.fp }

// BeginStmt marks the start of one top-level statement with raw source
// text raw: it fingerprints the text, publishes the session as active (for
// aggify_stat_activity), and snapshots the session counters the statement
// delta is measured against. Allocation-free.
func (s *Session) BeginStmt(raw string) StmtRecord {
	fp := fingerprint.Fingerprint(raw)
	now := time.Now()
	s.curFP.Store(fp)
	s.stmtStart.Store(now.UnixNano())
	return StmtRecord{
		fp:    fp,
		raw:   raw,
		start: now,
		base: stmtDelta{
			rows:       s.Stats.RowsEmitted.Load(),
			reads:      s.Stats.LogicalReads.Load(),
			wal:        s.Eng.walAppended(),
			conflicts:  s.conflicts.Load(),
			queries:    s.queryExecs.Load(),
			batch:      s.batchExecs.Load(),
			parallel:   s.parallelExecs.Load(),
			rewritten:  s.rewrittenExecs.Load(),
			planHits:   s.planCacheHits.Load(),
			planMisses: s.planCacheMisses.Load(),
		},
		active: true,
	}
}

// EndStmt finishes the statement begun by BeginStmt, folding its wall time
// and counter deltas into the engine's fingerprint store and returning the
// session to the idle state. Allocation-free when the fingerprint is
// already tracked (the warm path).
func (s *Session) EndStmt(rec StmtRecord, err error) {
	if !rec.active {
		return
	}
	micros := time.Since(rec.start).Microseconds()
	s.stmtStart.Store(0)
	d := stmtDelta{
		rows:       s.Stats.RowsEmitted.Load() - rec.base.rows,
		reads:      s.Stats.LogicalReads.Load() - rec.base.reads,
		wal:        s.Eng.walAppended() - rec.base.wal,
		conflicts:  s.conflicts.Load() - rec.base.conflicts,
		queries:    s.queryExecs.Load() - rec.base.queries,
		batch:      s.batchExecs.Load() - rec.base.batch,
		parallel:   s.parallelExecs.Load() - rec.base.parallel,
		rewritten:  s.rewrittenExecs.Load() - rec.base.rewritten,
		planHits:   s.planCacheHits.Load() - rec.base.planHits,
		planMisses: s.planCacheMisses.Load() - rec.base.planMisses,
	}
	s.Eng.stmtStats.record(rec.fp, rec.raw, micros, err != nil, d)
}

// walAppended returns the WAL's lifetime appended-byte high-water mark, or
// 0 for in-memory engines. The per-statement WAL delta attributes global
// log growth to the statement that observed it, which is exact for serial
// workloads and approximate under concurrent commits.
func (e *Engine) walAppended() int64 {
	if e.dur == nil {
		return 0
	}
	return int64(e.dur.log.Size())
}

// StmtStatsStore exposes the engine's fingerprint store (system table,
// metrics exporter, tests).
func (e *Engine) StmtStatsStore() *StmtStats { return e.stmtStats }

// Session activity accessors (aggify_stat_activity reads these from other
// goroutines; all are atomics).

// NoteCursorOpen adjusts the session's open-cursor gauge; the interpreter
// and the server backend call it on OPEN/CLOSE/DEALLOCATE.
func (s *Session) NoteCursorOpen(delta int64) { s.cursorsOpen.Add(delta) }

// OpenCursors returns the session's open-cursor gauge.
func (s *Session) OpenCursors() int64 { return s.cursorsOpen.Load() }

// registerSession assigns an id and adds s to the engine's live-session
// registry.
func (e *Engine) registerSession(s *Session) {
	e.sessMu.Lock()
	e.nextSess++
	s.ID = e.nextSess
	e.sessions[s.ID] = s
	e.sessMu.Unlock()
}

// unregisterSession removes a closed session from the registry.
func (e *Engine) unregisterSession(id uint64) {
	e.sessMu.Lock()
	delete(e.sessions, id)
	e.sessMu.Unlock()
}

// Sessions returns the live sessions sorted by id.
func (e *Engine) Sessions() []*Session {
	e.sessMu.Lock()
	out := make([]*Session, 0, len(e.sessions))
	for _, s := range e.sessions {
		out = append(out, s)
	}
	e.sessMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
