package engine

import (
	"fmt"
	"os"
	"sort"

	"aggify/internal/storage"
	"aggify/internal/txn"
	"aggify/internal/wal"
)

// durability couples the engine to a data directory holding a write-ahead
// log and checkpoint snapshots. While attached, every commit epoch —
// DML commits and DDL alike — is logged before it publishes, and
// Checkpoint compacts the log into a full table image.
type durability struct {
	dir string
	log *wal.Log
}

// walSink adapts the log to txn.CommitSink. LogCommit runs inside the
// manager's commit lock, so records land in the WAL in epoch order;
// WaitDurable runs outside it, which is what lets group commit amortize
// one fsync over every transaction that published meanwhile.
type walSink struct{ log *wal.Log }

func (s walSink) LogCommit(epoch uint64, muts []txn.Mutation) (uint64, error) {
	return s.log.Append(wal.EncodeCommit(epoch, muts))
}

func (s walSink) WaitDurable(lsn uint64) error { return s.log.WaitDurable(lsn) }

// Durable reports whether a data directory is attached.
func (e *Engine) Durable() bool { return e.dur != nil }

// DataDir returns the attached data directory ("" when in-memory).
func (e *Engine) DataDir() string {
	if e.dur == nil {
		return ""
	}
	return e.dur.dir
}

// colsOf converts a storage schema to WAL column defs.
func colsOf(s *storage.Schema) []wal.ColumnDef {
	cols := make([]wal.ColumnDef, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = wal.ColumnDef{Name: c.Name, Type: c.Type}
	}
	return cols
}

// schemaOf converts WAL column defs back to a storage schema.
func schemaOf(cols []wal.ColumnDef) *storage.Schema {
	out := make([]storage.Column, len(cols))
	for i, c := range cols {
		out[i] = storage.Column{Name: c.Name, Type: c.Type}
	}
	return storage.NewSchema(out...)
}

// logDDL appends one DDL record under its own freshly allocated epoch and
// waits for it to become durable. No-op without an attached log.
func (e *Engine) logDDL(encode func(epoch uint64) []byte) error {
	if e.dur == nil {
		return nil
	}
	_, err := e.TxnMgr.AdvanceEpoch(func(epoch uint64) error {
		lsn, err := e.dur.log.Append(encode(epoch))
		if err != nil {
			return err
		}
		return e.dur.log.WaitDurable(lsn)
	})
	return err
}

func (e *Engine) logCreateTable(name string, schema *storage.Schema) error {
	return e.logDDL(func(epoch uint64) []byte {
		return wal.EncodeCreateTable(epoch, name, colsOf(schema))
	})
}

func (e *Engine) logCreateIndex(table, column string, ordered bool) error {
	return e.logDDL(func(epoch uint64) []byte {
		return wal.EncodeCreateIndex(epoch, table, column, ordered)
	})
}

func (e *Engine) logDropTable(name string) error {
	return e.logDDL(func(epoch uint64) []byte {
		return wal.EncodeDropTable(epoch, name)
	})
}

// OpenData attaches a data directory to the engine: it recovers durable
// state (checkpoint image plus WAL replay up to the last intact commit
// record), resumes epoch allocation past the recovered high-water mark,
// and begins logging subsequent commits. The catalog must be empty —
// recovery is the only source of tables for a durable engine.
func (e *Engine) OpenData(dir string, mode wal.SyncMode) error {
	if e.dur != nil {
		return fmt.Errorf("engine: data directory already attached")
	}
	if len(e.Tables()) > 0 {
		return fmt.Errorf("engine: OpenData requires an empty catalog")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// 1. Load the checkpoint image, if any. Tables created here don't log
	// (e.dur is still nil) — they already survive in the checkpoint.
	cp, ok, err := wal.ReadCheckpoint(dir)
	if err != nil {
		return err
	}
	var cpEpoch uint64
	if ok {
		cpEpoch = cp.Epoch
		for _, img := range cp.Tables {
			t, err := e.CreateTable(img.Name, schemaOf(img.Cols))
			if err != nil {
				return fmt.Errorf("engine: checkpoint recovery: %w", err)
			}
			for _, ix := range img.Indexes {
				if ix.Ordered {
					err = t.CreateOrderedIndex(ix.Column)
				} else {
					err = t.CreateIndex(ix.Column)
				}
				if err != nil {
					return fmt.Errorf("engine: checkpoint recovery: %w", err)
				}
			}
			t.LoadCheckpointSlots(img.Slots)
		}
	}

	// 2. Replay WAL records past the checkpoint epoch. Records carry their
	// commit epoch, so a log that predates the checkpoint (or overlaps it)
	// replays only the suffix the checkpoint doesn't already cover.
	epoch := cpEpoch
	err = wal.ReadRecords(dir, func(payload []byte) error {
		rec, err := wal.DecodeRecord(payload)
		if err != nil {
			return fmt.Errorf("engine: wal recovery: %w", err)
		}
		switch r := rec.(type) {
		case *wal.CommitRecord:
			if r.Epoch <= cpEpoch {
				return nil
			}
			for _, m := range r.Muts {
				t, ok := e.Table(m.Table)
				if !ok {
					return fmt.Errorf("engine: wal recovery: commit at epoch %d references unknown table %s", r.Epoch, m.Table)
				}
				if err := t.ReplayApply(m, r.Epoch); err != nil {
					return err
				}
			}
			if r.Epoch > epoch {
				epoch = r.Epoch
			}
		case *wal.CreateTableRecord:
			if r.Epoch <= cpEpoch {
				return nil
			}
			if _, err := e.CreateTable(r.Name, schemaOf(r.Cols)); err != nil {
				return fmt.Errorf("engine: wal recovery: %w", err)
			}
			if r.Epoch > epoch {
				epoch = r.Epoch
			}
		case *wal.CreateIndexRecord:
			if r.Epoch <= cpEpoch {
				return nil
			}
			if err := e.createIndex(r.Table, r.Column, r.Ordered); err != nil {
				return fmt.Errorf("engine: wal recovery: %w", err)
			}
			if r.Epoch > epoch {
				epoch = r.Epoch
			}
		case *wal.DropTableRecord:
			if r.Epoch <= cpEpoch {
				return nil
			}
			e.DropTable(r.Name)
			if r.Epoch > epoch {
				epoch = r.Epoch
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	e.TxnMgr.SetEpoch(epoch)

	// 3. Attach the log and start checkpointing. The immediate checkpoint
	// folds the replayed log into a fresh image and truncates it, so WAL
	// growth is bounded across restart cycles.
	log, err := wal.OpenLog(dir, mode)
	if err != nil {
		return err
	}
	e.dur = &durability{dir: dir, log: log}
	e.TxnMgr.SetSink(walSink{log: log})
	if err := e.Checkpoint(); err != nil {
		e.TxnMgr.SetSink(nil)
		e.dur = nil
		log.Close()
		return err
	}
	return nil
}

// Checkpoint writes a full image of every base table as of the current
// commit epoch, then truncates the WAL. Runs under the commit lock so the
// image is one consistent cut: the log is flushed first (commits already
// published must not outlive their log records), then the image is written
// atomically, then the now-redundant log is reset. Readers and in-progress
// writers are never blocked; only commit publication stalls briefly.
func (e *Engine) Checkpoint() error {
	if e.dur == nil {
		return nil
	}
	return e.TxnMgr.WithCommitLock(func(epoch uint64) error {
		if err := e.dur.log.Flush(); err != nil {
			return err
		}
		tables := e.Tables()
		sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
		cp := &wal.Checkpoint{Epoch: epoch}
		for _, t := range tables {
			defs := t.IndexDefs()
			idxs := make([]wal.IndexDef, len(defs))
			for i, d := range defs {
				idxs[i] = wal.IndexDef{Column: d.Column, Ordered: d.Ordered}
			}
			cp.Tables = append(cp.Tables, wal.TableImage{
				Name:    t.Name,
				Cols:    colsOf(t.Schema),
				Indexes: idxs,
				Slots:   t.CheckpointSlots(epoch),
			})
		}
		if err := wal.WriteCheckpoint(e.dur.dir, cp); err != nil {
			return err
		}
		if err := e.dur.log.Reset(); err != nil {
			return err
		}
		e.checkpoints.Add(1)
		return nil
	})
}

// Checkpoints returns how many checkpoint passes have completed.
func (e *Engine) Checkpoints() int64 { return e.checkpoints.Load() }

// WALStats returns the attached log's cumulative counters plus its sync
// mode; ok is false for in-memory engines.
func (e *Engine) WALStats() (st wal.Stats, mode wal.SyncMode, ok bool) {
	if e.dur == nil {
		return wal.Stats{}, 0, false
	}
	return e.dur.log.StatsSnapshot(), e.dur.log.Mode(), true
}

// CloseData flushes the log, writes a final checkpoint, and detaches the
// data directory. Graceful shutdown calls it after the server has drained,
// so restart recovery starts from a checkpoint and an empty log.
func (e *Engine) CloseData() error {
	if e.dur == nil {
		return nil
	}
	err := e.Checkpoint()
	if cerr := e.dur.log.Close(); err == nil {
		err = cerr
	}
	e.TxnMgr.SetSink(nil)
	e.dur = nil
	return err
}
