package engine_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"aggify/internal/ast"
	"aggify/internal/core"
	"aggify/internal/engine"
	"aggify/internal/exec"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
	"aggify/internal/testutil"
)

// bigDB builds a session over a table large enough to clear the planner's
// parallel row threshold (4096).
func bigDB(t *testing.T, rows int64) *engine.Session {
	t.Helper()
	sess := newDB(t, "create table bigt (k int, v int);")
	tab, _ := sess.Eng.Table("bigt")
	for i := int64(0); i < rows; i++ {
		_ = tab.Insert(nil, []sqltypes.Value{sqltypes.NewInt(i % 97), sqltypes.NewInt(i % 1001)})
	}
	return sess
}

func mustSelect(t *testing.T, sql string) *ast.Select {
	t.Helper()
	stmts := parser.MustParse(sql)
	q, ok := stmts[0].(*ast.QueryStmt)
	if !ok || len(stmts) != 1 {
		t.Fatalf("not a single query: %s", sql)
	}
	return q.Query
}

func explain(t *testing.T, sess *engine.Session, sql string) string {
	t.Helper()
	lines, err := sess.ExplainQuery(mustSelect(t, sql), false, sess.Ctx(nil, nil))
	if err != nil {
		t.Fatalf("explain %q: %v", sql, err)
	}
	return strings.Join(lines, "\n")
}

func TestParallelPlanByteIdentical(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sess := bigDB(t, 8000)
	const sql = "select k, count(*), sum(v), min(v), max(v), avg(v) from bigt where v % 3 <> 1 group by k"
	serialRows := query(t, sess, sql)

	par := sess.Eng.NewSession()
	par.Opts.Parallelism = 4
	plan := explain(t, par, sql)
	if !strings.Contains(plan, "ParallelAgg(workers=4") || !strings.Contains(plan, "ParallelScan(bigt, parts=4)") {
		t.Fatalf("expected a parallel plan:\n%s", plan)
	}
	_, parRows, err := par.Query(mustSelect(t, sql), par.Ctx(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	// No ORDER BY: the parallel plan must reproduce the serial first-seen
	// group order and every value exactly.
	if len(parRows) != len(serialRows) {
		t.Fatalf("parallel %d rows vs serial %d", len(parRows), len(serialRows))
	}
	for i := range parRows {
		for j := range parRows[i] {
			if !sqltypes.GroupEqual(parRows[i][j], serialRows[i][j]) {
				t.Fatalf("row %d: parallel %v vs serial %v", i, parRows[i], serialRows[i])
			}
		}
	}
}

// TestParallelSerialReasons checks that a parallel-enabled session surfaces
// why a plan stayed serial as an EXPLAIN label suffix.
func TestParallelSerialReasons(t *testing.T) {
	sess := bigDB(t, 8000)
	if _, err := interp.RunScript(sess, parser.MustParse(`
create table tiny (k int, v int);
insert into tiny values (1, 10), (2, 20);
GO
create function double(@x int) returns int as begin return @x * 2; end
GO
create aggregate NoMerge(@v int) returns int as
begin
  fields (@s int, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      set @s = 0;
      set @isInitialized = true;
    end
    set @s = @s + @v;
  end
  terminate begin return @s; end
end`)); err != nil {
		t.Fatal(err)
	}
	par := sess.Eng.NewSession()
	par.Opts.Parallelism = 4
	for _, tc := range []struct {
		name, sql, want string
	}{
		{"small input", "select sum(v) from tiny", "[serial: small input]"},
		{"not mergeable", "select NoMerge(v) from bigt", "[serial: aggregate not mergeable]"},
		{"scalar UDF", "select sum(double(v)) from bigt", "[serial: scalar UDF in worker expression]"},
		{"join", "select sum(b1.v) from bigt b1, tiny b2 where b1.k = b2.k", "[serial: plan shape not partitionable]"},
		{"subquery", "select count(*) from bigt where v < (select max(v) from tiny)", "[serial: subquery in worker expression]"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan := explain(t, par, tc.sql)
			if !strings.Contains(plan, tc.want) {
				t.Fatalf("want %q in plan:\n%s", tc.want, plan)
			}
			if strings.Contains(plan, "ParallelAgg") {
				t.Fatalf("plan should be serial:\n%s", plan)
			}
		})
	}
	// A serial session gets no suffix noise at all.
	if plan := explain(t, sess, "select sum(v) from tiny"); strings.Contains(plan, "[serial:") {
		t.Fatalf("serial session must not annotate plans:\n%s", plan)
	}
}

func TestSetMaxDOPStatement(t *testing.T) {
	sess := newDB(t, "")
	sess.Eng.DefaultMaxDOP = 2
	fresh := sess.Eng.NewSession()
	if fresh.Opts.Parallelism != 2 {
		t.Fatalf("new session parallelism = %d, want engine default 2", fresh.Opts.Parallelism)
	}
	if _, err := interp.RunScript(fresh, parser.MustParse("set maxdop = 4;")); err != nil {
		t.Fatal(err)
	}
	if fresh.Opts.Parallelism != 4 {
		t.Fatalf("after SET MAXDOP = 4: parallelism = %d", fresh.Opts.Parallelism)
	}
	// 0 resets to the engine default, mirroring SQL Server semantics.
	if _, err := interp.RunScript(fresh, parser.MustParse("set maxdop = 0;")); err != nil {
		t.Fatal(err)
	}
	if fresh.Opts.Parallelism != 2 {
		t.Fatalf("after SET MAXDOP = 0: parallelism = %d, want engine default 2", fresh.Opts.Parallelism)
	}
	if _, err := interp.RunScript(fresh, parser.MustParse("set maxdop = -1;")); err == nil {
		t.Fatal("negative MAXDOP should error")
	}
	// Unknown options are not silently treated as variables: SET targets
	// must be @variables or a recognized option keyword.
	if _, err := parser.Parse("set frobnicate = 1;"); err == nil {
		t.Fatal("unknown SET option should fail to parse")
	}
}

// customMergeDDL is a hand-written mergeable sum: the compiled path (pure
// slot machine) makes it ParallelSafe, so a big enough scan parallelizes.
const customMergeDDL = `
create aggregate MergeSum(@v int) returns int as
begin
  fields (@s int, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      set @s = 0;
      set @isInitialized = true;
    end
    set @s = @s + @v;
  end
  terminate begin return @s; end
  merge begin
    if @other_isInitialized = true
    begin
      if @isInitialized = true
      begin
        set @s = @s + @other_s;
      end
      else
      begin
        set @s = @other_s;
        set @isInitialized = true;
      end
    end
  end
end`

func TestCustomAggregateMergeParallel(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sess := bigDB(t, 8000)
	if _, err := interp.RunScript(sess, parser.MustParse(customMergeDDL)); err != nil {
		t.Fatal(err)
	}
	spec, ok := sess.Eng.Aggregate("mergesum")
	if !ok {
		t.Fatal("MergeSum not registered")
	}
	if !spec.Mergeable || !spec.ParallelSafe {
		t.Fatalf("MergeSum: Mergeable=%v ParallelSafe=%v, want both true", spec.Mergeable, spec.ParallelSafe)
	}
	const sql = "select k, MergeSum(v) from bigt group by k"
	serialRows := query(t, sess, sql)
	par := sess.Eng.NewSession()
	par.Opts.Parallelism = 4
	plan := explain(t, par, sql)
	if !strings.Contains(plan, "ParallelAgg(workers=4") {
		t.Fatalf("custom mergeable aggregate should parallelize:\n%s", plan)
	}
	_, parRows, err := par.Query(mustSelect(t, sql), par.Ctx(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(parRows) != len(serialRows) {
		t.Fatalf("parallel %d rows vs serial %d", len(parRows), len(serialRows))
	}
	for i := range parRows {
		for j := range parRows[i] {
			if !sqltypes.GroupEqual(parRows[i][j], serialRows[i][j]) {
				t.Fatalf("row %d: parallel %v vs serial %v", i, parRows[i], serialRows[i])
			}
		}
	}
}

// specMergeProperty splits vals into random contiguous partitions, folds each
// into its own instance, merges in partition order, and requires the exact
// serial result. Display comparison covers tuple-returning aggregates too.
func specMergeProperty(t *testing.T, sess *engine.Session, spec *exec.AggSpec,
	rng *rand.Rand, vals []sqltypes.Value, extraArgs []sqltypes.Value) {
	t.Helper()
	ctx := sess.Ctx(nil, nil)
	accumulate := func(vs []sqltypes.Value) exec.Aggregator {
		a := spec.New()
		a.Reset()
		for _, v := range vs {
			args := append([]sqltypes.Value{v}, extraArgs...)
			if err := a.Step(ctx, args); err != nil {
				t.Fatalf("%s: step: %v", spec.Name, err)
			}
		}
		return a
	}
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(len(vals) + 1)
		k := 1 + rng.Intn(5)
		cuts := make([]int, k+1)
		cuts[k] = n
		for i := 1; i < k; i++ {
			cuts[i] = rng.Intn(n + 1)
		}
		sort.Ints(cuts)
		serial := accumulate(vals[:n])
		want, err := serial.Result(ctx)
		if err != nil {
			t.Fatalf("%s: serial result: %v", spec.Name, err)
		}
		merged := accumulate(vals[cuts[0]:cuts[1]])
		for p := 1; p < k; p++ {
			part := accumulate(vals[cuts[p]:cuts[p+1]])
			if err := merged.Merge(part); err != nil {
				t.Fatalf("%s: merge: %v", spec.Name, err)
			}
		}
		got, err := merged.Result(ctx)
		if err != nil {
			t.Fatalf("%s: merged result: %v", spec.Name, err)
		}
		if want.Display() != got.Display() {
			t.Fatalf("trial %d %s: serial %s != merged %s (n=%d cuts=%v)",
				trial, spec.Name, want.Display(), got.Display(), n, cuts)
		}
	}
}

func propertyInput(rng *rand.Rand, n int, withNulls bool) []sqltypes.Value {
	vals := make([]sqltypes.Value, n)
	for i := range vals {
		if withNulls && rng.Intn(12) == 0 {
			vals[i] = sqltypes.Null
		} else {
			vals[i] = sqltypes.NewInt(rng.Int63n(201) - 100)
		}
	}
	return vals
}

// TestCustomMergeProperty runs the K-partition property against the same
// definition on both execution paths: compiled (registered through the
// engine) and interpreted (InterpretedAggSpec), NULLs included.
func TestCustomMergeProperty(t *testing.T) {
	sess := newDB(t, "")
	if _, err := interp.RunScript(sess, parser.MustParse(customMergeDDL)); err != nil {
		t.Fatal(err)
	}
	compiled, ok := sess.Eng.Aggregate("mergesum")
	if !ok || !compiled.ParallelSafe {
		t.Fatalf("expected a compiled (parallel-safe) spec, got %+v", compiled)
	}
	def, ok := sess.Eng.AggregateSource("mergesum")
	if !ok {
		t.Fatal("no aggregate source for mergesum")
	}
	interpreted := interp.InterpretedAggSpec(def, false)
	if !interpreted.Mergeable || interpreted.ParallelSafe {
		t.Fatalf("interpreted spec: Mergeable=%v ParallelSafe=%v, want true/false",
			interpreted.Mergeable, interpreted.ParallelSafe)
	}
	rng := rand.New(rand.NewSource(7))
	vals := propertyInput(rng, 120, true)
	t.Run("compiled", func(t *testing.T) { specMergeProperty(t, sess, compiled, rng, vals, nil) })
	t.Run("interpreted", func(t *testing.T) { specMergeProperty(t, sess, interpreted, rng, vals, nil) })
}

// TestGeneratedAggregateMerge runs Aggify on a cursor loop whose Δ is an
// additive fold and checks the generator derived a MERGE section, that the
// resulting spec is parallel-eligible, that the rewritten function matches
// under a parallel session, and that the K-partition property holds for the
// generated aggregate (non-zero initial values exercise the hidden
// base-field subtraction).
func TestGeneratedAggregateMerge(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sess := newDB(t, "create table vals (k int, v int);")
	tab, _ := sess.Eng.Table("vals")
	for i := int64(0); i < 6000; i++ {
		_ = tab.Insert(nil, []sqltypes.Value{sqltypes.NewInt(i % 11), sqltypes.NewInt(i % 503)})
	}
	if _, err := interp.RunScript(sess, parser.MustParse(`
create function sumAll(@init int) returns int as
begin
  declare @val int;
  declare @s int = @init;
  declare @n int = 0;
  declare c cursor for select v from vals;
  open c;
  fetch next from c into @val;
  while @@fetch_status = 0
  begin
    set @s = @s + @val;
    set @n = @n + 1;
    fetch next from c into @val;
  end
  close c;
  deallocate c;
  return @s + @n;
end`)); err != nil {
		t.Fatal(err)
	}
	before, err := interp.CallFunctionByName(sess, "sumAll", sqltypes.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}

	def, _ := sess.Eng.Function("sumAll")
	rewritten, res, err := core.TransformFunction(def, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loops) != 1 {
		t.Fatalf("loops transformed = %d (skipped %v)", len(res.Loops), res.Skipped)
	}
	lr := res.Loops[0]
	if lr.Aggregate.Merge == nil {
		t.Fatalf("additive fold should derive a MERGE section:\n%s", ast.Format(lr.Aggregate))
	}
	if err := sess.Eng.RegisterAggregate(lr.Aggregate, lr.OrderSensitive); err != nil {
		t.Fatal(err)
	}
	if err := sess.Eng.RegisterFunction(rewritten); err != nil {
		t.Fatal(err)
	}
	sess.Eng.InvalidatePlans()

	spec, ok := sess.Eng.Aggregate(lr.Aggregate.Name)
	if !ok {
		t.Fatalf("generated aggregate %s not registered", lr.Aggregate.Name)
	}
	if !spec.Mergeable || !spec.ParallelSafe {
		t.Fatalf("generated spec: Mergeable=%v ParallelSafe=%v, want both true",
			spec.Mergeable, spec.ParallelSafe)
	}

	// Rewritten function under serial and parallel sessions must agree with
	// the original cursor loop.
	after, err := interp.CallFunctionByName(sess, "sumAll", sqltypes.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	if before.Display() != after.Display() {
		t.Fatalf("rewrite changed the result: %s vs %s", before.Display(), after.Display())
	}
	par := sess.Eng.NewSession()
	par.Opts.Parallelism = 4
	// The rewritten body's aggregate query (over the Aggify derived table)
	// must itself take the parallel path.
	rewrittenQ := "select " + lr.Aggregate.Name + "(aggify_q.v, 0, 5) from (select v from vals) aggify_q"
	if plan := explain(t, par, rewrittenQ); !strings.Contains(plan, "ParallelAgg(workers=4") {
		t.Fatalf("generated aggregate should plan parallel:\n%s", plan)
	}
	parV, err := interp.CallFunctionByName(par, "sumAll", sqltypes.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	if before.Display() != parV.Display() {
		t.Fatalf("parallel result differs: %s vs %s", before.Display(), parV.Display())
	}

	// K-partition property for the generated aggregate. Parameter order is
	// fetch variables first, then @p_ parameters for the initialized fields
	// in sorted field order (@n before @s).
	rng := rand.New(rand.NewSource(11))
	vals := propertyInput(rng, 150, false)
	extra := []sqltypes.Value{sqltypes.NewInt(3), sqltypes.NewInt(7)} // @p_n = 3, @p_s = 7
	specMergeProperty(t, sess, spec, rng, vals, extra)
}
