package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"aggify/internal/ast"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// Virtual system tables: the aggify_stat_* views. Each resolves like an
// ordinary table through the planner catalog, but materializes a fresh
// unmanaged snapshot of engine telemetry at plan time. Because they flow
// through plan.Compile as plain *storage.Table scans, every query shape —
// filters, ORDER BY, aggregates, joins, EXPLAIN — works over them
// unchanged, embedded, over TCP, and in sqlsh, with zero new wire
// messages.

// SystemTablePrefix marks system-view names; CREATE TABLE rejects it.
const SystemTablePrefix = "aggify_stat_"

// System view names.
const (
	StatStatementsTable = SystemTablePrefix + "statements"
	StatActivityTable   = SystemTablePrefix + "activity"
	StatTablesTable     = SystemTablePrefix + "tables"
	StatWALTable        = SystemTablePrefix + "wal"
	StatColumnsTable    = SystemTablePrefix + "columns"
)

// IsSystemTable reports whether name (already lower-cased by callers)
// names one of the aggify_stat_* views.
func IsSystemTable(name string) bool {
	switch name {
	case StatStatementsTable, StatActivityTable, StatTablesTable, StatWALTable, StatColumnsTable:
		return true
	}
	return false
}

// systemTable materializes a point-in-time snapshot of the named view as
// an unmanaged table (mutations apply directly, scans need no snapshot —
// exactly how session temp tables already execute).
func (e *Engine) systemTable(name string) (*storage.Table, error) {
	switch name {
	case StatStatementsTable:
		return e.statStatements(), nil
	case StatActivityTable:
		return e.statActivity(), nil
	case StatTablesTable:
		return e.statTables(), nil
	case StatWALTable:
		return e.statWAL(), nil
	case StatColumnsTable:
		return e.statColumns(), nil
	}
	return nil, fmt.Errorf("engine: no system table %s", name)
}

func hexFP(fp uint64) sqltypes.Value {
	return sqltypes.NewString(fmt.Sprintf("%016x", fp))
}

var (
	strCol = func(name string, n int) storage.Column { return storage.Col(name, sqltypes.VarChar(n)) }
	intCol = func(name string) storage.Column { return storage.Col(name, sqltypes.BigInt) }
)

// statStatements renders the fingerprint store, sorted by fingerprint.
func (e *Engine) statStatements() *storage.Table {
	t := storage.NewTable(StatStatementsTable, storage.NewSchema(
		strCol("fingerprint", 16),
		strCol("query", 4096),
		intCol("calls"),
		intCol("errors"),
		intCol("total_micros"),
		intCol("min_micros"),
		intCol("max_micros"),
		intCol("rows"),
		intCol("logical_reads"),
		intCol("wal_bytes"),
		intCol("conflicts"),
		intCol("query_execs"),
		intCol("batch_execs"),
		intCol("row_execs"),
		intCol("parallel_execs"),
		intCol("rewritten"),
		intCol("plan_cache_hits"),
		intCol("plan_cache_misses"),
	))
	for _, r := range e.stmtStats.Snapshot() {
		t.Insert(nil, []sqltypes.Value{
			hexFP(r.Fingerprint),
			sqltypes.NewString(r.Query),
			sqltypes.NewInt(r.Calls),
			sqltypes.NewInt(r.Errors),
			sqltypes.NewInt(r.TotalMicros),
			sqltypes.NewInt(r.MinMicros),
			sqltypes.NewInt(r.MaxMicros),
			sqltypes.NewInt(r.Rows),
			sqltypes.NewInt(r.LogicalReads),
			sqltypes.NewInt(r.WALBytes),
			sqltypes.NewInt(r.Conflicts),
			sqltypes.NewInt(r.QueryExecs),
			sqltypes.NewInt(r.BatchExecs),
			sqltypes.NewInt(r.RowExecs),
			sqltypes.NewInt(r.ParallelExecs),
			sqltypes.NewInt(r.Rewritten),
			sqltypes.NewInt(r.PlanHits),
			sqltypes.NewInt(r.PlanMisses),
		})
	}
	return t
}

// statActivity renders the live-session registry. The querying session
// itself appears as active — it is running this very statement.
func (e *Engine) statActivity() *storage.Table {
	t := storage.NewTable(StatActivityTable, storage.NewSchema(
		intCol("session_id"),
		strCol("state", 16),
		strCol("fingerprint", 16),
		strCol("query", 4096),
		intCol("elapsed_micros"),
		intCol("epoch"),
		intCol("in_txn"),
		intCol("cursors"),
	))
	now := time.Now().UnixNano()
	for _, s := range e.Sessions() {
		state := "idle"
		elapsed := int64(0)
		if start := s.stmtStart.Load(); start != 0 {
			state = "active"
			elapsed = (now - start) / 1000
			if elapsed < 0 {
				elapsed = 0
			}
		}
		fp := s.curFP.Load()
		query := ""
		if fp != 0 {
			// Best-effort: the template lands in the store when the
			// statement finishes; a first-ever execution shows "".
			query, _ = e.stmtStats.Lookup(fp)
		}
		inTxn := int64(0)
		if s.inTxn.Load() {
			inTxn = 1
		}
		t.Insert(nil, []sqltypes.Value{
			sqltypes.NewInt(int64(s.ID)),
			sqltypes.NewString(state),
			hexFP(fp),
			sqltypes.NewString(query),
			sqltypes.NewInt(elapsed),
			sqltypes.NewInt(int64(s.curEpoch.Load())),
			sqltypes.NewInt(inTxn),
			sqltypes.NewInt(s.cursorsOpen.Load()),
		})
	}
	return t
}

// statTables renders per-table storage shape: live rows, slots, version-
// chain length, and reclaimable garbage.
func (e *Engine) statTables() *storage.Table {
	t := storage.NewTable(StatTablesTable, storage.NewSchema(
		strCol("name", 128),
		intCol("rows"),
		intCol("slots"),
		intCol("versions"),
		intCol("garbage"),
		intCol("indexes"),
	))
	tables := e.Tables()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	for _, tab := range tables {
		cs := tab.ChainStats()
		t.Insert(nil, []sqltypes.Value{
			sqltypes.NewString(tab.Name),
			sqltypes.NewInt(int64(tab.RowCount())),
			sqltypes.NewInt(int64(tab.SlotCount())),
			sqltypes.NewInt(cs.Versions),
			sqltypes.NewInt(cs.Garbage),
			sqltypes.NewInt(int64(len(tab.IndexColumns()))),
		})
	}
	return t
}

// statWAL renders one row of durability and transaction-manager counters.
// In-memory engines report enabled=0 with zeroed WAL columns; the txn
// counters are always live.
func (e *Engine) statWAL() *storage.Table {
	t := storage.NewTable(StatWALTable, storage.NewSchema(
		intCol("enabled"),
		strCol("mode", 16),
		intCol("wal_bytes"),
		intCol("wal_synced"),
		intCol("wal_records"),
		intCol("wal_fsyncs"),
		intCol("checkpoints"),
		intCol("epoch"),
		intCol("live_snapshots"),
		intCol("txn_begins"),
		intCol("txn_commits"),
		intCol("txn_rollbacks"),
		intCol("txn_conflicts"),
	))
	enabled, mode := int64(0), ""
	var wb, wsync, wrec, wfs int64
	if st, m, ok := e.WALStats(); ok {
		enabled, mode = 1, m.String()
		wb, wsync = int64(st.AppendedBytes), int64(st.SyncedBytes)
		wrec, wfs = st.Records, st.Fsyncs
	}
	c := e.TxnMgr.CounterSnapshot()
	t.Insert(nil, []sqltypes.Value{
		sqltypes.NewInt(enabled),
		sqltypes.NewString(mode),
		sqltypes.NewInt(wb),
		sqltypes.NewInt(wsync),
		sqltypes.NewInt(wrec),
		sqltypes.NewInt(wfs),
		sqltypes.NewInt(e.Checkpoints()),
		sqltypes.NewInt(int64(e.TxnMgr.Epoch())),
		sqltypes.NewInt(int64(e.TxnMgr.LiveSnapshots())),
		sqltypes.NewInt(c.Begins),
		sqltypes.NewInt(c.Commits),
		sqltypes.NewInt(c.Rollbacks),
		sqltypes.NewInt(c.Conflicts),
	})
	return t
}

// statColumns renders per-indexed-column statistics: the distinct-value
// estimate and the equi-depth histogram the access-path cost model reads.
// One row per histogram bucket; a column whose histogram is empty (no
// non-NULL values) still gets one row with a NULL bucket.
func (e *Engine) statColumns() *storage.Table {
	t := storage.NewTable(StatColumnsTable, storage.NewSchema(
		strCol("table_name", 128),
		strCol("column_name", 128),
		strCol("index_kind", 8),
		intCol("distinct"),
		intCol("sampled"),
		intCol("bucket"),
		strCol("hi", 64),
		intCol("bucket_rows"),
		intCol("bucket_ndv"),
	))
	tables := e.Tables()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	for _, tab := range tables {
		defs := tab.IndexDefs()
		if len(defs) == 0 {
			continue
		}
		st := tab.Statistics()
		sort.Slice(defs, func(i, j int) bool { return defs[i].Column < defs[j].Column })
		for _, d := range defs {
			kind := "hash"
			if d.Ordered {
				kind = "ordered"
			}
			distinct := int64(st.DistinctOf(tab.Schema, d.Column))
			h := st.Histograms[d.Column]
			base := []sqltypes.Value{
				sqltypes.NewString(tab.Name),
				sqltypes.NewString(d.Column),
				sqltypes.NewString(kind),
				sqltypes.NewInt(distinct),
				sqltypes.NewInt(int64(h.Sampled)),
			}
			if len(h.Buckets) == 0 {
				t.Insert(nil, append(append([]sqltypes.Value{}, base...),
					sqltypes.Null, sqltypes.Null, sqltypes.Null, sqltypes.Null))
				continue
			}
			for i, b := range h.Buckets {
				t.Insert(nil, append(append([]sqltypes.Value{}, base...),
					sqltypes.NewInt(int64(i)),
					sqltypes.NewString(b.Hi.String()),
					sqltypes.NewInt(int64(b.Rows)),
					sqltypes.NewInt(int64(b.NDV))))
			}
		}
	}
	return t
}

// selectRefsSystemTable reports whether any table reference anywhere in q
// (FROM items, joins, CTE bodies, UNION branches, derived tables, and
// subqueries inside expressions) names a system view. Such queries are
// compiled fresh on every execution and never enter the plan cache — their
// "table" is a point-in-time snapshot that must be rebuilt per statement.
func selectRefsSystemTable(q *ast.Select) bool {
	return selectRefsTable(q, func(name string) bool { return IsSystemTable(name) })
}

// selectRefsTempTable reports whether any table reference anywhere in q
// names a session temp table (#name) or table variable (@name). Such
// queries stay out of the text-keyed plan cache: identical SQL in two
// sessions resolves to different tables.
func selectRefsTempTable(q *ast.Select) bool {
	return selectRefsTable(q, func(name string) bool {
		return len(name) > 0 && (name[0] == '#' || name[0] == '@')
	})
}

// selectRefsTable walks every table reference in q (FROM items, joins, CTE
// bodies, UNION branches, derived tables, and subqueries inside
// expressions) and reports whether pred matches any lower-cased name.
func selectRefsTable(q *ast.Select, pred func(name string) bool) bool {
	found := false
	var visit func(q *ast.Select)
	var visitTE func(te ast.TableExpr)
	visitTE = func(te ast.TableExpr) {
		switch t := te.(type) {
		case *ast.TableRef:
			if pred(strings.ToLower(t.Name)) {
				found = true
			}
		case *ast.SubqueryRef:
			visit(t.Query)
		case *ast.Join:
			visitTE(t.L)
			visitTE(t.R)
		}
	}
	visit = func(q *ast.Select) {
		for ; q != nil && !found; q = q.Union {
			for _, cte := range q.With {
				visit(cte.Query)
			}
			for _, te := range q.From {
				visitTE(te)
			}
			ast.WalkSelectExprs(q, func(e ast.Expr) bool {
				switch x := e.(type) {
				case *ast.Subquery:
					visit(x.Query)
				case *ast.InExpr:
					if x.Query != nil {
						visit(x.Query)
					}
				}
				return !found
			})
		}
	}
	visit(q)
	return found
}
