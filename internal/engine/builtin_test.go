package engine_test

import (
	"strings"
	"testing"

	"aggify/internal/ast"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
)

// mustParseQuery parses a single SELECT.
func mustParseQuery(t *testing.T, sql string) *ast.Select {
	t.Helper()
	return parser.MustParse(sql)[0].(*ast.QueryStmt).Query
}

func TestBuiltinScalarFunctions(t *testing.T) {
	sess := newDB(t, "")
	cases := []struct {
		sql  string
		want string
	}{
		{"select abs(-4)", "4"},
		{"select abs(-4.5)", "4.5"},
		{"select ceiling(1.2)", "2"},
		{"select floor(1.8)", "1"},
		{"select sqrt(9.0)", "3"},
		{"select round(2.567, 2)", "2.57"},
		{"select round(2.4)", "2"},
		{"select power(2, 10)", "1024"},
		{"select sign(-3)", "-1"},
		{"select sign(0)", "0"},
		{"select upper('abc')", "'ABC'"},
		{"select lower('AbC')", "'abc'"},
		{"select ltrim('  x')", "'x'"},
		{"select rtrim('x  ')", "'x'"},
		{"select len('hello')", "5"},
		{"select substring('hello', 2, 3)", "'ell'"},
		{"select substring('hello', 4, 99)", "'lo'"},
		{"select replace('a-b-c', '-', '+')", "'a+b+c'"},
		{"select coalesce(null, null, 7)", "7"},
		{"select coalesce(null, 'x', 'y')", "'x'"},
		{"select isnull(null, 5)", "5"},
		{"select isnull(3, 5)", "3"},
		{"select nullif(4, 4)", "NULL"},
		{"select nullif(4, 5)", "4"},
		{"select iif(2 > 1, 'yes', 'no')", "'yes'"},
		{"select year(date '1998-07-21')", "1998"},
		{"select month(date '1998-07-21')", "7"},
		{"select day(date '1998-07-21')", "21"},
		{"select cast_int('42')", "42"},
		{"select cast_float(3)", "3"},
		{"select str(12) || '!'", "'12!'"},
		{"select tuple_get((select 1, 'a'), 1)", "'a'"},
		{"select abs(null)", "NULL"},
		{"select upper(null)", "NULL"},
		{"select year(null)", "NULL"},
	}
	for _, c := range cases {
		rows := query(t, sess, c.sql)
		if got := rows[0][0].String(); got != c.want {
			t.Errorf("%s = %s, want %s", c.sql, got, c.want)
		}
	}
}

func TestBuiltinScalarErrors(t *testing.T) {
	sess := newDB(t, "")
	for _, sql := range []string{
		"select substring('x', 1)",           // arity
		"select tuple_get(5, 0)",             // non-tuple
		"select abs('text')",                 // non-numeric
		"select tuple_get((select 1, 2), 9)", // out of range
	} {
		stmts := mustParseQuery(t, sql)
		if _, _, err := sess.Query(stmts, sess.Ctx(nil, nil)); err == nil {
			t.Errorf("%s should error", sql)
		}
	}
}

func TestInSubqueryThreeValuedLogic(t *testing.T) {
	sess := newDB(t, `
create table vals (v int);
insert into vals values (1), (2), (null);
create table probe (p int);
insert into probe values (1), (5), (null);
`)
	// 1 IN {1,2,NULL} -> true; 5 IN {1,2,NULL} -> NULL (not false!);
	// NULL IN ... -> NULL. WHERE keeps only TRUE.
	rows := query(t, sess, "select p from probe where p in (select v from vals)")
	if len(rows) != 1 || rows[0][0].Int() != 1 {
		t.Fatalf("IN rows = %v", rows)
	}
	// NOT IN with a NULL in the list keeps nothing (classic trap).
	rows = query(t, sess, "select p from probe where p not in (select v from vals)")
	if len(rows) != 0 {
		t.Fatalf("NOT IN with NULLs must be empty, got %v", rows)
	}
	// Without the NULL row, NOT IN behaves.
	sess2 := newDB(t, `
create table vals (v int);
insert into vals values (1), (2);
create table probe (p int);
insert into probe values (1), (5);
`)
	rows = query(t, sess2, "select p from probe where p not in (select v from vals)")
	if len(rows) != 1 || rows[0][0].Int() != 5 {
		t.Fatalf("NOT IN rows = %v", rows)
	}
}

func TestNonEquiJoin(t *testing.T) {
	sess := newDB(t, `
create table lo (x int);
create table hi (y int);
insert into lo values (1), (5), (9);
insert into hi values (4), (8);
`)
	// Non-equality ON forces a nested-loop join.
	rows := query(t, sess, "select x, y from lo join hi on x < y order by x, y")
	want := [][2]int64{{1, 4}, {1, 8}, {5, 8}}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i, w := range want {
		if rows[i][0].Int() != w[0] || rows[i][1].Int() != w[1] {
			t.Fatalf("row %d = %v, want %v", i, rows[i], w)
		}
	}
	// Left join with non-equi ON pads misses.
	rows = query(t, sess, "select x, y from lo left join hi on x > y order by x")
	if len(rows) != 4 { // 1 miss + (5,4) + (9,4) + (9,8)
		t.Fatalf("left non-equi rows = %v", rows)
	}
	if rows[0][0].Int() != 1 || !rows[0][1].IsNull() {
		t.Fatalf("miss row = %v", rows[0])
	}
}

func TestIndexNLJoinWithResidual(t *testing.T) {
	// Two join predicates on the same pair: one drives the index seek, the
	// other becomes an NL residual.
	sess := newDB(t, `
create table a (k int, tag int);
create table b (k int, tag int, payload int);
create index ib on b(k);
insert into a values (1, 1), (1, 2), (2, 1);
insert into b values (1, 1, 100), (1, 2, 200), (2, 2, 300);
`)
	rows := query(t, sess, `select payload from a, b
	                        where a.k = b.k and a.tag = b.tag order by payload`)
	if len(rows) != 2 || rows[0][0].Int() != 100 || rows[1][0].Int() != 200 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestQueryScalarHelper(t *testing.T) {
	sess := newDB(t, "create table one (v int); insert into one values (42);")
	stmts := mustParseQuery(t, "select v from one")
	v, err := sess.QueryScalar(stmts, sess.Ctx(nil, nil))
	if err != nil || v.Int() != 42 {
		t.Fatalf("scalar = %v, %v", v, err)
	}
	empty := mustParseQuery(t, "select v from one where v = 0")
	v, err = sess.QueryScalar(empty, sess.Ctx(nil, nil))
	if err != nil || !v.IsNull() {
		t.Fatalf("empty scalar = %v, %v", v, err)
	}
	multi := mustParseQuery(t, "select v, v from one")
	v, err = sess.QueryScalar(multi, sess.Ctx(nil, nil))
	if err != nil || v.Kind() != sqltypes.KindTuple {
		t.Fatalf("multi-col scalar = %v, %v", v, err)
	}
}

func TestTempTableDrop(t *testing.T) {
	sess := newDB(t, "create table #tmp (v int); insert into #tmp values (1);")
	if _, ok := sess.TempTable("#tmp"); !ok {
		t.Fatal("missing temp table")
	}
	sess.DropTempTable("#tmp")
	if _, ok := sess.TempTable("#tmp"); ok {
		t.Fatal("temp table survived drop")
	}
	sess.Eng.DropTable("nonexistent") // no-op, must not panic
}

func TestCTEReferencedTwice(t *testing.T) {
	sess := newDB(t, `
create table n (v int);
insert into n values (1), (2), (3);
`)
	rows := query(t, sess, `with doubled(d) as (select v * 2 from n)
	                        select a.d, b.d from doubled a, doubled b
	                        where a.d = b.d order by a.d`)
	if len(rows) != 3 || rows[2][0].Int() != 6 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestStringConcatOfColumns(t *testing.T) {
	sess := newDB(t, `
create table people (first varchar(10), last varchar(10));
insert into people values ('ada', 'lovelace');
`)
	rows := query(t, sess, "select first || ' ' || last from people")
	if rows[0][0].Str() != "ada lovelace" {
		t.Fatalf("concat = %v", rows[0][0])
	}
	if !strings.Contains(rows[0][0].Display(), " ") {
		t.Fatal("display broken")
	}
}

// TestOuterRefThroughNLJoinRightSide pins the trickiest scope-depth case:
// a correlated subquery whose FROM contains a nested-loop join whose RIGHT
// side is a derived table referencing the subquery's outer column. The NL
// join pushes the left row one outer level down, so the derived table's
// outer reference must be compiled one level deeper.
func TestOuterRefThroughNLJoinRightSide(t *testing.T) {
	sess := newDB(t, `
create table t (a int);
create table lo (x int);
create table hi (y int);
insert into t values (5), (9);
insert into lo values (1), (8);
insert into hi values (4), (8), (12);
`)
	rows := query(t, sess, `
	  select a, (select count(*)
	             from lo join (select y from hi where y > t.a) d on lo.x < d.y) as n
	  from t order by a`)
	// a=5: d={8,12}; pairs with lo.x<d.y: (1,8),(1,12),(8,12) = 3
	// a=9: d={12};   pairs: (1,12),(8,12) = 2
	if len(rows) != 2 || rows[0][1].Int() != 3 || rows[1][1].Int() != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

// TestOuterRefThroughIndexNLJoin covers the comma-join index-NL path with
// an additional correlated filter on the indexed unit.
func TestOuterRefThroughIndexNLJoin(t *testing.T) {
	sess := newDB(t, `
create table t (a int);
create table l (k int);
create table r (k int, v int);
create index ir on r(k);
insert into t values (10), (25);
insert into l values (1), (2);
insert into r values (1, 5), (1, 20), (2, 30);
`)
	rows := query(t, sess, `
	  select a, (select count(*) from l, r where l.k = r.k and r.v < t.a) as n
	  from t order by a`)
	// a=10: matches (1,5) only = 1; a=25: (1,5),(1,20) = 2
	if len(rows) != 2 || rows[0][1].Int() != 1 || rows[1][1].Int() != 2 {
		t.Fatalf("rows = %v", rows)
	}
}
