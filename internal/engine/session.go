package engine

import (
	"fmt"
	"strings"
	"sync/atomic"

	"aggify/internal/ast"
	"aggify/internal/exec"
	"aggify/internal/plan"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
	"aggify/internal/trace"
	"aggify/internal/txn"
)

// Session is one connection to the engine: it carries I/O statistics,
// planner options, the interrupt channel, and collected PRINT output.
type Session struct {
	Eng   *Engine
	Stats *storage.Stats
	Opts  plan.Options
	// Interrupt aborts long executions when closed (used to reproduce the
	// paper's "forcibly terminated after N hours" runs on a budget).
	Interrupt <-chan struct{}
	// InMemoryWorktables disables disk-backed cursor worktables (the
	// materialization-cost ablation; see storage.Worktable).
	InMemoryWorktables bool
	// Tracer, when set, emits server.plan / server.execute spans under
	// TraceParent (installed per request by the server's backend). Both are
	// nil/zero outside traced server requests, which costs nothing.
	Tracer      *trace.Tracer
	TraceParent trace.SpanContext

	prints     []string
	tempTables map[string]*storage.Table // session temp tables (#name)
	tx         *txn.Txn                  // open explicit transaction, nil in auto-commit

	// ID keys the session in the engine's live registry (assigned by
	// NewSession, never 0).
	ID uint64

	// Activity state published for aggify_stat_activity, and cumulative
	// per-session counters the statement recorder (stmtstats.go) diffs.
	// All atomic: the activity view reads them from other goroutines.
	curFP       atomic.Uint64 // fingerprint of the current/last statement
	stmtStart   atomic.Int64  // unixnano the current statement began; 0 = idle
	curEpoch    atomic.Uint64 // epoch pinned by the most recent read snapshot
	cursorsOpen atomic.Int64  // open-cursor gauge
	inTxn       atomic.Bool   // mirrors tx != nil for cross-goroutine reads

	conflicts      atomic.Int64 // write conflicts hit by this session's DML
	queryExecs     atomic.Int64 // query executions
	batchExecs     atomic.Int64 // ... with batch-mode plans
	parallelExecs  atomic.Int64 // ... with parallel plans
	rewrittenExecs atomic.Int64 // ... whose plans had rewrite rules fire

	planCacheHits   atomic.Int64 // plan compilations avoided by the plan cache
	planCacheMisses atomic.Int64 // plan compilations the cache could not serve
}

// NewSession creates a session with fresh statistics and registers it in
// the engine's live-session registry (Close unregisters it).
func (e *Engine) NewSession() *Session {
	s := &Session{Eng: e, Stats: &storage.Stats{}, tempTables: map[string]*storage.Table{}}
	s.Opts.Parallelism = e.DefaultMaxDOP
	e.registerSession(s)
	return s
}

// SetMaxDOP sets the session's degree of parallelism: n > 1 allows parallel
// plans with up to n workers, 1 forces serial execution, and 0 resets to the
// engine's default.
func (s *Session) SetMaxDOP(n int) {
	if n == 0 {
		n = s.Eng.DefaultMaxDOP
	}
	s.Opts.Parallelism = n
}

// CreateTempTable registers a session-scoped temp table (#name). Creating
// an existing temp table replaces it.
func (s *Session) CreateTempTable(name string, schema *storage.Schema) *storage.Table {
	name = strings.ToLower(name)
	t := storage.NewTable(name, schema)
	s.tempTables[name] = t
	return t
}

// TempTable resolves a session temp table.
func (s *Session) TempTable(name string) (*storage.Table, bool) {
	t, ok := s.tempTables[strings.ToLower(name)]
	return t, ok
}

// DropTempTable removes a session temp table.
func (s *Session) DropTempTable(name string) {
	delete(s.tempTables, strings.ToLower(name))
}

// Print records a PRINT message.
func (s *Session) Print(msg string) { s.prints = append(s.prints, msg) }

// Prints returns and clears the collected PRINT output.
func (s *Session) Prints() []string {
	out := s.prints
	s.prints = nil
	return out
}

// Ctx builds an execution context. vars resolves procedural variables and
// temp resolves table variables; both may be nil outside procedures.
func (s *Session) Ctx(vars func(string) (sqltypes.Value, bool), temp func(string) (*storage.Table, bool)) *exec.Ctx {
	ctx := &exec.Ctx{
		Vars:      vars,
		Temp:      s.tempResolver(temp),
		Stats:     s.Stats,
		Interrupt: s.Interrupt,
		Owner:     s,
	}
	ctx.CallFunc = func(name string, args []sqltypes.Value) (sqltypes.Value, error) {
		def, ok := s.Eng.Function(name)
		if !ok {
			return sqltypes.Null, fmt.Errorf("engine: unknown function %s", name)
		}
		if s.Eng.FuncCaller == nil {
			return sqltypes.Null, fmt.Errorf("engine: no function caller installed (missing interp.Install)")
		}
		return s.Eng.FuncCaller(s, ctx, def, args)
	}
	return ctx
}

// tempResolver layers a frame-local resolver over the session temp tables.
func (s *Session) tempResolver(frame func(string) (*storage.Table, bool)) func(string) (*storage.Table, bool) {
	return func(name string) (*storage.Table, bool) {
		if frame != nil {
			if t, ok := frame(name); ok {
				return t, true
			}
		}
		return s.TempTable(name)
	}
}

// Catalog returns the planner catalog bound to a temp-table resolver.
func (s *Session) Catalog(temp func(string) (*storage.Table, bool)) plan.Catalog {
	return sessionCatalog{eng: s.Eng, temp: s.tempResolver(temp)}
}

// PlanQuery compiles (with caching) a query.
func (s *Session) PlanQuery(q *ast.Select, temp func(string) (*storage.Table, bool)) (*plan.Plan, error) {
	return s.Eng.cachedPlan(s, temp, s.Opts, q)
}

// notePlanCache counts a plan-cache outcome for this session; the
// statement recorder diffs the counters into aggify_stat_statements.
func (s *Session) notePlanCache(hit bool) {
	if s == nil {
		return
	}
	if hit {
		s.planCacheHits.Add(1)
	} else {
		s.planCacheMisses.Add(1)
	}
}

// PlanCacheHits returns the session's cumulative plan-cache hit count.
func (s *Session) PlanCacheHits() int64 { return s.planCacheHits.Load() }

// PlanCacheMisses returns the session's cumulative plan-cache miss count.
func (s *Session) PlanCacheMisses() int64 { return s.planCacheMisses.Load() }

// Query plans and runs a SELECT, returning column names and rows.
func (s *Session) Query(q *ast.Select, ctx *exec.Ctx) ([]string, []exec.Row, error) {
	var temp func(string) (*storage.Table, bool)
	if ctx != nil {
		temp = ctx.Temp
	} else {
		ctx = s.Ctx(nil, nil)
	}
	defer s.PinRead(ctx)()
	psp := s.Tracer.StartSpan(s.TraceParent, "server.plan")
	p, err := s.PlanQuery(q, temp)
	psp.End()
	if err != nil {
		return nil, nil, err
	}
	s.notePlanExec(p)
	esp := s.Tracer.StartSpan(s.TraceParent, "server.execute")
	rows, err := p.Run(ctx)
	if err != nil {
		esp.End()
		return nil, nil, err
	}
	esp.SetAttrInt("rows", int64(len(rows)))
	esp.End()
	s.Stats.RowsEmitted.Add(int64(len(rows)))
	return p.Columns, rows, nil
}

// notePlanExec accumulates the per-session plan-shape counters the
// statement recorder diffs into aggify_stat_statements.
func (s *Session) notePlanExec(p *plan.Plan) {
	s.queryExecs.Add(1)
	if p.Batched {
		s.batchExecs.Add(1)
	}
	if p.Parallel {
		s.parallelExecs.Add(1)
	}
	if len(p.Rewrites) > 0 {
		s.rewrittenExecs.Add(1)
	}
}

// ExplainQuery compiles a query and returns its plan rendered as lines.
// Without analyze it returns the static plan tree; with analyze it executes
// the query (discarding rows) and returns the tree annotated with per-
// operator runtime counters, followed by a session-level stats-delta footer.
func (s *Session) ExplainQuery(q *ast.Select, analyze bool, ctx *exec.Ctx) ([]string, error) {
	var temp func(string) (*storage.Table, bool)
	if ctx != nil {
		temp = ctx.Temp
	} else {
		ctx = s.Ctx(nil, nil)
	}
	defer s.PinRead(ctx)()
	p, err := s.PlanQuery(q, temp)
	if err != nil {
		return nil, err
	}
	if !analyze {
		lines := splitPlanLines(p.Explain.String())
		if len(p.Rewrites) > 0 {
			lines = append([]string{"rewrites: " + strings.Join(p.Rewrites, " ")}, lines...)
		}
		return lines, nil
	}
	before := s.Stats.Snapshot()
	rows, ins, err := p.RunInstrumented(ctx)
	if err != nil {
		return nil, err
	}
	s.Stats.RowsEmitted.Add(int64(len(rows)))
	delta := s.Stats.Snapshot().Sub(before)
	lines := splitPlanLines(ins.Render())
	if len(p.Rewrites) > 0 {
		lines = append([]string{"rewrites: " + strings.Join(p.Rewrites, " ")}, lines...)
	}
	lines = append(lines, fmt.Sprintf("-- stats: rows=%d reads=%d worktable w=%d r=%d seeks=%d",
		len(rows), delta.LogicalReads, delta.WorktableWrites, delta.WorktableReads, delta.IndexSeeks))
	return lines, nil
}

// splitPlanLines splits a rendered plan into lines, dropping the trailing
// newline's empty element.
func splitPlanLines(s string) []string {
	return strings.Split(strings.TrimRight(s, "\n"), "\n")
}

// QueryScalar runs a query expected to produce a single value (first column
// of the first row; NULL when the result is empty).
func (s *Session) QueryScalar(q *ast.Select, ctx *exec.Ctx) (sqltypes.Value, error) {
	_, rows, err := s.Query(q, ctx)
	if err != nil {
		return sqltypes.Null, err
	}
	if len(rows) == 0 {
		return sqltypes.Null, nil
	}
	if len(rows) > 1 {
		return sqltypes.Null, fmt.Errorf("engine: scalar query returned %d rows", len(rows))
	}
	if len(rows[0]) == 1 {
		return rows[0][0], nil
	}
	return sqltypes.NewTuple(rows[0]), nil
}

// resolveDMLTable resolves a DML target: base table or temp/table variable.
func (s *Session) resolveDMLTable(name string, ctx *exec.Ctx) (*storage.Table, error) {
	name = strings.ToLower(name)
	if len(name) > 0 && (name[0] == '@' || name[0] == '#') {
		if ctx != nil && ctx.Temp != nil {
			if t, ok := ctx.Temp(name); ok {
				return t, nil
			}
		}
		return nil, fmt.Errorf("engine: undeclared table variable %s", name)
	}
	if t, ok := s.Eng.Table(name); ok {
		return t, nil
	}
	return nil, fmt.Errorf("engine: no table %s", name)
}

// Insert executes an INSERT statement. All inserted rows commit atomically
// in the statement's (implicit or explicit) transaction.
func (s *Session) Insert(st *ast.InsertStmt, ctx *exec.Ctx) (int, error) {
	if ctx == nil {
		ctx = s.Ctx(nil, nil)
	}
	tab, err := s.resolveDMLTable(st.Table, ctx)
	if err != nil {
		return 0, err
	}
	// Map the column list (or the full schema) to target ordinals.
	ordinals := make([]int, 0, tab.Schema.Len())
	if len(st.Columns) == 0 {
		for i := range tab.Schema.Columns {
			ordinals = append(ordinals, i)
		}
	} else {
		for _, cname := range st.Columns {
			ord := tab.Schema.Ordinal(cname)
			if ord < 0 {
				return 0, fmt.Errorf("engine: table %s has no column %s", tab.Name, cname)
			}
			ordinals = append(ordinals, ord)
		}
	}
	buildRow := func(vals []sqltypes.Value) ([]sqltypes.Value, error) {
		if len(vals) != len(ordinals) {
			return nil, fmt.Errorf("engine: INSERT into %s expects %d values, got %d", tab.Name, len(ordinals), len(vals))
		}
		row := make([]sqltypes.Value, tab.Schema.Len())
		for i := range row {
			row[i] = sqltypes.Null
		}
		for i, ord := range ordinals {
			row[ord] = vals[i]
		}
		return row, nil
	}
	// Evaluate the source (SELECT or VALUES) into rows first, then apply
	// them in one transaction.
	var newRows [][]sqltypes.Value
	if st.Query != nil {
		_, rows, err := s.Query(st.Query, ctx)
		if err != nil {
			return 0, err
		}
		for _, r := range rows {
			row, err := buildRow(r)
			if err != nil {
				return 0, err
			}
			newRows = append(newRows, row)
		}
	} else {
		cat := s.Catalog(tempOf(ctx))
		for _, exprRow := range st.Rows {
			vals := make([]sqltypes.Value, len(exprRow))
			for i, e := range exprRow {
				sc, err := plan.CompileScalar(cat, s.Opts, e)
				if err != nil {
					return 0, err
				}
				if vals[i], err = sc(ctx, nil); err != nil {
					return 0, err
				}
			}
			row, err := buildRow(vals)
			if err != nil {
				return 0, err
			}
			newRows = append(newRows, row)
		}
	}
	return s.dmlApply(ctx, tab, func(tx *txn.Txn) (int, error) {
		for i, row := range newRows {
			if err := tab.Insert(tx, row); err != nil {
				return i, err
			}
		}
		return len(newRows), nil
	})
}

// Update executes an UPDATE statement, returning the number of rows
// modified.
func (s *Session) Update(st *ast.UpdateStmt, ctx *exec.Ctx) (int, error) {
	if ctx == nil {
		ctx = s.Ctx(nil, nil)
	}
	tab, err := s.resolveDMLTable(st.Table, ctx)
	if err != nil {
		return 0, err
	}
	cat := s.Catalog(tempOf(ctx))
	var pred exec.Scalar
	if st.Where != nil {
		if pred, err = plan.CompileRowExpr(cat, s.Opts, st.Where, tab); err != nil {
			return 0, err
		}
	}
	type setter struct {
		ord int
		sc  exec.Scalar
	}
	setters := make([]setter, len(st.Sets))
	for i, sc := range st.Sets {
		ord := tab.Schema.Ordinal(sc.Column)
		if ord < 0 {
			return 0, fmt.Errorf("engine: table %s has no column %s", tab.Name, sc.Column)
		}
		compiled, err := plan.CompileRowExpr(cat, s.Opts, sc.Value, tab)
		if err != nil {
			return 0, err
		}
		setters[i] = setter{ord: ord, sc: compiled}
	}
	// Collect matching rows at the transaction's snapshot first, then
	// apply (avoids scan-while-update). dmlApply installs the write
	// transaction's snapshot as ctx.Snap, so the collect scan, the apply,
	// and the conflict checks all agree on one epoch.
	return s.dmlApply(ctx, tab, func(tx *txn.Txn) (int, error) {
		type change struct {
			rid int
			row []sqltypes.Value
		}
		var changes []change
		var evalErr error
		tab.Scan(ctx.Snap, s.Stats, func(rid int, row []sqltypes.Value) bool {
			if pred != nil {
				v, err := pred(ctx, row)
				if err != nil {
					evalErr = err
					return false
				}
				if !v.Truthy() {
					return true
				}
			}
			newRow := append([]sqltypes.Value(nil), row...)
			for _, st := range setters {
				v, err := st.sc(ctx, row)
				if err != nil {
					evalErr = err
					return false
				}
				newRow[st.ord] = v
			}
			changes = append(changes, change{rid, newRow})
			return true
		})
		if evalErr != nil {
			return 0, evalErr
		}
		for _, ch := range changes {
			if err := tab.Update(tx, ch.rid, ch.row); err != nil {
				return 0, err
			}
		}
		return len(changes), nil
	})
}

// Delete executes a DELETE statement, returning the number of rows removed.
func (s *Session) Delete(st *ast.DeleteStmt, ctx *exec.Ctx) (int, error) {
	if ctx == nil {
		ctx = s.Ctx(nil, nil)
	}
	tab, err := s.resolveDMLTable(st.Table, ctx)
	if err != nil {
		return 0, err
	}
	var pred exec.Scalar
	if st.Where != nil {
		if pred, err = plan.CompileRowExpr(s.Catalog(tempOf(ctx)), s.Opts, st.Where, tab); err != nil {
			return 0, err
		}
	}
	return s.dmlApply(ctx, tab, func(tx *txn.Txn) (int, error) {
		var rids []int
		var evalErr error
		tab.Scan(ctx.Snap, s.Stats, func(rid int, row []sqltypes.Value) bool {
			if pred != nil {
				v, err := pred(ctx, row)
				if err != nil {
					evalErr = err
					return false
				}
				if !v.Truthy() {
					return true
				}
			}
			rids = append(rids, rid)
			return true
		})
		if evalErr != nil {
			return 0, evalErr
		}
		for _, rid := range rids {
			if err := tab.Delete(tx, rid); err != nil {
				return 0, err
			}
		}
		return len(rids), nil
	})
}

func tempOf(ctx *exec.Ctx) func(string) (*storage.Table, bool) {
	if ctx == nil {
		return nil
	}
	return ctx.Temp
}
