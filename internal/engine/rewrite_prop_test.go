package engine_test

import (
	"fmt"
	"math/rand"
	"testing"

	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/plan"
)

// Property test for the logical rewrite pass: every generated query must
// return byte-identical rows with the pass enabled and with every rule
// disabled, serially and at MAXDOP 4, and with the vectorized batch path
// forced off (same trial structure as the Merge property test in
// internal/exec). Unlike TestPlannerRewritesPreserveResults
// this comparison is order-sensitive — each query orders by all its output
// columns, so a wrongly dropped or misplaced sort shows up as a diff.

// randomRewriteQuery emits one query shaped to give the rewrite rules
// something to chew on: constant subexpressions, filters above derived
// tables (plain and grouped), unreferenced pass-through columns, and
// redundant outer sorts.
func randomRewriteQuery(rng *rand.Rand) string {
	k := rng.Intn(10)
	switch rng.Intn(10) {
	case 0: // constant folding in the predicate
		return fmt.Sprintf(`select a, b from t1 where 1 + 1 = 2 and a < %d and 'x' <> 'y' order by a, b`, k)
	case 1: // pushdown into a plain derived table (indexed base column)
		return fmt.Sprintf(`select q.b from (select a, b, c from t1) q where q.a = %d order by b`, k)
	case 2: // pushdown into a grouped derived table on the group key
		return fmt.Sprintf(`select q.a, q.sb from (select a, sum(b) as sb, count(*) as n from t1 group by a) q
		                    where q.a >= %d order by a`, k)
	case 3: // unreferenced pass-through columns to prune
		return fmt.Sprintf(`select q.a from (select t1.a, b, c, t2.d from t1, t2 where t1.a = t2.a) q
		                    where q.a between %d and %d order by a`, k, k+4)
	case 4: // redundant outer sort over an ordered TOP derived
		return fmt.Sprintf(`select q.a, q.b from (select top %d a, b from t1 order by a, b) q order by a, b`,
			1+rng.Intn(20))
	case 5: // derived under a left join: pushdown must respect null-supply
		return fmt.Sprintf(`select t1.a, q.d from t1 left join (select a, d from t2) q on t1.a = q.a
		                    where t1.b > %d order by t1.a, q.d, t1.b`, rng.Intn(10)-5)
	case 6: // range predicate on an ordered-indexed column (choose_access_path)
		lo := rng.Intn(40)
		return fmt.Sprintf(`select a, b, d from t1 where d >= %d and d < %d order by a, b, d`, lo, lo+rng.Intn(15))
	case 7: // eq + range mix: the cost model must pick one access path and
		// keep the residual predicate
		return fmt.Sprintf(`select a, b from t1 where a = %d and d > %d order by a, b`, k, rng.Intn(40))
	case 8: // three-table inner-join chain (reorder_joins), sizes t2 < t3 < t1
		return fmt.Sprintf(`select t1.a, t2.d, t3.e from t1
		                    join t2 on t1.a = t2.a
		                    join t3 on t2.a = t3.a
		                    where t1.b >= %d order by t1.a, t2.d, t3.e`, rng.Intn(10)-5)
	default: // everything at once, plus a constant CASE
		return fmt.Sprintf(`select q.g, q.n from
		  (select a %% 3 as g, count(*) as n, sum(b) as sb from t1 where case when 1 = 1 then b else a end >= %d
		   group by a %% 3) q
		 where q.g >= %d order by g, n`, rng.Intn(8)-4, rng.Intn(2))
	}
}

// runOrdered renders rows without canonicalizing: generated queries order by
// every output column, so full-row duplicates are the only ties and render
// identically.
func runOrdered(t *testing.T, sess *engine.Session, sql string) []string {
	t.Helper()
	stmts := parser.MustParse(sql)
	_, rows, err := sess.Query(stmts[0].(*ast.QueryStmt).Query, sess.Ctx(nil, nil))
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for j, v := range r {
			if j > 0 {
				s += "|"
			}
			s += v.String()
		}
		out[i] = s
	}
	return out
}

func TestRewritePassPreservesResults(t *testing.T) {
	eng := engine.New()
	interp.Install(eng)
	seed := eng.NewSession()
	script := `
create table t1 (a int, b int, c varchar(8), d int);
create table t2 (a int, d int);
create table t3 (a int, e int);
create index i1 on t1(a);
create index i2 on t2(a);
create index i3 on t3(a);
create index o1 on t1(d) using ordered;
`
	if _, err := interp.RunScript(seed, parser.MustParse(script)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	labels := []string{"red", "blue", "green"}
	for i := 0; i < 80; i++ {
		c := fmt.Sprintf("'%s'", labels[rng.Intn(3)])
		if rng.Intn(8) == 0 {
			c = "null"
		}
		sql := fmt.Sprintf("insert into t1 values (%d, %d, %s, %d)",
			rng.Intn(10), rng.Intn(20)-10, c, rng.Intn(50))
		if err := insertSQL(seed, sql); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		sql := fmt.Sprintf("insert into t2 values (%d, %d)", rng.Intn(12), rng.Intn(100))
		if err := insertSQL(seed, sql); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 65; i++ {
		sql := fmt.Sprintf("insert into t3 values (%d, %d)", rng.Intn(12), rng.Intn(40))
		if err := insertSQL(seed, sql); err != nil {
			t.Fatal(err)
		}
	}

	type cfg struct {
		name string
		sess *engine.Session
	}
	mk := func(rules plan.RuleSet, dop int, noBatch bool) *engine.Session {
		s := eng.NewSession()
		s.Opts.DisableRules = rules
		s.Opts.Parallelism = dop
		s.Opts.DisableBatch = noBatch
		return s
	}
	configs := []cfg{
		{"rewrite-serial", mk(0, 1, false)},
		{"norewrite-serial", mk(plan.RuleAll, 1, false)},
		{"rewrite-dop4", mk(0, 4, false)},
		{"norewrite-dop4", mk(plan.RuleAll, 4, false)},
		{"rewrite-serial-rowpath", mk(0, 1, true)},
		{"rewrite-dop4-rowpath", mk(0, 4, true)},
		// The cost-based rules individually off: each must reproduce the
		// same rows the full pass produces.
		{"no-accesspath-serial", mk(plan.RuleChooseAccessPath, 1, false)},
		{"no-reorder-serial", mk(plan.RuleReorderJoins, 1, false)},
		{"no-costbased-dop4", mk(plan.RuleChooseAccessPath|plan.RuleReorderJoins, 4, false)},
	}

	for trial := 0; trial < 80; trial++ {
		sql := randomRewriteQuery(rng)
		want := runOrdered(t, configs[0].sess, sql)
		for _, c := range configs[1:] {
			got := runOrdered(t, c.sess, sql)
			if len(got) != len(want) {
				t.Fatalf("trial %d (%s): %d rows vs %d\nquery: %s", trial, c.name, len(got), len(want), sql)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d (%s): row %d differs\n got: %s\nwant: %s\nquery: %s",
						trial, c.name, i, got[i], want[i], sql)
				}
			}
		}
	}
}
