package engine

import (
	"fmt"
	"sync"
	"testing"

	"aggify/internal/fingerprint"
)

// TestStmtStatsRecordAccumulates: repeated recordings of one fingerprint
// fold into a single cumulative row with correct min/max/total.
func TestStmtStatsRecordAccumulates(t *testing.T) {
	st := NewStmtStats(8)
	fp := fingerprint.Fingerprint("select 1")
	st.record(fp, "select 1", 100, false, stmtDelta{rows: 1, reads: 2})
	st.record(fp, "select 2", 300, false, stmtDelta{rows: 3, reads: 4})
	st.record(fp, "select 3", 200, true, stmtDelta{})
	rows := st.Snapshot()
	if len(rows) != 1 {
		t.Fatalf("snapshot rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Calls != 3 || r.Errors != 1 {
		t.Fatalf("calls=%d errors=%d, want 3/1", r.Calls, r.Errors)
	}
	if r.TotalMicros != 600 || r.MinMicros != 100 || r.MaxMicros != 300 {
		t.Fatalf("micros total=%d min=%d max=%d, want 600/100/300", r.TotalMicros, r.MinMicros, r.MaxMicros)
	}
	if r.Rows != 4 || r.LogicalReads != 6 {
		t.Fatalf("rows=%d reads=%d, want 4/6", r.Rows, r.LogicalReads)
	}
	if r.Query != "select ?" {
		t.Fatalf("stored template = %q, want normalized", r.Query)
	}
}

// TestStmtStatsEviction: inserting beyond the cap evicts the
// least-recently-called fingerprint and counts the eviction.
func TestStmtStatsEviction(t *testing.T) {
	st := NewStmtStats(2)
	fpA := fingerprint.Fingerprint("select a from t")
	fpB := fingerprint.Fingerprint("select b from t")
	fpC := fingerprint.Fingerprint("select c from t")
	st.record(fpA, "select a from t", 1, false, stmtDelta{})
	st.record(fpB, "select b from t", 1, false, stmtDelta{})
	// Touch A so B becomes the least-recently-called entry.
	st.record(fpA, "select a from t", 1, false, stmtDelta{})
	st.record(fpC, "select c from t", 1, false, stmtDelta{})
	if st.Len() != 2 {
		t.Fatalf("len = %d, want 2 (bounded)", st.Len())
	}
	if st.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions())
	}
	if _, ok := st.Lookup(fpB); ok {
		t.Fatal("least-recently-called entry survived eviction")
	}
	if _, ok := st.Lookup(fpA); !ok {
		t.Fatal("recently-touched entry was evicted")
	}
	if _, ok := st.Lookup(fpC); !ok {
		t.Fatal("new entry missing after insert")
	}
}

// TestStmtStatsConcurrentHammer drives the store from many goroutines
// (more fingerprints than capacity, so evictions race with updates) while
// snapshots stream. Run with -race this is the store's data-race guard;
// the invariant checked is bounded cardinality plus a consistent eviction
// count.
func TestStmtStatsConcurrentHammer(t *testing.T) {
	st := NewStmtStats(16)
	const writers, perW, shapes = 8, 400, 64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := len(st.Snapshot()); n > 16 {
				t.Errorf("snapshot rows = %d exceeds cap 16", n)
				return
			}
		}
	}()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				src := fmt.Sprintf("select c%d from t", (g*perW+i)%shapes)
				fp := fingerprint.Fingerprint(src)
				st.record(fp, src, int64(i%100), i%7 == 0, stmtDelta{rows: 1})
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-snapDone
	if st.Len() > 16 {
		t.Fatalf("len = %d, want <= 16", st.Len())
	}
	var calls int64
	for _, r := range st.Snapshot() {
		calls += r.Calls
	}
	if calls == 0 || calls > writers*perW {
		t.Fatalf("surviving calls = %d, want (0, %d]", calls, writers*perW)
	}
}

// TestStmtStatsWarmZeroAllocs pins the acceptance criterion: once a
// fingerprint is in the store, recording a statement through the session
// seam allocates nothing.
func TestStmtStatsWarmZeroAllocs(t *testing.T) {
	e := New()
	s := e.NewSession()
	defer s.Close()
	const stmt = "select n from t where n > 42"
	rec := s.BeginStmt(stmt)
	s.EndStmt(rec, nil)
	allocs := testing.AllocsPerRun(200, func() {
		r := s.BeginStmt(stmt)
		s.EndStmt(r, nil)
	})
	if allocs != 0 {
		t.Fatalf("warm-path allocations per statement = %v, want 0", allocs)
	}
}

// TestEngineRejectsSystemTableNames: user DDL cannot shadow the catalog.
func TestEngineRejectsSystemTableNames(t *testing.T) {
	e := New()
	if _, err := e.CreateTable(StatStatementsTable, nil); err == nil {
		t.Fatal("CreateTable accepted a reserved aggify_stat_ name")
	}
}
