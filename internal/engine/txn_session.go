package engine

import (
	"errors"
	"fmt"

	"aggify/internal/exec"
	"aggify/internal/storage"
	"aggify/internal/txn"
)

// Per-session transaction state. A session is either in auto-commit mode
// (each statement runs in its own implicit transaction) or inside an
// explicit BEGIN TRANSACTION, whose snapshot every statement reads through
// until COMMIT or ROLLBACK.

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.tx != nil }

// Txn returns the session's open explicit transaction, or nil.
func (s *Session) Txn() *txn.Txn { return s.tx }

// BeginTxn opens an explicit transaction pinned at the current commit
// epoch. Nested BEGIN TRANSACTION is an error (the dialect has no
// savepoints).
func (s *Session) BeginTxn() error {
	if s.tx != nil {
		return fmt.Errorf("engine: transaction already in progress")
	}
	s.tx = s.Eng.TxnMgr.Begin()
	s.inTxn.Store(true)
	return nil
}

// CommitTxn commits the open explicit transaction, waiting for durability
// when a WAL is attached.
func (s *Session) CommitTxn() error {
	if s.tx == nil {
		return fmt.Errorf("engine: no transaction in progress")
	}
	tx := s.tx
	s.tx = nil
	s.inTxn.Store(false)
	if err := tx.Commit(); err != nil {
		return err
	}
	s.Eng.MaybeVacuum()
	return nil
}

// RollbackTxn rolls back the open explicit transaction.
func (s *Session) RollbackTxn() error {
	if s.tx == nil {
		return fmt.Errorf("engine: no transaction in progress")
	}
	s.tx.Rollback()
	s.tx = nil
	s.inTxn.Store(false)
	return nil
}

// Close releases session resources; an open explicit transaction is
// rolled back (a dropped connection must never leave uncommitted versions
// pinning the vacuum horizon).
func (s *Session) Close() {
	if s.tx != nil {
		s.tx.Rollback()
		s.tx = nil
		s.inTxn.Store(false)
	}
	s.Eng.unregisterSession(s.ID)
}

// PinRead installs a read snapshot into ctx for the duration of one
// statement and returns the release func. Inside an explicit transaction
// the transaction's snapshot is used (so statements read the epoch pinned
// at BEGIN, plus their own uncommitted writes); otherwise a fresh snapshot
// of the current epoch is pinned — statement-level snapshot isolation.
// If ctx already carries a snapshot the call is a no-op, which is what
// keeps nested evaluation (subqueries, UDFs called from a query) on the
// statement's epoch.
func (s *Session) PinRead(ctx *exec.Ctx) func() {
	if ctx == nil || ctx.Snap != nil {
		return func() {}
	}
	if s.tx != nil {
		ctx.Snap = s.tx.Snapshot()
		s.curEpoch.Store(ctx.Snap.Epoch)
		return func() { ctx.Snap = nil }
	}
	snap := s.Eng.TxnMgr.Acquire()
	ctx.Snap = snap
	s.curEpoch.Store(snap.Epoch)
	return func() {
		ctx.Snap = nil
		snap.Release()
	}
}

// dmlMaxRetries bounds implicit-transaction retries on write conflict.
// Auto-commit statements re-run against a fresh snapshot, approximating
// the blocking retry a lock-based engine gives READ COMMITTED writers;
// explicit transactions never retry — first-committer-wins surfaces the
// conflict to the client.
const dmlMaxRetries = 8

// dmlApply runs one DML statement's collect-and-apply closure under the
// appropriate transaction:
//
//   - unmanaged tables (temp tables, table variables) apply directly and
//     ignore transactions, matching T-SQL table-variable semantics;
//   - inside an explicit transaction the writes join it, and a write
//     conflict rolls the whole transaction back (first-committer-wins);
//   - otherwise the statement runs in an implicit transaction whose
//     snapshot is installed as ctx.Snap, retried on conflict.
func (s *Session) dmlApply(ctx *exec.Ctx, tab *storage.Table, apply func(tx *txn.Txn) (int, error)) (int, error) {
	if !tab.Managed() {
		return apply(nil)
	}
	if s.tx != nil {
		saved := ctx.Snap
		ctx.Snap = s.tx.Snapshot()
		n, err := apply(s.tx)
		ctx.Snap = saved
		if errors.Is(err, txn.ErrWriteConflict) {
			s.conflicts.Add(1)
			s.RollbackTxn()
			return n, fmt.Errorf("%w; transaction rolled back", err)
		}
		return n, err
	}
	var n int
	var err error
	for attempt := 0; attempt < dmlMaxRetries; attempt++ {
		tx := s.Eng.TxnMgr.Begin()
		saved := ctx.Snap
		ctx.Snap = tx.Snapshot()
		n, err = apply(tx)
		ctx.Snap = saved
		if err != nil {
			tx.Rollback()
			if errors.Is(err, txn.ErrWriteConflict) {
				s.conflicts.Add(1)
				continue
			}
			return n, err
		}
		if err = tx.Commit(); err != nil {
			if errors.Is(err, txn.ErrWriteConflict) {
				s.conflicts.Add(1)
				continue
			}
			return n, err
		}
		s.Eng.MaybeVacuum()
		return n, nil
	}
	return n, err
}
