package engine_test

import (
	"os"
	"strings"
	"testing"

	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/wal"
)

// durable opens a fresh durable engine over dir with the interpreter
// installed.
func durable(t *testing.T, dir string, mode wal.SyncMode) *engine.Engine {
	t.Helper()
	eng := engine.New()
	interp.Install(eng)
	if err := eng.OpenData(dir, mode); err != nil {
		t.Fatalf("OpenData(%s): %v", dir, err)
	}
	return eng
}

func run(t *testing.T, sess *engine.Session, sql string) {
	t.Helper()
	if _, err := interp.RunScript(sess, parser.MustParse(sql)); err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
}

func queryInts(t *testing.T, sess *engine.Session, sql string) []int64 {
	t.Helper()
	rows := query(t, sess, sql)
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[0].Int()
	}
	return out
}

func TestDurabilityCleanRestart(t *testing.T) {
	dir := t.TempDir()
	eng := durable(t, dir, wal.SyncGroup)
	sess := eng.NewSession()
	run(t, sess, `
		create table kv (k int, v varchar(16));
		create index kv_k on kv(k);
		insert into kv values (1, 'one'), (2, 'two');
		update kv set v = 'TWO' where k = 2;
		delete from kv where k = 1;
	`)
	if err := eng.CloseData(); err != nil {
		t.Fatalf("CloseData: %v", err)
	}

	eng2 := durable(t, dir, wal.SyncGroup)
	sess2 := eng2.NewSession()
	rows := query(t, sess2, "select k, v from kv order by k")
	if len(rows) != 1 || rows[0][0].Int() != 2 || rows[0][1].Str() != "TWO" {
		t.Fatalf("recovered rows = %v", rows)
	}
	// The index must be recovered too, and usable.
	tab, ok := eng2.Table("kv")
	if !ok || tab.Index("k") == nil {
		t.Fatal("index kv(k) not recovered")
	}
	if err := eng2.CloseData(); err != nil {
		t.Fatal(err)
	}
}

func TestDurabilityCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	// SyncAlways: every commit is fsynced before the statement returns, so
	// abandoning the engine without CloseData models a crash.
	eng := durable(t, dir, wal.SyncAlways)
	sess := eng.NewSession()
	run(t, sess, `
		create table acct (id int, bal int);
		insert into acct values (1, 100), (2, 200);
	`)
	// An explicit transaction left open at crash time must not survive.
	run(t, sess, "begin transaction; update acct set bal = 0 where id = 1; insert into acct values (3, 999);")
	if !sess.InTxn() {
		t.Fatal("expected open explicit transaction")
	}
	// Crash: no COMMIT, no CloseData, no Checkpoint.

	eng2 := durable(t, dir, wal.SyncAlways)
	sess2 := eng2.NewSession()
	got := queryInts(t, sess2, "select bal from acct order by id")
	if len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Fatalf("recovered balances = %v (uncommitted writes leaked?)", got)
	}
	if err := eng2.CloseData(); err != nil {
		t.Fatal(err)
	}
}

func TestDurabilityCommittedTxnSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	eng := durable(t, dir, wal.SyncAlways)
	sess := eng.NewSession()
	run(t, sess, "create table n (x int);")
	run(t, sess, "begin transaction; insert into n values (1); insert into n values (2); commit;")
	// Crash after commit.

	eng2 := durable(t, dir, wal.SyncAlways)
	got := queryInts(t, eng2.NewSession(), "select x from n order by x")
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("recovered = %v, want [1 2]", got)
	}
	if err := eng2.CloseData(); err != nil {
		t.Fatal(err)
	}
}

func TestDurabilityDDLRecovered(t *testing.T) {
	dir := t.TempDir()
	eng := durable(t, dir, wal.SyncAlways)
	sess := eng.NewSession()
	run(t, sess, `
		create table a (x int);
		create table doomed (y int);
		insert into doomed values (7);
		create index a_x on a(x);
	`)
	eng.DropTable("doomed")
	// Crash without checkpoint: recovery comes purely from the WAL.

	eng2 := durable(t, dir, wal.SyncAlways)
	if _, ok := eng2.Table("doomed"); ok {
		t.Fatal("dropped table resurrected by replay")
	}
	tab, ok := eng2.Table("a")
	if !ok {
		t.Fatal("table a not recovered")
	}
	if tab.Index("x") == nil {
		t.Fatal("index a(x) not recovered")
	}
	if err := eng2.CloseData(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointCompactsLog(t *testing.T) {
	dir := t.TempDir()
	eng := durable(t, dir, wal.SyncGroup)
	sess := eng.NewSession()
	run(t, sess, "create table big (x int, pad varchar(64));")
	for i := 0; i < 50; i++ {
		run(t, sess, "insert into big values (1, 'xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx');")
	}
	before, err := os.Stat(wal.LogPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() == 0 {
		t.Fatal("expected a non-empty WAL before checkpoint")
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	after, err := os.Stat(wal.LogPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != 0 {
		t.Fatalf("WAL not truncated by checkpoint: %d bytes", after.Size())
	}
	// And the checkpoint alone is enough to recover.
	if err := eng.CloseData(); err != nil {
		t.Fatal(err)
	}
	eng2 := durable(t, dir, wal.SyncGroup)
	got := queryInts(t, eng2.NewSession(), "select count(*) from big")
	if got[0] != 50 {
		t.Fatalf("recovered %d rows, want 50", got[0])
	}
	if err := eng2.CloseData(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDataRequiresEmptyCatalog(t *testing.T) {
	eng := engine.New()
	interp.Install(eng)
	sess := eng.NewSession()
	run(t, sess, "create table t (x int);")
	if err := eng.OpenData(t.TempDir(), wal.SyncOff); err == nil {
		t.Fatal("OpenData on a populated engine should fail")
	}
}

func TestExplicitTxnCommitAndRollback(t *testing.T) {
	sess := newDB(t, "create table t (x int); insert into t values (1);")

	run(t, sess, "begin transaction; insert into t values (2);")
	// Inside the transaction the session sees its own write...
	if got := queryInts(t, sess, "select count(*) from t"); got[0] != 2 {
		t.Fatalf("in-txn count = %d, want 2", got[0])
	}
	// ...but a different session does not.
	other := sess.Eng.NewSession()
	if got := queryInts(t, other, "select count(*) from t"); got[0] != 1 {
		t.Fatalf("foreign count = %d, want 1 (dirty read)", got[0])
	}
	run(t, sess, "commit;")
	if got := queryInts(t, other, "select count(*) from t"); got[0] != 2 {
		t.Fatalf("post-commit foreign count = %d, want 2", got[0])
	}

	run(t, sess, "begin tran; delete from t; rollback;")
	if got := queryInts(t, sess, "select count(*) from t"); got[0] != 2 {
		t.Fatalf("post-rollback count = %d, want 2", got[0])
	}
	if sess.InTxn() {
		t.Fatal("transaction still open after rollback")
	}
}

func TestExplicitTxnSnapshotIsolationAcrossSessions(t *testing.T) {
	sess := newDB(t, "create table t (x int); insert into t values (1);")
	writer := sess.Eng.NewSession()

	// Reader pins its snapshot at BEGIN; writes committed after that stay
	// invisible until the reader's transaction ends.
	run(t, sess, "begin transaction;")
	if got := queryInts(t, sess, "select count(*) from t"); got[0] != 1 {
		t.Fatalf("baseline = %d", got[0])
	}
	run(t, writer, "insert into t values (2);")
	if got := queryInts(t, sess, "select count(*) from t"); got[0] != 1 {
		t.Fatalf("reader saw concurrent commit mid-txn: %d", got[0])
	}
	run(t, sess, "commit;")
	if got := queryInts(t, sess, "select count(*) from t"); got[0] != 2 {
		t.Fatalf("after commit = %d, want 2", got[0])
	}
}

func TestExplicitTxnWriteConflictRollsBack(t *testing.T) {
	sess := newDB(t, "create table t (k int, v int); insert into t values (1, 10);")
	other := sess.Eng.NewSession()

	run(t, sess, "begin transaction;")
	run(t, sess, "select v from t;") // pin reads; no writes yet
	run(t, other, "update t set v = 20 where k = 1;")
	// The stale transaction now updates the same row: first committer won.
	_, err := interp.RunScript(sess, parser.MustParse("update t set v = 30 where k = 1;"))
	if err == nil || !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("want write-conflict rollback, got %v", err)
	}
	if sess.InTxn() {
		t.Fatal("conflicted transaction should have been rolled back")
	}
	// The winner's value stands.
	if got := queryInts(t, sess, "select v from t"); got[0] != 20 {
		t.Fatalf("v = %d, want 20", got[0])
	}
}

func TestTxnErrors(t *testing.T) {
	sess := newDB(t, "")
	if _, err := interp.RunScript(sess, parser.MustParse("commit;")); err == nil {
		t.Fatal("COMMIT outside a transaction should error")
	}
	if _, err := interp.RunScript(sess, parser.MustParse("rollback;")); err == nil {
		t.Fatal("ROLLBACK outside a transaction should error")
	}
	run(t, sess, "begin transaction;")
	if _, err := interp.RunScript(sess, parser.MustParse("begin transaction;")); err == nil {
		t.Fatal("nested BEGIN TRANSACTION should error")
	}
	run(t, sess, "rollback;")
}

func TestCursorSeesEpochFrozenAtOpen(t *testing.T) {
	sess := newDB(t, `
		create table t (x int);
		insert into t values (1), (2), (3);
	`)
	qs, ok := parser.MustParse("select x from t order by x")[0].(*ast.QueryStmt)
	if !ok {
		t.Fatal("not a query")
	}
	cur := engine.NewCursor("c", qs.Query)
	if err := cur.Open(sess, sess.Ctx(nil, nil)); err != nil {
		t.Fatalf("open cursor: %v", err)
	}
	// Mutations after OPEN are invisible to the cursor.
	run(t, sess, "insert into t values (4); delete from t where x = 1;")
	var got []int64
	for {
		row, ok, err := cur.Fetch()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, row[0].Int())
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("cursor rows = %v, want [1 2 3] (epoch frozen at OPEN)", got)
	}
	cur.Close()
}
