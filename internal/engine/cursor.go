package engine

import (
	"fmt"

	"aggify/internal/ast"
	"aggify/internal/exec"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// Cursor is a static explicit cursor (§2.3): OPEN runs the cursor query to
// completion and materializes every row — encoded through the worktable's
// binary codec — and FETCH NEXT decodes rows back out one at a time. This
// materialize-then-iterate behaviour (the analogue of SQL Server spooling
// static cursors into tempdb) is exactly the cost Aggify's pipelined
// rewrite eliminates.
type Cursor struct {
	Name  string
	Query *ast.Select

	wt     *storage.Worktable
	pos    int
	opened bool
	sess   *Session // owner while opened; feeds the session cursor gauge
}

// NewCursor declares a cursor over a query (DECLARE c CURSOR FOR q).
func NewCursor(name string, q *ast.Select) *Cursor {
	return &Cursor{Name: name, Query: q}
}

// Open executes the cursor query and materializes its result.
func (c *Cursor) Open(s *Session, ctx *exec.Ctx) error {
	var temp func(string) (*storage.Table, bool)
	if ctx != nil {
		temp = ctx.Temp
	}
	p, err := s.PlanQuery(c.Query, temp)
	if err != nil {
		return err
	}
	if c.wt != nil {
		c.wt.Close()
	}
	if s.InMemoryWorktables {
		c.wt = storage.NewMemoryWorktable(s.Stats)
	} else {
		c.wt = storage.NewWorktable(s.Stats)
	}
	c.pos = 0
	if !c.opened {
		s.NoteCursorOpen(1)
	}
	c.opened = true
	c.sess = s
	// The cursor materializes its whole result here, so the frozen epoch a
	// FETCH loop observes is the one pinned at OPEN — mutations after OPEN
	// (including the loop body's own) never change the fetched rows.
	defer s.PinRead(ctx)()
	op := p.Build()
	if err := op.Open(ctx); err != nil {
		op.Close()
		return err
	}
	defer op.Close()
	for {
		row, err := op.Next(ctx)
		if err != nil {
			return err
		}
		if row == nil {
			return nil
		}
		c.wt.Append(row)
	}
}

// Fetch decodes the next row; ok is false at end of cursor.
func (c *Cursor) Fetch() (row []sqltypes.Value, ok bool, err error) {
	if !c.opened {
		return nil, false, fmt.Errorf("engine: cursor %s is not open", c.Name)
	}
	if c.pos >= c.wt.RowCount() {
		return nil, false, nil
	}
	row = c.wt.Get(c.pos)
	c.pos++
	return row, true, nil
}

// RowCount returns the number of materialized rows (0 before Open).
func (c *Cursor) RowCount() int {
	if c.wt == nil {
		return 0
	}
	return c.wt.RowCount()
}

// Close closes the cursor; the worktable is retained until Deallocate
// (matching the DECLARE/OPEN/CLOSE/DEALLOCATE lifecycle).
func (c *Cursor) Close() error {
	if !c.opened {
		return fmt.Errorf("engine: cursor %s is not open", c.Name)
	}
	c.opened = false
	if c.sess != nil {
		c.sess.NoteCursorOpen(-1)
	}
	return nil
}

// Deallocate releases the cursor's worktable (dropping its backing file).
func (c *Cursor) Deallocate() {
	if c.opened && c.sess != nil {
		c.sess.NoteCursorOpen(-1)
	}
	c.opened = false
	if c.wt != nil {
		c.wt.Close()
		c.wt = nil
	}
}
