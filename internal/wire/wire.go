// Package wire models the client/server boundary of the paper's Java/JDBC
// experiments: rows cross it in the engine's binary codec, and a virtual
// network clock converts measured bytes and round trips into deterministic
// network time (RTT per round trip plus bytes over bandwidth). The §10.6
// data-movement series are exact byte counts from this meter.
package wire

import (
	"time"

	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// Profile describes the simulated network between client and server.
type Profile struct {
	// RTT is charged once per round trip (one request/response exchange).
	RTT time.Duration
	// Bandwidth in bytes per second; zero means unmetered.
	Bandwidth int64
}

// LAN is a typical datacenter LAN profile, matching the paper's setup of a
// client machine connected to the DBMS over a local network.
var LAN = Profile{RTT: 500 * time.Microsecond, Bandwidth: 125_000_000} // 1 Gb/s

// Meter accumulates traffic totals.
type Meter struct {
	BytesToServer   int64
	BytesToClient   int64
	RoundTrips      int64
	RowsTransferred int64
}

// Add merges another meter.
func (m *Meter) Add(o Meter) {
	m.BytesToServer += o.BytesToServer
	m.BytesToClient += o.BytesToClient
	m.RoundTrips += o.RoundTrips
	m.RowsTransferred += o.RowsTransferred
}

// TotalBytes returns bytes moved in both directions.
func (m *Meter) TotalBytes() int64 { return m.BytesToServer + m.BytesToClient }

// NetworkTime converts the meter to virtual network time under a profile.
func (m *Meter) NetworkTime(p Profile) time.Duration {
	t := time.Duration(m.RoundTrips) * p.RTT
	if p.Bandwidth > 0 {
		t += time.Duration(float64(m.TotalBytes()) / float64(p.Bandwidth) * float64(time.Second))
	}
	return t
}

// RowsSize returns the encoded wire size of a row batch.
func RowsSize(rows [][]sqltypes.Value) int64 {
	var n int64
	for _, r := range rows {
		n += int64(storage.WireSize(r))
	}
	return n
}

// RequestOverhead is the fixed per-request framing cost in bytes (message
// header, statement id, status) — a small constant comparable to TDS/packet
// framing.
const RequestOverhead = 32
