// Package wire is the client/server boundary of the paper's Java/JDBC
// experiments: the aggifyd binary protocol (length-prefixed frames carrying
// the message types in frame.go, rows in the engine's binary codec) plus
// the traffic meter. The same frames travel over real TCP sockets
// (internal/server) and price the in-process virtual network, so the §10.6
// data-movement series are exact byte counts either way; a virtual clock
// converts them into deterministic network time (RTT per round trip plus
// bytes over bandwidth).
package wire

import (
	"time"

	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// Profile describes the simulated network between client and server.
type Profile struct {
	// RTT is charged once per round trip (one request/response exchange).
	RTT time.Duration
	// Bandwidth in bytes per second; zero means unmetered.
	Bandwidth int64
}

// LAN is a typical datacenter LAN profile, matching the paper's setup of a
// client machine connected to the DBMS over a local network.
var LAN = Profile{RTT: 500 * time.Microsecond, Bandwidth: 125_000_000} // 1 Gb/s

// Meter accumulates traffic totals.
type Meter struct {
	BytesToServer   int64
	BytesToClient   int64
	RoundTrips      int64
	RowsTransferred int64
}

// Add merges another meter.
func (m *Meter) Add(o Meter) {
	m.BytesToServer += o.BytesToServer
	m.BytesToClient += o.BytesToClient
	m.RoundTrips += o.RoundTrips
	m.RowsTransferred += o.RowsTransferred
}

// TotalBytes returns bytes moved in both directions.
func (m *Meter) TotalBytes() int64 { return m.BytesToServer + m.BytesToClient }

// NetworkTime converts the meter to virtual network time under a profile.
func (m *Meter) NetworkTime(p Profile) time.Duration {
	t := time.Duration(m.RoundTrips) * p.RTT
	if p.Bandwidth > 0 {
		t += time.Duration(float64(m.TotalBytes()) / float64(p.Bandwidth) * float64(time.Second))
	}
	return t
}

// RowsSize returns the encoded wire size of a row batch.
func RowsSize(rows [][]sqltypes.Value) int64 {
	var n int64
	for _, r := range rows {
		n += int64(storage.WireSize(r))
	}
	return n
}
