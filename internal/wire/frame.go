package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The frame layer is the physical unit of the aggifyd protocol: every
// message travels as one length-prefixed frame. The same framing is used on
// real sockets (internal/server, the socket transport in internal/client)
// and to price messages for the virtual meter, so the simulated byte counts
// are exactly the bytes a loopback capture would show.
//
// Frame layout:
//
//	uint32 big-endian payload length (message type byte + body)
//	1 byte message type
//	body (length-1 bytes)

// MaxFrame is the largest accepted frame payload in bytes. Frames that
// declare a larger payload are rejected before any allocation, which bounds
// the memory a malformed or hostile peer can force the server to commit.
const MaxFrame = 16 << 20

// frameHeader is the fixed length-prefix size.
const frameHeader = 4

// FrameSize returns the on-the-wire size of a frame carrying a body of the
// given length (length prefix + type byte + body).
func FrameSize(bodyLen int) int { return frameHeader + 1 + bodyLen }

// MsgType identifies a protocol message. Client requests use the low range;
// server responses have the high bit set.
type MsgType byte

const (
	// MsgExec carries a script (DDL, DML, procedure/aggregate definitions)
	// to run as one batch. Body: UTF-8 script text. Reply: MsgResults.
	MsgExec MsgType = 0x01
	// MsgPrepare carries a single SELECT (with '?' placeholders) to prepare.
	// Body: UTF-8 statement text. Reply: MsgStmt.
	MsgPrepare MsgType = 0x02
	// MsgQuery executes a prepared statement. Body: uvarint statement id +
	// parameter row in the storage codec. Reply: MsgCursor.
	MsgQuery MsgType = 0x03
	// MsgFetch pulls the next batch from a server-side cursor. Body: uvarint
	// cursor id + uvarint max rows. Reply: MsgRows.
	MsgFetch MsgType = 0x04
	// MsgCloseCursor releases a server-side cursor early. Body: uvarint
	// cursor id. Reply: MsgOK.
	MsgCloseCursor MsgType = 0x05
	// MsgQuit announces an orderly client disconnect. Empty body. Reply:
	// MsgOK, after which the server closes the connection.
	MsgQuit MsgType = 0x06
	// MsgStats requests the server's query-metrics snapshot. Empty body.
	// Reply: MsgServerStats.
	MsgStats MsgType = 0x07

	// MsgOK is the empty success acknowledgement.
	MsgOK MsgType = 0x81
	// MsgError reports a failed request. Body: UTF-8 error text.
	MsgError MsgType = 0x82
	// MsgResults answers MsgExec. Body: an encoded ExecResult (PRINT output
	// plus any result sets the script produced).
	MsgResults MsgType = 0x83
	// MsgStmt answers MsgPrepare. Body: uvarint statement id.
	MsgStmt MsgType = 0x84
	// MsgCursor answers MsgQuery. Body: uvarint cursor id + column names.
	MsgCursor MsgType = 0x85
	// MsgRows answers MsgFetch. Body: done flag + encoded row batch.
	MsgRows MsgType = 0x86
	// MsgServerStats answers MsgStats. Body: an encoded ServerStats.
	MsgServerStats MsgType = 0x87
)

// WriteFrame writes one frame and returns the number of bytes written.
func WriteFrame(w io.Writer, typ MsgType, body []byte) (int, error) {
	if len(body)+1 > MaxFrame {
		return 0, fmt.Errorf("wire: frame payload %d exceeds limit %d", len(body)+1, MaxFrame)
	}
	var hdr [frameHeader + 1]byte
	binary.BigEndian.PutUint32(hdr[:frameHeader], uint32(len(body)+1))
	hdr[frameHeader] = byte(typ)
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return 0, err
	}
	return FrameSize(len(body)), nil
}

// ReadFrame reads one frame, returning its type, body, and the total bytes
// consumed. Frames whose declared payload exceeds MaxFrame are rejected
// without reading the payload.
func ReadFrame(r io.Reader) (MsgType, []byte, int, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, frameHeader, fmt.Errorf("wire: empty frame")
	}
	if n > MaxFrame {
		return 0, nil, frameHeader, fmt.Errorf("wire: frame payload %d exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, frameHeader, err
	}
	return MsgType(payload[0]), payload[1:], FrameSize(int(n) - 1), nil
}
