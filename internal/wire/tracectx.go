package wire

import (
	"encoding/binary"
	"fmt"
)

// Trace-context propagation (docs/PROTOCOL.md "Trace context"). A client
// that is recording a trace sets TraceFlag on the request's message type and
// prefixes the body with a fixed 16-byte trace context:
//
//	8 bytes big-endian trace ID (non-zero)
//	8 bytes big-endian parent span ID
//
// so server-side spans join the client's trace. The header is optional and
// request-only: servers answer with plain response frames, and requests
// without the flag are byte-identical to the pre-trace protocol.

// TraceFlag marks a request frame carrying a trace context. It occupies a
// bit between the request range (low) and the response range (high bit), so
// flagged requests never collide with either.
const TraceFlag MsgType = 0x40

// TraceContextLen is the fixed trace-context prefix size.
const TraceContextLen = 16

// TraceContext is the wire form of a trace ID + parent span ID pair.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// EncodeTraced prefixes body with the trace context; send the result with
// typ|TraceFlag. Only called on traced requests, so its allocation is off
// the untraced hot path.
func EncodeTraced(tc TraceContext, body []byte) []byte {
	out := make([]byte, TraceContextLen+len(body))
	binary.BigEndian.PutUint64(out[0:8], tc.TraceID)
	binary.BigEndian.PutUint64(out[8:16], tc.SpanID)
	copy(out[TraceContextLen:], body)
	return out
}

// SplitTraceContext strips the trace context from a request frame. For
// unflagged frames it returns the inputs unchanged with a zero context —
// no allocation, so the untraced path pays only a branch. Flagged frames
// shorter than the context or with a zero trace ID are rejected.
func SplitTraceContext(typ MsgType, body []byte) (MsgType, TraceContext, []byte, error) {
	if typ&TraceFlag == 0 {
		return typ, TraceContext{}, body, nil
	}
	if len(body) < TraceContextLen {
		return 0, TraceContext{}, nil, fmt.Errorf("wire: truncated trace context (%d bytes)", len(body))
	}
	tc := TraceContext{
		TraceID: binary.BigEndian.Uint64(body[0:8]),
		SpanID:  binary.BigEndian.Uint64(body[8:16]),
	}
	if !tc.Valid() {
		return 0, TraceContext{}, nil, fmt.Errorf("wire: zero trace id in trace context")
	}
	return typ &^ TraceFlag, tc, body[TraceContextLen:], nil
}
