package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"

	"aggify/internal/sqltypes"
)

// randValue draws a random value, biased toward NULLs to cover NULL-heavy
// rows.
func randValue(rng *rand.Rand) sqltypes.Value {
	switch rng.Intn(7) {
	case 0, 1:
		return sqltypes.Null
	case 2:
		return sqltypes.NewInt(rng.Int63n(1 << 40))
	case 3:
		return sqltypes.NewFloat(rng.NormFloat64() * 1e6)
	case 4:
		return sqltypes.NewBool(rng.Intn(2) == 0)
	case 5:
		return sqltypes.NewDate(rng.Int63n(50000))
	default:
		n := rng.Intn(40)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(byte('a' + rng.Intn(26)))
		}
		return sqltypes.NewString(sb.String())
	}
}

func randRows(rng *rand.Rand, nrows, ncols int) [][]sqltypes.Value {
	rows := make([][]sqltypes.Value, nrows)
	for i := range rows {
		rows[i] = make([]sqltypes.Value, ncols)
		for j := range rows[i] {
			rows[i][j] = randValue(rng)
		}
	}
	return rows
}

func rowsEqual(t *testing.T, got, want [][]sqltypes.Value) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d arity = %d, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			g, w := got[i][j], want[i][j]
			if g.IsNull() != w.IsNull() || (!g.IsNull() && !sqltypes.Equal(g, w)) {
				t.Fatalf("row %d col %d = %v, want %v", i, j, g, w)
			}
		}
	}
}

// pipeFrames sends each (type, body) pair through a net.Pipe and returns
// what the reader decoded, checking the byte counts agree on both ends.
func pipeFrames(t *testing.T, frames []struct {
	typ  MsgType
	body []byte
}) []struct {
	typ  MsgType
	body []byte
} {
	t.Helper()
	cw, cr := net.Pipe()
	type result struct {
		typ  MsgType
		body []byte
		n    int
		err  error
	}
	results := make(chan result, len(frames))
	go func() {
		for range frames {
			typ, body, n, err := ReadFrame(cr)
			results <- result{typ, body, n, err}
		}
	}()
	var out []struct {
		typ  MsgType
		body []byte
	}
	for _, f := range frames {
		wn, err := WriteFrame(cw, f.typ, f.body)
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		r := <-results
		if r.err != nil {
			t.Fatalf("read: %v", r.err)
		}
		if r.n != wn || wn != FrameSize(len(f.body)) {
			t.Fatalf("byte counts: wrote %d, read %d, want %d", wn, r.n, FrameSize(len(f.body)))
		}
		out = append(out, struct {
			typ  MsgType
			body []byte
		}{r.typ, r.body})
	}
	cw.Close()
	cr.Close()
	return out
}

func TestFrameRoundTripOverPipe(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var frames []struct {
		typ  MsgType
		body []byte
	}
	frames = append(frames, struct {
		typ  MsgType
		body []byte
	}{MsgQuit, nil}) // empty body
	for i := 0; i < 50; i++ {
		body := make([]byte, rng.Intn(4096))
		rng.Read(body)
		frames = append(frames, struct {
			typ  MsgType
			body []byte
		}{MsgType(rng.Intn(250) + 1), body})
	}
	got := pipeFrames(t, frames)
	for i, f := range frames {
		if got[i].typ != f.typ || !bytes.Equal(got[i].body, f.body) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	// A header declaring a payload beyond MaxFrame must be rejected before
	// any payload is read (or allocated).
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	_, _, _, err := ReadFrame(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized read err = %v", err)
	}
	// Writing an oversized body must fail rather than emit a frame the
	// peer will reject.
	if _, err := WriteFrame(io.Discard, MsgExec, make([]byte, MaxFrame)); err == nil {
		t.Fatal("oversized write must error")
	}
	// Zero-length payloads (no type byte) are malformed.
	var zero [4]byte
	if _, _, _, err := ReadFrame(bytes.NewReader(zero[:])); err == nil {
		t.Fatal("empty frame must error")
	}
}

func TestRowsRespRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		rows := randRows(rng, rng.Intn(20), 1+rng.Intn(6))
		done := rng.Intn(2) == 0
		body := EncodeRowsResp(rows, done)
		got, gotDone, err := DecodeRowsResp(body)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if gotDone != done {
			t.Fatalf("iter %d: done = %v, want %v", iter, gotDone, done)
		}
		rowsEqual(t, got, rows)
	}
}

func TestRowsRespZeroRows(t *testing.T) {
	body := EncodeRowsResp(nil, true)
	rows, done, err := DecodeRowsResp(body)
	if err != nil || !done || len(rows) != 0 {
		t.Fatalf("rows=%v done=%v err=%v", rows, done, err)
	}
}

func TestQueryReqRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		id := rng.Uint32()
		args := randRows(rng, 1, rng.Intn(5)+1)[0]
		if rng.Intn(4) == 0 {
			args = nil // parameterless execution
		}
		gotID, gotArgs, err := DecodeQueryReq(EncodeQueryReq(id, args))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if gotID != id {
			t.Fatalf("iter %d: id = %d, want %d", iter, gotID, id)
		}
		rowsEqual(t, [][]sqltypes.Value{gotArgs}, [][]sqltypes.Value{args})
	}
}

func TestExecResultRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 50; iter++ {
		res := &ExecResult{}
		for i := rng.Intn(4); i > 0; i-- {
			res.Prints = append(res.Prints, "print line with unicode Ω and tabs\t")
		}
		for i := rng.Intn(3); i > 0; i-- {
			ncols := 1 + rng.Intn(4)
			cols := make([]string, ncols)
			for j := range cols {
				cols[j] = "c" + string(rune('a'+j))
			}
			res.Sets = append(res.Sets, ResultSet{Columns: cols, Rows: randRows(rng, rng.Intn(10), ncols)})
		}
		got, err := DecodeExecResult(EncodeExecResult(res))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !reflect.DeepEqual(got.Prints, res.Prints) && !(len(got.Prints) == 0 && len(res.Prints) == 0) {
			t.Fatalf("iter %d: prints = %v, want %v", iter, got.Prints, res.Prints)
		}
		if len(got.Sets) != len(res.Sets) {
			t.Fatalf("iter %d: sets = %d, want %d", iter, len(got.Sets), len(res.Sets))
		}
		for i := range res.Sets {
			if !reflect.DeepEqual(got.Sets[i].Columns, res.Sets[i].Columns) {
				t.Fatalf("iter %d: set %d columns mismatch", iter, i)
			}
			rowsEqual(t, got.Sets[i].Rows, res.Sets[i].Rows)
		}
		if got.RowCount() != res.RowCount() {
			t.Fatalf("iter %d: row count %d vs %d", iter, got.RowCount(), res.RowCount())
		}
	}
}

func TestCursorAndFetchAndCloseRoundTrip(t *testing.T) {
	id, cols, err := DecodeCursorResp(EncodeCursorResp(9, []string{"a", "b"}))
	if err != nil || id != 9 || !reflect.DeepEqual(cols, []string{"a", "b"}) {
		t.Fatalf("cursor: id=%d cols=%v err=%v", id, cols, err)
	}
	cid, n, err := DecodeFetchReq(EncodeFetchReq(7, 128))
	if err != nil || cid != 7 || n != 128 {
		t.Fatalf("fetch: id=%d n=%d err=%v", cid, n, err)
	}
	sid, err := DecodeStmtResp(EncodeStmtResp(3))
	if err != nil || sid != 3 {
		t.Fatalf("stmt: id=%d err=%v", sid, err)
	}
	ccid, err := DecodeCloseReq(EncodeCloseReq(12))
	if err != nil || ccid != 12 {
		t.Fatalf("close: id=%d err=%v", ccid, err)
	}
}

func TestTruncatedBodiesRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	full := EncodeRowsResp(randRows(rng, 5, 3), false)
	for cut := 1; cut < len(full); cut += 7 {
		if _, _, err := DecodeRowsResp(full[:cut]); err == nil {
			// A prefix that happens to decode as fewer rows is impossible:
			// the count prefix promises more data than remains.
			t.Fatalf("truncated body at %d decoded without error", cut)
		}
	}
	if _, err := DecodeExecResult([]byte{}); err == nil {
		t.Fatal("empty exec result must error")
	}
	if _, _, err := DecodeQueryReq([]byte{}); err == nil {
		t.Fatal("empty query req must error")
	}
}
