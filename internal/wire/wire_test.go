package wire

import (
	"testing"
	"time"

	"aggify/internal/sqltypes"
)

func TestMeterAddAndTotals(t *testing.T) {
	a := Meter{BytesToServer: 10, BytesToClient: 20, RoundTrips: 2, RowsTransferred: 5}
	b := Meter{BytesToServer: 1, BytesToClient: 2, RoundTrips: 1, RowsTransferred: 1}
	a.Add(b)
	if a.BytesToServer != 11 || a.BytesToClient != 22 || a.RoundTrips != 3 || a.RowsTransferred != 6 {
		t.Fatalf("meter = %+v", a)
	}
	if a.TotalBytes() != 33 {
		t.Fatalf("total = %d", a.TotalBytes())
	}
}

func TestNetworkTime(t *testing.T) {
	m := Meter{BytesToServer: 500_000, BytesToClient: 500_000, RoundTrips: 4}
	p := Profile{RTT: time.Millisecond, Bandwidth: 1_000_000}
	// 4 RTTs = 4ms, 1 MB over 1 MB/s = 1s.
	want := 4*time.Millisecond + time.Second
	if got := m.NetworkTime(p); got != want {
		t.Fatalf("network time = %v, want %v", got, want)
	}
	// Zero bandwidth means unmetered bytes.
	if got := m.NetworkTime(Profile{RTT: time.Millisecond}); got != 4*time.Millisecond {
		t.Fatalf("unmetered = %v", got)
	}
}

func TestRowsSize(t *testing.T) {
	rows := [][]sqltypes.Value{
		{sqltypes.NewInt(1), sqltypes.NewString("abc")},
		{sqltypes.NewInt(2), sqltypes.NewString("defgh")},
	}
	n := RowsSize(rows)
	if n <= 0 {
		t.Fatal("size must be positive")
	}
	// Longer strings mean more bytes.
	bigger := RowsSize([][]sqltypes.Value{{sqltypes.NewInt(1), sqltypes.NewString("abcabcabcabc")}})
	smaller := RowsSize([][]sqltypes.Value{{sqltypes.NewInt(1), sqltypes.NewString("a")}})
	if bigger <= smaller {
		t.Fatalf("sizes: %d vs %d", bigger, smaller)
	}
}
