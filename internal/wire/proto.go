package wire

import (
	"encoding/binary"
	"fmt"

	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// Message-body codecs for the aggifyd protocol. Rows and parameter vectors
// reuse the storage row codec (the same encoding worktables spool), so a
// row costs the same bytes on the socket as in the engine's §10.6
// data-movement accounting.

// ResultSet is one SELECT's output inside an ExecResult.
type ResultSet struct {
	Columns []string
	Rows    [][]sqltypes.Value
}

// ExecResult is the reply to MsgExec: collected PRINT output plus the
// result sets of any top-level SELECTs in the script.
type ExecResult struct {
	Prints []string
	Sets   []ResultSet
}

// RowCount returns the total rows across all result sets.
func (r *ExecResult) RowCount() int64 {
	var n int64
	for _, s := range r.Sets {
		n += int64(len(s.Rows))
	}
	return n
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 || uint64(len(buf)-w) < n {
		return "", nil, fmt.Errorf("wire: truncated string")
	}
	return string(buf[w : w+int(n)]), buf[w+int(n):], nil
}

func appendStrings(buf []byte, ss []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ss)))
	for _, s := range ss {
		buf = appendString(buf, s)
	}
	return buf
}

func readStrings(buf []byte) ([]string, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, nil, fmt.Errorf("wire: truncated string list")
	}
	buf = buf[w:]
	out := make([]string, n)
	var err error
	for i := range out {
		if out[i], buf, err = readString(buf); err != nil {
			return nil, nil, err
		}
	}
	return out, buf, nil
}

func appendRows(buf []byte, rows [][]sqltypes.Value) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for _, r := range rows {
		buf = storage.AppendRow(buf, r)
	}
	return buf
}

func readRows(buf []byte) ([][]sqltypes.Value, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, nil, fmt.Errorf("wire: truncated row batch")
	}
	buf = buf[w:]
	rows := make([][]sqltypes.Value, n)
	var err error
	for i := range rows {
		if rows[i], buf, err = storage.DecodeRow(buf); err != nil {
			return nil, nil, err
		}
	}
	return rows, buf, nil
}

// EncodeExecResult encodes the MsgResults body.
func EncodeExecResult(r *ExecResult) []byte {
	buf := appendStrings(nil, r.Prints)
	buf = binary.AppendUvarint(buf, uint64(len(r.Sets)))
	for _, s := range r.Sets {
		buf = appendStrings(buf, s.Columns)
		buf = appendRows(buf, s.Rows)
	}
	return buf
}

// DecodeExecResult decodes the MsgResults body.
func DecodeExecResult(body []byte) (*ExecResult, error) {
	prints, rest, err := readStrings(body)
	if err != nil {
		return nil, err
	}
	n, w := binary.Uvarint(rest)
	if w <= 0 {
		return nil, fmt.Errorf("wire: truncated result sets")
	}
	rest = rest[w:]
	res := &ExecResult{Prints: prints, Sets: make([]ResultSet, n)}
	for i := range res.Sets {
		if res.Sets[i].Columns, rest, err = readStrings(rest); err != nil {
			return nil, err
		}
		if res.Sets[i].Rows, rest, err = readRows(rest); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// EncodeQueryReq encodes the MsgQuery body: statement id + parameter row.
func EncodeQueryReq(stmtID uint32, args []sqltypes.Value) []byte {
	buf := binary.AppendUvarint(nil, uint64(stmtID))
	return storage.AppendRow(buf, args)
}

// DecodeQueryReq decodes the MsgQuery body.
func DecodeQueryReq(body []byte) (uint32, []sqltypes.Value, error) {
	id, w := binary.Uvarint(body)
	if w <= 0 {
		return 0, nil, fmt.Errorf("wire: truncated query request")
	}
	args, _, err := storage.DecodeRow(body[w:])
	if err != nil {
		return 0, nil, err
	}
	return uint32(id), args, nil
}

// EncodeStmtResp encodes the MsgStmt body.
func EncodeStmtResp(stmtID uint32) []byte {
	return binary.AppendUvarint(nil, uint64(stmtID))
}

// DecodeStmtResp decodes the MsgStmt body.
func DecodeStmtResp(body []byte) (uint32, error) {
	id, w := binary.Uvarint(body)
	if w <= 0 {
		return 0, fmt.Errorf("wire: truncated statement id")
	}
	return uint32(id), nil
}

// EncodeCursorResp encodes the MsgCursor body: cursor id + column names.
func EncodeCursorResp(cursorID uint32, cols []string) []byte {
	buf := binary.AppendUvarint(nil, uint64(cursorID))
	return appendStrings(buf, cols)
}

// DecodeCursorResp decodes the MsgCursor body.
func DecodeCursorResp(body []byte) (uint32, []string, error) {
	id, w := binary.Uvarint(body)
	if w <= 0 {
		return 0, nil, fmt.Errorf("wire: truncated cursor id")
	}
	cols, _, err := readStrings(body[w:])
	if err != nil {
		return 0, nil, err
	}
	return uint32(id), cols, nil
}

// EncodeFetchReq encodes the MsgFetch body: cursor id + max rows.
func EncodeFetchReq(cursorID uint32, maxRows int) []byte {
	buf := binary.AppendUvarint(nil, uint64(cursorID))
	return binary.AppendUvarint(buf, uint64(maxRows))
}

// DecodeFetchReq decodes the MsgFetch body.
func DecodeFetchReq(body []byte) (uint32, int, error) {
	id, w := binary.Uvarint(body)
	if w <= 0 {
		return 0, 0, fmt.Errorf("wire: truncated fetch request")
	}
	n, w2 := binary.Uvarint(body[w:])
	if w2 <= 0 {
		return 0, 0, fmt.Errorf("wire: truncated fetch count")
	}
	return uint32(id), int(n), nil
}

// EncodeRowsResp encodes the MsgRows body: done flag + row batch. done
// reports that the cursor is exhausted and has been released server-side,
// so no MsgCloseCursor is needed.
func EncodeRowsResp(rows [][]sqltypes.Value, done bool) []byte {
	buf := []byte{0}
	if done {
		buf[0] = 1
	}
	return appendRows(buf, rows)
}

// DecodeRowsResp decodes the MsgRows body.
func DecodeRowsResp(body []byte) ([][]sqltypes.Value, bool, error) {
	if len(body) < 1 {
		return nil, false, fmt.Errorf("wire: truncated rows response")
	}
	rows, _, err := readRows(body[1:])
	if err != nil {
		return nil, false, err
	}
	return rows, body[0] != 0, nil
}

// SlowQuery is one slow-query log entry in a ServerStats snapshot. Entries
// are keyed by statement fingerprint: repeated slow executions of the same
// normalized statement fold into one entry (worst latency, hit count)
// instead of flooding the ring.
type SlowQuery struct {
	// Micros is the worst observed request latency in microseconds.
	Micros int64
	// Summary is a truncated description of the request (normalized
	// statement text or a protocol-level label).
	Summary string
	// Fingerprint is the normalized-statement hash (0 when the request has
	// no statement text, e.g. FETCH).
	Fingerprint uint64
	// Count is how many slow executions folded into this entry.
	Count int64
}

// ServerStats is the server's query-metrics snapshot returned for MsgStats:
// lifetime request counters, traffic totals, an approximate latency
// distribution, and the most recent slow queries.
type ServerStats struct {
	Connections   int64 // connections accepted since start
	Requests      int64 // frames served (all message types)
	Execs         int64 // MsgExec batches
	Queries       int64 // MsgQuery executions
	Fetches       int64 // MsgFetch batches
	CursorsOpened int64 // server-side cursors opened since start
	OpenCursors   int64 // server-side cursors currently open
	BytesIn       int64 // request frame bytes read
	BytesOut      int64 // response frame bytes written
	P50Micros     int64 // approximate median request latency (µs)
	P99Micros     int64 // approximate 99th-percentile request latency (µs)
	SlowCount     int64 // requests over the slow-query threshold
	Slow          []SlowQuery
}

// EncodeServerStats encodes the MsgServerStats body.
func EncodeServerStats(st *ServerStats) []byte {
	buf := binary.AppendUvarint(nil, uint64(st.Connections))
	buf = binary.AppendUvarint(buf, uint64(st.Requests))
	buf = binary.AppendUvarint(buf, uint64(st.Execs))
	buf = binary.AppendUvarint(buf, uint64(st.Queries))
	buf = binary.AppendUvarint(buf, uint64(st.Fetches))
	buf = binary.AppendUvarint(buf, uint64(st.CursorsOpened))
	buf = binary.AppendUvarint(buf, uint64(st.OpenCursors))
	buf = binary.AppendUvarint(buf, uint64(st.BytesIn))
	buf = binary.AppendUvarint(buf, uint64(st.BytesOut))
	buf = binary.AppendUvarint(buf, uint64(st.P50Micros))
	buf = binary.AppendUvarint(buf, uint64(st.P99Micros))
	buf = binary.AppendUvarint(buf, uint64(st.SlowCount))
	buf = binary.AppendUvarint(buf, uint64(len(st.Slow)))
	for _, sq := range st.Slow {
		buf = binary.AppendUvarint(buf, uint64(sq.Micros))
		buf = appendString(buf, sq.Summary)
		buf = binary.AppendUvarint(buf, sq.Fingerprint)
		buf = binary.AppendUvarint(buf, uint64(sq.Count))
	}
	return buf
}

// DecodeServerStats decodes the MsgServerStats body.
func DecodeServerStats(body []byte) (*ServerStats, error) {
	st := &ServerStats{}
	fields := []*int64{
		&st.Connections, &st.Requests, &st.Execs, &st.Queries, &st.Fetches,
		&st.CursorsOpened, &st.OpenCursors, &st.BytesIn, &st.BytesOut,
		&st.P50Micros, &st.P99Micros, &st.SlowCount,
	}
	for _, f := range fields {
		v, w := binary.Uvarint(body)
		if w <= 0 {
			return nil, fmt.Errorf("wire: truncated server stats")
		}
		*f = int64(v)
		body = body[w:]
	}
	n, w := binary.Uvarint(body)
	if w <= 0 {
		return nil, fmt.Errorf("wire: truncated slow-query log")
	}
	body = body[w:]
	st.Slow = make([]SlowQuery, n)
	for i := range st.Slow {
		us, w := binary.Uvarint(body)
		if w <= 0 {
			return nil, fmt.Errorf("wire: truncated slow-query entry")
		}
		st.Slow[i].Micros = int64(us)
		var err error
		if st.Slow[i].Summary, body, err = readString(body[w:]); err != nil {
			return nil, err
		}
		fp, w := binary.Uvarint(body)
		if w <= 0 {
			return nil, fmt.Errorf("wire: truncated slow-query entry")
		}
		st.Slow[i].Fingerprint = fp
		body = body[w:]
		cnt, w := binary.Uvarint(body)
		if w <= 0 {
			return nil, fmt.Errorf("wire: truncated slow-query entry")
		}
		st.Slow[i].Count = int64(cnt)
		body = body[w:]
	}
	return st, nil
}

// EncodeCloseReq encodes the MsgCloseCursor body.
func EncodeCloseReq(cursorID uint32) []byte {
	return binary.AppendUvarint(nil, uint64(cursorID))
}

// DecodeCloseReq decodes the MsgCloseCursor body.
func DecodeCloseReq(body []byte) (uint32, error) {
	id, w := binary.Uvarint(body)
	if w <= 0 {
		return 0, fmt.Errorf("wire: truncated close request")
	}
	return uint32(id), nil
}
