package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestTraceContextRoundTripProperty drives EncodeTraced/SplitTraceContext
// with random contexts, bodies, and request types: the decoded triple must
// match the encoded one exactly.
func TestTraceContextRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reqTypes := []MsgType{MsgExec, MsgPrepare, MsgQuery, MsgFetch, MsgCloseCursor, MsgStats, MsgQuit}
	for i := 0; i < 500; i++ {
		tc := TraceContext{TraceID: rng.Uint64() | 1, SpanID: rng.Uint64()}
		body := make([]byte, rng.Intn(256))
		rng.Read(body)
		typ := reqTypes[rng.Intn(len(reqTypes))]

		framed := EncodeTraced(tc, body)
		if len(framed) != TraceContextLen+len(body) {
			t.Fatalf("framed len = %d, want %d", len(framed), TraceContextLen+len(body))
		}
		gotTyp, gotTC, gotBody, err := SplitTraceContext(typ|TraceFlag, framed)
		if err != nil {
			t.Fatalf("split: %v", err)
		}
		if gotTyp != typ {
			t.Fatalf("type = 0x%02x, want 0x%02x", byte(gotTyp), byte(typ))
		}
		if gotTC != tc {
			t.Fatalf("context = %+v, want %+v", gotTC, tc)
		}
		if !bytes.Equal(gotBody, body) {
			t.Fatalf("body mismatch after round trip")
		}
	}
}

func TestSplitTraceContextPassthroughUnflagged(t *testing.T) {
	body := []byte("select 1")
	typ, tc, got, err := SplitTraceContext(MsgExec, body)
	if err != nil || typ != MsgExec || tc.Valid() {
		t.Fatalf("passthrough: typ=0x%02x tc=%+v err=%v", byte(typ), tc, err)
	}
	// Same backing array: the untraced path must not copy.
	if &got[0] != &body[0] {
		t.Fatal("unflagged body was copied")
	}
}

func TestSplitTraceContextPassthroughZeroAllocs(t *testing.T) {
	body := []byte("select 1")
	allocs := testing.AllocsPerRun(1000, func() {
		_, _, _, err := SplitTraceContext(MsgExec, body)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("unflagged SplitTraceContext allocates %v/op, want 0", allocs)
	}
}

func TestSplitTraceContextRejectsTruncated(t *testing.T) {
	for n := 0; n < TraceContextLen; n++ {
		if _, _, _, err := SplitTraceContext(MsgExec|TraceFlag, make([]byte, n)); err == nil {
			t.Fatalf("accepted %d-byte trace context", n)
		}
	}
}

func TestSplitTraceContextRejectsZeroTraceID(t *testing.T) {
	framed := EncodeTraced(TraceContext{TraceID: 0, SpanID: 5}, []byte("x"))
	if _, _, _, err := SplitTraceContext(MsgExec|TraceFlag, framed); err == nil {
		t.Fatal("accepted zero trace id")
	}
}

// TestTraceFlagDisjointFromMsgTypes pins the flag bit free of both the
// request range and the response bit, so flagged requests can never be
// confused with any defined message type.
func TestTraceFlagDisjointFromMsgTypes(t *testing.T) {
	all := []MsgType{
		MsgExec, MsgPrepare, MsgQuery, MsgFetch, MsgCloseCursor, MsgStats, MsgQuit,
		MsgResults, MsgStmt, MsgCursor, MsgRows, MsgOK, MsgError, MsgServerStats,
	}
	for _, m := range all {
		if m&TraceFlag != 0 {
			t.Fatalf("message type 0x%02x collides with TraceFlag", byte(m))
		}
	}
}
