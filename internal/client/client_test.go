package client_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"aggify/internal/client"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/server"
	"aggify/internal/sqltypes"
	"aggify/internal/testutil"
	"aggify/internal/wire"
)

func newServer(t *testing.T) *engine.Engine {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	eng := engine.New()
	interp.Install(eng)
	return eng
}

func TestClientQueryLoop(t *testing.T) {
	eng := newServer(t)
	conn := client.Connect(eng, wire.LAN)
	if err := conn.Exec(`
create table monthly_investments (investor_id int, start_date date, roi float);
insert into monthly_investments values
 (7, '2020-01-01', 0.10), (7, '2020-02-01', 0.05), (7, '2020-03-01', -0.02),
 (8, '2020-01-01', 0.01);
`); err != nil {
		t.Fatal(err)
	}
	stmt, err := conn.Prepare("select roi from monthly_investments where investor_id = ? and start_date >= ?")
	if err != nil {
		t.Fatal(err)
	}
	conn.ResetMeter()
	rs, err := stmt.Query(sqltypes.NewInt(7), sqltypes.MustDate("2020-01-01"))
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 2 loop.
	cumulative := 1.0
	n := 0
	for rs.Next() {
		cumulative *= rs.Float64("roi") + 1
		n++
	}
	cumulative -= 1
	rs.Close()
	if n != 3 {
		t.Fatalf("rows = %d", n)
	}
	want := 1.10*1.05*0.98 - 1
	if d := cumulative - want; d > 1e-12 || d < -1e-12 {
		t.Fatalf("cumulative = %v, want %v", cumulative, want)
	}
	m := conn.Meter()
	if m.RowsTransferred != 3 {
		t.Fatalf("rows transferred = %d", m.RowsTransferred)
	}
	if m.RoundTrips < 2 { // query + at least one fetch batch
		t.Fatalf("round trips = %d", m.RoundTrips)
	}
	if m.BytesToClient <= 0 || m.BytesToServer <= 0 {
		t.Fatalf("meter = %+v", m)
	}
}

func TestFetchBatching(t *testing.T) {
	eng := newServer(t)
	conn := client.Connect(eng, wire.LAN)
	if err := conn.Exec("create table nums (n int);"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := conn.Exec("insert into nums values (1),(2),(3),(4),(5),(6),(7),(8),(9),(10);"); err != nil {
			t.Fatal(err)
		}
	}
	conn.FetchSize = 10
	stmt, err := conn.Prepare("select n from nums")
	if err != nil {
		t.Fatal(err)
	}
	conn.ResetMeter()
	rs, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for rs.Next() {
		count++
	}
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
	m := conn.Meter()
	// 1 query round trip + 10 fetch batches.
	if m.RoundTrips != 11 {
		t.Fatalf("round trips = %d, want 11", m.RoundTrips)
	}
	// Early close skips transfer of remaining rows.
	conn.ResetMeter()
	rs, _ = stmt.Query()
	rs.Next()
	rs.Close()
	if got := conn.Meter().RowsTransferred; got != 10 { // one batch
		t.Fatalf("early close transferred %d rows", got)
	}
}

func TestNetworkTimeDeterministic(t *testing.T) {
	eng := newServer(t)
	prof := wire.Profile{RTT: time.Millisecond, Bandwidth: 1_000_000}
	conn := client.Connect(eng, prof)
	if err := conn.Exec("create table t (a int); insert into t values (1);"); err != nil {
		t.Fatal(err)
	}
	m := conn.Meter()
	want := time.Duration(m.RoundTrips)*time.Millisecond +
		time.Duration(float64(m.TotalBytes())/1_000_000*float64(time.Second))
	if got := conn.NetworkTime(); got != want {
		t.Fatalf("network time = %v, want %v", got, want)
	}
}

func TestAggifiedClientProgramMovesLessData(t *testing.T) {
	// The Figure 8 pattern: ship the aggregate + one query, get one row.
	eng := newServer(t)
	setup := client.Connect(eng, wire.LAN)
	if err := setup.Exec(`
create table monthly_investments (investor_id int, start_date date, roi float);
`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := setup.Exec(`insert into monthly_investments values
 (7, '2020-01-01', 0.01),(7, '2020-01-02', 0.02),(7, '2020-01-03', 0.03),
 (7, '2020-01-04', 0.01),(7, '2020-01-05', 0.0)`); err != nil {
			t.Fatal(err)
		}
	}

	// Original: iterate all rows on the client.
	orig := client.Connect(eng, wire.LAN)
	stmt, err := orig.Prepare("select roi from monthly_investments where investor_id = ?")
	if err != nil {
		t.Fatal(err)
	}
	orig.ResetMeter()
	rs, err := stmt.Query(sqltypes.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	cum := 1.0
	for rs.Next() {
		cum *= rs.Float64("roi") + 1
	}
	cum -= 1

	// Rewritten: register the Figure 6 aggregate, run one query.
	agg := client.Connect(eng, wire.LAN)
	if err := agg.Exec(`
create aggregate CumulativeROIAgg(@monthlyROI float, @p_cum float) returns float as
begin
  fields (@cum float, @isInitialized bit);
  init begin set @isInitialized = false; end
  accumulate begin
    if @isInitialized = false
    begin
      set @cum = @p_cum;
      set @isInitialized = true;
    end
    set @cum = @cum * (@monthlyROI + 1);
  end
  terminate begin return @cum; end
end`); err != nil {
		t.Fatal(err)
	}
	stmt2, err := agg.Prepare("select CumulativeROIAgg(q.roi, 1.0) from (select roi from monthly_investments where investor_id = ?) q")
	if err != nil {
		t.Fatal(err)
	}
	agg.ResetMeter()
	row, err := stmt2.QueryRow(sqltypes.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	got := row[0].Float() - 1

	if d := got - cum; d > 1e-9 || d < -1e-9 {
		t.Fatalf("results differ: %v vs %v", got, cum)
	}
	if agg.Meter().BytesToClient*10 > orig.Meter().BytesToClient {
		t.Fatalf("aggified moved %d bytes vs original %d — expected >10x reduction",
			agg.Meter().BytesToClient, orig.Meter().BytesToClient)
	}
	if agg.Meter().RowsTransferred != 1 {
		t.Fatalf("aggified transferred %d rows", agg.Meter().RowsTransferred)
	}
}

// TestExecMetersReplyPayload pins the Exec reply metering: PRINT output,
// result-set rows, and error text all count toward bytes-to-client instead
// of a flat per-request constant.
func TestExecMetersReplyPayload(t *testing.T) {
	eng := newServer(t)
	conn := client.Connect(eng, wire.LAN)

	big := strings.Repeat("x", 2000)
	conn.ResetMeter()
	if err := conn.Exec("print '" + big + "'"); err != nil {
		t.Fatal(err)
	}
	if got := conn.Meter().BytesToClient; got < 2000 {
		t.Fatalf("PRINT reply metered at %d bytes, want >= 2000", got)
	}
	if p := conn.Prints(); len(p) != 1 || p[0] != big {
		t.Fatalf("prints = %d entries", len(p))
	}

	// A script's result sets travel to the client and are metered.
	if err := conn.Exec("create table t (s varchar(100)); insert into t values ('" + big[:90] + "');"); err != nil {
		t.Fatal(err)
	}
	conn.ResetMeter()
	if err := conn.Exec("select s from t"); err != nil {
		t.Fatal(err)
	}
	if got := conn.Meter(); got.BytesToClient < 90 || got.RowsTransferred != 1 {
		t.Fatalf("result-set reply metered at %+v", got)
	}

	// Error text is the reply payload of a failed request.
	conn.ResetMeter()
	err := conn.Exec("select nosuchcol from " + strings.Repeat("long_missing_table_name", 10))
	if err == nil {
		t.Fatal("expected error")
	}
	if got := conn.Meter().BytesToClient; got < int64(len(err.Error())) {
		t.Fatalf("error reply metered at %d bytes, text is %d", got, len(err.Error()))
	}
}

// TestEarlyCloseNeverTransfersUnfetched asserts — on both transports —
// that closing a result set early releases the server-side cursor and the
// unfetched rows never cross the wire.
func TestEarlyCloseNeverTransfersUnfetched(t *testing.T) {
	eng := newServer(t)
	setup := client.Connect(eng, wire.LAN)
	if err := setup.Exec("create table nums (n int)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := setup.Exec("insert into nums values (1),(2),(3),(4),(5),(6),(7),(8),(9),(10)"); err != nil {
			t.Fatal(err)
		}
	}

	srv := server.New(eng)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()

	transports := map[string]func() *client.Conn{
		"inproc": func() *client.Conn { return client.Connect(eng, wire.LAN) },
		"socket": func() *client.Conn {
			conn, err := client.Dial(lis.Addr().String(), wire.LAN)
			if err != nil {
				t.Fatal(err)
			}
			return conn
		},
	}
	meters := map[string]wire.Meter{}
	for name, open := range transports {
		conn := open()
		conn.FetchSize = 10
		stmt, err := conn.Prepare("select n from nums")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		conn.ResetMeter()
		rs, err := stmt.Query()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rs.Next() {
			t.Fatalf("%s: no rows", name)
		}
		if err := rs.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		m := conn.Meter()
		if m.RowsTransferred != 10 {
			t.Fatalf("%s: transferred %d rows, want one batch of 10", name, m.RowsTransferred)
		}
		// query + one fetch + cursor close, nothing else.
		if m.RoundTrips != 3 {
			t.Fatalf("%s: round trips = %d, want 3", name, m.RoundTrips)
		}
		meters[name] = m
		conn.Close()
	}
	if srv.OpenCursors() != 0 {
		t.Fatalf("server still holds %d cursors", srv.OpenCursors())
	}
	if meters["inproc"] != meters["socket"] {
		t.Fatalf("virtual meter %+v != socket meter %+v", meters["inproc"], meters["socket"])
	}
}

// TestZeroRowResult covers the empty result set: one fetch round trip
// reports done with no rows on both transports.
func TestZeroRowResult(t *testing.T) {
	eng := newServer(t)
	setup := client.Connect(eng, wire.LAN)
	if err := setup.Exec("create table empty_t (n int)"); err != nil {
		t.Fatal(err)
	}
	conn := client.Connect(eng, wire.LAN)
	stmt, err := conn.Prepare("select n from empty_t")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Next() {
		t.Fatal("Next on empty result must be false")
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if got := conn.Meter().RowsTransferred; got != 0 {
		t.Fatalf("rows transferred = %d", got)
	}
}

func TestPrepareErrors(t *testing.T) {
	eng := newServer(t)
	conn := client.Connect(eng, wire.LAN)
	if _, err := conn.Prepare("insert into t values (1)"); err == nil {
		t.Fatal("Prepare of non-SELECT must error")
	}
	if _, err := conn.Prepare("select 1; select 2;"); err == nil {
		t.Fatal("Prepare of multiple statements must error")
	}
	if _, err := conn.Prepare("not sql"); err == nil {
		t.Fatal("Prepare of garbage must error")
	}
}
