// Package client provides the application side of the paper's database-
// backed-application experiments (§2.2, Figures 2 and 8): a JDBC-style API
// (Connect / Prepare / Query / ResultSet iteration) over a pluggable
// transport. Connect runs against an in-process engine with a virtual
// network meter; Dial speaks the same binary protocol to a live aggifyd
// over TCP. Either way the server holds the cursor: client loops pull rows
// in FetchSize batches, paying a round trip per batch and transferring
// every row, while Aggify-rewritten programs ship one CREATE AGGREGATE plus
// one query and receive a single row back.
package client

import (
	"strings"
	"time"

	"aggify/internal/engine"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
	"aggify/internal/trace"
	"aggify/internal/wire"
)

// DefaultFetchSize is the rows-per-round-trip batch size (JDBC default-ish).
const DefaultFetchSize = 128

// Conn is a client connection to a server, with traffic metering.
type Conn struct {
	tr      Transport
	profile wire.Profile
	tracer  *trace.Tracer
	// FetchSize is the maximum rows pulled per fetch round trip.
	FetchSize int

	prints []string // PRINT output of the last Exec
}

// traceCarrier is implemented by transports that can attach a trace context
// to the requests they send (the socket transport flags the frame; the
// in-process transport parents the backend's spans directly).
type traceCarrier interface {
	setTracer(tr *trace.Tracer)
	setTraceContext(tc wire.TraceContext)
}

// Connect opens an in-process connection (its own server session) with the
// given network profile. Traffic is priced by the virtual meter using the
// exact frame sizes the TCP protocol would move.
func Connect(eng *engine.Engine, profile wire.Profile) *Conn {
	return NewConn(newInproc(eng), profile)
}

// Dial opens a connection to a running aggifyd server. The meter counts
// real socket bytes.
func Dial(addr string, profile wire.Profile) (*Conn, error) {
	tr, err := dialSocket(addr)
	if err != nil {
		return nil, err
	}
	return NewConn(tr, profile), nil
}

// NewConn wraps a transport in the driver API.
func NewConn(tr Transport, profile wire.Profile) *Conn {
	return &Conn{tr: tr, profile: profile, FetchSize: DefaultFetchSize}
}

// SetTracer installs a tracer: each driver call (Exec, Prepare, Query,
// Fetch, CloseCursor) roots a client span subject to the tracer's sampling
// rate, and sampled calls carry their trace context to the server so its
// spans join the same trace. A nil tracer (the default) costs nothing.
func (c *Conn) SetTracer(tr *trace.Tracer) {
	c.tracer = tr
	if car, ok := c.tr.(traceCarrier); ok {
		car.setTracer(tr)
	}
}

// startCall roots the span for one driver call and points the transport's
// trace context at it. An unsampled call yields a disabled span with a zero
// context, which resets the transport to untraced framing.
func (c *Conn) startCall(name string) trace.Span {
	sp := c.tracer.StartTrace(name)
	if car, ok := c.tr.(traceCarrier); ok {
		ctx := sp.Context()
		car.setTraceContext(wire.TraceContext{TraceID: uint64(ctx.Trace), SpanID: uint64(ctx.Span)})
	}
	return sp
}

// Close releases the connection (and, over a socket, announces the
// disconnect to the server).
func (c *Conn) Close() error { return c.tr.Close() }

// Session exposes the server session when it lives in-process (nil for
// socket connections; used for statistics in benchmarks).
func (c *Conn) Session() *engine.Session { return c.tr.Session() }

// Meter returns the accumulated traffic totals.
func (c *Conn) Meter() wire.Meter { return c.tr.Meter() }

// ResetMeter clears the traffic totals.
func (c *Conn) ResetMeter() { c.tr.ResetMeter() }

// NetworkTime returns the virtual network time for the accumulated traffic.
func (c *Conn) NetworkTime() time.Duration {
	m := c.tr.Meter()
	return m.NetworkTime(c.profile)
}

// Exec sends a script (DDL, DML, procedure definitions) to the server and
// executes it in one round trip. The reply carries any PRINT output (see
// Prints) and result sets; both are metered.
func (c *Conn) Exec(src string) error {
	_, err := c.ExecResults(src)
	return err
}

// ExecResults is Exec returning the full reply: PRINT output plus the
// result sets of any top-level SELECTs in the script.
func (c *Conn) ExecResults(src string) (*wire.ExecResult, error) {
	sp := c.startCall("client.exec")
	sp.SetAttrInt("sql_bytes", int64(len(src)))
	res, err := c.tr.Exec(src)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		c.prints = nil
		return nil, err
	}
	sp.SetAttrInt("rows", res.RowCount())
	sp.End()
	c.prints = res.Prints
	return res, nil
}

// Prints returns the PRINT output of the last successful Exec.
func (c *Conn) Prints() []string { return c.prints }

// Stmt is a prepared statement.
type Stmt struct {
	conn *Conn
	id   uint32
}

// Prepare sends a SELECT with optional '?' placeholders to the server for
// preparation. One round trip: the statement text travels once; executions
// then send only parameters.
func (c *Conn) Prepare(src string) (*Stmt, error) {
	sp := c.startCall("client.prepare")
	id, err := c.tr.Prepare(src)
	sp.End()
	if err != nil {
		return nil, err
	}
	return &Stmt{conn: c, id: id}, nil
}

// Query executes the statement with the given parameter values and opens a
// server-side cursor over the result. The server runs the query to
// completion; the client then fetches rows in FetchSize batches, one round
// trip per batch.
func (s *Stmt) Query(args ...sqltypes.Value) (*Rows, error) {
	sp := s.conn.startCall("client.query")
	cursorID, cols, err := s.conn.tr.Query(s.id, args)
	sp.End()
	if err != nil {
		return nil, err
	}
	return &Rows{conn: s.conn, cols: cols, cursor: cursorID, pos: -1}, nil
}

// QueryRow runs the statement and decodes the single result row (nil when
// empty).
func (s *Stmt) QueryRow(args ...sqltypes.Value) ([]sqltypes.Value, error) {
	rs, err := s.Query(args...)
	if err != nil {
		return nil, err
	}
	defer rs.Close()
	if !rs.Next() {
		return nil, rs.Err()
	}
	return rs.Row(), nil
}

// Rows is a client-side result cursor (the ResultSet of Figure 2) backed by
// a server-side cursor.
type Rows struct {
	conn   *Conn
	cols   []string
	cursor uint32
	buf    [][]sqltypes.Value // current batch
	pos    int                // position within buf
	done   bool               // server cursor exhausted (and released)
	closed bool
	err    error
}

// Next advances to the next row, fetching the next batch over the wire when
// the local buffer is exhausted.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.pos+1 < len(r.buf) {
		r.pos++
		return true
	}
	if r.done {
		return false
	}
	batch := r.conn.FetchSize
	if batch <= 0 {
		batch = DefaultFetchSize
	}
	sp := r.conn.startCall("client.fetch")
	rows, done, err := r.conn.tr.Fetch(r.cursor, batch)
	sp.SetAttrInt("rows", int64(len(rows)))
	sp.End()
	if err != nil {
		r.err = err
		r.done = true
		return false
	}
	r.buf, r.pos, r.done = rows, 0, done
	if len(rows) == 0 {
		r.pos = -1
		return false
	}
	return true
}

// Err returns the first error hit while iterating.
func (r *Rows) Err() error { return r.err }

// Row returns the current row.
func (r *Rows) Row() []sqltypes.Value { return r.buf[r.pos] }

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.cols }

// ordinal finds a column by name.
func (r *Rows) ordinal(name string) int {
	name = strings.ToLower(name)
	for i, c := range r.cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Value returns the named column of the current row (NULL for unknown
// names, mirroring lenient driver accessors).
func (r *Rows) Value(name string) sqltypes.Value {
	i := r.ordinal(name)
	if i < 0 {
		return sqltypes.Null
	}
	return r.buf[r.pos][i]
}

// Float64 returns the named column as float64 (0 for NULL).
func (r *Rows) Float64(name string) float64 {
	f, _ := r.Value(name).AsFloat()
	return f
}

// Int64 returns the named column as int64 (0 for NULL).
func (r *Rows) Int64(name string) int64 {
	i, _ := r.Value(name).AsInt()
	return i
}

// String returns the named column as a string ("" for NULL).
func (r *Rows) String(name string) string {
	v := r.Value(name)
	if v.IsNull() {
		return ""
	}
	return v.Display()
}

// Close releases the cursor. Closing before exhaustion sends a CloseCursor
// message so the server frees the cursor, and the remaining unfetched rows
// are never transferred — like closing a JDBC ResultSet early. Exhausted
// cursors were already released by the final fetch, so Close is free.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.done {
		return nil
	}
	sp := r.conn.startCall("client.close_cursor")
	err := r.conn.tr.CloseCursor(r.cursor)
	sp.End()
	return err
}

// ServerStats exposes the server session's I/O statistics snapshot (zero
// over socket connections, where the session is remote).
func (c *Conn) ServerStats() storage.Snapshot {
	if s := c.tr.Session(); s != nil {
		return s.Stats.Snapshot()
	}
	return storage.Snapshot{}
}

// ServerMetrics fetches the server's query-metrics snapshot (request
// counters, traffic totals, latency percentiles, slow-query log) in one
// round trip. Socket connections only: the in-process transport has no
// server registry and returns an error.
func (c *Conn) ServerMetrics() (*wire.ServerStats, error) {
	return c.tr.ServerStats()
}
