// Package client provides the application side of the paper's database-
// backed-application experiments (§2.2, Figures 2 and 8): a JDBC-style API
// (Connect / Prepare / Query / ResultSet iteration) whose traffic crosses
// the wire meter. Client cursor loops fetch rows in batches (like JDBC's
// fetch size), so the original programs pay a round trip per batch and
// transfer every row, while Aggify-rewritten programs ship one CREATE
// AGGREGATE plus one query and receive a single row back.
package client

import (
	"fmt"
	"strings"
	"time"

	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/exec"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
	"aggify/internal/wire"
)

// DefaultFetchSize is the rows-per-round-trip batch size (JDBC default-ish).
const DefaultFetchSize = 128

// Conn is a client connection to an engine, with traffic metering.
type Conn struct {
	sess      *engine.Session
	profile   wire.Profile
	meter     wire.Meter
	FetchSize int
}

// Connect opens a connection (its own server session) with the given
// network profile.
func Connect(eng *engine.Engine, profile wire.Profile) *Conn {
	return &Conn{sess: eng.NewSession(), profile: profile, FetchSize: DefaultFetchSize}
}

// Session exposes the server session (for statistics in benchmarks).
func (c *Conn) Session() *engine.Session { return c.sess }

// Meter returns the accumulated traffic totals.
func (c *Conn) Meter() wire.Meter { return c.meter }

// ResetMeter clears the traffic totals.
func (c *Conn) ResetMeter() { c.meter = wire.Meter{} }

// NetworkTime returns the virtual network time for the accumulated traffic.
func (c *Conn) NetworkTime() time.Duration {
	return c.meter.NetworkTime(c.profile)
}

// chargeRequest accounts one client→server message of the given size.
func (c *Conn) chargeRequest(bytes int) {
	c.meter.RoundTrips++
	c.meter.BytesToServer += int64(bytes) + wire.RequestOverhead
}

// Exec sends a script (DDL, DML, procedure definitions) to the server and
// executes it. One round trip; the script text is the payload.
func (c *Conn) Exec(src string) error {
	stmts, err := parser.Parse(src)
	if err != nil {
		return err
	}
	c.chargeRequest(len(src))
	c.meter.BytesToClient += wire.RequestOverhead // status response
	_, err = interp.RunScript(c.sess, stmts)
	return err
}

// Stmt is a prepared statement.
type Stmt struct {
	conn  *Conn
	query *ast.Select
	src   string
}

// Prepare parses a SELECT with optional '?' placeholders. Preparation costs
// one round trip (the statement text travels once; executions then send
// only parameters).
func (c *Conn) Prepare(src string) (*Stmt, error) {
	stmts, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("client: Prepare expects a single statement")
	}
	qs, ok := stmts[0].(*ast.QueryStmt)
	if !ok {
		return nil, fmt.Errorf("client: Prepare expects a SELECT")
	}
	c.chargeRequest(len(src))
	c.meter.BytesToClient += wire.RequestOverhead
	return &Stmt{conn: c, query: qs.Query, src: src}, nil
}

// Query executes the statement with the given parameter values and returns
// a result set cursor. The server runs the query to completion; the client
// then fetches rows in FetchSize batches, one round trip per batch.
func (s *Stmt) Query(args ...sqltypes.Value) (*Rows, error) {
	c := s.conn
	ctx := c.sess.Ctx(nil, nil)
	ctx.Params = args
	c.chargeRequest(int(wire.RowsSize([][]sqltypes.Value{args})))
	cols, rows, err := c.sess.Query(s.query, ctx)
	if err != nil {
		return nil, err
	}
	return &Rows{conn: c, cols: cols, rows: rows, pos: -1, unfetched: len(rows)}, nil
}

// QueryRow runs the statement and decodes the single result row (nil when
// empty).
func (s *Stmt) QueryRow(args ...sqltypes.Value) ([]sqltypes.Value, error) {
	rs, err := s.Query(args...)
	if err != nil {
		return nil, err
	}
	defer rs.Close()
	if !rs.Next() {
		return nil, nil
	}
	return rs.Row(), nil
}

// Rows is a client-side result cursor (the ResultSet of Figure 2).
type Rows struct {
	conn      *Conn
	cols      []string
	rows      []exec.Row
	pos       int
	fetched   int // rows already transferred
	unfetched int
}

// Next advances to the next row, fetching the next batch over the wire when
// the local buffer is exhausted.
func (r *Rows) Next() bool {
	if r.pos+1 >= len(r.rows) {
		return false
	}
	r.pos++
	if r.pos >= r.fetched {
		// Fetch the next batch: one round trip, rows encoded on the wire.
		batch := r.conn.FetchSize
		if batch <= 0 {
			batch = DefaultFetchSize
		}
		hi := r.fetched + batch
		if hi > len(r.rows) {
			hi = len(r.rows)
		}
		transferred := r.rows[r.fetched:hi]
		r.conn.meter.RoundTrips++
		r.conn.meter.BytesToServer += wire.RequestOverhead
		r.conn.meter.BytesToClient += wire.RowsSize(transferred) + wire.RequestOverhead
		r.conn.meter.RowsTransferred += int64(len(transferred))
		r.fetched = hi
	}
	return true
}

// Row returns the current row.
func (r *Rows) Row() []sqltypes.Value { return r.rows[r.pos] }

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.cols }

// ordinal finds a column by name.
func (r *Rows) ordinal(name string) int {
	name = strings.ToLower(name)
	for i, c := range r.cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Value returns the named column of the current row (NULL for unknown
// names, mirroring lenient driver accessors).
func (r *Rows) Value(name string) sqltypes.Value {
	i := r.ordinal(name)
	if i < 0 {
		return sqltypes.Null
	}
	return r.rows[r.pos][i]
}

// Float64 returns the named column as float64 (0 for NULL).
func (r *Rows) Float64(name string) float64 {
	f, _ := r.Value(name).AsFloat()
	return f
}

// Int64 returns the named column as int64 (0 for NULL).
func (r *Rows) Int64(name string) int64 {
	i, _ := r.Value(name).AsInt()
	return i
}

// String returns the named column as a string ("" for NULL).
func (r *Rows) String(name string) string {
	v := r.Value(name)
	if v.IsNull() {
		return ""
	}
	return v.Display()
}

// Close releases the cursor (remaining unfetched rows are never
// transferred — like closing a JDBC ResultSet early).
func (r *Rows) Close() {}

// ServerStats exposes the server session's I/O statistics snapshot.
func (c *Conn) ServerStats() storage.Snapshot { return c.sess.Stats.Snapshot() }
