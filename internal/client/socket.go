package client

import (
	"bufio"
	"fmt"
	"net"

	"aggify/internal/engine"
	"aggify/internal/sqltypes"
	"aggify/internal/trace"
	"aggify/internal/wire"
)

// socket is the real-network transport: a live aggifyd connection whose
// meter counts the actual frame bytes written to and read from the TCP
// stream.
type socket struct {
	c     net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	meter wire.Meter

	tracer *trace.Tracer
	tc     wire.TraceContext // trace context for the next request (zero = untraced)
}

func (t *socket) setTracer(tr *trace.Tracer)           { t.tracer = tr }
func (t *socket) setTraceContext(tc wire.TraceContext) { t.tc = tc }

// dialSocket connects to an aggifyd server.
func dialSocket(addr string) (*socket, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newSocket(c), nil
}

// newSocket wraps an established connection (loopback tests use net.Pipe-
// style pairs as well as TCP).
func newSocket(c net.Conn) *socket {
	return &socket{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
}

// roundTrip sends one request frame and reads the response frame, counting
// real bytes in both directions. MsgError responses become errors carrying
// the server's text.
func (t *socket) roundTrip(typ wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
	parent := trace.SpanContext{Trace: trace.ID(t.tc.TraceID), Span: trace.ID(t.tc.SpanID)}
	if t.tc.Valid() {
		typ |= wire.TraceFlag
		body = wire.EncodeTraced(t.tc, body)
	}
	wsp := t.tracer.StartSpan(parent, "wire.write")
	n, err := wire.WriteFrame(t.bw, typ, body)
	if err == nil {
		err = t.bw.Flush()
	}
	wsp.SetAttrInt("bytes", int64(n))
	wsp.End()
	if err != nil {
		return 0, nil, err
	}
	t.meter.RoundTrips++
	t.meter.BytesToServer += int64(n)
	rsp := t.tracer.StartSpan(parent, "wire.read")
	respT, respB, rn, err := wire.ReadFrame(t.br)
	rsp.SetAttrInt("bytes", int64(rn))
	rsp.End()
	t.meter.BytesToClient += int64(rn)
	if err != nil {
		return 0, nil, err
	}
	if respT == wire.MsgError {
		return respT, nil, fmt.Errorf("%s", respB)
	}
	return respT, respB, nil
}

func (t *socket) expect(typ wire.MsgType, body []byte, want wire.MsgType) ([]byte, error) {
	respT, respB, err := t.roundTrip(typ, body)
	if err != nil {
		return nil, err
	}
	if respT != want {
		return nil, fmt.Errorf("client: unexpected response type 0x%02x (want 0x%02x)", byte(respT), byte(want))
	}
	return respB, nil
}

func (t *socket) Exec(src string) (*wire.ExecResult, error) {
	body, err := t.expect(wire.MsgExec, []byte(src), wire.MsgResults)
	if err != nil {
		return nil, err
	}
	res, err := wire.DecodeExecResult(body)
	if err != nil {
		return nil, err
	}
	t.meter.RowsTransferred += res.RowCount()
	return res, nil
}

func (t *socket) Prepare(src string) (uint32, error) {
	body, err := t.expect(wire.MsgPrepare, []byte(src), wire.MsgStmt)
	if err != nil {
		return 0, err
	}
	return wire.DecodeStmtResp(body)
}

func (t *socket) Query(stmtID uint32, args []sqltypes.Value) (uint32, []string, error) {
	body, err := t.expect(wire.MsgQuery, wire.EncodeQueryReq(stmtID, args), wire.MsgCursor)
	if err != nil {
		return 0, nil, err
	}
	return wire.DecodeCursorResp(body)
}

func (t *socket) Fetch(cursorID uint32, maxRows int) ([][]sqltypes.Value, bool, error) {
	body, err := t.expect(wire.MsgFetch, wire.EncodeFetchReq(cursorID, maxRows), wire.MsgRows)
	if err != nil {
		return nil, false, err
	}
	rows, done, err := wire.DecodeRowsResp(body)
	if err != nil {
		return nil, false, err
	}
	t.meter.RowsTransferred += int64(len(rows))
	return rows, done, nil
}

func (t *socket) CloseCursor(cursorID uint32) error {
	_, err := t.expect(wire.MsgCloseCursor, wire.EncodeCloseReq(cursorID), wire.MsgOK)
	return err
}

func (t *socket) ServerStats() (*wire.ServerStats, error) {
	body, err := t.expect(wire.MsgStats, nil, wire.MsgServerStats)
	if err != nil {
		return nil, err
	}
	return wire.DecodeServerStats(body)
}

// Close announces the disconnect (best effort) and closes the socket.
func (t *socket) Close() error {
	t.roundTrip(wire.MsgQuit, nil)
	return t.c.Close()
}

func (t *socket) Meter() wire.Meter        { return t.meter }
func (t *socket) ResetMeter()              { t.meter = wire.Meter{} }
func (t *socket) Session() *engine.Session { return nil }
