package client

import (
	"fmt"

	"aggify/internal/engine"
	"aggify/internal/server"
	"aggify/internal/sqltypes"
	"aggify/internal/trace"
	"aggify/internal/wire"
)

// Transport carries protocol requests to a server and meters the traffic.
// Two implementations exist: the in-process transport (a server backend in
// the same address space, with bytes priced by encoding the exact frames a
// socket would carry) and the socket transport (a live aggifyd over TCP,
// with bytes counted off the real frames). Because both price the same
// frames, the virtual meter is byte-for-byte comparable to a loopback
// capture.
type Transport interface {
	// Exec runs a script batch, returning PRINT output and result sets.
	Exec(src string) (*wire.ExecResult, error)
	// Prepare registers a single SELECT and returns its statement id.
	Prepare(src string) (uint32, error)
	// Query opens a server-side cursor over a prepared statement's result.
	Query(stmtID uint32, args []sqltypes.Value) (cursorID uint32, cols []string, err error)
	// Fetch pulls the next batch; done reports the cursor exhausted (and
	// released server-side).
	Fetch(cursorID uint32, maxRows int) (rows [][]sqltypes.Value, done bool, err error)
	// CloseCursor releases a cursor early.
	CloseCursor(cursorID uint32) error
	// ServerStats fetches the server's query-metrics snapshot. Only the
	// socket transport supports it: the in-process transport has a backend
	// but no server, so there is no registry to report.
	ServerStats() (*wire.ServerStats, error)
	// Close tears the connection down.
	Close() error
	// Meter returns the accumulated traffic totals.
	Meter() wire.Meter
	// ResetMeter clears the traffic totals.
	ResetMeter()
	// Session exposes the server session when it lives in-process (nil over
	// a socket).
	Session() *engine.Session
}

// inproc is the virtual-network transport: requests hit a server backend
// directly, and the meter charges the byte-exact frame sizes the socket
// transport would move for the same exchange.
type inproc struct {
	b     *server.Backend
	meter wire.Meter
}

// newInproc wraps a fresh backend session on the engine.
func newInproc(eng *engine.Engine) *inproc {
	return &inproc{b: server.NewBackend(eng)}
}

// setTracer / setTraceContext give the in-process transport trace parity
// with the socket path: the backend's parse/plan/execute spans parent
// directly under the client call span — no frames, so no wire spans.
func (t *inproc) setTracer(tr *trace.Tracer) { t.b.Tracer = tr }

func (t *inproc) setTraceContext(tc wire.TraceContext) {
	t.b.SetTraceParent(trace.SpanContext{Trace: trace.ID(tc.TraceID), Span: trace.ID(tc.SpanID)})
}

// charge accounts one request/response exchange, pricing both directions as
// frames. Errors travel as MsgError frames carrying their text.
func (t *inproc) charge(reqBody int, respBody int, err error) {
	t.meter.RoundTrips++
	t.meter.BytesToServer += int64(wire.FrameSize(reqBody))
	if err != nil {
		respBody = len(err.Error())
	}
	t.meter.BytesToClient += int64(wire.FrameSize(respBody))
}

func (t *inproc) Exec(src string) (*wire.ExecResult, error) {
	res, err := t.b.Exec(src)
	respBody := 0
	if err == nil {
		respBody = len(wire.EncodeExecResult(res))
		t.meter.RowsTransferred += res.RowCount()
	}
	t.charge(len(src), respBody, err)
	return res, err
}

func (t *inproc) Prepare(src string) (uint32, error) {
	id, err := t.b.Prepare(src)
	respBody := 0
	if err == nil {
		respBody = len(wire.EncodeStmtResp(id))
	}
	t.charge(len(src), respBody, err)
	return id, err
}

func (t *inproc) Query(stmtID uint32, args []sqltypes.Value) (uint32, []string, error) {
	curID, cols, err := t.b.Query(stmtID, args)
	respBody := 0
	if err == nil {
		respBody = len(wire.EncodeCursorResp(curID, cols))
	}
	t.charge(len(wire.EncodeQueryReq(stmtID, args)), respBody, err)
	return curID, cols, err
}

func (t *inproc) Fetch(cursorID uint32, maxRows int) ([][]sqltypes.Value, bool, error) {
	rows, done, err := t.b.Fetch(cursorID, maxRows)
	respBody := 0
	if err == nil {
		respBody = len(wire.EncodeRowsResp(rows, done))
		t.meter.RowsTransferred += int64(len(rows))
	}
	t.charge(len(wire.EncodeFetchReq(cursorID, maxRows)), respBody, err)
	return rows, done, err
}

func (t *inproc) CloseCursor(cursorID uint32) error {
	err := t.b.CloseCursor(cursorID)
	t.charge(len(wire.EncodeCloseReq(cursorID)), 0, err)
	return err
}

func (t *inproc) ServerStats() (*wire.ServerStats, error) {
	return nil, fmt.Errorf("client: server stats require a socket connection (in-process transport has no server)")
}

func (t *inproc) Close() error {
	t.b.Close()
	return nil
}

func (t *inproc) Meter() wire.Meter        { return t.meter }
func (t *inproc) ResetMeter()              { t.meter = wire.Meter{} }
func (t *inproc) Session() *engine.Session { return t.b.Session() }
