// Package analysis implements the static analyses Aggify is built on
// (paper §3.2): control-flow graphs over procedural ASTs, a worklist
// dataflow framework, reaching-definitions analysis, live-variable
// analysis, and use-definition / definition-use chains.
package analysis

import (
	"aggify/internal/ast"
)

// NodeKind distinguishes CFG node roles.
type NodeKind uint8

const (
	// KindEntry and KindExit are the synthetic entry/exit nodes.
	KindEntry NodeKind = iota
	KindExit
	// KindStmt nodes execute a simple statement.
	KindStmt
	// KindCond nodes evaluate the condition of an IF/WHILE/FOR.
	KindCond
)

// Node is one CFG vertex. Following the paper's presentation (Figure 3),
// every statement is its own basic block.
type Node struct {
	ID    int
	Kind  NodeKind
	Stmt  ast.Stmt // the owning statement (condition owner for KindCond)
	Succs []*Node
	Preds []*Node
}

// CFG is the control-flow graph of one procedure/function body, augmented
// with per-node def/use sets (the local data-flow information).
type CFG struct {
	Entry *Node
	Exit  *Node
	Nodes []*Node

	// StmtNode maps simple statements to their node; condition nodes are in
	// CondNode keyed by the composite statement.
	StmtNode map[ast.Stmt]*Node
	CondNode map[ast.Stmt]*Node

	// Defs and Uses are the variables defined/used at each node (indexed by
	// node ID). FETCH defines its INTO variables and @@fetch_status; OPEN
	// uses the variables of its cursor's query.
	Defs [][]string
	Uses [][]string

	// Cursors maps cursor names to their declaring statements.
	Cursors map[string]*ast.DeclareCursor
}

type cfgBuilder struct {
	g *CFG
	// loop stack for BREAK/CONTINUE targets.
	breaks    [][]*Node // nodes needing an edge to the loop's exit point
	continues [][]*Node // nodes needing an edge to the loop's condition
	returns   []*Node
}

// Build constructs the CFG of a statement body.
func Build(body ast.Stmt) *CFG {
	b := &cfgBuilder{g: &CFG{
		StmtNode: map[ast.Stmt]*Node{},
		CondNode: map[ast.Stmt]*Node{},
		Cursors:  map[string]*ast.DeclareCursor{},
	}}
	b.g.Entry = b.newNode(KindEntry, nil)
	b.g.Exit = b.newNode(KindExit, nil)
	last := b.stmt(body, []*Node{b.g.Entry})
	for _, n := range last {
		link(n, b.g.Exit)
	}
	for _, n := range b.returns {
		link(n, b.g.Exit)
	}
	b.computeDefsUses()
	return b.g
}

func (b *cfgBuilder) newNode(kind NodeKind, s ast.Stmt) *Node {
	n := &Node{ID: len(b.g.Nodes), Kind: kind, Stmt: s}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func link(from, to *Node) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// stmt wires a statement into the graph; froms are the dangling exits of
// the preceding code. It returns the dangling exits after s.
func (b *cfgBuilder) stmt(s ast.Stmt, froms []*Node) []*Node {
	connect := func(n *Node) {
		for _, f := range froms {
			link(f, n)
		}
	}
	switch st := s.(type) {
	case nil:
		return froms
	case *ast.Block:
		cur := froms
		for _, inner := range st.Stmts {
			cur = b.stmt(inner, cur)
		}
		return cur
	case *ast.IfStmt:
		cond := b.newNode(KindCond, st)
		b.g.CondNode[st] = cond
		connect(cond)
		thenOut := b.stmt(st.Then, []*Node{cond})
		if st.Else != nil {
			elseOut := b.stmt(st.Else, []*Node{cond})
			return append(thenOut, elseOut...)
		}
		return append(thenOut, cond)
	case *ast.WhileStmt:
		cond := b.newNode(KindCond, st)
		b.g.CondNode[st] = cond
		connect(cond)
		b.breaks = append(b.breaks, nil)
		b.continues = append(b.continues, nil)
		bodyOut := b.stmt(st.Body, []*Node{cond})
		for _, n := range bodyOut {
			link(n, cond) // back edge
		}
		conts := b.continues[len(b.continues)-1]
		for _, n := range conts {
			link(n, cond)
		}
		brks := b.breaks[len(b.breaks)-1]
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		return append([]*Node{cond}, brks...)
	case *ast.ForStmt:
		// Desugared in the CFG: init-assign; cond; body; post-assign; back.
		init := b.newNode(KindStmt, &ast.SetStmt{Targets: []string{st.InitVar}, Value: st.InitExpr})
		connect(init)
		cond := b.newNode(KindCond, st)
		b.g.CondNode[st] = cond
		link(init, cond)
		b.breaks = append(b.breaks, nil)
		b.continues = append(b.continues, nil)
		bodyOut := b.stmt(st.Body, []*Node{cond})
		post := b.newNode(KindStmt, &ast.SetStmt{Targets: []string{st.PostVar}, Value: st.PostExpr})
		for _, n := range bodyOut {
			link(n, post)
		}
		for _, n := range b.continues[len(b.continues)-1] {
			link(n, post)
		}
		link(post, cond)
		brks := b.breaks[len(b.breaks)-1]
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		return append([]*Node{cond}, brks...)
	case *ast.TryCatch:
		// Conservative: the catch block is reachable from every node of the
		// try block (any statement may raise).
		startIdx := len(b.g.Nodes)
		tryOut := b.stmt(st.Try, froms)
		catchEntry := b.newNode(KindStmt, &ast.PrintStmt{E: ast.StrLit("catch-entry")})
		for _, n := range b.g.Nodes[startIdx : len(b.g.Nodes)-1] {
			link(n, catchEntry)
		}
		for _, f := range froms {
			link(f, catchEntry)
		}
		catchOut := b.stmt(st.Catch, []*Node{catchEntry})
		return append(tryOut, catchOut...)
	case *ast.BreakStmt:
		n := b.newNode(KindStmt, st)
		b.g.StmtNode[st] = n
		connect(n)
		if len(b.breaks) > 0 {
			b.breaks[len(b.breaks)-1] = append(b.breaks[len(b.breaks)-1], n)
		}
		return nil
	case *ast.ContinueStmt:
		n := b.newNode(KindStmt, st)
		b.g.StmtNode[st] = n
		connect(n)
		if len(b.continues) > 0 {
			b.continues[len(b.continues)-1] = append(b.continues[len(b.continues)-1], n)
		}
		return nil
	case *ast.ReturnStmt:
		n := b.newNode(KindStmt, st)
		b.g.StmtNode[st] = n
		connect(n)
		b.returns = append(b.returns, n)
		return nil
	case *ast.DeclareCursor:
		b.g.Cursors[st.Name] = st
		n := b.newNode(KindStmt, st)
		b.g.StmtNode[st] = n
		connect(n)
		return []*Node{n}
	default:
		n := b.newNode(KindStmt, st)
		b.g.StmtNode[st] = n
		connect(n)
		return []*Node{n}
	}
}

// computeDefsUses fills the per-node def/use sets.
func (b *cfgBuilder) computeDefsUses() {
	g := b.g
	g.Defs = make([][]string, len(g.Nodes))
	g.Uses = make([][]string, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Stmt == nil {
			continue
		}
		if n.Kind == KindCond {
			switch st := n.Stmt.(type) {
			case *ast.IfStmt:
				g.Uses[n.ID] = varsOfExpr(st.Cond)
			case *ast.WhileStmt:
				g.Uses[n.ID] = varsOfExpr(st.Cond)
			case *ast.ForStmt:
				g.Uses[n.ID] = varsOfExpr(st.Cond)
			}
			continue
		}
		defs, uses := StmtDefsUses(n.Stmt, g.Cursors)
		g.Defs[n.ID] = defs
		g.Uses[n.ID] = uses
	}
}

// StmtDefsUses computes the variables defined and used by a simple
// statement. cursors supplies cursor declarations so OPEN attributes the
// uses of the cursor query (which executes at OPEN, §2.3).
func StmtDefsUses(s ast.Stmt, cursors map[string]*ast.DeclareCursor) (defs, uses []string) {
	switch st := s.(type) {
	case *ast.DeclareVar:
		defs = append(defs, st.Name)
		uses = varsOfExpr(st.Init)
	case *ast.SetStmt:
		defs = append(defs, st.Targets...)
		uses = varsOfExpr(st.Value)
	case *ast.FetchStmt:
		defs = append(defs, st.Into...)
		defs = append(defs, ast.FetchStatusVar)
	case *ast.OpenCursor:
		if decl, ok := cursors[st.Name]; ok {
			uses = varsOfSelect(decl.Query)
		}
	case *ast.DeclareCursor:
		// The query does not run at DECLARE; no uses.
	case *ast.ReturnStmt:
		uses = varsOfExpr(st.Value)
	case *ast.QueryStmt:
		uses = varsOfSelect(st.Query)
	case *ast.InsertStmt:
		for _, row := range st.Rows {
			for _, e := range row {
				uses = append(uses, varsOfExpr(e)...)
			}
		}
		if st.Query != nil {
			uses = append(uses, varsOfSelect(st.Query)...)
		}
	case *ast.UpdateStmt:
		for _, sc := range st.Sets {
			uses = append(uses, varsOfExpr(sc.Value)...)
		}
		uses = append(uses, varsOfExpr(st.Where)...)
	case *ast.DeleteStmt:
		uses = varsOfExpr(st.Where)
	case *ast.PrintStmt:
		uses = varsOfExpr(st.E)
	case *ast.ExecStmt:
		for _, a := range st.Args {
			uses = append(uses, varsOfExpr(a)...)
		}
	}
	return dedup(defs), dedup(uses)
}

func varsOfExpr(e ast.Expr) []string {
	if e == nil {
		return nil
	}
	var out []string
	for v := range ast.VarsInExpr(e) {
		out = append(out, v)
	}
	return out
}

func varsOfSelect(q *ast.Select) []string {
	var out []string
	for v := range ast.VarsInSelect(q) {
		out = append(out, v)
	}
	return out
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
