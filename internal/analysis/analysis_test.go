package analysis

import (
	"testing"
	"testing/quick"

	"aggify/internal/ast"
	"aggify/internal/parser"
)

// fig1 is the body of the paper's Figure 1 UDF.
const fig1 = `
create function minCostSupp(@pkey int, @lb int = -1) returns char(25) as
begin
  declare @pCost decimal(15,2);
  declare @sName char(25);
  declare @minCost decimal(15,2) = 100000;
  declare @suppName char(25);
  if (@lb = -1)
    set @lb = getLowerBound(@pkey);
  declare c1 cursor for
    select ps_supplycost, s_name from partsupp, supplier
    where ps_partkey = @pkey and ps_suppkey = s_suppkey;
  open c1;
  fetch next from c1 into @pCost, @sName;
  while @@fetch_status = 0
  begin
    if (@pCost < @minCost and @pCost >= @lb)
    begin
      set @minCost = @pCost;
      set @suppName = @sName;
    end
    fetch next from c1 into @pCost, @sName;
  end
  close c1;
  deallocate c1;
  return @suppName;
end`

func fig1Body(t *testing.T) *ast.CreateFunction {
	t.Helper()
	return parser.MustParse(fig1)[0].(*ast.CreateFunction)
}

func findWhile(body ast.Stmt) *ast.WhileStmt {
	var w *ast.WhileStmt
	ast.WalkStmt(body, func(s ast.Stmt) bool {
		if ws, ok := s.(*ast.WhileStmt); ok && w == nil {
			w = ws
		}
		return true
	})
	return w
}

func TestCFGShape(t *testing.T) {
	f := fig1Body(t)
	g := Build(f.Body)
	if g.Entry == nil || g.Exit == nil {
		t.Fatal("missing entry/exit")
	}
	if len(g.Entry.Succs) == 0 {
		t.Fatal("entry disconnected")
	}
	if len(g.Exit.Preds) == 0 {
		t.Fatal("exit disconnected")
	}
	// The while condition must have a back edge (two predecessors at least:
	// the priming fetch and the loop body tail).
	w := findWhile(f.Body)
	cond := g.CondNode[w]
	if cond == nil {
		t.Fatal("no condition node for while")
	}
	if len(cond.Preds) < 2 {
		t.Fatalf("while cond should have a back edge, preds=%d", len(cond.Preds))
	}
	// All nodes reachable from entry.
	seen := map[*Node]bool{}
	var visit func(*Node)
	visit = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, s := range n.Succs {
			visit(s)
		}
	}
	visit(g.Entry)
	for _, n := range g.Nodes {
		if !seen[n] {
			t.Fatalf("unreachable node %d (%T)", n.ID, n.Stmt)
		}
	}
}

func TestDefsUses(t *testing.T) {
	f := fig1Body(t)
	g := Build(f.Body)
	// FETCH defines its INTO vars and @@fetch_status.
	var fetchNode *Node
	for s, n := range g.StmtNode {
		if _, ok := s.(*ast.FetchStmt); ok {
			fetchNode = n
			break
		}
	}
	if fetchNode == nil {
		t.Fatal("no fetch node")
	}
	defs := g.Defs[fetchNode.ID]
	want := map[string]bool{"@pcost": true, "@sname": true, "@@fetch_status": true}
	for _, d := range defs {
		if !want[d] {
			t.Errorf("unexpected def %q", d)
		}
		delete(want, d)
	}
	if len(want) != 0 {
		t.Errorf("missing defs: %v", want)
	}
	// OPEN uses the cursor query's variables (@pkey).
	var openNode *Node
	for s, n := range g.StmtNode {
		if _, ok := s.(*ast.OpenCursor); ok {
			openNode = n
		}
	}
	uses := g.Uses[openNode.ID]
	if len(uses) != 1 || uses[0] != "@pkey" {
		t.Fatalf("open uses = %v, want [@pkey]", uses)
	}
}

func TestReachingDefinitionsFig1(t *testing.T) {
	// §3.2.3's worked example: the use of @lb inside the loop is reached by
	// (at least) two definitions — the default/param assignment and the
	// conditional SET on line 5.
	f := fig1Body(t)
	g := Build(f.Body)
	a := Analyze(g)
	w := findWhile(f.Body)
	// The use of @lb is in the IF condition inside the loop body.
	var ifNode *Node
	ast.WalkStmt(w.Body, func(s ast.Stmt) bool {
		if is, ok := s.(*ast.IfStmt); ok {
			ifNode = g.CondNode[is]
		}
		return true
	})
	if ifNode == nil {
		t.Fatal("no if inside loop")
	}
	defs := a.ReachingDefs(ifNode, "@lb")
	if len(defs) < 1 {
		t.Fatal("no reaching defs for @lb")
	}
	// One of them must be the SET inside the IF before the loop.
	foundSet := false
	for _, d := range defs {
		if set, ok := d.Node.Stmt.(*ast.SetStmt); ok && set.Targets[0] == "@lb" {
			foundSet = true
		}
	}
	if !foundSet {
		t.Fatal("conditional SET @lb does not reach the loop use")
	}
	// All reaching defs of @lb at the loop use are OUTSIDE the loop
	// (nothing assigns @lb inside) — the Eq. 2 condition.
	region := a.NodesOf(w)
	for _, d := range defs {
		if region[d.Node] {
			t.Fatalf("def %v unexpectedly inside the loop", d)
		}
	}
}

func TestLivenessFig1(t *testing.T) {
	// §3.2.4's worked example: @lb is live inside the loop but dead after
	// it; @suppName is the only user variable live at loop exit.
	f := fig1Body(t)
	g := Build(f.Body)
	a := Analyze(g)
	w := findWhile(f.Body)
	cond := g.CondNode[w]
	if !a.LiveAtEntry(cond, "@lb") {
		t.Fatal("@lb should be live at loop entry")
	}
	// Find the CLOSE node (the program point after the loop).
	var closeNode *Node
	for s, n := range g.StmtNode {
		if _, ok := s.(*ast.CloseCursor); ok {
			closeNode = n
		}
	}
	if a.LiveAtEntry(closeNode, "@lb") {
		t.Fatal("@lb should be dead after the loop")
	}
	if a.LiveAtEntry(closeNode, "@mincost") {
		t.Fatal("@minCost should be dead after the loop")
	}
	if !a.LiveAtEntry(closeNode, "@suppname") {
		t.Fatal("@suppName must be live after the loop")
	}
}

func TestUDAndDUChains(t *testing.T) {
	stmts := parser.MustParse(`
begin
  declare @x int = 1;
  declare @y int;
  if @x > 0
    set @y = @x;
  else
    set @y = 0 - @x;
  print @y;
end`)
	g := Build(stmts[0])
	a := Analyze(g)
	var printNode *Node
	for s, n := range g.StmtNode {
		if _, ok := s.(*ast.PrintStmt); ok {
			printNode = n
		}
	}
	defs := a.UDChain(printNode, "@y")
	// Three definitions of @y: DECLARE (NULL), and both SETs; the DECLARE's
	// def is killed on both paths, so exactly the two SETs reach.
	setCount := 0
	for _, d := range defs {
		if _, ok := d.Node.Stmt.(*ast.SetStmt); ok {
			setCount++
		}
	}
	if setCount != 2 {
		t.Fatalf("UD chain of @y at print: %d SET defs, want 2 (defs=%v)", setCount, defs)
	}
	// DU chain: the DECLARE of @x reaches its uses in the IF condition and
	// both branches.
	var declX *Node
	for s, n := range g.StmtNode {
		if d, ok := s.(*ast.DeclareVar); ok && d.Name == "@x" {
			declX = n
		}
	}
	uses := a.DUChain(declX, "@x")
	if len(uses) != 3 {
		t.Fatalf("DU chain of @x: %d uses, want 3", len(uses))
	}
}

func TestBreakContinueEdges(t *testing.T) {
	stmts := parser.MustParse(`
begin
  declare @i int = 0;
  declare @s int = 0;
  while @i < 10
  begin
    set @i = @i + 1;
    if @i % 2 = 0 continue;
    if @i > 5 break;
    set @s = @s + @i;
  end
  print @s;
end`)
	g := Build(stmts[0])
	a := Analyze(g)
	// @s must be live at the BREAK (it flows to the print after the loop).
	var breakNode *Node
	for s, n := range g.StmtNode {
		if _, ok := s.(*ast.BreakStmt); ok {
			breakNode = n
		}
	}
	if breakNode == nil {
		t.Fatal("no break node")
	}
	if !a.LiveAtEntry(breakNode, "@s") {
		t.Fatal("@s should be live at BREAK (reaches print)")
	}
}

func TestTryCatchConservativeEdges(t *testing.T) {
	stmts := parser.MustParse(`
begin
  declare @x int = 0;
  begin try
    set @x = 1;
    set @x = 2;
  end try
  begin catch
    print @x;
  end catch
end`)
	g := Build(stmts[0])
	a := Analyze(g)
	var printNode *Node
	for s, n := range g.StmtNode {
		if _, ok := s.(*ast.PrintStmt); ok {
			printNode = n
		}
	}
	defs := a.UDChain(printNode, "@x")
	// All three definitions (0, 1, 2) may reach the catch.
	if len(defs) != 3 {
		t.Fatalf("catch should see 3 reaching defs, got %d", len(defs))
	}
}

func TestForLoopDesugaring(t *testing.T) {
	stmts := parser.MustParse(`
begin
  declare @i int;
  declare @s int = 0;
  for (@i = 0; @i <= 3; @i = @i + 1)
    set @s = @s + @i;
  print @s;
end`)
	g := Build(stmts[0])
	a := Analyze(g)
	var printNode *Node
	for s, n := range g.StmtNode {
		if _, ok := s.(*ast.PrintStmt); ok {
			printNode = n
		}
	}
	if !a.LiveAtEntry(printNode, "@s") {
		t.Fatal("@s live at print")
	}
	// The FOR's init and post assignments are definitions of @i.
	found := 0
	for _, ds := range a.DefSites {
		if ds.Var == "@i" {
			found++
		}
	}
	if found < 3 { // declare, init, post
		t.Fatalf("defs of @i = %d, want >= 3", found)
	}
}

func TestBitSetProperties(t *testing.T) {
	f := func(xs []uint16, ys []uint16) bool {
		a := NewBitSet(1 << 16)
		b := NewBitSet(1 << 16)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		u := a.Copy()
		u.OrWith(b)
		// Union contains both.
		for _, x := range xs {
			if !u.Has(int(x)) {
				return false
			}
		}
		for _, y := range ys {
			if !u.Has(int(y)) {
				return false
			}
		}
		// AndNot removes b's bits.
		u.AndNot(b)
		for _, y := range ys {
			if u.Has(int(y)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: liveness is sound w.r.t. a direct postorder recomputation —
// LiveIn must be a fixpoint: LiveIn == use ∪ (LiveOut − def).
func TestLivenessFixpoint(t *testing.T) {
	f := fig1Body(t)
	g := Build(f.Body)
	a := Analyze(g)
	for _, n := range g.Nodes {
		out := NewBitSet(len(a.Vars))
		for _, s := range n.Succs {
			out.OrWith(a.LiveIn[s.ID])
		}
		for i := range out {
			if out[i] != a.LiveOut[n.ID][i] {
				t.Fatalf("node %d: LiveOut not the union of successors' LiveIn", n.ID)
			}
		}
		in := out.Copy()
		def := NewBitSet(len(a.Vars))
		use := NewBitSet(len(a.Vars))
		for _, v := range g.Defs[n.ID] {
			def.Set(a.VarIndex(v))
		}
		for _, v := range g.Uses[n.ID] {
			use.Set(a.VarIndex(v))
		}
		in.AndNot(def)
		in.OrWith(use)
		for i := range in {
			if in[i] != a.LiveIn[n.ID][i] {
				t.Fatalf("node %d: LiveIn not a fixpoint", n.ID)
			}
		}
	}
}

// Property: every use has at least one reaching def or is a parameter/
// never-defined variable (reaching-defs completeness on Fig. 1).
func TestReachingDefsCompleteness(t *testing.T) {
	f := fig1Body(t)
	g := Build(f.Body)
	a := Analyze(g)
	params := map[string]bool{"@pkey": true, "@lb": true}
	for _, n := range g.Nodes {
		for _, v := range g.Uses[n.ID] {
			if params[v] || v == ast.FetchStatusVar {
				continue
			}
			if len(a.ReachingDefs(n, v)) == 0 {
				t.Errorf("use of %s at node %d has no reaching definition", v, n.ID)
			}
		}
	}
}
