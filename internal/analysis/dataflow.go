package analysis

import (
	"sort"

	"aggify/internal/ast"
)

// BitSet is a fixed-universe bit vector used by the dataflow framework.
type BitSet []uint64

// NewBitSet allocates a bitset for n elements.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set sets bit i.
func (b BitSet) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (b BitSet) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether bit i is set.
func (b BitSet) Has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// OrWith ors other into b, reporting whether b changed.
func (b BitSet) OrWith(other BitSet) bool {
	changed := false
	for i := range b {
		old := b[i]
		b[i] |= other[i]
		changed = changed || b[i] != old
	}
	return changed
}

// Copy returns an independent copy.
func (b BitSet) Copy() BitSet {
	c := make(BitSet, len(b))
	copy(c, b)
	return c
}

// AndNot clears bits of mask from b.
func (b BitSet) AndNot(mask BitSet) {
	for i := range b {
		b[i] &^= mask[i]
	}
}

// DefSite is one definition of a variable at a CFG node.
type DefSite struct {
	Node *Node
	Var  string
}

// Analysis holds the results of all dataflow analyses over one CFG:
// reaching definitions (In/Out), liveness (LiveIn/LiveOut), and the
// derived UD/DU chains.
type Analysis struct {
	G *CFG

	Vars     []string
	varIndex map[string]int

	DefSites []DefSite
	// In and Out are reaching-definition sets per node (bit = def site).
	In, Out []BitSet
	// LiveIn and LiveOut are live-variable sets per node (bit = variable).
	LiveIn, LiveOut []BitSet
}

// Analyze runs all analyses to fixpoint.
func Analyze(g *CFG) *Analysis {
	a := &Analysis{G: g, varIndex: map[string]int{}}

	// Universe of variables.
	addVar := func(v string) {
		if _, ok := a.varIndex[v]; !ok {
			a.varIndex[v] = len(a.Vars)
			a.Vars = append(a.Vars, v)
		}
	}
	for _, n := range g.Nodes {
		for _, v := range g.Defs[n.ID] {
			addVar(v)
		}
		for _, v := range g.Uses[n.ID] {
			addVar(v)
		}
	}
	sort.Strings(a.Vars)
	for i, v := range a.Vars {
		a.varIndex[v] = i
	}

	// Universe of definition sites.
	defsOfVar := map[string][]int{}
	for _, n := range g.Nodes {
		for _, v := range g.Defs[n.ID] {
			idx := len(a.DefSites)
			a.DefSites = append(a.DefSites, DefSite{Node: n, Var: v})
			defsOfVar[v] = append(defsOfVar[v], idx)
		}
	}

	a.reachingDefs(defsOfVar)
	a.liveness()
	return a
}

// reachingDefs runs the forward union dataflow of §3.2.3.
func (a *Analysis) reachingDefs(defsOfVar map[string][]int) {
	g := a.G
	nd := len(a.DefSites)
	gen := make([]BitSet, len(g.Nodes))
	kill := make([]BitSet, len(g.Nodes))
	a.In = make([]BitSet, len(g.Nodes))
	a.Out = make([]BitSet, len(g.Nodes))
	siteAt := map[[2]interface{}]int{}
	for i, ds := range a.DefSites {
		siteAt[[2]interface{}{ds.Node, ds.Var}] = i
	}
	for _, n := range g.Nodes {
		gen[n.ID] = NewBitSet(nd)
		kill[n.ID] = NewBitSet(nd)
		a.In[n.ID] = NewBitSet(nd)
		a.Out[n.ID] = NewBitSet(nd)
		for _, v := range g.Defs[n.ID] {
			self := siteAt[[2]interface{}{n, v}]
			gen[n.ID].Set(self)
			for _, other := range defsOfVar[v] {
				if other != self {
					kill[n.ID].Set(other)
				}
			}
		}
	}
	// Worklist iteration.
	work := make([]*Node, len(g.Nodes))
	copy(work, g.Nodes)
	inWork := make([]bool, len(g.Nodes))
	for i := range inWork {
		inWork[i] = true
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		inWork[n.ID] = false
		in := a.In[n.ID]
		for _, p := range n.Preds {
			in.OrWith(a.Out[p.ID])
		}
		out := in.Copy()
		out.AndNot(kill[n.ID])
		out.OrWith(gen[n.ID])
		if a.Out[n.ID].OrWith(out) {
			for _, s := range n.Succs {
				if !inWork[s.ID] {
					inWork[s.ID] = true
					work = append(work, s)
				}
			}
		}
	}
}

// liveness runs the backward union dataflow of §3.2.4.
func (a *Analysis) liveness() {
	g := a.G
	nv := len(a.Vars)
	use := make([]BitSet, len(g.Nodes))
	def := make([]BitSet, len(g.Nodes))
	a.LiveIn = make([]BitSet, len(g.Nodes))
	a.LiveOut = make([]BitSet, len(g.Nodes))
	for _, n := range g.Nodes {
		use[n.ID] = NewBitSet(nv)
		def[n.ID] = NewBitSet(nv)
		a.LiveIn[n.ID] = NewBitSet(nv)
		a.LiveOut[n.ID] = NewBitSet(nv)
		for _, v := range g.Uses[n.ID] {
			use[n.ID].Set(a.varIndex[v])
		}
		for _, v := range g.Defs[n.ID] {
			def[n.ID].Set(a.varIndex[v])
		}
	}
	work := make([]*Node, len(g.Nodes))
	copy(work, g.Nodes)
	inWork := make([]bool, len(g.Nodes))
	for i := range inWork {
		inWork[i] = true
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[n.ID] = false
		out := a.LiveOut[n.ID]
		for _, s := range n.Succs {
			out.OrWith(a.LiveIn[s.ID])
		}
		in := out.Copy()
		in.AndNot(def[n.ID])
		in.OrWith(use[n.ID])
		if a.LiveIn[n.ID].OrWith(in) {
			for _, p := range n.Preds {
				if !inWork[p.ID] {
					inWork[p.ID] = true
					work = append(work, p)
				}
			}
		}
	}
}

// VarIndex returns the bit index of a variable, or -1.
func (a *Analysis) VarIndex(v string) int {
	i, ok := a.varIndex[v]
	if !ok {
		return -1
	}
	return i
}

// LiveAtEntry reports whether v is live at the entry of node n.
func (a *Analysis) LiveAtEntry(n *Node, v string) bool {
	i := a.VarIndex(v)
	return i >= 0 && a.LiveIn[n.ID].Has(i)
}

// LiveAtExit reports whether v is live at the exit of node n.
func (a *Analysis) LiveAtExit(n *Node, v string) bool {
	i := a.VarIndex(v)
	return i >= 0 && a.LiveOut[n.ID].Has(i)
}

// ReachingDefs returns the definitions of v that reach the entry of n
// (the UD chain of a use of v at n, §3.2.2).
func (a *Analysis) ReachingDefs(n *Node, v string) []DefSite {
	var out []DefSite
	for i, ds := range a.DefSites {
		if ds.Var == v && a.In[n.ID].Has(i) {
			out = append(out, ds)
		}
	}
	return out
}

// UDChain returns, for a use of v at node n, all reaching definitions
// (alias of ReachingDefs with use-validation).
func (a *Analysis) UDChain(n *Node, v string) []DefSite {
	return a.ReachingDefs(n, v)
}

// DUChain returns the uses reachable from the definition of v at node def
// without an intervening redefinition: all nodes using v whose reaching
// definitions include this site.
func (a *Analysis) DUChain(def *Node, v string) []*Node {
	var siteIdx = -1
	for i, ds := range a.DefSites {
		if ds.Node == def && ds.Var == v {
			siteIdx = i
			break
		}
	}
	if siteIdx < 0 {
		return nil
	}
	var out []*Node
	for _, n := range a.G.Nodes {
		if !a.In[n.ID].Has(siteIdx) {
			continue
		}
		for _, u := range a.G.Uses[n.ID] {
			if u == v {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// NodesOf returns the CFG nodes belonging to the given statement subtree
// (the loop region Δ used by Aggify).
func (a *Analysis) NodesOf(root ast.Stmt) map[*Node]bool {
	stmts := map[ast.Stmt]bool{}
	ast.WalkStmt(root, func(s ast.Stmt) bool {
		stmts[s] = true
		return true
	})
	out := map[*Node]bool{}
	for s, n := range a.G.StmtNode {
		if stmts[s] {
			out[n] = true
		}
	}
	for s, n := range a.G.CondNode {
		if stmts[s] {
			out[n] = true
		}
	}
	// Synthetic nodes (FOR desugaring, catch-entry) belong to the region of
	// their owning composite statement; find them by graph containment:
	// every node all of whose predecessors are in the region and that is
	// dominated by it would be complex — instead, claim synthetic SetStmt
	// nodes created for FOR statements in the region.
	for _, n := range a.G.Nodes {
		if n.Stmt == nil || out[n] {
			continue
		}
		if set, ok := n.Stmt.(*ast.SetStmt); ok && len(set.Targets) == 1 {
			// FOR-desugared init/post nodes: attribute by ownership walk.
			ast.WalkStmt(root, func(s ast.Stmt) bool {
				if f, isFor := s.(*ast.ForStmt); isFor {
					if (f.InitVar == set.Targets[0] && f.InitExpr == set.Value) ||
						(f.PostVar == set.Targets[0] && f.PostExpr == set.Value) {
						out[n] = true
					}
				}
				return true
			})
		}
	}
	return out
}
