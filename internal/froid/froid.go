// Package froid implements a Froid-style scalar-UDF inliner (Ramachandra
// et al., "Froid: Optimizing Imperative Functions in Relational Databases",
// the paper's [38]). After Aggify removes a UDF's cursor loop, the body is
// loop-free imperative code; this package composes such bodies into single
// scalar expressions and substitutes them at call sites inside queries.
// The planner's decorrelation rule then turns the resulting correlated
// scalar-aggregate subqueries into set-oriented joins — together these are
// the paper's "Aggify+" configuration (§8.2).
//
// The supported region forms are sequences of DECLARE/SET, IF/ELSE
// (including early RETURNs), and a final RETURN — the same statement forms
// Froid's region-based algorithm composes into SELECT expressions. UDFs
// containing loops, cursors, DML, TRY/CATCH, or EXEC are reported as not
// inlinable and left as interpreted calls.
package froid

import (
	"fmt"

	"aggify/internal/ast"
	"aggify/internal/sqltypes"
)

// Resolver looks up scalar UDF definitions by (lower-case) name.
type Resolver func(name string) (*ast.CreateFunction, bool)

// NotInlinableError reports why a UDF body cannot be composed into an
// expression.
type NotInlinableError struct {
	Func   string
	Reason string
}

func (e *NotInlinableError) Error() string {
	return fmt.Sprintf("froid: %s is not inlinable: %s", e.Func, e.Reason)
}

// maxExprNodes caps the size of a composed expression; beyond it the UDF is
// treated as not inlinable (protects against CASE blow-up on deeply
// branching bodies).
const maxExprNodes = 4096

// maxInlineDepth caps transitive inlining of UDFs calling UDFs.
const maxInlineDepth = 8

// InlineFunction composes the body of a loop-free scalar UDF into a single
// expression over its parameter variables (@param references remain; bind
// them with SubstituteParams at each call site).
func InlineFunction(def *ast.CreateFunction) (ast.Expr, error) {
	env := map[string]ast.Expr{}
	for _, p := range def.Params {
		// Parameters stay symbolic: they are substituted at the call site.
		env[p.Name] = ast.Var(p.Name)
	}
	ret, err := inlineSeq(def.Name, def.Body.Stmts, env)
	if err != nil {
		return nil, err
	}
	if ret == nil {
		ret = ast.Lit(nullValue())
	}
	if exprSize(ret) > maxExprNodes {
		return nil, &NotInlinableError{Func: def.Name, Reason: "composed expression too large"}
	}
	return ret, nil
}

// inlineSeq symbolically executes a statement sequence. It returns the
// expression of the value returned by the sequence, or nil when the
// sequence falls through without RETURN.
func inlineSeq(fname string, stmts []ast.Stmt, env map[string]ast.Expr) (ast.Expr, error) {
	for i, s := range stmts {
		switch st := s.(type) {
		case *ast.Block:
			// Flatten: treat the block plus the remaining statements as one
			// sequence (variables are batch-scoped in the dialect).
			merged := append(append([]ast.Stmt{}, st.Stmts...), stmts[i+1:]...)
			return inlineSeq(fname, merged, env)
		case *ast.DeclareVar:
			if st.Init != nil {
				env[st.Name] = substVars(st.Init, env)
			} else {
				env[st.Name] = ast.Lit(nullValue())
			}
		case *ast.SetStmt:
			if len(st.Targets) != 1 {
				return nil, &NotInlinableError{Func: fname, Reason: "tuple-destructuring SET"}
			}
			env[st.Targets[0]] = substVars(st.Value, env)
		case *ast.ReturnStmt:
			if st.Value == nil {
				return ast.Lit(nullValue()), nil
			}
			return substVars(st.Value, env), nil
		case *ast.IfStmt:
			cond := substVars(st.Cond, env)
			thenEnv := copyEnv(env)
			thenRet, err := inlineSeq(fname, []ast.Stmt{st.Then}, thenEnv)
			if err != nil {
				return nil, err
			}
			elseEnv := copyEnv(env)
			var elseRet ast.Expr
			if st.Else != nil {
				if elseRet, err = inlineSeq(fname, []ast.Stmt{st.Else}, elseEnv); err != nil {
					return nil, err
				}
			}
			rest := stmts[i+1:]
			switch {
			case thenRet != nil && elseRet != nil:
				// Both branches return: the rest is unreachable.
				return caseExpr(cond, thenRet, elseRet), nil
			case thenRet != nil:
				restRet, err := inlineSeq(fname, rest, elseEnv)
				if err != nil {
					return nil, err
				}
				if restRet == nil {
					restRet = ast.Lit(nullValue())
				}
				return caseExpr(cond, thenRet, restRet), nil
			case elseRet != nil:
				restRet, err := inlineSeq(fname, rest, thenEnv)
				if err != nil {
					return nil, err
				}
				if restRet == nil {
					restRet = ast.Lit(nullValue())
				}
				return caseExpr(cond, restRet, elseRet), nil
			default:
				// Neither branch returns: merge assigned variables.
				for v := range union(thenEnv, elseEnv) {
					te, tok := thenEnv[v]
					ee, eok := elseEnv[v]
					if !tok {
						te = ast.Lit(nullValue())
					}
					if !eok {
						ee = ast.Lit(nullValue())
					}
					if tok && eok && te.String() == ee.String() {
						env[v] = te
						continue
					}
					env[v] = caseExpr(ast.CloneExpr(cond), te, ee)
				}
				continue
			}
		case *ast.PrintStmt:
			return nil, &NotInlinableError{Func: fname, Reason: "PRINT side effect"}
		case *ast.WhileStmt, *ast.ForStmt:
			return nil, &NotInlinableError{Func: fname, Reason: "loop (run Aggify first)"}
		case *ast.DeclareCursor, *ast.OpenCursor, *ast.FetchStmt, *ast.CloseCursor, *ast.DeallocateCursor:
			return nil, &NotInlinableError{Func: fname, Reason: "cursor operation (run Aggify first)"}
		default:
			return nil, &NotInlinableError{Func: fname, Reason: fmt.Sprintf("unsupported statement %T", s)}
		}
	}
	return nil, nil
}

// SubstituteParams binds the parameter variables of an inlined body to call
// arguments (applying declared defaults for missing trailing arguments).
func SubstituteParams(body ast.Expr, params []ast.Param, args []ast.Expr) (ast.Expr, error) {
	if len(args) > len(params) {
		return nil, fmt.Errorf("froid: %d arguments for %d parameters", len(args), len(params))
	}
	bind := map[string]ast.Expr{}
	for i, p := range params {
		switch {
		case i < len(args):
			bind[p.Name] = args[i]
		case p.Default != nil:
			bind[p.Name] = p.Default
		default:
			return nil, fmt.Errorf("froid: missing argument for %s", p.Name)
		}
	}
	return substVars(body, bind), nil
}

// InlineInSelect replaces calls to inlinable UDFs in the query's
// expressions with their composed bodies, transitively up to
// maxInlineDepth. It returns the rewritten query (a modified clone) and the
// names of the UDFs that were inlined; non-inlinable calls are left intact.
func InlineInSelect(q *ast.Select, resolve Resolver) (*ast.Select, []string, error) {
	clone := ast.CloneSelect(q)
	inlined := map[string]bool{}
	var err error
	for i := range clone.Items {
		if clone.Items[i].Star {
			continue
		}
		clone.Items[i].Expr, err = inlineExpr(clone.Items[i].Expr, resolve, inlined, 0)
		if err != nil {
			return nil, nil, err
		}
	}
	if clone.Where != nil {
		if clone.Where, err = inlineExpr(clone.Where, resolve, inlined, 0); err != nil {
			return nil, nil, err
		}
	}
	if clone.Having != nil {
		if clone.Having, err = inlineExpr(clone.Having, resolve, inlined, 0); err != nil {
			return nil, nil, err
		}
	}
	var names []string
	for n := range inlined {
		names = append(names, n)
	}
	return clone, names, nil
}

// inlineExpr rewrites UDF calls inside e.
func inlineExpr(e ast.Expr, resolve Resolver, inlined map[string]bool, depth int) (ast.Expr, error) {
	if e == nil || depth > maxInlineDepth {
		return e, nil
	}
	var rewrite func(x ast.Expr) (ast.Expr, error)
	rewrite = func(x ast.Expr) (ast.Expr, error) {
		switch n := x.(type) {
		case *ast.FuncCall:
			args := make([]ast.Expr, len(n.Args))
			for i, a := range n.Args {
				ra, err := rewrite(a)
				if err != nil {
					return nil, err
				}
				args[i] = ra
			}
			def, ok := resolve(n.Name)
			if !ok || n.Star {
				return &ast.FuncCall{Name: n.Name, Args: args, Star: n.Star}, nil
			}
			body, err := InlineFunction(def)
			if err != nil {
				if _, soft := err.(*NotInlinableError); soft {
					return &ast.FuncCall{Name: n.Name, Args: args, Star: n.Star}, nil
				}
				return nil, err
			}
			bound, err := SubstituteParams(body, def.Params, args)
			if err != nil {
				return nil, err
			}
			inlined[n.Name] = true
			// Transitively inline calls inside the substituted body.
			return inlineExpr(bound, resolve, inlined, depth+1)
		case *ast.BinExpr:
			l, err := rewrite(n.L)
			if err != nil {
				return nil, err
			}
			r, err := rewrite(n.R)
			if err != nil {
				return nil, err
			}
			return &ast.BinExpr{Op: n.Op, L: l, R: r}, nil
		case *ast.UnaryExpr:
			inner, err := rewrite(n.E)
			if err != nil {
				return nil, err
			}
			return &ast.UnaryExpr{Op: n.Op, E: inner}, nil
		case *ast.IsNullExpr:
			inner, err := rewrite(n.E)
			if err != nil {
				return nil, err
			}
			return &ast.IsNullExpr{E: inner, Negate: n.Negate}, nil
		case *ast.CaseExpr:
			out := &ast.CaseExpr{}
			for _, w := range n.Whens {
				c, err := rewrite(w.Cond)
				if err != nil {
					return nil, err
				}
				t, err := rewrite(w.Then)
				if err != nil {
					return nil, err
				}
				out.Whens = append(out.Whens, ast.WhenClause{Cond: c, Then: t})
			}
			if n.Else != nil {
				e2, err := rewrite(n.Else)
				if err != nil {
					return nil, err
				}
				out.Else = e2
			}
			return out, nil
		case *ast.BetweenExpr:
			ee, err := rewrite(n.E)
			if err != nil {
				return nil, err
			}
			lo, err := rewrite(n.Lo)
			if err != nil {
				return nil, err
			}
			hi, err := rewrite(n.Hi)
			if err != nil {
				return nil, err
			}
			return &ast.BetweenExpr{E: ee, Lo: lo, Hi: hi, Negate: n.Negate}, nil
		case *ast.InExpr:
			ee, err := rewrite(n.E)
			if err != nil {
				return nil, err
			}
			out := &ast.InExpr{E: ee, Negate: n.Negate, Query: n.Query}
			for _, it := range n.List {
				ri, err := rewrite(it)
				if err != nil {
					return nil, err
				}
				out.List = append(out.List, ri)
			}
			return out, nil
		case *ast.Subquery:
			sub, _, err := InlineInSelect(n.Query, resolve)
			if err != nil {
				return nil, err
			}
			return &ast.Subquery{Query: sub, Exists: n.Exists}, nil
		default:
			return x, nil
		}
	}
	return rewrite(e)
}

// ----- helpers -----

func copyEnv(env map[string]ast.Expr) map[string]ast.Expr {
	out := make(map[string]ast.Expr, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func union(a, b map[string]ast.Expr) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// substVars replaces variable references in e with their symbolic values,
// descending into subqueries (which may be correlated to the variables).
func substVars(e ast.Expr, env map[string]ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ast.VarRef:
		if repl, ok := env[x.Name]; ok {
			return ast.CloneExpr(repl)
		}
		return x
	case *ast.Literal, *ast.ColRef, *ast.ParamRef:
		return e
	case *ast.BinExpr:
		return &ast.BinExpr{Op: x.Op, L: substVars(x.L, env), R: substVars(x.R, env)}
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{Op: x.Op, E: substVars(x.E, env)}
	case *ast.IsNullExpr:
		return &ast.IsNullExpr{E: substVars(x.E, env), Negate: x.Negate}
	case *ast.CaseExpr:
		out := &ast.CaseExpr{}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, ast.WhenClause{Cond: substVars(w.Cond, env), Then: substVars(w.Then, env)})
		}
		if x.Else != nil {
			out.Else = substVars(x.Else, env)
		}
		return out
	case *ast.FuncCall:
		out := &ast.FuncCall{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, substVars(a, env))
		}
		return out
	case *ast.BetweenExpr:
		return &ast.BetweenExpr{E: substVars(x.E, env), Lo: substVars(x.Lo, env), Hi: substVars(x.Hi, env), Negate: x.Negate}
	case *ast.InExpr:
		out := &ast.InExpr{E: substVars(x.E, env), Negate: x.Negate}
		for _, it := range x.List {
			out.List = append(out.List, substVars(it, env))
		}
		if x.Query != nil {
			out.Query = substVarsInSelect(x.Query, env)
		}
		return out
	case *ast.Subquery:
		return &ast.Subquery{Query: substVarsInSelect(x.Query, env), Exists: x.Exists}
	}
	return e
}

// substVarsInSelect clones q substituting variable references everywhere.
func substVarsInSelect(q *ast.Select, env map[string]ast.Expr) *ast.Select {
	c := ast.CloneSelect(q)
	var walkTE func(te ast.TableExpr)
	var walkQ func(s *ast.Select)
	walkQ = func(s *ast.Select) {
		for branch := s; branch != nil; branch = branch.Union {
			for i := range branch.Items {
				branch.Items[i].Expr = substVars(branch.Items[i].Expr, env)
			}
			for _, te := range branch.From {
				walkTE(te)
			}
			branch.Where = substVars(branch.Where, env)
			for i := range branch.GroupBy {
				branch.GroupBy[i] = substVars(branch.GroupBy[i], env)
			}
			branch.Having = substVars(branch.Having, env)
			for i := range branch.OrderBy {
				branch.OrderBy[i].Expr = substVars(branch.OrderBy[i].Expr, env)
			}
			if branch.Top != nil {
				branch.Top = substVars(branch.Top, env)
			}
		}
		for i := range s.With {
			walkQ(s.With[i].Query)
		}
	}
	walkTE = func(te ast.TableExpr) {
		switch t := te.(type) {
		case *ast.SubqueryRef:
			walkQ(t.Query)
		case *ast.Join:
			walkTE(t.L)
			walkTE(t.R)
			t.On = substVars(t.On, env)
		}
	}
	walkQ(c)
	return c
}

func caseExpr(cond, then, els ast.Expr) ast.Expr {
	return &ast.CaseExpr{Whens: []ast.WhenClause{{Cond: cond, Then: then}}, Else: els}
}

func exprSize(e ast.Expr) int {
	n := 0
	ast.WalkExpr(e, func(ast.Expr) bool { n++; return true })
	return n
}

func nullValue() sqltypes.Value { return sqltypes.Null }
