package froid_test

import (
	"strings"
	"testing"

	"aggify/internal/ast"
	"aggify/internal/core"
	"aggify/internal/engine"
	"aggify/internal/froid"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
)

func parseFunc(t *testing.T, src string) *ast.CreateFunction {
	t.Helper()
	for _, s := range parser.MustParse(src) {
		if f, ok := s.(*ast.CreateFunction); ok {
			return f
		}
	}
	t.Fatal("no function")
	return nil
}

func TestInlineStraightLine(t *testing.T) {
	fn := parseFunc(t, `
create function f(@x int) returns int as
begin
  declare @y int = @x * 2;
  set @y = @y + 1;
  return @y;
end`)
	e, err := froid.InlineFunction(fn)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.String(); got != "((@x * 2) + 1)" {
		t.Fatalf("inlined = %s", got)
	}
}

func TestInlineIfElse(t *testing.T) {
	fn := parseFunc(t, `
create function f(@x int) returns int as
begin
  declare @y int;
  if @x > 0
    set @y = @x;
  else
    set @y = 0 - @x;
  return @y;
end`)
	e, err := froid.InlineFunction(fn)
	if err != nil {
		t.Fatal(err)
	}
	want := "CASE WHEN (@x > 0) THEN @x ELSE (0 - @x) END"
	if e.String() != want {
		t.Fatalf("inlined = %s, want %s", e, want)
	}
}

func TestInlineEarlyReturn(t *testing.T) {
	fn := parseFunc(t, `
create function f(@x int) returns int as
begin
  if @x < 0 return 0;
  if @x > 100 return 100;
  return @x;
end`)
	e, err := froid.InlineFunction(fn)
	if err != nil {
		t.Fatal(err)
	}
	want := "CASE WHEN (@x < 0) THEN 0 ELSE CASE WHEN (@x > 100) THEN 100 ELSE @x END END"
	if e.String() != want {
		t.Fatalf("inlined = %s", e)
	}
}

func TestInlineBranchAssignThenUse(t *testing.T) {
	// The Fig. 7 pattern: conditional assignment before the big expression.
	fn := parseFunc(t, `
create function f(@lb int) returns int as
begin
  if @lb = -1
    set @lb = 42;
  return @lb * 10;
end`)
	e, err := froid.InlineFunction(fn)
	if err != nil {
		t.Fatal(err)
	}
	want := "(CASE WHEN (@lb = -1) THEN 42 ELSE @lb END * 10)"
	if e.String() != want {
		t.Fatalf("inlined = %s", e)
	}
}

func TestInlineSubqueryBody(t *testing.T) {
	fn := parseFunc(t, `
create function f(@k int) returns float as
begin
  declare @m float;
  set @m = (select min(v) from t where id = @k);
  return @m;
end`)
	e, err := froid.InlineFunction(fn)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "(id = @k)") {
		t.Fatalf("inlined = %s", e)
	}
}

func TestNotInlinable(t *testing.T) {
	cases := []string{
		`create function f() returns int as begin declare @i int = 0; while @i < 3 set @i = @i + 1; return @i; end`,
		`create function f() returns int as begin print 'x'; return 1; end`,
		`create function f() returns int as
		 begin
		   declare @n int;
		   declare c cursor for select a from t;
		   open c; fetch next from c into @n;
		   while @@fetch_status = 0 begin fetch next from c into @n; end
		   close c; deallocate c;
		   return @n;
		 end`,
	}
	for _, src := range cases {
		fn := parseFunc(t, src)
		if _, err := froid.InlineFunction(fn); err == nil {
			t.Errorf("should not inline:\n%s", src)
		} else if _, ok := err.(*froid.NotInlinableError); !ok {
			t.Errorf("want NotInlinableError, got %v", err)
		}
	}
}

func TestSubstituteParamsWithDefaults(t *testing.T) {
	fn := parseFunc(t, `
create function f(@a int, @b int = 7) returns int as
begin
  return @a + @b;
end`)
	body, err := froid.InlineFunction(fn)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := froid.SubstituteParams(body, fn.Params, []ast.Expr{ast.Col("x")})
	if err != nil {
		t.Fatal(err)
	}
	if bound.String() != "(x + 7)" {
		t.Fatalf("bound = %s", bound)
	}
	if _, err := froid.SubstituteParams(body, fn.Params, nil); err == nil {
		t.Fatal("missing required argument should error")
	}
}

// TestAggifyPlusPipeline runs the full §8.2 pipeline: Aggify eliminates the
// cursor loop, Froid inlines the now loop-free UDF into the outer query,
// and the planner decorrelates the resulting scalar-aggregate subquery into
// a hash join — all while preserving results.
func TestAggifyPlusPipeline(t *testing.T) {
	eng := engine.New()
	interp.Install(eng)
	sess := eng.NewSession()
	setup := `
create table part (p_partkey int, p_name varchar(55));
create index pk_part on part(p_partkey);
create table partsupp (ps_partkey int, ps_suppkey int, ps_supplycost decimal(15,2));
create index idx_ps on partsupp(ps_partkey);
create table supplier (s_suppkey int, s_name char(25));
create index pk_supp on supplier(s_suppkey);
insert into part values (1,'a'), (2,'b'), (3,'c'), (4,'lonely');
insert into supplier values (10,'acme'), (11,'bolts'), (12,'cheapco');
insert into partsupp values (1,10,5.0),(1,11,3.5),(2,12,2.0),(3,11,8.0);
GO
create function minCostSupp(@pkey int, @lb int = -1) returns char(25) as
begin
  declare @pCost decimal(15,2);
  declare @sName char(25);
  declare @minCost decimal(15,2) = 100000;
  declare @suppName char(25);
  if (@lb = -1)
    set @lb = 0;
  declare c1 cursor for
    select ps_supplycost, s_name from partsupp, supplier
    where ps_partkey = @pkey and ps_suppkey = s_suppkey;
  open c1;
  fetch next from c1 into @pCost, @sName;
  while @@fetch_status = 0
  begin
    if (@pCost < @minCost and @pCost >= @lb)
    begin
      set @minCost = @pCost;
      set @suppName = @sName;
    end
    fetch next from c1 into @pCost, @sName;
  end
  close c1;
  deallocate c1;
  return @suppName;
end`
	if _, err := interp.RunScript(sess, parser.MustParse(setup)); err != nil {
		t.Fatal(err)
	}

	outer := parser.MustParse("select p_partkey, minCostSupp(p_partkey) as supp from part order by p_partkey")[0].(*ast.QueryStmt).Query

	// Baseline: interpreted UDF with cursor loop.
	_, baseRows, err := sess.Query(outer, sess.Ctx(nil, nil))
	if err != nil {
		t.Fatal(err)
	}

	// Step 1: Aggify.
	fn, _ := eng.Function("mincostsupp")
	rewritten, res, err := core.TransformFunction(fn, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loops) != 1 {
		t.Fatalf("aggify skipped: %v", res.Skipped)
	}
	for _, lr := range res.Loops {
		if err := eng.RegisterAggregate(lr.Aggregate, lr.OrderSensitive); err != nil {
			t.Fatal(err)
		}
	}

	// Step 2: Froid-inline the rewritten (loop-free) UDF into the query.
	resolver := func(name string) (*ast.CreateFunction, bool) {
		if name == "mincostsupp" {
			return rewritten, true
		}
		return nil, false
	}
	inlined, names, err := froid.InlineInSelect(outer, resolver)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "mincostsupp" {
		t.Fatalf("inlined = %v", names)
	}

	// Step 3: plan — the decorrelation rule must fire.
	p, err := sess.PlanQuery(inlined, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Explain.Contains("HashJoin") {
		t.Fatalf("expected decorrelated hash join, got:\n%s", p.Explain)
	}

	_, plusRows, err := sess.Query(inlined, sess.Ctx(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(plusRows) != len(baseRows) {
		t.Fatalf("row counts: %d vs %d", len(plusRows), len(baseRows))
	}
	for i := range baseRows {
		for j := range baseRows[i] {
			if !sqltypes.GroupEqual(baseRows[i][j], plusRows[i][j]) {
				t.Fatalf("row %d: base %v vs aggify+ %v", i, baseRows[i], plusRows[i])
			}
		}
	}
	// Part 4 (no suppliers) must be present with NULL in both.
	if !baseRows[3][1].IsNull() || !plusRows[3][1].IsNull() {
		t.Fatalf("lonely part: base %v, plus %v", baseRows[3], plusRows[3])
	}

	// Ablation: with decorrelation disabled, results still agree.
	off := eng.NewSession()
	off.Opts.DisableDecorrelation = true
	pOff, err := off.PlanQuery(inlined, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pOff.Explain.Contains("__dcor") {
		t.Fatalf("decorrelation ran despite being disabled:\n%s", pOff.Explain)
	}
	_, offRows, err := off.Query(inlined, off.Ctx(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := range baseRows {
		for j := range baseRows[i] {
			if !sqltypes.GroupEqual(baseRows[i][j], offRows[i][j]) {
				t.Fatalf("row %d (no decorrelation): %v vs %v", i, baseRows[i], offRows[i])
			}
		}
	}
}

func TestInlineInSelectLeavesUnknownCalls(t *testing.T) {
	q := parser.MustParse("select upper(name), mystery(x) from t")[0].(*ast.QueryStmt).Query
	out, names, err := froid.InlineInSelect(q, func(string) (*ast.CreateFunction, bool) { return nil, false })
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("inlined %v", names)
	}
	if out.String() != q.String() {
		t.Fatalf("query changed: %s", out)
	}
}

func TestTransitiveInlining(t *testing.T) {
	inner := parseFunc(t, `create function g(@x int) returns int as begin return @x + 1; end`)
	outer := parseFunc(t, `create function f(@x int) returns int as begin return g(@x) * 2; end`)
	resolve := func(name string) (*ast.CreateFunction, bool) {
		switch name {
		case "g":
			return inner, true
		case "f":
			return outer, true
		}
		return nil, false
	}
	q := parser.MustParse("select f(a) from t")[0].(*ast.QueryStmt).Query
	out, names, err := froid.InlineInSelect(q, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("inlined = %v", names)
	}
	if got := out.Items[0].Expr.String(); got != "((a + 1) * 2)" {
		t.Fatalf("inlined expr = %s", got)
	}
}

func TestRecursiveUDFBounded(t *testing.T) {
	// A self-recursive UDF must not hang the inliner.
	rec := parseFunc(t, `create function f(@x int) returns int as begin return f(@x - 1); end`)
	resolve := func(name string) (*ast.CreateFunction, bool) {
		if name == "f" {
			return rec, true
		}
		return nil, false
	}
	q := parser.MustParse("select f(a) from t")[0].(*ast.QueryStmt).Query
	if _, _, err := froid.InlineInSelect(q, resolve); err != nil {
		t.Fatalf("bounded inlining should not error: %v", err)
	}
}
