// Package tpch provides a deterministic generator for the TPC-H subset the
// paper's evaluation uses (§10.1), plus the cursor-loop implementations of
// the six benchmark queries of Figure 9(a) / Table 2 (Q2, Q13, Q14, Q18,
// Q19, Q21) in both original (cursor loop) and driver form.
//
// The paper runs at scale factor 10 on a server-class machine; benchmarks
// here default to much smaller scale factors — the harness exposes SF as a
// parameter, and the reproduction targets result *shape* (who wins, by
// roughly what factor), not absolute numbers.
package tpch

import (
	"fmt"
	"math/rand"

	"aggify/internal/engine"
	"aggify/internal/sqltypes"
	"aggify/internal/storage"
)

// Sizes holds the row counts derived from a scale factor.
type Sizes struct {
	Suppliers int
	Parts     int
	PartSupp  int // per part
	Customers int
	Orders    int
	Lineitem  int // average per order
}

// SizesFor returns TPC-H cardinalities scaled by sf.
func SizesFor(sf float64) Sizes {
	max1 := func(x float64) int {
		if x < 1 {
			return 1
		}
		return int(x)
	}
	return Sizes{
		Suppliers: max1(10_000 * sf),
		Parts:     max1(200_000 * sf),
		PartSupp:  4,
		Customers: max1(150_000 * sf),
		Orders:    max1(1_500_000 * sf),
		Lineitem:  4,
	}
}

var (
	partTypes  = []string{"STANDARD ANODIZED TIN", "PROMO BURNISHED COPPER", "ECONOMY PLATED STEEL", "MEDIUM POLISHED NICKEL", "PROMO PLATED BRASS", "SMALL BRUSHED STEEL"}
	containers = []string{"SM CASE", "SM BOX", "SM PACK", "MED BAG", "MED BOX", "MED PKG", "LG CASE", "LG BOX", "LG PACK", "JUMBO JAR"}
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	nations    = []string{"FRANCE", "GERMANY", "JAPAN", "BRAZIL", "CANADA", "INDIA", "KENYA", "PERU", "CHINA", "EGYPT"}
	statuses   = []string{"O", "F", "P"}
	comments   = []string{
		"carefully packed deposits", "quick final requests", "pending special requests sleep",
		"furious accounts nag", "silent ideas above the special packages with requests",
		"even instructions detect", "ironic theodolites use special deposits requests",
		"regular pinto beans", "blithe expresses boost", "dogged courts wake",
	}
)

// Load generates a TPC-H database at scale factor sf into the engine,
// creating tables and the indexes the paper's setup describes (§10.1):
// LINEITEM(l_orderkey), LINEITEM(l_suppkey), ORDERS(o_custkey),
// PARTSUPP(ps_partkey), plus primary-key indexes.
func Load(eng *engine.Engine, sf float64) error {
	return LoadSeeded(eng, sf, 19920601)
}

// LoadSeeded is Load with an explicit random seed.
func LoadSeeded(eng *engine.Engine, sf float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	sz := SizesFor(sf)

	tx := eng.TxnMgr.Begin()
	defer tx.Rollback()

	mk := func(name string, cols ...storage.Column) (*storage.Table, error) {
		return eng.CreateTable(name, storage.NewSchema(cols...))
	}
	supplier, err := mk("supplier",
		storage.Col("s_suppkey", sqltypes.Int),
		storage.Col("s_name", sqltypes.Char(25)),
		storage.Col("s_nation", sqltypes.VarChar(25)),
		storage.Col("s_acctbal", sqltypes.Decimal(15, 2)),
	)
	if err != nil {
		return err
	}
	part, err := mk("part",
		storage.Col("p_partkey", sqltypes.Int),
		storage.Col("p_name", sqltypes.VarChar(55)),
		storage.Col("p_type", sqltypes.VarChar(25)),
		storage.Col("p_brand", sqltypes.Char(10)),
		storage.Col("p_container", sqltypes.Char(10)),
		storage.Col("p_size", sqltypes.Int),
		storage.Col("p_retailprice", sqltypes.Decimal(15, 2)),
	)
	if err != nil {
		return err
	}
	partsupp, err := mk("partsupp",
		storage.Col("ps_partkey", sqltypes.Int),
		storage.Col("ps_suppkey", sqltypes.Int),
		storage.Col("ps_availqty", sqltypes.Int),
		storage.Col("ps_supplycost", sqltypes.Decimal(15, 2)),
	)
	if err != nil {
		return err
	}
	customer, err := mk("customer",
		storage.Col("c_custkey", sqltypes.Int),
		storage.Col("c_name", sqltypes.VarChar(25)),
		storage.Col("c_nation", sqltypes.VarChar(25)),
		storage.Col("c_acctbal", sqltypes.Decimal(15, 2)),
		storage.Col("c_mktsegment", sqltypes.Char(10)),
	)
	if err != nil {
		return err
	}
	orders, err := mk("orders",
		storage.Col("o_orderkey", sqltypes.Int),
		storage.Col("o_custkey", sqltypes.Int),
		storage.Col("o_orderstatus", sqltypes.Char(1)),
		storage.Col("o_totalprice", sqltypes.Decimal(15, 2)),
		storage.Col("o_orderdate", sqltypes.Date),
		storage.Col("o_comment", sqltypes.VarChar(79)),
	)
	if err != nil {
		return err
	}
	lineitem, err := mk("lineitem",
		storage.Col("l_orderkey", sqltypes.Int),
		storage.Col("l_partkey", sqltypes.Int),
		storage.Col("l_suppkey", sqltypes.Int),
		storage.Col("l_linenumber", sqltypes.Int),
		storage.Col("l_quantity", sqltypes.Decimal(15, 2)),
		storage.Col("l_extendedprice", sqltypes.Decimal(15, 2)),
		storage.Col("l_discount", sqltypes.Decimal(15, 2)),
		storage.Col("l_shipdate", sqltypes.Date),
		storage.Col("l_commitdate", sqltypes.Date),
		storage.Col("l_receiptdate", sqltypes.Date),
	)
	if err != nil {
		return err
	}

	baseDate := sqltypes.MustDate("1992-01-01").Int()
	dateSpan := int64(2400) // ~6.5 years of order dates

	for i := 1; i <= sz.Suppliers; i++ {
		if err := supplier.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("Supplier#%09d", i)),
			sqltypes.NewString(nations[rng.Intn(len(nations))]),
			sqltypes.NewFloat(float64(rng.Intn(1_000_000)) / 100),
		}); err != nil {
			return err
		}
	}
	for i := 1; i <= sz.Parts; i++ {
		if err := part.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("part %d %s", i, containers[rng.Intn(len(containers))])),
			sqltypes.NewString(partTypes[rng.Intn(len(partTypes))]),
			sqltypes.NewString(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))),
			sqltypes.NewString(containers[rng.Intn(len(containers))]),
			sqltypes.NewInt(int64(1 + rng.Intn(50))),
			sqltypes.NewFloat(900 + float64(i%200)),
		}); err != nil {
			return err
		}
		for j := 0; j < sz.PartSupp; j++ {
			suppkey := int64(1 + (i*sz.PartSupp+j)%sz.Suppliers)
			if err := partsupp.Insert(tx, []sqltypes.Value{
				sqltypes.NewInt(int64(i)),
				sqltypes.NewInt(suppkey),
				sqltypes.NewInt(int64(1 + rng.Intn(9999))),
				sqltypes.NewFloat(float64(100+rng.Intn(99_900)) / 100),
			}); err != nil {
				return err
			}
		}
	}
	for i := 1; i <= sz.Customers; i++ {
		if err := customer.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("Customer#%09d", i)),
			sqltypes.NewString(nations[rng.Intn(len(nations))]),
			sqltypes.NewFloat(float64(rng.Intn(1_000_000)) / 100),
			sqltypes.NewString(segments[rng.Intn(len(segments))]),
		}); err != nil {
			return err
		}
	}
	lineNo := 0
	for i := 1; i <= sz.Orders; i++ {
		// A third of customers place no orders (TPC-H's Q13 point).
		custkey := int64(1 + rng.Intn((sz.Customers*2+2)/3))
		orderDate := baseDate + rng.Int63n(dateSpan)
		if err := orders.Insert(tx, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(custkey),
			sqltypes.NewString(statuses[rng.Intn(len(statuses))]),
			sqltypes.NewFloat(float64(1000+rng.Intn(400_000)) / 100),
			sqltypes.NewDate(orderDate),
			sqltypes.NewString(comments[rng.Intn(len(comments))]),
		}); err != nil {
			return err
		}
		nl := 1 + rng.Intn(sz.Lineitem*2-1) // 1 .. 2*avg-1
		for j := 0; j < nl; j++ {
			lineNo++
			ship := orderDate + int64(1+rng.Intn(120))
			commit := orderDate + int64(30+rng.Intn(60))
			receipt := ship + int64(1+rng.Intn(30))
			if err := lineitem.Insert(tx, []sqltypes.Value{
				sqltypes.NewInt(int64(i)),
				sqltypes.NewInt(int64(1 + rng.Intn(sz.Parts))),
				sqltypes.NewInt(int64(1 + rng.Intn(sz.Suppliers))),
				sqltypes.NewInt(int64(j + 1)),
				sqltypes.NewFloat(float64(1 + rng.Intn(50))),
				sqltypes.NewFloat(float64(1000+rng.Intn(90_000)) / 100),
				sqltypes.NewFloat(float64(rng.Intn(11)) / 100),
				sqltypes.NewDate(ship),
				sqltypes.NewDate(commit),
				sqltypes.NewDate(receipt),
			}); err != nil {
				return err
			}
		}
	}

	if err := tx.Commit(); err != nil {
		return err
	}

	for _, ix := range [][2]string{
		{"lineitem", "l_orderkey"}, {"lineitem", "l_suppkey"},
		{"orders", "o_custkey"}, {"partsupp", "ps_partkey"},
		{"part", "p_partkey"}, {"supplier", "s_suppkey"},
		{"customer", "c_custkey"}, {"orders", "o_orderkey"},
	} {
		if err := eng.CreateIndex(ix[0], ix[1]); err != nil {
			return err
		}
	}
	return nil
}
