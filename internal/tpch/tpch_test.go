package tpch

import (
	"testing"

	"aggify/internal/ast"
	"aggify/internal/engine"
	"aggify/internal/interp"
	"aggify/internal/parser"
	"aggify/internal/sqltypes"
)

func loadTiny(t *testing.T) *engine.Engine {
	t.Helper()
	eng := engine.New()
	interp.Install(eng)
	if err := Load(eng, 0.001); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestGeneratorCardinalities(t *testing.T) {
	eng := loadTiny(t)
	sz := SizesFor(0.001)
	for _, tc := range []struct {
		table string
		want  int
	}{
		{"supplier", sz.Suppliers},
		{"part", sz.Parts},
		{"partsupp", sz.Parts * sz.PartSupp},
		{"customer", sz.Customers},
		{"orders", sz.Orders},
	} {
		tab, ok := eng.Table(tc.table)
		if !ok {
			t.Fatalf("missing table %s", tc.table)
		}
		if tab.RowCount() != tc.want {
			t.Errorf("%s rows = %d, want %d", tc.table, tab.RowCount(), tc.want)
		}
	}
	li, _ := eng.Table("lineitem")
	orders := SizesFor(0.001).Orders
	if li.RowCount() < orders || li.RowCount() > orders*8 {
		t.Errorf("lineitem rows = %d, outside [orders, 8*orders]", li.RowCount())
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := engine.New()
	b := engine.New()
	interp.Install(a)
	interp.Install(b)
	if err := Load(a, 0.001); err != nil {
		t.Fatal(err)
	}
	if err := Load(b, 0.001); err != nil {
		t.Fatal(err)
	}
	ta, _ := a.Table("lineitem")
	tb, _ := b.Table("lineitem")
	if ta.RowCount() != tb.RowCount() {
		t.Fatalf("row counts differ: %d vs %d", ta.RowCount(), tb.RowCount())
	}
	for i := 0; i < 50; i++ {
		ra, rb := ta.Row(nil, i), tb.Row(nil, i)
		for j := range ra {
			if !sqltypes.GroupEqual(ra[j], rb[j]) {
				t.Fatalf("row %d differs: %v vs %v", i, ra, rb)
			}
		}
	}
}

func TestIndexesCreated(t *testing.T) {
	eng := loadTiny(t)
	for _, ix := range [][2]string{
		{"lineitem", "l_orderkey"}, {"lineitem", "l_suppkey"},
		{"orders", "o_custkey"}, {"partsupp", "ps_partkey"},
	} {
		tab, _ := eng.Table(ix[0])
		if tab.Index(ix[1]) == nil {
			t.Errorf("missing index %s(%s) (the paper's §10.1 setup)", ix[0], ix[1])
		}
	}
}

func TestForeignKeysResolve(t *testing.T) {
	eng := loadTiny(t)
	sess := eng.NewSession()
	q := parser.MustParse(`select count(*) from lineitem
	                       where l_partkey not in (select p_partkey from part)`)[0].(*ast.QueryStmt).Query
	_, rows, err := sess.Query(q, sess.Ctx(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 0 {
		t.Fatalf("%d lineitems with dangling part keys", rows[0][0].Int())
	}
}

func TestWorkloadQueriesParse(t *testing.T) {
	if len(Queries()) != 6 {
		t.Fatalf("want 6 workload queries")
	}
	for _, q := range Queries() {
		if _, err := parser.Parse(q.Setup); err != nil {
			t.Errorf("%s setup does not parse: %v", q.ID, err)
		}
		for _, limit := range []int{0, 10} {
			if _, err := parser.Parse(q.Driver(limit)); err != nil {
				t.Errorf("%s driver(%d) does not parse: %v", q.ID, limit, err)
			}
		}
		if len(q.Funcs) == 0 {
			t.Errorf("%s lists no UDFs", q.ID)
		}
	}
	if _, ok := QueryByID("q2"); !ok {
		t.Error("QueryByID should be case-insensitive")
	}
	if _, ok := QueryByID("Q99"); ok {
		t.Error("unknown id should miss")
	}
}

func TestQ13CommentsIncludeSpecialRequests(t *testing.T) {
	// Q13's predicate is only meaningful if some comments match.
	eng := loadTiny(t)
	sess := eng.NewSession()
	q := parser.MustParse(`select count(*) from orders where o_comment like '%special%requests%'`)[0].(*ast.QueryStmt).Query
	_, rows, err := sess.Query(q, sess.Ctx(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() == 0 {
		t.Fatal("no orders with special requests — Q13's filter would be vacuous")
	}
}
