package tpch

import (
	"fmt"
	"strings"
)

// WorkloadQuery is one entry of the TPC-H cursor-loop workload: a UDF (or
// UDFs) implemented with a cursor loop, and the driver query that invokes
// it — the paper's open benchmark of §10.1.
type WorkloadQuery struct {
	ID string
	// Desc summarizes the business question.
	Desc string
	// Setup defines the cursor-loop UDFs (dialect source).
	Setup string
	// Funcs lists the UDF names defined by Setup (transformation targets).
	Funcs []string
	// driver is a template for the invoking query; limit > 0 restricts the
	// iteration count (the driving table's key range).
	driver func(limit int) string
}

// Driver renders the invoking query; limit <= 0 means the full table.
func (w *WorkloadQuery) Driver(limit int) string { return w.driver(limit) }

// Queries returns the six-query workload (Q2, Q13, Q14, Q18, Q19, Q21).
func Queries() []*WorkloadQuery {
	return []*WorkloadQuery{q2(), q13(), q14(), q18(), q19(), q21()}
}

// QueryByID returns one workload query.
func QueryByID(id string) (*WorkloadQuery, bool) {
	for _, q := range Queries() {
		if strings.EqualFold(q.ID, id) {
			return q, true
		}
	}
	return nil, false
}

func keyFilter(limit int, col string) string {
	if limit <= 0 {
		return ""
	}
	return fmt.Sprintf(" where %s <= %d", col, limit)
}

// q2 is the paper's running example (Figures 1, 5, 7): minimum-cost
// supplier per part with an optional lower bound.
func q2() *WorkloadQuery {
	return &WorkloadQuery{
		ID:   "Q2",
		Desc: "minimum-cost supplier per part (Figure 1)",
		Setup: `
create function getLowerBound(@pkey int) returns int as
begin
  return 0;
end
GO
create function minCostSupp(@pkey int, @lb int = -1) returns char(25) as
begin
  declare @pCost decimal(15,2);
  declare @sName char(25);
  declare @minCost decimal(15,2) = 100000;
  declare @suppName char(25);
  if (@lb = -1)
    set @lb = getLowerBound(@pkey);
  declare c1 cursor for
    select ps_supplycost, s_name from partsupp, supplier
    where ps_partkey = @pkey and ps_suppkey = s_suppkey;
  open c1;
  fetch next from c1 into @pCost, @sName;
  while @@fetch_status = 0
  begin
    if (@pCost < @minCost and @pCost >= @lb)
    begin
      set @minCost = @pCost;
      set @suppName = @sName;
    end
    fetch next from c1 into @pCost, @sName;
  end
  close c1;
  deallocate c1;
  return @suppName;
end`,
		Funcs: []string{"mincostsupp", "getlowerbound"},
		driver: func(limit int) string {
			return "select p_partkey, minCostSupp(p_partkey) as supp from part" + keyFilter(limit, "p_partkey")
		},
	}
}

// q13 counts orders per customer excluding special-request comments; the
// paper's three-orders-of-magnitude Aggify+ case.
func q13() *WorkloadQuery {
	return &WorkloadQuery{
		ID:   "Q13",
		Desc: "order count per customer excluding special requests",
		Setup: `
create function countOrders(@ckey int) returns int as
begin
  declare @comment varchar(79);
  declare @cnt int = 0;
  declare c cursor for
    select o_comment from orders where o_custkey = @ckey;
  open c;
  fetch next from c into @comment;
  while @@fetch_status = 0
  begin
    if @comment not like '%special%requests%'
      set @cnt = @cnt + 1;
    fetch next from c into @comment;
  end
  close c;
  deallocate c;
  return @cnt;
end`,
		Funcs: []string{"countorders"},
		driver: func(limit int) string {
			return "select c_custkey, countOrders(c_custkey) as c_count from customer" + keyFilter(limit, "c_custkey")
		},
	}
}

// q14 computes promo revenue share for one month with a single large
// cursor loop over the lineitem/part join.
func q14() *WorkloadQuery {
	return &WorkloadQuery{
		ID:   "Q14",
		Desc: "promotion revenue share for a month",
		Setup: `
create function promoRevenue(@from date) returns float as
begin
  declare @price decimal(15,2);
  declare @disc decimal(15,2);
  declare @type varchar(25);
  declare @promo float = 0;
  declare @total float = 0;
  declare c cursor for
    select l_extendedprice, l_discount, p_type
    from lineitem, part
    where l_partkey = p_partkey
      and l_shipdate >= @from and l_shipdate < @from + 90;
  open c;
  fetch next from c into @price, @disc, @type;
  while @@fetch_status = 0
  begin
    if @type like 'PROMO%'
      set @promo = @promo + @price * (1 - @disc);
    set @total = @total + @price * (1 - @disc);
    fetch next from c into @price, @disc, @type;
  end
  close c;
  deallocate c;
  if @total = 0 return 0;
  return 100.0 * @promo / @total;
end`,
		Funcs: []string{"promorevenue"},
		driver: func(int) string {
			return "select promoRevenue(date '1995-09-01') as promo_share"
		},
	}
}

// q18 finds large-volume orders via a per-order quantity-sum UDF.
func q18() *WorkloadQuery {
	return &WorkloadQuery{
		ID:   "Q18",
		Desc: "large-volume orders (per-order quantity sums)",
		Setup: `
create function sumQty(@okey int) returns float as
begin
  declare @q decimal(15,2);
  declare @s float = 0;
  declare c cursor for
    select l_quantity from lineitem where l_orderkey = @okey;
  open c;
  fetch next from c into @q;
  while @@fetch_status = 0
  begin
    set @s = @s + @q;
    fetch next from c into @q;
  end
  close c;
  deallocate c;
  return @s;
end`,
		Funcs: []string{"sumqty"},
		driver: func(limit int) string {
			q := "select o_orderkey, sumQty(o_orderkey) as qty from orders"
			if limit > 0 {
				return q + fmt.Sprintf(" where o_orderkey <= %d and sumQty(o_orderkey) > 120", limit)
			}
			return q + " where sumQty(o_orderkey) > 120"
		},
	}
}

// q19 computes discounted revenue under disjunctive brand/container/
// quantity conditions with one big cursor loop.
func q19() *WorkloadQuery {
	return &WorkloadQuery{
		ID:   "Q19",
		Desc: "discounted revenue under disjunctive conditions",
		Setup: `
create function discountedRevenue() returns float as
begin
  declare @price decimal(15,2);
  declare @disc decimal(15,2);
  declare @brand char(10);
  declare @container char(10);
  declare @qty decimal(15,2);
  declare @rev float = 0;
  declare c cursor for
    select l_extendedprice, l_discount, p_brand, p_container, l_quantity
    from lineitem, part
    where l_partkey = p_partkey;
  open c;
  fetch next from c into @price, @disc, @brand, @container, @qty;
  while @@fetch_status = 0
  begin
    if (@brand = 'Brand#12' and (@container = 'SM CASE' or @container = 'SM BOX') and @qty >= 1 and @qty <= 11)
       or (@brand = 'Brand#23' and (@container = 'MED BAG' or @container = 'MED BOX') and @qty >= 10 and @qty <= 20)
       or (@brand = 'Brand#34' and (@container = 'LG CASE' or @container = 'LG BOX') and @qty >= 20 and @qty <= 30)
      set @rev = @rev + @price * (1 - @disc);
    fetch next from c into @price, @disc, @brand, @container, @qty;
  end
  close c;
  deallocate c;
  return @rev;
end`,
		Funcs: []string{"discountedrevenue"},
		driver: func(int) string {
			return "select discountedRevenue() as revenue"
		},
	}
}

// q21 counts, per supplier, lineitems the supplier delivered late in
// multi-supplier orders where nobody else was late — the loop body runs
// queries of its own (supported per §4.2).
func q21() *WorkloadQuery {
	return &WorkloadQuery{
		ID:   "Q21",
		Desc: "suppliers who kept orders waiting (queries inside the loop)",
		Setup: `
create function waitingCount(@skey int) returns int as
begin
  declare @okey int;
  declare @cnt int = 0;
  declare @others int;
  declare @othersLate int;
  declare c cursor for
    select l_orderkey from lineitem
    where l_suppkey = @skey and l_receiptdate > l_commitdate;
  open c;
  fetch next from c into @okey;
  while @@fetch_status = 0
  begin
    set @others = (select count(*) from lineitem
                   where l_orderkey = @okey and l_suppkey <> @skey);
    set @othersLate = (select count(*) from lineitem
                       where l_orderkey = @okey and l_suppkey <> @skey
                         and l_receiptdate > l_commitdate);
    if @others > 0 and @othersLate = 0
      set @cnt = @cnt + 1;
    fetch next from c into @okey;
  end
  close c;
  deallocate c;
  return @cnt;
end`,
		Funcs: []string{"waitingcount"},
		driver: func(limit int) string {
			return "select s_suppkey, waitingCount(s_suppkey) as numwait from supplier" + keyFilter(limit, "s_suppkey")
		},
	}
}
